(* A single wall-clock source for every deadline in the compiler.

   Before this module existed the codebase mixed two clock domains:
   [Compile.compile] armed deadlines from [Unix.gettimeofday] (wall
   time) while the solver layers (simplex, branch-and-bound, the II
   search, LNS probes) measured against [Sys.time] (process CPU time).
   Process CPU time advances roughly N x faster than wall time when N
   domains are busy, so under [--jobs N] a deadline expressed in wall
   seconds fired early by about a factor of N — and late when the
   process was blocked on I/O.  Every timed component now reads the
   same clock through [now].

   The source is substitutable so tests can drive deadlines with a
   fake clock instead of sleeping.  Substitution is test-only and
   process-global; production code never calls [set_source]. *)

let default_source () = Unix.gettimeofday ()

let source = ref default_source

(* Monotonicity guard: gettimeofday can step backwards under NTP
   adjustment.  Deadline arithmetic assumes time never runs backwards,
   so clamp to the high-water mark.  An [Atomic] keeps the guard safe
   to read from worker domains; a concurrent update just means two
   domains race to publish the larger value. *)
let high_water = Atomic.make neg_infinity

let now () =
  let t = !source () in
  let rec clamp () =
    let hw = Atomic.get high_water in
    if t >= hw then
      if Atomic.compare_and_set high_water hw t then t else clamp ()
    else hw
  in
  clamp ()

let set_source f =
  source := f;
  (* A fake clock may legitimately start below the high-water mark left
     by the real clock; reset the guard so tests observe their own
     timeline. *)
  Atomic.set high_water neg_infinity

let reset_source () = set_source default_source

let with_source f body =
  let saved = !source in
  set_source f;
  Fun.protect body ~finally:(fun () ->
      source := saved;
      Atomic.set high_water neg_infinity)

(* A deterministic fake clock for tests: starts at [t0] and advances by
   [step] seconds on every read, so code that polls a deadline sees
   time pass without sleeping.  CAS loop because Atomic has no float
   fetch-and-add. *)
let ticker ?(t0 = 0.0) ~step () =
  let t = Atomic.make t0 in
  fun () ->
    let rec go () =
      let cur = Atomic.get t in
      if Atomic.compare_and_set t cur (cur +. step) then cur else go ()
    in
    go ()
