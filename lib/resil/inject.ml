exception Injected of string

type spec = { site : string; at : int }

let m_fired = Obs.Metrics.counter "resil.inject.fired"

let lock = Mutex.create ()
let specs : spec list ref = ref []
let counts : (string, int) Hashtbl.t = Hashtbl.create 16
let enabled = Atomic.make false

let arm sl =
  Mutex.lock lock;
  specs := sl;
  Hashtbl.reset counts;
  Atomic.set enabled (sl <> []);
  Mutex.unlock lock

let disarm () = arm []

let armed () = Atomic.get enabled

let hit site =
  if not (Atomic.get enabled) then false
  else begin
    Mutex.lock lock;
    let c = (match Hashtbl.find_opt counts site with Some c -> c | None -> 0) + 1 in
    Hashtbl.replace counts site c;
    let fires = List.exists (fun s -> s.site = site && s.at = c) !specs in
    Mutex.unlock lock;
    if fires then Obs.Metrics.inc m_fired;
    fires
  end

let fire site = if hit site then raise (Injected site)

let hits () =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun site c acc -> (site, c) :: acc) counts [] in
  Mutex.unlock lock;
  List.sort compare l

let pp_spec fmt s = Format.fprintf fmt "%s@@%d" s.site s.at
