(** Seeded, deterministic fault injection.

    Production code marks its failure points with named {e sites}
    ([Inject.fire "stage.profile"], [Inject.hit "ii_search.attempt"], …).
    When disarmed — the default — a site is a single atomic-bool read;
    when armed with a list of {!spec}s, the [at]-th hit of a named site
    fires, either raising {!Injected} ({!fire}) or returning [true]
    ({!hit}) so the caller can simulate a soft failure such as solver
    budget exhaustion.

    Hit counting is process-global and mutex-guarded; the firing
    decision is a pure function of the armed specs and the sequence of
    hits, so a {e serial} run injects the same fault at the same point
    on every execution.  Arm faults only around serial pipelines (the
    fault-fuzz driver compiles one program at a time): under a parallel
    fan-out the hit order, and therefore which task observes the fault,
    is not deterministic. *)

exception Injected of string  (** The fired site's name. *)

type spec = {
  site : string;  (** site name, e.g. ["stage.profile"] *)
  at : int;  (** fire on the [at]-th hit of [site], 1-based *)
}

val arm : spec list -> unit
(** Install the specs and reset all hit counters.  [arm []] disarms. *)

val disarm : unit -> unit

val armed : unit -> bool
(** Cheap enough for hot paths: one atomic load. *)

val hit : string -> bool
(** Count a hit of the site; [true] when an armed spec fires here.  A
    no-op returning [false] while disarmed (the counter does not
    advance). *)

val fire : string -> unit
(** [hit], then raise {!Injected} when it fires. *)

val hits : unit -> (string * int) list
(** Observed hit counters since the last {!arm}, sorted by site name. *)

val pp_spec : Format.formatter -> spec -> unit
