(** The single wall-clock source for all deadline accounting.

    Every component that measures elapsed time against a deadline —
    [Budget] wall guards, simplex and branch-and-bound time limits, II
    search attempt timing, LNS probes, [Compile]'s stage spends — must
    read this clock rather than [Sys.time] (process CPU time, which
    advances ~N x wall speed under [--jobs N]) or a raw
    [Unix.gettimeofday].  The source is substitutable so tests can
    drive time deterministically. *)

val now : unit -> float
(** Current time in seconds.  Wall clock, clamped monotonic: a read
    never returns less than a previous read under the same source. *)

val set_source : (unit -> float) -> unit
(** Replace the clock source (test-only; process-global).  Resets the
    monotonicity high-water mark so the new source starts fresh. *)

val reset_source : unit -> unit
(** Restore the default [Unix.gettimeofday] source. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** [with_source fake f] runs [f] with the clock read from [fake],
    restoring the previous source afterwards (even on exception). *)

val ticker : ?t0:float -> step:float -> unit -> unit -> float
(** [ticker ~t0 ~step ()] makes a deterministic fake source that
    returns [t0], [t0 +. step], [t0 +. 2*.step], ... on successive
    reads.  Thread-safe. *)
