type reason = Work | Wall

exception Exhausted of { label : string; reason : reason }

type t = {
  label : string;
  mutable used : int;
  limit : int option;
  deadline : float option; (* absolute Clock.now, already armed *)
  parent : t option;
}

let m_exhausted_work = Obs.Metrics.counter "resil.budget.exhausted_work"
let m_exhausted_wall = Obs.Metrics.counter "resil.budget.exhausted_wall"

let unlimited =
  { label = "unlimited"; used = 0; limit = None; deadline = None; parent = None }

let create ?(label = "budget") ?work ?wall_s () =
  let deadline =
    match wall_s with
    | None -> None
    | Some s -> Some (Clock.now () +. s)
  in
  { label; used = 0; limit = work; deadline; parent = None }

let sub ?label ?work t =
  {
    label = (match label with Some l -> l | None -> t.label ^ "/sub");
    used = 0;
    limit = work;
    deadline = None; (* the parent chain supplies any wall deadline *)
    parent = Some t;
  }

let rec charge t n =
  t.used <- t.used + n;
  match t.parent with None -> () | Some p -> charge p n

let consumed t = t.used

let remaining t =
  match t.limit with None -> None | Some l -> Some (max 0 (l - t.used))

let rec over_work t =
  (match t.limit with Some l -> t.used >= l | None -> false)
  || (match t.parent with Some p -> over_work p | None -> false)

let rec has_deadline t =
  t.deadline <> None
  || (match t.parent with Some p -> has_deadline p | None -> false)

let over_wall t =
  (* Read the clock at most once, and only when some deadline is armed:
     a work-unit-only token stays deterministic. *)
  if not (has_deadline t) then false
  else begin
    let now = Clock.now () in
    let rec go t =
      (match t.deadline with Some d -> now > d | None -> false)
      || (match t.parent with Some p -> go p | None -> false)
    in
    go t
  end

let over t = over_work t || over_wall t

let exhausted_reason t =
  if over_work t then Some Work else if over_wall t then Some Wall else None

let label t = t.label

let check t =
  match exhausted_reason t with
  | None -> ()
  | Some reason ->
    (match reason with
    | Work -> Obs.Metrics.inc m_exhausted_work
    | Wall -> Obs.Metrics.inc m_exhausted_wall);
    raise (Exhausted { label = t.label; reason })

let pp_reason fmt = function
  | Work -> Format.pp_print_string fmt "work-unit budget"
  | Wall -> Format.pp_print_string fmt "wall-clock deadline"
