(** Composable deadline/budget tokens for cooperative cancellation.

    A budget token bounds how much work a computation may perform.  Two
    kinds of limit compose in one token:

    - a {e work-unit} limit: a deterministic count of abstract work
      units (the solver stack charges one unit per simplex pivot and
      one per branch-and-bound node).  Exhaustion depends only on the
      charge sequence, never on the clock, so work-unit budgets keep
      parallel and serial compilation byte-identical;
    - an optional {e wall-clock} deadline: an outer guard for callers
      that need bounded real-time latency.  Wall-clock exhaustion is
      inherently nondeterministic and is excluded from the determinism
      suite — it is opt-in and off by default everywhere.

    Tokens form a tree: {!sub} derives a child with its own (usually
    smaller) work cap whose charges propagate to the parent, so a
    per-attempt allotment and a whole-search ledger can be enforced at
    once.  Checking is cooperative: long-running loops call {!over} (or
    {!check}) at natural safe points and unwind on exhaustion.

    A token must only be charged from one domain at a time; checking
    ({!over}, {!over_work}) from other domains is safe and is how a
    pool's cancellation-aware join observes a budget. *)

type reason = Work | Wall

exception
  Exhausted of {
    label : string;
    reason : reason;
  }  (** Raised by {!check}; carries the token's label for diagnostics. *)

type t

val unlimited : t
(** A token with no limits: {!charge} counts, {!over} is always false. *)

val create : ?label:string -> ?work:int -> ?wall_s:float -> unit -> t
(** [create ~work ~wall_s ()] makes a fresh root token.  [work] is the
    work-unit allotment ([Some 0] is exhausted from the start); [wall_s]
    arms a wall-clock deadline [wall_s] seconds from now.  Omitted
    limits are unlimited. *)

val sub : ?label:string -> ?work:int -> t -> t
(** [sub ~work t] derives a child token with its own work cap.  Charges
    to the child also charge [t] (and its ancestors), and the child is
    considered exhausted as soon as any ancestor is. *)

val charge : t -> int -> unit
(** [charge t n] consumes [n] work units from [t] and every ancestor.
    Never raises. *)

val consumed : t -> int
(** Work units charged to this token so far. *)

val remaining : t -> int option
(** Work units left before this token's own cap ([None] = unlimited);
    never negative. *)

val over_work : t -> bool
(** The work-unit limit of this token or an ancestor is exhausted.
    Deterministic: no clock is read. *)

val over_wall : t -> bool
(** A wall-clock deadline of this token or an ancestor has passed.
    Reads the clock only when a deadline is armed; always false for
    tokens without one. *)

val over : t -> bool
(** [over_work t || over_wall t]. *)

val exhausted_reason : t -> reason option
(** Why the token is exhausted, work-limit first, or [None]. *)

val check : t -> unit
(** @raise Exhausted when the token is over either limit. *)

val label : t -> string
val pp_reason : Format.formatter -> reason -> unit
