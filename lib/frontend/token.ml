type t =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AMP | PIPE | CARET | SHL | SHR
  | QUESTION | COLON
  | EOF

let keywords =
  [
    "filter"; "pipeline"; "splitjoin"; "split"; "join"; "duplicate";
    "roundrobin"; "pop"; "push"; "peek"; "work"; "int"; "float"; "let";
    "for"; "to"; "if"; "else"; "add"; "table"; "state"; "array"; "min"; "max";
    "sin"; "cos"; "sqrt"; "exp"; "log"; "abs";
  ]

let to_string = function
  | INT n -> string_of_int n
  (* Canonical rendering (never OCaml's "1." style): error messages
     and round-tripped sources stay re-lexable and match the canonical
     form used by every other textual artifact. *)
  | FLOAT f -> Obs.Canon.to_string f
  | IDENT s -> s
  | KW s -> s
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | SEMI -> ";" | ASSIGN -> "="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQ -> "==" | NE -> "!="
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | SHL -> "<<" | SHR -> ">>"
  | QUESTION -> "?" | COLON -> ":"
  | EOF -> "<eof>"

let pp fmt t = Format.pp_print_string fmt (to_string t)
