open Streamit

exception Parse_error of string * int * int

type state = {
  mutable toks : (Token.t * int * int) list;
}

let peek st =
  match st.toks with (t, _, _) :: _ -> t | [] -> Token.EOF

let pos st = match st.toks with (_, l, c) :: _ -> (l, c) | [] -> (0, 0)

let err st msg =
  let l, c = pos st in
  raise (Parse_error (msg, l, c))

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    err st
      (Printf.sprintf "expected '%s', found '%s'" (Token.to_string tok)
         (Token.to_string (peek st)))

let expect_kw st kw = expect st (Token.KW kw)

let ident st =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> err st (Printf.sprintf "expected identifier, found '%s'" (Token.to_string t))

let int_lit st =
  match peek st with
  | Token.INT n ->
    advance st;
    n
  | t -> err st (Printf.sprintf "expected integer, found '%s'" (Token.to_string t))

(* --- expressions --- *)

let intrinsics1 =
  [
    ("sin", Kernel.Sin); ("cos", Kernel.Cos); ("sqrt", Kernel.Sqrt);
    ("exp", Kernel.Exp); ("log", Kernel.Log); ("abs", Kernel.Abs);
    ("int", Kernel.ToInt); ("float", Kernel.ToFloat);
  ]

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_compare st in
  if peek st = Token.QUESTION then begin
    advance st;
    let a = parse_expr st in
    expect st Token.COLON;
    let b = parse_ternary st in
    Kernel.Cond (c, a, b)
  end
  else c

and parse_compare st =
  let lhs = parse_bits st in
  let op =
    match peek st with
    | Token.LT -> Some Kernel.Lt
    | Token.LE -> Some Kernel.Le
    | Token.GT -> Some Kernel.Gt
    | Token.GE -> Some Kernel.Ge
    | Token.EQ -> Some Kernel.Eq
    | Token.NE -> Some Kernel.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Kernel.Binop (op, lhs, parse_bits st)

and parse_bits st =
  let rec go lhs =
    match peek st with
    | Token.AMP ->
      advance st;
      go (Kernel.Binop (Kernel.BitAnd, lhs, parse_shift st))
    | Token.PIPE ->
      advance st;
      go (Kernel.Binop (Kernel.BitOr, lhs, parse_shift st))
    | Token.CARET ->
      advance st;
      go (Kernel.Binop (Kernel.BitXor, lhs, parse_shift st))
    | _ -> lhs
  in
  go (parse_shift st)

and parse_shift st =
  let rec go lhs =
    match peek st with
    | Token.SHL ->
      advance st;
      go (Kernel.Binop (Kernel.Shl, lhs, parse_add st))
    | Token.SHR ->
      advance st;
      go (Kernel.Binop (Kernel.Shr, lhs, parse_add st))
    | _ -> lhs
  in
  go (parse_add st)

and parse_add st =
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      go (Kernel.Binop (Kernel.Add, lhs, parse_mul st))
    | Token.MINUS ->
      advance st;
      go (Kernel.Binop (Kernel.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      go (Kernel.Binop (Kernel.Mul, lhs, parse_unary st))
    | Token.SLASH ->
      advance st;
      go (Kernel.Binop (Kernel.Div, lhs, parse_unary st))
    | Token.PERCENT ->
      advance st;
      go (Kernel.Binop (Kernel.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS ->
    advance st;
    Kernel.Unop (Kernel.Neg, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Token.INT n ->
    advance st;
    Kernel.Const (Types.VInt n)
  | Token.FLOAT f ->
    advance st;
    Kernel.Const (Types.VFloat f)
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.KW "pop" ->
    advance st;
    expect st Token.LPAREN;
    expect st Token.RPAREN;
    Kernel.Pop
  | Token.KW "peek" ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expr st in
    expect st Token.RPAREN;
    Kernel.Peek e
  | Token.KW ("min" | "max") ->
    let op = if peek st = Token.KW "min" then Kernel.Min else Kernel.Max in
    advance st;
    expect st Token.LPAREN;
    let a = parse_expr st in
    expect st Token.COMMA;
    let b = parse_expr st in
    expect st Token.RPAREN;
    Kernel.Binop (op, a, b)
  | Token.KW kw when List.mem_assoc kw intrinsics1 ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expr st in
    expect st Token.RPAREN;
    Kernel.Unop (List.assoc kw intrinsics1, e)
  | Token.IDENT name ->
    advance st;
    if peek st = Token.LBRACKET then begin
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      (* resolved to ArrayRef or TableRef during filter assembly *)
      Kernel.ArrayRef (name, idx)
    end
    else Kernel.Var name
  | t -> err st (Printf.sprintf "unexpected '%s' in expression" (Token.to_string t))

(* --- statements --- *)

let rec parse_stmt st =
  match peek st with
  | Token.KW "push" ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expr st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    Kernel.Push e
  | Token.KW "let" ->
    advance st;
    let x = ident st in
    expect st Token.ASSIGN;
    let e = parse_expr st in
    expect st Token.SEMI;
    Kernel.Let (x, e)
  | Token.KW "array" ->
    advance st;
    let a = ident st in
    expect st Token.LBRACKET;
    let n = int_lit st in
    expect st Token.RBRACKET;
    expect st Token.SEMI;
    Kernel.DeclArray (a, n)
  | Token.KW "for" ->
    advance st;
    let x = ident st in
    expect st Token.ASSIGN;
    let lo = parse_expr st in
    expect_kw st "to";
    let hi = parse_expr st in
    let body = parse_block st in
    Kernel.For (x, lo, hi, body)
  | Token.KW "if" ->
    advance st;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    let th = parse_block st in
    let el = if peek st = Token.KW "else" then (advance st; parse_block st) else [] in
    Kernel.If (c, th, el)
  | Token.IDENT x -> (
    advance st;
    match peek st with
    | Token.ASSIGN ->
      advance st;
      let e = parse_expr st in
      expect st Token.SEMI;
      Kernel.Assign (x, e)
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      expect st Token.ASSIGN;
      let e = parse_expr st in
      expect st Token.SEMI;
      Kernel.ArrayAssign (x, idx, e)
    | t -> err st (Printf.sprintf "unexpected '%s' after identifier" (Token.to_string t)))
  | t -> err st (Printf.sprintf "unexpected '%s' at statement start" (Token.to_string t))

and parse_block st =
  expect st Token.LBRACE;
  let rec go acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* Indexing of a name parses as ArrayRef; rewrite references to declared
   tables into TableRef. *)
let rec fix_tables tables e =
  match e with
  | Kernel.ArrayRef (a, i) when List.mem a tables ->
    Kernel.TableRef (a, fix_tables tables i)
  | Kernel.ArrayRef (a, i) -> Kernel.ArrayRef (a, fix_tables tables i)
  | Kernel.TableRef (a, i) -> Kernel.TableRef (a, fix_tables tables i)
  | Kernel.Unop (op, e) -> Kernel.Unop (op, fix_tables tables e)
  | Kernel.Peek e -> Kernel.Peek (fix_tables tables e)
  | Kernel.Binop (op, a, b) ->
    Kernel.Binop (op, fix_tables tables a, fix_tables tables b)
  | Kernel.Cond (c, a, b) ->
    Kernel.Cond (fix_tables tables c, fix_tables tables a, fix_tables tables b)
  | Kernel.Const _ | Kernel.Var _ | Kernel.Pop -> e

let rec fix_tables_stmt tables s =
  match s with
  | Kernel.Let (x, e) -> Kernel.Let (x, fix_tables tables e)
  | Kernel.Assign (x, e) -> Kernel.Assign (x, fix_tables tables e)
  | Kernel.DeclArray _ -> s
  | Kernel.ArrayAssign (a, i, e) ->
    Kernel.ArrayAssign (a, fix_tables tables i, fix_tables tables e)
  | Kernel.Push e -> Kernel.Push (fix_tables tables e)
  | Kernel.If (c, a, b) ->
    Kernel.If
      ( fix_tables tables c,
        List.map (fix_tables_stmt tables) a,
        List.map (fix_tables_stmt tables) b )
  | Kernel.For (x, lo, hi, body) ->
    Kernel.For
      ( x,
        fix_tables tables lo,
        fix_tables tables hi,
        List.map (fix_tables_stmt tables) body )

(* --- declarations --- *)

let parse_literal st =
  match peek st with
  | Token.INT n ->
    advance st;
    Types.VInt n
  | Token.FLOAT f ->
    advance st;
    Types.VFloat f
  | Token.MINUS -> (
    advance st;
    match peek st with
    | Token.INT n ->
      advance st;
      Types.VInt (-n)
    | Token.FLOAT f ->
      advance st;
      Types.VFloat (-.f)
    | t -> err st (Printf.sprintf "expected literal after '-', found '%s'" (Token.to_string t)))
  | t -> err st (Printf.sprintf "expected literal, found '%s'" (Token.to_string t))

let parse_filter st =
  expect_kw st "filter";
  let name = ident st in
  let ty =
    match peek st with
    | Token.KW "int" ->
      advance st;
      Types.TInt
    | Token.KW "float" ->
      advance st;
      Types.TFloat
    | _ -> Types.TFloat
  in
  expect_kw st "pop";
  let pop = int_lit st in
  expect_kw st "push";
  let push = int_lit st in
  let peek_rate =
    if peek st = Token.KW "peek" then begin
      advance st;
      int_lit st
    end
    else pop
  in
  expect st Token.LBRACE;
  (* optional table and state declarations first *)
  let tables = ref [] in
  let state = ref [] in
  while peek st = Token.KW "table" || peek st = Token.KW "state" do
    let is_state = peek st = Token.KW "state" in
    advance st;
    let tname = ident st in
    expect st Token.ASSIGN;
    expect st Token.LBRACKET;
    let rec vals acc =
      let v = parse_literal st in
      if peek st = Token.COMMA then begin
        advance st;
        vals (v :: acc)
      end
      else List.rev (v :: acc)
    in
    let values = vals [] in
    expect st Token.RBRACKET;
    expect st Token.SEMI;
    if is_state then state := (tname, Array.of_list values) :: !state
    else tables := (tname, Array.of_list values) :: !tables
  done;
  let rec stmts acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else stmts (parse_stmt st :: acc)
  in
  let body = stmts [] in
  let tables = List.rev !tables in
  let state = List.rev !state in
  let tnames = List.map fst tables in
  let body = List.map (fix_tables_stmt tnames) body in
  let f =
    Kernel.make_filter ~name ~pop ~push ~peek:peek_rate ~in_ty:ty ~out_ty:ty
      ~tables ~state body
  in
  (match Kernel.check_filter f with
  | Ok () -> ()
  | Error m -> err st ("filter " ^ name ^ ": " ^ m));
  (name, Ast.Filter f)

let parse_int_list st =
  expect st Token.LPAREN;
  let rec go acc =
    let n = int_lit st in
    if peek st = Token.COMMA then begin
      advance st;
      go (n :: acc)
    end
    else begin
      expect st Token.RPAREN;
      List.rev (n :: acc)
    end
  in
  go []

let lookup st env name =
  match List.assoc_opt name env with
  | Some s -> s
  | None -> err st (Printf.sprintf "unknown stream '%s'" name)

let parse_adds st env =
  let rec go acc =
    if peek st = Token.KW "add" then begin
      advance st;
      let n = ident st in
      expect st Token.SEMI;
      go (lookup st env n :: acc)
    end
    else List.rev acc
  in
  go []

let parse_pipeline st env =
  expect_kw st "pipeline";
  let name = ident st in
  expect st Token.LBRACE;
  let children = parse_adds st env in
  expect st Token.RBRACE;
  if children = [] then err st ("pipeline " ^ name ^ " is empty");
  (name, Ast.pipeline name children)

let parse_splitjoin st env =
  expect_kw st "splitjoin";
  let name = ident st in
  expect st Token.LBRACE;
  expect_kw st "split";
  let splitter =
    match peek st with
    | Token.KW "duplicate" ->
      advance st;
      Ast.Duplicate
    | Token.KW "roundrobin" ->
      advance st;
      Ast.Round_robin (parse_int_list st)
    | t -> err st (Printf.sprintf "expected split spec, found '%s'" (Token.to_string t))
  in
  expect st Token.SEMI;
  let children = parse_adds st env in
  expect_kw st "join";
  expect_kw st "roundrobin";
  let jw = parse_int_list st in
  expect st Token.SEMI;
  expect st Token.RBRACE;
  if children = [] then err st ("splitjoin " ^ name ^ " is empty");
  (name, Ast.split_join name splitter children jw)

let m_parses = Obs.Metrics.counter "frontend.parses"
let m_decls = Obs.Metrics.counter "frontend.declarations"

let rec parse_declarations src =
  Obs.Trace.with_span "parse"
    ~attrs:[ ("bytes", Obs.Trace.Int (String.length src)) ]
    (fun () ->
      let decls = parse_declarations_untraced src in
      Obs.Metrics.inc m_parses;
      Obs.Metrics.add m_decls (List.length decls);
      Obs.Trace.add_attr "declarations" (Obs.Trace.Int (List.length decls));
      decls)

and parse_declarations_untraced src =
  let st = { toks = Lexer.tokenize src } in
  let rec go env =
    match peek st with
    | Token.EOF -> List.rev env
    | Token.KW "filter" ->
      let d = parse_filter st in
      go (d :: env)
    | Token.KW "pipeline" ->
      let d = parse_pipeline st (List.rev env) in
      go (d :: env)
    | Token.KW "splitjoin" ->
      let d = parse_splitjoin st (List.rev env) in
      go (d :: env)
    | t -> err st (Printf.sprintf "expected declaration, found '%s'" (Token.to_string t))
  in
  go []

let parse_program src =
  match List.rev (parse_declarations src) with
  | (_, s) :: _ -> s
  | [] -> raise (Parse_error ("empty program", 1, 1))
