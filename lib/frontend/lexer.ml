exception Lex_error of string * int * int

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec go () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> raise (Lex_error ("unterminated comment", st.line, st.col))
      | _ ->
        advance st;
        go ()
    in
    go ();
    skip_ws st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let peek_at k =
    if st.pos + k < String.length st.src then Some st.src.[st.pos + k]
    else None
  in
  while (match peek st with Some c when is_digit c -> true | _ -> false) do
    advance st
  done;
  let has_frac =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if has_frac then begin
    advance st;
    while (match peek st with Some c when is_digit c -> true | _ -> false) do
      advance st
    done
  end;
  (* Optional exponent [eE][+-]?digits.  Taken only when a digit
     actually follows the (possibly signed) 'e', so an identifier
     hugging a number ("16elems") still lexes as INT then IDENT, and
     "1e+" stays INT PLUS rather than a lex error.  Needed so the
     canonical float formatter's output ("1e+16") round-trips. *)
  let has_exp =
    match peek st with
    | Some ('e' | 'E') -> (
      match peek2 st with
      | Some c when is_digit c -> true
      | Some ('+' | '-') -> (
        match peek_at 2 with Some c when is_digit c -> true | _ -> false)
      | _ -> false)
    | _ -> false
  in
  if has_exp then begin
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    while (match peek st with Some c when is_digit c -> true | _ -> false) do
      advance st
    done
  end;
  let text = String.sub st.src start (st.pos - start) in
  if has_frac || has_exp then Token.FLOAT (float_of_string text)
  else Token.INT (int_of_string text)

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c when is_ident c -> true | _ -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if List.mem s Token.keywords then Token.KW s else Token.IDENT s

let next_token st =
  skip_ws st;
  let line = st.line and col = st.col in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> lex_ident st
    | Some c ->
      let two target result =
        if peek2 st = Some target then begin
          advance st;
          advance st;
          Some result
        end
        else None
      in
      let simple result =
        advance st;
        result
      in
      (match c with
      | '(' -> simple Token.LPAREN
      | ')' -> simple Token.RPAREN
      | '{' -> simple Token.LBRACE
      | '}' -> simple Token.RBRACE
      | '[' -> simple Token.LBRACKET
      | ']' -> simple Token.RBRACKET
      | ',' -> simple Token.COMMA
      | ';' -> simple Token.SEMI
      | '+' -> simple Token.PLUS
      | '-' -> simple Token.MINUS
      | '*' -> simple Token.STAR
      | '/' -> simple Token.SLASH
      | '%' -> simple Token.PERCENT
      | '&' -> simple Token.AMP
      | '|' -> simple Token.PIPE
      | '^' -> simple Token.CARET
      | '?' -> simple Token.QUESTION
      | ':' -> simple Token.COLON
      | '<' -> (
        match two '=' Token.LE with
        | Some t -> t
        | None -> (
          match two '<' Token.SHL with Some t -> t | None -> simple Token.LT))
      | '>' -> (
        match two '=' Token.GE with
        | Some t -> t
        | None -> (
          match two '>' Token.SHR with Some t -> t | None -> simple Token.GT))
      | '=' -> (
        match two '=' Token.EQ with Some t -> t | None -> simple Token.ASSIGN)
      | '!' -> (
        match two '=' Token.NE with
        | Some t -> t
        | None -> raise (Lex_error ("unexpected '!'", line, col)))
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, line, col)))
  in
  (tok, line, col)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let ((tok, _, _) as entry) = next_token st in
    if tok = Token.EOF then List.rev (entry :: acc) else go (entry :: acc)
  in
  go []
