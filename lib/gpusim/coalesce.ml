type access_summary = {
  transactions : int;
  bytes_moved : int;
  coalesced : bool;
}

(* Traffic telemetry: every analysed warp access classifies as coalesced
   or serialized, and its padded bus bytes accumulate.  These run inside
   the (memoized) profiling sweep and the executor, not per simulated
   cycle, so the counter adds are noise. *)
let m_coalesced = Obs.Metrics.counter "gpusim.warp_accesses.coalesced"
let m_uncoalesced = Obs.Metrics.counter "gpusim.warp_accesses.uncoalesced"
let m_bus_bytes = Obs.Metrics.counter "gpusim.bus_bytes"
let m_bank_conflicts = Obs.Metrics.counter "gpusim.bank_conflicts"

let analyze_warp (a : Arch.t) ~elem_bytes ~tid_to_index =
  let half = a.warp_size / 2 in
  let seg_elems = a.segment_bytes / elem_bytes in
  let trans = ref 0 and bytes = ref 0 and coal = ref true in
  for hw = 0 to 1 do
    let base_tid = hw * half in
    let base_addr = tid_to_index base_tid in
    (* Compute-1.x rule: thread base_tid+k must access base_addr+k and the
       base must be segment-aligned. *)
    let ok = ref (base_addr mod seg_elems = 0) in
    for k = 0 to half - 1 do
      if tid_to_index (base_tid + k) <> base_addr + k then ok := false
    done;
    if !ok then begin
      incr trans;
      bytes := !bytes + (half * elem_bytes)
    end
    else begin
      (* serialized: one minimum-size transaction per thread *)
      trans := !trans + half;
      bytes := !bytes + (half * a.min_transaction_bytes);
      coal := false
    end
  done;
  Obs.Metrics.inc (if !coal then m_coalesced else m_uncoalesced);
  Obs.Metrics.add m_bus_bytes !bytes;
  { transactions = !trans; bytes_moved = !bytes; coalesced = !coal }

let natural_index ~pop_or_push_rate ~n tid = (tid * pop_or_push_rate) + n

let shuffled_index ~rate ~cluster ~n tid =
  (cluster * n) + (tid / cluster * cluster * rate) + (tid mod cluster)

let traffic_per_firing a ~rate ~threads ~shuffled =
  let warps = Arch.threads_to_warps a threads in
  let trans = ref 0 and bytes = ref 0 in
  for w = 0 to warps - 1 do
    for n = 0 to rate - 1 do
      let tid_to_index tid_in_warp =
        let tid = (w * a.warp_size) + tid_in_warp in
        if shuffled then shuffled_index ~rate ~cluster:128 ~n tid
        else natural_index ~pop_or_push_rate:rate ~n tid
      in
      let s =
        analyze_warp a ~elem_bytes:Streamit.Types.elem_size_bytes ~tid_to_index
      in
      trans := !trans + s.transactions;
      bytes := !bytes + s.bytes_moved
    done
  done;
  (!trans, !bytes)

let transactions_per_firing a ~rate ~threads ~shuffled =
  fst (traffic_per_firing a ~rate ~threads ~shuffled)

let cross_traffic ?(cached = true) (a : Arch.t) ~prod_rate ~cons_rate ~threads
    =
  let p = max 1 prod_rate in
  let c = max 1 cons_rate in
  let layout_addr s = shuffled_index ~rate:p ~cluster:128 ~n:(s mod p) (s / p) in
  let seg_elems =
    max 1 (a.min_transaction_bytes / Streamit.Types.elem_size_bytes)
  in
  let warps = Arch.threads_to_warps a threads in
  let half = a.warp_size / 2 in
  let trans = ref 0 and bytes = ref 0 in
  let segs = Hashtbl.create 256 in
  if cached then
    (* Filter reads go through the texture cache, whose lines hold a
       warp's pass window, so traffic is the set of *distinct* segments
       the warp touches across all of its accesses: small-stride
       mismatches (re-touching neighbouring addresses) cost nothing
       extra, while genuine scatter fetches one padded segment per
       element. *)
    for w = 0 to warps - 1 do
      Hashtbl.clear segs;
      for k = 0 to a.warp_size - 1 do
        let tid = (w * a.warp_size) + k in
        for n = 0 to c - 1 do
          let s = (tid * c) + n in
          Hashtbl.replace segs (layout_addr s / seg_elems) ()
        done
      done;
      let distinct = Hashtbl.length segs in
      trans := !trans + distinct;
      bytes := !bytes + (distinct * a.min_transaction_bytes)
    done
  else
    (* Splitter/joiner gathers read and write the same buffers, so they
       use plain (uncached) global loads: every simultaneous half-warp
       access pays its distinct segments with no reuse across access
       instants — the compute-1.x transaction rule. *)
    for w = 0 to warps - 1 do
      for n = 0 to c - 1 do
        for hw = 0 to 1 do
          Hashtbl.clear segs;
          for k = 0 to half - 1 do
            let tid = (w * a.warp_size) + (hw * half) + k in
            let s = (tid * c) + n in
            Hashtbl.replace segs (layout_addr s / seg_elems) ()
          done;
          let distinct = Hashtbl.length segs in
          trans := !trans + distinct;
          bytes := !bytes + (distinct * a.min_transaction_bytes)
        done
      done
    done;
  (!trans, !bytes)

let shared_bank_conflict_degree (a : Arch.t) ~tid_to_index =
  let half = a.warp_size / 2 in
  let counts = Array.make a.shared_mem_banks 0 in
  let worst = ref 1 in
  for hw = 0 to 1 do
    Array.fill counts 0 a.shared_mem_banks 0;
    for k = 0 to half - 1 do
      let bank = tid_to_index ((hw * half) + k) mod a.shared_mem_banks in
      counts.(bank) <- counts.(bank) + 1;
      if counts.(bank) > !worst then worst := counts.(bank)
    done
  done;
  if !worst > 1 then Obs.Metrics.inc m_bank_conflicts;
  !worst
