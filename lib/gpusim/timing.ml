open Streamit

type layout = Shuffled | Natural | Shared_staged

type pass = {
  compute_cycles : int;
  latency_cycles : int;
  bus_bytes : int;
  dev_accesses : int;
  solo_cycles : int;
}

let cdiv a b = (a + b - 1) / b

(* Per-port channel access sets of a node: (accesses_per_firing, stride
   rate) lists for reads and writes.  For filters, peeks are additional
   reads sharing the pop-side access pattern. *)
let access_sets (node : Graph.node) =
  match node.kind with
  | Graph.NFilter f ->
    let pops = f.Kernel.pop_rate in
    let pushes = f.Kernel.push_rate in
    let reads = if pops > 0 then [ (pops, pops) ] else [] in
    let writes = if pushes > 0 then [ (pushes, max 1 pushes) ] else [] in
    (reads, writes)
  | Graph.NSplitter (Ast.Duplicate, k) ->
    ([ (1, 1) ], List.init k (fun _ -> (1, 1)))
  | Graph.NSplitter (Ast.Round_robin ws, _) ->
    let sum = List.fold_left ( + ) 0 ws in
    ([ (sum, sum) ], List.map (fun w -> (w, w)) ws)
  | Graph.NJoiner ws ->
    let sum = List.fold_left ( + ) 0 ws in
    (List.map (fun w -> (w, w)) ws, [ (sum, sum) ])

(* Per-thread SU instruction count of the node's computation, excluding
   channel traffic (accounted as memory). *)
let insts_of_node (a : Arch.t) (node : Graph.node) =
  match node.kind with
  | Graph.NFilter f ->
    let c = Kernel.cost_of_filter f in
    (c.Kernel.alu * a.cost_alu)
    + (c.Kernel.mul * a.cost_mul)
    + (c.Kernel.divmod * a.cost_divmod)
    + (c.Kernel.special * a.cost_special)
    + (c.Kernel.mem * a.cost_shared_mem)
  | Graph.NSplitter _ | Graph.NJoiner _ ->
    (* pure data movement: address arithmetic only *)
    let reads, writes = access_sets node in
    let tokens =
      List.fold_left (fun acc (n, _) -> acc + n) 0 (reads @ writes)
    in
    2 * tokens * a.cost_alu

(* Peek accesses beyond the popped tokens: the optimized scheme binds
   channel buffers to textures (Sec. II-A), and sliding peek windows
   overlap almost entirely between adjacent firings, so these reads hit
   the texture cache rather than the bus. *)
let cached_peeks (node : Graph.node) =
  match node.kind with
  | Graph.NFilter f ->
    let c = Kernel.cost_of_filter f in
    max 0 (c.Kernel.channel - f.Kernel.pop_rate - f.Kernel.push_rate)
  | _ -> 0

let tokens_moved (node : Graph.node) =
  match node.kind with
  | Graph.NFilter f -> f.Kernel.peek_rate + f.Kernel.push_rate
  | _ ->
    let reads, writes = access_sets node in
    List.fold_left (fun acc (n, _) -> acc + n) 0 (reads @ writes)

let working_set_bytes (node : Graph.node) ~threads =
  let per_thread =
    match node.kind with
    | Graph.NFilter f -> f.Kernel.peek_rate + f.Kernel.push_rate
    | _ -> tokens_moved node
  in
  per_thread * threads * Types.elem_size_bytes

let shared_fits (a : Arch.t) node ~threads =
  working_set_bytes node ~threads <= a.shared_mem_per_sm

let m_texture_hits = Obs.Metrics.counter "gpusim.texture_peek_hits"
let m_spill_bytes = Obs.Metrics.counter "gpusim.spill_bytes"

let pass_of_node ?in_rates (a : Arch.t) (node : Graph.node) ~threads
    ~regs_cap ~layout =
  if not (Arch.config_feasible a ~regs_per_thread:regs_cap ~threads) then None
  else if layout = Shared_staged && not (shared_fits a node ~threads) then None
  else begin
    let warps = Arch.threads_to_warps a threads in
    let reads, writes = access_sets node in
    let spill =
      match node.kind with
      | Graph.NFilter f -> (Regalloc.allocate f ~cap:regs_cap).spill_accesses
      | _ -> 0
    in
    let base_insts = insts_of_node a node in
    (* Device traffic per pass (all threads firing once). *)
    let traffic sets shuffled =
      List.fold_left
        (fun (t, b) (count, rate) ->
          (* [count] accesses whose index pattern follows [rate]-strided
             groups; each distinct token position is one warp access. *)
          let per_pos_t, per_pos_b =
            Coalesce.traffic_per_firing a ~rate ~threads ~shuffled
          in
          (* traffic_per_firing covers [rate] positions; scale to the
             actual access count (peeks re-read positions). *)
          let scale n = cdiv (n * count) (max 1 rate) in
          (t + scale per_pos_t, b + scale per_pos_b))
        (0, 0) sets
    in
    let spill_bytes =
      (* local-memory spills are interleaved per thread: coalesced *)
      spill * threads * Types.elem_size_bytes
    in
    Obs.Metrics.add m_spill_bytes spill_bytes;
    let insts, dev_accesses, bus_bytes, serialization =
      match layout with
      | Shuffled ->
        (* When [in_rates] is given (actual schedule execution, as
           opposed to stand-alone profiling), read traffic is computed
           from the composed index maps: the buffer is laid out for the
           producer's per-firing rate (eq. (11)), so a consumer with a
           different rate reads strided addresses — the second-order
           splitter/joiner effect of Sec. V-B that the paper's profiling
           does not capture. *)
        let rt, rb =
          match in_rates with
          | None -> traffic reads true
          | Some pairs ->
            let cached =
              match node.kind with
              | Graph.NFilter _ -> true
              | Graph.NSplitter _ | Graph.NJoiner _ -> false
            in
            List.fold_left
              (fun (t, b) (cons_rate, prod_rate) ->
                let dt, db =
                  Coalesce.cross_traffic ~cached a ~prod_rate ~cons_rate
                    ~threads
                in
                (t + dt, b + db))
              (0, 0) pairs
        in
        let wt, wb = traffic writes true in
        let accesses =
          List.fold_left (fun acc (n, _) -> acc + n) 0 (reads @ writes)
        in
        let coalesced_trans = max 1 (2 * accesses * warps) in
        let serialization = max 1 ((rt + wt) / coalesced_trans) in
        (* texture-cached peeks cost a cache access, not bus traffic *)
        Obs.Metrics.add m_texture_hits (cached_peeks node * threads);
        let peek_insts = cached_peeks node * a.cost_shared_mem in
        ( base_insts + peek_insts,
          accesses + spill,
          rb + wb + spill_bytes,
          serialization )
      | Natural ->
        (* The non-coalesced baseline binds no textures: peeks are plain
           device reads sharing the pop-side strided pattern. *)
        let peeks = cached_peeks node in
        let reads =
          match (reads, peeks) with
          | [ (n, rate) ], p when p > 0 -> [ (n + p, rate) ]
          | sets, 0 -> sets
          | sets, p -> (p, 1) :: sets
        in
        let rt, rb = traffic reads false in
        let wt, wb = traffic writes false in
        let accesses =
          List.fold_left (fun acc (n, _) -> acc + n) 0 (reads @ writes)
        in
        (* Uncoalesced warp accesses issue one transaction per thread
           instead of one per half-warp; the memory pipeline serves them
           serially, multiplying the exposed latency. *)
        let coalesced_trans = max 1 (2 * accesses * warps) in
        let serialization = max 1 ((rt + wt) / coalesced_trans) in
        (base_insts, accesses + spill, rb + wb + spill_bytes, serialization)
      | Shared_staged ->
        (* stage the working set in/out with coalesced copies; channel
           ops run against shared memory with bank-conflict
           serialization *)
        let moved = tokens_moved node in
        let conflict =
          match node.kind with
          | Graph.NFilter f ->
            let r = max 1 f.Kernel.pop_rate in
            Coalesce.shared_bank_conflict_degree a ~tid_to_index:(fun tid ->
                tid * r)
          | _ -> 1
        in
        let shared_insts = moved * a.cost_shared_mem * conflict in
        let staged_bytes =
          (* coalesced segments for the staging copies *)
          cdiv (moved * threads * Types.elem_size_bytes) a.segment_bytes
          * a.segment_bytes
        in
        ( base_insts + shared_insts,
          moved + spill,
          staged_bytes + spill_bytes,
          1 )
    in
    let stateful =
      match node.kind with
      | Graph.NFilter f -> Kernel.is_stateful f
      | _ -> false
    in
    let compute_cycles, latency_cycles =
      if stateful then
        (* A stateful filter's firings are serialized: one thread at a
           time on one scalar unit, with nothing to hide the memory
           latency behind (the cost that makes state the paper's "future
           work"). *)
        ( insts * threads,
          dev_accesses * threads * a.dram_latency * serialization / 8 )
      else
        ( cdiv (insts * threads) a.sus_per_sm,
          cdiv (dev_accesses * a.dram_latency * serialization) (max 1 warps) )
    in
    let bus_cycles_full = cdiv bus_bytes a.dram_bytes_per_cycle in
    let solo_cycles =
      max compute_cycles (max latency_cycles bus_cycles_full) + 20
    in
    Some { compute_cycles; latency_cycles; bus_bytes; dev_accesses; solo_cycles }
  end

let combine_solo p = p.solo_cycles

let in_edge_rates g v =
  List.map
    (fun e -> (Graph.consumption g e, Graph.production g e))
    (Graph.in_edges g v)
