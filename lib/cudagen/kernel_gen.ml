open Streamit

let splitter_filter (sp : Ast.splitter) branches =
  match sp with
  | Ast.Duplicate ->
    let body =
      Kernel.Build.(
        [ let_ "x" pop ]
        @ List.init branches (fun _ -> push (v "x")))
    in
    Kernel.make_filter ~name:"duplicate_splitter" ~pop:1 ~push:branches body
  | Ast.Round_robin ws ->
    let sum = List.fold_left ( + ) 0 ws in
    let body = List.init sum (fun _ -> Kernel.Push Kernel.Pop) in
    Kernel.make_filter ~name:"rr_splitter" ~pop:sum ~push:sum body

let joiner_filter ws =
  let sum = List.fold_left ( + ) 0 ws in
  let body = List.init sum (fun _ -> Kernel.Push Kernel.Pop) in
  Kernel.make_filter ~name:"rr_joiner" ~pop:sum ~push:sum body

let filter_of_node (node : Graph.node) =
  match node.Graph.kind with
  | Graph.NFilter f -> Kernel.rename (fun x -> x) { f with name = node.Graph.name }
  | Graph.NSplitter (sp, k) ->
    { (splitter_filter sp k) with Kernel.name = node.Graph.name }
  | Graph.NJoiner ws -> { (joiner_filter ws) with Kernel.name = node.Graph.name }

let style_of (c : Swp_core.Compile.compiled) =
  match c.Swp_core.Compile.scheme with
  | Swp_core.Compile.Swp_coalesced -> Emit.Coalesced_indices
  | Swp_core.Compile.Swp_non_coalesced -> Emit.Natural_indices

let buffer_name (e : Graph.edge) =
  Printf.sprintf "buf_%d_%d__%d_%d" e.Graph.src e.Graph.src_port e.Graph.dst
    e.Graph.dst_port

let work_functions c =
  let g = c.Swp_core.Compile.graph in
  let style = style_of c in
  let buf = Buffer.create 4096 in
  Array.iter
    (fun node ->
      Buffer.add_string buf (Emit.c_of_filter ~style (filter_of_node node));
      Buffer.add_char buf '\n')
    g.Graph.nodes;
  Buffer.contents buf

let swp_kernel (c : Swp_core.Compile.compiled) =
  let g = c.Swp_core.Compile.graph in
  let sched = c.Swp_core.Compile.schedule in
  let cfg = c.Swp_core.Compile.config in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (work_functions c);
  let stages = Swp_core.Swp_schedule.stages sched in
  (* buffer parameters: one pointer per channel plus the I/O streams *)
  let params =
    (List.map
       (fun (e : Graph.edge) -> Printf.sprintf "float* %s" (buffer_name e))
       g.Graph.edges
    @ [ "const float* stream_in"; "float* stream_out"; "int iterations" ])
    |> String.concat ", "
  in
  Buffer.add_string buf
    (Printf.sprintf "__global__ void swp_kernel(%s)\n{\n" params);
  Buffer.add_string buf "  int tid = threadIdx.x;\n";
  Buffer.add_string buf "  int sm = blockIdx.x;\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  /* staging predicates, one per pipeline stage (depth %d) */\n\
       \  __shared__ int stage_on[%d];\n\
       \  if (tid == 0) for (int s = 0; s < %d; s++) stage_on[s] = 0;\n\
       \  __syncthreads();\n"
       stages stages stages);
  Buffer.add_string buf
    (Printf.sprintf
       "  for (int it = 0; it < iterations + %d; it++) {\n\
       \    if (tid == 0) { for (int s = %d; s > 0; s--) stage_on[s] = \
        stage_on[s-1]; stage_on[0] = (it < iterations); }\n\
       \    __syncthreads();\n"
       stages (stages - 1));
  Buffer.add_string buf "    switch (sm) {\n";
  let by_sm = Array.make sched.Swp_core.Swp_schedule.num_sms [] in
  List.iter
    (fun (e : Swp_core.Swp_schedule.entry) -> by_sm.(e.sm) <- e :: by_sm.(e.sm))
    sched.Swp_core.Swp_schedule.entries;
  Array.iteri
    (fun sm entries ->
      if entries <> [] then begin
        Buffer.add_string buf (Printf.sprintf "    case %d: {\n" sm);
        let ordered =
          List.sort
            (fun (a : Swp_core.Swp_schedule.entry) b -> compare a.o b.o)
            entries
        in
        List.iter
          (fun (e : Swp_core.Swp_schedule.entry) ->
            let v = e.inst.Swp_core.Instances.node in
            let node = Graph.node g v in
            let f = filter_of_node node in
            let in_buf =
              match Graph.in_edges g v with
              | edge :: _ -> buffer_name edge
              | [] -> "stream_in"
            in
            let out_buf =
              match Graph.out_edges g v with
              | edge :: _ -> buffer_name edge
              | [] -> "stream_out"
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "      /* (%s, k=%d) o=%d f=%d threads=%d */\n\
                  \      if (stage_on[%d] && tid < %d)\n\
                  \        %s(%s + region_%d(it - %d), %s + region_%d(it - \
                  %d), tid);\n"
                 node.Graph.name e.inst.Swp_core.Instances.k e.o e.f
                 cfg.Swp_core.Select.threads.(v) e.f
                 cfg.Swp_core.Select.threads.(v) (Emit.work_fn_name f) in_buf
                 v e.f out_buf v e.f))
          ordered;
        Buffer.add_string buf "      break; }\n"
      end)
    by_sm;
  Buffer.add_string buf "    }\n    /* II boundary */\n  }\n}\n";
  Buffer.contents buf

let profile_driver (f : Kernel.filter) ~numfirings =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "#include <cuda_runtime.h>\n#include <cstdio>\n\n";
  Buffer.add_string buf (Emit.c_of_filter f);
  Buffer.add_string buf
    (Printf.sprintf
       "\n\
        __global__ void profile_kernel(const float* in, float* out)\n\
        {\n\
       \  int tid = threadIdx.x;\n\
       \  int iters = %d / blockDim.x;\n\
       \  for (int i = 0; i < iters; i++)\n\
       \    %s(in, out, tid);\n\
        }\n\n"
       numfirings (Emit.work_fn_name f));
  Buffer.add_string buf
    (Printf.sprintf
       "int main(int argc, char** argv)\n\
        {\n\
       \  int threads = argc > 1 ? atoi(argv[1]) : 128;\n\
       \  float *in, *out;\n\
       \  cudaMalloc(&in, %d * sizeof(float));\n\
       \  cudaMalloc(&out, %d * sizeof(float));\n\
       \  cudaEvent_t start, stop;\n\
       \  cudaEventCreate(&start); cudaEventCreate(&stop);\n\
       \  cudaEventRecord(start);\n\
       \  profile_kernel<<<1, threads>>>(in, out);\n\
       \  cudaEventRecord(stop);\n\
       \  cudaEventSynchronize(stop);\n\
       \  float ms = 0;\n\
       \  cudaEventElapsedTime(&ms, start, stop);\n\
       \  printf(\"%%f\\n\", ms);\n\
       \  return 0;\n\
        }\n"
       (numfirings * max 1 f.Kernel.peek_rate)
       (numfirings * max 1 f.Kernel.push_rate));
  Buffer.contents buf

let m_lines = Obs.Metrics.counter "cudagen.lines"
let m_filters = Obs.Metrics.counter "cudagen.filters"

let program (c : Swp_core.Compile.compiled) =
  Obs.Trace.with_span "codegen" @@ fun () ->
  let g = c.Swp_core.Compile.graph in
  let sizing = c.Swp_core.Compile.sizing in
  let buf = Buffer.create 16384 in
  (* Provenance header: every artifact traces back to the schedule
     decision that produced it.  Deterministic fields only — the header
     must not break byte-identical serial-vs-parallel codegen. *)
  let stats = c.Swp_core.Compile.search_stats in
  Buffer.add_string buf
    (Printf.sprintf
       "/* streamit_gpu artifact\n\
       \ * quality: %s (%s)\n\
       \ * II: %d (lower bound %d, binding %s)\n\
       \ * schedule signature: %s\n\
       \ */\n"
       (Swp_core.Compile.quality_name c.Swp_core.Compile.quality)
       (Swp_core.Compile.rationale_name
          c.Swp_core.Compile.prov.Swp_core.Compile.rationale)
       stats.Swp_core.Ii_search.achieved_ii
       stats.Swp_core.Ii_search.lower_bound
       stats.Swp_core.Ii_search.bounds.Swp_core.Mii.binding
       (Swp_core.Report.schedule_signature c));
  Buffer.add_string buf "#include <cuda_runtime.h>\n#include <cstdio>\n\n";
  (* per-node region-offset helpers: ring of (stages+1) steady-state
     regions indexed by iteration *)
  let stages = Swp_core.Swp_schedule.stages c.Swp_core.Compile.schedule in
  Array.iter
    (fun (node : Graph.node) ->
      let v = node.Graph.id in
      let tokens =
        match Graph.out_edges g v with
        | e :: _ ->
          Swp_core.Buffer_layout.steady_tokens g c.Swp_core.Compile.config e
        | [] -> 0
      in
      Buffer.add_string buf
        (Printf.sprintf
           "static __device__ inline int region_%d(int it) { return ((it %% \
            %d) + %d) %% %d * %d; }\n"
           v (stages + 1) (stages + 1) (stages + 1) tokens))
    g.Graph.nodes;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (swp_kernel c);
  (* host side *)
  Buffer.add_string buf "\nint main()\n{\n";
  List.iter
    (fun ((e : Graph.edge), bytes) ->
      Buffer.add_string buf
        (Printf.sprintf "  float* %s; cudaMalloc(&%s, %d);\n" (buffer_name e)
           (buffer_name e) bytes))
    sizing.Swp_core.Buffer_layout.per_edge;
  Buffer.add_string buf
    "  float *stream_in, *stream_out;\n\
     \  /* input shuffled on the host per eq. (9) before upload */\n\
     \  cudaMalloc(&stream_in, 1 << 20);\n\
     \  cudaMalloc(&stream_out, 1 << 20);\n";
  let args =
    (List.map
       (fun ((e : Graph.edge), _) -> buffer_name e)
       sizing.Swp_core.Buffer_layout.per_edge
    @ [ "stream_in"; "stream_out"; "1024" ])
    |> String.concat ", "
  in
  Buffer.add_string buf
    (Printf.sprintf "  swp_kernel<<<%d, %d>>>(%s);\n"
       c.Swp_core.Compile.schedule.Swp_core.Swp_schedule.num_sms
       c.Swp_core.Compile.config.Swp_core.Select.block_threads args);
  Buffer.add_string buf "  cudaDeviceSynchronize();\n  return 0;\n}\n";
  let src = Buffer.contents buf in
  let lines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 src in
  Obs.Metrics.add m_lines lines;
  Obs.Metrics.add m_filters (Array.length g.Graph.nodes);
  Obs.Trace.add_attr "lines" (Obs.Trace.Int lines);
  Obs.Trace.add_attr "filters" (Obs.Trace.Int (Array.length g.Graph.nodes));
  src
