(* CUDA program assembly — now a thin driver over the portable kernel
   IR: [Kir.Lower] turns the compiled schedule into a {!Kir.Ir.program}
   and [Kir.Print_cuda] prints it.  The output is byte-identical to the
   pre-KIR one-pass generator (pinned by test/fixtures/codegen/*.cu).

   This module keeps the historical API surface (splitter/joiner
   conversion, [swp_kernel], [profile_driver], [program]) plus the
   codegen observability counters. *)

open Streamit

let splitter_filter = Kir.Lower.splitter_filter
let joiner_filter = Kir.Lower.joiner_filter

let swp_kernel (c : Swp_core.Compile.compiled) =
  Kir.Print_cuda.kernel (Kir.Lower.lower c)

let profile_driver (f : Kernel.filter) ~numfirings =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "#include <cuda_runtime.h>\n#include <cstdio>\n\n";
  Buffer.add_string buf (Emit.c_of_filter f);
  Buffer.add_string buf
    (Printf.sprintf
       "\n\
        __global__ void profile_kernel(const float* in, float* out)\n\
        {\n\
       \  int tid = threadIdx.x;\n\
       \  int iters = %d / blockDim.x;\n\
       \  for (int i = 0; i < iters; i++)\n\
       \    %s(in, out, tid);\n\
        }\n\n"
       numfirings (Emit.work_fn_name f));
  Buffer.add_string buf
    (Printf.sprintf
       "int main(int argc, char** argv)\n\
        {\n\
       \  int threads = argc > 1 ? atoi(argv[1]) : 128;\n\
       \  float *in, *out;\n\
       \  cudaMalloc(&in, %d * sizeof(float));\n\
       \  cudaMalloc(&out, %d * sizeof(float));\n\
       \  cudaEvent_t start, stop;\n\
       \  cudaEventCreate(&start); cudaEventCreate(&stop);\n\
       \  cudaEventRecord(start);\n\
       \  profile_kernel<<<1, threads>>>(in, out);\n\
       \  cudaEventRecord(stop);\n\
       \  cudaEventSynchronize(stop);\n\
       \  float ms = 0;\n\
       \  cudaEventElapsedTime(&ms, start, stop);\n\
       \  printf(\"%%f\\n\", ms);\n\
       \  return 0;\n\
        }\n"
       (numfirings * max 1 f.Kernel.peek_rate)
       (numfirings * max 1 f.Kernel.push_rate));
  Buffer.contents buf

let m_lines = Obs.Metrics.counter "cudagen.lines"
let m_filters = Obs.Metrics.counter "cudagen.filters"

let program (c : Swp_core.Compile.compiled) =
  Obs.Trace.with_span "codegen" @@ fun () ->
  let g = c.Swp_core.Compile.graph in
  let src = Kir.Print_cuda.print (Kir.Lower.lower c) in
  let lines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 src in
  Obs.Metrics.add m_lines lines;
  Obs.Metrics.add m_filters (Array.length g.Graph.nodes);
  Obs.Trace.add_attr "lines" (Obs.Trace.Int lines);
  Obs.Trace.add_attr "filters" (Obs.Trace.Int (Array.length g.Graph.nodes));
  src
