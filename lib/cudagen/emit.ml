(* CUDA filter emission — thin compatibility wrapper.

   The actual printer lives in [Kir.Print_cuda]; this module keeps the
   historical [Cudagen.Emit] API (and its [buffer_style] type) for
   callers that emit a single filter outside a full lowered program,
   e.g. the profiling driver and the unit tests. *)

exception Unsupported = Kir.Ir.Unsupported

type buffer_style = Coalesced_indices | Natural_indices

let style_of_buffer_style = function
  | Coalesced_indices -> Kir.Ir.Coalesced
  | Natural_indices -> Kir.Ir.Natural

let c_ident = Kir.Ir.c_ident
let work_fn_name = Kir.Print_cuda.work_fn_name

let c_of_filter ?(style = Coalesced_indices) f =
  Kir.Print_cuda.c_of_filter ~style:(style_of_buffer_style style) f
