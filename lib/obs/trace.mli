(** Hierarchical span tracing for the compilation pipeline.

    A {e span} is a named, timed region of work; spans nest, forming one
    tree per top-level region.  The tracer is {b disabled by default}: a
    disabled [with_span] is a single ref read and a branch around the
    thunk call, so instrumented hot paths cost nothing measurable when
    tracing is off (the tier-1 timing benchmarks run with the sink
    disabled).

    The tracer is domain-safe.  Every domain records into its own span
    stack and completed-root buffer (domain-local storage), so spans
    opened by parallel workers can never interleave into each other's
    trees; the export functions merge all domains' buffers, ordering
    roots by completion and tagging each with a per-domain [tid] lane in
    the Chrome export.  For a single-domain program the observable
    behaviour is unchanged.

    Finished traces export in two forms: Chrome trace-event JSON
    (loadable at [ui.perfetto.dev] or [chrome://tracing]) and a
    human-readable indented tree.

    Timestamps come from a process-wide microsecond clock
    ([Unix.gettimeofday] based); tests may substitute a deterministic
    fake clock with {!set_clock}. *)

type value = Int of int | Float of float | Str of string | Bool of bool
(** Attribute values attached to spans (rendered into the Chrome [args]
    object). *)

type span = {
  name : string;
  start_us : float;
  mutable end_us : float;
  mutable attrs : (string * value) list;  (** in attachment order *)
  mutable children : span list;           (** in start order once closed *)
}

(** {1 Sink control} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Drops every domain's recorded spans and the {e calling} domain's
    open stack (other domains' open stacks belong to them); the enabled
    flag is unchanged. *)

val set_clock : (unit -> float) -> unit
(** Replace the timestamp source (must return microseconds,
    monotonically non-decreasing).  For deterministic tests. *)

val use_default_clock : unit -> unit

(** {1 Recording} *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a new span nested under the
    innermost open span.  The span is closed (and recorded) even when
    [f] raises.  When the sink is disabled this is just [f ()]. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span.  No-op when
    disabled or outside any span. *)

(** {1 Export} *)

val roots : unit -> span list
(** Completed top-level spans, in start order.  Spans still open are not
    included. *)

val find_all : string -> span list
(** All completed spans with the given name, anywhere in the recorded
    forest, in depth-first start order. *)

val to_chrome_json : unit -> string
(** The recorded forest as Chrome trace-event JSON (one complete ["X"]
    event per span, [ts]/[dur] in microseconds, attrs under [args]). *)

val pp_tree : Format.formatter -> unit -> unit
(** Indented per-span duration tree of the recorded forest. *)
