type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  start_us : float;
  mutable end_us : float;
  mutable attrs : (string * value) list;
  mutable children : span list;
}

let enabled = ref false
let default_clock () = Unix.gettimeofday () *. 1e6
let clock = ref default_clock

(* Every domain records into its own sink: an open-span stack (innermost
   first) plus a buffer of completed roots.  Spans are created, mutated
   and closed entirely on their owning domain, so the only shared state
   is the registry of per-domain buffers (mutex-guarded, touched once
   per domain) and the root sequence counter (atomic).  Export merges
   the buffers and orders roots by completion sequence, which for a
   single domain coincides with the pre-domains behaviour exactly.

   Children are accumulated in reverse and flipped once the span closes,
   so an exported span's [children] are always in start order. *)

type sink = {
  tid : int;  (* stable per-domain lane for the Chrome export *)
  mutable stack : span list;
  mutable finished : (int * span) list;  (* (completion seq, root) *)
}

let sinks : sink list ref = ref []
let sinks_m = Mutex.create ()
let next_tid = Atomic.make 1
let root_seq = Atomic.make 0

let sink_key : sink Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        { tid = Atomic.fetch_and_add next_tid 1; stack = []; finished = [] }
      in
      Mutex.lock sinks_m;
      sinks := s :: !sinks;
      Mutex.unlock sinks_m;
      s)

let my_sink () = Domain.DLS.get sink_key

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let reset () =
  (* Clears every domain's completed roots, but only the calling
     domain's open stack — other domains' stacks are theirs alone. *)
  let s = my_sink () in
  s.stack <- [];
  Mutex.lock sinks_m;
  List.iter (fun s -> s.finished <- []) !sinks;
  Mutex.unlock sinks_m

let set_clock f = clock := f
let use_default_clock () = clock := default_clock

let add_attr k v =
  if !enabled then
    match (my_sink ()).stack with
    | [] -> ()
    | s :: _ -> s.attrs <- s.attrs @ [ (k, v) ]

let with_span ?(attrs = []) name f =
  if not !enabled then f ()
  else begin
    let sink = my_sink () in
    let s =
      { name; start_us = !clock (); end_us = 0.0; attrs; children = [] }
    in
    sink.stack <- s :: sink.stack;
    let close () =
      s.end_us <- !clock ();
      s.children <- List.rev s.children;
      (match sink.stack with
      | top :: rest when top == s -> sink.stack <- rest
      | _ -> () (* reset was called mid-span; drop silently *));
      match sink.stack with
      | [] ->
        sink.finished <- (Atomic.fetch_and_add root_seq 1, s) :: sink.finished
      | parent :: _ -> parent.children <- s :: parent.children
    in
    Fun.protect ~finally:close f
  end

(* Merged completed roots from all domains, as [(tid, seq, span)] in
   completion order. *)
let merged () =
  let all =
    Mutex.lock sinks_m;
    let l =
      List.concat_map
        (fun s -> List.map (fun (seq, sp) -> (s.tid, seq, sp)) s.finished)
        !sinks
    in
    Mutex.unlock sinks_m;
    l
  in
  List.sort (fun (_, a, _) (_, b, _) -> compare a b) all

let roots () = List.map (fun (_, _, s) -> s) (merged ())

let find_all name =
  let out = ref [] in
  let rec walk s =
    if s.name = name then out := s :: !out;
    List.iter walk s.children
  in
  List.iter walk (roots ());
  List.rev !out

(* ---------- export ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_value = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.6g" f
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let rec emit tid s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":%.1f,\
          \"dur\":%.1f,\"pid\":1,\"tid\":%d"
         (json_escape s.name) s.start_us
         (s.end_us -. s.start_us)
         tid);
    if s.attrs <> [] then begin
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":%s" (json_escape k) (json_of_value v)))
        s.attrs;
      Buffer.add_char b '}'
    end;
    Buffer.add_char b '}';
    List.iter (emit tid) s.children
  in
  List.iter (fun (tid, _, s) -> emit tid s) (merged ());
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let pp_tree fmt () =
  let rec pp depth s =
    Format.fprintf fmt "%s%-*s %10.0f us" (String.make (2 * depth) ' ')
      (max 1 (30 - (2 * depth)))
      s.name
      (s.end_us -. s.start_us);
    List.iter
      (fun (k, v) ->
        Format.fprintf fmt " %s=%s" k
          (match v with
          | Int i -> string_of_int i
          | Float f -> Printf.sprintf "%g" f
          | Str s -> s
          | Bool b -> string_of_bool b))
      s.attrs;
    Format.fprintf fmt "@.";
    List.iter (pp (depth + 1)) s.children
  in
  List.iter (pp 0) (roots ())
