type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  start_us : float;
  mutable end_us : float;
  mutable attrs : (string * value) list;
  mutable children : span list;
}

let enabled = ref false
let default_clock () = Unix.gettimeofday () *. 1e6
let clock = ref default_clock

(* Open spans, innermost first; completed roots in reverse start order.
   Children are accumulated in reverse and flipped once the span closes,
   so an exported span's [children] are always in start order. *)
let stack : span list ref = ref []
let finished : span list ref = ref []

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let reset () =
  stack := [];
  finished := []

let set_clock f = clock := f
let use_default_clock () = clock := default_clock

let add_attr k v =
  if !enabled then
    match !stack with
    | [] -> ()
    | s :: _ -> s.attrs <- s.attrs @ [ (k, v) ]

let with_span ?(attrs = []) name f =
  if not !enabled then f ()
  else begin
    let s =
      { name; start_us = !clock (); end_us = 0.0; attrs; children = [] }
    in
    stack := s :: !stack;
    let close () =
      s.end_us <- !clock ();
      s.children <- List.rev s.children;
      (match !stack with
      | top :: rest when top == s -> stack := rest
      | _ -> () (* reset was called mid-span; drop silently *));
      match !stack with
      | [] -> finished := s :: !finished
      | parent :: _ -> parent.children <- s :: parent.children
    in
    Fun.protect ~finally:close f
  end

let roots () = List.rev !finished

let find_all name =
  let out = ref [] in
  let rec walk s =
    if s.name = name then out := s :: !out;
    List.iter walk s.children
  in
  List.iter walk (roots ());
  List.rev !out

(* ---------- export ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_value = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.6g" f
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let rec emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":%.1f,\
          \"dur\":%.1f,\"pid\":1,\"tid\":1"
         (json_escape s.name) s.start_us
         (s.end_us -. s.start_us));
    if s.attrs <> [] then begin
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":%s" (json_escape k) (json_of_value v)))
        s.attrs;
      Buffer.add_char b '}'
    end;
    Buffer.add_char b '}';
    List.iter emit s.children
  in
  List.iter emit (roots ());
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let pp_tree fmt () =
  let rec pp depth s =
    Format.fprintf fmt "%s%-*s %10.0f us" (String.make (2 * depth) ' ')
      (max 1 (30 - (2 * depth)))
      s.name
      (s.end_us -. s.start_us);
    List.iter
      (fun (k, v) ->
        Format.fprintf fmt " %s=%s" k
          (match v with
          | Int i -> string_of_int i
          | Float f -> Printf.sprintf "%g" f
          | Str s -> s
          | Bool b -> string_of_bool b))
      s.attrs;
    Format.fprintf fmt "@.";
    List.iter (pp (depth + 1)) s.children
  in
  List.iter (pp 0) (roots ())
