(* Canonical float rendering, shared by every textual artifact.

   Three sites used to carry private copies of this logic
   ([Export.float_str], [Report.num], [Metrics.json_num]) and they had
   drifted: the JSON writers printed non-integer floats at [%.6g]
   (lossy — two distinct floats could render identically), the
   OpenMetrics exporter at [%.17g] (round-trippable but ugly: 0.1
   became 0.10000000000000001), infinities leaked through [Report.num]
   as the invalid JSON token [inf], and the [-0.0] sign was dropped or
   kept depending on which copy ran.  One implementation now serves all
   of them; only the representation of non-finite values differs per
   format, because JSON and OpenMetrics genuinely disagree there.

   Finite values render as:
   - integers with |f| < 1e15 as ["%.1f"] ("42.0") — exact in this
     range, and the trailing [.0] keeps the value visibly a float.
     [-0.0] keeps its sign ("-0.0"): the sign bit survives a
     round-trip, so dropping it would un-canonicalize re-parsed data.
   - everything else (including integers at or above 1e15, where
     ["%.1f"] would print digits the float cannot actually resolve) as
     the shortest decimal string that parses back to exactly the same
     bits: try [%.15g], [%.16g], [%.17g] in turn and keep the first
     that round-trips.  17 significant digits always round-trip for
     IEEE double, so the fallback is total. *)

let shortest f =
  let try_prec p =
    let s = Printf.sprintf "%.*g" p f in
    if float_of_string s = f then Some s else None
  in
  match try_prec 15 with
  | Some s -> s
  | None -> (
    match try_prec 16 with
    | Some s -> s
    | None -> Printf.sprintf "%.17g" f)

let finite f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* sprintf "%.1f" (-0.0) already yields "-0.0"; this branch is
       sign-correct as-is. *)
    Printf.sprintf "%.1f" f
  else shortest f

(* Total rendering for contexts that can say anything (human text,
   property tests). *)
let to_string f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else finite f

(* JSON has no lexical form for non-finite numbers; [null] is the
   conventional spelling and what consumers of the report already
   handle. *)
let json f = if Float.is_finite f then finite f else "null"

(* OpenMetrics mandates these exact spellings. *)
let openmetrics f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else finite f
