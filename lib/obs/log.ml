type value = Trace.value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  seq : int;
  ts_us : float;
  name : string;
  attrs : (string * value) list;
}

(* Same per-domain-sink discipline as Trace: every domain appends to its
   own buffer, the only shared state is the sink registry (mutex, touched
   once per domain) and the sequence counter (atomic).  Export merges and
   sorts by sequence, which for a single domain is append order. *)

type sink = { mutable events : event list }

let enabled = ref false
let sinks : sink list ref = ref []
let sinks_m = Mutex.create ()
let next_seq = Atomic.make 0

let sink_key : sink Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { events = [] } in
      Mutex.lock sinks_m;
      sinks := s :: !sinks;
      Mutex.unlock sinks_m;
      s)

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let reset () =
  Mutex.lock sinks_m;
  List.iter (fun s -> s.events <- []) !sinks;
  Mutex.unlock sinks_m;
  Atomic.set next_seq 0

let event ?(attrs = []) name =
  if !enabled then begin
    let s = Domain.DLS.get sink_key in
    s.events <-
      {
        seq = Atomic.fetch_and_add next_seq 1;
        ts_us = Unix.gettimeofday () *. 1e6;
        name;
        attrs;
      }
      :: s.events
  end

let events () =
  Mutex.lock sinks_m;
  let all = List.concat_map (fun s -> s.events) !sinks in
  Mutex.unlock sinks_m;
  List.sort (fun a b -> compare a.seq b.seq) all

let find name = List.filter (fun e -> e.name = name) (events ())

let json_of_value = function
  | Int i -> string_of_int i
  | Float f -> Report.num f
  | Str s -> "\"" ^ Report.escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let event_json ~timestamps e =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"seq\":%d,\"name\":\"%s\"" e.seq (Report.escape e.name));
  if timestamps then Buffer.add_string b (Printf.sprintf ",\"ts_us\":%.1f" e.ts_us);
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf ",\"%s\":%s" (Report.escape k) (json_of_value v)))
    e.attrs;
  Buffer.add_char b '}';
  Buffer.contents b

let to_json_lines ?(timestamps = true) () =
  String.concat ""
    (List.map (fun e -> event_json ~timestamps e ^ "\n") (events ()))
