(** OpenMetrics/Prometheus text exposition for the {!Metrics} registry.

    [to_openmetrics ()] renders the current snapshot in the OpenMetrics
    text format (the content type a Prometheus scrape endpoint serves),
    ready for the future [serve] daemon to expose.  Conventions:

    - dot-separated registry names are sanitized to underscore form
      ([lp.pivots] → [lp_pivots]);
    - counters carry the mandated [_total] sample suffix;
    - histograms expose [_count] and [_sum], plus [_min]/[_max] gauges
      when non-empty (the registry tracks extrema, not buckets);
    - every family gets a [# TYPE] line; output ends with [# EOF]. *)

val sanitize : string -> string
(** Map a registry name to a legal Prometheus metric name. *)

val escape_label : string -> string
(** Escape a label value per the exposition-format ABNF. *)

val to_openmetrics : unit -> string

val float_str : float -> string
(** Sample-value rendering ({!Canon.openmetrics}); exposed so tests
    can assert all exporters share one formatter. *)
