(** Structured event log: flat, append-only, domain-safe.

    Where {!Trace} records {e durations} (nested spans), the log records
    {e decisions} — point events with structured attributes ("committed
    attempt at II 34 from arm dense", "degraded: budget exhausted at
    stage.search").  The report assembler replays them to explain a
    compile after the fact.

    Disabled by default; a disabled {!event} is one ref read.  Like the
    tracer, each domain appends to its own sink (domain-local storage)
    and a global atomic hands out sequence numbers, so events from
    parallel workers merge into one total order with no lock on the
    record path. *)

type value = Trace.value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  seq : int;       (** global record order across all domains *)
  ts_us : float;   (** wall-clock microseconds (excluded from
                       deterministic exports) *)
  name : string;
  attrs : (string * value) list;
}

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Drops every domain's recorded events and restarts sequence numbers
    at 0; the enabled flag is unchanged. *)

val event : ?attrs:(string * value) list -> string -> unit
(** Record one event.  No-op when disabled. *)

val events : unit -> event list
(** All recorded events from every domain, in sequence order. *)

val find : string -> event list
(** Recorded events with the given name, in sequence order. *)

val to_json_lines : ?timestamps:bool -> unit -> string
(** One JSON object per line, in sequence order.  [~timestamps:false]
    omits the wall-clock field, making the output deterministic for a
    deterministic compile. *)
