(** Minimal JSON document model for structured reports.

    The repo deliberately carries no JSON library; every exporter so far
    (traces, metrics, bench results) prints JSON by hand.  Reports are
    nested enough that hand-printing stops scaling, so this module gives
    the one abstraction they need: a document tree with a
    {b deterministic} serializer — field order is the construction
    order, floats render through one canonical formatter — so the same
    report built twice (or on different domain counts) serializes to the
    same bytes and can be hashed for a determinism signature. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control chars). *)

val num : float -> string
(** Canonical float rendering ({!Canon.json}): non-finite values become
    [null], integral values get one decimal ([12.0]), everything else
    the shortest decimal string that round-trips. *)

val to_string : t -> string
(** Compact single-line serialization (the hashable form). *)

val to_string_indent : t -> string
(** Two-space indented serialization, newline-terminated. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val path : string list -> t -> t option
(** Nested field lookup: [path ["a"; "b"] doc]. *)
