type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One canonical float rendering shared by the compact and indented
   printers, so a report serialized either way carries the same numbers
   (the determinism signature hashes the compact form).  Delegates to
   [Canon.json]: shortest round-trip form, non-finite as [null]. *)
let num = Canon.json

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (num f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string doc =
  let b = Buffer.create 1024 in
  write b doc;
  Buffer.contents b

let rec write_indent b level = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> write b v
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
    let pad = String.make ((level + 1) * 2) ' ' in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad;
        write_indent b (level + 1) x)
      xs;
    Buffer.add_char b '\n';
    Buffer.add_string b (String.make (level * 2) ' ');
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    let pad = String.make ((level + 1) * 2) ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad;
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\": ";
        write_indent b (level + 1) v)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b (String.make (level * 2) ' ');
    Buffer.add_char b '}'

let to_string_indent doc =
  let b = Buffer.create 1024 in
  write_indent b 0 doc;
  Buffer.add_char b '\n';
  Buffer.contents b

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec path keys doc =
  match keys with
  | [] -> Some doc
  | k :: rest -> ( match member k doc with Some v -> path rest v | None -> None)
