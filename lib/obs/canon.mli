(** Canonical float rendering shared by all textual artifacts (JSON
    reports, metrics snapshots, OpenMetrics exposition, frontend
    tokens).  Finite floats render identically everywhere: integers
    below 1e15 as ["42.0"] (sign of [-0.0] preserved), everything else
    as the shortest decimal string that round-trips to the same bits.
    The variants differ only on NaN/infinity, where the target formats
    genuinely disagree. *)

val finite : float -> string
(** Canonical form of a finite float.  Unspecified on NaN/infinity —
    use one of the total variants below. *)

val shortest : float -> string
(** Shortest [%g] form that round-trips ([%.15g] → [%.16g] → [%.17g]).
    Exposed for tests; [finite] already uses it. *)

val to_string : float -> string
(** Total: non-finite values as ["nan"], ["inf"], ["-inf"]. *)

val json : float -> string
(** JSON number token; non-finite values become ["null"]. *)

val openmetrics : float -> string
(** OpenMetrics sample value; non-finite as ["NaN"], ["+Inf"],
    ["-Inf"]. *)
