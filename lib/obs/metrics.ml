type labels = (string * string) list

(* Counters and gauges are single atomic cells, so concurrent updates
   from worker domains are lost-update-free without a lock on the hot
   path.  A histogram observation touches four fields that must stay
   mutually consistent (count/sum/min/max), so each histogram carries
   its own mutex; observations are rare enough (per solve, per seed)
   that the lock is invisible next to the work being measured. *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  hm : Mutex.t;
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

type instrument = C of counter | G of gauge | H of histogram

(* One table keyed by (name, sorted labels); creation is get-or-create so
   handles bound at module-load time remain the registry's instruments.
   The table itself is mutex-guarded — creation and snapshots are cold
   paths. *)
let registry : (string * labels, instrument) Hashtbl.t = Hashtbl.create 64
let registry_m = Mutex.create ()

let canon labels = List.sort compare labels

let get_or_create name labels make =
  let key = (name, canon labels) in
  Mutex.lock registry_m;
  let i =
    match Hashtbl.find_opt registry key with
    | Some i -> i
    | None ->
      let i = make () in
      Hashtbl.add registry key i;
      i
  in
  Mutex.unlock registry_m;
  i

let counter ?(labels = []) name =
  match get_or_create name labels (fun () -> C (Atomic.make 0)) with
  | C c -> c
  | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered as non-counter")

let gauge ?(labels = []) name =
  match get_or_create name labels (fun () -> G (Atomic.make 0.0)) with
  | G g -> g
  | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered as non-gauge")

let histogram ?(labels = []) name =
  match
    get_or_create name labels (fun () ->
        H { hm = Mutex.create (); n = 0; sum = 0.0; mn = nan; mx = nan })
  with
  | H h -> h
  | _ ->
    invalid_arg ("Metrics.histogram: " ^ name ^ " registered as non-histogram")

let inc c = Atomic.incr c
let add c d = ignore (Atomic.fetch_and_add c d)
let set g v = Atomic.set g v

let observe h v =
  Mutex.lock h.hm;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  h.mn <- (if h.n = 1 then v else Float.min h.mn v);
  h.mx <- (if h.n = 1 then v else Float.max h.mx v);
  Mutex.unlock h.hm

let value c = Atomic.get c
let gauge_value g = Atomic.get g

let with_hist h f =
  Mutex.lock h.hm;
  let v = f h in
  Mutex.unlock h.hm;
  v

let hist_count h = with_hist h (fun h -> h.n)
let hist_sum h = with_hist h (fun h -> h.sum)
let hist_min h = with_hist h (fun h -> h.mn)
let hist_max h = with_hist h (fun h -> h.mx)

type snapshot_item = {
  name : string;
  labels : labels;
  kind :
    [ `Counter of int
    | `Gauge of float
    | `Histogram of int * float * float * float ];
}

let snapshot () =
  Mutex.lock registry_m;
  let items =
    Hashtbl.fold
      (fun (name, labels) inst acc ->
        let kind =
          match inst with
          | C c -> `Counter (Atomic.get c)
          | G g -> `Gauge (Atomic.get g)
          | H h ->
            `Histogram (with_hist h (fun h -> (h.n, h.sum, h.mn, h.mx)))
        in
        { name; labels; kind } :: acc)
      registry []
  in
  Mutex.unlock registry_m;
  List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) items

let reset () =
  Mutex.lock registry_m;
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g 0.0
      | H h ->
        Mutex.lock h.hm;
        h.n <- 0;
        h.sum <- 0.0;
        h.mn <- nan;
        h.mx <- nan;
        Mutex.unlock h.hm)
    registry;
  Mutex.unlock registry_m

let labels_suffix labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let json_num = Canon.json

let to_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"metrics\":[";
  List.iteri
    (fun i it ->
      if i > 0 then Buffer.add_char b ',';
      let labels =
        String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\":\"%s\"" (Report.escape k)
                 (Report.escape v))
             it.labels)
      in
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"labels\":{%s},"
           (Report.escape it.name) labels);
      (match it.kind with
      | `Counter v ->
        Buffer.add_string b
          (Printf.sprintf "\"type\":\"counter\",\"value\":%d}" v)
      | `Gauge v ->
        Buffer.add_string b
          (Printf.sprintf "\"type\":\"gauge\",\"value\":%s}" (json_num v))
      | `Histogram (n, sum, mn, mx) ->
        Buffer.add_string b
          (Printf.sprintf
             "\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\
              \"max\":%s}"
             n (json_num sum) (json_num mn) (json_num mx))))
    (snapshot ());
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_text fmt () =
  List.iter
    (fun it ->
      let id = it.name ^ labels_suffix it.labels in
      match it.kind with
      | `Counter v -> Format.fprintf fmt "%-44s %d@." id v
      | `Gauge v -> Format.fprintf fmt "%-44s %g@." id v
      | `Histogram (n, sum, mn, mx) ->
        if n = 0 then Format.fprintf fmt "%-44s count=0@." id
        else
          Format.fprintf fmt "%-44s count=%d sum=%g min=%g max=%g@." id n sum
            mn mx)
    (snapshot ())
