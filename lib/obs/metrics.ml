type labels = (string * string) list

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

type instrument = C of counter | G of gauge | H of histogram

(* One table keyed by (name, sorted labels); creation is get-or-create so
   handles bound at module-load time remain the registry's instruments. *)
let registry : (string * labels, instrument) Hashtbl.t = Hashtbl.create 64

let canon labels = List.sort compare labels

let get_or_create name labels make =
  let key = (name, canon labels) in
  match Hashtbl.find_opt registry key with
  | Some i -> i
  | None ->
    let i = make () in
    Hashtbl.add registry key i;
    i

let counter ?(labels = []) name =
  match get_or_create name labels (fun () -> C { c = 0 }) with
  | C c -> c
  | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered as non-counter")

let gauge ?(labels = []) name =
  match get_or_create name labels (fun () -> G { g = 0.0 }) with
  | G g -> g
  | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered as non-gauge")

let histogram ?(labels = []) name =
  match
    get_or_create name labels (fun () ->
        H { n = 0; sum = 0.0; mn = nan; mx = nan })
  with
  | H h -> h
  | _ ->
    invalid_arg ("Metrics.histogram: " ^ name ^ " registered as non-histogram")

let inc c = c.c <- c.c + 1
let add c d = c.c <- c.c + d
let set g v = g.g <- v

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  h.mn <- (if h.n = 1 then v else Float.min h.mn v);
  h.mx <- (if h.n = 1 then v else Float.max h.mx v)

let value c = c.c
let gauge_value g = g.g
let hist_count h = h.n
let hist_sum h = h.sum
let hist_min h = h.mn
let hist_max h = h.mx

type snapshot_item = {
  name : string;
  labels : labels;
  kind :
    [ `Counter of int
    | `Gauge of float
    | `Histogram of int * float * float * float ];
}

let snapshot () =
  Hashtbl.fold
    (fun (name, labels) inst acc ->
      let kind =
        match inst with
        | C c -> `Counter c.c
        | G g -> `Gauge g.g
        | H h -> `Histogram (h.n, h.sum, h.mn, h.mx)
      in
      { name; labels; kind } :: acc)
    registry []
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let reset () =
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.0
      | H h ->
        h.n <- 0;
        h.sum <- 0.0;
        h.mn <- nan;
        h.mx <- nan)
    registry

let labels_suffix labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let json_num f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"metrics\":[";
  List.iteri
    (fun i it ->
      if i > 0 then Buffer.add_char b ',';
      let labels =
        String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" k v)
             it.labels)
      in
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"labels\":{%s}," it.name labels);
      (match it.kind with
      | `Counter v ->
        Buffer.add_string b
          (Printf.sprintf "\"type\":\"counter\",\"value\":%d}" v)
      | `Gauge v ->
        Buffer.add_string b
          (Printf.sprintf "\"type\":\"gauge\",\"value\":%s}" (json_num v))
      | `Histogram (n, sum, mn, mx) ->
        Buffer.add_string b
          (Printf.sprintf
             "\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\
              \"max\":%s}"
             n (json_num sum) (json_num mn) (json_num mx))))
    (snapshot ());
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_text fmt () =
  List.iter
    (fun it ->
      let id = it.name ^ labels_suffix it.labels in
      match it.kind with
      | `Counter v -> Format.fprintf fmt "%-44s %d@." id v
      | `Gauge v -> Format.fprintf fmt "%-44s %g@." id v
      | `Histogram (n, sum, mn, mx) ->
        if n = 0 then Format.fprintf fmt "%-44s count=0@." id
        else
          Format.fprintf fmt "%-44s count=%d sum=%g min=%g max=%g@." id n sum
            mn mx)
    (snapshot ())
