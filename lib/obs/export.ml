(* OpenMetrics text exposition over the Metrics registry.

   The registry names instruments [subsystem.noun.verb]; Prometheus
   names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so dots (and any other
   illegal character) become underscores.  Counters get the mandated
   [_total] sample suffix; histograms expose [_count] and [_sum] plus
   [_min]/[_max] gauges (the registry keeps extrema, not buckets). *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* Label values escape per the OpenMetrics ABNF: backslash, double
   quote, and line feed. *)
let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let labels_str labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
           labels)
    ^ "}"

let float_str = Canon.openmetrics

let to_openmetrics () =
  let items = Metrics.snapshot () in
  let b = Buffer.create 4096 in
  (* One TYPE line per metric family: snapshot is sorted by (name,
     labels), so a family's cells are adjacent and the header goes on
     the first. *)
  let last_family = ref "" in
  let family name kind =
    if name <> !last_family then begin
      last_family := name;
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (it : Metrics.snapshot_item) ->
      let name = sanitize it.name in
      let ls = labels_str it.labels in
      match it.kind with
      | `Counter v ->
        family name "counter";
        Buffer.add_string b (Printf.sprintf "%s_total%s %d\n" name ls v)
      | `Gauge v ->
        family name "gauge";
        Buffer.add_string b (Printf.sprintf "%s%s %s\n" name ls (float_str v))
      | `Histogram (count, sum, min_v, max_v) ->
        family name "histogram";
        Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" name ls count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" name ls (float_str sum));
        (* Extrema only exist once something was observed. *)
        if count > 0 then begin
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s_min gauge\n%s_min%s %s\n" name name ls
               (float_str min_v));
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s_max gauge\n%s_max%s %s\n" name name ls
               (float_str max_v));
          last_family := ""
        end)
    items;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
