(** Process-global metrics registry: named counters, gauges and
    histograms with structured labels.

    Instruments are created lazily and get-or-create by [(name, labels)]
    key, so a module may bind its handles once at load time
    ([let pivots = Obs.Metrics.counter "lp.pivots"]) and bump them from
    hot paths with a single atomic update — there is no enabled check
    and no allocation on the update path.  {!reset} zeroes every
    instrument {e in place}, keeping cached handles valid.

    The registry is domain-safe: counters and gauges are atomic cells
    (concurrent increments are never lost), histogram observations are
    serialized per instrument, and creation/snapshot/reset take the
    registry lock.

    Snapshots export as JSON or aligned text.  Naming convention:
    dot-separated [subsystem.noun[.verb]] (e.g. [lp.pivots],
    [profile.cache.hits], [rat.tier.promotions]). *)

type labels = (string * string) list
(** Sorted internally; label order at creation does not matter. *)

type counter
type gauge
type histogram

(** {1 Creation (get-or-create)} *)

val counter : ?labels:labels -> string -> counter
val gauge : ?labels:labels -> string -> gauge
val histogram : ?labels:labels -> string -> histogram

(** {1 Updates} *)

val inc : counter -> unit
val add : counter -> int -> unit
(** Negative deltas are allowed (counters are plain accumulators). *)

val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reads} *)

val value : counter -> int
val gauge_value : gauge -> float

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
(** [nan] when empty. *)

val hist_max : histogram -> float
(** [nan] when empty. *)

(** {1 Registry} *)

type snapshot_item = {
  name : string;
  labels : labels;
  kind : [ `Counter of int | `Gauge of float | `Histogram of int * float * float * float ];
      (** histogram payload: (count, sum, min, max) *)
}

val snapshot : unit -> snapshot_item list
(** Every registered instrument, sorted by (name, labels). *)

val to_json : unit -> string
val pp_text : Format.formatter -> unit -> unit

val reset : unit -> unit
(** Zero all instruments in place (registered handles stay live). *)

val json_num : float -> string
(** Snapshot-JSON number rendering ({!Canon.json}); exposed so tests
    can assert all exporters share one formatter. *)
