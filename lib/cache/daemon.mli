(** The serve daemon's request loop: newline-delimited JSON requests
    in, one response line each, backed by {!Service} with {!Guard}
    admission control in front.  Lives in the library (rather than the
    binary) so the chaos campaign and the tests drive the exact
    production loop.

    Hardening: request lines are read through
    {!Protocol.read_bounded_line} (an over-limit line yields one error
    response, not an unbounded buffer); compile requests are admitted
    serially in arrival order before any parsing, so load sheds are
    deterministic; a shutdown request drains — refuses new admissions,
    waits for in-flight work, and reports the final counters. *)

type t

val default_max_line_bytes : int
(** 4 MiB. *)

val create :
  ?guard:Guard.t ->
  ?max_line_bytes:int ->
  ?lookup_program:(string -> (Streamit.Graph.t, string) result) ->
  Service.t ->
  t
(** [lookup_program] resolves a request's ["program"] field (builtin
    benchmark names, file loading — policy the binary supplies); the
    default refuses every name.  Inline ["src"] is always parsed by
    the daemon itself.  [max_line_bytes] must be >= 1024. *)

val service : t -> Service.t
val guard : t -> Guard.t

val graph_of_request :
  t -> Protocol.request -> (Streamit.Graph.t, string) result

val options_of_request : Protocol.request -> (Key.options, string) result

val health_json : t -> (string * Obs.Report.t) list
(** The ping op's body (version, cache health, guard occupancy,
    breaker state) — also what [--health] prints. *)

val handle_line :
  t -> string -> [ `Reply of string | `Shutdown of string ]
(** One already-read input line to its response.  A JSON array is a
    batch: admitted serially in order, executed on the {!Par.Pool},
    answered as a JSON array in request order. *)

val serve_channel : t -> in_channel -> out_channel -> bool
(** Serve until EOF or shutdown; [true] iff a shutdown request (vs
    EOF) ended the stream. *)

val serve_socket : t -> string -> int
(** Serve one client at a time on a Unix domain socket at the given
    path (stale socket files are replaced; the socket is removed on
    exit).  Returns the process exit code. *)
