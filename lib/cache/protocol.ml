(* Wire protocol for [streamit_gpu serve]: newline-delimited JSON.

   One request object per line in, one response object per line out,
   in request order.  The repo already has a JSON *writer*
   ([Obs.Report]); this module adds the minimal reader the daemon
   needs — objects, arrays, strings, numbers, booleans, null — plus
   the typed request/response layer.

   The reader is hardened for a long-lived daemon fed by untrusted
   clients: duplicate object keys, non-finite numbers (1e999 parses to
   infinity and would silently coerce) and invalid UTF-8 inside
   strings are all rejected — the last matters because request ids are
   echoed back verbatim, and echoing invalid UTF-8 would make the
   daemon emit invalid JSON.  Typed fields are strict: a present field
   of the wrong type is an error, never silently ignored.  Input lines
   are read through {!read_bounded_line}, so one huge line costs a
   bounded buffer and a one-line error response, not an OOM.

   Request schema (all fields optional unless noted):
     {"op": "compile" | "stats" | "ping" | "shutdown", // default "compile"
      "id": <any json, echoed back verbatim>,
      "program": "<builtin benchmark name>",       // one of program/src
      "src": "<inline .str source>",               //   required for compile
      "num_sms": N, "coarsening": N, "scheme": "SWP"|"SWPNC",
      "budget": N, "deadline": SECONDS, "portfolio": bool, "lns_rounds": N,
      "target": "cuda"|"wgsl"|"opencl"|"metal",    // default "cuda"
      "warm": bool,                                // default true
      "artifacts": ["schedule","layout","kernel","report"]}  // default none

   "cuda" is accepted as a legacy alias for the "kernel" artifact; both
   select the entry's kernel source, printed for the request's target.

   "deadline" is a per-request wall-clock bound in seconds; results
   compiled under one are returned but never cached (Service's taint
   rule), since a deadline can shape the artifact nondeterministically.

   Response: {"id": ..., "status": "ok"|"error", and for ok compiles
   "cache": "hit"|"miss"|"incremental", "key", "ii", "quality",
   "signature", plus any requested artifacts inline as strings}.  A
   request shed by admission control answers
   {"id": ..., "status": "error", "error": "overloaded: ...",
    "retry_after_ms": N}. *)

module J = Obs.Report

exception Parse_error of string

(* --- UTF-8 validation --- *)

(* Strict validation (rejects overlongs and surrogates): the daemon
   echoes string fields back, so accepting invalid UTF-8 here would
   mean emitting it later. *)
let utf8_valid s =
  let n = String.length s in
  let byte i = Char.code s.[i] in
  let cont i = i < n && byte i land 0xC0 = 0x80 in
  let rec go i =
    if i >= n then true
    else
      let c = byte i in
      if c < 0x80 then go (i + 1)
      else if c < 0xC2 then false (* bare continuation or overlong lead *)
      else if c < 0xE0 then cont (i + 1) && go (i + 2)
      else if c < 0xF0 then
        let b1_ok =
          i + 1 < n
          &&
          let b1 = byte (i + 1) in
          if c = 0xE0 then b1 >= 0xA0 && b1 <= 0xBF (* no overlongs *)
          else if c = 0xED then b1 >= 0x80 && b1 <= 0x9F (* no surrogates *)
          else b1 land 0xC0 = 0x80
        in
        b1_ok && cont (i + 2) && go (i + 3)
      else if c < 0xF5 then
        let b1_ok =
          i + 1 < n
          &&
          let b1 = byte (i + 1) in
          if c = 0xF0 then b1 >= 0x90 && b1 <= 0xBF
          else if c = 0xF4 then b1 >= 0x80 && b1 <= 0x8F (* <= U+10FFFF *)
          else b1 land 0xC0 = 0x80
        in
        b1_ok && cont (i + 2) && cont (i + 3) && go (i + 4)
      else false
  in
  go 0

(* --- reader --- *)

let parse (s : string) : J.t =
  if Resil.Inject.hit "protocol.decode" then
    raise (Parse_error "injected fault: protocol.decode");
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some c -> c
             | None -> fail "bad \\u escape"
           in
           (* Encode the code point as UTF-8; surrogate pairs are rare
              enough in compiler requests that the BMP suffices. *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end;
           pos := !pos + 5
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    let out = Buffer.contents b in
    if not (utf8_valid out) then fail "invalid UTF-8 in string";
    out
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> J.Int i
    | None -> (
      match float_of_string_opt text with
      | Some f when Float.is_finite f -> J.Float f
      | Some _ -> fail ("number out of range " ^ text)
      | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J.Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          (* Duplicate keys are a classic smuggling vector (readers
             disagree on which copy wins); refuse them outright. *)
          if List.mem_assoc k acc then fail (Printf.sprintf "duplicate key %S" k);
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J.Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J.Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J.Arr (elements [])
      end
    | Some '"' -> J.Str (parse_string ())
    | Some 't' -> literal "true" (J.Bool true)
    | Some 'f' -> literal "false" (J.Bool false)
    | Some 'n' -> literal "null" J.Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- bounded line reads --- *)

type read_result = Line of string | Truncated | Eof

let read_bounded_line ~max_bytes ic =
  let b = Buffer.create 256 in
  (* Over-limit: stop buffering but keep consuming to the newline, so
     the stream stays line-synchronized and the next request parses. *)
  let rec discard () =
    match input_char ic with
    | '\n' -> Truncated
    | _ -> discard ()
    | exception End_of_file -> Truncated
  in
  let rec go () =
    match input_char ic with
    | '\n' -> Line (Buffer.contents b)
    | c ->
      if Buffer.length b >= max_bytes then discard ()
      else begin
        Buffer.add_char b c;
        go ()
      end
    | exception End_of_file ->
      if Buffer.length b = 0 then Eof else Line (Buffer.contents b)
  in
  go ()

(* --- typed requests --- *)

type op = Compile | Stats | Ping | Shutdown

type request = {
  id : J.t option;
  op : op;
  program : string option;
  src : string option;
  num_sms : int option;
  coarsening : int;
  scheme : Swp_core.Compile.scheme;
  budget : int option;
  deadline : float option;
  portfolio : bool option;
  lns_rounds : int option;
  target : Kir.Ir.target;
  warm : bool;
  artifacts : string list;
}

let ( let* ) = Result.bind

(* Strict extraction: absent is fine, the wrong type is an error — a
   request that says {"budget": 1e23} meant *something*, and silently
   compiling without a budget is the wrong answer. *)
let typed doc name conv expect =
  match J.member name doc with
  | None -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "%s must be %s" name expect))

let str_field doc name =
  typed doc name (function J.Str s -> Some s | _ -> None) "a string"

let int_field doc name =
  typed doc name (function J.Int i -> Some i | _ -> None) "an integer"

let bool_field doc name =
  typed doc name (function J.Bool b -> Some b | _ -> None) "a boolean"

let num_field doc name =
  typed doc name
    (function J.Int i -> Some (float_of_int i) | J.Float f -> Some f | _ -> None)
    "a number"

let request_of_json doc =
  match doc with
  | J.Obj _ ->
    let* op =
      match J.member "op" doc with
      | None | Some (J.Str "compile") -> Ok Compile
      | Some (J.Str "stats") -> Ok Stats
      | Some (J.Str "ping") -> Ok Ping
      | Some (J.Str "shutdown") -> Ok Shutdown
      | Some (J.Str other) -> Error (Printf.sprintf "unknown op %S" other)
      | Some _ -> Error "op must be a string"
    in
    let* scheme =
      match J.member "scheme" doc with
      | None | Some (J.Str "SWP") -> Ok Swp_core.Compile.Swp_coalesced
      | Some (J.Str "SWPNC") -> Ok Swp_core.Compile.Swp_non_coalesced
      | Some (J.Str other) -> Error (Printf.sprintf "unknown scheme %S" other)
      | Some _ -> Error "scheme must be a string"
    in
    let* target =
      match J.member "target" doc with
      | None -> Ok Kir.Ir.Cuda
      | Some (J.Str s) -> (
        match Kir.Ir.target_of_string s with
        | Some t -> Ok t
        | None -> Error (Printf.sprintf "unknown target %S" s))
      | Some _ -> Error "target must be a string"
    in
    let* artifacts =
      match J.member "artifacts" doc with
      | Some (J.Arr xs) ->
        List.fold_left
          (fun acc x ->
            Result.bind acc (fun acc ->
                match x with
                | J.Str
                    (("schedule" | "layout" | "kernel" | "cuda" | "report")
                    as a) ->
                  Ok (a :: acc)
                | J.Str other ->
                  Error (Printf.sprintf "unknown artifact %S" other)
                | _ -> Error "artifacts must be strings"))
          (Ok []) xs
        |> Result.map List.rev
      | None -> Ok []
      | Some _ -> Error "artifacts must be an array"
    in
    let* program = str_field doc "program" in
    let* src = str_field doc "src" in
    let* num_sms = int_field doc "num_sms" in
    let* coarsening = int_field doc "coarsening" in
    let* budget = int_field doc "budget" in
    let* deadline = num_field doc "deadline" in
    let* portfolio = bool_field doc "portfolio" in
    let* lns_rounds = int_field doc "lns_rounds" in
    let* warm = bool_field doc "warm" in
    Ok
      {
        id = J.member "id" doc;
        op;
        program;
        src;
        num_sms;
        coarsening = Option.value coarsening ~default:1;
        scheme;
        budget;
        deadline;
        portfolio;
        lns_rounds;
        target;
        warm = Option.value warm ~default:true;
        artifacts;
      }
  | _ -> Error "request must be a JSON object"

let parse_request line =
  match parse line with
  | exception Parse_error m -> Error ("invalid JSON: " ^ m)
  | doc -> request_of_json doc

(* --- responses --- *)

let id_field r = [ ("id", Option.value r.id ~default:J.Null) ]

let resolve_id ?req ?id () =
  (* [req] when the request parsed; bare [id] when only the raw JSON
     did (clients correlate responses by id either way). *)
  match (req, id) with
  | Some r, _ -> Option.value r.id ~default:J.Null
  | None, Some v -> v
  | None, None -> J.Null

let error_response ?req ?id message =
  J.to_string
    (J.Obj
       [
         ("id", resolve_id ?req ?id ());
         ("status", J.Str "error");
         ("error", J.Str message);
       ])

let overloaded_response ?req ?id ~reason ~retry_after_ms () =
  (* The shed path must stay deterministic under a fixed admission
     state: same request order, same sheds, same hints. *)
  J.to_string
    (J.Obj
       [
         ("id", resolve_id ?req ?id ());
         ("status", J.Str "error");
         ("error", J.Str ("overloaded: " ^ reason));
         ("retry_after_ms", J.Int retry_after_ms);
       ])

let ok_response req (e : Store.entry) (outcome : Service.outcome) =
  let artifact name body =
    if List.mem name req.artifacts then [ (name, J.Str body) ] else []
  in
  J.to_string
    (J.Obj
       (id_field req
       @ [
           ("status", J.Str "ok");
           ("cache", J.Str (Service.outcome_name outcome));
           ("key", J.Str e.Store.key);
           ("ii", J.Int e.Store.ii);
           ("quality", J.Str e.Store.quality);
           ("signature", J.Str e.Store.signature);
         ]
       @ artifact "schedule" e.Store.schedule
       @ artifact "layout" e.Store.layout
       @ artifact "kernel" e.Store.kernel
       (* legacy alias: pre-v2 clients ask for "cuda" *)
       @ artifact "cuda" e.Store.kernel
       @ artifact "report" e.Store.report))

let shutdown_response ?(drain = []) req =
  J.to_string
    (J.Obj
       (id_field req @ [ ("status", J.Str "ok"); ("bye", J.Bool true) ] @ drain))
