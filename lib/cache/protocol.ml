(* Wire protocol for [streamit_gpu serve]: newline-delimited JSON.

   One request object per line in, one response object per line out,
   in request order.  The repo already has a JSON *writer*
   ([Obs.Report]); this module adds the minimal reader the daemon
   needs — objects, arrays, strings, numbers, booleans, null, UTF-8
   passed through opaquely — plus the typed request/response layer.

   Request schema (all fields optional unless noted):
     {"op": "compile" | "stats" | "shutdown",      // default "compile"
      "id": <any json, echoed back verbatim>,
      "program": "<builtin benchmark name>",       // one of program/src
      "src": "<inline .str source>",               //   required for compile
      "num_sms": N, "coarsening": N, "scheme": "SWP"|"SWPNC",
      "budget": N, "portfolio": bool, "lns_rounds": N,
      "target": "cuda"|"wgsl"|"opencl"|"metal",    // default "cuda"
      "warm": bool,                                // default true
      "artifacts": ["schedule","layout","kernel","report"]}  // default none

   "cuda" is accepted as a legacy alias for the "kernel" artifact; both
   select the entry's kernel source, printed for the request's target.

   Response: {"id": ..., "status": "ok"|"error", and for ok compiles
   "cache": "hit"|"miss"|"incremental", "key", "ii", "quality",
   "signature", plus any requested artifacts inline as strings}. *)

module J = Obs.Report

exception Parse_error of string

(* --- reader --- *)

let parse (s : string) : J.t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some c -> c
             | None -> fail "bad \\u escape"
           in
           (* Encode the code point as UTF-8; surrogate pairs are rare
              enough in compiler requests that the BMP suffices. *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end;
           pos := !pos + 5
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> J.Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> J.Float f
      | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J.Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J.Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J.Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J.Arr (elements [])
      end
    | Some '"' -> J.Str (parse_string ())
    | Some 't' -> literal "true" (J.Bool true)
    | Some 'f' -> literal "false" (J.Bool false)
    | Some 'n' -> literal "null" J.Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- typed requests --- *)

type op = Compile | Stats | Shutdown

type request = {
  id : J.t option;
  op : op;
  program : string option;
  src : string option;
  num_sms : int option;
  coarsening : int;
  scheme : Swp_core.Compile.scheme;
  budget : int option;
  portfolio : bool option;
  lns_rounds : int option;
  target : Kir.Ir.target;
  warm : bool;
  artifacts : string list;
}

let mem_str = function J.Str s -> Some s | _ -> None
let mem_int = function J.Int i -> Some i | _ -> None
let mem_bool = function J.Bool b -> Some b | _ -> None

let field doc name conv = Option.bind (J.member name doc) conv

let request_of_json doc =
  match doc with
  | J.Obj _ ->
    let op =
      match field doc "op" mem_str with
      | None | Some "compile" -> Ok Compile
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown op %S" other)
    in
    Result.bind op (fun op ->
        let scheme =
          match field doc "scheme" mem_str with
          | None | Some "SWP" -> Ok Swp_core.Compile.Swp_coalesced
          | Some "SWPNC" -> Ok Swp_core.Compile.Swp_non_coalesced
          | Some other -> Error (Printf.sprintf "unknown scheme %S" other)
        in
        Result.bind scheme (fun scheme ->
            let target =
              match field doc "target" mem_str with
              | None -> Ok Kir.Ir.Cuda
              | Some s -> (
                match Kir.Ir.target_of_string s with
                | Some t -> Ok t
                | None -> Error (Printf.sprintf "unknown target %S" s))
            in
            Result.bind target (fun target ->
            let artifacts =
              match J.member "artifacts" doc with
              | Some (J.Arr xs) ->
                List.fold_left
                  (fun acc x ->
                    Result.bind acc (fun acc ->
                        match x with
                        | J.Str
                            (("schedule" | "layout" | "kernel" | "cuda"
                             | "report") as a) ->
                          Ok (a :: acc)
                        | J.Str other ->
                          Error (Printf.sprintf "unknown artifact %S" other)
                        | _ -> Error "artifacts must be strings"))
                  (Ok []) xs
                |> Result.map List.rev
              | None -> Ok []
              | Some _ -> Error "artifacts must be an array"
            in
            Result.bind artifacts (fun artifacts ->
            Ok
              {
                id = J.member "id" doc;
                op;
                program = field doc "program" mem_str;
                src = field doc "src" mem_str;
                num_sms = field doc "num_sms" mem_int;
                coarsening =
                  Option.value (field doc "coarsening" mem_int) ~default:1;
                scheme;
                budget = field doc "budget" mem_int;
                portfolio = field doc "portfolio" mem_bool;
                lns_rounds = field doc "lns_rounds" mem_int;
                target;
                warm = Option.value (field doc "warm" mem_bool) ~default:true;
                artifacts;
              }))))
  | _ -> Error "request must be a JSON object"

let parse_request line =
  match parse line with
  | exception Parse_error m -> Error ("invalid JSON: " ^ m)
  | doc -> request_of_json doc

(* --- responses --- *)

let id_field r = [ ("id", Option.value r.id ~default:J.Null) ]

let error_response ?req ?id message =
  (* [req] when the request parsed; bare [id] when only the raw JSON
     did (clients correlate responses by id either way). *)
  let idv =
    match (req, id) with
    | Some r, _ -> Option.value r.id ~default:J.Null
    | None, Some v -> v
    | None, None -> J.Null
  in
  J.to_string
    (J.Obj
       [ ("id", idv); ("status", J.Str "error"); ("error", J.Str message) ])

let ok_response req (e : Store.entry) (outcome : Service.outcome) =
  let artifact name body =
    if List.mem name req.artifacts then [ (name, J.Str body) ] else []
  in
  J.to_string
    (J.Obj
       (id_field req
       @ [
           ("status", J.Str "ok");
           ("cache", J.Str (Service.outcome_name outcome));
           ("key", J.Str e.Store.key);
           ("ii", J.Int e.Store.ii);
           ("quality", J.Str e.Store.quality);
           ("signature", J.Str e.Store.signature);
         ]
       @ artifact "schedule" e.Store.schedule
       @ artifact "layout" e.Store.layout
       @ artifact "kernel" e.Store.kernel
       (* legacy alias: pre-v2 clients ask for "cuda" *)
       @ artifact "cuda" e.Store.kernel
       @ artifact "report" e.Store.report))

let shutdown_response req =
  J.to_string (J.Obj (id_field req @ [ ("status", J.Str "ok"); ("bye", J.Bool true) ]))
