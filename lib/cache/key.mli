(** Content-addressed cache keys: MD5 over a canonical structural
    serialization of the flattened graph + compile options + compiler
    version.  The serializer walks the graph's node array in id order
    and its edge list sorted by (src, src_port, dst, dst_port) — never
    a [Hashtbl] — and erases all naming on the way out (node display
    names never written, filter identifiers alpha-renamed inline in
    first-appearance order), so keys are deterministic and
    naming-irrelevant.  Floats serialize as their IEEE-754 bit
    pattern, so value changes below [%g] precision still change the
    key. *)

val compiler_version : string
(** Stamped into every key; bump when the compiler's output for an
    unchanged input changes, so stale on-disk entries miss. *)

val canonical_graph : Streamit.Graph.t -> Streamit.Graph.t
(** Same graph with canonical names: node [i] becomes ["n<i>"] and
    filters pass through {!Streamit.Kernel.alpha_canonical}.
    Idempotent; semantics (rates, costs, schedules) unchanged.  The
    serve daemon compiles this form so artifacts are byte-identical
    for any two inputs differing only in naming. *)

val serialize : ?full:bool -> Streamit.Graph.t -> string
(** Canonical byte serialization: identifiers are renamed inline
    during the single read-only pass, so [serialize g] and
    [serialize (canonical_graph g)] are byte-equal without ever
    building a canonical AST.  With [full = false], filter bodies
    (work, tables, state) are elided, leaving the interface skeleton —
    identical for two graphs that differ only in filter
    implementations. *)

type options = {
  arch : Gpusim.Arch.t;
  num_sms : int option;  (** [None] = all of [arch]'s SMs *)
  coarsening : int;
  scheme : Swp_core.Compile.scheme;
  budget : int option;
  portfolio : bool option;
  lns_rounds : int option;
  target : Kir.Ir.target;
      (** codegen backend for the rendered kernel artifact; part of the
          key so requests for different targets never alias *)
}

val default_options : options
val options_string : options -> string

val digest : Streamit.Graph.t -> options -> string
(** Hex MD5 of (version, options, full serialization). *)

val skeleton_digest : Streamit.Graph.t -> options -> string
(** Hex MD5 of (version, options, body-free serialization); equal for
    two requests exactly when an incremental warm start is sound. *)
