(** Two-tier content-addressed artifact store: a bounded in-memory LRU
    map over an optional on-disk directory.  Entries are immutable and
    self-describing (the digest determines the artifacts), so there is
    no invalidation protocol: changed inputs hash to new keys, old
    in-memory entries age out via LRU, and disk entries — atomically
    published via rename — are simply never read again.  Thread-safe;
    all counters go to the [cache.store.*] metrics. *)

type entry = {
  key : string;
  ii : int;
  quality : string;
  signature : string;
  schedule : string;
  layout : string;
  kernel : string;
      (** kernel source printed for the key's codegen target *)
  report : string;
}

type t

val create : ?dir:string -> ?capacity:int -> unit -> t
(** [capacity] bounds the in-memory tier (default 256, must be >= 1).
    [dir] enables the disk tier (created if absent). *)

val find : t -> string -> entry option
(** Memory first, then disk (promoting into memory).  A disk entry
    whose stored key disagrees with its filename — torn write,
    tampering — is treated as a miss. *)

val put : t -> entry -> unit
val mem_size : t -> int

val serialize : entry -> string
val deserialize : string -> entry
(** Length-framed byte-exact codec used by the disk tier.
    @raise Corrupt on malformed input. *)

exception Corrupt of string
