(** Two-tier content-addressed artifact store: a bounded in-memory LRU
    map over an optional on-disk directory.  Entries are immutable and
    self-describing (the digest determines the artifacts), so there is
    no invalidation protocol: changed inputs hash to new keys, old
    in-memory entries age out via LRU, and disk entries — atomically
    published via fsynced temp-file + rename — are simply never read
    again.  Thread-safe; all counters go to the [cache.store.*]
    metrics.

    Crash safety: entries are checksummed, a startup scrub quarantines
    (never silently deletes) torn or corrupt files into
    [dir/quarantine], and the first disk I/O error (ENOSPC, EIO, an
    injected ["store.read"]/["store.write"] fault) permanently degrades
    the store to memory-only instead of failing requests. *)

type entry = {
  key : string;
  ii : int;
  quality : string;
  signature : string;
  schedule : string;
  layout : string;
  kernel : string;
      (** kernel source printed for the key's codegen target *)
  report : string;
}

type t

type scrub_stats = { scanned : int; quarantined : int }

val create : ?dir:string -> ?capacity:int -> unit -> t
(** [capacity] bounds the in-memory tier (default 256, must be >= 1).
    [dir] enables the disk tier (created if absent) and runs the
    startup scrub over it before the store is used. *)

val find : t -> string -> entry option
(** Memory first, then disk (promoting into memory).  A disk entry
    whose checksum, codec or stored key disagrees with its filename —
    torn write, tampering — is quarantined and treated as a miss; a
    disk read error degrades the store to memory-only and misses. *)

val put : t -> entry -> unit
val mem_size : t -> int

val serialize : entry -> string
val deserialize : string -> entry
(** Length-framed byte-exact codec used by the disk tier; the payload
    is guarded by an MD5 checksum line.
    @raise Corrupt on malformed input or a checksum mismatch. *)

exception Corrupt of string

val quarantine_dir : string -> string
(** Where a store rooted at the given directory quarantines suspect
    files ([dir/quarantine]). *)

(** {2 Health (the serve [ping] op)} *)

type disk_state = No_disk | Disk_ok | Disk_degraded

type health = {
  mem_entries : int;
  disk : disk_state;
  quarantined_total : int;  (** startup scrub + runtime reads *)
  scrub_scanned : int;
  scrub_quarantined : int;
}

val disk_state_name : disk_state -> string
val health : t -> health
val scrub_stats : t -> scrub_stats
val disk_degraded : t -> bool
