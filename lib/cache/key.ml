(* Content-addressed cache keys for compiled schedules.

   The key is an MD5 digest over a *canonical, structural*
   serialization of the flattened graph plus a canonical rendering of
   every compile option that can change the result, plus a compiler
   version stamp.  Canonical means:

   - nodes are written in id order from the graph's [nodes] array and
     edges sorted by (src, src_port, dst, dst_port) — the serializer
     walks arrays and sorted lists only, never a [Hashtbl], so the
     bytes cannot depend on hash-bucket iteration order;
   - every name is erased on the way out: node display names are never
     written and filter identifiers are alpha-renamed inline in the
     serializer's first-appearance order, so renaming a filter, a
     table or a local produces the same key (whitespace never reaches
     us at all — the frontend already discarded it);
   - floats (table/state/const values) serialize as their IEEE-754 bit
     pattern, so two graphs get the same bytes iff their floats are
     bit-identical.

   Compiles are byte-deterministic in (graph, options, version) — the
   PR 4/5 invariant — which is what makes returning a cached artifact
   for an equal key provably safe. *)

module G = Streamit.Graph
module K = Streamit.Kernel
module T = Streamit.Types

(* Bumped whenever the compiler can produce different artifacts for an
   unchanged (graph, options) pair; stale on-disk entries then miss
   instead of serving old bytes. *)
let compiler_version = "streamit-gpu/9"

(* --- canonical graph form --- *)

let canonical_node (n : G.node) =
  {
    n with
    G.name = "n" ^ string_of_int n.G.id;
    kind =
      (match n.G.kind with
      | G.NFilter f -> G.NFilter (K.alpha_canonical f)
      | (G.NSplitter _ | G.NJoiner _) as k -> k);
  }

(* The graph every cached compile actually runs on: identifiers are
   canonical, so artifacts (CUDA kernel names included) are identical
   for any two graphs that differ only in naming. *)
let canonical_graph (g : G.t) =
  { g with G.nodes = Array.map canonical_node g.G.nodes }

(* --- structural serialization --- *)

(* Identifiers are renamed inline as they are written: each filter gets
   a fresh table mapping names to "x0", "x1", ... in the order this
   serializer first meets them.  The numbering is the serializer's own
   (it need not match [Kernel.alpha_canonical]'s); what matters is that
   the traversal is deterministic, so any two alpha-equivalent filters
   produce identical bytes — including a graph and its
   [canonical_graph] form.  Renaming in place keeps the digest a single
   read-only pass: no canonical AST is ever constructed. *)

(* Floats serialize as their IEEE-754 bit pattern: injective (distinct
   floats, including -0.0 vs 0.0, get distinct bytes), deterministic,
   and orders of magnitude cheaper than a decimal shortest-round-trip
   search — table-heavy graphs have thousands of constants on the
   digest hot path. *)
let ser_value b = function
  | T.VInt n ->
    Buffer.add_char b 'i';
    Buffer.add_string b (string_of_int n)
  | T.VFloat f ->
    Buffer.add_char b 'f';
    Buffer.add_string b (Int64.to_string (Int64.bits_of_float f))

let ser_ty b = function
  | T.TInt -> Buffer.add_string b "int"
  | T.TFloat -> Buffer.add_string b "float"

let rec ser_expr b ren (e : K.expr) =
  match e with
  | K.Const v ->
    Buffer.add_string b "(c ";
    ser_value b v;
    Buffer.add_char b ')'
  | K.Var x ->
    Buffer.add_string b "(v ";
    Buffer.add_string b (ren x);
    Buffer.add_char b ')'
  | K.ArrayRef (a, i) ->
    Buffer.add_string b "(aref ";
    Buffer.add_string b (ren a);
    Buffer.add_char b ' ';
    ser_expr b ren i;
    Buffer.add_char b ')'
  | K.TableRef (t, i) ->
    Buffer.add_string b "(tref ";
    Buffer.add_string b (ren t);
    Buffer.add_char b ' ';
    ser_expr b ren i;
    Buffer.add_char b ')'
  | K.Pop -> Buffer.add_string b "(pop)"
  | K.Peek e ->
    Buffer.add_string b "(peek ";
    ser_expr b ren e;
    Buffer.add_char b ')'
  | K.Unop (op, e) ->
    Buffer.add_string b "(u ";
    Buffer.add_string b (K.string_of_unop op);
    Buffer.add_char b ' ';
    ser_expr b ren e;
    Buffer.add_char b ')'
  | K.Binop (op, x, y) ->
    Buffer.add_string b "(b ";
    Buffer.add_string b (K.string_of_binop op);
    Buffer.add_char b ' ';
    ser_expr b ren x;
    Buffer.add_char b ' ';
    ser_expr b ren y;
    Buffer.add_char b ')'
  | K.Cond (c, x, y) ->
    Buffer.add_string b "(cond ";
    ser_expr b ren c;
    Buffer.add_char b ' ';
    ser_expr b ren x;
    Buffer.add_char b ' ';
    ser_expr b ren y;
    Buffer.add_char b ')'

let rec ser_stmt b ren (s : K.stmt) =
  match s with
  | K.Let (x, e) ->
    Buffer.add_string b "(let ";
    Buffer.add_string b (ren x);
    Buffer.add_char b ' ';
    ser_expr b ren e;
    Buffer.add_char b ')'
  | K.Assign (x, e) ->
    Buffer.add_string b "(set ";
    Buffer.add_string b (ren x);
    Buffer.add_char b ' ';
    ser_expr b ren e;
    Buffer.add_char b ')'
  | K.DeclArray (a, n) ->
    Buffer.add_string b "(arr ";
    Buffer.add_string b (ren a);
    Buffer.add_char b ' ';
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b ')'
  | K.ArrayAssign (a, i, e) ->
    Buffer.add_string b "(aset ";
    Buffer.add_string b (ren a);
    Buffer.add_char b ' ';
    ser_expr b ren i;
    Buffer.add_char b ' ';
    ser_expr b ren e;
    Buffer.add_char b ')'
  | K.Push e ->
    Buffer.add_string b "(push ";
    ser_expr b ren e;
    Buffer.add_char b ')'
  | K.If (c, th, el) ->
    Buffer.add_string b "(if ";
    ser_expr b ren c;
    ser_block b ren th;
    ser_block b ren el;
    Buffer.add_char b ')'
  | K.For (x, lo, hi, body) ->
    Buffer.add_string b "(for ";
    Buffer.add_string b (ren x);
    Buffer.add_char b ' ';
    ser_expr b ren lo;
    Buffer.add_char b ' ';
    ser_expr b ren hi;
    ser_block b ren body;
    Buffer.add_char b ')'

and ser_block b ren stmts =
  Buffer.add_string b " {";
  List.iter
    (fun s ->
      ser_stmt b ren s;
      Buffer.add_char b ' ')
    stmts;
  Buffer.add_char b '}'

let ser_named_arrays b ren tag xs =
  List.iter
    (fun (name, vs) ->
      Buffer.add_string b tag;
      Buffer.add_char b ' ';
      Buffer.add_string b (ren name);
      Buffer.add_string b " [";
      Array.iter
        (fun v ->
          ser_value b v;
          Buffer.add_char b ' ')
        vs;
      Buffer.add_string b "]\n")
    xs

(* [full] additionally serializes the filter body (work, tables,
   state); without it only the interface — rates and types — is
   written, which is exactly the skeleton shared by two graphs that
   differ in a single filter's implementation. *)
let ser_filter b ~full (f : K.filter) =
  Buffer.add_string b
    (Printf.sprintf "filter pop=%d push=%d peek=%d in=" f.K.pop_rate
       f.K.push_rate f.K.peek_rate);
  ser_ty b f.K.in_ty;
  Buffer.add_string b " out=";
  ser_ty b f.K.out_ty;
  Buffer.add_char b '\n';
  if full then begin
    let map = Hashtbl.create 16 in
    let next = ref 0 in
    let ren x =
      match Hashtbl.find_opt map x with
      | Some y -> y
      | None ->
        let y = "x" ^ string_of_int !next in
        incr next;
        Hashtbl.add map x y;
        y
    in
    ser_named_arrays b ren "table" f.K.tables;
    ser_named_arrays b ren "state" f.K.state;
    Buffer.add_string b "work";
    ser_block b ren f.K.work;
    Buffer.add_char b '\n'
  end

let ser_kind b ~full = function
  | G.NFilter f -> ser_filter b ~full f
  | G.NSplitter (Streamit.Ast.Duplicate, arity) ->
    Buffer.add_string b (Printf.sprintf "split duplicate %d\n" arity)
  | G.NSplitter (Streamit.Ast.Round_robin ws, arity) ->
    Buffer.add_string b
      (Printf.sprintf "split roundrobin %d [%s]\n" arity
         (String.concat " " (List.map string_of_int ws)))
  | G.NJoiner ws ->
    Buffer.add_string b
      (Printf.sprintf "join [%s]\n"
         (String.concat " " (List.map string_of_int ws)))

let serialize ?(full = true) (g : G.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "canonical-graph v1\n";
  Buffer.add_string b (Printf.sprintf "nodes %d\n" (Array.length g.G.nodes));
  Array.iter
    (fun (n : G.node) ->
      Buffer.add_string b (Printf.sprintf "node %d " n.G.id);
      ser_kind b ~full n.G.kind)
    g.G.nodes;
  let edges =
    List.sort
      (fun (a : G.edge) (c : G.edge) ->
        compare
          (a.G.src, a.G.src_port, a.G.dst, a.G.dst_port)
          (c.G.src, c.G.src_port, c.G.dst, c.G.dst_port))
      g.G.edges
  in
  List.iter
    (fun (e : G.edge) ->
      Buffer.add_string b
        (Printf.sprintf "edge %d.%d->%d.%d init=%d [" e.G.src e.G.src_port
           e.G.dst e.G.dst_port e.G.init_tokens);
      List.iter
        (fun v ->
          ser_value b v;
          Buffer.add_char b ' ')
        e.G.init_values;
      Buffer.add_string b "]\n")
    edges;
  (match g.G.entry with
  | Some v -> Buffer.add_string b (Printf.sprintf "entry %d\n" v)
  | None -> ());
  (match g.G.exit_ with
  | Some v -> Buffer.add_string b (Printf.sprintf "exit %d\n" v)
  | None -> ());
  Buffer.contents b

(* --- compile options --- *)

type options = {
  arch : Gpusim.Arch.t;
  num_sms : int option;
  coarsening : int;
  scheme : Swp_core.Compile.scheme;
  budget : int option;
  portfolio : bool option;
  lns_rounds : int option;
  target : Kir.Ir.target;
      (** codegen backend the rendered kernel artifact is printed for;
          part of the key because the "kernel" section of an entry is a
          function of it — a WGSL request must never alias a CUDA one *)
}

let default_options =
  {
    arch = Gpusim.Arch.geforce_8800_gts_512;
    num_sms = None;
    coarsening = 1;
    scheme = Swp_core.Compile.Swp_coalesced;
    budget = None;
    portfolio = None;
    lns_rounds = None;
    target = Kir.Ir.Cuda;
  }

let options_string (o : options) =
  let opt f = function None -> "none" | Some v -> f v in
  Printf.sprintf
    "arch=%s sms=%d coarsening=%d scheme=%s budget=%s portfolio=%s lns=%s \
     target=%s"
    o.arch.Gpusim.Arch.name
    (Option.value o.num_sms ~default:o.arch.Gpusim.Arch.num_sms)
    o.coarsening
    (match o.scheme with
    | Swp_core.Compile.Swp_coalesced -> "SWP"
    | Swp_core.Compile.Swp_non_coalesced -> "SWPNC")
    (opt string_of_int o.budget)
    (opt string_of_bool o.portfolio)
    (opt string_of_int o.lns_rounds)
    (Kir.Ir.target_name o.target)

let hash s = Digest.to_hex (Digest.string s)

let digest g o =
  hash (compiler_version ^ "\n" ^ options_string o ^ "\n" ^ serialize g)

(* Skeleton digest: everything except filter bodies.  Two graphs share
   a skeleton exactly when they differ only in filter implementations
   (same topology, rates and types) — the precondition for the serve
   daemon's incremental warm start. *)
let skeleton_digest g o =
  hash
    (compiler_version ^ "\n" ^ options_string o ^ "\nskeleton\n"
    ^ serialize ~full:false g)
