(* The serve daemon's request loop, hardened.

   This used to live in bin/streamit_gpu.ml; it moved here so the
   chaos campaign (lib/check/serve_chaos.ml) and the tests can drive
   the *exact* production loop rather than a re-implementation.

   The hardening layers, outermost first:

   - [Protocol.read_bounded_line] caps how much one request line may
     buffer; an over-limit line becomes a single error response and
     the stream stays line-synchronized.
   - Every compile request passes the {!Guard} admission ledger
     *before* any expensive work (graph parsing included).  Admission
     decisions for a batch are taken serially in request order before
     the batch fans out, so under the same burst the same requests are
     always shed, with the deterministic [overloaded_response].
   - The {!Service} contains compile crashes (waiters never hang) and
     poisons repeatedly-crashing keys; the daemon additionally wraps
     each request so nothing a single request throws can kill the
     loop.
   - Shutdown drains: the guard refuses new admissions with reason
     "draining", in-flight work finishes ([Guard.await_idle]), and the
     response carries the drain report (occupancy peaks, sheds,
     compiles) so clients can log the final counters. *)

type t = {
  service : Service.t;
  guard : Guard.t;
  max_line_bytes : int;
  lookup_program : string -> (Streamit.Graph.t, string) result;
}

let default_max_line_bytes = 4 * 1024 * 1024

let no_lookup name =
  Error
    (Printf.sprintf
       "'%s' is not available: this daemon has no builtin program registry"
       name)

let create ?guard ?(max_line_bytes = default_max_line_bytes)
    ?(lookup_program = no_lookup) service =
  if max_line_bytes < 1024 then
    invalid_arg "Daemon.create: max_line_bytes must be >= 1024";
  let guard = match guard with Some g -> g | None -> Guard.create () in
  { service; guard; max_line_bytes; lookup_program }

let service t = t.service
let guard t = t.guard

(* --- request -> graph/options --- *)

let graph_of_request t (r : Protocol.request) =
  let of_stream stream =
    match Streamit.Ast.validate stream with
    | Error m -> Error ("invalid stream: " ^ m)
    | Ok () -> Ok (Streamit.Flatten.flatten stream)
  in
  match (r.Protocol.program, r.Protocol.src) with
  | Some _, Some _ -> Error "give either \"program\" or \"src\", not both"
  | None, None -> Error "compile request needs a \"program\" or \"src\" field"
  | Some p, None -> t.lookup_program p
  | None, Some src -> (
    match Frontend.Parser.parse_program src with
    | stream -> of_stream stream
    | exception Frontend.Parser.Parse_error (m, l, c) ->
      Error (Printf.sprintf "src:%d:%d: %s" l c m)
    | exception Frontend.Lexer.Lex_error (m, l, c) ->
      Error (Printf.sprintf "src:%d:%d: %s" l c m))

let options_of_request (r : Protocol.request) =
  if r.Protocol.coarsening < 1 then Error "coarsening must be at least 1"
  else if match r.Protocol.num_sms with Some n -> n < 1 | None -> false then
    Error "num_sms must be at least 1"
  else if match r.Protocol.budget with Some b -> b < 0 | None -> false then
    Error "budget must be >= 0 work units"
  else if match r.Protocol.lns_rounds with Some n -> n < 0 | None -> false
  then Error "lns_rounds must be >= 0"
  else if
    match r.Protocol.deadline with Some d -> d <= 0.0 | None -> false
  then Error "deadline must be positive seconds"
  else
    Ok
      {
        Key.default_options with
        Key.num_sms = r.Protocol.num_sms;
        coarsening = r.Protocol.coarsening;
        scheme = r.Protocol.scheme;
        budget = r.Protocol.budget;
        portfolio = r.Protocol.portfolio;
        lns_rounds = r.Protocol.lns_rounds;
        target = r.Protocol.target;
      }

(* --- the read-only ops (never admitted: they do bounded work) --- *)

let stats_response t (req : Protocol.request) =
  let module J = Obs.Report in
  let memo = Swp_core.Profile.memo_stats () in
  J.to_string
    (J.Obj
       [
         ("id", Option.value req.Protocol.id ~default:J.Null);
         ("status", J.Str "ok");
         ("compiles", J.Int (Service.compiles t.service));
         ( "profile_node_memo",
           J.Obj
             [
               ("hits", J.Int memo.Swp_core.Profile.node_hits);
               ("misses", J.Int memo.Swp_core.Profile.node_misses);
               ("entries", J.Int memo.Swp_core.Profile.node_entries);
             ] );
       ])

let health_json t =
  let module J = Obs.Report in
  let h = Store.health (Service.store t.service) in
  let o = Guard.occupancy t.guard in
  [
    ("version", J.Str Key.compiler_version);
    ("compiles", J.Int (Service.compiles t.service));
    ( "cache",
      J.Obj
        [
          ("mem_entries", J.Int h.Store.mem_entries);
          ("disk", J.Str (Store.disk_state_name h.Store.disk));
          ("quarantined", J.Int h.Store.quarantined_total);
          ("scrub_scanned", J.Int h.Store.scrub_scanned);
          ("scrub_quarantined", J.Int h.Store.scrub_quarantined);
        ] );
    ( "guard",
      J.Obj
        [
          ("outstanding", J.Int o.Guard.outstanding);
          ("work_occupancy", J.Int o.Guard.work_occupancy);
          ("capacity", J.Int o.Guard.capacity);
          ( "work_cap",
            match o.Guard.work_cap with Some c -> J.Int c | None -> J.Null );
          ("peak_outstanding", J.Int o.Guard.peak_outstanding);
          ("peak_work", J.Int o.Guard.peak_work);
          ("admitted", J.Int o.Guard.admitted_total);
          ("shed", J.Int o.Guard.shed_total);
          ("ledger_work", J.Int o.Guard.ledger_work_total);
          ("draining", J.Bool o.Guard.draining);
        ] );
    ("breaker_open", J.Int (Service.breaker_open_count t.service));
  ]

let ping_response t (req : Protocol.request) =
  let module J = Obs.Report in
  J.to_string
    (J.Obj
       (( "id",
          match req.Protocol.id with Some id -> id | None -> J.Null )
       :: ("status", J.Str "ok")
       :: health_json t))

(* --- compile, behind admission --- *)

(* The work a compile request declares to the ledger: its explicit
   solver budget when it carries one (that is the deterministic
   work-unit bound the pipeline itself enforces), the guard's default
   otherwise. *)
let declared_work (req : Protocol.request) = req.Protocol.budget

let run_compile t (req : Protocol.request) =
  match graph_of_request t req with
  | Error m -> Protocol.error_response ~req m
  | Ok g -> (
    match options_of_request req with
    | Error m -> Protocol.error_response ~req m
    | Ok opts -> (
      match
        Service.get ~warm:req.Protocol.warm ?deadline:req.Protocol.deadline
          t.service g opts
      with
      | Ok (e, outcome) -> Protocol.ok_response req e outcome
      | Error m -> Protocol.error_response ~req m
      | exception e ->
        (* The daemon must survive anything a single request throws. *)
        Protocol.error_response ~req
          ("internal error: " ^ Printexc.to_string e)))

(* A request staged for execution, its admission already decided.
   Splitting decision from execution is what keeps shedding
   deterministic: decisions happen serially in arrival order, then the
   admitted work may fan out in any order. *)
type staged =
  | Run of Protocol.request * Guard.ticket option
      (** [Some] for admitted compiles, [None] for the cheap read-only
          ops that bypass admission *)
  | Refuse of string  (** response rendered at decision time *)

let stage t (req : Protocol.request) =
  match req.Protocol.op with
  | Protocol.Compile -> (
    match Guard.try_admit ?work:(declared_work req) t.guard with
    | Guard.Admitted ticket -> Run (req, Some ticket)
    | Guard.Shed { reason; retry_after_ms } ->
      Refuse (Protocol.overloaded_response ~req ~reason ~retry_after_ms ()))
  | Protocol.Stats | Protocol.Ping -> Run (req, None)
  | Protocol.Shutdown ->
    (* Only meaningful at the top level; inside a batch it is refused
       so an array can never half-kill the daemon. *)
    Refuse (Protocol.error_response ~req "shutdown is not allowed in a batch")

let execute t = function
  | Refuse response -> response
  | Run (req, ticket) ->
    Fun.protect
      ~finally:(fun () ->
        match ticket with
        | Some tk -> Guard.release t.guard tk
        | None -> ())
      (fun () ->
        match req.Protocol.op with
        | Protocol.Compile -> run_compile t req
        | Protocol.Stats -> stats_response t req
        | Protocol.Ping -> ping_response t req
        | Protocol.Shutdown ->
          Protocol.error_response ~req "shutdown is not allowed in a batch")

let drain_report t =
  let module J = Obs.Report in
  let o = Guard.occupancy t.guard in
  [
    ("drained", J.Bool true);
    ("in_flight_at_drain", J.Int o.Guard.outstanding);
    ("admitted", J.Int o.Guard.admitted_total);
    ("shed", J.Int o.Guard.shed_total);
    ("peak_outstanding", J.Int o.Guard.peak_outstanding);
    ("compiles", J.Int (Service.compiles t.service));
  ]

let shutdown t (req : Protocol.request) =
  Guard.begin_drain t.guard;
  (* Snapshot *before* await so in_flight_at_drain reports what the
     drain actually waited for (always 0 on the stdin loop, can be
     positive under a concurrent socket server). *)
  let in_flight = (Guard.occupancy t.guard).Guard.outstanding in
  Guard.await_idle t.guard;
  let module J = Obs.Report in
  let drain =
    drain_report t
    |> List.map (fun (k, v) ->
           if k = "in_flight_at_drain" then (k, J.Int in_flight) else (k, v))
  in
  Protocol.shutdown_response ~drain req

(* One input line -> `Reply response | `Shutdown response. *)
let handle_line t line =
  match Protocol.parse line with
  | exception Protocol.Parse_error m ->
    `Reply (Protocol.error_response ("invalid JSON: " ^ m))
  | Obs.Report.Arr docs ->
    (* Parse the whole batch, admit serially in order, then fan out. *)
    let staged =
      List.map
        (fun doc ->
          match Protocol.request_of_json doc with
          | Error m ->
            Refuse (Protocol.error_response ?id:(Obs.Report.member "id" doc) m)
          | Ok req -> stage t req)
        docs
    in
    let responses = Par.Pool.map_auto (execute t) staged in
    `Reply ("[" ^ String.concat "," responses ^ "]")
  | doc -> (
    match Protocol.request_of_json doc with
    | Error m ->
      `Reply (Protocol.error_response ?id:(Obs.Report.member "id" doc) m)
    | Ok req -> (
      match req.Protocol.op with
      | Protocol.Shutdown -> `Shutdown (shutdown t req)
      | Protocol.Compile -> `Reply (execute t (stage t req))
      | Protocol.Stats -> `Reply (stats_response t req)
      | Protocol.Ping -> `Reply (ping_response t req)))

(* Returns true when a shutdown request ended the stream (vs EOF). *)
let serve_channel t ic oc =
  let reply s =
    output_string oc s;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match Protocol.read_bounded_line ~max_bytes:t.max_line_bytes ic with
    | Protocol.Eof -> false
    | Protocol.Truncated ->
      reply
        (Protocol.error_response
           (Printf.sprintf "request line exceeds %d bytes" t.max_line_bytes));
      loop ()
    | Protocol.Line line when String.trim line = "" -> loop ()
    | Protocol.Line line -> (
      match handle_line t line with
      | `Reply s ->
        reply s;
        loop ()
      | `Shutdown s ->
        reply s;
        true)
  in
  loop ()

let serve_socket t path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  at_exit cleanup;
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  (* A client that disconnects mid-response must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let stop = ref false in
  while not !stop do
    let fd, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try stop := serve_channel t ic oc
     with Sys_error _ | Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  done;
  0
