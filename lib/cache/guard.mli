(** Admission control and load shedding for the serve daemon: a
    work-unit ledger with a count cap ([max_inflight] executing +
    [queue_cap] queued) and an optional concurrent work cap.  Requests
    beyond either cap are shed with a deterministic "overloaded" error
    and a retry-after hint; admission decisions are taken serially in
    arrival order, so the same burst always sheds the same requests.
    Cumulative admitted work charges a [Resil.Budget] ledger for the
    ping op's occupancy report.  Counts the ["serve.admit"] inject
    site. *)

type shed = {
  reason : string;
  retry_after_ms : int;  (** deterministic backlog-proportional hint *)
}

type ticket
(** Proof of admission; must be {!release}d exactly once. *)

type admission = Admitted of ticket | Shed of shed

type t

val create :
  ?max_inflight:int ->
  ?queue_cap:int ->
  ?work_cap:int ->
  ?default_work:int ->
  unit ->
  t
(** Defaults: 4 in-flight, 16 queued, no work cap, 20k work units
    declared for requests without an explicit budget. *)

val capacity : t -> int
(** [max_inflight + queue_cap]: the outstanding-request bound. *)

val try_admit : ?work:int -> t -> admission
(** Non-blocking admission of a request declaring [work] work units
    (the guard's [default_work] when omitted).  Never waits: the
    caller replies with the shed error instead. *)

val release : t -> ticket -> unit

val begin_drain : t -> unit
(** Refuse all further admissions (shed reason "draining"). *)

val draining : t -> bool

val await_idle : t -> unit
(** Block until every admitted ticket has been released. *)

type occupancy = {
  outstanding : int;
  work_occupancy : int;
  capacity : int;
  work_cap : int option;
  peak_outstanding : int;
  peak_work : int;
  admitted_total : int;
  shed_total : int;
  ledger_work_total : int;
  draining : bool;
}

val occupancy : t -> occupancy
