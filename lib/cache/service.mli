(** The compile service behind [streamit_gpu serve]: canonicalize the
    graph, hash it with the options ({!Key.digest}), and compile only
    on a genuine miss.  Byte-deterministic compilation (the PR 4/5
    invariant) is what makes a hit provably safe: equal key means
    equal artifacts.

    Concurrent requests for one key are single-flighted (one compile,
    everyone shares the result).  A full-key miss whose body-free
    skeleton ({!Key.skeleton_digest}) matches an earlier compile — the
    "one filter's work function changed" case — is recompiled
    incrementally: the per-node profile memo ({!Swp_core.Profile})
    re-simulates only the changed filter, and the II search is
    warm-started through [Compile.compile ?seed_ii] with the
    previously achieved II.  The hint can only influence a [Degraded]
    result (the fallback ramp), so degraded warm results are returned
    but never stored; everything cached remains byte-identical to a
    cold compile of its key.  A per-request [?deadline] likewise
    taints: deadline-shaped results are returned but never stored.

    A compile that crashes (escaped exception) is contained — waiters
    get an error instead of hanging — and counts against the key's
    poison breaker: after [breaker_threshold] consecutive crashes the
    key is refused outright until a success resets it. *)

type outcome = Hit | Miss | Incremental

val outcome_name : outcome -> string

type t

val create :
  ?dir:string ->
  ?capacity:int ->
  ?warm:bool ->
  ?breaker_threshold:int ->
  unit ->
  t
(** [dir]/[capacity] configure the {!Store}; [warm = false] disables
    incremental warm starts service-wide; [breaker_threshold] (default
    3, must be >= 1) is how many consecutive compile crashes poison a
    key. *)

val get :
  ?warm:bool ->
  ?deadline:float ->
  t ->
  Streamit.Graph.t ->
  Key.options ->
  (Store.entry * outcome, string) result
(** Look up or compile.  [warm = false] disables the warm-start hint
    for this request only.  [deadline] bounds the compile in wall-clock
    seconds; the result is never cached.  Coalesced waiters on another
    request's in-flight compile report [Hit]. *)

val get_many :
  ?warm:bool ->
  t ->
  (Streamit.Graph.t * Key.options) list ->
  (Store.entry * outcome, string) result list
(** Fan a batch across {!Par.Pool.map_auto}; single-flight guarantees
    each distinct key compiles once.  Results in request order. *)

val compiles : t -> int
(** Number of actual compiles performed (misses that did work). *)

val store : t -> Store.t
(** The underlying store, for health reporting and scrub stats. *)

val poisoned : t -> string -> bool
(** Is this key's circuit breaker open? *)

val crash_count : t -> string -> int

val breaker_open_count : t -> int
(** Number of keys currently poisoned. *)
