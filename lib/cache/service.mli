(** The compile service behind [streamit_gpu serve]: canonicalize the
    graph, hash it with the options ({!Key.digest}), and compile only
    on a genuine miss.  Byte-deterministic compilation (the PR 4/5
    invariant) is what makes a hit provably safe: equal key means
    equal artifacts.

    Concurrent requests for one key are single-flighted (one compile,
    everyone shares the result).  A full-key miss whose body-free
    skeleton ({!Key.skeleton_digest}) matches an earlier compile — the
    "one filter's work function changed" case — is recompiled
    incrementally: the per-node profile memo ({!Swp_core.Profile})
    re-simulates only the changed filter, and the II search is
    warm-started through [Compile.compile ?seed_ii] with the
    previously achieved II.  The hint can only influence a [Degraded]
    result (the fallback ramp), so degraded warm results are returned
    but never stored; everything cached remains byte-identical to a
    cold compile of its key. *)

type outcome = Hit | Miss | Incremental

val outcome_name : outcome -> string

type t

val create : ?dir:string -> ?capacity:int -> ?warm:bool -> unit -> t
(** [dir]/[capacity] configure the {!Store}; [warm = false] disables
    incremental warm starts service-wide. *)

val get :
  ?warm:bool ->
  t ->
  Streamit.Graph.t ->
  Key.options ->
  (Store.entry * outcome, string) result
(** Look up or compile.  [warm = false] disables the warm-start hint
    for this request only.  Coalesced waiters on another request's
    in-flight compile report [Hit]. *)

val get_many :
  ?warm:bool ->
  t ->
  (Streamit.Graph.t * Key.options) list ->
  (Store.entry * outcome, string) result list
(** Fan a batch across {!Par.Pool.map_auto}; single-flight guarantees
    each distinct key compiles once.  Results in request order. *)

val compiles : t -> int
(** Number of actual compiles performed (misses that did work). *)
