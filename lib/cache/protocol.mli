(** Newline-delimited JSON protocol for [streamit_gpu serve]: one
    request object per line, one response per line, in order.
    Includes the minimal JSON reader the daemon needs (the repo's
    [Obs.Report] is writer-only), hardened for untrusted input:
    duplicate object keys, non-finite numbers and invalid UTF-8 in
    strings are rejected, typed fields error on the wrong type instead
    of being silently ignored, and {!read_bounded_line} caps how much
    one request line may buffer. *)

exception Parse_error of string

val parse : string -> Obs.Report.t
(** Parse one JSON document.  Counts the ["protocol.decode"] inject
    site.  @raise Parse_error on malformed input or trailing bytes. *)

val utf8_valid : string -> bool
(** Strict UTF-8 validation (overlongs and surrogates rejected). *)

type read_result =
  | Line of string
  | Truncated
      (** the line exceeded [max_bytes]; its remainder was consumed,
          so the stream stays line-synchronized *)
  | Eof

val read_bounded_line : max_bytes:int -> in_channel -> read_result
(** Read one newline-terminated line buffering at most [max_bytes]
    bytes.  The defense against a single huge request line growing an
    unbounded buffer. *)

type op = Compile | Stats | Ping | Shutdown

type request = {
  id : Obs.Report.t option;  (** echoed back verbatim *)
  op : op;
  program : string option;  (** builtin benchmark name *)
  src : string option;  (** inline .str source *)
  num_sms : int option;
  coarsening : int;
  scheme : Swp_core.Compile.scheme;
  budget : int option;
  deadline : float option;
      (** per-request wall-clock bound (seconds); deadline-shaped
          results are returned but never cached *)
  portfolio : bool option;
  lns_rounds : int option;
  target : Kir.Ir.target;  (** codegen backend, default [Cuda] *)
  warm : bool;
  artifacts : string list;
      (** subset of ["schedule"; "layout"; "kernel"; "cuda"; "report"]
          to inline in the response ("cuda" is a legacy alias for
          "kernel") *)
}

val request_of_json : Obs.Report.t -> (request, string) result
val parse_request : string -> (request, string) result

val ok_response : request -> Store.entry -> Service.outcome -> string

val error_response : ?req:request -> ?id:Obs.Report.t -> string -> string
(** [req] when the request parsed; bare [id] when only the raw JSON
    did. *)

val overloaded_response :
  ?req:request ->
  ?id:Obs.Report.t ->
  reason:string ->
  retry_after_ms:int ->
  unit ->
  string
(** The deterministic load-shed response: [status:"error"],
    [error:"overloaded: <reason>"] and a retry-after hint. *)

val shutdown_response : ?drain:(string * Obs.Report.t) list -> request -> string
(** [drain] appends the drain report (in-flight work finished, counters
    flushed) the daemon produces on a graceful shutdown. *)
