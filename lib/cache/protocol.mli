(** Newline-delimited JSON protocol for [streamit_gpu serve]: one
    request object per line, one response per line, in order.
    Includes the minimal JSON reader the daemon needs (the repo's
    [Obs.Report] is writer-only). *)

exception Parse_error of string

val parse : string -> Obs.Report.t
(** Parse one JSON document.  @raise Parse_error on malformed input or
    trailing bytes. *)

type op = Compile | Stats | Shutdown

type request = {
  id : Obs.Report.t option;  (** echoed back verbatim *)
  op : op;
  program : string option;  (** builtin benchmark name *)
  src : string option;  (** inline .str source *)
  num_sms : int option;
  coarsening : int;
  scheme : Swp_core.Compile.scheme;
  budget : int option;
  portfolio : bool option;
  lns_rounds : int option;
  target : Kir.Ir.target;  (** codegen backend, default [Cuda] *)
  warm : bool;
  artifacts : string list;
      (** subset of ["schedule"; "layout"; "kernel"; "cuda"; "report"]
          to inline in the response ("cuda" is a legacy alias for
          "kernel") *)
}

val request_of_json : Obs.Report.t -> (request, string) result
val parse_request : string -> (request, string) result

val ok_response : request -> Store.entry -> Service.outcome -> string
val error_response : ?req:request -> ?id:Obs.Report.t -> string -> string
(** [req] when the request parsed; bare [id] when only the raw JSON
    did. *)


val shutdown_response : request -> string
