(* Content-addressed artifact store: key digest -> rendered compile
   artifacts.  Two tiers: a bounded in-memory LRU map (hot working
   set) and an optional on-disk directory (persistence across daemon
   restarts).  Entries are immutable — a digest fully determines its
   artifacts — so there is no invalidation beyond eviction: a changed
   graph, option or compiler version simply hashes to a different key,
   and old entries age out of the LRU (disk entries are left in place;
   they are content-addressed and never wrong, only unused).

   The disk tier is hardened against the daemon's failure modes:

   - entries carry an MD5 checksum over their payload, so a torn or
     bit-flipped file is detected before any field is trusted;
   - a startup scrub walks the directory and *quarantines* (moves into
     [dir/quarantine], never silently deletes) every file that fails
     the checksum, the key/filename match or the codec, plus stale
     [.tmp] debris from a crashed writer;
   - writes fsync the entry file before the atomic rename and fsync
     the directory after it, so a published entry survives power loss;
   - any disk I/O error (ENOSPC, EIO, ...) permanently degrades the
     store to memory-only for the rest of the process — the daemon
     keeps serving, it just stops persisting — instead of failing
     requests;
   - [Resil.Inject] sites ["store.read"] and ["store.write"] let the
     chaos campaign fire those I/O errors deterministically. *)

type entry = {
  key : string;  (** hex digest from {!Key.digest} *)
  ii : int;
  quality : string;
  signature : string;  (** {!Swp_core.Report.schedule_signature} *)
  schedule : string;
  layout : string;
  kernel : string;
      (** printed kernel source for the key's codegen target — the
          target is part of {!Key.options}, so one digest always maps
          to one backend's bytes *)
  report : string;  (** compact provenance JSON, no timings *)
}

let m_mem_hits = Obs.Metrics.counter "cache.store.mem_hits"
let m_disk_hits = Obs.Metrics.counter "cache.store.disk_hits"
let m_misses = Obs.Metrics.counter "cache.store.misses"
let m_evictions = Obs.Metrics.counter "cache.store.evictions"
let m_quarantined = Obs.Metrics.counter "cache.store.quarantined"
let m_scrub_scanned = Obs.Metrics.counter "cache.store.scrub_scanned"
let m_disk_errors = Obs.Metrics.counter "cache.store.disk_errors"
let m_disk_degraded = Obs.Metrics.counter "cache.store.disk_degraded"

type slot = { e : entry; mutable tick : int }

type scrub_stats = { scanned : int; quarantined : int }

type t = {
  m : Mutex.t;
  mem : (string, slot) Hashtbl.t;
  mutable clock : int;
  capacity : int;
  dir : string option;
  mutable disk_ok : bool;  (** cleared forever on the first I/O error *)
  mutable quarantined : int;  (** startup scrub + runtime reads *)
  scrub : scrub_stats;  (** what the startup scrub saw *)
}

(* --- entry (de)serialization: explicit lengths, byte-exact --- *)

(* v3: a checksum line after the magic guards the whole payload; v1/v2
   entries fail the magic check and read as corrupt, which quarantines
   them at scrub time — the correct behaviour for a format change. *)
let format_magic = "streamit-cache-entry v3"

let serialize_payload (e : entry) =
  let b = Buffer.create (String.length e.kernel + 1024) in
  Buffer.add_string b (Printf.sprintf "key %s\n" e.key);
  Buffer.add_string b (Printf.sprintf "ii %d\n" e.ii);
  Buffer.add_string b (Printf.sprintf "quality %s\n" e.quality);
  Buffer.add_string b (Printf.sprintf "signature %s\n" e.signature);
  let section name body =
    Buffer.add_string b
      (Printf.sprintf "%s %d\n" name (String.length body));
    Buffer.add_string b body;
    Buffer.add_char b '\n'
  in
  section "schedule" e.schedule;
  section "layout" e.layout;
  section "kernel" e.kernel;
  section "report" e.report;
  Buffer.contents b

let serialize (e : entry) =
  let payload = serialize_payload e in
  String.concat ""
    [
      format_magic; "\n";
      "checksum "; Digest.to_hex (Digest.string payload); "\n";
      payload;
    ]

exception Corrupt of string

let deserialize s =
  let pos = ref 0 in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> raise (Corrupt "truncated header")
    | Some i ->
      let l = String.sub s !pos (i - !pos) in
      pos := i + 1;
      l
  in
  let field name =
    let l = line () in
    match String.index_opt l ' ' with
    | Some i when String.sub l 0 i = name ->
      String.sub l (i + 1) (String.length l - i - 1)
    | _ -> raise (Corrupt ("expected field " ^ name))
  in
  let section name =
    let len =
      match int_of_string_opt (field name) with
      | Some n when n >= 0 -> n
      | _ -> raise (Corrupt ("bad length for section " ^ name))
    in
    if !pos + len + 1 > String.length s then
      raise (Corrupt ("truncated section " ^ name));
    let body = String.sub s !pos len in
    pos := !pos + len;
    if s.[!pos] <> '\n' then
      raise (Corrupt ("missing terminator after section " ^ name));
    incr pos;
    body
  in
  if line () <> format_magic then raise (Corrupt "bad magic");
  let checksum = field "checksum" in
  let payload = String.sub s !pos (String.length s - !pos) in
  if Digest.to_hex (Digest.string payload) <> checksum then
    raise (Corrupt "checksum mismatch");
  let key = field "key" in
  let ii =
    match int_of_string_opt (field "ii") with
    | Some n -> n
    | None -> raise (Corrupt "bad ii")
  in
  let quality = field "quality" in
  let signature = field "signature" in
  let schedule = section "schedule" in
  let layout = section "layout" in
  let kernel = section "kernel" in
  let report = section "report" in
  { key; ii; quality; signature; schedule; layout; kernel; report }

(* --- disk tier --- *)

let path_of dir key = Filename.concat dir (key ^ ".entry")
let quarantine_dir dir = Filename.concat dir "quarantine"

(* Move a suspect file aside where an operator can inspect it.  Never
   deletes: if even the rename fails the file simply stays put (and
   keeps reading as a miss).  Returns whether the move happened. *)
let quarantine_file dir p =
  let q = quarantine_dir dir in
  (try if not (Sys.file_exists q) then Unix.mkdir q 0o755
   with Unix.Unix_error _ -> ());
  match Sys.rename p (Filename.concat q (Filename.basename p)) with
  | () ->
    Obs.Metrics.inc m_quarantined;
    true
  | exception Sys_error _ -> false

let degrade t why =
  Obs.Metrics.inc m_disk_errors;
  if t.disk_ok then begin
    t.disk_ok <- false;
    Obs.Metrics.inc m_disk_degraded;
    (* One line on stderr so an operator learns the daemon went
       memory-only; requests keep succeeding either way. *)
    Printf.eprintf "cache: disk degraded to memory-only (%s)\n%!" why
  end

let record_quarantine t moved = if moved then t.quarantined <- t.quarantined + 1

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let disk_read t dir key =
  let p = path_of dir key in
  if not (Sys.file_exists p) then None
  else
    match
      if Resil.Inject.hit "store.read" then `Io "injected fault: store.read"
      else
        match read_file p with
        | s -> (
          match deserialize s with
          | e -> `Entry e
          | exception Corrupt why -> `Corrupt why)
        | exception (Sys_error m | Failure m) -> `Io m
        | exception End_of_file -> `Corrupt "short read"
    with
    | `Entry e when e.key = key -> Some e
    | `Entry _ ->
      (* Content addressing makes tampering detectable for free. *)
      record_quarantine t (quarantine_file dir p);
      None
    | `Corrupt _ ->
      record_quarantine t (quarantine_file dir p);
      None
    | `Io why ->
      degrade t why;
      None

let fsync_dir dir =
  (* Persist the rename itself.  Directory fsync is not supported on
     every platform; failing to sync the directory is strictly less
     safe but not an error worth degrading over. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let disk_write t dir (e : entry) =
  let p = path_of dir e.key in
  let tmp = p ^ ".tmp" in
  match
    if Resil.Inject.hit "store.write" then
      failwith "injected fault: store.write"
    else begin
      let oc = open_out_bin tmp in
      (match
         output_string oc (serialize e);
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc)
       with
      | () -> close_out oc
      | exception ex ->
        close_out_noerr oc;
        raise ex);
      (* Atomic publish: a crashed daemon never leaves a half-written
         entry under its final name; the directory fsync makes the
         publication itself survive power loss. *)
      Sys.rename tmp p;
      fsync_dir dir
    end
  with
  | () -> ()
  | exception (Sys_error m | Failure m) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    degrade t m
  | exception Unix.Unix_error (err, fn, _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    degrade t (Printf.sprintf "%s: %s" fn (Unix.error_message err))

(* --- startup scrub --- *)

(* Walk the directory once before serving from it: anything that is
   not a verifiably intact entry under its own key is quarantined.
   Stale [.tmp] files are debris from a writer that died before its
   rename — also quarantined (they were never published, but an
   operator may still want the bytes). *)
let scrub dir =
  let scanned = ref 0 and quarantined = ref 0 in
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.iter
    (fun f ->
      let p = Filename.concat dir f in
      let is_file = try not (Sys.is_directory p) with Sys_error _ -> false in
      if is_file then
        if Filename.check_suffix f ".tmp" then begin
          incr scanned;
          Obs.Metrics.inc m_scrub_scanned;
          if quarantine_file dir p then incr quarantined
        end
        else if Filename.check_suffix f ".entry" then begin
          incr scanned;
          Obs.Metrics.inc m_scrub_scanned;
          let expected_key = Filename.chop_suffix f ".entry" in
          let ok =
            match read_file p with
            | s -> (
              match deserialize s with
              | e -> e.key = expected_key
              | exception Corrupt _ -> false)
            | exception (Sys_error _ | End_of_file) -> false
          in
          if not ok && quarantine_file dir p then incr quarantined
        end)
    files;
  { scanned = !scanned; quarantined = !quarantined }

let create ?dir ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Store.create: capacity must be >= 1";
  (match dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | Some d when not (Sys.is_directory d) ->
    invalid_arg (Printf.sprintf "Store.create: %s is not a directory" d)
  | _ -> ());
  let scrub_stats =
    match dir with
    | Some d -> scrub d
    | None -> { scanned = 0; quarantined = 0 }
  in
  {
    m = Mutex.create ();
    mem = Hashtbl.create 64;
    clock = 0;
    capacity;
    dir;
    disk_ok = true;
    quarantined = scrub_stats.quarantined;
    scrub = scrub_stats;
  }

(* --- LRU map (caller holds t.m) --- *)

let touch t slot =
  t.clock <- t.clock + 1;
  slot.tick <- t.clock

let evict_if_full t =
  if Hashtbl.length t.mem >= t.capacity then begin
    (* Scan for the stalest slot: the capacity is small (hundreds) and
       eviction is rare, so O(n) beats maintaining an intrusive list;
       the scan order doesn't matter because the minimum tick is
       unique. *)
    let victim = ref None in
    Hashtbl.iter
      (fun k s ->
        match !victim with
        | Some (_, best) when best <= s.tick -> ()
        | _ -> victim := Some (k, s.tick))
      t.mem;
    match !victim with
    | Some (k, _) ->
      Obs.Metrics.inc m_evictions;
      Hashtbl.remove t.mem k
    | None -> ()
  end

let insert_locked t e =
  match Hashtbl.find_opt t.mem e.key with
  | Some slot -> touch t slot
  | None ->
    evict_if_full t;
    let slot = { e; tick = 0 } in
    touch t slot;
    Hashtbl.add t.mem e.key slot

(* --- public API --- *)

let find t key =
  Mutex.lock t.m;
  let hit =
    match Hashtbl.find_opt t.mem key with
    | Some slot ->
      touch t slot;
      Some slot.e
    | None -> None
  in
  Mutex.unlock t.m;
  match hit with
  | Some e ->
    Obs.Metrics.inc m_mem_hits;
    Some e
  | None -> (
    let disk =
      if t.disk_ok then Option.bind t.dir (fun d -> disk_read t d key)
      else None
    in
    match disk with
    | Some e ->
      Obs.Metrics.inc m_disk_hits;
      Mutex.lock t.m;
      insert_locked t e;
      Mutex.unlock t.m;
      Some e
    | None ->
      Obs.Metrics.inc m_misses;
      None)

let put t e =
  Mutex.lock t.m;
  insert_locked t e;
  Mutex.unlock t.m;
  if t.disk_ok then Option.iter (fun d -> disk_write t d e) t.dir

let mem_size t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.mem in
  Mutex.unlock t.m;
  n

(* --- health (for the serve ping op) --- *)

type disk_state = No_disk | Disk_ok | Disk_degraded

type health = {
  mem_entries : int;
  disk : disk_state;
  quarantined_total : int;
  scrub_scanned : int;
  scrub_quarantined : int;
}

let disk_state_name = function
  | No_disk -> "none"
  | Disk_ok -> "ok"
  | Disk_degraded -> "degraded"

let health t =
  {
    mem_entries = mem_size t;
    disk =
      (match t.dir with
      | None -> No_disk
      | Some _ -> if t.disk_ok then Disk_ok else Disk_degraded);
    quarantined_total = t.quarantined;
    scrub_scanned = t.scrub.scanned;
    scrub_quarantined = t.scrub.quarantined;
  }

let scrub_stats t = t.scrub
let disk_degraded t = t.dir <> None && not t.disk_ok
