(* Content-addressed artifact store: key digest -> rendered compile
   artifacts.  Two tiers: a bounded in-memory LRU map (hot working
   set) and an optional on-disk directory (persistence across daemon
   restarts).  Entries are immutable — a digest fully determines its
   artifacts — so there is no invalidation beyond eviction: a changed
   graph, option or compiler version simply hashes to a different key,
   and old entries age out of the LRU (disk entries are left in place;
   they are content-addressed and never wrong, only unused). *)

type entry = {
  key : string;  (** hex digest from {!Key.digest} *)
  ii : int;
  quality : string;
  signature : string;  (** {!Swp_core.Report.schedule_signature} *)
  schedule : string;
  layout : string;
  kernel : string;
      (** printed kernel source for the key's codegen target — the
          target is part of {!Key.options}, so one digest always maps
          to one backend's bytes *)
  report : string;  (** compact provenance JSON, no timings *)
}

let m_mem_hits = Obs.Metrics.counter "cache.store.mem_hits"
let m_disk_hits = Obs.Metrics.counter "cache.store.disk_hits"
let m_misses = Obs.Metrics.counter "cache.store.misses"
let m_evictions = Obs.Metrics.counter "cache.store.evictions"

type slot = { e : entry; mutable tick : int }

type t = {
  m : Mutex.t;
  mem : (string, slot) Hashtbl.t;
  mutable clock : int;
  capacity : int;
  dir : string option;
}

let create ?dir ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Store.create: capacity must be >= 1";
  (match dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | Some d when not (Sys.is_directory d) ->
    invalid_arg (Printf.sprintf "Store.create: %s is not a directory" d)
  | _ -> ());
  { m = Mutex.create (); mem = Hashtbl.create 64; clock = 0; capacity; dir }

(* --- entry (de)serialization: explicit lengths, byte-exact --- *)

(* v2: the "cuda" section became target-generic "kernel"; v1 entries
   fail the magic check and read as misses, which is the correct
   behaviour for a format change. *)
let format_magic = "streamit-cache-entry v2"

let serialize (e : entry) =
  let b = Buffer.create (String.length e.kernel + 1024) in
  Buffer.add_string b (format_magic ^ "\n");
  Buffer.add_string b (Printf.sprintf "key %s\n" e.key);
  Buffer.add_string b (Printf.sprintf "ii %d\n" e.ii);
  Buffer.add_string b (Printf.sprintf "quality %s\n" e.quality);
  Buffer.add_string b (Printf.sprintf "signature %s\n" e.signature);
  let section name body =
    Buffer.add_string b
      (Printf.sprintf "%s %d\n" name (String.length body));
    Buffer.add_string b body;
    Buffer.add_char b '\n'
  in
  section "schedule" e.schedule;
  section "layout" e.layout;
  section "kernel" e.kernel;
  section "report" e.report;
  Buffer.contents b

exception Corrupt of string

let deserialize s =
  let pos = ref 0 in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> raise (Corrupt "truncated header")
    | Some i ->
      let l = String.sub s !pos (i - !pos) in
      pos := i + 1;
      l
  in
  let field name =
    let l = line () in
    match String.index_opt l ' ' with
    | Some i when String.sub l 0 i = name ->
      String.sub l (i + 1) (String.length l - i - 1)
    | _ -> raise (Corrupt ("expected field " ^ name))
  in
  let section name =
    let len =
      match int_of_string_opt (field name) with
      | Some n when n >= 0 -> n
      | _ -> raise (Corrupt ("bad length for section " ^ name))
    in
    if !pos + len + 1 > String.length s then
      raise (Corrupt ("truncated section " ^ name));
    let body = String.sub s !pos len in
    pos := !pos + len;
    if s.[!pos] <> '\n' then
      raise (Corrupt ("missing terminator after section " ^ name));
    incr pos;
    body
  in
  if line () <> format_magic then raise (Corrupt "bad magic");
  let key = field "key" in
  let ii =
    match int_of_string_opt (field "ii") with
    | Some n -> n
    | None -> raise (Corrupt "bad ii")
  in
  let quality = field "quality" in
  let signature = field "signature" in
  let schedule = section "schedule" in
  let layout = section "layout" in
  let kernel = section "kernel" in
  let report = section "report" in
  { key; ii; quality; signature; schedule; layout; kernel; report }

(* --- disk tier --- *)

let path_of dir key = Filename.concat dir (key ^ ".entry")

let disk_read dir key =
  let p = path_of dir key in
  if not (Sys.file_exists p) then None
  else
    try
      let ic = open_in_bin p in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let e = deserialize s in
      (* Content addressing makes corruption detectable for free. *)
      if e.key = key then Some e else None
    with Corrupt _ | Sys_error _ | End_of_file -> None

let disk_write dir (e : entry) =
  let p = path_of dir e.key in
  let tmp = p ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (serialize e);
  close_out oc;
  (* Atomic publish: a crashed daemon never leaves a half-written
     entry under its final name. *)
  Sys.rename tmp p

(* --- LRU map (caller holds t.m) --- *)

let touch t slot =
  t.clock <- t.clock + 1;
  slot.tick <- t.clock

let evict_if_full t =
  if Hashtbl.length t.mem >= t.capacity then begin
    (* Scan for the stalest slot: the capacity is small (hundreds) and
       eviction is rare, so O(n) beats maintaining an intrusive list;
       the scan order doesn't matter because the minimum tick is
       unique. *)
    let victim = ref None in
    Hashtbl.iter
      (fun k s ->
        match !victim with
        | Some (_, best) when best <= s.tick -> ()
        | _ -> victim := Some (k, s.tick))
      t.mem;
    match !victim with
    | Some (k, _) ->
      Obs.Metrics.inc m_evictions;
      Hashtbl.remove t.mem k
    | None -> ()
  end

let insert_locked t e =
  match Hashtbl.find_opt t.mem e.key with
  | Some slot -> touch t slot
  | None ->
    evict_if_full t;
    let slot = { e; tick = 0 } in
    touch t slot;
    Hashtbl.add t.mem e.key slot

(* --- public API --- *)

let find t key =
  Mutex.lock t.m;
  let hit =
    match Hashtbl.find_opt t.mem key with
    | Some slot ->
      touch t slot;
      Some slot.e
    | None -> None
  in
  Mutex.unlock t.m;
  match hit with
  | Some e ->
    Obs.Metrics.inc m_mem_hits;
    Some e
  | None -> (
    match Option.bind t.dir (fun d -> disk_read d key) with
    | Some e ->
      Obs.Metrics.inc m_disk_hits;
      Mutex.lock t.m;
      insert_locked t e;
      Mutex.unlock t.m;
      Some e
    | None ->
      Obs.Metrics.inc m_misses;
      None)

let put t e =
  Mutex.lock t.m;
  insert_locked t e;
  Mutex.unlock t.m;
  Option.iter (fun d -> disk_write d e) t.dir

let mem_size t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.mem in
  Mutex.unlock t.m;
  n
