(* Admission control and load shedding for the serve daemon.

   The guard is a work-unit ledger in front of the compile service:
   every compile request declares a cost (its deterministic work-unit
   budget when it carries one, [default_work] otherwise) and must be
   admitted before any expensive work — graph parsing included —
   happens.  Two caps bound the daemon:

   - a *count* cap: at most [max_inflight] requests executing plus
     [queue_cap] waiting for a pool slot may be outstanding at once;
   - an optional *work* cap: the summed declared cost of outstanding
     requests may not exceed [work_cap], so a handful of huge-budget
     requests cannot crowd out everything else even when the count cap
     would let them in.

   Beyond either cap the request is shed with a deterministic
   "overloaded" error and a retry-after hint that is a pure function
   of the occupancy at decision time.  Admission decisions are taken
   serially in request-arrival order (the daemon admits a batch before
   fanning it out), which is what makes shedding reproducible: the
   same burst always sheds the same requests.

   Cumulative admitted work also charges a [Resil.Budget] ledger, so
   the ping op can report lifetime work-unit throughput with the same
   accounting the compile pipeline uses.

   The ["serve.admit"] inject site lets the chaos campaign force sheds
   deterministically.  [begin_drain] flips the guard into drain mode:
   new admissions shed with reason "draining" while in-flight work
   finishes; [await_idle] blocks until the last ticket is released. *)

type shed = { reason : string; retry_after_ms : int }

type ticket = { work : int }

type admission = Admitted of ticket | Shed of shed

type t = {
  m : Mutex.t;
  idle : Condition.t;
  max_inflight : int;
  queue_cap : int;
  work_cap : int option;
  default_work : int;
  ledger : Resil.Budget.t;  (** cumulative admitted work units *)
  mutable outstanding : int;
  mutable work_occupancy : int;
  mutable draining : bool;
  mutable peak_outstanding : int;
  mutable peak_work : int;
  mutable admitted : int;
  mutable shed : int;
}

let m_admitted = Obs.Metrics.counter "serve.guard.admitted"
let m_shed = Obs.Metrics.counter "serve.guard.shed"
let m_drained = Obs.Metrics.counter "serve.guard.drained"

let create ?(max_inflight = 4) ?(queue_cap = 16) ?work_cap
    ?(default_work = 20_000) () =
  if max_inflight < 1 then invalid_arg "Guard.create: max_inflight must be >= 1";
  if queue_cap < 0 then invalid_arg "Guard.create: queue_cap must be >= 0";
  (match work_cap with
  | Some c when c < 1 -> invalid_arg "Guard.create: work_cap must be >= 1"
  | _ -> ());
  if default_work < 1 then invalid_arg "Guard.create: default_work must be >= 1";
  {
    m = Mutex.create ();
    idle = Condition.create ();
    max_inflight;
    queue_cap;
    work_cap;
    default_work;
    ledger = Resil.Budget.create ~label:"serve.ledger" ();
    outstanding = 0;
    work_occupancy = 0;
    draining = false;
    peak_outstanding = 0;
    peak_work = 0;
    admitted = 0;
    shed = 0;
  }

let capacity t = t.max_inflight + t.queue_cap

(* Deterministic retry hint: proportional to how deep the backlog is
   at decision time.  Clients treat it as a hint, not a promise. *)
let retry_hint t = 25 * (t.outstanding + 1)

let try_admit ?work t =
  let work = match work with Some w -> max 1 w | None -> t.default_work in
  Mutex.lock t.m;
  let decision =
    if t.draining then Shed { reason = "draining"; retry_after_ms = 0 }
    else if Resil.Inject.hit "serve.admit" then
      Shed
        { reason = "injected fault: serve.admit"; retry_after_ms = retry_hint t }
    else if t.outstanding >= capacity t then
      Shed { reason = "admission queue full"; retry_after_ms = retry_hint t }
    else
      match t.work_cap with
      | Some cap when work > cap ->
        (* Retrying cannot help: the request alone exceeds the ledger. *)
        Shed
          {
            reason =
              Printf.sprintf "request work %d exceeds ledger capacity %d" work
                cap;
            retry_after_ms = 0;
          }
      | Some cap when t.work_occupancy + work > cap ->
        Shed { reason = "work ledger full"; retry_after_ms = retry_hint t }
      | _ ->
        t.outstanding <- t.outstanding + 1;
        t.work_occupancy <- t.work_occupancy + work;
        t.peak_outstanding <- max t.peak_outstanding t.outstanding;
        t.peak_work <- max t.peak_work t.work_occupancy;
        t.admitted <- t.admitted + 1;
        Resil.Budget.charge t.ledger work;
        Admitted { work }
  in
  (match decision with
  | Admitted _ -> Obs.Metrics.inc m_admitted
  | Shed _ ->
    t.shed <- t.shed + 1;
    Obs.Metrics.inc m_shed);
  Mutex.unlock t.m;
  decision

let release t (ticket : ticket) =
  Mutex.lock t.m;
  t.outstanding <- t.outstanding - 1;
  t.work_occupancy <- t.work_occupancy - ticket.work;
  if t.outstanding <= 0 then Condition.broadcast t.idle;
  Mutex.unlock t.m

let begin_drain t =
  Mutex.lock t.m;
  t.draining <- true;
  Mutex.unlock t.m

let draining t =
  Mutex.lock t.m;
  let d = t.draining in
  Mutex.unlock t.m;
  d

let await_idle t =
  Mutex.lock t.m;
  while t.outstanding > 0 do
    Condition.wait t.idle t.m
  done;
  Mutex.unlock t.m;
  Obs.Metrics.inc m_drained

type occupancy = {
  outstanding : int;
  work_occupancy : int;
  capacity : int;
  work_cap : int option;
  peak_outstanding : int;
  peak_work : int;
  admitted_total : int;
  shed_total : int;
  ledger_work_total : int;
  draining : bool;
}

let occupancy t =
  Mutex.lock t.m;
  let o =
    {
      outstanding = t.outstanding;
      work_occupancy = t.work_occupancy;
      capacity = capacity t;
      work_cap = t.work_cap;
      peak_outstanding = t.peak_outstanding;
      peak_work = t.peak_work;
      admitted_total = t.admitted;
      shed_total = t.shed;
      ledger_work_total = Resil.Budget.consumed t.ledger;
      draining = t.draining;
    }
  in
  Mutex.unlock t.m;
  o
