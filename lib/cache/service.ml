(* The compile service behind [streamit_gpu serve]: canonicalize,
   hash, look up, and only compile on a genuine miss.

   Safety argument, in one place: compilation is byte-deterministic in
   (canonical graph, options, compiler version) — the PR 4/5
   invariant, enforced by test_determinism — and the cache key is
   exactly that triple (Key.digest), so a hit can only ever return the
   same bytes a cold compile would produce.  Three refinements:

   - every compile runs on the *canonical* graph (names erased), so
     artifacts are independent of what the caller named things and a
     naming-only edit hits the cache with byte-identical results;
   - a warm-started compile ([?seed_ii] from a skeleton match) is
     stored only when the hint provably had no influence: the hint is
     consulted exclusively by the degradation fallback when the search
     committed nothing, so any non-[Degraded] result is byte-identical
     to the cold compile and safe to cache.  Degraded warm results are
     returned to the caller but never stored;
   - a compile under a per-request wall-clock [?deadline] is *never*
     stored (and records no skeleton hint): a deadline can stop any
     pipeline stage at a nondeterministic point, so nothing it shapes
     may claim to be the bytes of a cold compile.

   Concurrent requests for the same key are single-flighted: the first
   caller compiles, the rest block on a per-key flight cell and reuse
   its result, so N simultaneous identical requests cost one compile.
   A compile that *crashes* (escaped exception, as opposed to a
   structured [Error]) is contained: the flight cell is completed with
   an error so waiters never hang, and the key's crash count rises.
   After [breaker_threshold] consecutive crashes the key is poisoned —
   a circuit breaker refuses further compiles of it outright — so one
   pathological graph cannot take down the batch path by crashing a
   pool worker over and over.  A successful compile resets the key's
   count. *)

module Compile = Swp_core.Compile

type outcome = Hit | Miss | Incremental

let outcome_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Incremental -> "incremental"

type flight_state =
  | Pending
  | Done of (Store.entry, string) result

type flight = {
  fm : Mutex.t;
  cv : Condition.t;
  mutable state : flight_state;
}

type t = {
  store : Store.t;
  m : Mutex.t;  (** guards [inflight], [skeletons] and [crashes] *)
  inflight : (string, flight) Hashtbl.t;
  skeletons : (string, int) Hashtbl.t;
      (** skeleton digest -> last achieved II stored under it *)
  crashes : (string, int) Hashtbl.t;
      (** key -> consecutive compile crashes (the poison breaker) *)
  breaker_threshold : int;
  compiles : int Atomic.t;
  warm : bool;
}

let m_hit = Obs.Metrics.counter "cache.serve.hits"
let m_miss = Obs.Metrics.counter "cache.serve.misses"
let m_incremental = Obs.Metrics.counter "cache.serve.incremental"
let m_coalesced = Obs.Metrics.counter "cache.serve.coalesced"
let m_compiles = Obs.Metrics.counter "cache.serve.compiles"
let m_crashes = Obs.Metrics.counter "cache.serve.crashes"
let m_poisoned = Obs.Metrics.counter "cache.serve.poisoned"

let lat_hit =
  Obs.Metrics.histogram ~labels:[ ("outcome", "hit") ] "cache.serve.seconds"

let lat_miss =
  Obs.Metrics.histogram ~labels:[ ("outcome", "miss") ] "cache.serve.seconds"

let create ?dir ?capacity ?(warm = true) ?(breaker_threshold = 3) () =
  if breaker_threshold < 1 then
    invalid_arg "Service.create: breaker_threshold must be >= 1";
  {
    store = Store.create ?dir ?capacity ();
    m = Mutex.create ();
    inflight = Hashtbl.create 16;
    skeletons = Hashtbl.create 16;
    crashes = Hashtbl.create 16;
    breaker_threshold;
    compiles = Atomic.make 0;
    warm;
  }

let compiles t = Atomic.get t.compiles
let store t = t.store

(* --- the poison-key circuit breaker --- *)

let crash_count t key =
  Mutex.lock t.m;
  let n = Option.value (Hashtbl.find_opt t.crashes key) ~default:0 in
  Mutex.unlock t.m;
  n

let poisoned t key = crash_count t key >= t.breaker_threshold

let breaker_open_count t =
  Mutex.lock t.m;
  let n =
    Hashtbl.fold
      (fun _ c acc -> if c >= t.breaker_threshold then acc + 1 else acc)
      t.crashes 0
  in
  Mutex.unlock t.m;
  n

let record_crash t key =
  Obs.Metrics.inc m_crashes;
  Mutex.lock t.m;
  let n = Option.value (Hashtbl.find_opt t.crashes key) ~default:0 in
  Hashtbl.replace t.crashes key (n + 1);
  Mutex.unlock t.m

let record_success t key =
  Mutex.lock t.m;
  Hashtbl.remove t.crashes key;
  Mutex.unlock t.m

(* --- artifact rendering (pure functions of the compiled value) --- *)

let layout_text (c : Compile.compiled) =
  let b = Buffer.create 256 in
  let sz = c.Compile.sizing in
  Buffer.add_string b
    (Printf.sprintf "total_bytes %d\nstages %d\n"
       sz.Swp_core.Buffer_layout.total_bytes
       sz.Swp_core.Buffer_layout.stages);
  List.iter
    (fun ((e : Streamit.Graph.edge), bytes) ->
      Buffer.add_string b
        (Printf.sprintf "edge %d.%d->%d.%d bytes %d\n" e.Streamit.Graph.src
           e.Streamit.Graph.src_port e.Streamit.Graph.dst
           e.Streamit.Graph.dst_port bytes))
    sz.Swp_core.Buffer_layout.per_edge;
  Buffer.contents b

let schedule_text (c : Compile.compiled) =
  Format.asprintf "%a" (Swp_core.Swp_schedule.pp c.Compile.graph)
    c.Compile.schedule

let render key ~(target : Kir.Ir.target) (c : Compile.compiled) =
  {
    Store.key;
    ii = c.Compile.schedule.Swp_core.Swp_schedule.ii;
    quality = Compile.quality_name c.Compile.quality;
    signature = Swp_core.Report.schedule_signature c;
    schedule = schedule_text c;
    layout = layout_text c;
    kernel =
      (* The CUDA path goes through [Kernel_gen.program] for the codegen
         metrics/trace span it carries; the bytes are identical to
         [Kir.Backend.emit_compiled Cuda c] (pinned by the golden
         fixtures). *)
      (match target with
      | Kir.Ir.Cuda -> Cudagen.Kernel_gen.program c
      | t -> Kir.Backend.emit_compiled t c);
    (* No program name (requests may name the same graph differently)
       and no timings: the report must be a pure function of the key. *)
    report = Swp_core.Report.to_json (Swp_core.Report.assemble c);
  }

let run_compile t (o : Key.options) ?seed_ii ?deadline g =
  Atomic.incr t.compiles;
  Obs.Metrics.inc m_compiles;
  if Resil.Inject.hit "serve.compile" then
    failwith "injected fault: serve.compile";
  Compile.compile ~arch:o.Key.arch ?num_sms:o.Key.num_sms
    ~coarsening:o.Key.coarsening ~scheme:o.Key.scheme ?budget:o.Key.budget
    ?portfolio:o.Key.portfolio ?lns_rounds:o.Key.lns_rounds ?seed_ii ?deadline
    g

(* --- single-flight get --- *)

let wait_flight fl =
  Mutex.lock fl.fm;
  let rec loop () =
    match fl.state with
    | Pending ->
      Condition.wait fl.cv fl.fm;
      loop ()
    | Done r -> r
  in
  let r = loop () in
  Mutex.unlock fl.fm;
  r

let finish_flight t key fl r =
  Mutex.lock t.m;
  Hashtbl.remove t.inflight key;
  Mutex.unlock t.m;
  Mutex.lock fl.fm;
  fl.state <- Done r;
  Condition.broadcast fl.cv;
  Mutex.unlock fl.fm

let get ?(warm = true) ?deadline t graph (o : Key.options) =
  let t0 = Resil.Clock.now () in
  (* The digest renames inline, so hits never pay for canonicalizing
     the graph — that happens only on the compile path below. *)
  let key = Key.digest graph o in
  let observe h = Obs.Metrics.observe h (Resil.Clock.now () -. t0) in
  if poisoned t key then begin
    Obs.Metrics.inc m_poisoned;
    Error
      (Printf.sprintf
         "poisoned: key %s crashed the compiler %d times and is quarantined"
         key (crash_count t key))
  end
  else
    match Store.find t.store key with
    | Some e ->
      Obs.Metrics.inc m_hit;
      observe lat_hit;
      Ok (e, Hit)
    | None -> (
      let claim =
        Mutex.lock t.m;
        match Hashtbl.find_opt t.inflight key with
        | Some fl ->
          Mutex.unlock t.m;
          `Join fl
        | None ->
          let fl =
            { fm = Mutex.create (); cv = Condition.create (); state = Pending }
          in
          Hashtbl.add t.inflight key fl;
          let skel = Key.skeleton_digest graph o in
          let hint =
            if t.warm && warm then Hashtbl.find_opt t.skeletons skel else None
          in
          Mutex.unlock t.m;
          `Lead (fl, skel, hint)
      in
      match claim with
      | `Join fl -> (
        (* Another request is already compiling this key; its result is
           ours too (same key, deterministic compile). *)
        Obs.Metrics.inc m_coalesced;
        match wait_flight fl with
        | Ok e ->
          Obs.Metrics.inc m_hit;
          observe lat_hit;
          Ok (e, Hit)
        | Error m -> Error m)
      | `Lead (fl, skel, hint) ->
        let result =
          match
            run_compile t o ?seed_ii:hint ?deadline (Key.canonical_graph graph)
          with
          | Ok c ->
            record_success t key;
            let e = render key ~target:o.Key.target c in
            (* Two taints block caching.  A Degraded result produced
               under a warm-start hint may have been shaped by it (the
               fallback ramp seeds from the hint).  Any result under a
               wall-clock deadline may have been shaped by where the
               clock happened to stop a stage.  Either way, refuse to
               store it so a later cold compile of the same key cannot
               disagree with the cached bytes. *)
            let tainted =
              (hint <> None && c.Compile.quality = Compile.Degraded)
              || deadline <> None
            in
            if not tainted then begin
              Store.put t.store e;
              Mutex.lock t.m;
              Hashtbl.replace t.skeletons skel e.Store.ii;
              Mutex.unlock t.m
            end;
            Ok e
          | Error m -> Error m
          | exception ex ->
            (* Contain the crash: waiters must never hang on a Pending
               flight, and the breaker counts the key. *)
            record_crash t key;
            Error ("compile crashed: " ^ Printexc.to_string ex)
        in
        finish_flight t key fl result;
        (match result with
        | Ok e ->
          let outcome = if hint <> None then Incremental else Miss in
          Obs.Metrics.inc
            (match outcome with Incremental -> m_incremental | _ -> m_miss);
          observe lat_miss;
          Ok (e, outcome)
        | Error m -> Error m))

let get_many ?warm t reqs =
  Par.Pool.map_auto (fun (g, o) -> get ?warm t g o) reqs
