(** Fixed-size domain work pool with a deterministic join.

    A pool owns [domains - 1] worker domains pulling tasks from a shared
    queue; the submitting domain executes tasks too while it waits, so a
    pool of [n] domains gives [n]-way parallelism.  {!map} hands every
    list element to a task and joins the results {e in submission
    order}, so the output is independent of which domain ran what and
    when — a parallel [map] is observationally identical to [List.map]
    over a pure function.  Exceptions raised by tasks are captured with
    their backtraces; after all tasks of the call have settled, the
    exception of the {e earliest} failing element is re-raised.

    Pools must not be used re-entrantly: calling {!map} from inside a
    task (of any pool) raises [Invalid_argument] — the blocked outer
    task could deadlock the workers it is waiting on.  Compose nested
    parallelism with {!map_auto}, which degrades to a serial map inside
    tasks instead.

    A pool created with [~domains:1] (or given an empty or singleton
    list) never spawns a domain and runs everything serially on the
    caller — the fallback path used when the host has a single core
    ([Domain.recommended_domain_count () = 1]) or parallelism is
    disabled. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains
    ([domains] defaults to {!auto_domains}; values [< 1] are clamped
    to 1).  Workers idle on a condition variable until tasks arrive. *)

val domains : t -> int
(** The parallelism width the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] evaluates [f x] for every element, in parallel
    across the pool, and returns the results in submission order.
    @raise Invalid_argument on nested use (from inside any pool task)
    or after {!shutdown}. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc ->
  'a list -> 'acc
(** [map_reduce pool ~map ~reduce ~init xs]: parallel map, then a
    {e sequential} left fold over the results in submission order — the
    reduction order is deterministic even though execution order is
    not, so non-commutative reductions are safe. *)

(** {1 Fault-containing map}

    {!map} re-raises the earliest task exception, which is the right
    default for homogeneous batches where one failure poisons the
    result.  Drivers that want to survive individual failures (the
    fuzzer compiling many independent seeds, a sweep where one point
    diverges) use {!map_result}: every element settles to its own
    [result], worker faults never escape, and a cooperative
    [should_stop] predicate cancels not-yet-started tasks. *)

type fault = {
  index : int;  (** submission position of the failing element *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

exception Cancelled
(** The [exn] recorded for elements whose task was cancelled by
    [should_stop] before it started. *)

val map_result :
  t ->
  ?should_stop:(unit -> bool) ->
  ('a -> 'b) ->
  'a list ->
  ('b, fault) result list
(** [map_result pool f xs] evaluates [f] on every element in parallel
    and returns one [result] per element, in submission order.  A task
    that raises yields [Error] with the exception and its backtrace
    captured; no exception from a task ever escapes the call.
    [should_stop] is polled immediately before each task starts; once
    it returns [true], remaining tasks settle to [Error] with
    {!Cancelled} without running (tasks already running complete
    normally).  The list of outcomes is deterministic for a
    deterministic [f]/[should_stop].
    @raise Invalid_argument on nested use or after {!shutdown} —
    programming errors, not task faults. *)

val shutdown : t -> unit
(** Drains the queue, terminates and joins the workers.  Idempotent;
    subsequent {!map} calls raise [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f]: {!create}, run [f], always {!shutdown}. *)

val in_task : unit -> bool
(** True while the calling domain is executing a pool task (of any
    pool) — the condition under which {!map} rejects nested use. *)

val auto_domains : unit -> int
(** [Domain.recommended_domain_count ()]: the widest pool worth
    creating on this host. *)

(** {1 Process-global parallelism setting}

    Library code (profiling sweeps, the II search, …) parallelizes
    through a process-global pool so the [--jobs] flag of the drivers
    reaches every layer without threading a pool through each
    signature.  The default is [1]: nothing runs in parallel unless a
    driver opts in. *)

val set_jobs : int -> unit
(** Set the global parallelism width (clamped to [>= 1]).  Shuts down
    the current global pool if its width differs; a new one is created
    lazily on the next {!map_auto}. *)

val jobs : unit -> int
(** The current global width. *)

val parallelism : unit -> int
(** The width {!map_auto} would actually use right now: [1] when the
    global width is 1 {e or} the caller is inside a pool task (nested
    parallelism degrades to serial), the global width otherwise.
    Callers sizing speculative batches should use this, not {!jobs}. *)

val map_auto : ('a -> 'b) -> 'a list -> 'b list
(** [List.map f xs] when {!parallelism}[ () = 1]; a parallel {!map} on
    the global pool otherwise.  Always safe to call — never raises the
    nested-use rejection. *)

val map_auto_result :
  ?should_stop:(unit -> bool) -> ('a -> 'b) -> 'a list ->
  ('b, fault) result list
(** {!map_result} on the global pool, degrading to a serial contained
    map when {!parallelism}[ () = 1] — same containment and
    cancellation semantics either way. *)
