(* Fixed-size domain pool.

   One shared FIFO of thunks, guarded by a mutex + condition; workers
   loop on it, the submitting domain helps drain it while its batch is
   outstanding.  Each map call owns a results array indexed by
   submission position and a countdown latch, so the join is
   deterministic regardless of execution interleaving: results are read
   out (and the earliest captured exception re-raised) strictly in
   submission order.

   Tasks never let exceptions escape into a worker: they are captured
   with their backtrace into the result slot and re-raised at the join
   on the submitting domain. *)

type t = {
  width : int;                       (* parallelism incl. the caller *)
  queue : (unit -> unit) Queue.t;    (* pending task thunks *)
  m : Mutex.t;                       (* guards queue + closed *)
  work : Condition.t;                (* queue grew, or shutdown *)
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

(* Set while the current domain is executing a pool task, whichever pool
   it belongs to.  One global key (rather than one per pool) so nested
   use is rejected even across pools: an outer task blocked in an inner
   [map] holds a worker hostage either way, and on top of that the
   domains of two simultaneously active pools would oversubscribe the
   cores. *)
let task_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let in_task () = !(Domain.DLS.get task_key)

let run_task thunk =
  let flag = Domain.DLS.get task_key in
  flag := true;
  (* thunks capture their own exceptions; no protect needed *)
  thunk ();
  flag := false

(* Pop one task if any; runs it outside the lock. *)
let try_run_one pool =
  Mutex.lock pool.m;
  match Queue.take_opt pool.queue with
  | Some thunk ->
    Mutex.unlock pool.m;
    run_task thunk;
    true
  | None ->
    Mutex.unlock pool.m;
    false

let rec worker_loop pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.work pool.m
  done;
  match Queue.take_opt pool.queue with
  | Some thunk ->
    Mutex.unlock pool.m;
    run_task thunk;
    worker_loop pool
  | None ->
    (* empty and closed *)
    Mutex.unlock pool.m

let auto_domains () = Domain.recommended_domain_count ()

let create ?domains () =
  let width =
    max 1 (match domains with Some d -> d | None -> auto_domains ())
  in
  let pool =
    {
      width;
      queue = Queue.create ();
      m = Mutex.create ();
      work = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  pool.workers <-
    List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let domains t = t.width

let shutdown pool =
  Mutex.lock pool.m;
  pool.closed <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

type 'b slot = Empty | Ok_ of 'b | Exn of exn * Printexc.raw_backtrace

(* Deterministic fault-injection point: every task executed by a pool
   (serial degradations included) passes through it, so a fuzzer can arm
   the ["pool.task"] site and observe how callers contain a worker
   fault.  Free when no faults are armed — a single atomic load. *)
let inject_point () =
  if Resil.Inject.armed () then Resil.Inject.fire "pool.task"

let map pool f xs =
  if in_task () then
    invalid_arg "Par.Pool.map: nested use (called from inside a pool task)";
  if pool.closed then invalid_arg "Par.Pool.map: pool is shut down";
  match xs with
  | [] -> []
  | [ x ] ->
    inject_point ();
    [ f x ]
  | _ when pool.width = 1 ->
    List.map
      (fun x ->
        inject_point ();
        f x)
      xs
  | _ ->
    let args = Array.of_list xs in
    let n = Array.length args in
    let results = Array.make n Empty in
    let latch_m = Mutex.create () in
    let all_done = Condition.create () in
    let left = ref n in
    let task i () =
      let r =
        try
          inject_point ();
          Ok_ (f args.(i))
        with e -> Exn (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- r;
      Mutex.lock latch_m;
      decr left;
      if !left = 0 then Condition.signal all_done;
      Mutex.unlock latch_m
    in
    Mutex.lock pool.m;
    for i = 0 to n - 1 do
      Queue.push (task i) pool.queue
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    (* The caller is one of the pool's execution lanes: drain tasks
       until the queue is empty (they may belong to this batch or, with
       concurrent submitters, another — either way it is forward
       progress), then sleep until this batch's latch opens. *)
    while try_run_one pool do
      ()
    done;
    Mutex.lock latch_m;
    while !left > 0 do
      Condition.wait all_done latch_m
    done;
    Mutex.unlock latch_m;
    (* deterministic join: earliest failure wins, else submission order *)
    Array.iter
      (function
        | Exn (e, bt) -> Printexc.raise_with_backtrace e bt
        | Ok_ _ -> ()
        | Empty -> assert false)
      results;
    List.init n (fun i ->
        match results.(i) with Ok_ v -> v | Empty | Exn _ -> assert false)

let map_reduce pool ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map pool f xs)

(* ---------- fault-containing map ---------- *)

type fault = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

exception Cancelled

(* Run one element under containment: cooperative cancellation first
   (a cancelled task is never started), then execute with every
   exception — injected faults included — captured into the slot. *)
let run_contained ?should_stop f i x =
  let stop = match should_stop with Some p -> p () | None -> false in
  if stop then
    Error { index = i; exn = Cancelled; backtrace = Printexc.get_callstack 0 }
  else
    try
      inject_point ();
      Ok (f x)
    with e ->
      Error { index = i; exn = e; backtrace = Printexc.get_raw_backtrace () }

let map_result pool ?should_stop f xs =
  if in_task () then
    invalid_arg
      "Par.Pool.map_result: nested use (called from inside a pool task)";
  if pool.closed then invalid_arg "Par.Pool.map_result: pool is shut down";
  match xs with
  | [] -> []
  | [ x ] -> [ run_contained ?should_stop f 0 x ]
  | _ when pool.width = 1 ->
    List.mapi (fun i x -> run_contained ?should_stop f i x) xs
  | _ ->
    let args = Array.of_list xs in
    let n = Array.length args in
    let results = Array.make n None in
    let latch_m = Mutex.create () in
    let all_done = Condition.create () in
    let left = ref n in
    let task i () =
      let r = run_contained ?should_stop f i args.(i) in
      results.(i) <- Some r;
      Mutex.lock latch_m;
      decr left;
      if !left = 0 then Condition.signal all_done;
      Mutex.unlock latch_m
    in
    Mutex.lock pool.m;
    for i = 0 to n - 1 do
      Queue.push (task i) pool.queue
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    while try_run_one pool do
      ()
    done;
    Mutex.lock latch_m;
    while !left > 0 do
      Condition.wait all_done latch_m
    done;
    Mutex.unlock latch_m;
    (* deterministic join: per-element outcomes in submission order;
       nothing is ever re-raised here *)
    List.init n (fun i ->
        match results.(i) with Some r -> r | None -> assert false)

(* ---------- process-global pool ---------- *)

let global_m = Mutex.create ()
let global_jobs = ref 1
let global_pool : t option ref = ref None

let jobs () =
  Mutex.lock global_m;
  let j = !global_jobs in
  Mutex.unlock global_m;
  j

let set_jobs n =
  let n = max 1 n in
  let stale =
    Mutex.lock global_m;
    global_jobs := n;
    let p =
      match !global_pool with
      | Some p when p.width <> n ->
        global_pool := None;
        Some p
      | _ -> None
    in
    Mutex.unlock global_m;
    p
  in
  Option.iter shutdown stale

let parallelism () = if in_task () then 1 else jobs ()

let global () =
  Mutex.lock global_m;
  let p =
    match !global_pool with
    | Some p -> p
    | None ->
      let p = create ~domains:!global_jobs () in
      global_pool := Some p;
      p
  in
  Mutex.unlock global_m;
  p

let map_auto f xs =
  if parallelism () = 1 then
    List.map
      (fun x ->
        inject_point ();
        f x)
      xs
  else map (global ()) f xs

let map_auto_result ?should_stop f xs =
  if parallelism () = 1 then
    List.mapi (fun i x -> run_contained ?should_stop f i x) xs
  else map_result (global ()) ?should_stop f xs
