(** Exact-rational two-phase primal simplex.

    Solves the LP relaxation of a {!Problem} (integrality restrictions are
    ignored here; {!Branch_bound} layers them on top).  All pivoting is done
    in exact rational arithmetic with Bland's anti-cycling rule, so the
    solver terminates and never reports a spurious optimum due to rounding —
    essential when the ILP is used as a feasibility oracle for candidate
    initiation intervals.

    Pricing uses Dantzig's rule with a permanent switch to Bland's rule
    after a degeneracy budget; a hard pivot cap makes pathological
    instances return [Budget_exhausted None] instead of spinning.

    The production path stores tableau rows sparsely (sorted column/value
    pairs, hybrid-densified past a fill threshold) — the scheduling ILP
    matrices of Sec. III are overwhelmingly zero, and skipping the zeros in
    pivoting, pricing and the ratio test is worth an order of magnitude.
    The original dense tableau survives as [solve_reference] /
    [solve_with_bounds_reference]: both cores share the standard-form
    construction and make identical pivot choices, so they return identical
    results (cross-validated by property tests in [test/test_lp.ml]). *)

open Numeric

val solve : Problem.t -> Solution.outcome
(** Solve the LP relaxation with the problem's own variable bounds. *)

val solve_with_bounds :
  ?deadline:float ->
  ?budget:Resil.Budget.t ->
  ?stats:Solution.lp_stats ref ->
  Problem.t ->
  lb:Rat.t option array ->
  ub:Rat.t option array ->
  Solution.outcome
(** Like {!solve} but with per-variable bound overrides (used by
    branch-and-bound to impose branching decisions without mutating the
    problem).  Arrays are indexed by variable id and must cover every
    variable.  [deadline] is an absolute [Resil.Clock.now ()] value past which
    pivoting aborts with [Budget_exhausted None].  [budget], when given,
    is charged one work unit per pivot and checked cooperatively: an
    exhausted token (work units, or its wall-clock deadline) also aborts
    with [Budget_exhausted None] — work-unit exhaustion is deterministic
    in the pivot sequence alone.  [stats], when given, is accumulated
    with the solve's pivot/fill statistics whatever the outcome (see
    {!Solution.add_lp_stats}). *)

val feasible_with_bounds :
  ?deadline:float ->
  ?budget:Resil.Budget.t ->
  ?stats:Solution.lp_stats ref ->
  Problem.t ->
  lb:Rat.t option array ->
  ub:Rat.t option array ->
  [ `Feasible | `Infeasible | `Unknown ]
(** Phase-1-only feasibility oracle for the LP relaxation: the objective
    is ignored, so the answer costs exactly the phase-1 pivot sequence.
    [`Infeasible] is a {e proof} that the relaxation (and therefore the
    MILP) has no solution under the given bounds — the primitive the
    LP-relaxation lower bound in [Swp_core.Mii] and the LNS window
    screen are built on.  [`Unknown] means the pivot budget ran out
    first.  Deadline/budget/stats behave as in {!solve_with_bounds}. *)

val solve_reference : Problem.t -> Solution.outcome
(** Dense-tableau reference implementation (the original solver).  Kept
    for cross-validation; use {!solve} in production code. *)

val solve_with_bounds_reference :
  ?deadline:float ->
  ?budget:Resil.Budget.t ->
  ?stats:Solution.lp_stats ref ->
  Problem.t ->
  lb:Rat.t option array ->
  ub:Rat.t option array ->
  Solution.outcome
(** Dense-tableau counterpart of {!solve_with_bounds}.  [stats] is only
    accumulated on an [Optimal] outcome. *)
