open Numeric

type lp_stats = {
  pivots : int;
  tableau_rows : int;
  tableau_cols : int;
  max_nnz : int;
  final_nnz : int;
  dense_rows : int;
}

let empty_lp_stats =
  {
    pivots = 0;
    tableau_rows = 0;
    tableau_cols = 0;
    max_nnz = 0;
    final_nnz = 0;
    dense_rows = 0;
  }

let add_lp_stats a b =
  {
    pivots = a.pivots + b.pivots;
    tableau_rows = Stdlib.max a.tableau_rows b.tableau_rows;
    tableau_cols = Stdlib.max a.tableau_cols b.tableau_cols;
    max_nnz = Stdlib.max a.max_nnz b.max_nnz;
    final_nnz = b.final_nnz;
    dense_rows = Stdlib.max a.dense_rows b.dense_rows;
  }

(* The process-global metrics registry is the accumulation point for
   solver work; the [lp_stats] record is the per-solve view of the same
   numbers.  Every simplex solve reports here exactly once. *)
let m_solves = Obs.Metrics.counter "lp.solves"
let m_pivots = Obs.Metrics.counter "lp.pivots"
let m_densified_rows = Obs.Metrics.counter "lp.densified_rows"
let h_tableau_rows = Obs.Metrics.histogram "lp.tableau.rows"
let h_tableau_nnz = Obs.Metrics.histogram "lp.tableau.max_nnz"

let record_to_registry st =
  Obs.Metrics.inc m_solves;
  Obs.Metrics.add m_pivots st.pivots;
  Obs.Metrics.add m_densified_rows st.dense_rows;
  Obs.Metrics.observe h_tableau_rows (float_of_int st.tableau_rows);
  Obs.Metrics.observe h_tableau_nnz (float_of_int st.max_nnz)

type t = { values : Rat.t array; objective : Rat.t; lp : lp_stats }

let value s v = s.values.(v)
let value_int s v = Rat.to_int s.values.(v)

let pp fmt s =
  Format.fprintf fmt "obj=%s;" (Rat.to_string s.objective);
  Array.iteri
    (fun i v ->
      if not (Rat.is_zero v) then
        Format.fprintf fmt " x%d=%s" i (Rat.to_string v))
    s.values

let pp_lp_stats fmt s =
  Format.fprintf fmt "pivots=%d tableau=%dx%d nnz(max/final)=%d/%d dense_rows=%d"
    s.pivots s.tableau_rows s.tableau_cols s.max_nnz s.final_nnz s.dense_rows

type outcome =
  | Optimal of t
  | Infeasible
  | Unbounded
  | Budget_exhausted of t option

let pp_outcome fmt = function
  | Optimal s -> Format.fprintf fmt "optimal: %a" pp s
  | Infeasible -> Format.fprintf fmt "infeasible"
  | Unbounded -> Format.fprintf fmt "unbounded"
  | Budget_exhausted None -> Format.fprintf fmt "budget exhausted (no incumbent)"
  | Budget_exhausted (Some s) ->
    Format.fprintf fmt "budget exhausted, incumbent: %a" pp s
