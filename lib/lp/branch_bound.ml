open Numeric

type stats = {
  nodes_explored : int;
  nodes_pruned : int;
  max_depth : int;
  lp_pivots : int;
  seeded : bool;
  cuts_added : int;
}

let m_solves = Obs.Metrics.counter "lp.bb.solves"
let m_nodes = Obs.Metrics.counter "lp.bb.nodes"
let m_pruned = Obs.Metrics.counter "lp.bb.pruned"
let m_incumbents = Obs.Metrics.counter "lp.bb.incumbents"
let m_seeded = Obs.Metrics.counter "lp.bb.warm_start_hits"
let m_cuts = Obs.Metrics.counter "lp.bb.cuts_added"
let h_depth = Obs.Metrics.histogram "lp.bb.max_depth"

(* A branching decision narrows one variable's bounds. *)
type node = { lb : Rat.t option array; ub : Rat.t option array; depth : int }

let most_fractional_var int_vars (sol : Solution.t) =
  let best = ref None in
  List.iter
    (fun v ->
      let x = sol.values.(v) in
      if not (Rat.is_integer x) then begin
        (* distance to nearest integer = min(frac, 1-frac) *)
        let fl = Rat.of_bigint (Rat.floor x) in
        let frac = Rat.sub x fl in
        let dist = Rat.min frac (Rat.sub Rat.one frac) in
        match !best with
        | Some (_, d) when Rat.ge dist d |> not -> ()
        | _ -> best := Some ((v, x), dist)
      end)
    int_vars;
  Option.map fst !best

let solve ?(node_budget = 10_000) ?time_budget_s ?budget ?first_solution
    ?incumbent ?(use_reference_lp = false) ?cuts ?(cut_rounds = 8) problem =
  let deadline =
    Option.map (fun b -> Resil.Clock.now () +. b) time_budget_s
  in
  let dir, obj = Problem.objective problem in
  let feasibility_only = Linexpr.is_constant obj in
  let first_solution =
    match first_solution with Some b -> b | None -> feasibility_only
  in
  let int_vars = Problem.integer_vars problem in
  let n = Problem.num_vars problem in
  let root =
    {
      lb = Array.init n (Problem.var_lb problem);
      ub = Array.init n (Problem.var_ub problem);
      depth = 0;
    }
  in
  let lp_stats = ref Solution.empty_lp_stats in
  (* Warm start: a caller-provided feasible assignment (e.g. the heuristic
     modulo scheduler's solution) becomes the initial incumbent, so the
     search prunes against it instead of exploring — and for the paper's
     pure-feasibility ILPs it already answers the query. *)
  let seeded = ref false in
  let incumbent =
    ref
      (match incumbent with
      | None -> None
      | Some assign -> (
        match Problem.check_assignment problem assign with
        | Error _ -> None (* silently ignore an invalid seed *)
        | Ok () ->
          seeded := true;
          Some
            {
              Solution.values = Array.init n assign;
              objective = Linexpr.eval assign obj;
              lp = Solution.empty_lp_stats;
            }))
  in
  let lp_budget_hit = ref false in
  let explored = ref 0 and pruned = ref 0 and maxdepth = ref 0 in
  (* Root cut loop: a caller-supplied separator turns the root
     relaxation's fractional point into violated valid inequalities,
     which are added to [problem] (mutating it — cuts are valid for
     every integral solution, so the feasible set of the MILP is
     unchanged) and the root is re-solved, up to [cut_rounds] times,
     before any branching happens. *)
  let cut_rounds_left = ref (match cuts with None -> 0 | Some _ -> cut_rounds) in
  let cuts_added = ref 0 in
  let better (s : Solution.t) =
    match !incumbent with
    | None -> true
    | Some (i : Solution.t) -> (
      match dir with
      | `Minimize -> Rat.lt s.objective i.objective
      | `Maximize -> Rat.gt s.objective i.objective)
  in
  (* LP bound cannot beat the incumbent => prune. *)
  let bound_dominated (s : Solution.t) =
    match !incumbent with
    | None -> false
    | Some (i : Solution.t) -> (
      match dir with
      | `Minimize -> Rat.ge s.objective i.objective
      | `Maximize -> Rat.le s.objective i.objective)
  in
  let exception Done in
  let exception Budget in
  let stack = ref [ root ] in
  (try
     (* A seeded feasibility search is already answered by its incumbent. *)
     if first_solution && !incumbent <> None then raise Done;
     while !stack <> [] do
       match !stack with
       | [] -> ()
       | node :: rest ->
         stack := rest;
         if !explored >= node_budget then raise Budget;
         (match deadline with
         | Some d when Resil.Clock.now () > d -> raise Budget
         | _ -> ());
         (* Cooperative budget check: one work unit per node, and the
            token's own limits (work and, if armed, wall clock). *)
         (match budget with
         | Some b ->
           if Resil.Budget.over b then raise Budget
           else Resil.Budget.charge b 1
         | None -> ());
         incr explored;
         if node.depth > !maxdepth then maxdepth := node.depth;
         let relaxation =
           if use_reference_lp then
             Simplex.solve_with_bounds_reference ?deadline ?budget
               ~stats:lp_stats problem ~lb:node.lb ~ub:node.ub
           else
             Simplex.solve_with_bounds ?deadline ?budget ~stats:lp_stats
               problem ~lb:node.lb ~ub:node.ub
         in
         (match relaxation with
         | Solution.Budget_exhausted _ ->
           (* the relaxation hit its pivot cap: we can conclude nothing
              about this subtree — drop it and report budget exhaustion *)
           incr pruned;
           lp_budget_hit := true
         | Solution.Infeasible -> incr pruned
         | Solution.Unbounded ->
           (* With an integral-feasible region contained in the LP region,
              an unbounded relaxation at the root means the MILP itself is
              unbounded only when an integral ray exists; we report it
              conservatively. *)
           if node.depth = 0 && not feasibility_only then begin
             incumbent := None;
             raise Done
           end
         | Solution.Optimal sol ->
           if bound_dominated sol then incr pruned
           else begin
             match most_fractional_var int_vars sol with
             | None ->
               (* Integral solution. *)
               if better sol then begin
                 incumbent := Some sol;
                 Obs.Metrics.inc m_incumbents
               end;
               if first_solution then raise Done
             | Some (v, x) ->
               let cut_this_round =
                 node.depth = 0 && !cut_rounds_left > 0
                 &&
                 match cuts with
                 | None -> false
                 | Some gen -> (
                   match gen sol with
                   | [] ->
                     (* separator is dry: stop asking *)
                     cut_rounds_left := 0;
                     false
                   | cs ->
                     decr cut_rounds_left;
                     List.iter
                       (fun (lhs, rel, rhs) ->
                         incr cuts_added;
                         Problem.add_constraint problem
                           ~name:(Printf.sprintf "cut_%d" !cuts_added)
                           lhs rel rhs)
                       cs;
                     (* re-solve the strengthened root before branching *)
                     stack := node :: !stack;
                     true)
               in
               if not cut_this_round then begin
               let fl = Rat.of_bigint (Rat.floor x) in
               let ce = Rat.add fl Rat.one in
               let down =
                 let ub = Array.copy node.ub in
                 ub.(v) <-
                   Some
                     (match ub.(v) with
                     | Some u -> Rat.min u fl
                     | None -> fl);
                 { lb = node.lb; ub; depth = node.depth + 1 }
               in
               let up =
                 let lb = Array.copy node.lb in
                 lb.(v) <-
                   Some
                     (match lb.(v) with
                     | Some l -> Rat.max l ce
                     | None -> ce);
                 { lb; ub = node.ub; depth = node.depth + 1 }
               in
               (* DFS, exploring the "down" branch first: schedule
                  variables toward their lower bound, which for the w/g
                  binaries of the paper's ILP means trying the cheaper
                  assignment first. *)
               stack := down :: up :: !stack
               end
           end)
     done
   with
  | Done -> ()
  | Budget ->
    ());
  let stats =
    {
      nodes_explored = !explored;
      nodes_pruned = !pruned;
      max_depth = !maxdepth;
      lp_pivots = !lp_stats.Solution.pivots;
      seeded = !seeded;
      cuts_added = !cuts_added;
    }
  in
  Obs.Metrics.inc m_solves;
  Obs.Metrics.add m_cuts !cuts_added;
  Obs.Metrics.add m_nodes !explored;
  Obs.Metrics.add m_pruned !pruned;
  if !seeded then Obs.Metrics.inc m_seeded;
  Obs.Metrics.observe h_depth (float_of_int !maxdepth);
  let budget_hit =
    !explored >= node_budget || !lp_budget_hit
    || (match deadline with Some d -> Resil.Clock.now () > d | None -> false)
    || (match budget with Some b -> Resil.Budget.over b | None -> false)
  in
  match !incumbent with
  | Some sol ->
    (* Self-check before handing the solution out. *)
    (match Problem.check_assignment problem (fun v -> sol.values.(v)) with
    | Ok () -> ()
    | Error m -> failwith ("Branch_bound: invalid solution produced: " ^ m));
    if budget_hit && not first_solution then
      (Solution.Budget_exhausted (Some sol), stats)
    else (Solution.Optimal sol, stats)
  | None ->
    if budget_hit then (Solution.Budget_exhausted None, stats)
    else (Solution.Infeasible, stats)
