(* Two-phase primal simplex over exact rationals.

   Conversion to standard form:
   - a variable with finite lower bound [l] is substituted [x = l + x'],
     [x' >= 0];
   - a free variable is split [x = x+ - x-];
   - a finite upper bound becomes an extra [<=] row (after substitution);
   - every row is flipped so its right-hand side is non-negative, then gets
     a slack ([<=]), a surplus plus artificial ([>=]) or an artificial ([=]).

   Phase 1 minimises the sum of artificials from the all-slack/artificial
   basis; phase 2 re-prices the user objective.  Bland's rule (smallest
   entering index, smallest-basic-variable tie-break on the ratio test)
   guarantees termination.

   Two tableau back ends share the standard-form construction:

   - the default {e sparse} core stores each row as sorted (column, value)
     pairs, skipping zero entries in pivoting, pricing and the ratio test;
     a row whose fill ratio crosses a threshold is densified in place
     (hybrid storage).  The scheduling ILPs of Sec. III are ~95% zeros, so
     this is the production path;
   - the {e dense} core is the original [Rat.t array array] tableau, kept
     as the reference implementation that the property tests cross-validate
     the sparse core against (identical pivot choices, identical results).
*)

open Numeric

(* How an original problem variable maps into standard-form columns. *)
type var_map =
  | Shifted of int * Rat.t (* column, lower-bound offset: x = off + col *)
  | Split of int * int (* x = pos - neg *)

let q0 = Rat.zero
let q1 = Rat.one

(* Rare-event telemetry: row densifications (a sparse row crossing the
   hybrid fill threshold) and permanent switches to Bland's pricing rule
   after the degeneracy budget.  Both fire far from the per-pivot hot
   loop, so the registry bumps are free. *)
let m_densifications = Obs.Metrics.counter "lp.densifications"
let m_bland = Obs.Metrics.counter "lp.bland_fallbacks"

exception Pivot_limit

(* ---------- shared standard-form construction ---------- *)

(* One standard-form row, post-flip: [coeffs] over struct columns sorted by
   column, [rhs >= 0]. *)
type std_row = {
  coeffs : (int * Rat.t) list;
  rel : Problem.relation;
  rhs : Rat.t;
}

type std_form = {
  vmap : var_map array;
  srows : std_row array;
  nstruct : int;
  n_slack : int;
  n_art : int;
  ocoeffs : (int * Rat.t) list; (* minimized objective, sorted *)
  oconst : Rat.t;
  dir : [ `Minimize | `Maximize ];
}

let build_std problem ~lb ~ub =
  let n = Problem.num_vars problem in
  if Array.length lb <> n || Array.length ub <> n then
    invalid_arg "Simplex.solve_with_bounds: bound arrays wrong length";
  (* Quick bound sanity: lb > ub is immediately infeasible. *)
  let bounds_ok = ref true in
  for v = 0 to n - 1 do
    match (lb.(v), ub.(v)) with
    | Some l, Some u when Rat.gt l u -> bounds_ok := false
    | _ -> ()
  done;
  if not !bounds_ok then None
  else begin
    (* --- assign standard-form columns --- *)
    let next_col = ref 0 in
    let fresh () =
      let c = !next_col in
      incr next_col;
      c
    in
    let vmap = Array.make n (Split (0, 0)) in
    for v = 0 to n - 1 do
      vmap.(v) <-
        (match lb.(v) with
        | Some l -> Shifted (fresh (), l)
        | None -> Split (fresh (), fresh ()))
    done;
    let nstruct = !next_col in
    (* Translate an original-variable linear expression into (sorted std
       coeffs, constant).  Each struct column appears at most once because
       {!Linexpr} terms are unique per variable. *)
    let translate e =
      let const = ref (Linexpr.constant e) in
      let pairs = ref [] in
      List.iter
        (fun (v, q) ->
          match vmap.(v) with
          | Shifted (c, off) ->
            pairs := (c, q) :: !pairs;
            const := Rat.add !const (Rat.mul q off)
          | Split (cp, cn) -> pairs := (cn, Rat.neg q) :: (cp, q) :: !pairs)
        (Linexpr.terms e);
      let pairs =
        List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) !pairs
      in
      (pairs, !const)
    in
    (* --- collect rows: user constraints plus upper-bound rows --- *)
    let rows = ref [] in
    List.iter
      (fun (c : Problem.cstr) ->
        let coeffs, const = translate c.lhs in
        rows := (coeffs, c.rel, Rat.sub c.rhs const) :: !rows)
      (Problem.constraints problem);
    for v = 0 to n - 1 do
      match (ub.(v), vmap.(v)) with
      | Some u, Shifted (c, off) ->
        rows := ([ (c, q1) ], Problem.Le, Rat.sub u off) :: !rows
      | Some u, Split (cp, cn) ->
        rows := ([ (cp, q1); (cn, Rat.neg q1) ], Problem.Le, u) :: !rows
      | None, _ -> ()
    done;
    let flip (coeffs, rel, rhs) =
      if Rat.sign rhs >= 0 then { coeffs; rel; rhs }
      else
        {
          coeffs = List.map (fun (c, q) -> (c, Rat.neg q)) coeffs;
          rel =
            (match rel with Problem.Le -> Problem.Ge | Ge -> Le | Eq -> Eq);
          rhs = Rat.neg rhs;
        }
    in
    (* [!rows] is in reverse constraint order; rev_map restores it. *)
    let srows = Array.of_list (List.rev_map flip !rows) in
    let n_slack = ref 0 and n_art = ref 0 in
    Array.iter
      (fun r ->
        match r.rel with
        | Problem.Le -> incr n_slack
        | Problem.Ge ->
          incr n_slack;
          incr n_art
        | Problem.Eq -> incr n_art)
      srows;
    let dir, obj_expr = Problem.objective problem in
    let obj_expr =
      match dir with `Minimize -> obj_expr | `Maximize -> Linexpr.neg obj_expr
    in
    let ocoeffs, oconst = translate obj_expr in
    Some
      {
        vmap;
        srows;
        nstruct;
        n_slack = !n_slack;
        n_art = !n_art;
        ocoeffs;
        oconst;
        dir;
      }
  end

(* Map standard-form column values back to problem variables. *)
let extract_values sf colval =
  Array.map
    (function
      | Shifted (c, off) -> Rat.add off colval.(c)
      | Split (cp, cn) -> Rat.sub colval.(cp) colval.(cn))
    sf.vmap

(* ---------- sparse tableau core (production path) ---------- *)

type sp = { mutable idx : int array; mutable vals : Rat.t array; mutable n : int }

type srow = Sparse of sp | Dense of Rat.t array

type stab = {
  rows : srow array;
  obj : Rat.t array; (* reduced-cost row, dense, length ncols+1 *)
  basis : int array;
  ncols : int;
  art_start : int;
  dense_thresh : int; (* densify a row whose nnz exceeds this *)
  mutable pivots : int;
  mutable max_nnz : int;
}

let sp_get r c =
  let lo = ref 0 and hi = ref (r.n - 1) in
  let found = ref q0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let ic = r.idx.(mid) in
    if ic = c then begin
      found := r.vals.(mid);
      lo := !hi + 1
    end
    else if ic < c then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let row_get row c = match row with Sparse r -> sp_get r c | Dense a -> a.(c)

let row_nnz row =
  match row with
  | Sparse r -> r.n
  | Dense a ->
    let k = ref 0 in
    Array.iter (fun x -> if not (Rat.is_zero x) then incr k) a;
    !k

let row_iter_nz row f =
  match row with
  | Sparse r ->
    for k = 0 to r.n - 1 do
      f r.idx.(k) r.vals.(k)
    done
  | Dense a ->
    Array.iteri (fun j x -> if not (Rat.is_zero x) then f j x) a

let row_scale row q =
  match row with
  | Sparse r ->
    for k = 0 to r.n - 1 do
      r.vals.(k) <- Rat.mul r.vals.(k) q
    done
  | Dense a ->
    for j = 0 to Array.length a - 1 do
      if not (Rat.is_zero a.(j)) then a.(j) <- Rat.mul a.(j) q
    done

let sp_to_dense ncols r =
  let a = Array.make (ncols + 1) q0 in
  for k = 0 to r.n - 1 do
    a.(r.idx.(k)) <- r.vals.(k)
  done;
  a

(* dst := dst - f * src (f nonzero); returns the replacement row,
   densifying when the merged fill crosses the threshold. *)
let row_axpy t dst f src =
  match (dst, src) with
  | Dense d, _ ->
    row_iter_nz src (fun j x -> d.(j) <- Rat.sub d.(j) (Rat.mul f x));
    dst
  | Sparse d, Dense _ ->
    Obs.Metrics.inc m_densifications;
    let da = sp_to_dense t.ncols d in
    row_iter_nz src (fun j x -> da.(j) <- Rat.sub da.(j) (Rat.mul f x));
    Dense da
  | Sparse d, Sparse s ->
    let cap = d.n + s.n in
    let ri = Array.make (Stdlib.max cap 1) 0 in
    let rv = Array.make (Stdlib.max cap 1) q0 in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    let put c v =
      if not (Rat.is_zero v) then begin
        ri.(!k) <- c;
        rv.(!k) <- v;
        incr k
      end
    in
    while !i < d.n || !j < s.n do
      if !j >= s.n || (!i < d.n && d.idx.(!i) < s.idx.(!j)) then begin
        put d.idx.(!i) d.vals.(!i);
        incr i
      end
      else if !i >= d.n || s.idx.(!j) < d.idx.(!i) then begin
        put s.idx.(!j) (Rat.neg (Rat.mul f s.vals.(!j)));
        incr j
      end
      else begin
        put d.idx.(!i) (Rat.sub d.vals.(!i) (Rat.mul f s.vals.(!j)));
        incr i;
        incr j
      end
    done;
    let merged = { idx = ri; vals = rv; n = !k } in
    if !k > t.dense_thresh then begin
      Obs.Metrics.inc m_densifications;
      Dense (sp_to_dense t.ncols merged)
    end
    else Sparse merged

let tableau_nnz t =
  Array.fold_left (fun acc row -> acc + row_nnz row) 0 t.rows

(* Gaussian elimination step: make column [c] a unit column with a 1 in row
   [r], updating the objective row too. *)
let pivot t r c =
  let piv = row_get t.rows.(r) c in
  if Rat.is_zero piv then invalid_arg "Simplex.pivot: zero pivot";
  row_scale t.rows.(r) (Rat.inv piv);
  let prow = t.rows.(r) in
  Array.iteri
    (fun i row ->
      if i <> r then begin
        let f = row_get row c in
        if not (Rat.is_zero f) then t.rows.(i) <- row_axpy t row f prow
      end)
    t.rows;
  let fobj = t.obj.(c) in
  if not (Rat.is_zero fobj) then
    row_iter_nz prow (fun j x -> t.obj.(j) <- Rat.sub t.obj.(j) (Rat.mul fobj x));
  t.basis.(r) <- c;
  t.pivots <- t.pivots + 1;
  let nnz = tableau_nnz t in
  if nnz > t.max_nnz then t.max_nnz <- nnz

(* One simplex phase: minimise the objective encoded in [t.obj], entering
   candidates restricted to columns < [max_col].  Returns [`Optimal] or
   [`Unbounded].

   Pricing: Dantzig's rule (most negative reduced cost) for speed, then a
   permanent switch to Bland's rule (smallest index) after a degeneracy
   budget to guarantee termination.  A hard pivot cap bounds the cost of
   pathological instances; it raises {!Pivot_limit}, which the MILP
   driver reports as budget exhaustion.
   @raise Pivot_limit *)
let run_phase ?deadline ?budget t ~max_col =
  let m = Array.length t.rows in
  let bland_after = 10 * (m + t.ncols) in
  let max_pivots = 60 * (m + t.ncols) in
  let pivots = ref 0 in
  let bland_noted = ref false in
  let rec loop () =
    if !pivots > max_pivots then raise Pivot_limit;
    (match deadline with
    | Some d when !pivots land 15 = 0 && Resil.Clock.now () > d -> raise Pivot_limit
    | _ -> ());
    (* Work-unit exhaustion is checked every pivot (an int compare);
       the wall-clock guard shares the deadline throttle above. *)
    (match budget with
    | Some b ->
      if
        Resil.Budget.over_work b
        || (!pivots land 15 = 0 && Resil.Budget.over_wall b)
      then raise Pivot_limit
    | None -> ());
    let use_bland = !pivots > bland_after in
    if use_bland && not !bland_noted then begin
      bland_noted := true;
      Obs.Metrics.inc m_bland
    end;
    let entering = ref (-1) in
    if use_bland then (
      try
        for j = 0 to max_col - 1 do
          if Rat.sign t.obj.(j) < 0 then begin
            entering := j;
            raise Exit
          end
        done
      with Exit -> ())
    else begin
      let best = ref q0 in
      for j = 0 to max_col - 1 do
        if Rat.lt t.obj.(j) !best then begin
          best := t.obj.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let c = !entering in
      (* Ratio test with Bland tie-break on smallest basic variable. *)
      let best_row = ref (-1) in
      let best_ratio = ref q0 in
      for i = 0 to m - 1 do
        let a = row_get t.rows.(i) c in
        if Rat.sign a > 0 then begin
          let ratio = Rat.div (row_get t.rows.(i) t.ncols) a in
          if
            !best_row < 0
            || Rat.lt ratio !best_ratio
            || (Rat.equal ratio !best_ratio && t.basis.(i) < t.basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t !best_row c;
        incr pivots;
        (match budget with Some b -> Resil.Budget.charge b 1 | None -> ());
        loop ()
      end
    end
  in
  loop ()

let solve_std_sparse ?deadline ?budget sf =
  let m = Array.length sf.srows in
  let slack_start = sf.nstruct in
  let art_start = sf.nstruct + sf.n_slack in
  let ncols = sf.nstruct + sf.n_slack + sf.n_art in
  (* Densify rows filled past 1/4 of the column count (but never tiny
     rows, where dense storage costs nothing anyway). *)
  let dense_thresh = Stdlib.max 16 ((ncols + 1) / 4) in
  let t =
    {
      rows = Array.make m (Dense [||]);
      obj = Array.make (ncols + 1) q0;
      basis = Array.make m (-1);
      ncols;
      art_start;
      dense_thresh;
      pivots = 0;
      max_nnz = 0;
    }
  in
  (* --- fill the tableau --- *)
  let slack_next = ref slack_start and art_next = ref art_start in
  Array.iteri
    (fun i r ->
      let aux =
        match r.rel with
        | Problem.Le ->
          let s = !slack_next in
          incr slack_next;
          t.basis.(i) <- s;
          [ (s, q1) ]
        | Problem.Ge ->
          let s = !slack_next in
          incr slack_next;
          let a = !art_next in
          incr art_next;
          t.basis.(i) <- a;
          [ (s, Rat.neg q1); (a, q1) ]
        | Problem.Eq ->
          let a = !art_next in
          incr art_next;
          t.basis.(i) <- a;
          [ (a, q1) ]
      in
      (* struct coeffs < slack cols < art cols <= rhs col: concatenation
         stays sorted; drop explicit zeros from the constraint. *)
      let entries =
        List.filter (fun (_, q) -> not (Rat.is_zero q)) r.coeffs
        @ aux
        @ (if Rat.is_zero r.rhs then [] else [ (ncols, r.rhs) ])
      in
      let nnz = List.length entries in
      if nnz > t.dense_thresh then begin
        let a = Array.make (ncols + 1) q0 in
        List.iter (fun (c, q) -> a.(c) <- q) entries;
        t.rows.(i) <- Dense a
      end
      else
        t.rows.(i) <-
          Sparse
            {
              idx = Array.of_list (List.map fst entries);
              vals = Array.of_list (List.map snd entries);
              n = nnz;
            })
    sf.srows;
  t.max_nnz <- tableau_nnz t;
  let stats () =
    {
      Solution.pivots = t.pivots;
      tableau_rows = m;
      tableau_cols = ncols + 1;
      max_nnz = t.max_nnz;
      final_nnz = tableau_nnz t;
      dense_rows =
        Array.fold_left
          (fun acc row -> match row with Dense _ -> acc + 1 | Sparse _ -> acc)
          0 t.rows;
    }
  in
  let outcome =
    try
      (* --- phase 1 --- *)
      let has_artificials = sf.n_art > 0 in
      let phase1_result =
        if not has_artificials then `Optimal
        else begin
          (* Reduced costs for min (sum of artificials) with the initial
             basis: subtract each artificial-basic row from the cost row. *)
          Array.fill t.obj 0 (ncols + 1) q0;
          for j = art_start to ncols - 1 do
            t.obj.(j) <- q1
          done;
          for i = 0 to m - 1 do
            if t.basis.(i) >= art_start then
              row_iter_nz t.rows.(i) (fun j x ->
                  t.obj.(j) <- Rat.sub t.obj.(j) x)
          done;
          run_phase ?deadline ?budget t ~max_col:art_start
        end
      in
      match phase1_result with
      | `Unbounded ->
        (* Phase-1 objective is bounded below by zero; cannot happen. *)
        assert false
      | `Optimal ->
      let phase1_obj = Rat.neg t.obj.(ncols) in
      if has_artificials && Rat.sign phase1_obj > 0 then Solution.Infeasible
      else begin
        (* Drive lingering artificials out of the basis. *)
        for i = 0 to m - 1 do
          if t.basis.(i) >= art_start then begin
            let found = ref (-1) in
            (try
               row_iter_nz t.rows.(i) (fun j x ->
                   if j < art_start && not (Rat.is_zero x) then begin
                     found := j;
                     raise Exit
                   end)
             with Exit -> ());
            if !found >= 0 then pivot t i !found
            (* else: the row is all-zero over real columns (redundant);
               the artificial stays basic at value 0, which is harmless
               because artificials are barred from entering and the row's
               rhs is 0. *)
          end
        done;
        (* --- phase 2: re-price the user objective --- *)
        Array.fill t.obj 0 (ncols + 1) q0;
        List.iter (fun (c, q) -> t.obj.(c) <- Rat.add t.obj.(c) q) sf.ocoeffs;
        (* c̄ = c - c_B B⁻¹A: subtract c_b(i) × row_i for each basic var
           with a nonzero cost coefficient. *)
        for i = 0 to m - 1 do
          let cb = t.obj.(t.basis.(i)) in
          if not (Rat.is_zero cb) then
            row_iter_nz t.rows.(i) (fun j x ->
                t.obj.(j) <- Rat.sub t.obj.(j) (Rat.mul cb x))
        done;
        (match run_phase ?deadline ?budget t ~max_col:art_start with
        | `Unbounded -> Solution.Unbounded
        | `Optimal ->
          (* Extract: std column values, then map back. *)
          let colval = Array.make ncols q0 in
          for i = 0 to m - 1 do
            if t.basis.(i) < ncols then
              colval.(t.basis.(i)) <- row_get t.rows.(i) ncols
          done;
          let values = extract_values sf colval in
          let z_std = Rat.add (Rat.neg t.obj.(ncols)) sf.oconst in
          let objective =
            match sf.dir with
            | `Minimize -> z_std
            | `Maximize -> Rat.neg z_std
          in
          Solution.Optimal { values; objective; lp = stats () })
      end
    with Pivot_limit -> Solution.Budget_exhausted None
  in
  (outcome, stats ())

(* ---------- dense tableau core (reference path) ---------- *)

module Dense_core = struct
  type tableau = {
    rows : Rat.t array array; (* m rows, each of length ncols+1 (rhs last) *)
    obj : Rat.t array; (* reduced-cost row, length ncols+1; last = -z *)
    basis : int array; (* basic column of each row *)
    ncols : int;
    art_start : int;
    mutable pivots : int;
  }

  let pivot t r c =
    let prow = t.rows.(r) in
    let piv = prow.(c) in
    if Rat.is_zero piv then invalid_arg "Simplex.pivot: zero pivot";
    let inv = Rat.inv piv in
    for j = 0 to t.ncols do
      prow.(j) <- Rat.mul prow.(j) inv
    done;
    let eliminate row =
      let f = row.(c) in
      if not (Rat.is_zero f) then
        for j = 0 to t.ncols do
          row.(j) <- Rat.sub row.(j) (Rat.mul f prow.(j))
        done
    in
    Array.iteri (fun i row -> if i <> r then eliminate row) t.rows;
    eliminate t.obj;
    t.basis.(r) <- c;
    t.pivots <- t.pivots + 1

  let run_phase ?deadline ?budget t ~max_col =
    let m = Array.length t.rows in
    let bland_after = 10 * (m + t.ncols) in
    let max_pivots = 60 * (m + t.ncols) in
    let pivots = ref 0 in
    let bland_noted = ref false in
    let rec loop () =
      if !pivots > max_pivots then raise Pivot_limit;
      (match deadline with
      | Some d when !pivots land 15 = 0 && Resil.Clock.now () > d ->
        raise Pivot_limit
      | _ -> ());
      (match budget with
      | Some b ->
        if
          Resil.Budget.over_work b
          || (!pivots land 15 = 0 && Resil.Budget.over_wall b)
        then raise Pivot_limit
      | None -> ());
      let use_bland = !pivots > bland_after in
      if use_bland && not !bland_noted then begin
        bland_noted := true;
        Obs.Metrics.inc m_bland
      end;
      let entering = ref (-1) in
      if use_bland then (
        try
          for j = 0 to max_col - 1 do
            if Rat.sign t.obj.(j) < 0 then begin
              entering := j;
              raise Exit
            end
          done
        with Exit -> ())
      else begin
        let best = ref q0 in
        for j = 0 to max_col - 1 do
          if Rat.lt t.obj.(j) !best then begin
            best := t.obj.(j);
            entering := j
          end
        done
      end;
      if !entering < 0 then `Optimal
      else begin
        let c = !entering in
        let best_row = ref (-1) in
        let best_ratio = ref q0 in
        for i = 0 to m - 1 do
          let a = t.rows.(i).(c) in
          if Rat.sign a > 0 then begin
            let ratio = Rat.div t.rows.(i).(t.ncols) a in
            if
              !best_row < 0
              || Rat.lt ratio !best_ratio
              || (Rat.equal ratio !best_ratio
                 && t.basis.(i) < t.basis.(!best_row))
            then begin
              best_row := i;
              best_ratio := ratio
            end
          end
        done;
        if !best_row < 0 then `Unbounded
        else begin
          pivot t !best_row c;
          incr pivots;
          (match budget with Some b -> Resil.Budget.charge b 1 | None -> ());
          loop ()
        end
      end
    in
    loop ()

  let solve_std ?deadline ?budget sf =
    let m = Array.length sf.srows in
    let slack_start = sf.nstruct in
    let art_start = sf.nstruct + sf.n_slack in
    let ncols = sf.nstruct + sf.n_slack + sf.n_art in
    let t =
      {
        rows = Array.init m (fun _ -> Array.make (ncols + 1) q0);
        obj = Array.make (ncols + 1) q0;
        basis = Array.make m (-1);
        ncols;
        art_start;
        pivots = 0;
      }
    in
    let slack_next = ref slack_start and art_next = ref art_start in
    Array.iteri
      (fun i r ->
        let row = t.rows.(i) in
        List.iter (fun (c, q) -> row.(c) <- q) r.coeffs;
        row.(ncols) <- r.rhs;
        match r.rel with
        | Problem.Le ->
          let s = !slack_next in
          incr slack_next;
          row.(s) <- q1;
          t.basis.(i) <- s
        | Problem.Ge ->
          let s = !slack_next in
          incr slack_next;
          row.(s) <- Rat.neg q1;
          let a = !art_next in
          incr art_next;
          row.(a) <- q1;
          t.basis.(i) <- a
        | Problem.Eq ->
          let a = !art_next in
          incr art_next;
          row.(a) <- q1;
          t.basis.(i) <- a)
      sf.srows;
    let has_artificials = sf.n_art > 0 in
    let phase1_result =
      if not has_artificials then `Optimal
      else begin
        Array.fill t.obj 0 (ncols + 1) q0;
        for j = art_start to ncols - 1 do
          t.obj.(j) <- q1
        done;
        for i = 0 to m - 1 do
          if t.basis.(i) >= art_start then
            for j = 0 to ncols do
              t.obj.(j) <- Rat.sub t.obj.(j) t.rows.(i).(j)
            done
        done;
        run_phase ?deadline ?budget t ~max_col:art_start
      end
    in
    match phase1_result with
    | `Unbounded -> assert false
    | `Optimal ->
      let phase1_obj = Rat.neg t.obj.(ncols) in
      if has_artificials && Rat.sign phase1_obj > 0 then Solution.Infeasible
      else begin
        for i = 0 to m - 1 do
          if t.basis.(i) >= art_start then begin
            let found = ref (-1) in
            (try
               for j = 0 to art_start - 1 do
                 if not (Rat.is_zero t.rows.(i).(j)) then begin
                   found := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !found >= 0 then pivot t i !found
          end
        done;
        Array.fill t.obj 0 (ncols + 1) q0;
        List.iter (fun (c, q) -> t.obj.(c) <- Rat.add t.obj.(c) q) sf.ocoeffs;
        for i = 0 to m - 1 do
          let cb = t.obj.(t.basis.(i)) in
          if not (Rat.is_zero cb) then
            for j = 0 to ncols do
              t.obj.(j) <- Rat.sub t.obj.(j) (Rat.mul cb t.rows.(i).(j))
            done
        done;
        (match run_phase ?deadline ?budget t ~max_col:art_start with
        | `Unbounded -> Solution.Unbounded
        | `Optimal ->
          let colval = Array.make ncols q0 in
          for i = 0 to m - 1 do
            if t.basis.(i) < ncols then
              colval.(t.basis.(i)) <- t.rows.(i).(ncols)
          done;
          let values = extract_values sf colval in
          let z_std = Rat.add (Rat.neg t.obj.(ncols)) sf.oconst in
          let objective =
            match sf.dir with
            | `Minimize -> z_std
            | `Maximize -> Rat.neg z_std
          in
          let nnz =
            Array.fold_left
              (fun acc row ->
                Array.fold_left
                  (fun acc x -> if Rat.is_zero x then acc else acc + 1)
                  acc row)
              0 t.rows
          in
          Solution.Optimal
            {
              values;
              objective;
              lp =
                {
                  Solution.pivots = t.pivots;
                  tableau_rows = m;
                  tableau_cols = ncols + 1;
                  max_nnz = nnz;
                  final_nnz = nnz;
                  dense_rows = m;
                };
            })
      end
end

(* ---------- public API ---------- *)

let record_stats stats s =
  match stats with
  | None -> ()
  | Some r -> r := Solution.add_lp_stats !r s

let solve_with_bounds ?deadline ?budget ?stats problem ~lb ~ub =
  match build_std problem ~lb ~ub with
  | None -> Solution.Infeasible
  | Some sf ->
    let outcome, st = solve_std_sparse ?deadline ?budget sf in
    Solution.record_to_registry st;
    record_stats stats st;
    outcome

let solve problem =
  let n = Problem.num_vars problem in
  let lb = Array.init n (Problem.var_lb problem) in
  let ub = Array.init n (Problem.var_ub problem) in
  solve_with_bounds problem ~lb ~ub

let feasible_with_bounds ?deadline ?budget ?stats problem ~lb ~ub =
  match build_std problem ~lb ~ub with
  | None -> `Infeasible
  | Some sf ->
    (* Feasibility needs phase 1 only: with the objective stripped to a
       constant, phase 2 prices an all-zero cost row and performs zero
       pivots, so the solve cost is exactly the phase-1 search. *)
    let sf = { sf with ocoeffs = []; oconst = Rat.zero } in
    let outcome, st = solve_std_sparse ?deadline ?budget sf in
    Solution.record_to_registry st;
    record_stats stats st;
    (match outcome with
    | Solution.Infeasible -> `Infeasible
    | Solution.Optimal _ | Solution.Unbounded -> `Feasible
    | Solution.Budget_exhausted _ -> `Unknown)

let solve_with_bounds_reference ?deadline ?budget ?stats problem ~lb ~ub =
  match build_std problem ~lb ~ub with
  | None -> Solution.Infeasible
  | Some sf -> (
    let outcome =
      try Dense_core.solve_std ?deadline ?budget sf
      with Pivot_limit -> Solution.Budget_exhausted None
    in
    (match outcome with
    | Solution.Optimal sol ->
      Solution.record_to_registry sol.Solution.lp;
      record_stats stats sol.Solution.lp
    | _ -> ());
    outcome)

let solve_reference problem =
  let n = Problem.num_vars problem in
  let lb = Array.init n (Problem.var_lb problem) in
  let ub = Array.init n (Problem.var_ub problem) in
  solve_with_bounds_reference problem ~lb ~ub
