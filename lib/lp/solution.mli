(** Solver results shared by {!Simplex} and {!Branch_bound}. *)

open Numeric

type lp_stats = {
  pivots : int;        (** simplex pivots performed *)
  tableau_rows : int;
  tableau_cols : int;
  max_nnz : int;       (** peak tableau nonzero count observed *)
  final_nnz : int;     (** tableau nonzeros at termination *)
  dense_rows : int;    (** rows densified past the hybrid fill threshold *)
}

val empty_lp_stats : lp_stats

val add_lp_stats : lp_stats -> lp_stats -> lp_stats
(** Accumulate across successive LP solves: pivots add up, the size and
    fill fields keep the maximum (and [final_nnz] the latest). *)

val record_to_registry : lp_stats -> unit
(** Report one solve's work to the {!Obs.Metrics} registry
    ([lp.solves], [lp.pivots], [lp.densified_rows],
    [lp.tableau.rows], [lp.tableau.max_nnz]).  The registry is the
    single accumulation point for solver statistics; [lp_stats] values
    carried on solutions are per-solve views of the same counts.
    Called once per simplex solve by {!Simplex}. *)

val pp_lp_stats : Format.formatter -> lp_stats -> unit

type t = {
  values : Rat.t array;  (** indexed by {!Problem} variable id *)
  objective : Rat.t;     (** objective value under the problem's direction *)
  lp : lp_stats;         (** work performed by the solve that produced it *)
}

val value : t -> int -> Rat.t
val value_int : t -> int -> int
(** @raise Failure if the value is not an integer. *)

val pp : Format.formatter -> t -> unit

type outcome =
  | Optimal of t
  | Infeasible
  | Unbounded
  | Budget_exhausted of t option
      (** Branch-and-bound ran out of its node budget; carries the best
          incumbent found, if any.  Mirrors the paper's 20-second CPLEX
          allotment per candidate II. *)

val pp_outcome : Format.formatter -> outcome -> unit
