(** Branch-and-bound MILP solver on top of {!Simplex}.

    Depth-first search branching on the most fractional integer variable.
    Because the paper's scheduling ILP is a *feasibility* problem (the
    objective is constant), the solver stops at the first integral solution
    by default; with a non-trivial objective it keeps the best incumbent and
    prunes on the LP bound.

    The [node_budget] caps the number of LP relaxations solved, mirroring
    the paper's policy of allotting CPLEX 20 seconds per candidate II before
    relaxing the II by 0.5 %. *)

open Numeric

type stats = {
  nodes_explored : int;   (** LP relaxations solved *)
  nodes_pruned : int;     (** subtrees cut by bound or infeasibility *)
  max_depth : int;
  lp_pivots : int;        (** simplex pivots summed over every relaxation *)
  seeded : bool;          (** a warm-start incumbent was accepted *)
  cuts_added : int;       (** cutting planes added by the root cut loop *)
}

val solve :
  ?node_budget:int ->
  ?time_budget_s:float ->
  ?budget:Resil.Budget.t ->
  ?first_solution:bool ->
  ?incumbent:(int -> Rat.t) ->
  ?use_reference_lp:bool ->
  ?cuts:(Solution.t -> (Linexpr.t * Problem.relation * Linexpr.t) list) ->
  ?cut_rounds:int ->
  Problem.t ->
  Solution.outcome * stats
(** [solve p] solves the MILP.  [node_budget] defaults to [10_000] and
    [time_budget_s] (wall-clock seconds via [Resil.Clock], unlimited by
    default) directly mirrors
    the paper's 20-second CPLEX allotment per candidate II;
    [first_solution] defaults to [true] when the objective is constant and
    [false] otherwise.

    [budget], when given, is a {!Resil.Budget} token charged one work
    unit per branch-and-bound node and one per simplex pivot (the token
    is shared with every LP relaxation).  An exhausted token makes the
    solve return [Budget_exhausted] exactly like [node_budget]; with a
    work-unit-only token the cut-off point is deterministic.

    [incumbent], when given, is a candidate assignment (variable id to
    value).  If it satisfies the problem it seeds the search — branch
    subtrees that cannot beat it are pruned immediately, and a
    pure-feasibility query returns it without exploring at all (the
    warm-start path of the II search).  An invalid seed is ignored.

    [use_reference_lp] (default [false]) solves every relaxation with the
    dense reference simplex instead of the sparse production core — for
    benchmarking the sparse tableau against its baseline.

    [cuts], when given, is a separation oracle: called with the root
    relaxation's fractional optimum, it returns violated inequalities
    [(lhs, rel, rhs)] that every {e integral} solution satisfies (the
    caller's responsibility — e.g. cover cuts for knapsack rows).  They
    are added to the problem ({e mutating it}) and the root is re-solved
    before branching, for at most [cut_rounds] (default 8) rounds or
    until the oracle returns no cut.  Each re-solve counts against
    [node_budget] and the work-unit [budget] like any node, so budgeted
    cut loops stay deterministic.

    The returned solution's integer variables are guaranteed integral and
    the assignment is re-verified against the problem before being
    returned. *)
