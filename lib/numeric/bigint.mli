(** Arbitrary-precision signed integers.

    A from-scratch bignum implementation (zarith is not available in this
    environment).  Values are immutable.  The representation is
    sign-magnitude with the magnitude stored little-endian in base [2^30].

    This module backs the exact-rational arithmetic used by the simplex /
    branch-and-bound ILP solver ({!module:Lp}) and by the SDF steady-state
    rate solver, where intermediate values can overflow native integers. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int
(** [to_int x] converts back to a native integer.
    @raise Failure if [x] does not fit in a native [int]. *)

val to_int_opt : t -> int option

val num_bits : t -> int
(** Bit length of the magnitude; [num_bits zero = 0]. *)

val to_float : t -> float
(** Nearest-float conversion; saturates to [infinity] beyond the float
    range. *)

val of_string : string -> t
(** Parses an optionally-signed decimal literal.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated division
    (quotient rounded toward zero, [r] has the sign of [a]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv : t -> t -> t
(** Euclidean division: [a = ediv a b * b + emod a b] with
    [0 <= emod a b < |b|].  Coincides with floor division for positive
    divisors. *)

val emod : t -> t -> t
(** Euclidean remainder: always in [[0, |b|)]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd 0 0 = 0]. *)

val lcm : t -> t -> t

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
