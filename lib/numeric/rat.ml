(* Canonical rationals: den > 0, gcd(num, den) = 1.

   Two-tier representation (zarith-style): the [S] tier keeps the
   numerator and denominator as native ints whenever both magnitudes are
   below [2^30].  That bound guarantees every cross product computed by
   [add]/[mul]/[compare] fits in OCaml's 63-bit native ints, so the fast
   path needs no overflow checks at all — results that outgrow the bound
   after gcd reduction are promoted to the exact [L] tier over
   {!Bigint}, and big-tier results are demoted back whenever they fit.
   The LP tableau of the scheduling ILP lives almost entirely in the
   small tier; the bigint tier only absorbs the rare pivot blow-ups. *)

module B = Bigint

(* Small-tier bound: |n|, d < 2^30 means n1*d2 and d1*d2 are below 2^60
   and any sum of two such products is below 2^61 < max_int. *)
let small_lim = 1 lsl 30

(* Tier-transition telemetry.  Both transitions happen off the fast path
   (a promotion has already paid for bigint construction, a demotion for
   a bigint gcd), so a counter bump is invisible next to the work it
   tags. *)
let m_promotions = Obs.Metrics.counter "rat.tier.promotions"
let m_demotions = Obs.Metrics.counter "rat.tier.demotions"

type t =
  | S of int * int (* n, d: canonical, 0 < d < small_lim, |n| < small_lim *)
  | L of B.t * B.t (* canonical, den > 0; at least one side >= small_lim *)

(* Non-negative gcd on non-negative native ints. *)
let rec igcd a b = if b = 0 then a else igcd b (a mod b)

let zero = S (0, 1)
let one = S (1, 1)
let minus_one = S (-1, 1)

(* Canonicalize native parts.  Preconditions: d <> 0 and |n|, |d| small
   enough that [abs] cannot overflow (all call sites stay below 2^61). *)
let make_small n d =
  if d = 0 then raise Division_by_zero;
  if n = 0 then zero
  else begin
    let neg = (n < 0) <> (d < 0) in
    let n = abs n and d = abs d in
    let g = igcd n d in
    let n = n / g and d = d / g in
    if n < small_lim && d < small_lim then S ((if neg then -n else n), d)
    else begin
      Obs.Metrics.inc m_promotions;
      L (B.of_int (if neg then -n else n), B.of_int d)
    end
  end

(* Demote a canonical bigint pair when it fits the small tier. *)
let of_big_canon n d =
  match (B.to_int_opt n, B.to_int_opt d) with
  | Some n', Some d' when n' > -small_lim && n' < small_lim && d' < small_lim
    ->
    Obs.Metrics.inc m_demotions;
    S (n', d')
  | _ -> L (n, d)

let mk_canon n d =
  if B.is_zero d then raise Division_by_zero;
  if B.is_zero n then zero
  else begin
    let s = B.sign n * B.sign d in
    let n = B.abs n and d = B.abs d in
    let g = B.gcd n d in
    let n = B.div n g and d = B.div d g in
    of_big_canon (if s < 0 then B.neg n else n) d
  end

let make n d = mk_canon n d
let of_bigint n = of_big_canon n B.one

let of_int n =
  if n > -small_lim && n < small_lim then S (n, 1) else L (B.of_int n, B.one)

let of_ints n d =
  if
    d <> 0
    && n > -small_lim && n < small_lim
    && d > -small_lim && d < small_lim
  then make_small n d
  else mk_canon (B.of_int n) (B.of_int d)

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (B.of_string s)
  | Some i ->
    mk_canon
      (B.of_string (String.sub s 0 i))
      (B.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let num = function S (n, _) -> B.of_int n | L (n, _) -> n
let den = function S (_, d) -> B.of_int d | L (_, d) -> d
let sign = function S (n, _) -> compare n 0 | L (n, _) -> B.sign n
let is_zero = function S (n, _) -> n = 0 | L _ -> false
let is_integer = function S (_, d) -> d = 1 | L (_, d) -> B.equal d B.one
let is_small = function S _ -> true | L _ -> false

let to_bigint = function
  | S (n, d) -> B.of_int (n / d)
  | L (n, d) -> B.div n d

let floor = function
  | S (n, d) -> B.of_int (if n >= 0 then n / d else -(((-n) + d - 1) / d))
  | L (n, d) -> B.ediv n d

let ceil = function
  | S (n, d) -> B.of_int (if n >= 0 then (n + d - 1) / d else -((-n) / d))
  | L (n, d) -> B.neg (B.ediv (B.neg n) d)

let to_float = function
  | S (n, d) -> float_of_int n /. float_of_int d
  | L (n, d) ->
    (* Scale the quotient to ~59 significant bits, convert exactly, then
       restore the magnitude with ldexp (no lossy decimal round trips and
       no hard-coded power-of-two float literal).  59 > 53 mantissa bits,
       so the only rounding is the final ldexp/float conversion. *)
    let shift = B.num_bits d - B.num_bits n + 59 in
    let q =
      if shift >= 0 then B.div (B.mul n (B.pow (B.of_int 2) shift)) d
      else B.div n (B.mul d (B.pow (B.of_int 2) ~-shift))
    in
    ldexp (B.to_float q) ~-shift

let to_int = function
  | S (n, d) -> if d = 1 then n else failwith "Rat.to_int: not an integer"
  | L (n, d) ->
    if B.equal d B.one then B.to_int n
    else failwith "Rat.to_int: not an integer"

let neg = function S (n, d) -> S (-n, d) | L (n, d) -> L (B.neg n, d)
let abs = function S (n, d) -> S (abs n, d) | L (n, d) -> L (B.abs n, d)

let inv = function
  | S (n, d) ->
    if n = 0 then raise Division_by_zero
    else if n > 0 then S (d, n)
    else S (-d, -n)
  | L (n, d) -> (
    match B.sign n with
    | 0 -> raise Division_by_zero
    | s when s > 0 -> L (d, n)
    | _ -> L (B.neg d, B.neg n))

(* Promote to bigint parts. *)
let big_parts = function
  | S (n, d) -> (B.of_int n, B.of_int d)
  | L (n, d) -> (n, d)

let add a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) ->
    (* |ni| < 2^30, di < 2^30: products < 2^60, sum < 2^61. *)
    make_small ((n1 * d2) + (n2 * d1)) (d1 * d2)
  | _ ->
    let n1, d1 = big_parts a and n2, d2 = big_parts b in
    mk_canon (B.add (B.mul n1 d2) (B.mul n2 d1)) (B.mul d1 d2)

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) ->
    (* Reduce across the diagonal first so the products stay small and the
       final gcd call works on already-coprime parts. *)
    let g1 = igcd (Stdlib.abs n1) d2 and g2 = igcd (Stdlib.abs n2) d1 in
    let n1 = n1 / g1 and d2 = d2 / g1 in
    let n2 = n2 / g2 and d1 = d1 / g2 in
    let n = n1 * n2 and d = d1 * d2 in
    if n > -small_lim && n < small_lim && d < small_lim then S (n, d)
    else begin
      Obs.Metrics.inc m_promotions;
      L (B.of_int n, B.of_int d)
    end
  | _ ->
    let n1, d1 = big_parts a and n2, d2 = big_parts b in
    mk_canon (B.mul n1 n2) (B.mul d1 d2)

let div a b = mul a (inv b)

let compare a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) -> Stdlib.compare (n1 * d2) (n2 * d1)
  | _ ->
    let n1, d1 = big_parts a and n2, d2 = big_parts b in
    B.compare (B.mul n1 d2) (B.mul n2 d1)

let equal a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) -> n1 = n2 && d1 = d2 (* canonical forms *)
  | _ -> compare a b = 0

let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b

let to_string = function
  | S (n, 1) -> string_of_int n
  | S (n, d) -> string_of_int n ^ "/" ^ string_of_int d
  | L (n, d) ->
    if B.equal d B.one then B.to_string n
    else B.to_string n ^ "/" ^ B.to_string d

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = le
  let ( > ) = gt
  let ( >= ) = ge
end
