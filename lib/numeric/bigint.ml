(* Arbitrary-precision signed integers, sign-magnitude, base 2^30.

   The magnitude is a little-endian [int array] of "limbs", each in
   [0, 2^30).  Invariant: no leading zero limbs; zero is represented with
   [sign = 0] and an empty magnitude. *)

let base_bits = 30
let base = 1 lsl base_bits (* 2^30 *)
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

(* Strip leading (most-significant) zero limbs, producing a well-formed
   magnitude. *)
let normalize_mag mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then [||] else if hi = n - 1 then mag else Array.sub mag 0 (hi + 1)

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let is_zero x = x.sign = 0
let sign x = x.sign

let of_int n =
  if n = 0 then zero
  else begin
    let s = if n > 0 then 1 else -1 in
    (* min_int negation overflows; accumulate on the non-negative side by
       peeling limbs off with mod, using Int.abs on the remainder only. *)
    let rec limbs n acc =
      if n = 0 then List.rev acc
      else limbs (n / base) (abs (n mod base) :: acc)
    in
    { sign = s; mag = Array.of_list (limbs n []) }
  end

let to_int_opt x =
  if x.sign = 0 then Some 0
  else begin
    let n = Array.length x.mag in
    (* Native ints hold 62 value bits; three 30-bit limbs may overflow. *)
    let rec go i acc =
      if i < 0 then Some acc
      else
        let limb = x.mag.(i) in
        if acc > (max_int - limb) / base then None
        else go (i - 1) ((acc * base) + limb)
    in
    match go (n - 1) 0 with
    | None ->
      (* One representable corner case: min_int itself. *)
      if x.sign = -1 && n = 3 && x.mag.(2) = 4 && x.mag.(1) = 0 && x.mag.(0) = 0
      then Some min_int
      else None
    | Some v -> Some (if x.sign < 0 then -v else v)
  end

let to_int x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Bigint.to_int: overflow"

let num_bits x =
  let n = Array.length x.mag in
  if n = 0 then 0
  else begin
    let top = x.mag.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + bits top 0
  end

let to_float x =
  (* Horner over the limbs; magnitudes beyond the float range saturate to
     infinity, which is the right answer for a float conversion. *)
  let acc = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    acc := ldexp !acc base_bits +. float_of_int x.mag.(i)
  done;
  if x.sign < 0 then -. !acc else !acc

(* --- magnitude comparisons and arithmetic (unsigned) --- *)

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* Precondition: a >= b (as magnitudes). *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai*bj fits in 60 bits; + r + carry stays within 62-bit ints. *)
        let t = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land base_mask;
        carry := t lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    r
  end

(* Multiply magnitude by a small int (< base) and add a small int. *)
let mul_small_mag a m addend =
  let la = Array.length a in
  let r = Array.make (la + 2) 0 in
  let carry = ref addend in
  for i = 0 to la - 1 do
    let t = (a.(i) * m) + !carry in
    r.(i) <- t land base_mask;
    carry := t lsr base_bits
  done;
  let i = ref la in
  while !carry <> 0 do
    r.(!i) <- !carry land base_mask;
    carry := !carry lsr base_bits;
    incr i
  done;
  r

(* Divide magnitude by a small positive int; returns (quotient, remainder). *)
let divmod_small_mag a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* --- signed operations --- *)

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else begin
    let c = cmp_mag x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then make x.sign (sub_mag x.mag y.mag)
    else make y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)
let succ x = add x one
let pred x = sub x one

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mul_mag x.mag y.mag)

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0
let lt x y = compare x y < 0
let le x y = compare x y <= 0
let gt x y = compare x y > 0
let ge x y = compare x y >= 0
let min x y = if le x y then x else y
let max x y = if ge x y then x else y

(* Long division on magnitudes (Knuth-style, simplified: binary-search the
   quotient limb).  Precondition: b is non-empty.  Returns (q, r). *)
let divmod_mag a b =
  let lb = Array.length b in
  if lb = 1 then begin
    let q, r = divmod_small_mag a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    let c = cmp_mag a b in
    if c < 0 then ([||], a)
    else begin
      (* Schoolbook long division, one base-2^30 digit of quotient at a
         time, with the candidate digit found by binary search over
         [0, base).  Remainder is maintained as a bigint magnitude. *)
      let la = Array.length a in
      let q = Array.make (la - lb + 1) 0 in
      (* rem holds the running remainder, little-endian. *)
      let rem = ref [||] in
      (* shift_in r d = r * base + d *)
      let shift_in r d =
        let lr = Array.length r in
        if lr = 0 && d = 0 then [||]
        else begin
          let out = Array.make (lr + 1) 0 in
          out.(0) <- d;
          Array.blit r 0 out 1 lr;
          normalize_mag out
        end
      in
      for i = la - 1 downto 0 do
        rem := shift_in !rem a.(i);
        if cmp_mag !rem b >= 0 then begin
          (* binary search largest d with d*b <= rem *)
          let lo = ref 1 and hi = ref (base - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi + 1) / 2 in
            if cmp_mag (normalize_mag (mul_small_mag b mid 0)) !rem <= 0 then
              lo := mid
            else hi := mid - 1
          done;
          let d = !lo in
          rem := normalize_mag (sub_mag !rem (normalize_mag (mul_small_mag b d 0)));
          if i <= la - lb then q.(i) <- d
          else (* cannot happen: quotient digit beyond allocated width *)
            assert false
        end
      done;
      (normalize_mag q, !rem)
    end
  end

let divmod x y =
  if y.sign = 0 then raise Division_by_zero
  else if x.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag x.mag y.mag in
    let q = make (x.sign * y.sign) qm in
    let r = make x.sign rm in
    (q, r)
  end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

(* Euclidean division: the remainder is always in [0, |y|).  For y > 0
   this is floor division; for y < 0 it rounds the quotient up instead. *)
let ediv x y =
  let q, r = divmod x y in
  if is_zero r || sign r >= 0 then q
  else if sign y > 0 then pred q
  else succ q

let emod x y = sub x (mul (ediv x y) y)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent"
  else begin
    let rec go acc b n =
      if n = 0 then acc
      else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
      else go acc (mul b b) (n lsr 1)
    in
    go one x n
  end

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let lcm a b =
  if is_zero a || is_zero b then zero else abs (div (mul a b) (gcd a b))

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let mag = ref [||] in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    mag := normalize_mag (mul_small_mag !mag 10 (Char.code c - Char.code '0'))
  done;
  make (if neg_sign then -1 else 1) !mag

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go mag =
      if Array.length mag = 0 then ()
      else begin
        let q, r = divmod_small_mag mag 1_000_000_000 in
        let q = normalize_mag q in
        if Array.length q = 0 then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go x.mag;
    (if x.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = le
  let ( > ) = gt
  let ( >= ) = ge
end
