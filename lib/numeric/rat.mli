(** Exact rational arithmetic.

    Values are kept in canonical form: the denominator is strictly positive
    and [gcd num den = 1].  Used by the simplex LP solver (where floating
    point would break pivoting decisions) and by the SDF steady-state rate
    equations.

    The representation is two-tier (zarith-style): numerator and
    denominator live in native ints while both magnitudes stay below
    [2^30] — a bound under which every intermediate cross product provably
    fits a 63-bit int, so the hot path runs without allocation or overflow
    checks — and are promoted to {!Bigint} otherwise.  Big-tier results
    are demoted back to the fast tier whenever they fit, so a computation
    that momentarily blows up returns to native speed.  Both tiers produce
    bit-identical canonical values (see the cross-validation properties in
    [test/test_rat.ml]). *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints num den]. @raise Division_by_zero if [den = 0]. *)

val of_string : string -> t
(** Parses ["a"], ["a/b"], or ["-a/b"] decimal forms. *)

(** {1 Accessors} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val is_small : t -> bool
(** [true] when the value currently lives in the native-int fast tier
    (diagnostics and tier cross-validation tests). *)

val to_bigint : t -> Bigint.t
(** Truncates toward zero. *)

val floor : t -> Bigint.t
val ceil : t -> Bigint.t
val to_float : t -> float

val to_int : t -> int
(** @raise Failure if not an integer or out of native range. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on zero divisor. *)

val min : t -> t -> t
val max : t -> t -> t

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

(** {1 Printing} *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
