(* Chaos campaign for the serve daemon.

   Each seed drives the *production* request loop (Cache.Daemon over
   temp-file channels, exactly what [streamit_gpu serve] runs) through
   four phases:

   1. a chaotic session: a seed-derived request script (compiles,
      duplicates, a batch, a malformed line, ping, shutdown) served
      with one or two deterministic faults armed over the hardened
      sites — store.read, store.write, protocol.decode, serve.admit,
      serve.compile.  The contract: the daemon never crashes, answers
      every line with exactly one well-formed JSON response, and ends
      with a drained shutdown;
   2. disk corruption: with the daemon gone, entry files are torn,
      bit-flipped, or joined by garbage debris (a seed-derived mix);
   3. a recovery session on the same directory: the startup scrub must
      quarantine exactly the files we corrupted — never silently
      delete them — and the replayed script must succeed end to end;
   4. a byte-identity audit: every entry file that survived on disk
      must deserialize cleanly and byte-equal a cold compile of its
      key on a fresh memory-only service.  This is the "0
      byte-divergent cached artifacts" guarantee: no amount of fault
      injection may ever publish wrong bytes under a valid checksum.

   Separately from the per-seed phases, [overload_burst] checks the
   deterministic-shedding contract: a burst of B compiles against a
   guard with capacity C < B must shed exactly the last B - C requests
   of the batch, every time.

   Fault arming is process-global, so seeds run strictly serially —
   which also keeps every campaign deterministic in (base_seed,
   seeds).  Each seed's scratch directory holds the cache, the
   quarantine and an events.log trail; on failure it is kept for
   post-mortem (CI uploads it). *)

type failure = { seed : int; what : string }

type stats = {
  seeds : int;
  failed : int;
  responses : int;  (** well-formed response lines observed *)
  sheds : int;  (** overloaded responses observed (inject + burst) *)
  quarantined : int;  (** files the recovery scrubs moved aside *)
  byte_checks : int;  (** cold-vs-disk byte-identity comparisons *)
}

let m_seeds = Obs.Metrics.counter "serve_chaos.seeds"
let m_failures = Obs.Metrics.counter "serve_chaos.failures"
let m_byte_checks = Obs.Metrics.counter "serve_chaos.byte_checks"

let sites =
  [| "store.read"; "store.write"; "protocol.decode"; "serve.admit";
     "serve.compile" |]

(* --- seed-derived request scripts --- *)

let src_a =
  "filter A pop 0 push 1 { push(1.0); } filter B pop 1 push 1 { push(pop() * \
   2.0); } filter C pop 1 push 0 { let x = pop(); } pipeline P { add A; add \
   B; add C; }"

let src_b =
  "filter A pop 0 push 1 { push(1.0); } filter B pop 1 push 1 { push(pop() * \
   3.0); } filter C pop 1 push 0 { let x = pop(); } pipeline P { add A; add \
   B; add C; }"

let src_c =
  "filter S pop 0 push 2 { push(1.0); push(2.0); } filter T pop 2 push 1 { \
   push(pop() + pop()); } filter U pop 1 push 0 { let y = pop(); } pipeline \
   R { add S; add T; add U; }"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let compile_line ~id ?(coarsening = 1) src =
  Printf.sprintf
    "{\"id\":%d,\"op\":\"compile\",\"coarsening\":%d,\"src\":\"%s\"}" id
    coarsening (json_escape src)

(* The compile population each seed draws from; the audit cold-compiles
   the same pairs.  (src, coarsening) both feed the cache key. *)
let population = [ (src_a, 1); (src_b, 1); (src_c, 1); (src_a, 2) ]

let script_for rng =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let lines = ref [] and id = ref 0 in
  let add l = lines := l :: !lines in
  let compile () =
    incr id;
    let src, coarsening = pick population in
    add (compile_line ~id:!id ~coarsening src)
  in
  (* 3-5 single compiles, some repeated keys among them *)
  for _ = 1 to 3 + Random.State.int rng 3 do
    compile ()
  done;
  (* one malformed line somewhere in the middle *)
  add (pick [ "{\"id\":99,\"op\":"; "[1,2"; "{\"id\":99 \"op\":\"ping\"}" ]);
  (* a batch of 3 *)
  let batch =
    List.init 3 (fun _ ->
        incr id;
        let src, coarsening = pick population in
        Printf.sprintf
          "{\"id\":%d,\"op\":\"compile\",\"coarsening\":%d,\"src\":\"%s\"}"
          !id coarsening (json_escape src))
  in
  add ("[" ^ String.concat "," batch ^ "]");
  add "{\"id\":100,\"op\":\"ping\"}";
  add "{\"id\":101,\"op\":\"shutdown\"}";
  List.rev !lines

let specs_for rng =
  let n = 1 + Random.State.int rng 2 in
  List.init n (fun _ ->
      {
        Resil.Inject.site = sites.(Random.State.int rng (Array.length sites));
        at = 1 + Random.State.int rng 3;
      })

(* --- driving the daemon over real channels --- *)

let write_file p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_lines p =
  read_file p |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")

(* Run the production loop over a script; returns the response lines.
   Raises whatever the daemon loop leaks — which the contract says is
   nothing. *)
let run_session ~cache_dir ~script () =
  let service = Cache.Service.create ~dir:cache_dir ~capacity:8 () in
  let guard = Cache.Guard.create ~max_inflight:2 ~queue_cap:2 () in
  let daemon = Cache.Daemon.create ~guard ~max_line_bytes:65536 service in
  let script_p = Filename.concat cache_dir "script.ndjson" in
  let replies_p = Filename.concat cache_dir "replies.ndjson" in
  write_file script_p (String.concat "\n" script ^ "\n");
  let ic = open_in_bin script_p in
  let oc = open_out_bin replies_p in
  let shutdown =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        close_out_noerr oc)
      (fun () -> Cache.Daemon.serve_channel daemon ic oc)
  in
  (service, shutdown, read_lines replies_p)

(* Every response line must be one well-formed JSON object carrying a
   "status", or an array of such objects (batch).  Returns the number
   of objects and how many were overload sheds. *)
let well_formed line =
  let module J = Obs.Report in
  let check_obj = function
    | J.Obj fields -> (
      match List.assoc_opt "status" fields with
      | Some (J.Str ("ok" | "error")) ->
        let shed =
          match List.assoc_opt "error" fields with
          | Some (J.Str e) -> String.length e >= 10 && String.sub e 0 10 = "overloaded"
          | _ -> false
        in
        Ok (if shed then 1 else 0)
      | _ -> Error "response object has no status"
      )
    | _ -> Error "response is not an object"
  in
  match Cache.Protocol.parse line with
  | exception Cache.Protocol.Parse_error m ->
    Error ("unparseable response: " ^ m)
  | J.Arr docs ->
    List.fold_left
      (fun acc d ->
        match (acc, check_obj d) with
        | Error _, _ -> acc
        | _, Error m -> Error m
        | Ok (n, s), Ok shed -> Ok (n + 1, s + shed))
      (Ok (0, 0)) docs
  | doc -> Result.map (fun s -> (1, s)) (check_obj doc)

(* --- disk corruption --- *)

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".entry")
  |> List.sort compare

(* Corrupt the persisted tier; returns how many files the next scrub
   must quarantine. *)
let corrupt_disk rng dir =
  let corrupted = ref 0 in
  let entries = entry_files dir in
  (* tear or bit-flip up to two real entries *)
  List.iteri
    (fun i f ->
      if i < 2 && entries <> [] then begin
        let p = Filename.concat dir f in
        let s = read_file p in
        let s' =
          if Random.State.bool rng then
            (* torn write: keep a prefix *)
            String.sub s 0 (String.length s / 2)
          else begin
            (* single byte flip in the payload *)
            let b = Bytes.of_string s in
            let i = String.length s / 2 in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
            Bytes.to_string b
          end
        in
        write_file p s';
        incr corrupted
      end)
    entries;
  (* debris a crashed writer might leave *)
  write_file (Filename.concat dir "deadbeef.entry.tmp") "partial garbage";
  incr corrupted;
  (* garbage published under a plausible name *)
  write_file
    (Filename.concat dir (String.make 32 '0' ^ ".entry"))
    "streamit-cache-entry v3\nchecksum 0123\nnot a real payload\n";
  incr corrupted;
  !corrupted

(* --- byte-identity audit --- *)

let graph_of_src src =
  let stream = Frontend.Parser.parse_program src in
  match Streamit.Ast.validate stream with
  | Error m -> failwith ("audit: invalid stream: " ^ m)
  | Ok () -> Streamit.Flatten.flatten stream

(* For every population member whose entry survived on disk, a cold
   compile on a fresh memory-only service must produce byte-identical
   serialized artifacts. *)
let audit_disk dir =
  let cold = Cache.Service.create () in
  let checks = ref 0 in
  List.iter
    (fun (src, coarsening) ->
      let g = graph_of_src src in
      let o = { Cache.Key.default_options with Cache.Key.coarsening } in
      let key = Cache.Key.digest g o in
      let p = Filename.concat dir (key ^ ".entry") in
      if Sys.file_exists p then begin
        let disk_entry = Cache.Store.deserialize (read_file p) in
        match Cache.Service.get ~warm:false cold g o with
        | Error m -> failwith ("audit: cold compile failed: " ^ m)
        | Ok (cold_entry, _) ->
          incr checks;
          Obs.Metrics.inc m_byte_checks;
          if
            Cache.Store.serialize disk_entry
            <> Cache.Store.serialize cold_entry
          then
            failwith
              (Printf.sprintf "audit: cached artifact for key %s diverges \
                               from a cold compile" key)
      end)
    population;
  !checks

(* --- the deterministic-shedding burst --- *)

(* A burst of [burst] identical-cost compiles against capacity
   [max_inflight + queue_cap] must shed exactly the overflow, and
   always the *last* requests in arrival order.  Runs disarmed. *)
let overload_burst () =
  let service = Cache.Service.create () in
  let guard = Cache.Guard.create ~max_inflight:1 ~queue_cap:2 () in
  let daemon = Cache.Daemon.create ~guard service in
  let burst = 8 and cap = 3 in
  let reqs =
    List.init burst (fun i -> compile_line ~id:(i + 1) src_a)
  in
  let line = "[" ^ String.concat "," reqs ^ "]" in
  match Cache.Daemon.handle_line daemon line with
  | `Shutdown _ -> Error "burst: unexpected shutdown"
  | `Reply s -> (
    let module J = Obs.Report in
    match Cache.Protocol.parse s with
    | J.Arr docs when List.length docs = burst ->
      let ok = ref true and sheds = ref 0 in
      List.iteri
        (fun i d ->
          let shed =
            match J.member "error" d with
            | Some (J.Str e) ->
              String.length e >= 10 && String.sub e 0 10 = "overloaded"
            | _ -> false
          in
          if shed then incr sheds;
          (* admission is serial in arrival order: the first [cap]
             requests are admitted, everything after is shed *)
          if shed <> (i >= cap) then ok := false)
        docs;
      if not !ok then
        Error
          (Printf.sprintf
             "burst: shed pattern not deterministic-by-arrival (%d sheds)"
             !sheds)
      else if !sheds <> burst - cap then
        Error (Printf.sprintf "burst: expected %d sheds, got %d"
                 (burst - cap) !sheds)
      else Ok !sheds
    | _ -> Error "burst: reply is not an array of the right length")

(* --- per-seed driver --- *)

let rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> go (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then go dir

let scratch_for seed =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "serve_chaos_%d_%d" (Unix.getpid ()) seed)

type log = { oc : out_channel }

let log_line l fmt = Printf.ksprintf (fun s ->
    output_string l.oc s; output_char l.oc '\n'; flush l.oc) fmt

let run_seed seed =
  Obs.Metrics.inc m_seeds;
  let scratch = scratch_for seed in
  rm_rf scratch;
  Unix.mkdir scratch 0o755;
  let cache_dir = Filename.concat scratch "cache" in
  let l = { oc = open_out (Filename.concat scratch "events.log") } in
  let responses = ref 0 and sheds = ref 0 and quarantined = ref 0 in
  let byte_checks = ref 0 in
  let fail what =
    log_line l "FAIL %s" what;
    close_out_noerr l.oc;
    Resil.Inject.disarm ();
    Error { seed; what }
  in
  let result =
    try
      let rng = Random.State.make [| seed; 0x5eed |] in
      let script = script_for rng in
      let specs = specs_for rng in
      log_line l "seed %d: %d script lines, faults [%s]" seed
        (List.length script)
        (String.concat "; "
           (List.map
              (fun s -> Printf.sprintf "%s@%d" s.Resil.Inject.site s.at)
              specs));
      (* phase 1: chaotic session *)
      Resil.Inject.arm specs;
      let _service, shutdown, replies =
        run_session ~cache_dir ~script ()
      in
      Resil.Inject.disarm ();
      log_line l "phase1: %d replies, shutdown=%b" (List.length replies)
        shutdown;
      if not shutdown then failwith "daemon did not acknowledge shutdown";
      if List.length replies <> List.length script then
        failwith
          (Printf.sprintf "phase1: %d script lines but %d response lines"
             (List.length script) (List.length replies));
      List.iter
        (fun line ->
          match well_formed line with
          | Ok (n, s) ->
            responses := !responses + n;
            sheds := !sheds + s
          | Error m -> failwith ("phase1: " ^ m))
        replies;
      (* phase 2: corrupt the disk tier *)
      let corrupted = corrupt_disk rng cache_dir in
      log_line l "phase2: corrupted %d files" corrupted;
      (* phase 3: recovery session, disarmed *)
      let service2, shutdown2, replies2 =
        run_session ~cache_dir ~script ()
      in
      let scrub =
        Cache.Store.scrub_stats (Cache.Service.store service2)
      in
      log_line l "phase3: scrub scanned %d quarantined %d; %d replies"
        scrub.Cache.Store.scanned scrub.Cache.Store.quarantined
        (List.length replies2);
      if scrub.Cache.Store.quarantined <> corrupted then
        failwith
          (Printf.sprintf
             "phase3: corrupted %d files but scrub quarantined %d" corrupted
             scrub.Cache.Store.quarantined);
      quarantined := scrub.Cache.Store.quarantined;
      let qdir = Cache.Store.quarantine_dir cache_dir in
      let qn =
        if Sys.file_exists qdir then Array.length (Sys.readdir qdir) else 0
      in
      if qn < corrupted then
        failwith
          (Printf.sprintf
             "phase3: quarantine dir holds %d files, expected >= %d" qn
             corrupted);
      if not shutdown2 then failwith "phase3: recovery shutdown missing";
      List.iter
        (fun line ->
          match well_formed line with
          | Ok (n, s) ->
            responses := !responses + n;
            sheds := !sheds + s
          | Error m -> failwith ("phase3: " ^ m))
        replies2;
      (* phase 4: byte-identity audit of surviving entries *)
      byte_checks := audit_disk cache_dir;
      log_line l "phase4: %d byte-identity checks" !byte_checks;
      close_out_noerr l.oc;
      Ok ()
    with
    | Failure m -> fail m
    | e -> fail ("escaped exception: " ^ Printexc.to_string e)
  in
  (result, scratch, !responses, !sheds, !quarantined, !byte_checks)

let run ?(base_seed = 1) ?(seeds = 50) ?(keep = false) () =
  let failed = ref [] in
  let responses = ref 0 and sheds = ref 0 and quarantined = ref 0 in
  let byte_checks = ref 0 in
  (* the burst contract once per campaign: it is seed-independent *)
  (match overload_burst () with
  | Ok n -> sheds := !sheds + n
  | Error what ->
    Obs.Metrics.inc m_failures;
    failed := { seed = -1; what } :: !failed);
  for seed = base_seed to base_seed + seeds - 1 do
    let result, scratch, r, s, q, b = run_seed seed in
    responses := !responses + r;
    sheds := !sheds + s;
    quarantined := !quarantined + q;
    byte_checks := !byte_checks + b;
    match result with
    | Ok () -> if not keep then rm_rf scratch
    | Error f ->
      Obs.Metrics.inc m_failures;
      (* keep the scratch (cache, quarantine, events.log) for
         post-mortem; CI uploads it *)
      Printf.eprintf "serve_chaos: seed %d failed, scratch kept at %s\n%!"
        f.seed scratch;
      failed := f :: !failed
  done;
  ( {
      seeds;
      failed = List.length !failed;
      responses = !responses;
      sheds = !sheds;
      quarantined = !quarantined;
      byte_checks = !byte_checks;
    },
    List.rev !failed )

let pp_failure ppf f =
  if f.seed < 0 then Format.fprintf ppf "[burst] %s" f.what
  else Format.fprintf ppf "[seed %d] %s" f.seed f.what

let pp_stats ppf s =
  Format.fprintf ppf
    "serve_chaos: %d seeds, %d failed, %d responses, %d sheds, %d \
     quarantined, %d byte-identity checks"
    s.seeds s.failed s.responses s.sheds s.quarantined s.byte_checks
