(* Structural invariants of a compiled program.

   These are the properties the paper's construction promises for {e every}
   compilation, independent of any particular input tape:

   - the schedule satisfies the ILP constraint system ((1), (2), (4),
     (8a), (8b)) — via the strengthened {!Swp_core.Swp_schedule.validate};
   - the macro configuration is consistent with the SDF rate solution;
   - the buffer-layout maps (eqs. (9)-(11)) are bijections on every edge:
     the push map on each producer instance region, the pop map on each
     macro steady state, and the host shuffle composed with the layout;
   - the timing model produces sane numbers (II at least the per-SM load,
     finite amortised cycles);
   - at the II the heuristic achieved, the exact ILP agrees the problem is
     feasible (cross-validation, gated on problem size). *)

open Streamit

let ( let* ) = Result.bind

let check_bijection ~what size f =
  let seen = Array.make size (-1) in
  let err = ref None in
  (try
     for s = 0 to size - 1 do
       let a = f s in
       if a < 0 || a >= size then begin
         err :=
           Some
             (Printf.sprintf "%s: index %d maps to %d, outside [0,%d)" what s a
                size);
         raise Exit
       end;
       if seen.(a) >= 0 then begin
         err :=
           Some
             (Printf.sprintf "%s: indices %d and %d collide at address %d" what
                seen.(a) s a);
         raise Exit
       end;
       seen.(a) <- s
     done
   with Exit -> ());
  match !err with None -> Ok () | Some m -> Error m

let schedule (c : Swp_core.Compile.compiled) =
  let g = c.Swp_core.Compile.graph in
  let cfg = c.Swp_core.Compile.config in
  let rates = c.Swp_core.Compile.rates in
  let* () = Swp_core.Swp_schedule.validate g c.Swp_core.Compile.schedule in
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  Array.iteri
    (fun v t ->
      if t <= 0 then fail (Printf.sprintf "node %s: %d threads" (Graph.name g v) t)
      else if t mod Swp_core.Buffer_layout.cluster <> 0 then
        fail
          (Printf.sprintf
             "node %s: %d threads is not a multiple of the %d-thread cluster \
              the layout maps assume"
             (Graph.name g v) t Swp_core.Buffer_layout.cluster);
      if cfg.Swp_core.Select.delay.(v) <= 0 then
        fail (Printf.sprintf "node %s: non-positive delay" (Graph.name g v));
      if cfg.Swp_core.Select.reps.(v) <= 0 then
        fail (Printf.sprintf "node %s: non-positive reps" (Graph.name g v));
      (* macro identity: threads.(v) * reps.(v) original firings per macro
         steady state must equal reps_sdf.(v) * scale *)
      if
        t * cfg.Swp_core.Select.reps.(v)
        <> rates.Sdf.reps.(v) * cfg.Swp_core.Select.scale
      then
        fail
          (Printf.sprintf
             "node %s: %d threads x %d macro reps <> %d SDF reps x scale %d"
             (Graph.name g v) t
             cfg.Swp_core.Select.reps.(v)
             rates.Sdf.reps.(v) cfg.Swp_core.Select.scale))
    cfg.Swp_core.Select.threads;
  match !err with None -> Ok () | Some m -> Error m

let layout (c : Swp_core.Compile.compiled) =
  let g = c.Swp_core.Compile.graph in
  let cfg = c.Swp_core.Compile.config in
  let edge_name (e : Graph.edge) =
    Printf.sprintf "%s -> %s" (Graph.name g e.Graph.src) (Graph.name g e.Graph.dst)
  in
  List.fold_left
    (fun acc (e : Graph.edge) ->
      let* () = acc in
      let push_rate = Graph.production g e in
      let pop_rate = Graph.consumption g e in
      let prod_threads = cfg.Swp_core.Select.threads.(e.Graph.src) in
      let cons_threads = cfg.Swp_core.Select.threads.(e.Graph.dst) in
      let region = push_rate * prod_threads in
      let steady = region * cfg.Swp_core.Select.reps.(e.Graph.src) in
      let consumed =
        pop_rate * cons_threads * cfg.Swp_core.Select.reps.(e.Graph.dst)
      in
      (* macro rate balance: producers and consumers move the same number
         of tokens across the edge each macro steady state *)
      let* () =
        if steady <> consumed then
          Error
            (Printf.sprintf
               "edge %s: %d tokens produced but %d consumed per steady state"
               (edge_name e) steady consumed)
        else Ok ()
      in
      (* eq. (10): push map is a bijection on each instance region *)
      let* () =
        check_bijection
          ~what:(Printf.sprintf "edge %s push map" (edge_name e))
          region
          (Swp_core.Buffer_layout.addr_of_token ~push_rate ~threads:prod_threads)
      in
      (* eq. (11): pop map addressed with the consumer's rate is a
         bijection on the whole macro steady state *)
      let* () =
        check_bijection
          ~what:(Printf.sprintf "edge %s pop map" (edge_name e))
          steady
          (fun s ->
            Swp_core.Buffer_layout.pop_index ~push_rate ~pop_rate
              ~n:(s mod pop_rate) ~tid:(s / pop_rate))
      in
      (* eq. (9) composed with eq. (10): the host shuffle of a region is
         still a permutation *)
      let spr = region / Swp_core.Buffer_layout.cluster in
      if spr > 0 && region mod Swp_core.Buffer_layout.cluster = 0 then
        check_bijection
          ~what:(Printf.sprintf "edge %s shuffle∘push" (edge_name e))
          region
          (fun s ->
            Swp_core.Buffer_layout.shuffle ~steady_pop_rate:spr
              (Swp_core.Buffer_layout.addr_of_token ~push_rate
                 ~threads:prod_threads s))
      else Ok ())
    (Ok ()) g.Graph.edges

(* The measured per-SM busy time may legitimately exceed the scheduled II
   (profile-blind scatter costs — the imbalance the paper reports for DCT
   and MatrixMult), so the checks here are the executor's own structural
   promises, not a re-derivation of the schedule. *)
let timing (c : Swp_core.Compile.compiled) =
  let t = Swp_core.Executor.time_swp c in
  let sched = c.Swp_core.Compile.schedule in
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  if Array.length t.Swp_core.Executor.sm_cycles
     <> sched.Swp_core.Swp_schedule.num_sms
  then fail "per-SM busy times not reported for every SM";
  Array.iteri
    (fun p busy ->
      if busy < 0 then fail (Printf.sprintf "SM %d: negative busy time" p))
    t.Swp_core.Executor.sm_cycles;
  let busiest = Array.fold_left max 0 t.Swp_core.Executor.sm_cycles in
  if t.Swp_core.Executor.ii_cycles < busiest then
    fail
      (Printf.sprintf "achieved II %d below the busiest SM's %d cycles"
         t.Swp_core.Executor.ii_cycles busiest);
  if t.Swp_core.Executor.ii_cycles < t.Swp_core.Executor.bus_cycles then
    fail
      (Printf.sprintf "achieved II %d below the bus-bound lower limit %d"
         t.Swp_core.Executor.ii_cycles t.Swp_core.Executor.bus_cycles);
  if t.Swp_core.Executor.bus_cycles < 0 then fail "negative bus cycles";
  if t.Swp_core.Executor.kernel_cycles < t.Swp_core.Executor.ii_cycles then
    fail "one kernel launch cheaper than a single II";
  (match classify_float t.Swp_core.Executor.cycles_per_steady with
  | FP_normal when t.Swp_core.Executor.cycles_per_steady > 0.0 -> ()
  | _ -> fail "cycles per steady state not a positive finite number");
  match !err with None -> Ok () | Some m -> Error m

(* Cross-validation: when the heuristic found the schedule, the exact ILP
   must agree that its II is feasible.  (The converse is not an invariant:
   the heuristic is incomplete and may miss ILP-feasible IIs.)  Gated on
   assignment-variable count so fuzzing stays fast. *)
let cross_solver ?(max_assign_vars = 96) ?(node_budget = 2000)
    (c : Swp_core.Compile.compiled) =
  let stats = c.Swp_core.Compile.search_stats in
  if stats.Swp_core.Ii_search.used_exact then Ok ()
  else begin
    let g = c.Swp_core.Compile.graph in
    let cfg = c.Swp_core.Compile.config in
    let sched = c.Swp_core.Compile.schedule in
    let num_sms = sched.Swp_core.Swp_schedule.num_sms in
    if Swp_core.Instances.num_instances cfg * num_sms > max_assign_vars then
      Ok ()
    else
      match
        Swp_core.Ilp.solve ~node_budget ~warm_start:sched g cfg ~num_sms
          ~ii:sched.Swp_core.Swp_schedule.ii
      with
      | `Schedule _ | `Budget_exhausted -> Ok ()
      | `Infeasible ->
        Error
          (Printf.sprintf
             "heuristic schedule has II %d but the exact ILP calls that II \
              infeasible — solver disagreement"
             sched.Swp_core.Swp_schedule.ii)
  end

let all (c : Swp_core.Compile.compiled) =
  let* () = schedule c in
  let* () = layout c in
  let* () = timing c in
  cross_solver c
