(* Differential fuzzing driver.

   For each seed: generate a stream ({!Gen}), compile it through the full
   pipeline, check the structural invariants ({!Invariants}), run the
   four-way differential oracle ({!Oracle}), and emit + structurally lint
   every codegen backend ({!Kir.Backend}, {!Kir.Lint}).  Failures are
   shrunk ({!Shrink}) under the same property before being reported.

   Programs the pipeline legitimately declines to compile (infeasible
   configuration, II search giving up) are counted as skips, as are
   programs whose steady state is too large to simulate quickly — a fuzz
   run's job is coverage per second, not exhaustiveness per seed. *)

open Streamit

let m_seeds = Obs.Metrics.counter "fuzz.seeds"
let m_passed = Obs.Metrics.counter "fuzz.passed"
let m_skipped = Obs.Metrics.counter "fuzz.skipped"
let m_cancelled = Obs.Metrics.counter "fuzz.cancelled"
let m_crashes = Obs.Metrics.counter "fuzz.crashes"
let m_mismatches = Obs.Metrics.counter "fuzz.mismatches"
let m_shrink_steps = Obs.Metrics.counter "fuzz.shrink_steps"

type failure = {
  seed : int;
  message : string;
  counterexample : Ast.stream;
  shrink_steps : int;
}

type outcome = Pass | Skip of string | Fail of string

type stats = {
  seeds : int;
  passed : int;
  skipped : int;
  cancelled : int;  (* seeds never started: deadline hit first *)
  failed : int;
  shrink_steps : int;
}

(* Cap on simulated work per seed: interpreter firings plus device
   thread-firings, for all oracle iterations. *)
let default_max_firings = 400_000

let work_estimate (c : Swp_core.Compile.compiled) ~iters =
  let cfg = c.Swp_core.Compile.config in
  let rates = c.Swp_core.Compile.rates in
  let interp =
    cfg.Swp_core.Select.scale * Array.fold_left ( + ) 0 rates.Sdf.reps
  in
  let device = ref 0 in
  Array.iteri
    (fun v r -> device := !device + (r * cfg.Swp_core.Select.threads.(v)))
    cfg.Swp_core.Select.reps;
  iters * (interp + (2 * !device))

(* Check one stream end to end.  [Error] means a genuine bug somewhere in
   the pipeline: invariant violation, oracle disagreement, or a crash. *)
let check_stream ?(iters = 2) ?num_sms ?solver ?max_firings ~input s =
  match
    (try Ok (Flatten.flatten s) with Failure m -> Error ("flatten: " ^ m))
  with
  | Error m -> Error m
  | Ok g when
      (match Sdf.steady_state g with
      | Ok r -> Array.fold_left ( + ) 0 r.Sdf.reps > Gen.max_steady_firings
      | Error _ -> false) ->
    (* Scheduling cost grows with the instance count, so an oversized
       steady state must be rejected before compile, not after. *)
    Ok (Skip "steady state too large to schedule within the fuzz budget")
  | Ok g -> (
    match Swp_core.Compile.compile ?num_sms ?solver g with
    | Error m -> Ok (Skip ("compile: " ^ m))
    | Ok c ->
      let budget = Option.value max_firings ~default:default_max_firings in
      if work_estimate c ~iters > budget then
        Ok (Skip "steady state too large for the simulation budget")
      else begin
        match
          (try Invariants.all c with
          | Failure m -> Error ("crash: " ^ m)
          | Invalid_argument m -> Error ("crash: " ^ m)
          | Assert_failure _ -> Error "crash: assertion failure")
        with
        | Error m -> Error ("invariant: " ^ m)
        | Ok () -> (
          match
            (try Oracle.differential c ~input ~iters with
            | Failure m -> Error ("crash: " ^ m)
            | Invalid_argument m -> Error ("crash: " ^ m)
            | Assert_failure _ -> Error "crash: assertion failure"
            | Interp.Firing_violation m -> Error ("interp: " ^ m))
          with
          | Error m -> Error m
          | Ok () -> (
            (* all four backends must print structurally sound kernels
               for the program the oracle just validated *)
            match
              (try
                 let p = Kir.Lower.lower c in
                 let rec lint = function
                   | [] -> Ok ()
                   | t :: rest -> (
                     match Kir.Backend.emit_checked t p with
                     | Ok _ -> lint rest
                     | Error e -> Error ("lint: " ^ e))
                 in
                 lint Kir.Ir.all_targets
               with
              | Kir.Ir.Unsupported m -> Error ("lint: unsupported: " ^ m)
              | Failure m -> Error ("crash: " ^ m)
              | Invalid_argument m -> Error ("crash: " ^ m)
              | Assert_failure _ -> Error "crash: assertion failure")
            with
            | Error m -> Error m
            | Ok () -> Ok Pass))
      end)

let check_outcome ?iters ?num_sms ?solver ?max_firings ~input s =
  match check_stream ?iters ?num_sms ?solver ?max_firings ~input s with
  | Ok o -> o
  | Error m -> Fail m

let run_seed ?(cfg = Gen.default) ?iters ?num_sms ?solver ?max_firings seed =
  Obs.Metrics.inc m_seeds;
  let input = Gen.input ~seed in
  let s = Gen.stream ~cfg ~seed () in
  match check_outcome ?iters ?num_sms ?solver ?max_firings ~input s with
  | Pass ->
    Obs.Metrics.inc m_passed;
    Ok `Pass
  | Skip reason ->
    Obs.Metrics.inc m_skipped;
    Ok (`Skip reason)
  | Fail _ ->
    Obs.Metrics.inc m_mismatches;
    (* shrink under "still fails for any reason" — the minimal program may
       fail with a different (more primitive) message than the original *)
    let still_fails cand =
      match check_outcome ?iters ?num_sms ?solver ?max_firings ~input cand with
      | Fail _ -> true
      | Pass | Skip _ -> false
    in
    let small, steps = Shrink.shrink ~still_fails s in
    Obs.Metrics.add m_shrink_steps steps;
    let message =
      match check_outcome ?iters ?num_sms ?solver ?max_firings ~input small with
      | Fail m -> m
      | Pass | Skip _ -> "failure no longer reproduces on shrunk stream"
    in
    Error { seed; message; counterexample = small; shrink_steps = steps }

let run ?(cfg = Gen.default) ?iters ?num_sms ?solver ?max_firings
    ?(base_seed = 1) ?(jobs = 1) ?deadline ~seeds () =
  (* Every seed is an independent generate-compile-check unit, so the
     batch shards across a domain pool: [Par.Pool.map_result] joins in
     submission (= seed) order, and each seed's generation, shrinking
     and oracles are deterministic in the seed alone, so a sharded run
     visits exactly the serial run's seed set and reports exactly its
     failures, in the same order.

     Containment: a crash while checking one seed (a worker fault) must
     not take the whole campaign down — it is recorded as that seed's
     failure, with the generated program as the counterexample, and the
     remaining seeds still run.  [deadline] (wall-clock seconds) opts
     into cooperative cancellation: seeds not yet started when it
     passes are counted as [cancelled], never silently dropped. *)
  let seed_list = List.init seeds (fun i -> base_seed + i) in
  let check seed = run_seed ~cfg ?iters ?num_sms ?solver ?max_firings seed in
  let should_stop =
    Option.map
      (fun d ->
        let t_end = Resil.Clock.now () +. d in
        fun () -> Resil.Clock.now () > t_end)
      deadline
  in
  let contain index seed =
    match should_stop with
    | Some stop when stop () ->
      Error
        {
          Par.Pool.index;
          exn = Par.Pool.Cancelled;
          backtrace = Printexc.get_callstack 0;
        }
    | _ -> (
      try Ok (check seed)
      with e ->
        Error
          { Par.Pool.index; exn = e; backtrace = Printexc.get_raw_backtrace () })
  in
  let results =
    if jobs <= 1 || Par.Pool.in_task () then List.mapi contain seed_list
    else
      Par.Pool.with_pool ~domains:jobs (fun p ->
          Par.Pool.map_result p ?should_stop check seed_list)
  in
  let failures = ref [] in
  let passed = ref 0
  and skipped = ref 0
  and cancelled = ref 0
  and shrink_steps = ref 0 in
  List.iter2
    (fun seed outcome ->
      match outcome with
      | Ok (Ok `Pass) -> incr passed
      | Ok (Ok (`Skip _)) -> incr skipped
      | Ok (Error (f : failure)) ->
        shrink_steps := !shrink_steps + f.shrink_steps;
        failures := f :: !failures
      | Error { Par.Pool.exn = Par.Pool.Cancelled; _ } ->
        Obs.Metrics.inc m_cancelled;
        incr cancelled
      | Error { Par.Pool.exn; _ } ->
        (* contained worker crash: report it against its seed with the
           un-shrunk generated program as the counterexample *)
        Obs.Metrics.inc m_crashes;
        failures :=
          {
            seed;
            message = "crash: " ^ Printexc.to_string exn;
            counterexample = Gen.stream ~cfg ~seed ();
            shrink_steps = 0;
          }
          :: !failures)
    seed_list results;
  let failures = List.rev !failures in
  ( {
      seeds;
      passed = !passed;
      skipped = !skipped;
      cancelled = !cancelled;
      failed = List.length failures;
      shrink_steps = !shrink_steps;
    },
    failures )

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v>seed %d (shrunk in %d steps):@,  %s@,@,%a@]" f.seed f.shrink_steps
    f.message Ast.pp f.counterexample

let pp_stats fmt s =
  Format.fprintf fmt
    "%d seeds: %d passed, %d skipped, %d failed%s%s" s.seeds s.passed s.skipped
    s.failed
    (if s.failed > 0 then Printf.sprintf " (%d shrink steps)" s.shrink_steps
     else "")
    (if s.cancelled > 0 then
       Printf.sprintf ", %d cancelled by deadline" s.cancelled
     else "")
