(* Greedy counterexample shrinker.

   Given a failing stream and the property "still fails", repeatedly tries
   one-step structural reductions — drop a pipeline stage, collapse a
   split-join to one branch, drop a branch, unwrap a feedback loop, replace
   a filter by a trivial one, halve a filter's rates — and commits the
   first reduction that keeps the failure alive, until no reduction does.
   Candidates that are not admissible programs are skipped (the property
   never sees them), so shrinking cannot trade a real failure for a
   front-end rejection. *)

open Streamit

let simple_filter ~name ~pop ~push =
  let p = pop and u = push in
  let open Kernel.Build in
  let body =
    [ arr "w" p ]
    @ List.init p (fun j -> seti "w" (i j) Kernel.Pop)
    @ List.init u (fun j -> Kernel.Push (geti "w" (i (j mod p))))
  in
  Kernel.make_filter ~name ~pop:p ~push:u body

let is_trivial (f : Kernel.filter) =
  f.Kernel.pop_rate = 1 && f.Kernel.push_rate = 1 && f.Kernel.peek_rate = 1
  && f.Kernel.state = [] && f.Kernel.tables = []

let drop_nth i l = List.filteri (fun j _ -> j <> i) l
let set_nth i x l = List.mapi (fun j y -> if j = i then x else y) l

(* all single-step reductions of [s], roughly most-aggressive first *)
let rec reductions s =
  match s with
  | Ast.Filter f ->
    let smaller =
      let p = max 1 (f.Kernel.pop_rate / 2) in
      let u = max 1 (f.Kernel.push_rate / 2) in
      if
        (p, u) <> (f.Kernel.pop_rate, f.Kernel.push_rate)
        || Kernel.is_stateful f || Kernel.is_peeking f
      then [ Ast.Filter (simple_filter ~name:(f.Kernel.name ^ "s") ~pop:p ~push:u) ]
      else []
    in
    if is_trivial f then []
    else smaller @ [ Ast.Filter (Kernel.identity ()) ]
  | Ast.Pipeline (n, ss) ->
    let drops =
      if List.length ss > 1 then
        List.mapi (fun i _ -> Ast.Pipeline (n, drop_nth i ss)) ss
      else []
    in
    let unwrap = match ss with [ s0 ] -> [ s0 ] | _ -> [] in
    let recurse =
      List.concat
        (List.mapi
           (fun i si ->
             List.map (fun si' -> Ast.Pipeline (n, set_nth i si' ss)) (reductions si))
           ss)
    in
    drops @ unwrap @ recurse
  | Ast.Split_join (n, sp, bs, jw) ->
    let singletons = bs in
    let drops =
      if List.length bs > 2 then
        List.mapi
          (fun i _ ->
            let sp' =
              match sp with
              | Ast.Duplicate -> Ast.Duplicate
              | Ast.Round_robin ws -> Ast.Round_robin (drop_nth i ws)
            in
            Ast.Split_join (n, sp', drop_nth i bs, drop_nth i jw))
          bs
      else []
    in
    let recurse =
      List.concat
        (List.mapi
           (fun i bi ->
             List.map
               (fun bi' -> Ast.Split_join (n, sp, set_nth i bi' bs, jw))
               (reductions bi))
           bs)
    in
    singletons @ drops @ recurse
  | Ast.Feedback_loop ({ body; _ } as fb) ->
    body
    :: List.map (fun b -> Ast.Feedback_loop { fb with body = b }) (reductions body)

(* [shrink ~still_fails s] returns the reduced stream and the number of
   successful reduction steps.  [still_fails] is only called on admissible
   candidates; a step budget bounds pathological cases. *)
let shrink ?(max_steps = 64) ~still_fails s =
  let rec go s steps =
    if steps >= max_steps then (s, steps)
    else
      match
        List.find_opt
          (fun cand -> Gen.admissible cand && still_fails cand)
          (reductions s)
      with
      | Some smaller -> go smaller (steps + 1)
      | None -> (s, steps)
  in
  go s 0
