(* Seeded random stream-program generator.

   Produces syntactically valid, rate-consistent, deadlock-free streams by
   construction: filters declare the rates their bodies realise, split-join
   joiner weights are derived from the branches' rational token gains so the
   SDF balance equations always have a solution, and feedback loops use
   symmetric weights with a gain-1 body plus enough delay tokens to break
   the cycle.  Every candidate is double-checked through the real pipeline
   (flatten, SDF solve, demand-driven schedule) before being returned, so
   callers can rely on [stream] never producing an inadmissible program. *)

open Streamit

type cfg = {
  max_stages : int;     (* pipeline length at each nesting level *)
  max_branches : int;   (* split-join width *)
  max_rate : int;       (* per-firing push/pop cap *)
  max_depth : int;      (* nesting depth of split-joins / feedback loops *)
  allow_peek : bool;
  allow_state : bool;
  allow_feedback : bool;
}

let default =
  {
    max_stages = 4;
    max_branches = 3;
    max_rate = 4;
    max_depth = 2;
    allow_peek = true;
    allow_state = true;
    allow_feedback = true;
  }

(* ---- random filters ------------------------------------------------- *)

(* Work bodies draw constants from a small grid of exactly representable
   floats: the oracles compare bit-for-bit, and tame constants keep long
   pipelines from overflowing to inf (which would still compare equal, but
   makes counterexamples unreadable). *)
let rand_const st = float_of_int (Random.State.int st 9 - 4) /. 4.0

let affine_filter st ~name ~pop ~push =
  let p = pop and u = push in
  let open Kernel.Build in
  let body =
    [ arr "w" p ]
    @ List.init p (fun j -> seti "w" (i j) Kernel.Pop)
    @ List.init u (fun j ->
          let a = geti "w" (i (Random.State.int st p)) in
          let b = geti "w" (i (j mod p)) in
          Kernel.Push
            (match Random.State.int st 4 with
            | 0 -> (a *: f (rand_const st)) +: b
            | 1 -> a -: (b *: f (rand_const st))
            | 2 -> emin a b +: f (rand_const st)
            | _ -> emax a (b +: f (rand_const st))))
  in
  Kernel.make_filter ~name ~pop:p ~push:u body

let peeking_filter st ~name ~pop ~push ~margin =
  let p = pop and u = push in
  let open Kernel.Build in
  let pk = p + margin in
  let body =
    [ arr "w" pk; for_ "j" (i 0) (i pk) [ seti "w" (v "j") (peek (v "j")) ] ]
    @ List.init p (fun j -> let_ (Printf.sprintf "d%d" j) Kernel.Pop)
    @ List.init u (fun j ->
          Kernel.Push
            (geti "w" (i (Random.State.int st pk))
            +: (geti "w" (i (j mod pk)) *: f (rand_const st))))
  in
  Kernel.make_filter ~name ~pop:p ~push:u ~peek:pk body

let stateful_filter st ~name ~pop ~push =
  let p = pop and u = push in
  let open Kernel.Build in
  let body =
    [ arr "w" p ]
    @ List.init p (fun j -> seti "w" (i j) Kernel.Pop)
    @ [
        (* contraction keeps the running state bounded *)
        seti "acc" (i 0)
          ((geti "acc" (i 0) *: f 0.5) +: (geti "w" (i 0) *: f 0.25));
      ]
    @ List.init u (fun j ->
          Kernel.Push
            (geti "acc" (i 0) +: (geti "w" (i (j mod p)) *: f (rand_const st))))
  in
  Kernel.make_filter ~name ~pop:p ~push:u
    ~state:[ ("acc", [| Types.VFloat (rand_const st) |]) ]
    body

let random_filter cfg st ~name =
  let rate () = 1 + Random.State.int st cfg.max_rate in
  let pop = rate () and push = rate () in
  match Random.State.int st 6 with
  | (0 | 1) when cfg.allow_peek ->
    peeking_filter st ~name ~pop ~push ~margin:(1 + Random.State.int st 3)
  | 2 when cfg.allow_state -> stateful_filter st ~name ~pop ~push
  | _ -> affine_filter st ~name ~pop ~push

(* ---- rational token gain of a stream -------------------------------- *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let norm (n, d) =
  let g = max 1 (gcd (abs n) (abs d)) in
  (n / g, d / g)

let rmul (a, b) (c, d) = norm (a * c, b * d)
let radd (a, b) (c, d) = norm ((a * d) + (c * b), b * d)

(* tokens pushed per token popped, as a reduced rational *)
let rec gain = function
  | Ast.Filter f -> norm (f.Kernel.push_rate, f.Kernel.pop_rate)
  | Ast.Pipeline (_, ss) -> List.fold_left (fun g s -> rmul g (gain s)) (1, 1) ss
  | Ast.Split_join (_, sp, bs, _) -> (
    match sp with
    | Ast.Duplicate -> List.fold_left (fun g b -> radd g (gain b)) (0, 1) bs
    | Ast.Round_robin ws ->
      let total = List.fold_left ( + ) 0 ws in
      let out =
        List.fold_left2 (fun g w b -> radd g (rmul (w, 1) (gain b))) (0, 1) ws bs
      in
      rmul out (1, total))
  | Ast.Feedback_loop _ -> (1, 1) (* symmetric-weight loops are gain 1 *)

(* ---- structured streams --------------------------------------------- *)

(* Names must be unique within one program but reproducible across runs:
   the counter is reset at every generation attempt so the same seed
   always yields the same program, names included.  It is domain-local
   so seed-sharded fuzzing ([--jobs N]) generates the same program for a
   given seed whichever domain draws it, with no cross-domain races. *)
let name_ctr : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let reset_names () = Domain.DLS.get name_ctr := 0

let fresh prefix =
  let r = Domain.DLS.get name_ctr in
  incr r;
  Printf.sprintf "%s%d" prefix !r

let rec random_stream cfg st depth =
  let n = 1 + Random.State.int st cfg.max_stages in
  let stages = List.init n (fun _ -> random_stage cfg st depth) in
  Ast.pipeline (fresh "pipe") stages

and random_stage cfg st depth =
  let pick = Random.State.int st 10 in
  if depth < cfg.max_depth && pick >= 7 then random_splitjoin cfg st depth
  else if depth < cfg.max_depth && cfg.allow_feedback && pick = 6 then
    random_feedback cfg st
  else Ast.Filter (random_filter cfg st ~name:(fresh "F"))

and random_splitjoin cfg st depth =
  let nb = 2 + Random.State.int st (cfg.max_branches - 1) in
  let branches =
    List.init nb (fun _ ->
        if Random.State.int st 3 = 0 then random_stream cfg st (depth + 1)
        else Ast.Filter (random_filter cfg st ~name:(fresh "B")))
  in
  let dup = Random.State.int st 2 = 0 in
  let sw =
    if dup then List.map (fun _ -> 1) branches
    else List.init nb (fun _ -> 1 + Random.State.int st 3)
  in
  (* joiner weights proportional to each branch's output per splitter
     firing, so the balance equations stay consistent *)
  let outs = List.map2 (fun w b -> rmul (w, 1) (gain b)) sw branches in
  let denom_lcm = List.fold_left (fun l (_, d) -> l * d / gcd l d) 1 outs in
  let jw = List.map (fun (n, d) -> n * (denom_lcm / d)) outs in
  if List.exists (fun w -> w <= 0) jw then
    (* a zero-gain branch cannot happen (push >= 1), but stay safe *)
    Ast.Filter (random_filter cfg st ~name:(fresh "F"))
  else if dup then Ast.duplicate_sj (fresh "sj") branches jw
  else Ast.round_robin_sj (fresh "sj") sw branches jw

and random_feedback _cfg st =
  let a = 1 + Random.State.int st 2 in
  let b = 1 + Random.State.int st 2 in
  let rate = 1 + Random.State.int st 2 in
  let body =
    Ast.Filter (affine_filter st ~name:(fresh "L") ~pop:rate ~push:rate)
  in
  let ndelay = 2 * a * rate in
  Ast.Feedback_loop
    {
      name = fresh "fb";
      join_weights = (a, a);
      body;
      split_weights = (b, b);
      delay = List.init ndelay (fun i -> Types.VFloat (float_of_int (i mod 3)));
    }

(* ---- validation gate ------------------------------------------------- *)

(* Chained rate mismatches can make the repetition vector explode
   combinatorially; every steady-state firing becomes one schedulable
   instance, so a 15k-firing graph costs minutes in the II search alone
   (RecMII's cycle check is O(instances x deps) per probe) and drowns the
   oracles without adding coverage.  Reject such programs up front and
   retry with the next salt. *)
let max_steady_firings = 2_000

(* A stream the rest of the pipeline is entitled to reject is useless as a
   fuzz input; check the whole front half here.  Also reused by the
   shrinker to gate reduction candidates. *)
let admissible s =
  Ast.validate s = Ok ()
  &&
  match (try Ok (Flatten.flatten s) with Failure m -> Error m) with
  | Error _ -> false
  | Ok g -> (
    Graph.validate g = Ok ()
    &&
    match Sdf.steady_state g with
    | Error _ -> false
    | Ok rates -> (
      Sdf.check g rates = Ok ()
      && Array.fold_left ( + ) 0 rates.Sdf.reps <= max_steady_firings
      &&
      match (try Ok (Schedule.min_latency g rates) with Failure m -> Error m) with
      | Ok _ -> true
      | Error _ -> false))

let stream ?(cfg = default) ~seed () =
  let rec attempt salt =
    reset_names ();
    if salt >= 20 then begin
      (* fall back to a stream that is always admissible *)
      let st = Random.State.make [| 0x5eed; seed; 999 |] in
      Ast.pipeline (fresh "fallback")
        [
          Ast.Filter (affine_filter st ~name:(fresh "F") ~pop:2 ~push:3);
          Ast.Filter (affine_filter st ~name:(fresh "F") ~pop:3 ~push:1);
        ]
    end
    else
      let st = Random.State.make [| 0x5eed; seed; salt |] in
      let s = random_stream cfg st 0 in
      if admissible s then s else attempt (salt + 1)
  in
  attempt 0

(* Deterministic per-seed input tape; values on the same exact grid as the
   filter constants. *)
let input ~seed i =
  let x = ((i * 37) + (seed * 11)) mod 97 in
  Types.VFloat (float_of_int x /. 8.0)
