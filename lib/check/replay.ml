(* Independent replay oracle for software-pipelined schedules.

   Re-executes a compiled schedule the way the generated kernel would run
   it — kernel iteration by kernel iteration, instances in start-offset
   order — but against flat token-indexed channels instead of the ring
   buffers and shuffled layouts of {!Swp_core.Funcsim}.  Every token
   remembers who wrote it (SM, kernel iteration, completion time), and
   every read enforces the visibility rules the ILP constraints promise:

   - (8a), same SM: the producing pass must have {e completed} (its start
     offset plus profiled delay) no later than the consumer starts;
   - (8b), cross SM: the producing pass must have run in a strictly
     earlier kernel iteration — within one iteration there is no
     inter-SM synchronisation on the device.

   A schedule that passes [Swp_schedule.validate] but violates either rule
   in execution, or a buffer layout that permutes tokens incorrectly, will
   make this leg disagree with the FIFO interpreter and the functional
   simulator — the three legs share only the work-function evaluator. *)

open Streamit
open Types

exception Violation of string

type written = {
  value : value;
  w_sm : int;
  w_iter : int;  (* kernel iteration of the writer *)
  w_done : int;  (* global completion time: ii*iter + o + delay *)
}

type chan = {
  edge : Graph.edge;
  init : value array;
  tokens : (int, written) Hashtbl.t;  (* produced-stream index -> token *)
}

let run (c : Swp_core.Compile.compiled) ~input ~iters =
  let g = c.Swp_core.Compile.graph in
  let cfg = c.Swp_core.Compile.config in
  let sched = c.Swp_core.Compile.schedule in
  let ii = sched.Swp_core.Swp_schedule.ii in
  let stages = Swp_core.Swp_schedule.stages sched in
  let chans =
    List.map
      (fun (e : Graph.edge) ->
        ( e,
          {
            edge = e;
            init = Array.of_list e.Graph.init_values;
            tokens = Hashtbl.create 256;
          } ))
      g.Graph.edges
  in
  let in_chan v port =
    List.find_map
      (fun ((e : Graph.edge), ch) ->
        if e.Graph.dst = v && e.Graph.dst_port = port then Some ch else None)
      chans
  in
  let out_chan v port =
    List.find_map
      (fun ((e : Graph.edge), ch) ->
        if e.Graph.src = v && e.Graph.src_port = port then Some ch else None)
      chans
  in
  let out_tokens_per_iter =
    match g.Graph.exit_ with
    | None -> 0
    | Some v ->
      Graph.push_rate_of (Graph.node g v)
      * cfg.Swp_core.Select.threads.(v)
      * cfg.Swp_core.Select.reps.(v)
  in
  let out_tape = Array.make (max 1 (out_tokens_per_iter * iters)) None in
  let node_state = Hashtbl.create 8 in
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.kind with
      | Graph.NFilter f when Kernel.is_stateful f ->
        Hashtbl.replace node_state nd.Graph.id
          (List.map (fun (n, a) -> (n, Array.copy a)) f.Kernel.state)
      | _ -> ())
    g.Graph.nodes;
  let edge_name (e : Graph.edge) =
    Printf.sprintf "%s.%d -> %s.%d" (Graph.name g e.Graph.src) e.Graph.src_port
      (Graph.name g e.Graph.dst) e.Graph.dst_port
  in
  let read_token ch ~sm ~w ~start c =
    if c < Array.length ch.init then ch.init.(c)
    else begin
      let s = c - Array.length ch.init in
      match Hashtbl.find_opt ch.tokens s with
      | None ->
        raise
          (Violation
             (Printf.sprintf "edge %s: token %d read before it is written"
                (edge_name ch.edge) s))
      | Some t ->
        if t.w_sm <> sm && t.w_iter >= w then
          raise
            (Violation
               (Printf.sprintf
                  "edge %s: token %d written on SM %d in kernel iteration %d \
                   but read on SM %d in the same (or earlier) iteration %d — \
                   cross-SM data is only visible after a kernel boundary (8b)"
                  (edge_name ch.edge) s t.w_sm t.w_iter sm w));
        if t.w_sm = sm && t.w_done > start then
          raise
            (Violation
               (Printf.sprintf
                  "edge %s: token %d completes at t=%d on SM %d but is read \
                   at t=%d — producer pass must finish first (8a)"
                  (edge_name ch.edge) s t.w_done sm start));
        t.value
    end
  in
  let write_token ch ~sm ~w ~done_ s value =
    if Hashtbl.mem ch.tokens s then
      raise
        (Violation
           (Printf.sprintf "edge %s: token %d written twice" (edge_name ch.edge)
              s));
    Hashtbl.replace ch.tokens s { value; w_sm = sm; w_iter = w; w_done = done_ }
  in
  (* one thread-firing of instance (v,k) in steady iteration j, executing in
     kernel iteration w on SM [sm], starting at global time [start] *)
  let fire_thread ~sm ~w ~start ~done_ v k j tid =
    let node = Graph.node g v in
    let threads = cfg.Swp_core.Select.threads.(v) in
    let is_entry = g.Graph.entry = Some v in
    let is_exit = g.Graph.exit_ = Some v in
    let in_base r =
      ((j * cfg.Swp_core.Select.reps.(v)) + k) * (r * threads) + (tid * r)
    in
    let out_base r = in_base r in
    let read_port port r n =
      match in_chan v port with
      | Some ch -> read_token ch ~sm ~w ~start (in_base r + n)
      | None ->
        if is_entry then input (in_base r + n)
        else failwith "Replay: unwired input port"
    in
    let write_port port r n value =
      match out_chan v port with
      | Some ch -> write_token ch ~sm ~w ~done_ (out_base r + n) value
      | None ->
        if is_exit then begin
          let idx = out_base r + n in
          if idx < Array.length out_tape then out_tape.(idx) <- Some value
        end
        else failwith "Replay: unwired output port"
    in
    match node.Graph.kind with
    | Graph.NFilter f ->
      let pops = ref 0 in
      let pushes = ref 0 in
      let state =
        match Hashtbl.find_opt node_state v with Some s -> s | None -> []
      in
      Interp.exec_filter_firing ~state f
        ~pop:(fun () ->
          let v = read_port 0 f.Kernel.pop_rate !pops in
          incr pops;
          v)
        ~peek:(fun d -> read_port 0 f.Kernel.pop_rate (!pops + d))
        ~push:(fun v ->
          write_port 0 f.Kernel.push_rate !pushes v;
          incr pushes)
    | Graph.NSplitter (Ast.Duplicate, branches) ->
      let v0 = read_port 0 1 0 in
      for p = 0 to branches - 1 do
        write_port p 1 0 v0
      done
    | Graph.NSplitter (Ast.Round_robin ws, _) ->
      let sum = List.fold_left ( + ) 0 ws in
      let consumed = ref 0 in
      List.iteri
        (fun p w ->
          for n = 0 to w - 1 do
            write_port p w n (read_port 0 sum !consumed);
            incr consumed
          done)
        ws
    | Graph.NJoiner ws ->
      let sum = List.fold_left ( + ) 0 ws in
      let produced = ref 0 in
      List.iteri
        (fun p w ->
          for n = 0 to w - 1 do
            write_port 0 sum !produced (read_port p w n);
            incr produced
          done)
        ws
  in
  (* global time order: kernel iteration, then start offset; ties broken
     deterministically (instances tied on (w, o) are causally unordered —
     the read checks above hold for any tie order) *)
  let ordered =
    List.sort
      (fun (a : Swp_core.Swp_schedule.entry) (b : Swp_core.Swp_schedule.entry) ->
        compare
          (a.Swp_core.Swp_schedule.o, a.Swp_core.Swp_schedule.sm,
           a.Swp_core.Swp_schedule.inst)
          (b.Swp_core.Swp_schedule.o, b.Swp_core.Swp_schedule.sm,
           b.Swp_core.Swp_schedule.inst))
      sched.Swp_core.Swp_schedule.entries
  in
  for w = 0 to iters + stages - 1 do
    List.iter
      (fun (e : Swp_core.Swp_schedule.entry) ->
        let v = e.Swp_core.Swp_schedule.inst.Swp_core.Instances.node in
        let k = e.Swp_core.Swp_schedule.inst.Swp_core.Instances.k in
        let j = w - e.Swp_core.Swp_schedule.f in
        if j >= 0 && j < iters then begin
          let start = (ii * w) + e.Swp_core.Swp_schedule.o in
          let done_ = start + cfg.Swp_core.Select.delay.(v) in
          for tid = 0 to cfg.Swp_core.Select.threads.(v) - 1 do
            fire_thread ~sm:e.Swp_core.Swp_schedule.sm ~w ~start ~done_ v k j
              tid
          done
        end)
      ordered
  done;
  if out_tokens_per_iter = 0 then []
  else
    List.init (out_tokens_per_iter * iters) (fun i ->
        match out_tape.(i) with
        | Some v -> v
        | None ->
          raise
            (Violation (Printf.sprintf "output token %d never written" i)))
