(* Fault-injection fuzzing.

   For each seed: generate a stream, arm exactly one deterministic fault
   (the site and hit index are pure functions of the seed), and compile.
   The resilience contract under test: every injected fault yields
   either a schedule that still validates against the full constraint
   system of Sec. III — at full quality or degraded — or a structured
   one-line diagnostic.  An escaped exception or an invalid schedule is
   a bug.

   Even seeds additionally compile under a tiny work-unit budget, so the
   budget-exhaustion and fault paths compose in one campaign.

   Fault arming is process-global, so this driver is strictly serial —
   which also keeps every campaign deterministic in (base_seed, seeds). *)

open Streamit

let sites =
  [|
    "stage.profile";
    "stage.select";
    "stage.search";
    "stage.layout";
    "pool.task";
    "ii_search.attempt";
  |]

let spec_for seed =
  {
    Resil.Inject.site = sites.(seed mod Array.length sites);
    at = 1 + (seed / Array.length sites mod 3);
  }

type outcome =
  | Full         (* compiled at full quality despite the fault *)
  | Degraded     (* the ladder bottomed out in the fallback scheduler *)
  | Diagnosed of string  (* structured compile error, no crash *)
  | Skip of string       (* seed rejected before the fault could matter *)

type failure = { seed : int; site : string; at : int; message : string }

type stats = {
  seeds : int;
  full : int;
  degraded : int;
  diagnosed : int;
  skipped : int;
  failed : int;
}

let m_seeds = Obs.Metrics.counter "fault_fuzz.seeds"
let m_degraded = Obs.Metrics.counter "fault_fuzz.degraded"
let m_failures = Obs.Metrics.counter "fault_fuzz.failures"

let run_seed ?(cfg = Gen.default) seed =
  Obs.Metrics.inc m_seeds;
  let spec = spec_for seed in
  (* even seeds also squeeze the II search through a near-zero work
     budget; odd seeds exercise the fault alone *)
  let budget = if seed mod 2 = 0 then Some 25 else None in
  let s = Gen.stream ~cfg ~seed () in
  match
    (try Ok (Flatten.flatten s) with Failure m -> Error ("flatten: " ^ m))
  with
  | Error m -> Ok (Skip m)
  | Ok g
    when (match Sdf.steady_state g with
         | Ok r ->
           Array.fold_left ( + ) 0 r.Sdf.reps > Gen.max_steady_firings
         | Error _ -> false) ->
    Ok (Skip "steady state too large to schedule within the fuzz budget")
  | Ok g -> (
    Resil.Inject.arm [ spec ];
    let compiled =
      Fun.protect ~finally:Resil.Inject.disarm (fun () ->
          try Ok (Swp_core.Compile.compile ?budget g)
          with e -> Error (Printexc.to_string e))
    in
    match compiled with
    | Error crash ->
      Obs.Metrics.inc m_failures;
      Error
        {
          seed;
          site = spec.Resil.Inject.site;
          at = spec.Resil.Inject.at;
          message = "escaped exception: " ^ crash;
        }
    | Ok (Error diag) -> Ok (Diagnosed diag)
    | Ok (Ok c) -> (
      match Swp_core.Swp_schedule.validate g c.Swp_core.Compile.schedule with
      | Error m ->
        Obs.Metrics.inc m_failures;
        Error
          {
            seed;
            site = spec.Resil.Inject.site;
            at = spec.Resil.Inject.at;
            message = "invalid schedule compiled under fault: " ^ m;
          }
      | Ok () ->
        Ok
          (match c.Swp_core.Compile.quality with
          | Swp_core.Compile.Degraded ->
            Obs.Metrics.inc m_degraded;
            Degraded
          | Swp_core.Compile.Exact | Swp_core.Compile.Refined
          | Swp_core.Compile.Heuristic ->
            Full)))

let run ?(cfg = Gen.default) ?(base_seed = 1) ~seeds () =
  let failures = ref [] in
  let full = ref 0
  and degraded = ref 0
  and diagnosed = ref 0
  and skipped = ref 0 in
  for i = 0 to seeds - 1 do
    match run_seed ~cfg (base_seed + i) with
    | Ok Full -> incr full
    | Ok Degraded -> incr degraded
    | Ok (Diagnosed _) -> incr diagnosed
    | Ok (Skip _) -> incr skipped
    | Error f -> failures := f :: !failures
  done;
  let failures = List.rev !failures in
  ( {
      seeds;
      full = !full;
      degraded = !degraded;
      diagnosed = !diagnosed;
      skipped = !skipped;
      failed = List.length failures;
    },
    failures )

let pp_failure fmt (f : failure) =
  Format.fprintf fmt "seed %d (fault %s hit %d): %s" f.seed f.site f.at
    f.message

let pp_stats fmt s =
  Format.fprintf fmt
    "%d seeds: %d full, %d degraded, %d diagnosed, %d skipped, %d failed"
    s.seeds s.full s.degraded s.diagnosed s.skipped s.failed
