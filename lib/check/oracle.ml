(* Four-way differential oracle.

   One compiled program, four executions that share nothing but the
   work-function evaluator:

   - {!Streamit.Interp}: the FIFO reference interpreter (semantic ground
     truth), run for [iters * scale] original steady states;
   - {!Swp_core.Funcsim}: the device functional simulator — ring buffers,
     shuffled layouts (eqs. (9)-(11)), staging predicates;
   - {!Replay}: flat token-indexed channels executed in global schedule
     time order with the (8a)/(8b) visibility rules enforced per read;
   - {!Kir.Eval}: direct execution of the lowered portable kernel IR —
     the same program every backend printer renders, so a lowering bug
     (dropped buffer, wrong fire order, bad index map) diverges here
     even when the schedule itself is sound.

   Output streams must agree token-for-token, bit-for-bit: all legs
   evaluate each firing with the same expression evaluator in the same
   order, so even floating-point results are exactly reproducible. *)

open Streamit
open Types

let pp_tokens tokens =
  let n = Array.length tokens in
  let shown = min n 8 in
  let head =
    String.concat " "
      (List.init shown (fun i -> string_of_value tokens.(i)))
  in
  if n > shown then Printf.sprintf "[%s ... (%d tokens)]" head n
  else Printf.sprintf "[%s]" head

let compare_streams ~ref_name ~ref_tokens ~name ~tokens =
  if Array.length tokens <> Array.length ref_tokens then
    Error
      (Printf.sprintf "%s produced %d output tokens, %s produced %d" name
         (Array.length tokens) ref_name
         (Array.length ref_tokens))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i v ->
        if !bad = None && not (equal_value v ref_tokens.(i)) then
          bad :=
            Some
              (Printf.sprintf "token %d: %s says %s, %s says %s (%s vs %s)" i
                 name (string_of_value v) ref_name
                 (string_of_value ref_tokens.(i))
                 (pp_tokens tokens) (pp_tokens ref_tokens)))
      tokens;
    match !bad with None -> Ok () | Some m -> Error m
  end

(* Run all three legs and compare.  Exceptions from the simulators are
   converted into [Error]s so a fuzz driver can shrink them like any other
   disagreement. *)
let differential (c : Swp_core.Compile.compiled) ~input ~iters =
  let scale = c.Swp_core.Compile.config.Swp_core.Select.scale in
  let interp =
    Array.of_list
      (Interp.run_steady_states c.Swp_core.Compile.graph ~input
         ~iters:(iters * scale))
  in
  let funcsim =
    try Ok (Array.of_list (Swp_core.Funcsim.run c ~input ~iters)) with
    | Swp_core.Funcsim.Uninitialized_read m ->
      Error ("funcsim: uninitialized read: " ^ m)
    | Failure m -> Error ("funcsim: " ^ m)
  in
  let replay =
    try Ok (Array.of_list (Replay.run c ~input ~iters)) with
    | Replay.Violation m -> Error ("replay: " ^ m)
    | Failure m -> Error ("replay: " ^ m)
  in
  let kir_eval =
    try
      Ok (Array.of_list (Kir.Eval.run (Kir.Lower.lower c) ~input ~iters))
    with
    | Kir.Eval.Uninitialized_read m ->
      Error ("kir-eval: uninitialized read: " ^ m)
    | Kir.Ir.Unsupported m -> Error ("kir-eval: unsupported: " ^ m)
    | Failure m -> Error ("kir-eval: " ^ m)
  in
  match (funcsim, replay, kir_eval) with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> Error m
  | Ok funcsim, Ok replay, Ok kir_eval -> (
    match
      compare_streams ~ref_name:"interpreter" ~ref_tokens:interp
        ~name:"funcsim" ~tokens:funcsim
    with
    | Error m -> Error m
    | Ok () -> (
      match
        compare_streams ~ref_name:"interpreter" ~ref_tokens:interp
          ~name:"replay" ~tokens:replay
      with
      | Error m -> Error m
      | Ok () ->
        compare_streams ~ref_name:"interpreter" ~ref_tokens:interp
          ~name:"kir-eval" ~tokens:kir_eval))
