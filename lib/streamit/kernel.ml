open Types

type unop =
  | Neg
  | Not
  | BitNot
  | Sin
  | Cos
  | Sqrt
  | Exp
  | Log
  | Abs
  | ToFloat
  | ToInt

type binop =
  | Add | Sub | Mul | Div | Mod
  | BitAnd | BitOr | BitXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Min | Max

type expr =
  | Const of value
  | Var of string
  | ArrayRef of string * expr
  | TableRef of string * expr
  | Pop
  | Peek of expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr

type stmt =
  | Let of string * expr
  | Assign of string * expr
  | DeclArray of string * int
  | ArrayAssign of string * expr * expr
  | Push of expr
  | If of expr * stmt list * stmt list
  | For of string * expr * expr * stmt list

type filter = {
  name : string;
  pop_rate : int;
  push_rate : int;
  peek_rate : int;
  in_ty : elem_ty;
  out_ty : elem_ty;
  tables : (string * value array) list;
  state : (string * value array) list;
  work : stmt list;
}

let make_filter ~name ?(pop = 0) ?(push = 0) ?peek ?(in_ty = TFloat)
    ?(out_ty = TFloat) ?(tables = []) ?(state = []) work =
  let peek = match peek with Some p -> p | None -> pop in
  if pop < 0 || push < 0 then invalid_arg "Kernel.make_filter: negative rate";
  if peek < pop then invalid_arg "Kernel.make_filter: peek < pop";
  { name; pop_rate = pop; push_rate = push; peek_rate = peek; in_ty; out_ty;
    tables; state; work }

let is_peeking f = f.peek_rate > f.pop_rate
let is_stateful f = f.state <> []
let is_source f = f.pop_rate = 0
let is_sink f = f.push_rate = 0

let identity ?(ty = TFloat) () =
  make_filter ~name:"Identity" ~pop:1 ~push:1 ~in_ty:ty ~out_ty:ty [ Push Pop ]

(* --- constant folding used by rate inference for loop bounds --- *)

let rec const_int env = function
  | Const (VInt n) -> Some n
  | Var x -> List.assoc_opt x env
  | Unop (Neg, e) -> Option.map (fun n -> -n) (const_int env e)
  | Binop (op, a, b) -> (
    match (const_int env a, const_int env b) with
    | Some a, Some b -> (
      match op with
      | Add -> Some (a + b)
      | Sub -> Some (a - b)
      | Mul -> Some (a * b)
      | Div -> if b = 0 then None else Some (a / b)
      | Mod -> if b = 0 then None else Some (a mod b)
      | Shl -> Some (a lsl b)
      | Shr -> Some (a lsr b)
      | BitAnd -> Some (a land b)
      | BitOr -> Some (a lor b)
      | BitXor -> Some (a lxor b)
      | Min -> Some (min a b)
      | Max -> Some (max a b)
      | Eq | Ne | Lt | Le | Gt | Ge -> None)
    | _ -> None)
  | _ -> None

(* --- rate inference --- *)

exception Not_static of string

let infer_rates body =
  (* env maps loop/let variables with statically-known integer values. *)
  let rec expr_counts env e =
    (* returns (pops, pushes=0, max_peek_excl) for an expression *)
    match e with
    | Const _ | Var _ -> (0, 0)
    | Pop -> (1, 0)
    | Peek d ->
      let p, pk = expr_counts env d in
      let depth =
        match const_int env d with
        | Some n -> n + 1
        | None -> raise (Not_static "peek with non-constant depth")
      in
      (p, max pk depth)
    | ArrayRef (_, e) | TableRef (_, e) | Unop (_, e) -> expr_counts env e
    | Binop (_, a, b) ->
      let pa, ka = expr_counts env a in
      let pb, kb = expr_counts env b in
      (pa + pb, max ka kb)
    | Cond (c, a, b) ->
      let pc, kc = expr_counts env c in
      let pa, ka = expr_counts env a in
      let pb, kb = expr_counts env b in
      if pa <> pb then raise (Not_static "conditional arms pop unequally");
      (pc + pa, max kc (max ka kb))
  in
  let rec stmt_counts env s =
    (* returns (pops, pushes, max_peek, env') *)
    match s with
    | Let (x, e) ->
      let p, k = expr_counts env e in
      let env =
        match const_int env e with
        | Some n when p = 0 -> (x, n) :: env
        | _ -> List.remove_assoc x env
      in
      (p, 0, k, env)
    | Assign (x, e) ->
      let p, k = expr_counts env e in
      let env =
        match const_int env e with
        | Some n when p = 0 -> (x, n) :: List.remove_assoc x env
        | _ -> List.remove_assoc x env
      in
      (p, 0, k, env)
    | DeclArray _ -> (0, 0, 0, env)
    | ArrayAssign (_, i, e) ->
      let pi, ki = expr_counts env i in
      let pe, ke = expr_counts env e in
      (pi + pe, 0, max ki ke, env)
    | Push e ->
      let p, k = expr_counts env e in
      (p, 1, k, env)
    | If (c, th, el) ->
      let pc, kc = expr_counts env c in
      let pt, ut, kt = block_counts env th in
      let pe, ue, ke = block_counts env el in
      if pt <> pe then raise (Not_static "if branches pop unequally");
      if ut <> ue then raise (Not_static "if branches push unequally");
      (pc + pt, ut, max kc (max kt ke), env)
    | For (x, lo, hi, body) -> (
      let plo, klo = expr_counts env lo in
      let phi, khi = expr_counts env hi in
      if plo + phi > 0 then raise (Not_static "loop bound pops");
      let pb, ub, kb = block_counts ((x, 0) :: env) body in
      if pb = 0 && ub = 0 then
        (* No channel traffic in the body: trip count irrelevant for
           rates; peek depth may still depend on the index, use the body
           analysed with unknown index. *)
        (0, 0, max (max klo khi) kb, env)
      else
        match (const_int env lo, const_int env hi) with
        | Some l, Some h ->
          let trips = max 0 (h - l) in
          (* Peek depth may grow with the index; analyse the body at the
             last iteration for a sound-enough bound. *)
          let _, _, klast = block_counts ((x, max l (h - 1)) :: env) body in
          (pb * trips, ub * trips, max (max klo khi) klast, env)
        | _ -> raise (Not_static "channel traffic under non-constant loop"))
  and block_counts env stmts =
    let p, u, k, _ =
      List.fold_left
        (fun (p, u, k, env) s ->
          let ps, us, ks, env = stmt_counts env s in
          (p + ps, u + us, max k ks, env))
        (0, 0, 0, env) stmts
    in
    (p, u, k)
  in
  try
    let p, u, k = block_counts [] body in
    Ok (p, u, max k p)
  with Not_static msg -> Error msg

(* --- scope / reference checking --- *)

let check_filter f =
  let table_names = List.map fst f.tables in
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  let rec chk_expr scope arrays = function
    | Const _ | Pop -> ()
    | Var x -> if not (List.mem x scope) then fail ("unbound variable " ^ x)
    | ArrayRef (a, e) ->
      if not (List.mem a arrays) then fail ("unbound array " ^ a);
      chk_expr scope arrays e
    | TableRef (t, e) ->
      if not (List.mem t table_names) then fail ("unknown table " ^ t);
      chk_expr scope arrays e
    | Peek e | Unop (_, e) -> chk_expr scope arrays e
    | Binop (_, a, b) ->
      chk_expr scope arrays a;
      chk_expr scope arrays b
    | Cond (c, a, b) ->
      chk_expr scope arrays c;
      chk_expr scope arrays a;
      chk_expr scope arrays b
  in
  let rec chk_stmt scope arrays = function
    | Let (x, e) ->
      chk_expr scope arrays e;
      (x :: scope, arrays)
    | Assign (x, e) ->
      if not (List.mem x scope) then fail ("assignment to unbound " ^ x);
      chk_expr scope arrays e;
      (scope, arrays)
    | DeclArray (a, n) ->
      if n <= 0 then fail ("non-positive array size for " ^ a);
      (scope, a :: arrays)
    | ArrayAssign (a, i, e) ->
      if not (List.mem a arrays) then fail ("unbound array " ^ a);
      chk_expr scope arrays i;
      chk_expr scope arrays e;
      (scope, arrays)
    | Push e ->
      chk_expr scope arrays e;
      (scope, arrays)
    | If (c, th, el) ->
      chk_expr scope arrays c;
      ignore (chk_block scope arrays th);
      ignore (chk_block scope arrays el);
      (scope, arrays)
    | For (x, lo, hi, body) ->
      chk_expr scope arrays lo;
      chk_expr scope arrays hi;
      ignore (chk_block (x :: scope) arrays body);
      (scope, arrays)
  and chk_block scope arrays stmts =
    List.fold_left (fun (s, a) st -> chk_stmt s a st) (scope, arrays) stmts
  in
  ignore (chk_block [] (List.map fst f.state) f.work);
  (match infer_rates f.work with
  | Error m -> fail ("rate inference failed: " ^ m)
  | Ok (p, u, k) ->
    if p <> f.pop_rate then
      fail (Printf.sprintf "declared pop %d but body pops %d" f.pop_rate p);
    if u <> f.push_rate then
      fail (Printf.sprintf "declared push %d but body pushes %d" f.push_rate u);
    if k > f.peek_rate then
      fail (Printf.sprintf "declared peek %d but body peeks %d" f.peek_rate k));
  match !err with
  | None -> Ok ()
  | Some m -> Error (f.name ^ ": " ^ m)

(* --- operation cost --- *)

type op_cost = {
  alu : int;
  mul : int;
  divmod : int;
  special : int;
  mem : int;
  channel : int;
}

let zero_cost = { alu = 0; mul = 0; divmod = 0; special = 0; mem = 0; channel = 0 }

let add_cost a b =
  {
    alu = a.alu + b.alu;
    mul = a.mul + b.mul;
    divmod = a.divmod + b.divmod;
    special = a.special + b.special;
    mem = a.mem + b.mem;
    channel = a.channel + b.channel;
  }

let scale_cost n c =
  {
    alu = n * c.alu;
    mul = n * c.mul;
    divmod = n * c.divmod;
    special = n * c.special;
    mem = n * c.mem;
    channel = n * c.channel;
  }

let max_cost a b =
  {
    alu = max a.alu b.alu;
    mul = max a.mul b.mul;
    divmod = max a.divmod b.divmod;
    special = max a.special b.special;
    mem = max a.mem b.mem;
    channel = max a.channel b.channel;
  }

let cost_of_filter f =
  let rec e_cost = function
    | Const _ | Var _ -> zero_cost
    | Pop -> { zero_cost with channel = 1 }
    | Peek d -> add_cost { zero_cost with channel = 1 } (e_cost d)
    | ArrayRef (_, i) | TableRef (_, i) ->
      add_cost { zero_cost with mem = 1 } (e_cost i)
    | Unop (op, e) ->
      let self =
        match op with
        | Sin | Cos | Sqrt | Exp | Log -> { zero_cost with special = 1 }
        | _ -> { zero_cost with alu = 1 }
      in
      add_cost self (e_cost e)
    | Binop (op, a, b) ->
      let self =
        match op with
        | Mul -> { zero_cost with mul = 1 }
        | Div | Mod -> { zero_cost with divmod = 1 }
        | _ -> { zero_cost with alu = 1 }
      in
      add_cost self (add_cost (e_cost a) (e_cost b))
    | Cond (c, a, b) ->
      add_cost
        (add_cost { zero_cost with alu = 1 } (e_cost c))
        (max_cost (e_cost a) (e_cost b))
  in
  let rec s_cost env = function
    | Let (x, e) ->
      let c = e_cost e in
      let env =
        match const_int env e with
        | Some n -> (x, n) :: env
        | None -> List.remove_assoc x env
      in
      (add_cost { zero_cost with alu = 1 } c, env)
    | Assign (_, e) -> (add_cost { zero_cost with alu = 1 } (e_cost e), env)
    | DeclArray (_, n) -> ({ zero_cost with mem = n / 4 }, env)
    | ArrayAssign (_, i, e) ->
      ( add_cost { zero_cost with mem = 1 } (add_cost (e_cost i) (e_cost e)),
        env )
    | Push e -> (add_cost { zero_cost with channel = 1 } (e_cost e), env)
    | If (c, th, el) ->
      ( add_cost
          (add_cost { zero_cost with alu = 1 } (e_cost c))
          (max_cost (block_cost env th) (block_cost env el)),
        env )
    | For (_, lo, hi, body) ->
      let trips =
        match (const_int env lo, const_int env hi) with
        | Some l, Some h -> max 0 (h - l)
        | _ -> 8 (* conservative default for data-dependent loops *)
      in
      let per = add_cost { zero_cost with alu = 2 } (block_cost env body) in
      (add_cost (e_cost lo) (add_cost (e_cost hi) (scale_cost trips per)), env)
  and block_cost env stmts =
    let c, _ =
      List.fold_left
        (fun (acc, env) s ->
          let cs, env = s_cost env s in
          (add_cost acc cs, env))
        (zero_cost, env) stmts
    in
    c
  in
  block_cost [] f.work

(* --- register-pressure estimate --- *)

let estimate_registers f =
  let rec expr_depth = function
    | Const _ | Var _ | Pop -> 1
    | Peek e | Unop (_, e) | ArrayRef (_, e) | TableRef (_, e) ->
      1 + expr_depth e
    | Binop (_, a, b) -> 1 + max (expr_depth a) (expr_depth b)
    | Cond (c, a, b) -> 1 + max (expr_depth c) (max (expr_depth a) (expr_depth b))
  in
  let scalars = Hashtbl.create 8 in
  let arrays = ref 0 in
  let depth = ref 0 in
  let note_expr e = depth := max !depth (expr_depth e) in
  let rec walk = function
    | Let (x, e) ->
      Hashtbl.replace scalars x ();
      note_expr e
    | Assign (_, e) -> note_expr e
    | DeclArray (_, n) -> arrays := !arrays + min n 16
    | ArrayAssign (_, i, e) ->
      note_expr i;
      note_expr e
    | Push e -> note_expr e
    | If (c, a, b) ->
      note_expr c;
      List.iter walk a;
      List.iter walk b
    | For (x, lo, hi, body) ->
      Hashtbl.replace scalars x ();
      note_expr lo;
      note_expr hi;
      List.iter walk body
  in
  List.iter walk f.work;
  (* Base overhead mirrors CUDA's implicit thread/block index bookkeeping
     plus buffer base pointers. *)
  let est = 6 + Hashtbl.length scalars + !depth + !arrays in
  max 4 (min 128 est)

(* --- renaming --- *)

let rename fn f =
  let rec re = function
    | Const _ as e -> e
    | Var x -> Var (fn x)
    | ArrayRef (a, e) -> ArrayRef (fn a, re e)
    | TableRef (t, e) -> TableRef (fn t, re e)
    | Pop -> Pop
    | Peek e -> Peek (re e)
    | Unop (op, e) -> Unop (op, re e)
    | Binop (op, a, b) -> Binop (op, re a, re b)
    | Cond (c, a, b) -> Cond (re c, re a, re b)
  in
  let rec rs = function
    | Let (x, e) -> Let (fn x, re e)
    | Assign (x, e) -> Assign (fn x, re e)
    | DeclArray (a, n) -> DeclArray (fn a, n)
    | ArrayAssign (a, i, e) -> ArrayAssign (fn a, re i, re e)
    | Push e -> Push (re e)
    | If (c, a, b) -> If (re c, List.map rs a, List.map rs b)
    | For (x, lo, hi, body) -> For (fn x, re lo, re hi, List.map rs body)
  in
  {
    f with
    tables = List.map (fun (t, v) -> (fn t, v)) f.tables;
    state = List.map (fun (t, v) -> (fn t, v)) f.state;
    work = List.map rs f.work;
  }

(* Alpha-canonical form: every identifier (tables, state, locals, loop
   indices) renamed to "x0", "x1", ... in first-appearance order under
   [rename]'s fixed traversal (tables, then state, then work), and the
   display name dropped.  Two filters that differ only in naming map to
   the same canonical value, so structural keys built on it — the
   profile node memo, the schedule cache key — are name-irrelevant.
   Semantics are preserved: [rename] applies one consistent mapping to
   binders and references alike. *)
let alpha_canonical f =
  let map = Hashtbl.create 16 in
  let next = ref 0 in
  let fn x =
    match Hashtbl.find_opt map x with
    | Some y -> y
    | None ->
      let y = "x" ^ string_of_int !next in
      incr next;
      Hashtbl.add map x y;
      y
  in
  { (rename fn f) with name = "" }

(* --- pretty printing --- *)

let string_of_unop = function
  | Neg -> "-"
  | Not -> "!"
  | BitNot -> "~"
  | Sin -> "sinf"
  | Cos -> "cosf"
  | Sqrt -> "sqrtf"
  | Exp -> "expf"
  | Log -> "logf"
  | Abs -> "abs"
  | ToFloat -> "(float)"
  | ToInt -> "(int)"

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | BitAnd -> "&"
  | BitOr -> "|"
  | BitXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Min -> "min"
  | Max -> "max"

let rec pp_expr fmt = function
  | Const v -> pp_value fmt v
  | Var x -> Format.fprintf fmt "%s" x
  | ArrayRef (a, e) -> Format.fprintf fmt "%s[%a]" a pp_expr e
  | TableRef (t, e) -> Format.fprintf fmt "%s[%a]" t pp_expr e
  | Pop -> Format.fprintf fmt "pop()"
  | Peek e -> Format.fprintf fmt "peek(%a)" pp_expr e
  | Unop (op, e) -> Format.fprintf fmt "%s(%a)" (string_of_unop op) pp_expr e
  | Binop ((Min | Max) as op, a, b) ->
    Format.fprintf fmt "%s(%a, %a)" (string_of_binop op) pp_expr a pp_expr b
  | Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (string_of_binop op) pp_expr b
  | Cond (c, a, b) ->
    Format.fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt fmt = function
  | Let (x, e) -> Format.fprintf fmt "let %s = %a;" x pp_expr e
  | Assign (x, e) -> Format.fprintf fmt "%s = %a;" x pp_expr e
  | DeclArray (a, n) -> Format.fprintf fmt "array %s[%d];" a n
  | ArrayAssign (a, i, e) ->
    Format.fprintf fmt "%s[%a] = %a;" a pp_expr i pp_expr e
  | Push e -> Format.fprintf fmt "push(%a);" pp_expr e
  | If (c, th, el) ->
    Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_block th;
    if el <> [] then Format.fprintf fmt "@[<v 2> else {%a@]@,}" pp_block el
  | For (x, lo, hi, body) ->
    Format.fprintf fmt "@[<v 2>for %s in [%a, %a) {%a@]@,}" x pp_expr lo
      pp_expr hi pp_block body

and pp_block fmt stmts =
  List.iter (fun s -> Format.fprintf fmt "@,%a" pp_stmt s) stmts

let pp_filter fmt f =
  Format.fprintf fmt "@[<v 2>filter %s (pop %d, push %d, peek %d) {%a@]@,}"
    f.name f.pop_rate f.push_rate f.peek_rate pp_block f.work

module Build = struct
  let i n = Const (VInt n)
  let f x = Const (VFloat x)
  let v x = Var x
  let ( +: ) a b = Binop (Add, a, b)
  let ( -: ) a b = Binop (Sub, a, b)
  let ( *: ) a b = Binop (Mul, a, b)
  let ( /: ) a b = Binop (Div, a, b)
  let ( %: ) a b = Binop (Mod, a, b)
  let ( <: ) a b = Binop (Lt, a, b)
  let ( <=: ) a b = Binop (Le, a, b)
  let ( >: ) a b = Binop (Gt, a, b)
  let ( >=: ) a b = Binop (Ge, a, b)
  let ( =: ) a b = Binop (Eq, a, b)
  let ( <>: ) a b = Binop (Ne, a, b)
  let ( &: ) a b = Binop (BitAnd, a, b)
  let ( |: ) a b = Binop (BitOr, a, b)
  let ( ^: ) a b = Binop (BitXor, a, b)
  let ( <<: ) a b = Binop (Shl, a, b)
  let ( >>: ) a b = Binop (Shr, a, b)
  let emin a b = Binop (Min, a, b)
  let emax a b = Binop (Max, a, b)
  let neg e = Unop (Neg, e)
  let pop = Pop
  let peek e = Peek e
  let push e = Push e
  let let_ x e = Let (x, e)
  let set x e = Assign (x, e)
  let arr a n = DeclArray (a, n)
  let seti a idx e = ArrayAssign (a, idx, e)
  let geti a idx = ArrayRef (a, idx)
  let tbl t idx = TableRef (t, idx)
  let if_ c a b = If (c, a, b)
  let for_ x lo hi body = For (x, lo, hi, body)
end
