open Numeric

type rates = { reps : int array; edge_tokens : (Graph.edge * int) list }

let rec steady_state g =
  Obs.Trace.with_span "sdf.solve" (fun () -> steady_state_untraced g)

and steady_state_untraced g =
  let n = Graph.num_nodes g in
  if n = 0 then Error "empty graph"
  else begin
    (* Propagate rational rates from node 0 across edges in both
       directions; the graph must be connected. *)
    let rate = Array.make n None in
    rate.(0) <- Some Rat.one;
    let queue = Queue.create () in
    Queue.add 0 queue;
    let ok = ref (Ok ()) in
    let fail m = if !ok = Ok () then ok := Error m in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let ru = match rate.(u) with Some r -> r | None -> assert false in
      let visit v rv =
        match rate.(v) with
        | None ->
          rate.(v) <- Some rv;
          Queue.add v queue
        | Some r ->
          if not (Rat.equal r rv) then
            fail
              (Printf.sprintf
                 "rate-inconsistent graph at node %s (expected %s, got %s)"
                 (Graph.name g v) (Rat.to_string r) (Rat.to_string rv))
      in
      List.iter
        (fun e ->
          (* k_dst = k_src * O / I *)
          let o = Graph.production g e and i = Graph.consumption g e in
          if i = 0 then fail (Graph.name g e.Graph.dst ^ ": zero consumption")
          else visit e.Graph.dst (Rat.mul ru (Rat.of_ints o i)))
        (Graph.out_edges g u);
      List.iter
        (fun e ->
          let o = Graph.production g e and i = Graph.consumption g e in
          if o = 0 then fail (Graph.name g e.Graph.src ^ ": zero production")
          else visit e.Graph.src (Rat.mul ru (Rat.of_ints i o)))
        (Graph.in_edges g u)
    done;
    match !ok with
    | Error m -> Error m
    | Ok () ->
      if Array.exists (fun r -> r = None) rate then
        Error "graph is not connected"
      else begin
        let rats = Array.map Option.get rate in
        (* scale to smallest integer vector *)
        let den_lcm =
          Array.fold_left
            (fun acc r -> Bigint.lcm acc (Rat.den r))
            Bigint.one rats
        in
        let ints =
          Array.map
            (fun r -> Rat.mul r (Rat.of_bigint den_lcm) |> Rat.to_bigint)
            rats
        in
        let g_all =
          Array.fold_left (fun acc x -> Bigint.gcd acc x) Bigint.zero ints
        in
        let reps =
          Array.map (fun x -> Bigint.to_int (Bigint.div x g_all)) ints
        in
        if Array.exists (fun k -> k <= 0) reps then
          Error "non-positive repetition count"
        else begin
          let edge_tokens =
            List.map
              (fun e ->
                (e, reps.(e.Graph.src) * Graph.production g e))
              g.Graph.edges
          in
          Ok { reps; edge_tokens }
        end
      end
  end

let scaled_reps r factor =
  if factor <= 0 then invalid_arg "Sdf.scaled_reps: non-positive factor";
  Array.map (fun k -> k * factor) r.reps

let tokens_per_steady_state g r e = r.reps.(e.Graph.src) * Graph.production g e

let input_tokens g r =
  match g.Graph.entry with
  | None -> 0
  | Some v -> r.reps.(v) * Graph.entry_pop g

let output_tokens g r =
  match g.Graph.exit_ with
  | None -> 0
  | Some v -> r.reps.(v) * Graph.exit_push g

let check g r =
  let bad =
    List.find_opt
      (fun e ->
        r.reps.(e.Graph.src) * Graph.production g e
        <> r.reps.(e.Graph.dst) * Graph.consumption g e)
      g.Graph.edges
  in
  match bad with
  | None ->
    if Array.length r.reps <> Graph.num_nodes g then
      Error "repetition vector length mismatch"
    else Ok ()
  | Some e ->
    Error
      (Printf.sprintf "balance equation violated on edge %s -> %s"
         (Graph.name g e.Graph.src) (Graph.name g e.Graph.dst))
