type firing = int

let m_sas = Obs.Metrics.counter "schedule.sas_runs"
let m_min_latency = Obs.Metrics.counter "schedule.min_latency_runs"

let sas g rates =
  Obs.Metrics.inc m_sas;
  List.concat_map
    (fun v -> List.init rates.Sdf.reps.(v) (fun _ -> v))
    (Graph.topo_order g)

(* Token-counting machinery shared by the schedulers and checkers.  State
   maps each edge to its current token count. *)

module EdgeKey = struct
  type t = int * int * int * int

  let of_edge (e : Graph.edge) = (e.src, e.src_port, e.dst, e.dst_port)
end

type counts = (EdgeKey.t, int) Hashtbl.t

let init_counts g : counts =
  let h = Hashtbl.create 32 in
  List.iter
    (fun (e : Graph.edge) -> Hashtbl.replace h (EdgeKey.of_edge e) e.init_tokens)
    g.Graph.edges;
  h

let tokens counts e = Hashtbl.find counts (EdgeKey.of_edge e)

(* Can node v fire given channel state?  Peeking consumers need the peek
   margin on top of their pop rate. *)
let ready g counts v =
  List.for_all
    (fun e ->
      tokens counts e >= Graph.consumption g e + Graph.peek_margin g e)
    (Graph.in_edges g v)

let fire g counts v =
  List.iter
    (fun e ->
      let k = EdgeKey.of_edge e in
      Hashtbl.replace counts k (Hashtbl.find counts k - Graph.consumption g e))
    (Graph.in_edges g v);
  List.iter
    (fun e ->
      let k = EdgeKey.of_edge e in
      Hashtbl.replace counts k (Hashtbl.find counts k + Graph.production g e))
    (Graph.out_edges g v)

let min_latency g rates =
  Obs.Metrics.inc m_min_latency;
  Obs.Trace.with_span "schedule.min_latency" @@ fun () ->
  let n = Graph.num_nodes g in
  let counts = init_counts g in
  let remaining = Array.copy rates.Sdf.reps in
  (* Depth = longest path to a sink; fire the deepest ready node first so
     tokens are drained as soon as they are produced. *)
  let depth = Array.make n 0 in
  let order = List.rev (Graph.topo_order g) in
  List.iter
    (fun v ->
      let d =
        List.fold_left
          (fun acc (e : Graph.edge) ->
            if e.init_tokens >= Graph.consumption g e + Graph.peek_margin g e
            then acc
            else max acc (1 + depth.(e.dst)))
          0 (Graph.out_edges g v)
      in
      depth.(v) <- d)
    order;
  let total = Array.fold_left ( + ) 0 remaining in
  let sched = ref [] in
  let fired = ref 0 in
  let progress = ref true in
  while !fired < total && !progress do
    progress := false;
    (* pick the ready node with the smallest depth (closest to sink) *)
    let best = ref None in
    for v = 0 to n - 1 do
      if remaining.(v) > 0 && ready g counts v then
        match !best with
        | Some b when depth.(v) >= depth.(b) -> ()
        | _ -> best := Some v
    done;
    match !best with
    | Some v ->
      fire g counts v;
      remaining.(v) <- remaining.(v) - 1;
      sched := v :: !sched;
      incr fired;
      progress := true
    | None -> ()
  done;
  if !fired <> total then
    failwith "Schedule.min_latency: deadlock (inadmissible graph)";
  List.rev !sched

let is_admissible g rates firings =
  let counts = init_counts g in
  let n = Graph.num_nodes g in
  let count_fired = Array.make n 0 in
  let err = ref None in
  List.iteri
    (fun step v ->
      if !err = None then begin
        if v < 0 || v >= n then err := Some (Printf.sprintf "bad node id at step %d" step)
        else if not (ready g counts v) then
          err :=
            Some
              (Printf.sprintf "firing rule violated at step %d (node %s)" step
                 (Graph.name g v))
        else begin
          fire g counts v;
          count_fired.(v) <- count_fired.(v) + 1
        end
      end)
    firings;
  (match !err with
  | None ->
    Array.iteri
      (fun v k ->
        if !err = None && k <> rates.Sdf.reps.(v) then
          err :=
            Some
              (Printf.sprintf "node %s fired %d times, expected %d"
                 (Graph.name g v) k rates.Sdf.reps.(v)))
      count_fired
  | Some _ -> ());
  match !err with None -> Ok () | Some m -> Error m

let buffer_occupancy g firings =
  let counts = init_counts g in
  let high = Hashtbl.create 32 in
  List.iter
    (fun (e : Graph.edge) ->
      Hashtbl.replace high (EdgeKey.of_edge e) e.init_tokens)
    g.Graph.edges;
  List.iter
    (fun v ->
      fire g counts v;
      List.iter
        (fun (e : Graph.edge) ->
          let k = EdgeKey.of_edge e in
          let cur = Hashtbl.find counts k in
          if cur > Hashtbl.find high k then Hashtbl.replace high k cur)
        (Graph.out_edges g v))
    firings;
  List.map
    (fun (e : Graph.edge) -> (e, Hashtbl.find high (EdgeKey.of_edge e)))
    g.Graph.edges

let buffer_bytes g firings =
  List.fold_left
    (fun acc (_, occ) -> acc + (occ * Types.elem_size_bytes))
    0
    (buffer_occupancy g firings)
