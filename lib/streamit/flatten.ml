open Types

type builder = {
  mutable nodes : Graph.node list; (* reversed *)
  mutable edges : Graph.edge list;
  mutable next : int;
}

let add_node b name kind =
  let id = b.next in
  b.next <- id + 1;
  b.nodes <- { Graph.id; name; kind } :: b.nodes;
  id

(* Connect producer port -> consumer port, seeding the zero history a
   peeking consumer needs. *)
let connect b (src, src_port) (dst, dst_port) ~dst_kind ?(extra_init = []) () =
  let peek_zeros =
    match dst_kind with
    | Graph.NFilter f when Kernel.is_peeking f ->
      List.init
        (f.Kernel.peek_rate - f.Kernel.pop_rate)
        (fun _ -> zero_of f.Kernel.in_ty)
    | _ -> []
  in
  let init_values = extra_init @ peek_zeros in
  b.edges <-
    {
      Graph.src;
      src_port;
      dst;
      dst_port;
      init_tokens = List.length init_values;
      init_values;
    }
    :: b.edges

let kind_of b id =
  let rec find = function
    | [] -> assert false
    | (n : Graph.node) :: rest -> if n.id = id then n.kind else find rest
  in
  find b.nodes

(* Returns (input_conn, output_conn): where this sub-stream consumes from /
   produces to, or None when it is a pure source / sink. *)
let rec flat b stream : (int * int) option * (int * int) option =
  match stream with
  | Ast.Filter f ->
    let id = add_node b f.Kernel.name (Graph.NFilter f) in
    let inp = if f.Kernel.pop_rate > 0 then Some (id, 0) else None in
    let out = if f.Kernel.push_rate > 0 then Some (id, 0) else None in
    (inp, out)
  | Ast.Pipeline (name, children) ->
    if children = [] then failwith (name ^ ": empty pipeline");
    let conns = List.map (flat b) children in
    let rec link = function
      | (_, out1) :: ((in2, _) :: _ as rest) ->
        (match (out1, in2) with
        | Some o, Some i ->
          connect b o i ~dst_kind:(kind_of b (fst i)) ()
        | None, None -> ()
        | None, Some _ ->
          failwith (name ^ ": pipeline stage expects input but none produced")
        | Some _, None ->
          failwith (name ^ ": pipeline stage output is dropped"));
        link rest
      | _ -> ()
    in
    link conns;
    (fst (List.hd conns), snd (List.nth conns (List.length conns - 1)))
  | Ast.Split_join (name, sp, branches, jw) ->
    let k = List.length branches in
    if k = 0 then failwith (name ^ ": empty split-join");
    let split_id = add_node b ("split_" ^ name) (Graph.NSplitter (sp, k)) in
    let join_id = add_node b ("join_" ^ name) (Graph.NJoiner jw) in
    List.iteri
      (fun i branch ->
        match flat b branch with
        | Some inp, Some out ->
          connect b (split_id, i) inp ~dst_kind:(kind_of b (fst inp)) ();
          connect b out (join_id, i) ~dst_kind:(Graph.NJoiner jw) ()
        | None, _ -> failwith (name ^ ": split-join branch consumes no input")
        | _, None -> failwith (name ^ ": split-join branch produces no output"))
      branches;
    (Some (split_id, 0), Some (join_id, 0))
  | Ast.Feedback_loop { name; join_weights = j1, j2; body; split_weights = s1, s2; delay }
    ->
    let join_id = add_node b ("join_" ^ name) (Graph.NJoiner [ j1; j2 ]) in
    let split_id =
      add_node b ("split_" ^ name)
        (Graph.NSplitter (Ast.Round_robin [ s1; s2 ], 2))
    in
    (match flat b body with
    | Some inp, Some out ->
      connect b (join_id, 0) inp ~dst_kind:(kind_of b (fst inp)) ();
      connect b out (split_id, 0)
        ~dst_kind:(Graph.NSplitter (Ast.Round_robin [ s1; s2 ], 2))
        ()
    | _ -> failwith (name ^ ": feedback body must consume and produce"));
    (* loop-back edge carries the delay tokens *)
    connect b (split_id, 1) (join_id, 1) ~dst_kind:(Graph.NJoiner [ j1; j2 ])
      ~extra_init:delay ();
    (Some (join_id, 0), Some (split_id, 0))

let m_flattens = Obs.Metrics.counter "flatten.runs"
let g_nodes = Obs.Metrics.gauge "flatten.nodes"
let g_edges = Obs.Metrics.gauge "flatten.edges"

let flatten stream =
  Obs.Trace.with_span "flatten" (fun () ->
      let b = { nodes = []; edges = []; next = 0 } in
      let inp, out = flat b stream in
      let nodes = Array.of_list (List.rev b.nodes) in
      let g =
        {
          Graph.nodes;
          edges = List.rev b.edges;
          entry = Option.map fst inp;
          exit_ = Option.map fst out;
        }
      in
      (match Graph.validate g with
      | Ok () -> ()
      | Error m -> failwith ("Flatten: produced invalid graph: " ^ m));
      Obs.Metrics.inc m_flattens;
      Obs.Metrics.set g_nodes (float_of_int (Array.length nodes));
      Obs.Metrics.set g_edges (float_of_int (List.length g.Graph.edges));
      Obs.Trace.add_attr "nodes" (Obs.Trace.Int (Array.length nodes));
      Obs.Trace.add_attr "edges"
        (Obs.Trace.Int (List.length g.Graph.edges));
      g)
