(* Ring buffer that doubles on overflow. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of next pop *)
  mutable len : int;
  mutable pushed : int;
  mutable popped : int;
  mutable high : int;
}

let create () =
  { buf = Array.make 16 None; head = 0; len = 0; pushed = 0; popped = 0; high = 0 }

let length q = q.len
let is_empty q = q.len = 0

let grow q =
  let cap = Array.length q.buf in
  let nbuf = Array.make (cap * 2) None in
  for i = 0 to q.len - 1 do
    nbuf.(i) <- q.buf.((q.head + i) mod cap)
  done;
  q.buf <- nbuf;
  q.head <- 0

let push q x =
  if q.len = Array.length q.buf then grow q;
  let cap = Array.length q.buf in
  q.buf.((q.head + q.len) mod cap) <- Some x;
  q.len <- q.len + 1;
  q.pushed <- q.pushed + 1;
  if q.len > q.high then q.high <- q.len

let pop q =
  if q.len = 0 then invalid_arg "Fifo.pop: empty";
  let cap = Array.length q.buf in
  match q.buf.(q.head) with
  | None -> assert false
  | Some x ->
    q.buf.(q.head) <- None;
    q.head <- (q.head + 1) mod cap;
    q.len <- q.len - 1;
    q.popped <- q.popped + 1;
    x

let peek q n =
  if n < 0 || n >= q.len then invalid_arg "Fifo.peek: out of range";
  match q.buf.((q.head + n) mod Array.length q.buf) with
  | Some x -> x
  | None -> assert false

let pop_many q n = List.init n (fun _ -> pop q)
let push_many q l = List.iter (push q) l
let to_list q = List.init q.len (peek q)

let clear q =
  Array.fill q.buf 0 (Array.length q.buf) None;
  q.head <- 0;
  q.len <- 0;
  q.pushed <- 0;
  q.popped <- 0;
  q.high <- 0

let total_pushed q = q.pushed
let total_popped q = q.popped
let max_occupancy q = q.high
