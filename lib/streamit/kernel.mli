(** Work-function IR for StreamIt filters.

    Filters manipulate their FIFOs exclusively through [pop()], [push(e)]
    and [peek(n)] (Sec. II-B of the paper).  The rest of the language is a
    small imperative kernel language — scalars, fixed-size local arrays,
    constant tables, arithmetic, bounded loops and conditionals — rich
    enough to express all eight evaluated benchmarks (bitonic compare-
    exchange networks, DCT butterflies, DES rounds, FFT, FIR banks, FM
    demodulation, blocked matrix multiply).

    The module also provides the static analyses the compiler needs:
    rate inference (to cross-check declared push/pop/peek rates), an
    operation-cost summary (consumed by the GPU simulator's timing model)
    and a register-pressure estimate (standing in for nvcc's allocator in
    the profiling phase of Fig. 6). *)

open Types

(** {1 Expressions and statements} *)

type unop =
  | Neg
  | Not        (** logical not on ints *)
  | BitNot
  | Sin
  | Cos
  | Sqrt
  | Exp
  | Log
  | Abs
  | ToFloat
  | ToInt      (** truncation *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | BitAnd | BitOr | BitXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Min | Max

type expr =
  | Const of value
  | Var of string
  | ArrayRef of string * expr    (** local array element *)
  | TableRef of string * expr    (** filter constant table element *)
  | Pop
  | Peek of expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr   (** ternary; condition is an int *)

type stmt =
  | Let of string * expr                   (** declare + initialise scalar *)
  | Assign of string * expr
  | DeclArray of string * int              (** zero-initialised local array *)
  | ArrayAssign of string * expr * expr
  | Push of expr
  | If of expr * stmt list * stmt list
  | For of string * expr * expr * stmt list
      (** [For (i, lo, hi, body)] runs [i] from [lo] to [hi - 1]; loop
          bounds must be compile-time constants for rate inference to
          succeed when the body pushes or pops. *)

(** {1 Filters} *)

type filter = {
  name : string;
  pop_rate : int;
  push_rate : int;
  peek_rate : int;  (** >= pop_rate; equals pop_rate for non-peeking filters *)
  in_ty : elem_ty;
  out_ty : elem_ty;
  tables : (string * value array) list;
      (** read-only coefficient tables (FIR taps, DES S-boxes, ...) *)
  state : (string * value array) list;
      (** persistent mutable arrays carried across firings — the initial
          values of a {e stateful} filter's state (Sec. II-B).  Stateful
          filters serialize their instances and forgo data parallelism;
          supporting them is the paper's stated future work, implemented
          here as an extension. *)
  work : stmt list;
}

val make_filter :
  name:string ->
  ?pop:int ->
  ?push:int ->
  ?peek:int ->
  ?in_ty:elem_ty ->
  ?out_ty:elem_ty ->
  ?tables:(string * value array) list ->
  ?state:(string * value array) list ->
  stmt list ->
  filter
(** Defaults: [pop = 0], [push = 0], [peek = pop], both types [TFloat],
    stateless.
    @raise Invalid_argument if [peek < pop] or rates are negative. *)

val is_peeking : filter -> bool
val is_stateful : filter -> bool

val is_source : filter -> bool
(** [pop_rate = 0] *)

val is_sink : filter -> bool
(** [push_rate = 0] *)

(** {1 Identity / utility filters} *)

val identity : ?ty:elem_ty -> unit -> filter
(** pop 1, push 1, forwards the token. *)

(** {1 Static analyses} *)

val infer_rates : stmt list -> (int * int * int, string) result
(** [infer_rates body] returns [(pops, pushes, max_peek_depth)] for one
    execution of the body, or [Error] if counts are not statically fixed
    (data-dependent loop bounds, or branches that pop/push unequally). *)

val check_filter : filter -> (unit, string) result
(** Validates declared rates against {!infer_rates}, table references, and
    scoping of variables. *)

type op_cost = {
  alu : int;       (** adds, compares, bit ops *)
  mul : int;
  divmod : int;
  special : int;   (** sin/cos/sqrt/exp/log *)
  mem : int;       (** local array + table accesses *)
  channel : int;   (** pushes + pops + peeks (device-memory traffic) *)
}

val zero_cost : op_cost
val add_cost : op_cost -> op_cost -> op_cost
val scale_cost : int -> op_cost -> op_cost

val cost_of_filter : filter -> op_cost
(** Operation counts for one firing; loop bodies are multiplied by trip
    count, conditional branches contribute the max of the two sides. *)

val estimate_registers : filter -> int
(** Heuristic per-thread register-pressure estimate (stands in for nvcc):
    base overhead + live scalars + deepest expression tree.  Clamped to
    [4, 128]. *)

val rename : (string -> string) -> filter -> filter
(** Renames all identifiers (locals, tables); used when fusing or when
    emitting all filters into a single CUDA compilation unit. *)

val alpha_canonical : filter -> filter
(** Semantics-preserving canonical form: identifiers renamed to
    ["x0"], ["x1"], ... in first-appearance order and the display name
    dropped, so filters differing only in naming compare structurally
    equal.  Used as a name-irrelevant memo/cache key component. *)

val string_of_unop : unop -> string
val string_of_binop : binop -> string

val pp_stmt : Format.formatter -> stmt -> unit
val pp_filter : Format.formatter -> filter -> unit

(** {1 Builder combinators} *)

(** Expression/statement builders.  The infix operators are suffixed with
    [:] so that opening the module never shadows OCaml's own arithmetic —
    benchmark definitions freely mix host-level and kernel-level math. *)
module Build : sig
  val i : int -> expr
  val f : float -> expr
  val v : string -> expr
  val ( +: ) : expr -> expr -> expr
  val ( -: ) : expr -> expr -> expr
  val ( *: ) : expr -> expr -> expr
  val ( /: ) : expr -> expr -> expr
  val ( %: ) : expr -> expr -> expr
  val ( <: ) : expr -> expr -> expr
  val ( <=: ) : expr -> expr -> expr
  val ( >: ) : expr -> expr -> expr
  val ( >=: ) : expr -> expr -> expr
  val ( =: ) : expr -> expr -> expr
  val ( <>: ) : expr -> expr -> expr
  val ( &: ) : expr -> expr -> expr
  (** bitwise and *)

  val ( |: ) : expr -> expr -> expr
  (** bitwise or *)

  val ( ^: ) : expr -> expr -> expr
  (** bitwise xor *)

  val ( <<: ) : expr -> expr -> expr
  (** shift left *)

  val ( >>: ) : expr -> expr -> expr
  (** logical shift right *)

  val emin : expr -> expr -> expr
  val emax : expr -> expr -> expr
  val neg : expr -> expr
  val pop : expr
  val peek : expr -> expr
  val push : expr -> stmt
  val let_ : string -> expr -> stmt
  val set : string -> expr -> stmt
  val arr : string -> int -> stmt
  val seti : string -> expr -> expr -> stmt
  val geti : string -> expr -> expr
  val tbl : string -> expr -> expr
  val if_ : expr -> stmt list -> stmt list -> stmt
  val for_ : string -> expr -> expr -> stmt list -> stmt
end
