(* OpenCL and Metal backend printers.

   Both are C dialects, so they share one statement-level printer that
   differs from the CUDA one only in surface details:

   - math builtins are overloaded (sin, not sinf; fabs, not fabsf);
   - OpenCL: [__kernel]/[__global]/[__local], ids via get_local_id /
     get_group_id, [barrier(CLK_LOCAL_MEM_FENCE)].  Program-scope
     mutable state uses a [__global] variable, which requires OpenCL C
     2.0 (noted in the emitted header).
   - Metal: [kernel]/[device]/[threadgroup] with [[buffer(n)]] binding
     attributes, ids via [[thread_position_in_threadgroup]] etc.,
     [threadgroup_barrier(mem_flags::mem_threadgroup)].  MSL has no
     program-scope mutable device storage, so filter state arrays are
     hoisted into extra kernel buffer parameters and threaded through
     to the work functions; the host must pre-initialize them (the
     initializers are listed in the emitted launch comment).

   Neither target can be compiled in CI; the structural linter plus
   the KIR-eval oracle leg carry correctness (see DESIGN.md §16). *)

open Streamit

type dialect = Opencl | Metal

let ident = Ir.c_ident
let c_ty = Print_cuda.c_ty
let c_value = Print_cuda.c_value
let read_index = Print_cuda.read_index

let unop_c (op : Kernel.unop) arg =
  match op with
  | Kernel.Neg -> Printf.sprintf "(-%s)" arg
  | Kernel.Not -> Printf.sprintf "(!%s)" arg
  | Kernel.BitNot -> Printf.sprintf "(~%s)" arg
  | Kernel.Sin -> Printf.sprintf "sin(%s)" arg
  | Kernel.Cos -> Printf.sprintf "cos(%s)" arg
  | Kernel.Sqrt -> Printf.sprintf "sqrt(%s)" arg
  | Kernel.Exp -> Printf.sprintf "exp(%s)" arg
  | Kernel.Log -> Printf.sprintf "log(%s)" arg
  | Kernel.Abs -> Printf.sprintf "fabs(%s)" arg
  | Kernel.ToFloat -> Printf.sprintf "((float)%s)" arg
  | Kernel.ToInt -> Printf.sprintf "((int)%s)" arg

let binop_c = Print_cuda.binop_c

(* State buffer parameters a filter needs when the dialect cannot hold
   mutable program-scope storage (Metal): (param name, elem ty, values). *)
let state_params (f : Kernel.filter) =
  let table_prefix = ident f.Kernel.name ^ "_" in
  List.map
    (fun (sname, values) ->
      let ty =
        match values with
        | [||] -> "float"
        | _ -> c_ty (Types.ty_of_value values.(0))
      in
      (table_prefix ^ ident sname, ty, values))
    f.Kernel.state

let emit_values buf values =
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (c_value v))
    values

(* Tables (and, for OpenCL, state) at program scope. *)
let emit_globals dialect buf (f : Kernel.filter) =
  let table_prefix = ident f.Kernel.name ^ "_" in
  let const_qual = match dialect with Opencl -> "__constant" | Metal -> "constant" in
  List.iter
    (fun (tname, values) ->
      let ty =
        match values with
        | [||] -> "float"
        | _ -> c_ty (Types.ty_of_value values.(0))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s%s[%d] = { " const_qual ty table_prefix
           (ident tname) (Array.length values));
      emit_values buf values;
      Buffer.add_string buf " };\n")
    f.Kernel.tables;
  match dialect with
  | Opencl ->
    List.iter
      (fun (sname, values) ->
        let ty =
          match values with
          | [||] -> "float"
          | _ -> c_ty (Types.ty_of_value values.(0))
        in
        Buffer.add_string buf
          (Printf.sprintf "__global %s %s%s[%d] = { " ty table_prefix
             (ident sname) (Array.length values));
        emit_values buf values;
        Buffer.add_string buf " };\n")
      f.Kernel.state
  | Metal -> () (* state arrives as kernel buffer parameters *)

let fn_of_filter dialect ?(style = Ir.Coalesced) ~fn_name (f : Kernel.filter) =
  let buf = Buffer.create 1024 in
  let table_prefix = ident f.Kernel.name ^ "_" in
  emit_globals dialect buf f;
  let in_ty = c_ty f.Kernel.in_ty and out_ty = c_ty f.Kernel.out_ty in
  (match dialect with
  | Opencl ->
    Buffer.add_string buf
      (Printf.sprintf
         "static void %s(__global const %s* in, __global %s* out, int tid)\n{\n"
         fn_name in_ty out_ty)
  | Metal ->
    let extra =
      state_params f
      |> List.map (fun (name, ty, _) -> Printf.sprintf ", device %s* %s" ty name)
      |> String.concat ""
    in
    Buffer.add_string buf
      (Printf.sprintf
         "static void %s(const device %s* in, device %s* out, int tid%s)\n{\n"
         fn_name in_ty out_ty extra));
  Buffer.add_string buf "  int _pop = 0;\n  int _push = 0;\n";
  let tmp_counter = ref 0 in
  let fresh_tmp () =
    incr tmp_counter;
    Printf.sprintf "_t%d" !tmp_counter
  in
  let indent d = String.make (2 * (d + 1)) ' ' in
  let rec lower ~in_cond pre = function
    | Kernel.Const v -> (pre, c_value v)
    | Kernel.Var x -> (pre, ident x)
    | Kernel.ArrayRef (a, i) ->
      let pre, ci = lower ~in_cond pre i in
      let name =
        if List.mem_assoc a f.Kernel.state then table_prefix ^ ident a
        else ident a
      in
      (pre, Printf.sprintf "%s[%s]" name ci)
    | Kernel.TableRef (t, i) ->
      let pre, ci = lower ~in_cond pre i in
      (pre, Printf.sprintf "%s%s[%s]" table_prefix (ident t) ci)
    | Kernel.Pop ->
      if in_cond then
        raise (Ir.Unsupported "pop() inside a conditional-expression arm");
      let t = fresh_tmp () in
      let idx = read_index style ~rate:(max 1 f.Kernel.pop_rate) ~n_expr:"_pop" in
      let line = Printf.sprintf "%s %s = in[%s]; _pop++;" in_ty t idx in
      (line :: pre, t)
    | Kernel.Peek d ->
      let pre, cd = lower ~in_cond pre d in
      let idx =
        read_index style ~rate:(max 1 f.Kernel.pop_rate)
          ~n_expr:(Printf.sprintf "_pop + (%s)" cd)
      in
      (pre, Printf.sprintf "in[%s]" idx)
    | Kernel.Unop (op, e) ->
      let pre, ce = lower ~in_cond pre e in
      (pre, unop_c op ce)
    | Kernel.Binop (op, a, b) ->
      let pre, ca = lower ~in_cond pre a in
      let pre, cb = lower ~in_cond pre b in
      (pre, binop_c op ca cb)
    | Kernel.Cond (c, a, b) ->
      let pre, cc = lower ~in_cond pre c in
      let pre, ca = lower ~in_cond:true pre a in
      let pre, cb = lower ~in_cond:true pre b in
      (pre, Printf.sprintf "(%s ? %s : %s)" cc ca cb)
  in
  let flush_pre d pre =
    List.iter
      (fun line -> Buffer.add_string buf (indent d ^ line ^ "\n"))
      (List.rev pre)
  in
  let declared = Hashtbl.create 16 in
  let rec stmt d s =
    match s with
    | Kernel.Let (x, e) ->
      let pre, ce = lower ~in_cond:false [] e in
      flush_pre d pre;
      let x' = ident x in
      if Hashtbl.mem declared x' then
        Buffer.add_string buf (Printf.sprintf "%s%s = %s;\n" (indent d) x' ce)
      else begin
        Hashtbl.replace declared x' ();
        let ty =
          let rec is_int = function
            | Kernel.Const (Types.VInt _) -> true
            | Kernel.Const (Types.VFloat _) -> false
            | Kernel.Pop | Kernel.Peek _ -> f.Kernel.in_ty = Types.TInt
            | Kernel.Var _ -> false
            | Kernel.ArrayRef _ -> false
            | Kernel.TableRef _ -> false
            | Kernel.Unop (Kernel.ToInt, _) -> true
            | Kernel.Unop (Kernel.ToFloat, _) -> false
            | Kernel.Unop (_, e) -> is_int e
            | Kernel.Binop ((Kernel.Eq | Kernel.Ne | Kernel.Lt | Kernel.Le
                            | Kernel.Gt | Kernel.Ge), _, _) -> true
            | Kernel.Binop ((Kernel.BitAnd | Kernel.BitOr | Kernel.BitXor
                            | Kernel.Shl | Kernel.Shr | Kernel.Mod), _, _) ->
              true
            | Kernel.Binop (_, a, b) -> is_int a && is_int b
            | Kernel.Cond (_, a, b) -> is_int a && is_int b
          in
          if is_int e then "int" else "float"
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s = %s;\n" (indent d) ty x' ce)
      end
    | Kernel.Assign (x, e) ->
      let pre, ce = lower ~in_cond:false [] e in
      flush_pre d pre;
      Buffer.add_string buf
        (Printf.sprintf "%s%s = %s;\n" (indent d) (ident x) ce)
    | Kernel.DeclArray (a, n) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s[%d] = {0};\n" (indent d) out_ty (ident a) n)
    | Kernel.ArrayAssign (a, i, e) ->
      let pre, ci = lower ~in_cond:false [] i in
      let pre, ce = lower ~in_cond:false pre e in
      flush_pre d pre;
      let aname =
        if List.mem_assoc a f.Kernel.state then table_prefix ^ ident a
        else ident a
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s[%s] = %s;\n" (indent d) aname ci ce)
    | Kernel.Push e ->
      let pre, ce = lower ~in_cond:false [] e in
      flush_pre d pre;
      let idx =
        read_index style ~rate:(max 1 f.Kernel.push_rate) ~n_expr:"_push"
      in
      Buffer.add_string buf
        (Printf.sprintf "%sout[%s] = %s; _push++;\n" (indent d) idx ce)
    | Kernel.If (c, th, el) ->
      let pre, cc = lower ~in_cond:false [] c in
      flush_pre d pre;
      Buffer.add_string buf (Printf.sprintf "%sif (%s) {\n" (indent d) cc);
      List.iter (stmt (d + 1)) th;
      if el <> [] then begin
        Buffer.add_string buf (Printf.sprintf "%s} else {\n" (indent d));
        List.iter (stmt (d + 1)) el
      end;
      Buffer.add_string buf (Printf.sprintf "%s}\n" (indent d))
    | Kernel.For (x, lo, hi, body) ->
      let pre, clo = lower ~in_cond:false [] lo in
      let pre, chi = lower ~in_cond:false pre hi in
      flush_pre d pre;
      let x' = ident x in
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int %s = %s; %s < %s; %s++) {\n" (indent d) x'
           clo x' chi x');
      List.iter (stmt (d + 1)) body;
      Buffer.add_string buf (Printf.sprintf "%s}\n" (indent d))
  in
  List.iter (stmt 0) f.Kernel.work;
  Buffer.add_string buf "  (void)_pop; (void)_push;\n}\n";
  Buffer.contents buf

(* All Metal state buffer params of the program, in work-function
   order — the order they are appended to the kernel signature. *)
let program_state_params (p : Ir.program) =
  List.concat_map (fun (w : Ir.work_fn) -> state_params w.Ir.w_filter)
    p.Ir.work_fns

let print dialect (p : Ir.program) =
  let buf = Buffer.create 16384 in
  let h = p.Ir.header in
  Buffer.add_string buf
    (Printf.sprintf
       "/* streamit_gpu artifact (%s)\n\
       \ * quality: %s (%s)\n\
       \ * II: %d (lower bound %d, binding %s)\n\
       \ * schedule signature: %s\n"
       (match dialect with Opencl -> "opencl" | Metal -> "metal")
       h.Ir.h_quality h.Ir.h_rationale h.Ir.h_ii h.Ir.h_lower_bound
       h.Ir.h_binding h.Ir.h_signature);
  (match dialect with
  | Opencl ->
    Buffer.add_string buf
      " * program-scope __global state requires OpenCL C 2.0\n */\n\n"
  | Metal ->
    Buffer.add_string buf " */\n#include <metal_stdlib>\nusing namespace metal;\n\n");
  (* per-node region-offset helpers *)
  List.iter
    (fun (v, tokens) ->
      Buffer.add_string buf
        (Printf.sprintf
           "static inline int region_%d(int it) { return ((it %% %d) + %d) \
            %% %d * %d; }\n"
           v p.Ir.ring p.Ir.ring p.Ir.ring tokens))
    p.Ir.regions;
  Buffer.add_char buf '\n';
  (* work functions *)
  List.iter
    (fun (w : Ir.work_fn) ->
      Buffer.add_string buf
        (fn_of_filter dialect ~style:p.Ir.style ~fn_name:w.Ir.w_name
           w.Ir.w_filter);
      Buffer.add_char buf '\n')
    p.Ir.work_fns;
  (* kernel signature *)
  let n_bufs = Array.length p.Ir.buffers in
  (match dialect with
  | Opencl ->
    let params =
      (List.map
         (fun (b : Ir.buffer) -> Printf.sprintf "__global float* %s" b.Ir.b_name)
         (Array.to_list p.Ir.buffers)
      @ [ "__global const float* stream_in"; "__global float* stream_out";
          "int iterations" ])
      |> String.concat ", "
    in
    Buffer.add_string buf
      (Printf.sprintf "__kernel void swp_kernel(%s)\n{\n" params);
    Buffer.add_string buf
      "  int tid = (int)get_local_id(0);\n  int sm = (int)get_group_id(0);\n"
  | Metal ->
    let state = program_state_params p in
    let params =
      List.mapi
        (fun i (b : Ir.buffer) ->
          Printf.sprintf "device float* %s [[buffer(%d)]]" b.Ir.b_name i)
        (Array.to_list p.Ir.buffers)
      @ [ Printf.sprintf "const device float* stream_in [[buffer(%d)]]" n_bufs;
          Printf.sprintf "device float* stream_out [[buffer(%d)]]" (n_bufs + 1);
          Printf.sprintf "constant int& iterations [[buffer(%d)]]" (n_bufs + 2)
        ]
      @ List.mapi
          (fun j (name, ty, _) ->
            Printf.sprintf "device %s* %s [[buffer(%d)]]" ty name
              (n_bufs + 3 + j))
          state
      @ [ "uint tid_u [[thread_position_in_threadgroup]]";
          "uint sm_u [[threadgroup_position_in_grid]]" ]
    in
    Buffer.add_string buf
      (Printf.sprintf "kernel void swp_kernel(%s)\n{\n"
         (String.concat ",\n                       " params));
    Buffer.add_string buf "  int tid = (int)tid_u;\n  int sm = (int)sm_u;\n");
  let shared_qual = match dialect with Opencl -> "__local" | Metal -> "threadgroup" in
  let barrier =
    match dialect with
    | Opencl -> "barrier(CLK_LOCAL_MEM_FENCE);"
    | Metal -> "threadgroup_barrier(mem_flags::mem_threadgroup);"
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  /* staging predicates, one per pipeline stage (depth %d) */\n\
       \  %s int stage_on[%d];\n\
       \  if (tid == 0) for (int s = 0; s < %d; s++) stage_on[s] = 0;\n\
       \  %s\n"
       p.Ir.stages shared_qual p.Ir.stages p.Ir.stages barrier);
  Buffer.add_string buf
    (Printf.sprintf
       "  for (int it = 0; it < iterations + %d; it++) {\n\
       \    if (tid == 0) { for (int s = %d; s > 0; s--) stage_on[s] = \
        stage_on[s-1]; stage_on[0] = (it < iterations); }\n\
       \    %s\n"
       p.Ir.stages (p.Ir.stages - 1) barrier);
  Buffer.add_string buf "    switch (sm) {\n";
  let fn_of_node = Hashtbl.create 16 in
  List.iter
    (fun (w : Ir.work_fn) -> Hashtbl.replace fn_of_node w.Ir.w_node w)
    p.Ir.work_fns;
  List.iter
    (fun (c : Ir.sm_case) ->
      Buffer.add_string buf (Printf.sprintf "    case %d: {\n" c.Ir.sm);
      List.iter
        (fun (fr : Ir.fire) ->
          let w = Hashtbl.find fn_of_node fr.Ir.f_node in
          let extra =
            match dialect with
            | Opencl -> ""
            | Metal ->
              state_params w.Ir.w_filter
              |> List.map (fun (name, _, _) -> ", " ^ name)
              |> String.concat ""
          in
          Buffer.add_string buf
            (Printf.sprintf
               "      /* (%s, k=%d) o=%d f=%d threads=%d */\n\
               \      if (stage_on[%d] && tid < %d)\n\
               \        %s(%s + region_%d(it - %d), %s + region_%d(it - %d), \
                tid%s);\n"
               fr.Ir.f_name fr.Ir.f_k fr.Ir.f_o fr.Ir.f_stage fr.Ir.f_threads
               fr.Ir.f_stage fr.Ir.f_threads fr.Ir.f_fn w.Ir.w_in fr.Ir.f_node
               fr.Ir.f_stage w.Ir.w_out fr.Ir.f_node fr.Ir.f_stage extra))
        c.Ir.fires;
      Buffer.add_string buf "      break; }\n")
    p.Ir.cases;
  Buffer.add_string buf "    }\n    /* II boundary */\n  }\n}\n";
  (* host-launch notes in place of the CUDA main() *)
  (match dialect with
  | Opencl ->
    Buffer.add_string buf "\n/* host launch (OpenCL):\n";
    Buffer.add_string buf
      (Printf.sprintf
         " *   clEnqueueNDRangeKernel: global = %d x %d, local = %d\n"
         p.Ir.grid p.Ir.block p.Ir.block);
    List.iter
      (fun (name, bytes) ->
        Buffer.add_string buf
          (Printf.sprintf " *   clCreateBuffer %s: %d bytes\n" name bytes))
      p.Ir.allocs;
    Buffer.add_string buf
      (Printf.sprintf
         " *   stream_in/stream_out: 1 << 20 bytes, input shuffled per eq. \
          (9); iterations = %d\n */\n"
         p.Ir.iterations)
  | Metal ->
    Buffer.add_string buf "\n/* host launch (Metal):\n";
    Buffer.add_string buf
      (Printf.sprintf
         " *   dispatchThreadgroups: %d threadgroups x %d threads\n" p.Ir.grid
         p.Ir.block);
    List.iter
      (fun (name, bytes) ->
        Buffer.add_string buf
          (Printf.sprintf " *   newBuffer %s: %d bytes\n" name bytes))
      p.Ir.allocs;
    Buffer.add_string buf
      (Printf.sprintf
         " *   stream_in/stream_out: 1 << 20 bytes, input shuffled per eq. \
          (9); iterations = %d\n"
         p.Ir.iterations);
    List.iter
      (fun (name, ty, values) ->
        Buffer.add_string buf
          (Printf.sprintf " *   pre-initialize %s (%s[%d]) = { " name ty
             (Array.length values));
        let b2 = Buffer.create 64 in
        emit_values b2 values;
        Buffer.add_buffer buf b2;
        Buffer.add_string buf " }\n")
      (program_state_params p);
    Buffer.add_string buf " */\n");
  Buffer.contents buf
