(* Direct execution of a lowered {!Ir.program} — the fuzzer's fourth
   oracle leg.

   This interprets the IR the backends print: the same ring-buffer
   address maps (eqs. (9)-(11) via [Buffer_layout.addr_of_token]), the
   same staging discipline (kernel iteration [w] runs stage [f]'s fires
   on steady state [w - f]), the same per-SM fire lists.  It shares no
   code with [Swp_core.Funcsim] (which walks the compiled value), so a
   lowering bug that drops or misaddresses a buffer shows up as a
   divergence against the interpreter even though both backends print
   syntactically plausible kernels.

   Fidelity note: like [Funcsim], the ring here has [stages + 2]
   regions while the printed kernels use [stages + 1]; the extra
   region keeps producer/consumer of the same kernel iteration from
   aliasing under the evaluator's sequential fire order.  The printed
   ring is safe because real execution overlaps stages within one
   barrier interval; see DESIGN.md §16. *)

open Streamit
open Types

exception Uninitialized_read of string

type chan = {
  cbuf : Ir.buffer;
  inst_tokens : int;  (* one producer instance: rate x threads *)
  init : value array;
  regions : int;
  store : value option array;
}

let addr_of_produced ch s =
  let iter = s / ch.cbuf.Ir.b_region_tokens in
  let within = s mod ch.cbuf.Ir.b_region_tokens in
  let inst = within / ch.inst_tokens in
  let off = within mod ch.inst_tokens in
  ((iter mod ch.regions) * ch.cbuf.Ir.b_region_tokens)
  + (inst * ch.inst_tokens)
  + Swp_core.Buffer_layout.addr_of_token ~push_rate:ch.cbuf.Ir.b_prod_rate
      ~threads:ch.cbuf.Ir.b_prod_threads off

let write_chan ch s v = ch.store.(addr_of_produced ch s) <- Some v

(* [c] is in *consumed* stream coordinates: initial tokens first. *)
let read_chan ch c =
  if c < Array.length ch.init then ch.init.(c)
  else begin
    let s = c - Array.length ch.init in
    match ch.store.(addr_of_produced ch s) with
    | Some v -> v
    | None ->
      raise
        (Uninitialized_read
           (Printf.sprintf "buffer %s token %d" ch.cbuf.Ir.b_name s))
  end

let run (p : Ir.program) ~input ~iters =
  let regions = p.Ir.stages + 2 in
  let chans =
    Array.map
      (fun (b : Ir.buffer) ->
        {
          cbuf = b;
          inst_tokens = b.Ir.b_prod_rate * b.Ir.b_prod_threads;
          init = Array.of_list b.Ir.b_init;
          regions;
          store = Array.make (regions * b.Ir.b_region_tokens) None;
        })
      p.Ir.buffers
  in
  let chan = function
    | Ir.Chan i -> Some chans.(i)
    | Ir.External -> None
  in
  (* per-node lowered filter (for push/pop rates and stateful state) *)
  let filters = Hashtbl.create 16 in
  List.iter
    (fun (w : Ir.work_fn) -> Hashtbl.replace filters w.Ir.w_node w.Ir.w_filter)
    p.Ir.work_fns;
  let exit_node =
    List.find_map
      (fun (w : Ir.work_fn) ->
        if w.Ir.w_out = "stream_out" then Some w.Ir.w_node else None)
      p.Ir.work_fns
  in
  (* threads/reps per node, read off any of its fires *)
  let shape = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.fire) ->
      Hashtbl.replace shape f.Ir.f_node (f.Ir.f_threads, f.Ir.f_reps))
    (List.concat_map (fun c -> c.Ir.fires) p.Ir.cases);
  let out_tokens_per_iter =
    match exit_node with
    | None -> 0
    | Some v ->
      let f = Hashtbl.find filters v in
      let threads, reps = Hashtbl.find shape v in
      f.Kernel.push_rate * threads * reps
  in
  let out_tape = Array.make (max 1 (out_tokens_per_iter * iters)) None in
  let node_state = Hashtbl.create 8 in
  List.iter
    (fun (w : Ir.work_fn) ->
      if Kernel.is_stateful w.Ir.w_filter then
        Hashtbl.replace node_state w.Ir.w_node
          (List.map
             (fun (n, a) -> (n, Array.copy a))
             w.Ir.w_filter.Kernel.state))
    p.Ir.work_fns;
  (* Execute one thread-firing of fire [fr] (instance (v, k)) in steady
     state [j]. *)
  let fire_thread (fr : Ir.fire) j tid =
    let v = fr.Ir.f_node in
    let threads = fr.Ir.f_threads in
    let reps = fr.Ir.f_reps in
    let in_base r = ((j * reps) + fr.Ir.f_k) * (r * threads) + (tid * r) in
    let out_base r = in_base r in
    let port_ref l port =
      match List.nth_opt l port with Some c -> c | None -> Ir.External
    in
    let read_port port r n =
      match chan (port_ref fr.Ir.f_ins port) with
      | Some ch -> read_chan ch (in_base r + n)
      | None -> input (in_base r + n)
    in
    let write_port port r n value =
      match chan (port_ref fr.Ir.f_outs port) with
      | Some ch -> write_chan ch (out_base r + n) value
      | None ->
        let idx = out_base r + n in
        if idx < Array.length out_tape then out_tape.(idx) <- Some value
    in
    match fr.Ir.f_kind with
    | Graph.NFilter _ ->
      let f = Hashtbl.find filters v in
      let pops = ref 0 in
      let pushes = ref 0 in
      let state =
        match Hashtbl.find_opt node_state v with Some s -> s | None -> []
      in
      Interp.exec_filter_firing ~state f
        ~pop:(fun () ->
          let value = read_port 0 f.Kernel.pop_rate !pops in
          incr pops;
          value)
        ~peek:(fun d -> read_port 0 f.Kernel.pop_rate (!pops + d))
        ~push:(fun value ->
          write_port 0 f.Kernel.push_rate !pushes value;
          incr pushes)
    | Graph.NSplitter (Ast.Duplicate, branches) ->
      let v0 = read_port 0 1 0 in
      for port = 0 to branches - 1 do
        write_port port 1 0 v0
      done
    | Graph.NSplitter (Ast.Round_robin ws, _) ->
      let sum = List.fold_left ( + ) 0 ws in
      let consumed = ref 0 in
      List.iteri
        (fun port w ->
          for n = 0 to w - 1 do
            write_port port w n (read_port 0 sum !consumed);
            incr consumed
          done)
        ws
    | Graph.NJoiner ws ->
      let sum = List.fold_left ( + ) 0 ws in
      let produced = ref 0 in
      List.iteri
        (fun port w ->
          for n = 0 to w - 1 do
            write_port 0 sum !produced (read_port port w n);
            incr produced
          done)
        ws
  in
  let ordered = Ir.ordered_fires p in
  for w = 0 to iters + p.Ir.stages - 1 do
    List.iter
      (fun (fr : Ir.fire) ->
        let j = w - fr.Ir.f_stage in
        if j >= 0 && j < iters then
          for tid = 0 to fr.Ir.f_threads - 1 do
            fire_thread fr j tid
          done)
      ordered
  done;
  if out_tokens_per_iter = 0 then []
  else
    List.init (out_tokens_per_iter * iters) (fun i ->
        match out_tape.(i) with
        | Some v -> v
        | None ->
          raise
            (Uninitialized_read
               (Printf.sprintf "output token %d never written" i)))
