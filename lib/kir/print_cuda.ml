(* CUDA backend printer.

   This is the historical [Cudagen.Emit] + [Cudagen.Kernel_gen] text
   generator, re-driven by a lowered {!Ir.program}.  Its output is
   pinned byte-for-byte against the pre-refactor generator by the
   golden fixtures (test/fixtures/codegen/*.cu) — change nothing here
   without regenerating them on purpose. *)

open Streamit

let c_ident = Ir.c_ident

let work_fn_name f = "work_" ^ c_ident f.Kernel.name

let c_ty = function Types.TInt -> "int" | Types.TFloat -> "float"

let c_value = function
  | Types.VInt n -> string_of_int n
  | Types.VFloat x ->
    let s = Printf.sprintf "%.9gf" x in
    (* ensure a decimal point so the f suffix parses *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else String.sub s 0 (String.length s - 1) ^ ".0f"

(* Channel index expressions, Sec. IV-D. *)
let read_index (style : Ir.index_style) ~rate ~n_expr =
  match style with
  | Ir.Coalesced ->
    Printf.sprintf "(128 * (%s) + (tid / 128) * 128 * %d + (tid %% 128))"
      n_expr rate
  | Ir.Natural -> Printf.sprintf "(tid * %d + (%s))" rate n_expr

let unop_c (op : Kernel.unop) arg =
  match op with
  | Kernel.Neg -> Printf.sprintf "(-%s)" arg
  | Kernel.Not -> Printf.sprintf "(!%s)" arg
  | Kernel.BitNot -> Printf.sprintf "(~%s)" arg
  | Kernel.Sin -> Printf.sprintf "sinf(%s)" arg
  | Kernel.Cos -> Printf.sprintf "cosf(%s)" arg
  | Kernel.Sqrt -> Printf.sprintf "sqrtf(%s)" arg
  | Kernel.Exp -> Printf.sprintf "expf(%s)" arg
  | Kernel.Log -> Printf.sprintf "logf(%s)" arg
  | Kernel.Abs -> Printf.sprintf "fabsf(%s)" arg
  | Kernel.ToFloat -> Printf.sprintf "((float)%s)" arg
  | Kernel.ToInt -> Printf.sprintf "((int)%s)" arg

let binop_c (op : Kernel.binop) a b =
  let inf s = Printf.sprintf "(%s %s %s)" a s b in
  match op with
  | Kernel.Add -> inf "+"
  | Kernel.Sub -> inf "-"
  | Kernel.Mul -> inf "*"
  | Kernel.Div -> inf "/"
  | Kernel.Mod -> inf "%"
  | Kernel.BitAnd -> inf "&"
  | Kernel.BitOr -> inf "|"
  | Kernel.BitXor -> inf "^"
  | Kernel.Shl -> inf "<<"
  | Kernel.Shr -> inf ">>"
  | Kernel.Eq -> inf "=="
  | Kernel.Ne -> inf "!="
  | Kernel.Lt -> inf "<"
  | Kernel.Le -> inf "<="
  | Kernel.Gt -> inf ">"
  | Kernel.Ge -> inf ">="
  | Kernel.Min -> Printf.sprintf "min(%s, %s)" a b
  | Kernel.Max -> Printf.sprintf "max(%s, %s)" a b

(* Statement-level lowering.  [emit_stmt] returns lines; pops encountered
   in an expression are hoisted into fresh temporaries first (in
   left-to-right evaluation order), so the emitted C never relies on C's
   unspecified evaluation order. *)
let c_of_filter ?(style = Ir.Coalesced) ?fn_name (f : Kernel.filter) =
  let fn_name = match fn_name with Some n -> n | None -> work_fn_name f in
  let buf = Buffer.create 1024 in
  let table_prefix = c_ident f.Kernel.name ^ "_" in
  (* constant tables *)
  List.iter
    (fun (tname, values) ->
      let ty =
        match values with
        | [||] -> "float"
        | _ -> c_ty (Types.ty_of_value values.(0))
      in
      Buffer.add_string buf
        (Printf.sprintf "__constant__ %s %s%s[%d] = { " ty table_prefix
           (c_ident tname) (Array.length values));
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (c_value v))
        values;
      Buffer.add_string buf " };\n")
    f.Kernel.tables;
  (* persistent state lives in (mutable) device memory *)
  List.iter
    (fun (sname, values) ->
      let ty =
        match values with
        | [||] -> "float"
        | _ -> c_ty (Types.ty_of_value values.(0))
      in
      Buffer.add_string buf
        (Printf.sprintf "__device__ %s %s%s[%d] = { " ty table_prefix
           (c_ident sname) (Array.length values));
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (c_value v))
        values;
      Buffer.add_string buf " };\n")
    f.Kernel.state;
  let in_ty = c_ty f.Kernel.in_ty and out_ty = c_ty f.Kernel.out_ty in
  Buffer.add_string buf
    (Printf.sprintf
       "static __device__ void %s(const %s* in, %s* out, int tid)\n{\n"
       fn_name in_ty out_ty);
  Buffer.add_string buf "  int _pop = 0;\n  int _push = 0;\n";
  let tmp_counter = ref 0 in
  let fresh_tmp () =
    incr tmp_counter;
    Printf.sprintf "_t%d" !tmp_counter
  in
  let indent d = String.make (2 * (d + 1)) ' ' in
  (* Lower an expression to a C expression string, appending hoisted pop
     temporaries to [pre] (a list of lines, reversed). *)
  let rec lower ~in_cond pre = function
    | Kernel.Const v -> (pre, c_value v)
    | Kernel.Var x -> (pre, c_ident x)
    | Kernel.ArrayRef (a, i) ->
      let pre, ci = lower ~in_cond pre i in
      let name =
        if List.mem_assoc a f.Kernel.state then table_prefix ^ c_ident a
        else c_ident a
      in
      (pre, Printf.sprintf "%s[%s]" name ci)
    | Kernel.TableRef (t, i) ->
      let pre, ci = lower ~in_cond pre i in
      (pre, Printf.sprintf "%s%s[%s]" table_prefix (c_ident t) ci)
    | Kernel.Pop ->
      if in_cond then
        raise (Ir.Unsupported "pop() inside a conditional-expression arm");
      let t = fresh_tmp () in
      let idx = read_index style ~rate:(max 1 f.Kernel.pop_rate) ~n_expr:"_pop" in
      let line =
        Printf.sprintf "%s %s = in[%s]; _pop++;" in_ty t idx
      in
      (line :: pre, t)
    | Kernel.Peek d ->
      let pre, cd = lower ~in_cond pre d in
      let idx =
        read_index style ~rate:(max 1 f.Kernel.pop_rate)
          ~n_expr:(Printf.sprintf "_pop + (%s)" cd)
      in
      (pre, Printf.sprintf "in[%s]" idx)
    | Kernel.Unop (op, e) ->
      let pre, ce = lower ~in_cond pre e in
      (pre, unop_c op ce)
    | Kernel.Binop (op, a, b) ->
      let pre, ca = lower ~in_cond pre a in
      let pre, cb = lower ~in_cond pre b in
      (pre, binop_c op ca cb)
    | Kernel.Cond (c, a, b) ->
      let pre, cc = lower ~in_cond pre c in
      let pre, ca = lower ~in_cond:true pre a in
      let pre, cb = lower ~in_cond:true pre b in
      (pre, Printf.sprintf "(%s ? %s : %s)" cc ca cb)
  in
  let flush_pre d pre =
    List.iter
      (fun line -> Buffer.add_string buf (indent d ^ line ^ "\n"))
      (List.rev pre)
  in
  let declared = Hashtbl.create 16 in
  let rec stmt d s =
    match s with
    | Kernel.Let (x, e) ->
      let pre, ce = lower ~in_cond:false [] e in
      flush_pre d pre;
      let x' = c_ident x in
      if Hashtbl.mem declared x' then
        Buffer.add_string buf (Printf.sprintf "%s%s = %s;\n" (indent d) x' ce)
      else begin
        Hashtbl.replace declared x' ();
        (* infer a C type: float unless the expression is integral *)
        let ty =
          let rec is_int = function
            | Kernel.Const (Types.VInt _) -> true
            | Kernel.Const (Types.VFloat _) -> false
            | Kernel.Pop | Kernel.Peek _ -> f.Kernel.in_ty = Types.TInt
            | Kernel.Var _ -> false (* conservatively float *)
            | Kernel.ArrayRef _ -> false
            | Kernel.TableRef _ -> false
            | Kernel.Unop (Kernel.ToInt, _) -> true
            | Kernel.Unop (Kernel.ToFloat, _) -> false
            | Kernel.Unop (_, e) -> is_int e
            | Kernel.Binop ((Kernel.Eq | Kernel.Ne | Kernel.Lt | Kernel.Le
                            | Kernel.Gt | Kernel.Ge), _, _) -> true
            | Kernel.Binop ((Kernel.BitAnd | Kernel.BitOr | Kernel.BitXor
                            | Kernel.Shl | Kernel.Shr | Kernel.Mod), _, _) ->
              true
            | Kernel.Binop (_, a, b) -> is_int a && is_int b
            | Kernel.Cond (_, a, b) -> is_int a && is_int b
          in
          if is_int e then "int" else "float"
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s = %s;\n" (indent d) ty x' ce)
      end
    | Kernel.Assign (x, e) ->
      let pre, ce = lower ~in_cond:false [] e in
      flush_pre d pre;
      Buffer.add_string buf
        (Printf.sprintf "%s%s = %s;\n" (indent d) (c_ident x) ce)
    | Kernel.DeclArray (a, n) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s[%d] = {0};\n" (indent d) out_ty (c_ident a) n)
    | Kernel.ArrayAssign (a, i, e) ->
      let pre, ci = lower ~in_cond:false [] i in
      let pre, ce = lower ~in_cond:false pre e in
      flush_pre d pre;
      let aname =
        if List.mem_assoc a f.Kernel.state then table_prefix ^ c_ident a
        else c_ident a
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s[%s] = %s;\n" (indent d) aname ci ce)
    | Kernel.Push e ->
      let pre, ce = lower ~in_cond:false [] e in
      flush_pre d pre;
      let idx =
        read_index style ~rate:(max 1 f.Kernel.push_rate) ~n_expr:"_push"
      in
      Buffer.add_string buf
        (Printf.sprintf "%sout[%s] = %s; _push++;\n" (indent d) idx ce)
    | Kernel.If (c, th, el) ->
      let pre, cc = lower ~in_cond:false [] c in
      flush_pre d pre;
      Buffer.add_string buf (Printf.sprintf "%sif (%s) {\n" (indent d) cc);
      List.iter (stmt (d + 1)) th;
      if el <> [] then begin
        Buffer.add_string buf (Printf.sprintf "%s} else {\n" (indent d));
        List.iter (stmt (d + 1)) el
      end;
      Buffer.add_string buf (Printf.sprintf "%s}\n" (indent d))
    | Kernel.For (x, lo, hi, body) ->
      let pre, clo = lower ~in_cond:false [] lo in
      let pre, chi = lower ~in_cond:false pre hi in
      flush_pre d pre;
      let x' = c_ident x in
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int %s = %s; %s < %s; %s++) {\n" (indent d) x'
           clo x' chi x');
      List.iter (stmt (d + 1)) body;
      Buffer.add_string buf (Printf.sprintf "%s}\n" (indent d))
  in
  List.iter (stmt 0) f.Kernel.work;
  Buffer.add_string buf "  (void)_pop; (void)_push;\n}\n";
  Buffer.contents buf

let work_functions (p : Ir.program) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (w : Ir.work_fn) ->
      Buffer.add_string buf
        (c_of_filter ~style:p.Ir.style ~fn_name:w.Ir.w_name w.Ir.w_filter);
      Buffer.add_char buf '\n')
    p.Ir.work_fns;
  Buffer.contents buf

(* The device kernel: work functions, staging predicates, per-SM switch. *)
let kernel (p : Ir.program) =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (work_functions p);
  let stages = p.Ir.stages in
  (* buffer parameters: one pointer per channel plus the I/O streams *)
  let params =
    (List.map
       (fun (b : Ir.buffer) -> Printf.sprintf "float* %s" b.Ir.b_name)
       (Array.to_list p.Ir.buffers)
    @ [ "const float* stream_in"; "float* stream_out"; "int iterations" ])
    |> String.concat ", "
  in
  Buffer.add_string buf
    (Printf.sprintf "__global__ void swp_kernel(%s)\n{\n" params);
  Buffer.add_string buf "  int tid = threadIdx.x;\n";
  Buffer.add_string buf "  int sm = blockIdx.x;\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  /* staging predicates, one per pipeline stage (depth %d) */\n\
       \  __shared__ int stage_on[%d];\n\
       \  if (tid == 0) for (int s = 0; s < %d; s++) stage_on[s] = 0;\n\
       \  __syncthreads();\n"
       stages stages stages);
  Buffer.add_string buf
    (Printf.sprintf
       "  for (int it = 0; it < iterations + %d; it++) {\n\
       \    if (tid == 0) { for (int s = %d; s > 0; s--) stage_on[s] = \
        stage_on[s-1]; stage_on[0] = (it < iterations); }\n\
       \    __syncthreads();\n"
       stages (stages - 1));
  Buffer.add_string buf "    switch (sm) {\n";
  let fn_io = Hashtbl.create 16 in
  List.iter
    (fun (w : Ir.work_fn) ->
      Hashtbl.replace fn_io w.Ir.w_node (w.Ir.w_in, w.Ir.w_out))
    p.Ir.work_fns;
  List.iter
    (fun (c : Ir.sm_case) ->
      Buffer.add_string buf (Printf.sprintf "    case %d: {\n" c.Ir.sm);
      List.iter
        (fun (f : Ir.fire) ->
          let in_buf, out_buf = Hashtbl.find fn_io f.Ir.f_node in
          Buffer.add_string buf
            (Printf.sprintf
               "      /* (%s, k=%d) o=%d f=%d threads=%d */\n\
                \      if (stage_on[%d] && tid < %d)\n\
                \        %s(%s + region_%d(it - %d), %s + region_%d(it - \
                %d), tid);\n"
               f.Ir.f_name f.Ir.f_k f.Ir.f_o f.Ir.f_stage f.Ir.f_threads
               f.Ir.f_stage f.Ir.f_threads f.Ir.f_fn in_buf f.Ir.f_node
               f.Ir.f_stage out_buf f.Ir.f_node f.Ir.f_stage))
        c.Ir.fires;
      Buffer.add_string buf "      break; }\n")
    p.Ir.cases;
  Buffer.add_string buf "    }\n    /* II boundary */\n  }\n}\n";
  Buffer.contents buf

let print (p : Ir.program) =
  let buf = Buffer.create 16384 in
  (* Provenance header: every artifact traces back to the schedule
     decision that produced it.  Deterministic fields only — the header
     must not break byte-identical serial-vs-parallel codegen. *)
  let h = p.Ir.header in
  Buffer.add_string buf
    (Printf.sprintf
       "/* streamit_gpu artifact\n\
       \ * quality: %s (%s)\n\
       \ * II: %d (lower bound %d, binding %s)\n\
       \ * schedule signature: %s\n\
       \ */\n"
       h.Ir.h_quality h.Ir.h_rationale h.Ir.h_ii h.Ir.h_lower_bound
       h.Ir.h_binding h.Ir.h_signature);
  Buffer.add_string buf "#include <cuda_runtime.h>\n#include <cstdio>\n\n";
  (* per-node region-offset helpers: ring of (stages+1) steady-state
     regions indexed by iteration *)
  List.iter
    (fun (v, tokens) ->
      Buffer.add_string buf
        (Printf.sprintf
           "static __device__ inline int region_%d(int it) { return ((it %% \
            %d) + %d) %% %d * %d; }\n"
           v p.Ir.ring p.Ir.ring p.Ir.ring tokens))
    p.Ir.regions;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (kernel p);
  (* host side *)
  Buffer.add_string buf "\nint main()\n{\n";
  List.iter
    (fun (name, bytes) ->
      Buffer.add_string buf
        (Printf.sprintf "  float* %s; cudaMalloc(&%s, %d);\n" name name bytes))
    p.Ir.allocs;
  Buffer.add_string buf
    "  float *stream_in, *stream_out;\n\
     \  /* input shuffled on the host per eq. (9) before upload */\n\
     \  cudaMalloc(&stream_in, 1 << 20);\n\
     \  cudaMalloc(&stream_out, 1 << 20);\n";
  let args =
    (List.map (fun (name, _) -> name) p.Ir.allocs
    @ [ "stream_in"; "stream_out"; string_of_int p.Ir.iterations ])
    |> String.concat ", "
  in
  Buffer.add_string buf
    (Printf.sprintf "  swp_kernel<<<%d, %d>>>(%s);\n" p.Ir.grid p.Ir.block
       args);
  Buffer.add_string buf "  cudaDeviceSynchronize();\n  return 0;\n}\n";
  Buffer.contents buf
