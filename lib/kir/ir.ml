(* Portable kernel IR (KIR) — core types (module Kir.Ir).

   The schedule -> code path used to live entirely inside
   [Cudagen.Kernel_gen], which walked the compiled value and printed
   CUDA in one pass.  KIR splits that into

     Swp_core.Compile.compiled --Lower--> Kir.program --printer--> text

   so one lowering feeds four backend printers (CUDA, WGSL, OpenCL,
   Metal) and one direct evaluator ({!Eval}, the fuzzer's fourth
   oracle leg).  The IR captures exactly what the software-pipelined
   steady state of Sec. IV needs:

   - the launch shape (grid = SMs, block = threads);
   - one work function per graph node (filters, plus splitters and
     joiners converted to equivalent filters);
   - FIFO ring buffers with the eq. (9)-(11) coalesced index maps,
     described by their producer's (rate, threads, reps) so both the
     printers and the evaluator derive addresses from one place;
   - the staging predicates and per-SM fire lists of the modulo
     schedule (offset o, stage f per fire).

   Everything in the program is data — no closures, no references to
   the compiled value — so printing is a pure function and two lowers
   of the same schedule are structurally equal. *)

type target = Cuda | Wgsl | Opencl | Metal

let all_targets = [ Cuda; Wgsl; Opencl; Metal ]

let target_name = function
  | Cuda -> "cuda"
  | Wgsl -> "wgsl"
  | Opencl -> "opencl"
  | Metal -> "metal"

let target_of_string = function
  | "cuda" -> Some Cuda
  | "wgsl" -> Some Wgsl
  | "opencl" -> Some Opencl
  | "metal" -> Some Metal
  | _ -> None

(* Source-file extension per backend (fixture naming, CLI output). *)
let target_ext = function
  | Cuda -> "cu"
  | Wgsl -> "wgsl"
  | Opencl -> "cl"
  | Metal -> "metal"

(* Channel index style, Sec. IV-D: the coalesced shuffle of eq. (10)
   or the natural (thread-major) layout of the SWPNC scheme. *)
type index_style = Coalesced | Natural

exception Unsupported of string

(* Identifier mangling shared by every backend: all four targets have
   C-like identifier rules. *)
let c_ident name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf ch
      | _ -> Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if s = "" then "_anon"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

(* Where a fire's port reads from / writes to. *)
type chan_ref =
  | Chan of int  (** index into {!program.buffers} *)
  | External  (** the program input stream (reads) or output stream (writes) *)

(* One FIFO edge buffer.  The producer-side shape is enough to compute
   any address in the ring: token [s] of steady state [j] lives at
   [(j mod regions) * region_tokens + addr_of_token s]. *)
type buffer = {
  b_name : string;  (** emitted identifier, [buf_src_sp__dst_dp] *)
  b_src : int;
  b_src_port : int;
  b_dst : int;
  b_dst_port : int;
  b_elem : Streamit.Types.elem_ty;
  b_prod_rate : int;  (** tokens per producer thread-firing *)
  b_prod_threads : int;
  b_prod_reps : int;
  b_region_tokens : int;  (** one steady state: rate x threads x reps *)
  b_init : Streamit.Types.value list;  (** initial tokens, FIFO order *)
}

(* One work function: the node's filter body (splitters and joiners
   already converted to filters) plus the direct buffer references the
   pointer-free backends (WGSL) need. *)
type work_fn = {
  w_node : int;
  w_name : string;  (** schedule-local, collision-free *)
  w_filter : Streamit.Kernel.filter;
  w_in : string;  (** port-0 input buffer name, or "stream_in" *)
  w_out : string;  (** port-0 output buffer name, or "stream_out" *)
}

(* One scheduled instance firing inside an SM's switch case. *)
type fire = {
  f_node : int;
  f_name : string;  (** display name, for the provenance comment *)
  f_k : int;  (** instance index within the node *)
  f_o : int;  (** start offset within the II *)
  f_stage : int;  (** pipeline stage *)
  f_threads : int;
  f_reps : int;
  f_fn : string;  (** work-function name to call *)
  f_kind : Streamit.Graph.node_kind;
  f_ins : chan_ref list;  (** by input port *)
  f_outs : chan_ref list;  (** by output port *)
}

type sm_case = { sm : int; fires : fire list }

(* Deterministic provenance header fields (PR 8 flight recorder). *)
type header = {
  h_quality : string;
  h_rationale : string;
  h_ii : int;
  h_lower_bound : int;
  h_binding : string;
  h_signature : string;
}

type program = {
  header : header;
  style : index_style;
  grid : int;  (** SMs = CUDA blocks / OpenCL work-groups / ... *)
  block : int;  (** threads per SM *)
  stages : int;  (** pipeline depth of the modulo schedule *)
  ring : int;  (** steady-state regions in the printed ring, stages+1 *)
  iterations : int;  (** host-side launch iteration count *)
  regions : (int * int) list;  (** per node: steady tokens of its out edge *)
  work_fns : work_fn list;  (** in node order *)
  buffers : buffer array;  (** in graph edge order *)
  cases : sm_case list;  (** non-empty SMs, ascending *)
  allocs : (string * int) list;  (** host allocations: buffer name, bytes *)
  io_in_ty : Streamit.Types.elem_ty;
  io_out_ty : Streamit.Types.elem_ty;
}

let buffer_of_chan (p : program) = function
  | Chan i -> Some p.buffers.(i)
  | External -> None

(* All fires of the program in global start-time order (o, then stage)
   — the (8a)/(8b) visibility order the evaluator executes in. *)
let ordered_fires (p : program) =
  List.stable_sort
    (fun a b -> compare (a.f_o, a.f_stage) (b.f_o, b.f_stage))
    (List.concat_map (fun c -> c.fires) p.cases)
