(* Backend dispatch: one lowered program, four printers. *)

let emit (t : Ir.target) (p : Ir.program) =
  match t with
  | Ir.Cuda -> Print_cuda.print p
  | Ir.Wgsl -> Print_wgsl.print p
  | Ir.Opencl -> Print_cfam.print Print_cfam.Opencl p
  | Ir.Metal -> Print_cfam.print Print_cfam.Metal p

(* Lower once, print one target. *)
let emit_compiled (t : Ir.target) (c : Swp_core.Compile.compiled) =
  emit t (Lower.lower c)

(* Emit and structurally lint in one step. *)
let emit_checked (t : Ir.target) (p : Ir.program) =
  let src = emit t p in
  match Lint.check t p src with
  | Ok () -> Ok src
  | Error e -> Error (Printf.sprintf "%s: %s" (Ir.target_name t) e)
