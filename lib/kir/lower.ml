(* Lowering: Swp_core schedules + buffer layouts -> KIR.

   Everything the printers and the evaluator need is computed here,
   once, so the backends cannot drift from each other: buffer naming,
   work-function naming, per-SM fire ordering and the provenance
   header are all decided in this pass.

   Byte-compatibility invariant: driving the CUDA printer with the
   lowered program reproduces the historical [Cudagen.Kernel_gen]
   output byte for byte on every benchmark (pinned by the golden
   fixtures under test/fixtures/codegen/), so the lowering must keep
   the same orderings the one-pass generator used — work functions in
   node order, buffers in graph edge order, fires grouped by SM and
   stably sorted by start offset.

   Name generation is schedule-local: the [used] table below is fresh
   per [lower] call, so compiling two graphs in one process can never
   leak a suffix from one into the other (the PR 4 gensym lesson). *)

open Streamit
module C = Swp_core.Compile

let splitter_filter (sp : Ast.splitter) branches =
  match sp with
  | Ast.Duplicate ->
    let body =
      Kernel.Build.(
        [ let_ "x" pop ]
        @ List.init branches (fun _ -> push (v "x")))
    in
    Kernel.make_filter ~name:"duplicate_splitter" ~pop:1 ~push:branches body
  | Ast.Round_robin ws ->
    let sum = List.fold_left ( + ) 0 ws in
    let body = List.init sum (fun _ -> Kernel.Push Kernel.Pop) in
    Kernel.make_filter ~name:"rr_splitter" ~pop:sum ~push:sum body

let joiner_filter ws =
  let sum = List.fold_left ( + ) 0 ws in
  let body = List.init sum (fun _ -> Kernel.Push Kernel.Pop) in
  Kernel.make_filter ~name:"rr_joiner" ~pop:sum ~push:sum body

let filter_of_node (node : Graph.node) =
  match node.Graph.kind with
  | Graph.NFilter f -> Kernel.rename (fun x -> x) { f with name = node.Graph.name }
  | Graph.NSplitter (sp, k) ->
    { (splitter_filter sp k) with Kernel.name = node.Graph.name }
  | Graph.NJoiner ws -> { (joiner_filter ws) with Kernel.name = node.Graph.name }

let style_of (c : C.compiled) =
  match c.C.scheme with
  | C.Swp_coalesced -> Ir.Coalesced
  | C.Swp_non_coalesced -> Ir.Natural

let buffer_name (e : Graph.edge) =
  Printf.sprintf "buf_%d_%d__%d_%d" e.Graph.src e.Graph.src_port e.Graph.dst
    e.Graph.dst_port

(* Schedule-local fresh-name table: the base name wins on first claim;
   later collisions get a deterministic numeric suffix. *)
let namer () =
  let used = Hashtbl.create 16 in
  fun base ->
    if not (Hashtbl.mem used base) then begin
      Hashtbl.add used base ();
      base
    end
    else begin
      let rec pick n =
        let cand = Printf.sprintf "%s_%d" base n in
        if Hashtbl.mem used cand then pick (n + 1)
        else begin
          Hashtbl.add used cand ();
          cand
        end
      in
      pick 2
    end

let lower (c : C.compiled) : Ir.program =
  let g = c.C.graph in
  let cfg = c.C.config in
  let sched = c.C.schedule in
  let sizing = c.C.sizing in
  let stats = c.C.search_stats in
  let stages = Swp_core.Swp_schedule.stages sched in
  let header =
    {
      Ir.h_quality = C.quality_name c.C.quality;
      h_rationale = C.rationale_name c.C.prov.C.rationale;
      h_ii = stats.Swp_core.Ii_search.achieved_ii;
      h_lower_bound = stats.Swp_core.Ii_search.lower_bound;
      h_binding = stats.Swp_core.Ii_search.bounds.Swp_core.Mii.binding;
      h_signature = Swp_core.Report.schedule_signature c;
    }
  in
  (* buffers, in graph edge order *)
  let buffers =
    Array.of_list
      (List.map
         (fun (e : Graph.edge) ->
           let prod_rate = Graph.production g e in
           let prod_threads = cfg.Swp_core.Select.threads.(e.Graph.src) in
           let prod_reps = cfg.Swp_core.Select.reps.(e.Graph.src) in
           let elem =
             match (Graph.node g e.Graph.src).Graph.kind with
             | Graph.NFilter f -> f.Kernel.out_ty
             | Graph.NSplitter _ | Graph.NJoiner _ -> (
               (* splitters/joiners forward tokens; type comes from the
                  consumer side *)
               match (Graph.node g e.Graph.dst).Graph.kind with
               | Graph.NFilter f -> f.Kernel.in_ty
               | _ -> Streamit.Types.TFloat)
           in
           {
             Ir.b_name = buffer_name e;
             b_src = e.Graph.src;
             b_src_port = e.Graph.src_port;
             b_dst = e.Graph.dst;
             b_dst_port = e.Graph.dst_port;
             b_elem = elem;
             b_prod_rate = prod_rate;
             b_prod_threads = prod_threads;
             b_prod_reps = prod_reps;
             b_region_tokens = prod_rate * prod_threads * prod_reps;
             b_init = e.Graph.init_values;
           })
         g.Graph.edges)
  in
  let chan_index = Hashtbl.create 16 in
  Array.iteri
    (fun i (b : Ir.buffer) ->
      Hashtbl.replace chan_index (b.Ir.b_src, b.Ir.b_src_port, b.Ir.b_dst,
                                  b.Ir.b_dst_port) i)
    buffers;
  let chan_of_edge (e : Graph.edge) =
    Ir.Chan
      (Hashtbl.find chan_index
         (e.Graph.src, e.Graph.src_port, e.Graph.dst, e.Graph.dst_port))
  in
  (* work functions, in node order, with schedule-local names *)
  let fresh = namer () in
  let fn_names =
    Array.map
      (fun (node : Graph.node) ->
        fresh ("work_" ^ Ir.c_ident node.Graph.name))
      g.Graph.nodes
  in
  let port0_in v =
    match Graph.in_edges g v with
    | e :: _ -> buffer_name e
    | [] -> "stream_in"
  in
  let port0_out v =
    match Graph.out_edges g v with
    | e :: _ -> buffer_name e
    | [] -> "stream_out"
  in
  let work_fns =
    Array.to_list
      (Array.map
         (fun (node : Graph.node) ->
           let v = node.Graph.id in
           {
             Ir.w_node = v;
             w_name = fn_names.(v);
             w_filter = filter_of_node node;
             w_in = port0_in v;
             w_out = port0_out v;
           })
         g.Graph.nodes)
  in
  (* per-node region steady tokens (the region_<v> helpers) *)
  let regions =
    Array.to_list
      (Array.map
         (fun (node : Graph.node) ->
           let v = node.Graph.id in
           let tokens =
             match Graph.out_edges g v with
             | e :: _ -> Swp_core.Buffer_layout.steady_tokens g cfg e
             | [] -> 0
           in
           (v, tokens))
         g.Graph.nodes)
  in
  (* fires grouped by SM exactly as the one-pass generator did: entries
     consed per SM (reversing schedule order), then stably sorted by
     start offset *)
  let fire_of_entry (e : Swp_core.Swp_schedule.entry) =
    let v = e.Swp_core.Swp_schedule.inst.Swp_core.Instances.node in
    let node = Graph.node g v in
    let ins =
      List.init (Graph.in_arity node) (fun p ->
          match
            List.find_opt
              (fun (ed : Graph.edge) -> ed.Graph.dst_port = p)
              (Graph.in_edges g v)
          with
          | Some ed -> chan_of_edge ed
          | None -> Ir.External)
    in
    let outs =
      List.init (Graph.out_arity node) (fun p ->
          match
            List.find_opt
              (fun (ed : Graph.edge) -> ed.Graph.src_port = p)
              (Graph.out_edges g v)
          with
          | Some ed -> chan_of_edge ed
          | None -> Ir.External)
    in
    {
      Ir.f_node = v;
      f_name = node.Graph.name;
      f_k = e.Swp_core.Swp_schedule.inst.Swp_core.Instances.k;
      f_o = e.Swp_core.Swp_schedule.o;
      f_stage = e.Swp_core.Swp_schedule.f;
      f_threads = cfg.Swp_core.Select.threads.(v);
      f_reps = cfg.Swp_core.Select.reps.(v);
      f_fn = fn_names.(v);
      f_kind = node.Graph.kind;
      f_ins = ins;
      f_outs = outs;
    }
  in
  let by_sm = Array.make sched.Swp_core.Swp_schedule.num_sms [] in
  List.iter
    (fun (e : Swp_core.Swp_schedule.entry) ->
      by_sm.(e.Swp_core.Swp_schedule.sm) <-
        e :: by_sm.(e.Swp_core.Swp_schedule.sm))
    sched.Swp_core.Swp_schedule.entries;
  let cases = ref [] in
  Array.iteri
    (fun sm entries ->
      if entries <> [] then begin
        let ordered =
          List.sort
            (fun (a : Swp_core.Swp_schedule.entry) b ->
              compare a.Swp_core.Swp_schedule.o b.Swp_core.Swp_schedule.o)
            entries
        in
        cases := { Ir.sm; fires = List.map fire_of_entry ordered } :: !cases
      end)
    by_sm;
  let allocs =
    List.map
      (fun ((e : Graph.edge), bytes) -> (buffer_name e, bytes))
      sizing.Swp_core.Buffer_layout.per_edge
  in
  let io_ty pick = function
    | None -> Streamit.Types.TFloat
    | Some v -> pick (filter_of_node (Graph.node g v))
  in
  {
    Ir.header;
    style = style_of c;
    grid = sched.Swp_core.Swp_schedule.num_sms;
    block = cfg.Swp_core.Select.block_threads;
    stages;
    ring = stages + 1;
    iterations = 1024;
    regions;
    work_fns;
    buffers;
    cases = List.rev !cases;
    allocs;
    io_in_ty = io_ty (fun f -> f.Kernel.in_ty) g.Graph.entry;
    io_out_ty = io_ty (fun f -> f.Kernel.out_ty) g.Graph.exit_;
  }
