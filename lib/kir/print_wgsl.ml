(* WGSL backend printer.

   WGSL (WebGPU) is the most restrictive of the four targets, so it
   drives the IR's portability constraints:

   - no pointers into storage buffers as function parameters, so each
     work function is specialized against its node's actual buffers
     ([w_in]/[w_out] from the lowering) and takes only integer bases;
   - [workgroupBarrier()] must sit in uniform control flow, so every
     barrier is emitted at loop level, never under a [tid] guard (the
     structural linter enforces this);
   - [switch] requires a [default] clause;
   - comparisons yield [bool], not [int]: value-position comparisons
     become [select(0, 1, cmp)], condition positions stay boolean;
   - shift amounts must be [u32].

   Channel buffers are declared as [array<f32>] storage regardless of
   element type (matching the CUDA backend's all-[float*] channel
   parameters); integer filters convert on access. *)

open Streamit

let ident = Ir.c_ident

let ty_name = function Types.TInt -> "i32" | Types.TFloat -> "f32"

let value_str = function
  | Types.VInt n -> string_of_int n
  | Types.VFloat x ->
    let s = Printf.sprintf "%.9g" x in
    let s =
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then s
      else s ^ ".0"
    in
    s ^ "f"

let read_index (style : Ir.index_style) ~rate ~n_expr =
  match style with
  | Ir.Coalesced ->
    Printf.sprintf "(128 * (%s) + (tid / 128) * 128 * %d + (tid %% 128))"
      n_expr rate
  | Ir.Natural -> Printf.sprintf "(tid * %d + (%s))" rate n_expr

(* One specialized work function. *)
let fn_of_filter ~style ~fn_name ~src ~dst (f : Kernel.filter) =
  let buf = Buffer.create 1024 in
  let table_prefix = ident f.Kernel.name ^ "_" in
  let read_conv e =
    match f.Kernel.in_ty with
    | Types.TInt -> Printf.sprintf "i32(%s)" e
    | Types.TFloat -> e
  in
  Buffer.add_string buf
    (Printf.sprintf "fn %s(in_base: i32, out_base: i32, tid: i32) {\n" fn_name);
  Buffer.add_string buf "  var _pop: i32 = 0;\n  var _push: i32 = 0;\n";
  let tmp_counter = ref 0 in
  let fresh_tmp () =
    incr tmp_counter;
    Printf.sprintf "_t%d" !tmp_counter
  in
  let indent d = String.make (2 * (d + 1)) ' ' in
  (* [lower] renders to a value-position (int/float) expression;
     [lower_bool] to a condition-position (bool) expression. *)
  let rec lower ~in_cond pre = function
    | Kernel.Const v -> (pre, value_str v)
    | Kernel.Var x -> (pre, ident x)
    | Kernel.ArrayRef (a, i) ->
      let pre, ci = lower ~in_cond pre i in
      let name =
        if List.mem_assoc a f.Kernel.state then table_prefix ^ ident a
        else ident a
      in
      (pre, Printf.sprintf "%s[%s]" name ci)
    | Kernel.TableRef (t, i) ->
      let pre, ci = lower ~in_cond pre i in
      (pre, Printf.sprintf "%s%s[%s]" table_prefix (ident t) ci)
    | Kernel.Pop ->
      if in_cond then
        raise (Ir.Unsupported "pop() inside a conditional-expression arm");
      let t = fresh_tmp () in
      let idx = read_index style ~rate:(max 1 f.Kernel.pop_rate) ~n_expr:"_pop" in
      let line =
        Printf.sprintf "let %s: %s = %s; _pop++;" t (ty_name f.Kernel.in_ty)
          (read_conv (Printf.sprintf "%s[in_base + %s]" src idx))
      in
      (line :: pre, t)
    | Kernel.Peek d ->
      let pre, cd = lower ~in_cond pre d in
      let idx =
        read_index style ~rate:(max 1 f.Kernel.pop_rate)
          ~n_expr:(Printf.sprintf "_pop + (%s)" cd)
      in
      (pre, read_conv (Printf.sprintf "%s[in_base + %s]" src idx))
    | Kernel.Unop (op, e) -> (
      match op with
      | Kernel.Not ->
        let pre, cb = lower_bool ~in_cond pre e in
        (pre, Printf.sprintf "select(1, 0, %s)" cb)
      | _ ->
        let pre, ce = lower ~in_cond pre e in
        let r =
          match op with
          | Kernel.Neg -> Printf.sprintf "(-%s)" ce
          | Kernel.BitNot -> Printf.sprintf "(~%s)" ce
          | Kernel.Sin -> Printf.sprintf "sin(%s)" ce
          | Kernel.Cos -> Printf.sprintf "cos(%s)" ce
          | Kernel.Sqrt -> Printf.sprintf "sqrt(%s)" ce
          | Kernel.Exp -> Printf.sprintf "exp(%s)" ce
          | Kernel.Log -> Printf.sprintf "log(%s)" ce
          | Kernel.Abs -> Printf.sprintf "abs(%s)" ce
          | Kernel.ToFloat -> Printf.sprintf "f32(%s)" ce
          | Kernel.ToInt -> Printf.sprintf "i32(%s)" ce
          | Kernel.Not -> assert false
        in
        (pre, r))
    | Kernel.Binop (op, a, b) -> (
      match op with
      | Kernel.Eq | Kernel.Ne | Kernel.Lt | Kernel.Le | Kernel.Gt | Kernel.Ge
        ->
        let pre, cb = lower_bool ~in_cond pre (Kernel.Binop (op, a, b)) in
        (pre, Printf.sprintf "select(0, 1, %s)" cb)
      | _ ->
        let pre, ca = lower ~in_cond pre a in
        let pre, cb = lower ~in_cond pre b in
        let inf s = Printf.sprintf "(%s %s %s)" ca s cb in
        let r =
          match op with
          | Kernel.Add -> inf "+"
          | Kernel.Sub -> inf "-"
          | Kernel.Mul -> inf "*"
          | Kernel.Div -> inf "/"
          | Kernel.Mod -> inf "%"
          | Kernel.BitAnd -> inf "&"
          | Kernel.BitOr -> inf "|"
          | Kernel.BitXor -> inf "^"
          | Kernel.Shl -> Printf.sprintf "(%s << u32(%s))" ca cb
          | Kernel.Shr -> Printf.sprintf "(%s >> u32(%s))" ca cb
          | Kernel.Min -> Printf.sprintf "min(%s, %s)" ca cb
          | Kernel.Max -> Printf.sprintf "max(%s, %s)" ca cb
          | Kernel.Eq | Kernel.Ne | Kernel.Lt | Kernel.Le | Kernel.Gt
          | Kernel.Ge ->
            assert false
        in
        (pre, r))
    | Kernel.Cond (c, a, b) ->
      let pre, cc = lower_bool ~in_cond pre c in
      let pre, ca = lower ~in_cond:true pre a in
      let pre, cb = lower ~in_cond:true pre b in
      (pre, Printf.sprintf "select(%s, %s, %s)" cb ca cc)
  (* condition position: produce a bool expression *)
  and lower_bool ~in_cond pre = function
    | Kernel.Binop
        ( ((Kernel.Eq | Kernel.Ne | Kernel.Lt | Kernel.Le | Kernel.Gt
           | Kernel.Ge) as op),
          a,
          b ) ->
      let pre, ca = lower ~in_cond pre a in
      let pre, cb = lower ~in_cond pre b in
      let s =
        match op with
        | Kernel.Eq -> "=="
        | Kernel.Ne -> "!="
        | Kernel.Lt -> "<"
        | Kernel.Le -> "<="
        | Kernel.Gt -> ">"
        | Kernel.Ge -> ">="
        | _ -> assert false
      in
      (pre, Printf.sprintf "(%s %s %s)" ca s cb)
    | Kernel.Unop (Kernel.Not, e) ->
      let pre, cb = lower_bool ~in_cond pre e in
      (pre, Printf.sprintf "(!%s)" cb)
    | e ->
      let pre, ce = lower ~in_cond pre e in
      (pre, Printf.sprintf "(%s != 0)" ce)
  in
  let flush_pre d pre =
    List.iter
      (fun line -> Buffer.add_string buf (indent d ^ line ^ "\n"))
      (List.rev pre)
  in
  let declared = Hashtbl.create 16 in
  let rec stmt d s =
    match s with
    | Kernel.Let (x, e) ->
      let pre, ce = lower ~in_cond:false [] e in
      flush_pre d pre;
      let x' = ident x in
      if Hashtbl.mem declared x' then
        Buffer.add_string buf (Printf.sprintf "%s%s = %s;\n" (indent d) x' ce)
      else begin
        Hashtbl.replace declared x' ();
        let ty =
          let rec is_int = function
            | Kernel.Const (Types.VInt _) -> true
            | Kernel.Const (Types.VFloat _) -> false
            | Kernel.Pop | Kernel.Peek _ -> f.Kernel.in_ty = Types.TInt
            | Kernel.Var _ -> false
            | Kernel.ArrayRef _ -> false
            | Kernel.TableRef _ -> false
            | Kernel.Unop (Kernel.ToInt, _) -> true
            | Kernel.Unop (Kernel.ToFloat, _) -> false
            | Kernel.Unop (_, e) -> is_int e
            | Kernel.Binop ((Kernel.Eq | Kernel.Ne | Kernel.Lt | Kernel.Le
                            | Kernel.Gt | Kernel.Ge), _, _) -> true
            | Kernel.Binop ((Kernel.BitAnd | Kernel.BitOr | Kernel.BitXor
                            | Kernel.Shl | Kernel.Shr | Kernel.Mod), _, _) ->
              true
            | Kernel.Binop (_, a, b) -> is_int a && is_int b
            | Kernel.Cond (_, a, b) -> is_int a && is_int b
          in
          if is_int e then "i32" else "f32"
        in
        Buffer.add_string buf
          (Printf.sprintf "%svar %s: %s = %s;\n" (indent d) x' ty ce)
      end
    | Kernel.Assign (x, e) ->
      let pre, ce = lower ~in_cond:false [] e in
      flush_pre d pre;
      Buffer.add_string buf
        (Printf.sprintf "%s%s = %s;\n" (indent d) (ident x) ce)
    | Kernel.DeclArray (a, n) ->
      Buffer.add_string buf
        (Printf.sprintf "%svar %s: array<%s, %d>;\n" (indent d) (ident a)
           (ty_name f.Kernel.out_ty) (max 1 n))
    | Kernel.ArrayAssign (a, i, e) ->
      let pre, ci = lower ~in_cond:false [] i in
      let pre, ce = lower ~in_cond:false pre e in
      flush_pre d pre;
      let aname =
        if List.mem_assoc a f.Kernel.state then table_prefix ^ ident a
        else ident a
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s[%s] = %s;\n" (indent d) aname ci ce)
    | Kernel.Push e ->
      let pre, ce = lower ~in_cond:false [] e in
      flush_pre d pre;
      let idx =
        read_index style ~rate:(max 1 f.Kernel.push_rate) ~n_expr:"_push"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s[out_base + %s] = f32(%s); _push++;\n" (indent d)
           dst idx ce)
    | Kernel.If (c, th, el) ->
      let pre, cc = lower_bool ~in_cond:false [] c in
      flush_pre d pre;
      Buffer.add_string buf (Printf.sprintf "%sif %s {\n" (indent d) cc);
      List.iter (stmt (d + 1)) th;
      if el <> [] then begin
        Buffer.add_string buf (Printf.sprintf "%s} else {\n" (indent d));
        List.iter (stmt (d + 1)) el
      end;
      Buffer.add_string buf (Printf.sprintf "%s}\n" (indent d))
    | Kernel.For (x, lo, hi, body) ->
      let pre, clo = lower ~in_cond:false [] lo in
      let pre, chi = lower ~in_cond:false pre hi in
      flush_pre d pre;
      let x' = ident x in
      Buffer.add_string buf
        (Printf.sprintf "%sfor (var %s: i32 = %s; %s < %s; %s++) {\n"
           (indent d) x' clo x' chi x');
      List.iter (stmt (d + 1)) body;
      Buffer.add_string buf (Printf.sprintf "%s}\n" (indent d))
  in
  List.iter (stmt 0) f.Kernel.work;
  Buffer.add_string buf "  _ = _pop;\n  _ = _push;\n}\n";
  Buffer.contents buf

(* Module-scope tables and state for one filter.  WGSL has no mutable
   module-scope storage outside var<private>/var<workgroup>; state
   arrays become var<private> (per-invocation — see the quirks table in
   DESIGN.md §16). *)
let globals_of_filter (f : Kernel.filter) =
  let buf = Buffer.create 256 in
  let table_prefix = ident f.Kernel.name ^ "_" in
  let emit_array kind name values =
    let ty =
      match values with
      | [||] -> "f32"
      | _ -> ty_name (Types.ty_of_value values.(0))
    in
    let n = max 1 (Array.length values) in
    if Array.length values = 0 then
      Buffer.add_string buf
        (Printf.sprintf "var<%s> %s%s: array<%s, %d>;\n" kind table_prefix
           (ident name) ty n)
    else begin
      Buffer.add_string buf
        (Printf.sprintf "var<%s> %s%s: array<%s, %d> = array<%s, %d>(" kind
           table_prefix (ident name) ty n ty n);
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (value_str v))
        values;
      Buffer.add_string buf ");\n"
    end
  in
  List.iter (fun (t, vs) -> emit_array "private" t vs) f.Kernel.tables;
  List.iter (fun (s, vs) -> emit_array "private" s vs) f.Kernel.state;
  Buffer.contents buf

let print (p : Ir.program) =
  let buf = Buffer.create 16384 in
  let h = p.Ir.header in
  Buffer.add_string buf
    (Printf.sprintf
       "// streamit_gpu artifact (wgsl)\n\
        // quality: %s (%s)\n\
        // II: %d (lower bound %d, binding %s)\n\
        // schedule signature: %s\n"
       h.Ir.h_quality h.Ir.h_rationale h.Ir.h_ii h.Ir.h_lower_bound
       h.Ir.h_binding h.Ir.h_signature);
  Buffer.add_string buf
    (Printf.sprintf
       "// dispatch: %d workgroups x %d threads; host loops handled by the \
        iterations uniform\n\n"
       p.Ir.grid p.Ir.block);
  (* storage bindings: channel buffers, then the I/O streams, then the
     iteration count *)
  let n_bufs = Array.length p.Ir.buffers in
  Array.iteri
    (fun i (b : Ir.buffer) ->
      Buffer.add_string buf
        (Printf.sprintf
           "@group(0) @binding(%d) var<storage, read_write> %s: array<f32>;\n"
           i b.Ir.b_name))
    p.Ir.buffers;
  Buffer.add_string buf
    (Printf.sprintf
       "@group(0) @binding(%d) var<storage, read> stream_in: array<f32>;\n"
       n_bufs);
  Buffer.add_string buf
    (Printf.sprintf
       "@group(0) @binding(%d) var<storage, read_write> stream_out: \
        array<f32>;\n"
       (n_bufs + 1));
  Buffer.add_string buf
    (Printf.sprintf "@group(0) @binding(%d) var<uniform> iterations: i32;\n\n"
       (n_bufs + 2));
  Buffer.add_string buf
    (Printf.sprintf "var<workgroup> stage_on: array<i32, %d>;\n\n" p.Ir.stages);
  (* per-node region-offset helpers *)
  List.iter
    (fun (v, tokens) ->
      Buffer.add_string buf
        (Printf.sprintf
           "fn region_%d(it: i32) -> i32 { return ((it %% %d) + %d) %% %d * \
            %d; }\n"
           v p.Ir.ring p.Ir.ring p.Ir.ring tokens))
    p.Ir.regions;
  Buffer.add_char buf '\n';
  (* filter globals, then the specialized work functions *)
  List.iter
    (fun (w : Ir.work_fn) ->
      let g = globals_of_filter w.Ir.w_filter in
      if g <> "" then begin
        Buffer.add_string buf g;
        Buffer.add_char buf '\n'
      end;
      Buffer.add_string buf
        (fn_of_filter ~style:p.Ir.style ~fn_name:w.Ir.w_name ~src:w.Ir.w_in
           ~dst:w.Ir.w_out w.Ir.w_filter);
      Buffer.add_char buf '\n')
    p.Ir.work_fns;
  (* the software-pipelined kernel *)
  Buffer.add_string buf
    (Printf.sprintf "@compute @workgroup_size(%d, 1, 1)\n" p.Ir.block);
  Buffer.add_string buf
    "fn swp_kernel(@builtin(local_invocation_id) lid: vec3<u32>,\n\
    \              @builtin(workgroup_id) wid: vec3<u32>) {\n";
  Buffer.add_string buf
    "  let tid: i32 = i32(lid.x);\n  let sm: i32 = i32(wid.x);\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  // staging predicates, one per pipeline stage (depth %d)\n\
       \  if tid == 0 { for (var s: i32 = 0; s < %d; s++) { stage_on[s] = 0; \
        } }\n\
       \  workgroupBarrier();\n"
       p.Ir.stages p.Ir.stages);
  Buffer.add_string buf
    (Printf.sprintf
       "  for (var it: i32 = 0; it < iterations + %d; it++) {\n\
       \    if tid == 0 {\n\
       \      for (var s: i32 = %d; s > 0; s--) { stage_on[s] = \
        stage_on[s-1]; }\n\
       \      stage_on[0] = select(0, 1, it < iterations);\n\
       \    }\n\
       \    workgroupBarrier();\n"
       p.Ir.stages (p.Ir.stages - 1));
  Buffer.add_string buf "    switch sm {\n";
  List.iter
    (fun (c : Ir.sm_case) ->
      Buffer.add_string buf (Printf.sprintf "      case %d: {\n" c.Ir.sm);
      List.iter
        (fun (f : Ir.fire) ->
          Buffer.add_string buf
            (Printf.sprintf
               "        // (%s, k=%d) o=%d f=%d threads=%d\n\
               \        if stage_on[%d] != 0 && tid < %d {\n\
               \          %s(region_%d(it - %d), region_%d(it - %d), tid);\n\
               \        }\n"
               f.Ir.f_name f.Ir.f_k f.Ir.f_o f.Ir.f_stage f.Ir.f_threads
               f.Ir.f_stage f.Ir.f_threads f.Ir.f_fn f.Ir.f_node f.Ir.f_stage
               f.Ir.f_node f.Ir.f_stage))
        c.Ir.fires;
      Buffer.add_string buf "      }\n")
    p.Ir.cases;
  Buffer.add_string buf "      default: {}\n    }\n";
  Buffer.add_string buf
    "    // II boundary\n    workgroupBarrier();\n  }\n}\n";
  Buffer.contents buf
