(* Per-backend structural linter.

   No GPU toolchain exists in CI, so the emitted kernels can never be
   compiled there.  This linter is the cheap stand-in: it rejects the
   classes of printer bugs that survive the KIR-eval oracle — the
   oracle checks the lowering, not the printed text:

   - unbalanced braces / parens / brackets (after stripping comments
     and literals);
   - program-level names (work functions, region helpers, channel
     buffers) used before their declaration, or declared more than
     once (the gensym-collision class);
   - a barrier inside [tid]-dependent control flow — fatal on WGSL
     (uniform-control-flow is a hard validation rule) and a deadlock
     on the other three, so it is enforced for every target;
   - the kernel must contain at least one barrier (the staging
     predicate handoff cannot be correct without one). *)

let barrier_token = function
  | Ir.Cuda -> "__syncthreads"
  | Ir.Wgsl -> "workgroupBarrier"
  | Ir.Opencl -> "barrier"
  | Ir.Metal -> "threadgroup_barrier"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

(* Blank out comments and string/char literals, preserving length and
   newlines so positions stay meaningful. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let i = ref 0 in
  let blank j = if Bytes.get out j <> '\n' then Bytes.set out j ' ' in
  while !i < n do
    let c = src.[!i] in
    if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        blank !i;
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2;
          closed := true
        end
        else begin
          blank !i;
          incr i
        end
      done
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      blank !i;
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\\' && !i + 1 < n then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else if src.[!i] = quote then begin
          blank !i;
          incr i;
          closed := true
        end
        else begin
          blank !i;
          incr i
        end
      done
    end
    else incr i
  done;
  Bytes.to_string out

(* All positions where [name] occurs as a whole identifier. *)
let word_occurrences src name =
  let n = String.length src and m = String.length name in
  let acc = ref [] in
  let i = ref 0 in
  while !i + m <= n do
    if
      String.sub src !i m = name
      && ((!i = 0) || not (is_ident_char src.[!i - 1]))
      && (!i + m = n || not (is_ident_char src.[!i + m]))
    then acc := !i :: !acc;
    incr i
  done;
  List.rev !acc

let find_sub src pat =
  let n = String.length src and m = String.length pat in
  let rec go i = if i + m > n then None
    else if String.sub src i m = pat then Some i
    else go (i + 1)
  in
  go 0

let check_balance src =
  let stack = ref [] in
  let err = ref None in
  String.iteri
    (fun pos c ->
      if !err = None then
        match c with
        | '{' | '(' | '[' -> stack := (c, pos) :: !stack
        | '}' | ')' | ']' -> (
          let opener = match c with '}' -> '{' | ')' -> '(' | _ -> '[' in
          match !stack with
          | (o, _) :: rest when o = opener -> stack := rest
          | _ -> err := Some (Printf.sprintf "unbalanced '%c' at byte %d" c pos))
        | _ -> ())
    src;
  match (!err, !stack) with
  | Some e, _ -> Error e
  | None, (o, pos) :: _ ->
    Error (Printf.sprintf "unclosed '%c' opened at byte %d" o pos)
  | None, [] -> Ok ()

(* Raw (non-word-bounded) substring occurrence positions. *)
let sub_occurrences src pat =
  let n = String.length src and m = String.length pat in
  let acc = ref [] in
  for i = 0 to n - m do
    if String.sub src i m = pat then acc := i :: !acc
  done;
  List.rev !acc

(* [name] must first occur inside its declaration [patterns] (each
   pattern contains the name); with [unique], a second
   declaration-shaped occurrence is a name collision. *)
let check_decl ?(unique = true) src ~name ~patterns =
  let occ = word_occurrences src name in
  let decls =
    List.concat_map
      (fun pat ->
        match find_sub pat name with
        | Some off -> List.map (fun i -> i + off) (sub_occurrences src pat)
        | None -> [])
      patterns
  in
  match (occ, decls) with
  | [], _ -> Error (Printf.sprintf "%s never appears" name)
  | _, [] -> Error (Printf.sprintf "%s has no declaration" name)
  | first :: _, _ ->
    if not (List.mem first decls) then
      Error (Printf.sprintf "%s used before its declaration" name)
    else if unique && List.length decls > 1 then
      Error (Printf.sprintf "%s declared %d times" name (List.length decls))
    else Ok ()

(* Reject a barrier under tid-dependent control flow.  Tracks the brace
   stack; a brace opened by an if/for/while header whose text mentions
   [tid] (and any else-branch of such an if) is non-uniform. *)
let check_barrier_uniformity src ~barrier =
  let n = String.length src in
  let stack = ref [] in
  let last_popped = ref false in
  let err = ref None in
  let i = ref 0 in
  let starts_word j w =
    let m = String.length w in
    j + m <= n
    && String.sub src j m = w
    && (j = 0 || not (is_ident_char src.[j - 1]))
    && (j + m = n || not (is_ident_char src.[j + m]))
  in
  while !i < n && !err = None do
    if starts_word !i "if" || starts_word !i "for" || starts_word !i "while"
    then begin
      (* header runs to the '{' or, for brace-less bodies, the ';' *)
      let j = ref !i in
      while !j < n && src.[!j] <> '{' && src.[!j] <> ';' do
        incr j
      done;
      let header = String.sub src !i (!j - !i) in
      let tid_dep = word_occurrences header "tid" <> [] in
      if !j < n && src.[!j] = '{' then begin
        stack := tid_dep :: !stack;
        i := !j + 1
      end
      else begin
        (* brace-less body: treat the statement itself as guarded *)
        (if tid_dep then
           let body = String.sub src !i (!j - !i) in
           if word_occurrences body barrier <> [] then
             err :=
               Some
                 (Printf.sprintf "%s under tid-dependent guard at byte %d"
                    barrier !i));
        i := !j + 1
      end
    end
    else if starts_word !i "else" then begin
      (* else-branch inherits the popped if's uniformity *)
      let j = ref (!i + 4) in
      while !j < n && (src.[!j] = ' ' || src.[!j] = '\n') do
        incr j
      done;
      if !j < n && src.[!j] = '{' then begin
        stack := !last_popped :: !stack;
        i := !j + 1
      end
      else i := !i + 4
    end
    else if src.[!i] = '{' then begin
      stack := false :: !stack;
      incr i
    end
    else if src.[!i] = '}' then begin
      (match !stack with
      | top :: rest ->
        last_popped := top;
        stack := rest
      | [] -> ());
      incr i
    end
    else if starts_word !i barrier then begin
      if List.exists (fun g -> g) !stack then
        err :=
          Some
            (Printf.sprintf "%s inside tid-dependent control flow at byte %d"
               barrier !i);
      i := !i + String.length barrier
    end
    else incr i
  done;
  match !err with Some e -> Error e | None -> Ok ()

let decl_patterns target kind name =
  match (target, kind) with
  | Ir.Wgsl, `Fn -> [ "fn " ^ name ^ "(" ]
  | (Ir.Cuda | Ir.Opencl | Ir.Metal), `Fn -> [ "void " ^ name ^ "(" ]
  | Ir.Wgsl, `Region -> [ "fn " ^ name ^ "(" ]
  | (Ir.Cuda | Ir.Opencl | Ir.Metal), `Region -> [ "int " ^ name ^ "(" ]
  | Ir.Wgsl, `Buffer -> [ "> " ^ name ^ ":" ]
  | Ir.Cuda, `Buffer -> [ "float* " ^ name ]
  | Ir.Opencl, `Buffer -> [ "__global float* " ^ name ]
  | Ir.Metal, `Buffer -> [ "device float* " ^ name ]

let check (target : Ir.target) (p : Ir.program) src =
  let s = strip src in
  let ( let* ) = Result.bind in
  let* () = check_balance s in
  let* () =
    if word_occurrences s (barrier_token target) = [] then
      Error (Printf.sprintf "no %s in kernel" (barrier_token target))
    else Ok ()
  in
  let* () = check_barrier_uniformity s ~barrier:(barrier_token target) in
  let rec all = function
    | [] -> Ok ()
    | (name, kind) :: rest ->
      (* the CUDA/Metal host code re-declares buffer names (cudaMalloc /
         newBuffer), so uniqueness is only enforced for functions *)
      let unique = kind <> `Buffer in
      let* () =
        check_decl ~unique s ~name ~patterns:(decl_patterns target kind name)
      in
      all rest
  in
  let names =
    List.map (fun (w : Ir.work_fn) -> (w.Ir.w_name, `Fn)) p.Ir.work_fns
    @ List.map
        (fun (v, _) -> (Printf.sprintf "region_%d" v, `Region))
        p.Ir.regions
    @ List.map
        (fun (b : Ir.buffer) -> (b.Ir.b_name, `Buffer))
        (Array.to_list p.Ir.buffers)
  in
  all names

let check_err target p src =
  match check target p src with
  | Ok () -> Ok ()
  | Error e -> Error (Printf.sprintf "%s: %s" (Ir.target_name target) e)
