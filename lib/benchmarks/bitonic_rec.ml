open Streamit

let n = 8
let name = "BitonicRec"
let description = "Recursive implementation of the bitonic sorting network."

(* Unique names within one program, reproducible across constructions:
   the counter restarts at every [stream ()] call, so two builds of the
   stream (and hence their flattened graphs and generated CUDA) are
   identical. *)
let ctr = ref 0
let reset_names () = ctr := 0

let fresh base =
  incr ctr;
  Printf.sprintf "%s_%d" base !ctr

(* 2-key compare-exchange. *)
let ce ~asc =
  let open Kernel.Build in
  let lo = if asc then Kernel.Min else Kernel.Max in
  let hi = if asc then Kernel.Max else Kernel.Min in
  Kernel.make_filter
    ~name:(fresh (if asc then "CEasc" else "CEdesc"))
    ~pop:2 ~push:2 ~in_ty:Types.TInt ~out_ty:Types.TInt
    [
      let_ "a" pop;
      let_ "b" pop;
      push (Kernel.Binop (lo, v "a", v "b"));
      push (Kernel.Binop (hi, v "a", v "b"));
    ]

(* Merge a bitonic sequence of size [sz] into [asc] order.  The
   comparison stage pairs element j with j+sz/2 via a 1-weighted
   round-robin split-join; the halves are then merged recursively. *)
let rec merge sz ~asc =
  if sz = 2 then Ast.Filter (ce ~asc)
  else begin
    let half = sz / 2 in
    let ones = List.init half (fun _ -> 1) in
    let compare_stage =
      Ast.round_robin_sj (fresh "mergecmp") ones
        (List.init half (fun _ -> Ast.Filter (ce ~asc)))
        ones
    in
    let halves =
      Ast.round_robin_sj (fresh "mergerec") [ half; half ]
        [ merge half ~asc; merge half ~asc ]
        [ half; half ]
    in
    Ast.pipeline (fresh "merge") [ compare_stage; halves ]
  end

let rec sort sz ~asc =
  if sz = 2 then Ast.Filter (ce ~asc)
  else begin
    let half = sz / 2 in
    let split =
      Ast.round_robin_sj (fresh "sorthalves") [ half; half ]
        [ sort half ~asc:true; sort half ~asc:false ]
        [ half; half ]
    in
    Ast.pipeline (fresh "sort") [ split; merge sz ~asc ]
  end

let stream () =
  reset_names ();
  Ast.pipeline name [ sort n ~asc:true ]
