open Streamit

type entry = {
  name : string;
  description : string;
  stream : unit -> Ast.stream;
  paper_filters : int;
  paper_peeking : int;
  paper_buffer_bytes : int;
  input_ty : Types.elem_ty;
  input : int -> Types.value;
}

(* Deterministic splitmix-style hash for reproducible input tapes. *)
let hash_int i =
  let z = (i + 0x9e3779b9) * 0x85ebca6b land 0x3fffffff in
  let z = (z lxor (z lsr 13)) * 0xc2b2ae35 land 0x3fffffff in
  z lxor (z lsr 16)

let int_input i = Types.VInt (hash_int i mod 1000)

let float_input i =
  Types.VFloat (float_of_int (hash_int i mod 2000 - 1000) /. 500.0)

let all =
  [
    {
      name = Bitonic.name;
      description = Bitonic.description;
      stream = Bitonic.stream;
      paper_filters = 58;
      paper_peeking = 0;
      paper_buffer_bytes = 5_308_416;
      input_ty = Types.TInt;
      input = int_input;
    };
    {
      name = Bitonic_rec.name;
      description = Bitonic_rec.description;
      stream = Bitonic_rec.stream;
      paper_filters = 61;
      paper_peeking = 0;
      paper_buffer_bytes = 4_472_832;
      input_ty = Types.TInt;
      input = int_input;
    };
    {
      name = Dct.name;
      description = Dct.description;
      stream = Dct.stream;
      paper_filters = 40;
      paper_peeking = 0;
      paper_buffer_bytes = 29_360_128;
      input_ty = Types.TFloat;
      input = float_input;
    };
    {
      name = Des.name;
      description = Des.description;
      stream = (fun () -> Des.stream ());
      paper_filters = 55;
      paper_peeking = 0;
      paper_buffer_bytes = 59_768_832;
      input_ty = Types.TInt;
      input = (fun i -> Types.VInt (hash_int i));
    };
    {
      name = Fft.name;
      description = Fft.description;
      stream = Fft.stream;
      paper_filters = 26;
      paper_peeking = 0;
      paper_buffer_bytes = 25_165_824;
      input_ty = Types.TFloat;
      input = float_input;
    };
    {
      name = Filterbank.name;
      description = Filterbank.description;
      stream = Filterbank.stream;
      paper_filters = 53;
      paper_peeking = 16;
      paper_buffer_bytes = 7_471_104;
      input_ty = Types.TFloat;
      input = float_input;
    };
    {
      name = Fm_radio.name;
      description = Fm_radio.description;
      stream = Fm_radio.stream;
      paper_filters = 67;
      paper_peeking = 22;
      paper_buffer_bytes = 1_671_168;
      input_ty = Types.TFloat;
      input = float_input;
    };
    {
      name = Matrix_mult.name;
      description = Matrix_mult.description;
      stream = Matrix_mult.stream;
      paper_filters = 43;
      paper_peeking = 0;
      paper_buffer_bytes = 92_602_368;
      input_ty = Types.TFloat;
      input = float_input;
    };
  ]

(* Benchmark lookup is case-insensitive and ignores '_'/'-' separators,
   so "fm_radio", "FMRadio" and "fm-radio" all name the same entry. *)
let canon n =
  String.lowercase_ascii
    (String.concat "" (String.split_on_char '_' (String.concat "" (String.split_on_char '-' n))))

let find n = List.find_opt (fun e -> canon e.name = canon n) all

let names = List.map (fun e -> e.name) all

let our_filters e = Ast.num_filters (e.stream ())

let our_peeking e =
  List.length (List.filter Kernel.is_peeking (Ast.filters (e.stream ())))
