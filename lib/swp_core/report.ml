(* Flight-recorder report: one structured provenance record per compile.

   Everything here is a pure function of the [Compile.compiled] value —
   the assembler reads no global state, so serial and parallel compiles
   of the same program yield byte-identical reports (wall-clock timings
   are opt-in and excluded from the default serialization). *)

module J = Obs.Report

type t = { program : string option; compiled : Compile.compiled }

let assemble ?program compiled = { program; compiled }

(* Canonical digest of the schedule decision: the committed search
   signature plus the schedule assignment and buffer sizing it produced.
   Deliberately independent of any rendered artifact (the CUDA header
   embeds this digest, so hashing the CUDA text would be circular). *)
let schedule_signature (c : Compile.compiled) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Ii_search.log_signature c.Compile.search_stats);
  let s = c.Compile.schedule in
  Buffer.add_string b (Printf.sprintf "ii=%d sms=%d\n" s.Swp_schedule.ii s.Swp_schedule.num_sms);
  List.iter
    (fun (e : Swp_schedule.entry) ->
      Buffer.add_string b
        (Printf.sprintf "v=%d k=%d sm=%d o=%d f=%d\n"
           e.Swp_schedule.inst.Instances.node e.Swp_schedule.inst.Instances.k
           e.Swp_schedule.sm e.Swp_schedule.o e.Swp_schedule.f))
    s.Swp_schedule.entries;
  List.iter
    (fun ((e : Streamit.Graph.edge), bytes) ->
      Buffer.add_string b
        (Printf.sprintf "buf %d->%d %d\n" e.Streamit.Graph.src
           e.Streamit.Graph.dst bytes))
    c.Compile.sizing.Buffer_layout.per_edge;
  Digest.to_hex (Digest.string (Buffer.contents b))

let scheme_name = function
  | Compile.Swp_coalesced -> "SWP"
  | Compile.Swp_non_coalesced -> "SWPNC"

let bounds_doc (b : Mii.bounds) =
  J.Obj
    [
      ("res_mii", J.Int b.Mii.res_classic);
      ("res_mii_sharp", J.Int b.Mii.res_sharp);
      ("rec_mii", J.Int b.Mii.recurrence);
      ("no_wrap", J.Int b.Mii.no_wrap);
      ("combinatorial", J.Int b.Mii.combinatorial);
      ("lp", match b.Mii.lp with Some v -> J.Int v | None -> J.Null);
      ("final", J.Int b.Mii.final);
      ("binding", J.Str b.Mii.binding);
    ]

let attempt_doc ~timings (a : Ii_search.attempt) =
  J.Obj
    ([
       ("ii", J.Int a.Ii_search.ii);
       ("arm", J.Str a.Ii_search.arm);
       ("tried_exact", J.Bool a.Ii_search.tried_exact);
       ("feasible", J.Bool a.Ii_search.feasible);
       ("lp_pivots", J.Int a.Ii_search.lp_pivots);
       ("bb_nodes", J.Int a.Ii_search.bb_nodes);
       ("work_units", J.Int a.Ii_search.work_units);
       ("budget_hit", J.Bool a.Ii_search.budget_hit);
     ]
    @
    if timings then [ ("solve_time_s", J.Float a.Ii_search.solve_time_s) ]
    else [])

let stage_doc ~timings (s : Compile.stage_spend) =
  J.Obj
    ([ ("stage", J.Str s.Compile.stage); ("work", J.Int s.Compile.work) ]
    @ if timings then [ ("wall_s", J.Float s.Compile.wall_s) ] else [])

let cand_doc (c : Select.cand) =
  J.Obj
    [
      ("regs", J.Int c.Select.cand_regs);
      ("block_threads", J.Int c.Select.cand_threads);
      ( "norm_ii",
        match c.Select.cand_norm with
        | Some v -> J.Float v
        | None -> J.Null );
    ]

let to_doc ?(timings = false) t =
  let c = t.compiled in
  let st = c.Compile.search_stats in
  let prov = c.Compile.prov in
  let cfg = c.Compile.config in
  J.Obj
    ([
       ( "program",
         match t.program with Some p -> J.Str p | None -> J.Null );
       ("arch", J.Str c.Compile.arch.Gpusim.Arch.name);
       ("scheme", J.Str (scheme_name c.Compile.scheme));
       ("num_sms", J.Int c.Compile.schedule.Swp_schedule.num_sms);
       ("quality", J.Str (Compile.quality_name c.Compile.quality));
       ("rationale", J.Str (Compile.rationale_name prov.Compile.rationale));
       ( "fallback_seed_ii",
         match prov.Compile.fallback_seed_ii with
         | Some i -> J.Int i
         | None -> J.Null );
       ( "ii",
         J.Obj
           [
             ("achieved", J.Int st.Ii_search.achieved_ii);
             ("lower_bound", J.Int st.Ii_search.lower_bound);
             ( "gap",
               J.Int (st.Ii_search.achieved_ii - st.Ii_search.lower_bound) );
             ("relaxation", J.Float st.Ii_search.relaxation);
             ("bounds", bounds_doc st.Ii_search.bounds);
           ] );
       ( "search",
         J.Obj
           [
             ("attempts", J.Int st.Ii_search.attempts);
             ("used_exact", J.Bool st.Ii_search.used_exact);
             ("refined", J.Bool st.Ii_search.refined);
             ( "attempt_log",
               J.Arr
                 (List.map (attempt_doc ~timings) st.Ii_search.attempt_log) );
           ] );
       ( "stages",
         J.Arr (List.map (stage_doc ~timings) prov.Compile.stage_spends) );
       ("ledger_total", J.Int prov.Compile.ledger_total);
       ( "selection",
         J.Obj
           [
             ("regs", J.Int cfg.Select.regs);
             ("block_threads", J.Int cfg.Select.block_threads);
             ("scale", J.Int cfg.Select.scale);
             ("norm_ii", J.Float cfg.Select.norm_ii);
             ("scoreboard", J.Arr (List.map cand_doc cfg.Select.scoreboard));
           ] );
       ( "schedule",
         J.Obj
           [
             ("stages", J.Int (Swp_schedule.stages c.Compile.schedule));
             ("coarsening", J.Int c.Compile.coarsening);
             ( "buffer_bytes",
               J.Int c.Compile.sizing.Buffer_layout.total_bytes );
           ] );
       ("signature", J.Str (schedule_signature c));
     ]
    @
    if timings then [ ("total_wall_s", J.Float prov.Compile.total_wall_s) ]
    else [])

let to_json ?timings t = J.to_string (to_doc ?timings t)
let to_json_indent ?timings t = J.to_string_indent (to_doc ?timings t)

let pp_human fmt t =
  let c = t.compiled in
  let st = c.Compile.search_stats in
  let b = st.Ii_search.bounds in
  let prov = c.Compile.prov in
  let cfg = c.Compile.config in
  let name = match t.program with Some p -> p | None -> "<program>" in
  Format.fprintf fmt "@[<v>compile report: %s (%s, %s, %d SMs)@," name
    (scheme_name c.Compile.scheme)
    c.Compile.arch.Gpusim.Arch.name
    c.Compile.schedule.Swp_schedule.num_sms;
  Format.fprintf fmt "  quality: %s — %a@,"
    (Compile.quality_name c.Compile.quality)
    Compile.pp_rationale prov.Compile.rationale;
  (match prov.Compile.fallback_seed_ii with
  | Some i -> Format.fprintf fmt "  fallback seeded at II=%d@," i
  | None -> ());
  Format.fprintf fmt
    "  II: achieved %d, lower bound %d (binding: %s), gap %d (%.1f%%)@,"
    st.Ii_search.achieved_ii st.Ii_search.lower_bound b.Mii.binding
    (st.Ii_search.achieved_ii - st.Ii_search.lower_bound)
    (100.0 *. st.Ii_search.relaxation);
  Format.fprintf fmt
    "    bounds: res_mii=%d sharp=%d rec_mii=%d no_wrap=%d lp=%s@,"
    b.Mii.res_classic b.Mii.res_sharp b.Mii.recurrence b.Mii.no_wrap
    (match b.Mii.lp with Some v -> string_of_int v | None -> "skipped");
  Format.fprintf fmt "  search: %d committed attempts%s%s@,"
    st.Ii_search.attempts
    (if st.Ii_search.used_exact then ", exact" else "")
    (if st.Ii_search.refined then ", LNS-refined" else "");
  List.iter
    (fun a -> Format.fprintf fmt "    %a@," Ii_search.pp_attempt a)
    st.Ii_search.attempt_log;
  Format.fprintf fmt "  stages (work units):@,";
  List.iter
    (fun (s : Compile.stage_spend) ->
      Format.fprintf fmt "    %-8s %8d@," s.Compile.stage s.Compile.work)
    prov.Compile.stage_spends;
  Format.fprintf fmt "    %-8s %8d@," "total" prov.Compile.ledger_total;
  let feas =
    List.length
      (List.filter
         (fun (x : Select.cand) -> x.Select.cand_norm <> None)
         cfg.Select.scoreboard)
  in
  Format.fprintf fmt
    "  selection: regs=%d block_threads=%d scale=%d norm_ii=%.4f (%d/%d \
     candidates feasible)@,"
    cfg.Select.regs cfg.Select.block_threads cfg.Select.scale
    cfg.Select.norm_ii feas
    (List.length cfg.Select.scoreboard);
  Format.fprintf fmt
    "  schedule: %d pipeline stages, %d buffer bytes, coarsening %d@,"
    (Swp_schedule.stages c.Compile.schedule)
    c.Compile.sizing.Buffer_layout.total_bytes c.Compile.coarsening;
  Format.fprintf fmt "  signature: %s@]" (schedule_signature c)
