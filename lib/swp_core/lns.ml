open Numeric

(* Large-neighborhood refinement of a feasible schedule: freeze the
   winning schedule's SM assignment, pick a target II below the achieved
   one, and repair the assignment so every SM load fits the target —
   greedy relocations and swaps off overloaded SMs first, then (for
   small windows) an exact re-pack ILP of the instances on the still-
   overloaded SMs — and finally re-run the phase-2 longest-path
   placement at the target.  Each probe is deterministic (fixed
   iteration orders, work-unit budgets only) and the driver commits
   probes serially in target order, so refinement preserves the
   byte-identical determinism of the surrounding search. *)

type probe = {
  target : int;
  feasible : bool;
  moved : int;
  exact_window : bool;
  lp_pivots : int;
  bb_nodes : int;
  work_units : int;
  time_s : float;
}

let m_probes = Obs.Metrics.counter "lns.probes"
let m_window_solves = Obs.Metrics.counter "lns.window_solves"

(* Exact-rational pivot cost grows with the magnitude of the capacity
   coefficients (the target II), not just the tableau size, so the
   window ILP is gated on the target too — past this, work-unit caps no
   longer translate into bounded wall time per pivot. *)
let exact_max_target = 512

(* Greedy repair: relocations first (worst-fit destination — the least
   loaded SM that fits, so future moves keep room), then swaps of a big
   instance on an overloaded SM against a smaller one elsewhere.  Every
   move strictly decreases the total overload, so the loop terminates.
   All scan orders are fixed (SM index ascending, instances by
   decreasing delay with index tie-break) for determinism. *)
let repair ~n ~delays ~num_sms ~target sm_of =
  let load = Array.make num_sms 0 in
  for i = 0 to n - 1 do
    load.(sm_of.(i)) <- load.(sm_of.(i)) + delays.(i)
  done;
  let moved = ref 0 in
  let own_desc p =
    List.stable_sort
      (fun a b ->
        match compare delays.(b) delays.(a) with
        | 0 -> compare a b
        | c -> c)
      (List.filter (fun i -> sm_of.(i) = p) (List.init n Fun.id))
  in
  let progress = ref true in
  while !progress && Array.exists (fun l -> l > target) load do
    progress := false;
    for p = 0 to num_sms - 1 do
      if load.(p) > target then
        List.iter
          (fun i ->
            if load.(p) > target then begin
              let dest = ref (-1) in
              for q = 0 to num_sms - 1 do
                if
                  q <> p
                  && load.(q) + delays.(i) <= target
                  && (!dest < 0 || load.(q) < load.(!dest))
                then dest := q
              done;
              if !dest >= 0 then begin
                sm_of.(i) <- !dest;
                load.(p) <- load.(p) - delays.(i);
                load.(!dest) <- load.(!dest) + delays.(i);
                incr moved;
                progress := true
              end
            end)
          (own_desc p)
    done;
    if not !progress then
      (* relocation is stuck: try pairwise swaps *)
      for p = 0 to num_sms - 1 do
        if load.(p) > target then
          List.iter
            (fun a ->
              if load.(p) > target then begin
                let found = ref None in
                (try
                   for q = 0 to num_sms - 1 do
                     if q <> p then
                       for b = 0 to n - 1 do
                         if
                           sm_of.(b) = q
                           && delays.(b) < delays.(a)
                           && load.(p) - delays.(a) + delays.(b) <= target
                           && load.(q) - delays.(b) + delays.(a) <= target
                         then begin
                           found := Some (q, b);
                           raise Exit
                         end
                       done
                   done
                 with Exit -> ());
                match !found with
                | Some (q, b) ->
                  sm_of.(a) <- q;
                  sm_of.(b) <- p;
                  load.(p) <- load.(p) - delays.(a) + delays.(b);
                  load.(q) <- load.(q) - delays.(b) + delays.(a);
                  incr moved;
                  progress := true
                | None -> ()
              end)
            (own_desc p)
      done
  done;
  (load, !moved)

(* Exact window re-pack: a small bin-packing ILP over the instances of
   the still-overloaded SMs, with the other SMs' loads frozen as reduced
   capacities.  Screened by the phase-1 LP feasibility oracle first so
   provably hopeless windows never reach branch-and-bound. *)
let exact_repack ~delays ~window ~caps ~node_budget ~work tok_pivots tok_nodes =
  let num_sms = Array.length caps in
  let p = Lp.Problem.create () in
  let var = Hashtbl.create 64 in
  List.iter
    (fun i ->
      for sm = 0 to num_sms - 1 do
        Hashtbl.replace var (i, sm)
          (Lp.Problem.add_var p ~kind:Lp.Problem.Binary
             (Printf.sprintf "y_%d_%d" i sm))
      done)
    window;
  List.iter
    (fun i ->
      Lp.Problem.add_constraint p
        ~name:(Printf.sprintf "assign_%d" i)
        (Lp.Linexpr.of_terms
           (List.init num_sms (fun sm -> (Rat.one, Hashtbl.find var (i, sm)))))
        Lp.Problem.Eq
        (Lp.Linexpr.of_int 1))
    window;
  Array.iteri
    (fun sm cap ->
      Lp.Problem.add_constraint p
        ~name:(Printf.sprintf "cap_%d" sm)
        (Lp.Linexpr.of_terms
           (List.map
              (fun i -> (Rat.of_int delays.(i), Hashtbl.find var (i, sm)))
              window))
        Lp.Problem.Le (Lp.Linexpr.of_int cap))
    caps;
  let tok = Resil.Budget.create ~label:"lns.window" ~work () in
  let nv = Lp.Problem.num_vars p in
  let lb = Array.init nv (Lp.Problem.var_lb p)
  and ub = Array.init nv (Lp.Problem.var_ub p) in
  let lp_stats = ref Lp.Solution.empty_lp_stats in
  let screen = Lp.Simplex.feasible_with_bounds ~budget:tok ~stats:lp_stats p ~lb ~ub in
  tok_pivots := !tok_pivots + !lp_stats.Lp.Solution.pivots;
  match screen with
  | `Infeasible -> None
  | `Unknown -> None
  | `Feasible -> (
    Obs.Metrics.inc m_window_solves;
    let outcome, bb = Lp.Branch_bound.solve ~node_budget ~budget:tok p in
    tok_pivots := !tok_pivots + bb.Lp.Branch_bound.lp_pivots;
    tok_nodes := !tok_nodes + bb.Lp.Branch_bound.nodes_explored;
    match outcome with
    | Lp.Solution.Optimal sol ->
      Some
        (List.map
           (fun i ->
             let sm = ref (-1) in
             for q = 0 to num_sms - 1 do
               if Lp.Solution.value_int sol (Hashtbl.find var (i, q)) = 1 then
                 sm := q
             done;
             (i, !sm))
           window)
    | _ -> None)

let refine ?(rounds = 12) ?(node_budget = 600) ?(window_work = 1500)
    ?(max_window_vars = 96) ~ledger_ok ~commit ~insts ~deps g cfg ~num_sms ~lb
    (s0 : Swp_schedule.t) =
  let insts = Array.of_list insts in
  let n = Array.length insts in
  if n = 0 || s0.Swp_schedule.ii <= lb then s0
  else begin
    let itbl = Hashtbl.create (2 * n) in
    Array.iteri (fun i inst -> Hashtbl.replace itbl inst i) insts;
    let idx i = match Hashtbl.find_opt itbl i with Some x -> x | None -> -1 in
    let delays =
      Array.map
        (fun (i : Instances.instance) -> cfg.Select.delay.(i.node))
        insts
    in
    let sm_of_schedule (s : Swp_schedule.t) =
      let a = Array.make n 0 in
      List.iter
        (fun (e : Swp_schedule.entry) ->
          let i = idx e.inst in
          if i >= 0 then a.(i) <- e.sm)
        s.Swp_schedule.entries;
      a
    in
    let best = ref s0 in
    let probe_at target =
      let t0 = Resil.Clock.now () in
      Obs.Metrics.inc m_probes;
      let sm_of = sm_of_schedule !best in
      let load, moved = repair ~n ~delays ~num_sms ~target sm_of in
      let pivots = ref 0 and nodes = ref 0 in
      let used_window = ref false in
      let still_over = Array.exists (fun l -> l > target) load in
      let assignment_ok =
        if not still_over then true
        else begin
          let window =
            List.filter (fun i -> load.(sm_of.(i)) > target) (List.init n Fun.id)
          in
          if
            List.length window * num_sms > max_window_vars
            || target > exact_max_target
          then false
          else begin
            used_window := true;
            let in_window = Array.make n false in
            List.iter (fun i -> in_window.(i) <- true) window;
            let caps = Array.make num_sms target in
            for i = 0 to n - 1 do
              if not in_window.(i) then
                caps.(sm_of.(i)) <- caps.(sm_of.(i)) - delays.(i)
            done;
            match
              exact_repack ~delays ~window ~caps ~node_budget
                ~work:window_work pivots nodes
            with
            | None -> false
            | Some assign ->
              List.iter (fun (i, sm) -> if sm >= 0 then sm_of.(i) <- sm) assign;
              true
          end
        end
      in
      let sched =
        if not assignment_ok then None
        else
          match
            Heuristic.place ~insts ~deps ~idx g cfg ~num_sms ~ii:target ~sm_of
          with
          | `Schedule s -> Some s
          | `Infeasible -> None
      in
      let probe =
        {
          target;
          feasible = sched <> None;
          moved;
          exact_window = !used_window;
          lp_pivots = !pivots;
          bb_nodes = !nodes;
          work_units = 1 + !pivots + !nodes;
          time_s = Resil.Clock.now () -. t0;
        }
      in
      (sched, probe)
    in
    (* Bisection between the lower bound and the achieved II, always
       repairing from the best schedule found so far; leftover rounds
       walk the frontier down one cycle at a time. *)
    let lo = ref (lb - 1) and r = ref rounds in
    while
      !r > 0
      && !best.Swp_schedule.ii - !lo > 1
      && ledger_ok ()
    do
      let hi = !best.Swp_schedule.ii in
      let mid = (!lo + hi) / 2 in
      let sched, probe = probe_at mid in
      commit probe;
      (match sched with Some s -> best := s | None -> lo := mid);
      decr r
    done;
    !best
  end
