open Numeric

type var_map = {
  w : (int * int * int, int) Hashtbl.t;
  o : (int * int, int) Hashtbl.t;
  f : (int * int, int) Hashtbl.t;
  g : (int, int) Hashtbl.t;
}

let q = Rat.of_int

let build ?insts ?deps ?(cuts = false) g (cfg : Select.config) ~num_sms ~ii =
  let insts =
    match insts with Some l -> l | None -> Instances.instances cfg
  in
  let deps = match deps with Some l -> l | None -> Instances.deps g cfg in
  (* Quick infeasibility: constraint (4) requires o >= 0 and o + d < T. *)
  let too_slow =
    List.find_opt
      (fun (i : Instances.instance) -> cfg.delay.(i.node) >= ii)
      insts
  in
  match too_slow with
  | Some i ->
    Error
      (Printf.sprintf "delay of %s (%d) exceeds II %d"
         (Streamit.Graph.name g i.node) cfg.delay.(i.node) ii)
  | None ->
    let p = Lp.Problem.create () in
    let vm =
      {
        w = Hashtbl.create 64;
        o = Hashtbl.create 64;
        f = Hashtbl.create 64;
        g = Hashtbl.create 64;
      }
    in
    (* Stage variables are bounded by the pipeline depth, which cannot
       usefully exceed the instance count. *)
    let f_ub = Rat.of_int (Instances.num_instances cfg + 1) in
    List.iter
      (fun (i : Instances.instance) ->
        for sm = 0 to num_sms - 1 do
          let id =
            Lp.Problem.add_var p ~kind:Lp.Problem.Binary
              (Printf.sprintf "w_%d_%d_%d" i.node i.k sm)
          in
          Hashtbl.replace vm.w (i.node, i.k, sm) id
        done;
        let oid =
          Lp.Problem.add_var p ~kind:Lp.Problem.Integer
            ~ub:(Some (q (ii - 1 - cfg.delay.(i.node))))
            (Printf.sprintf "o_%d_%d" i.node i.k)
        in
        Hashtbl.replace vm.o (i.node, i.k) oid;
        let fid =
          Lp.Problem.add_var p ~kind:Lp.Problem.Integer ~ub:(Some f_ub)
            (Printf.sprintf "f_%d_%d" i.node i.k)
        in
        Hashtbl.replace vm.f (i.node, i.k) fid)
      insts;
    (* (1) each instance on exactly one SM *)
    List.iter
      (fun (i : Instances.instance) ->
        let e =
          Lp.Linexpr.of_terms
            (List.init num_sms (fun sm ->
                 (Rat.one, Hashtbl.find vm.w (i.node, i.k, sm))))
        in
        Lp.Problem.add_constraint p
          ~name:(Printf.sprintf "assign_%d_%d" i.node i.k)
          e Lp.Problem.Eq Lp.Linexpr.(of_int 1))
      insts;
    (* (2) per-SM load within the II *)
    for sm = 0 to num_sms - 1 do
      let e =
        Lp.Linexpr.of_terms
          (List.map
             (fun (i : Instances.instance) ->
               (q cfg.delay.(i.node), Hashtbl.find vm.w (i.node, i.k, sm)))
             insts)
      in
      Lp.Problem.add_constraint p
        ~name:(Printf.sprintf "resource_%d" sm)
        e Lp.Problem.Le
        (Lp.Linexpr.of_int ii)
    done;
    (* Big-instance clique cuts (opt-in): two instances each longer than
       half the II can never share an SM, so at most one of them lands on
       each.  Valid a priori — they tighten the LP relaxation without
       excluding any integral solution.  Off by default so the base
       constraint system stays exactly the paper's. *)
    if cuts then begin
      let big =
        List.filter
          (fun (i : Instances.instance) -> 2 * cfg.delay.(i.node) > ii)
          insts
      in
      if List.length big >= 2 then
        for sm = 0 to num_sms - 1 do
          let e =
            Lp.Linexpr.of_terms
              (List.map
                 (fun (i : Instances.instance) ->
                   (Rat.one, Hashtbl.find vm.w (i.node, i.k, sm)))
                 big)
          in
          Lp.Problem.add_constraint p
            ~name:(Printf.sprintf "clique_%d" sm)
            e Lp.Problem.Le
            (Lp.Linexpr.of_int 1)
        done
    end;
    (* Symmetry breaking: pin the first instance to SM 0 (any solution
       can be permuted into this form). *)
    (match insts with
    | first :: _ ->
      Lp.Problem.add_constraint p ~name:"symmetry"
        (Lp.Linexpr.var (Hashtbl.find vm.w (first.node, first.k, 0)))
        Lp.Problem.Eq
        Lp.Linexpr.(of_int 1)
    | [] -> ());
    (* (7) + (8) per dependence *)
    List.iteri
      (fun di (dep : Instances.dep) ->
        let u = dep.src.Instances.node and ku = dep.src.Instances.k in
        let v = dep.dst.Instances.node and kv = dep.dst.Instances.k in
        let fu = Hashtbl.find vm.f (u, ku)
        and fv = Hashtbl.find vm.f (v, kv)
        and ou = Hashtbl.find vm.o (u, ku)
        and ov = Hashtbl.find vm.o (v, kv) in
        (* Self-dependences (an instance with itself, only possible via
           loop-carried edges) never cross SMs. *)
        if u = v && ku = kv then begin
          (* A >= A + T*jlag + d  =>  0 >= T*jlag + d *)
          if (ii * dep.jlag) + dep.d_src > 0 then
            Lp.Problem.add_constraint p
              ~name:(Printf.sprintf "dep%d_self_infeasible" di)
              (Lp.Linexpr.of_int 1) Lp.Problem.Le
              (Lp.Linexpr.of_int 0)
        end
        else begin
          let gid =
            Lp.Problem.add_var p ~kind:Lp.Problem.Binary
              (Printf.sprintf "g_%d" di)
          in
          Hashtbl.replace vm.g di gid;
          for sm = 0 to num_sms - 1 do
            let wu = Hashtbl.find vm.w (u, ku, sm)
            and wv = Hashtbl.find vm.w (v, kv, sm) in
            (* g >= wv - wu ; g >= wu - wv *)
            Lp.Problem.add_constraint p
              ~name:(Printf.sprintf "dep%d_g_a_%d" di sm)
              (Lp.Linexpr.of_terms
                 [ (Rat.one, gid); (Rat.one, wu); (Rat.minus_one, wv) ])
              Lp.Problem.Ge (Lp.Linexpr.of_int 0);
            Lp.Problem.add_constraint p
              ~name:(Printf.sprintf "dep%d_g_b_%d" di sm)
              (Lp.Linexpr.of_terms
                 [ (Rat.one, gid); (Rat.one, wv); (Rat.minus_one, wu) ])
              Lp.Problem.Ge (Lp.Linexpr.of_int 0)
          done;
          (* (8a): T*fv + ov >= T*(jlag + fu) + ou + d(u) *)
          Lp.Problem.add_constraint p
            ~name:(Printf.sprintf "dep%d_time" di)
            (Lp.Linexpr.of_terms
               [
                 (q ii, fv);
                 (Rat.one, ov);
                 (q (-ii), fu);
                 (Rat.minus_one, ou);
               ])
            Lp.Problem.Ge
            (Lp.Linexpr.of_int ((ii * dep.jlag) + dep.d_src));
          (* (8b): T*fv + ov >= T*(jlag + fu + g) *)
          Lp.Problem.add_constraint p
            ~name:(Printf.sprintf "dep%d_cross" di)
            (Lp.Linexpr.of_terms
               [
                 (q ii, fv);
                 (Rat.one, ov);
                 (q (-ii), fu);
                 (q (-ii), gid);
               ])
            Lp.Problem.Ge
            (Lp.Linexpr.of_int (ii * dep.jlag))
        end)
      deps;
    Ok (p, vm)

(* Cover-cut separation for the per-SM knapsack rows (2): from a
   fractional point, greedily build a cover C (instances whose combined
   delay exceeds the II) per SM in decreasing assignment-value order; the
   inequality sum_{i in C} w(i,sm) <= |C|-1 holds for every integral
   packing and is emitted only when the fractional point violates it.
   All arithmetic is exact rational and the orderings have deterministic
   tie-breaks, so separation is reproducible. *)
let cover_cuts vm insts (cfg : Select.config) ~num_sms ~ii
    (sol : Lp.Solution.t) =
  let cuts = ref [] in
  for sm = 0 to num_sms - 1 do
    let items =
      List.filter_map
        (fun (i : Instances.instance) ->
          let d = cfg.delay.(i.node) in
          if d <= 0 then None
          else
            let id = Hashtbl.find vm.w (i.node, i.k, sm) in
            let x = sol.Lp.Solution.values.(id) in
            if Rat.sign x <= 0 then None else Some (id, d, x))
        insts
    in
    let items =
      List.stable_sort
        (fun (ida, _, xa) (idb, _, xb) ->
          if Rat.equal xa xb then compare ida idb
          else if Rat.gt xa xb then -1
          else 1)
        items
    in
    (* take items until the delay sum exceeds the II: a cover *)
    let rec take cover dsum xsum = function
      | _ when dsum > ii -> Some (cover, xsum)
      | [] -> None
      | (id, d, x) :: tl -> take (id :: cover) (dsum + d) (Rat.add xsum x) tl
    in
    match take [] 0 Rat.zero items with
    | None -> ()
    | Some (cover, xsum) ->
      let k = List.length cover in
      if Rat.gt xsum (q (k - 1)) then
        cuts :=
          ( Lp.Linexpr.of_terms (List.rev_map (fun id -> (Rat.one, id)) cover),
            Lp.Problem.Le,
            Lp.Linexpr.of_int (k - 1) )
          :: !cuts
  done;
  List.rev !cuts

(* Translate a feasible schedule (typically the heuristic scheduler's) into
   an assignment of the ILP variables, to seed branch-and-bound as its
   incumbent.  SM labels are permuted so the first instance lands on SM 0,
   matching the symmetry-breaking constraint; the cross-SM indicators [g]
   are set from the permuted assignment.  Validity of the result is checked
   by {!Lp.Branch_bound} itself (an unusable seed is simply dropped). *)
let assignment_of_schedule p vm insts deps (s : Swp_schedule.t) ~num_sms =
  let sm_of = Hashtbl.create 64 and o_of = Hashtbl.create 64
  and f_of = Hashtbl.create 64 in
  List.iter
    (fun (e : Swp_schedule.entry) ->
      let key = (e.inst.Instances.node, e.inst.Instances.k) in
      Hashtbl.replace sm_of key e.sm;
      Hashtbl.replace o_of key e.o;
      Hashtbl.replace f_of key e.f)
    s.Swp_schedule.entries;
  let perm =
    match insts with
    | [] -> fun sm -> sm
    | (first : Instances.instance) :: _ ->
      let s0 = Hashtbl.find sm_of (first.node, first.k) in
      fun sm -> if sm = s0 then 0 else if sm = 0 then s0 else sm
  in
  let values = Array.make (Lp.Problem.num_vars p) Rat.zero in
  List.iter
    (fun (i : Instances.instance) ->
      let key = (i.node, i.k) in
      let sm = perm (Hashtbl.find sm_of key) in
      for s = 0 to num_sms - 1 do
        values.(Hashtbl.find vm.w (i.node, i.k, s)) <-
          (if s = sm then Rat.one else Rat.zero)
      done;
      values.(Hashtbl.find vm.o key) <- Rat.of_int (Hashtbl.find o_of key);
      values.(Hashtbl.find vm.f key) <- Rat.of_int (Hashtbl.find f_of key))
    insts;
  List.iteri
    (fun di (dep : Instances.dep) ->
      match Hashtbl.find_opt vm.g di with
      | None -> ()
      | Some gid ->
        let su =
          perm (Hashtbl.find sm_of (dep.src.Instances.node, dep.src.Instances.k))
        and sv =
          perm (Hashtbl.find sm_of (dep.dst.Instances.node, dep.dst.Instances.k))
        in
        values.(gid) <- (if su = sv then Rat.zero else Rat.one))
    deps;
  fun v -> values.(v)

let solve ?(node_budget = 4000) ?time_budget_s ?budget ?insts ?deps ?warm_start
    ?stats ?use_reference_lp ?(cuts = false) g cfg ~num_sms ~ii =
  let insts =
    match insts with Some l -> l | None -> Instances.instances cfg
  in
  let deps = match deps with Some l -> l | None -> Instances.deps g cfg in
  match build ~insts ~deps ~cuts g cfg ~num_sms ~ii with
  | Error _ -> `Infeasible
  | Ok (p, vm) -> (
    let incumbent =
      match warm_start with
      | Some (s : Swp_schedule.t)
        when s.Swp_schedule.ii = ii && s.Swp_schedule.num_sms = num_sms ->
        Some (assignment_of_schedule p vm insts deps s ~num_sms)
      | _ -> None
    in
    let cut_gen =
      if cuts then Some (cover_cuts vm insts cfg ~num_sms ~ii) else None
    in
    let outcome, bb =
      Lp.Branch_bound.solve ~node_budget ?time_budget_s ?budget ?incumbent
        ?use_reference_lp ?cuts:cut_gen p
    in
    (match stats with Some r -> r := Some bb | None -> ());
    match outcome with
    | Lp.Solution.Infeasible -> `Infeasible
    | Lp.Solution.Unbounded ->
      (* feasibility problem over bounded variables; cannot happen *)
      assert false
    | Lp.Solution.Budget_exhausted _ -> `Budget_exhausted
    | Lp.Solution.Optimal sol ->
      let entries =
        List.map
          (fun (i : Instances.instance) ->
            let sm = ref (-1) in
            for s = 0 to num_sms - 1 do
              if
                Lp.Solution.value_int sol (Hashtbl.find vm.w (i.node, i.k, s))
                = 1
              then sm := s
            done;
            {
              Swp_schedule.inst = i;
              sm = !sm;
              o = Lp.Solution.value_int sol (Hashtbl.find vm.o (i.node, i.k));
              f = Lp.Solution.value_int sol (Hashtbl.find vm.f (i.node, i.k));
            })
          insts
      in
      let sched = { Swp_schedule.ii; entries; num_sms; config = cfg } in
      (match Swp_schedule.validate g sched with
      | Ok () -> `Schedule sched
      | Error m -> failwith ("Ilp.solve: solver returned invalid schedule: " ^ m)))
