(** Execution-configuration selection (Algorithm of Fig. 7).

    Chooses the globally optimal (registers-per-thread, threads-per-block)
    pair — global because all filters are compiled in one CUDA compilation
    unit and must share a register cap — and, within it, the best thread
    count for each individual filter.  The metric is the work-normalised
    resource II: total per-steady-state execution time divided by the
    tokens the steady state produces at the sink. *)

type cand = {
  cand_regs : int;
  cand_threads : int;
  cand_norm : float option;
      (** work-normalised candidate II; [None] when the pair was
          infeasible for some filter.  Kept as an option (not a float
          sentinel) so configs stay structurally comparable — schedules
          embed their config and the determinism suite compares them
          with [(=)]. *)
}
(** One evaluated (registers, threads-per-block) candidate of the
    Fig. 7 sweep — the provenance report renders the full list as the
    selection scoreboard. *)

type config = {
  regs : int;            (** chosen register cap (bestRegs) *)
  block_threads : int;   (** chosen block size (bestThreads) *)
  threads : int array;   (** per node: threads it executes with *)
  delay : int array;     (** per node: cycles of one macro-firing, d(v) *)
  reps : int array;
      (** per node: macro firings per steady state, [k_v] of Sec. III —
          recomputed for the scaled push/pop rates (Fig. 7 line 7) *)
  scale : int;
      (** how many original steady states one macro steady state spans *)
  norm_ii : float;       (** the winning work-normalised candidate II *)
  scoreboard : cand list;
      (** every evaluated candidate pair in sweep order (empty on
          hand-constructed configs) *)
}

val select :
  ?budget:Resil.Budget.t ->
  Streamit.Graph.t -> Streamit.Sdf.rates -> Profile.data -> (config, string) result
(** [Error] when no (regs, threads) pair is feasible for every filter.
    [budget] is checked cooperatively at entry (an exhausted token
    raises {!Resil.Budget.Exhausted}) and charged one work unit per
    candidate pair evaluated, for stage accounting. *)

val macro_reps :
  Streamit.Graph.t -> Streamit.Sdf.rates -> threads:int array -> int array * int
(** Solves the steady-state equations for the scaled rates: node [v]
    firing with [threads.(v)] threads consumes/produces [threads.(v)]
    times more per firing.  Returns the primitive macro repetition vector
    together with the scale factor (original steady states per macro
    steady state). *)

val pp_config : Streamit.Graph.t -> Format.formatter -> config -> unit
