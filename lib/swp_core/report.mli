(** The compile flight recorder: assembles one structured provenance
    record per {!Compile.compile} — per-stage work accounting, the full
    II-search attempt timeline with arm attribution, the bound-gap
    explanation, the degradation-rung rationale, the config-sweep
    scoreboard, and a determinism signature.

    The report is a pure function of the {!Compile.compiled} value, so
    serial and [--jobs N] compiles of the same program serialize to
    byte-identical reports.  Wall-clock timings are opt-in
    ([~timings:true]) and excluded from the default (deterministic)
    serializations. *)

type t

val assemble : ?program:string -> Compile.compiled -> t
(** [program] labels the report (benchmark name or source path). *)

val schedule_signature : Compile.compiled -> string
(** MD5 hex digest of the schedule decision: the committed attempt-log
    signature ({!Ii_search.log_signature}) plus the schedule assignment
    and buffer sizing.  Independent of any rendered artifact — the CUDA
    provenance header embeds this digest. *)

val to_doc : ?timings:bool -> t -> Obs.Report.t
(** The report as a JSON document (default [timings = false]). *)

val to_json : ?timings:bool -> t -> string
(** Compact JSON (the hashable, baseline-checked form). *)

val to_json_indent : ?timings:bool -> t -> string

val pp_human : Format.formatter -> t -> unit
(** Indented human-readable explanation of the compile: achieved II vs
    binding bound, per-attempt outcomes, stage spend, rung rationale. *)
