type solver = Exact of int | Heuristic | Auto of int

type attempt = {
  ii : int;
  tried_exact : bool;
  feasible : bool;
  solve_time_s : float;
  lp_pivots : int;
  bb_nodes : int;
}

type stats = {
  lower_bound : int;
  achieved_ii : int;
  attempts : int;
  relaxation : float;
  used_exact : bool;
  attempt_log : attempt list;
}

let pp_attempt fmt (a : attempt) =
  Format.fprintf fmt "II=%-6d %-10s %-10s %10.6fs %8d pivots %6d nodes" a.ii
    (if a.tried_exact then "exact ILP" else "heuristic")
    (if a.feasible then "feasible" else "infeasible")
    a.solve_time_s a.lp_pivots a.bb_nodes

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "II=%d (bound %d, %.1f%% relaxation, %d attempts, %s solver)"
    s.achieved_ii s.lower_bound
    (100.0 *. s.relaxation)
    s.attempts
    (if s.used_exact then "exact" else "heuristic")

let m_attempts = Obs.Metrics.counter "ii_search.attempts"
let m_exact = Obs.Metrics.counter "ii_search.exact_attempts"
let m_searches = Obs.Metrics.counter "ii_search.searches"
let m_failures = Obs.Metrics.counter "ii_search.failures"
let h_attempt_s = Obs.Metrics.histogram "ii_search.attempt_seconds"
let h_relax = Obs.Metrics.histogram "ii_search.relaxation"

let search ?(solver = Auto 2000) ?(relax_step = 0.005) ?(max_relax = 4.0) g cfg
    ~num_sms =
  Obs.Trace.with_span "ii_search" @@ fun () ->
  Obs.Metrics.inc m_searches;
  (* The instance/dependence expansion does not depend on the candidate II:
     derive it once and reuse it across every attempt (and the MII bound). *)
  let insts = Instances.instances cfg in
  let deps = Instances.deps g cfg in
  match
    (try Ok (Mii.lower_bound ~deps g cfg ~num_sms)
     with Mii.Unschedulable m -> Error m)
  with
  | Error m ->
    Obs.Metrics.inc m_failures;
    Error ("unschedulable at any II: " ^ m)
  | Ok lb ->
  Obs.Trace.add_attr "lower_bound" (Obs.Trace.Int lb);
  (* the exact ILP is only worth its cost near the II lower bound, where
     the heuristic's packing granularity is the limiting factor *)
  let near_bound ii = ii <= lb + (lb / 50) + 2 in
  let log = ref [] in
  let mk_attempt ~ii ~tried_exact ~feasible ~t0 bb =
    let bb_nodes, lp_pivots =
      match bb with
      | Some (s : Lp.Branch_bound.stats) -> (s.nodes_explored, s.lp_pivots)
      | None -> (0, 0)
    in
    let a =
      {
        ii;
        tried_exact;
        feasible;
        solve_time_s = Sys.time () -. t0;
        lp_pivots;
        bb_nodes;
      }
    in
    Obs.Trace.add_attr "feasible" (Obs.Trace.Bool feasible);
    Obs.Trace.add_attr "solver"
      (Obs.Trace.Str (if tried_exact then "exact" else "heuristic"));
    Obs.Trace.add_attr "pivots" (Obs.Trace.Int lp_pivots);
    Obs.Trace.add_attr "nodes" (Obs.Trace.Int bb_nodes);
    a
  in
  (* Committing an attempt (log + metrics) is separated from probing it:
     speculative probes that lose the race to an earlier feasible II are
     discarded uncommitted, so the recorded search is bit-identical to
     the serial one. *)
  let commit (a : attempt) =
    log := a :: !log;
    Obs.Metrics.inc m_attempts;
    if a.tried_exact then Obs.Metrics.inc m_exact;
    Obs.Metrics.observe h_attempt_s a.solve_time_s
  in
  let try_at ii =
    Obs.Trace.with_span "ii_search.attempt"
      ~attrs:[ ("ii", Obs.Trace.Int ii) ]
    @@ fun () ->
    let t0 = Sys.time () in
    let bb = ref None in
    let res =
      match solver with
      | Heuristic -> (
        match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
        | `Schedule s -> Some (s, false)
        | `Infeasible -> None)
      | Exact budget -> (
        (* Warm start: hand the ILP the heuristic's schedule as its
           incumbent — branch-and-bound verifies it against the full
           constraint system and, the problem being pure feasibility,
           returns it without exploring.  Only a heuristic failure pays
           for a cold exact solve. *)
        let warm_start =
          match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
          | `Schedule s -> Some s
          | `Infeasible -> None
        in
        match
          Ilp.solve ~node_budget:budget ~time_budget_s:20.0 ~insts ~deps
            ?warm_start ~stats:bb g cfg ~num_sms ~ii
        with
        | `Schedule s -> Some (s, true)
        | `Infeasible | `Budget_exhausted -> None)
      | Auto budget -> (
        match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
        | `Schedule s -> Some (s, false)
        | `Infeasible ->
          (* The exact ILP is only worth invoking on problems small enough
             for the branch-and-bound to stand a chance within its budget
             (the assignment variables alone number instances x SMs). *)
          if Instances.num_instances cfg * num_sms > 96 || not (near_bound ii)
          then None
          else (
            match
              Ilp.solve ~node_budget:budget ~time_budget_s:1.0 ~insts ~deps
                ~stats:bb g cfg ~num_sms ~ii
            with
            | `Schedule s -> Some (s, true)
            | `Infeasible | `Budget_exhausted -> None))
    in
    let tried_exact =
      match solver with Exact _ -> true | Heuristic -> false | Auto _ -> !bb <> None
    in
    (res, mk_attempt ~ii ~tried_exact ~feasible:(res <> None) ~t0 !bb)
  in
  let max_ii = int_of_float (float_of_int lb *. (1.0 +. max_relax)) + 1 in
  let next_ii ii =
    max (ii + 1)
      (int_of_float (Float.round (float_of_int ii *. (1.0 +. relax_step))))
  in
  let success ~ii ~attempts (s, used_exact) =
    let relaxation = float_of_int (ii - lb) /. float_of_int (max 1 lb) in
    Obs.Metrics.observe h_relax relaxation;
    Obs.Trace.add_attr "achieved_ii" (Obs.Trace.Int ii);
    Obs.Trace.add_attr "attempts" (Obs.Trace.Int attempts);
    Ok
      ( s,
        {
          lower_bound = lb;
          achieved_ii = ii;
          attempts;
          relaxation;
          used_exact;
          attempt_log = List.rev !log;
        } )
  in
  (* The candidate sequence lb, next_ii lb, ... is fixed up front by
     (lb, relax_step) and each probe is a pure function of its candidate,
     so the search can speculate: probe the next K candidates
     concurrently, then walk the window in candidate order and commit the
     smallest feasible one — exactly the candidate the serial loop would
     have stopped at, with exactly its attempt log (later probes are
     wasted work, not observable results).  K = 1 (no global pool, or
     nested under another fan-out) is the serial search, window of one. *)
  let rec loop ii attempts =
    if ii > max_ii then begin
      Obs.Metrics.inc m_failures;
      Error
        (Printf.sprintf "no feasible schedule up to II=%d (bound %d)" max_ii lb)
    end
    else begin
      let k = max 1 (Par.Pool.parallelism ()) in
      let window =
        let rec take c n acc =
          if n = 0 || c > max_ii then List.rev acc
          else take (next_ii c) (n - 1) (c :: acc)
        in
        take ii k []
      in
      let probes = Par.Pool.map_auto try_at window in
      let rec scan cands probes attempts =
        match (cands, probes) with
        | [], _ | _, [] ->
          (* window exhausted, nothing feasible: continue past it *)
          loop
            (next_ii (List.nth window (List.length window - 1)))
            attempts
        | ii :: cands', (res, a) :: probes' -> (
          commit a;
          match res with
          | Some r -> success ~ii ~attempts r
          | None -> scan cands' probes' (attempts + 1))
      in
      scan window probes attempts
    end
  in
  loop lb 1
