type solver = Exact of int | Heuristic | Auto of int

type budget = {
  attempt_work : int option;
  exact_time_s : float option;
  auto_time_s : float option;
  total_work : int option;
  wall_clock_s : float option;
}

let default_budget =
  {
    attempt_work = None;
    exact_time_s = Some 20.0;
    auto_time_s = Some 1.0;
    total_work = None;
    wall_clock_s = None;
  }

type attempt = {
  ii : int;
  arm : string;
  tried_exact : bool;
  feasible : bool;
  solve_time_s : float;
  lp_pivots : int;
  bb_nodes : int;
  work_units : int;
  budget_hit : bool;
}

type stats = {
  lower_bound : int;
  bounds : Mii.bounds;
  achieved_ii : int;
  attempts : int;
  relaxation : float;
  used_exact : bool;
  refined : bool;
  attempt_log : attempt list;
}

type reason = [ `Unschedulable | `Budget | `Deadline | `Range ]

type error = {
  message : string;
  reason : reason;
  lower_bound : int;
  bounds : Mii.bounds option;
  attempt_log : attempt list;
}

let pp_reason fmt (r : reason) =
  Format.pp_print_string fmt
    (match r with
    | `Unschedulable -> "unschedulable"
    | `Budget -> "budget"
    | `Deadline -> "deadline"
    | `Range -> "range")

let pp_attempt fmt (a : attempt) =
  Format.fprintf fmt "II=%-6d %-6s %-10s %10.6fs %8d pivots %6d nodes%s" a.ii
    a.arm
    (if a.feasible then "feasible" else "infeasible")
    a.solve_time_s a.lp_pivots a.bb_nodes
    (if a.budget_hit then "  [budget hit]" else "")

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "II=%d (bound %d, %.1f%% relaxation, %d attempts, %s solver)"
    s.achieved_ii s.lower_bound
    (100.0 *. s.relaxation)
    s.attempts
    (if s.refined then "lns-refined"
     else if s.used_exact then "exact"
     else "heuristic")

(* Canonical attempt-log serialization for reproducibility checks: every
   field of the committed search except wall times, which cannot be
   byte-identical across runs.  Serial and parallel searches with the
   same inputs and work-unit budgets must produce equal signatures. *)
let log_signature (s : stats) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "bound=%d binding=%s achieved=%d attempts=%d exact=%b refined=%b\n"
       s.lower_bound s.bounds.Mii.binding s.achieved_ii s.attempts s.used_exact
       s.refined);
  List.iter
    (fun a ->
      Buffer.add_string b
        (Printf.sprintf
           "ii=%d arm=%s exact=%b feasible=%b pivots=%d nodes=%d work=%d \
            hit=%b\n"
           a.ii a.arm a.tried_exact a.feasible a.lp_pivots a.bb_nodes
           a.work_units a.budget_hit))
    s.attempt_log;
  Buffer.contents b

let m_attempts = Obs.Metrics.counter "ii_search.attempts"
let m_exact = Obs.Metrics.counter "ii_search.exact_attempts"
let m_searches = Obs.Metrics.counter "ii_search.searches"
let m_failures = Obs.Metrics.counter "ii_search.failures"
let m_budget_stops = Obs.Metrics.counter "ii_search.budget_stops"
let h_attempt_s = Obs.Metrics.histogram "ii_search.attempt_seconds"
let h_relax = Obs.Metrics.histogram "ii_search.relaxation"

(* The LP/cutting-plane bound pays a few exact-rational LP solves per
   probe.  Pivot cost grows with both the tableau size (assignment
   variables = instances x SMs) and the magnitude of the candidate II
   (the rational coefficients it seeds grow with it), so the bound is
   gated on both: small problems with small IIs are exactly where the
   combinatorial bounds leave a provable gap anyway. *)
let lp_bound_max_vars = 128
let lp_bound_max_ii = 256

let search ?(solver = Auto 2000) ?(portfolio = true) ?(lns_rounds = 12)
    ?(budget = default_budget) ?(relax_step = 0.005) ?(max_relax = 4.0) g cfg
    ~num_sms =
  Obs.Trace.with_span "ii_search" @@ fun () ->
  Obs.Metrics.inc m_searches;
  (* The instance/dependence expansion does not depend on the candidate II:
     derive it once and reuse it across every attempt (and the MII bound). *)
  let insts = Instances.instances cfg in
  let deps = Instances.deps g cfg in
  match
    (try
       let bounds = Mii.bounds ~deps g cfg ~num_sms in
       (* Cutting-plane refinement of the floor: deterministic, bounded
          work, each refuted candidate is an independent proof — see
          {!Mii.lp_bound}.  Gated by problem size. *)
       if
         Instances.num_instances cfg * num_sms <= lp_bound_max_vars
         && bounds.Mii.combinatorial <= lp_bound_max_ii
       then
         Ok
           (Mii.with_lp bounds
              (Mii.lp_bound ~insts ~deps g cfg ~num_sms
                 ~start:bounds.Mii.combinatorial))
       else Ok bounds
     with Mii.Unschedulable m -> Error m)
  with
  | Error m ->
    Obs.Metrics.inc m_failures;
    Obs.Log.event "ii_search.unschedulable"
      ~attrs:[ ("message", Obs.Log.Str m) ];
    Error
      {
        message = "unschedulable at any II: " ^ m;
        reason = `Unschedulable;
        lower_bound = 0;
        bounds = None;
        attempt_log = [];
      }
  | Ok bounds ->
  let lb = bounds.Mii.final in
  Obs.Trace.add_attr "lower_bound" (Obs.Trace.Int lb);
  Obs.Log.event "ii_search.bounds"
    ~attrs:
      [
        ("res_mii", Obs.Log.Int bounds.Mii.res_classic);
        ("res_mii_sharp", Obs.Log.Int bounds.Mii.res_sharp);
        ("rec_mii", Obs.Log.Int bounds.Mii.recurrence);
        ("no_wrap", Obs.Log.Int bounds.Mii.no_wrap);
        ( "lp",
          match bounds.Mii.lp with
          | Some v -> Obs.Log.Int v
          | None -> Obs.Log.Str "skipped" );
        ("final", Obs.Log.Int lb);
        ("binding", Obs.Log.Str bounds.Mii.binding);
      ];
  (* the exact ILP is only worth its cost near the II lower bound, where
     the heuristic's packing granularity is the limiting factor *)
  let near_bound ii = ii <= lb + (lb / 50) + 2 in
  let log = ref [] in
  let fail ~reason message =
    Obs.Metrics.inc m_failures;
    if reason = `Budget || reason = `Deadline then
      Obs.Metrics.inc m_budget_stops;
    Obs.Log.event "ii_search.stop"
      ~attrs:
        [
          ( "reason",
            Obs.Log.Str (Format.asprintf "%a" pp_reason reason) );
          ("committed", Obs.Log.Int (List.length !log));
        ];
    Error
      {
        message;
        reason;
        lower_bound = lb;
        bounds = Some bounds;
        attempt_log = List.rev !log;
      }
  in
  (* The search-wide ledger.  It is charged only when an attempt commits
     — never from inside a speculative probe — so parallel probing
     cannot perturb where a work-unit budget cuts the search off. *)
  let ledger =
    if budget.total_work <> None || budget.wall_clock_s <> None then
      Some
        (Resil.Budget.create ~label:"ii_search" ?work:budget.total_work
           ?wall_s:budget.wall_clock_s ())
    else None
  in
  let ledger_over () =
    match ledger with
    | None -> None
    | Some b -> Resil.Budget.exhausted_reason b
  in
  let mk_attempt ~ii ~arm ~arms_run ~tried_exact ~feasible ~budget_hit ~t0 bb
      =
    let bb_nodes, lp_pivots =
      match bb with
      | Some (s : Lp.Branch_bound.stats) -> (s.nodes_explored, s.lp_pivots)
      | None -> (0, 0)
    in
    let a =
      {
        ii;
        arm;
        tried_exact;
        feasible;
        solve_time_s = Resil.Clock.now () -. t0;
        lp_pivots;
        bb_nodes;
        (* one unit per arm raced (at least one even for injected
           attempts) keeps pure-heuristic attempts draining a
           total-work ledger, and makes the racing itself accountable *)
        work_units = lp_pivots + bb_nodes + max 1 arms_run;
        budget_hit;
      }
    in
    Obs.Trace.add_attr "feasible" (Obs.Trace.Bool feasible);
    Obs.Trace.add_attr "arm" (Obs.Trace.Str arm);
    Obs.Trace.add_attr "pivots" (Obs.Trace.Int lp_pivots);
    Obs.Trace.add_attr "nodes" (Obs.Trace.Int bb_nodes);
    a
  in
  (* Committing an attempt (log + metrics + ledger) is separated from
     probing it: speculative probes that lose the race to an earlier
     feasible II are discarded uncommitted, so the recorded search is
     bit-identical to the serial one. *)
  let commit (a : attempt) =
    log := a :: !log;
    Obs.Log.event "ii_search.commit"
      ~attrs:
        [
          ("ii", Obs.Log.Int a.ii);
          ("arm", Obs.Log.Str a.arm);
          ("feasible", Obs.Log.Bool a.feasible);
          ("work_units", Obs.Log.Int a.work_units);
          ("budget_hit", Obs.Log.Bool a.budget_hit);
        ];
    (match ledger with
    | Some b -> Resil.Budget.charge b a.work_units
    | None -> ());
    Obs.Metrics.inc m_attempts;
    if a.tried_exact then Obs.Metrics.inc m_exact;
    Portfolio.record_arm a.arm ~feasible:a.feasible;
    Obs.Metrics.observe h_attempt_s a.solve_time_s
  in
  let exact_gate_ok = Instances.num_instances cfg * num_sms <= 96 in
  let try_at ii =
    Obs.Trace.with_span "ii_search.attempt"
      ~attrs:[ ("ii", Obs.Trace.Int ii) ]
    @@ fun () ->
    let t0 = Resil.Clock.now () in
    let bb = ref None in
    (* Per-attempt work allotment: a fresh token per probe, so probes
       stay pure functions of their candidate II under parallel
       speculation. *)
    let tok =
      Option.map
        (fun w -> Resil.Budget.create ~label:"ii_search.attempt" ~work:w ())
        budget.attempt_work
    in
    (* Fault-injection point: an armed ["ii_search.attempt"] fault turns
       this probe into a budget-exhausted infeasible attempt, exercising
       the relax-and-retry and degradation paths without a crash. *)
    let injected =
      Resil.Inject.armed () && Resil.Inject.hit "ii_search.attempt"
    in
    let arm = ref "none" in
    let arms_run = ref 1 in
    let res =
      if injected then None
      else
        match solver with
        | Heuristic ->
          if portfolio then begin
            let o = Portfolio.try_ii ?tok ~insts ~deps g cfg ~num_sms ~ii in
            arm := o.Portfolio.arm;
            arms_run := o.Portfolio.arms_run;
            Option.map (fun s -> (s, false)) o.Portfolio.schedule
          end
          else (
            match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
            | `Schedule s ->
              arm := "ffd";
              Some (s, false)
            | `Infeasible -> None)
        | Exact nb -> (
          (* Warm start: hand the ILP the heuristic's schedule as its
             incumbent — branch-and-bound verifies it against the full
             constraint system and, the problem being pure feasibility,
             returns it without exploring.  Only a heuristic failure pays
             for a cold exact solve. *)
          let warm_start =
            match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
            | `Schedule s -> Some s
            | `Infeasible -> None
          in
          match
            Ilp.solve ~node_budget:nb ?time_budget_s:budget.exact_time_s
              ?budget:tok ~insts ~deps ?warm_start ~stats:bb g cfg ~num_sms
              ~ii
          with
          | `Schedule s ->
            arm := "exact";
            Some (s, true)
          | `Infeasible | `Budget_exhausted -> None)
        | Auto nb ->
          if portfolio then begin
            (* The exact arm is only admitted on problems small enough
               for branch-and-bound to stand a chance within its budget
               (the assignment variables alone number instances x SMs)
               and near the bound, where the packing granularity is the
               limiting factor. *)
            let o =
              Portfolio.try_ii ?tok
                ~allow_exact:(exact_gate_ok && near_bound ii) ~node_budget:nb
                ?time_budget_s:budget.auto_time_s ~insts ~deps g cfg ~num_sms
                ~ii
            in
            arm := o.Portfolio.arm;
            arms_run := o.Portfolio.arms_run;
            bb := o.Portfolio.bb;
            Option.map
              (fun s -> (s, o.Portfolio.arm = "exact"))
              o.Portfolio.schedule
          end
          else (
            match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
            | `Schedule s ->
              arm := "ffd";
              Some (s, false)
            | `Infeasible ->
              if (not exact_gate_ok) || not (near_bound ii) then None
              else (
                match
                  Ilp.solve ~node_budget:nb ?time_budget_s:budget.auto_time_s
                    ?budget:tok ~insts ~deps ~stats:bb g cfg ~num_sms ~ii
                with
                | `Schedule s ->
                  arm := "exact";
                  Some (s, true)
                | `Infeasible | `Budget_exhausted -> None))
    in
    let tried_exact =
      match solver with
      | Exact _ -> not injected
      | Heuristic -> false
      | Auto _ -> !bb <> None
    in
    let budget_hit =
      injected
      || (match tok with Some b -> Resil.Budget.over b | None -> false)
    in
    ( res,
      mk_attempt ~ii ~arm:!arm ~arms_run:!arms_run ~tried_exact
        ~feasible:(res <> None) ~budget_hit ~t0 !bb )
  in
  let max_ii = int_of_float (float_of_int lb *. (1.0 +. max_relax)) + 1 in
  let next_ii ii =
    max (ii + 1)
      (int_of_float (Float.round (float_of_int ii *. (1.0 +. relax_step))))
  in
  let success ~ii (s, from_exact) =
    (* LNS refinement: the upward search stops at the first feasible
       candidate; spend leftover rounds (and ledger) probing below it.
       Runs serially after the parallel window committed, so the refined
       schedule is a pure function of the committed search state. *)
    let s, ii, refined =
      let skip =
        lns_rounds <= 0 || ii <= lb
        || (match solver with Exact _ -> true | Heuristic | Auto _ -> false)
      in
      if skip then (s, ii, false)
      else begin
        let ledger_ok () = ledger_over () = None in
        let commit_probe (p : Lns.probe) =
          commit
            {
              ii = p.Lns.target;
              arm = "lns";
              tried_exact = p.Lns.exact_window;
              feasible = p.Lns.feasible;
              solve_time_s = p.Lns.time_s;
              lp_pivots = p.Lns.lp_pivots;
              bb_nodes = p.Lns.bb_nodes;
              work_units = p.Lns.work_units;
              budget_hit = false;
            }
        in
        let s' =
          Lns.refine ~rounds:lns_rounds ~ledger_ok ~commit:commit_probe ~insts
            ~deps g cfg ~num_sms ~lb s
        in
        if s'.Swp_schedule.ii < ii then begin
          Portfolio.record_lns ~from_ii:ii ~to_ii:s'.Swp_schedule.ii;
          (s', s'.Swp_schedule.ii, true)
        end
        else (s, ii, false)
      end
    in
    let relaxation = float_of_int (ii - lb) /. float_of_int (max 1 lb) in
    Obs.Metrics.observe h_relax relaxation;
    Obs.Trace.add_attr "achieved_ii" (Obs.Trace.Int ii);
    Obs.Trace.add_attr "attempts" (Obs.Trace.Int (List.length !log));
    Obs.Log.event "ii_search.done"
      ~attrs:
        [
          ("achieved_ii", Obs.Log.Int ii);
          ("refined", Obs.Log.Bool refined);
        ];
    Ok
      ( s,
        {
          lower_bound = lb;
          bounds;
          achieved_ii = ii;
          attempts = List.length !log;
          relaxation;
          used_exact = from_exact && not refined;
          refined;
          attempt_log = List.rev !log;
        } )
  in
  let stop_for reason =
    match reason with
    | Resil.Budget.Work ->
      fail ~reason:`Budget
        (Printf.sprintf
           "II search work budget exhausted after %d committed attempts \
            (bound %d)"
           (List.length !log) lb)
    | Resil.Budget.Wall ->
      fail ~reason:`Deadline
        (Printf.sprintf
           "II search deadline exceeded after %d committed attempts (bound %d)"
           (List.length !log) lb)
  in
  (* The candidate sequence lb, next_ii lb, ... is fixed up front by
     (lb, relax_step) and each probe is a pure function of its candidate,
     so the search can speculate: probe the next K candidates
     concurrently, then walk the window in candidate order and commit the
     smallest feasible one — exactly the candidate the serial loop would
     have stopped at, with exactly its attempt log (later probes are
     wasted work, not observable results).  K = 1 (no global pool, or
     nested under another fan-out) is the serial search, window of one. *)
  let rec loop ii =
    match ledger_over () with
    | Some r -> stop_for r
    | None ->
    if ii > max_ii then begin
      fail ~reason:`Range
        (Printf.sprintf "no feasible schedule up to II=%d (bound %d)" max_ii lb)
    end
    else begin
      let k = max 1 (Par.Pool.parallelism ()) in
      let window =
        let rec take c n acc =
          if n = 0 || c > max_ii then List.rev acc
          else take (next_ii c) (n - 1) (c :: acc)
        in
        take ii k []
      in
      let probes = Par.Pool.map_auto try_at window in
      let rec scan cands probes =
        match (cands, probes) with
        | [], _ | _, [] ->
          (* window exhausted, nothing feasible: continue past it *)
          loop (next_ii (List.nth window (List.length window - 1)))
        | ii :: cands', (res, a) :: probes' -> (
          commit a;
          match res with
          | Some r -> success ~ii r
          | None -> (
            (* the ledger is only consulted at commit points, the same
               points the serial search would consult it at *)
            match ledger_over () with
            | Some r -> stop_for r
            | None -> scan cands' probes'))
      in
      scan window probes
    end
  in
  loop lb
