type solver = Exact of int | Heuristic | Auto of int

type attempt = {
  ii : int;
  tried_exact : bool;
  feasible : bool;
  solve_time_s : float;
  lp_pivots : int;
  bb_nodes : int;
}

type stats = {
  lower_bound : int;
  achieved_ii : int;
  attempts : int;
  relaxation : float;
  used_exact : bool;
  attempt_log : attempt list;
}

let search ?(solver = Auto 2000) ?(relax_step = 0.005) ?(max_relax = 4.0) g cfg
    ~num_sms =
  (* The instance/dependence expansion does not depend on the candidate II:
     derive it once and reuse it across every attempt (and the MII bound). *)
  let insts = Instances.instances cfg in
  let deps = Instances.deps g cfg in
  let lb = Mii.lower_bound ~deps g cfg ~num_sms in
  (* the exact ILP is only worth its cost near the II lower bound, where
     the heuristic's packing granularity is the limiting factor *)
  let near_bound ii = ii <= lb + (lb / 50) + 2 in
  let log = ref [] in
  let record ~ii ~tried_exact ~feasible ~t0 bb =
    let bb_nodes, lp_pivots =
      match bb with
      | Some (s : Lp.Branch_bound.stats) -> (s.nodes_explored, s.lp_pivots)
      | None -> (0, 0)
    in
    log :=
      {
        ii;
        tried_exact;
        feasible;
        solve_time_s = Sys.time () -. t0;
        lp_pivots;
        bb_nodes;
      }
      :: !log
  in
  let try_at ii =
    let t0 = Sys.time () in
    let bb = ref None in
    let res =
      match solver with
      | Heuristic -> (
        match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
        | `Schedule s -> Some (s, false)
        | `Infeasible -> None)
      | Exact budget -> (
        (* Warm start: hand the ILP the heuristic's schedule as its
           incumbent — branch-and-bound verifies it against the full
           constraint system and, the problem being pure feasibility,
           returns it without exploring.  Only a heuristic failure pays
           for a cold exact solve. *)
        let warm_start =
          match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
          | `Schedule s -> Some s
          | `Infeasible -> None
        in
        match
          Ilp.solve ~node_budget:budget ~time_budget_s:20.0 ~insts ~deps
            ?warm_start ~stats:bb g cfg ~num_sms ~ii
        with
        | `Schedule s -> Some (s, true)
        | `Infeasible | `Budget_exhausted -> None)
      | Auto budget -> (
        match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
        | `Schedule s -> Some (s, false)
        | `Infeasible ->
          (* The exact ILP is only worth invoking on problems small enough
             for the branch-and-bound to stand a chance within its budget
             (the assignment variables alone number instances x SMs). *)
          if Instances.num_instances cfg * num_sms > 96 || not (near_bound ii)
          then None
          else (
            match
              Ilp.solve ~node_budget:budget ~time_budget_s:1.0 ~insts ~deps
                ~stats:bb g cfg ~num_sms ~ii
            with
            | `Schedule s -> Some (s, true)
            | `Infeasible | `Budget_exhausted -> None))
    in
    let tried_exact =
      match solver with Exact _ -> true | Heuristic -> false | Auto _ -> !bb <> None
    in
    record ~ii ~tried_exact ~feasible:(res <> None) ~t0 !bb;
    res
  in
  let max_ii = int_of_float (float_of_int lb *. (1.0 +. max_relax)) + 1 in
  let rec loop ii attempts =
    if ii > max_ii then
      Error
        (Printf.sprintf "no feasible schedule up to II=%d (bound %d)" max_ii lb)
    else
      match try_at ii with
      | Some (s, used_exact) ->
        Ok
          ( s,
            {
              lower_bound = lb;
              achieved_ii = ii;
              attempts;
              relaxation = float_of_int (ii - lb) /. float_of_int (max 1 lb);
              used_exact;
              attempt_log = List.rev !log;
            } )
      | None ->
        let next =
          max (ii + 1)
            (int_of_float (Float.round (float_of_int ii *. (1.0 +. relax_step))))
        in
        loop next (attempts + 1)
  in
  loop lb 1
