(** Heuristic modulo scheduler — the fast path used when the exact ILP
    exceeds its node budget (the paper instead relaxes the II and re-runs
    CPLEX; we additionally fall back to this solver, cross-validated
    against the ILP in the test suite).

    Two phases:

    + {b assignment}: first-fit packing of instances onto SMs in
      (node, instance) order — emulating the clustered assignments a
      feasibility-only ILP yields, since constraint (2) accepts any
      packing whose per-SM profiled load fits within the II;
    + {b scheduling}: with assignments fixed, the dependence system (8)
      becomes difference constraints on [A = T*f + o]; solved by
      longest-path relaxation, then instances violating the wrap
      constraint (4) are pushed to the next II boundary and relaxation
      repeats until a fixpoint. *)

val solve :
  ?insts:Instances.instance list ->
  ?deps:Instances.dep list ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  ii:int ->
  [ `Schedule of Swp_schedule.t | `Infeasible ]
(** Returned schedules are validated with {!Swp_schedule.validate};
    [`Infeasible] is {e heuristic} infeasibility — a larger II may work,
    or the exact solver may succeed where the heuristic fails. *)
