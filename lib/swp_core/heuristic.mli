(** Heuristic modulo scheduler — the fast path used when the exact ILP
    exceeds its node budget (the paper instead relaxes the II and re-runs
    CPLEX; we additionally fall back to this solver, cross-validated
    against the ILP in the test suite).

    Two phases:

    + {b assignment}: packing of instances onto SMs in decreasing-delay
      order under one of three {!strategy} rules — any packing whose
      per-SM profiled load fits within the II satisfies constraint (2);
    + {b scheduling}: with assignments fixed, the dependence system (8)
      becomes difference constraints on [A = T*f + o]; solved by
      longest-path relaxation, then instances violating the wrap
      constraint (4) are pushed to the next II boundary and relaxation
      repeats until a fixpoint.

    The phases are exposed separately ({!pack} / {!place}) so the
    portfolio search can race packings and the LNS refinement pass can
    re-place a repaired assignment without re-packing. *)

type strategy =
  | First_fit
      (** first-fit decreasing — the original solver, and the default:
          emulates the clustered assignments a feasibility-only ILP
          yields *)
  | Best_fit
      (** best-fit decreasing: tightest feasible SM (maximum load that
          still fits), ties to the lowest SM index *)
  | Balanced
      (** longest-processing-time balance: always the least-loaded SM;
          fails when even that SM cannot take the instance *)

val strategy_name : strategy -> string
(** ["ffd"], ["bfd"], ["bal"] — the arm labels in attempt logs and
    metrics. *)

val all_strategies : strategy list
(** [[First_fit; Best_fit; Balanced]], the racing order of the
    portfolio's heuristic arms (fixed, for determinism). *)

val pack :
  strategy:strategy ->
  delays:int array ->
  num_sms:int ->
  ii:int ->
  int array option
(** Phase 1 alone: assign each dense instance index an SM so that no
    SM's total delay exceeds [ii].  [delays] is indexed by dense
    instance index; the result maps the same indices to SM ids.  [None]
    when the strategy fails to fit every instance. *)

val place :
  insts:Instances.instance array ->
  deps:Instances.dep list ->
  idx:(Instances.instance -> int) ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  ii:int ->
  sm_of:int array ->
  [ `Schedule of Swp_schedule.t | `Infeasible ]
(** Phase 2 alone: given a fixed SM assignment [sm_of] (dense index ->
    SM), solve the dependence difference system by longest-path
    relaxation with wrap-around repair.  [idx] resolves a dependence
    endpoint to its dense index ([-1] for instances outside [insts]).
    Returned schedules are validated with {!Swp_schedule.validate}. *)

val solve :
  ?strategy:strategy ->
  ?insts:Instances.instance list ->
  ?deps:Instances.dep list ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  ii:int ->
  [ `Schedule of Swp_schedule.t | `Infeasible ]
(** [pack] then [place].  [strategy] defaults to [First_fit], keeping
    the historical behaviour bit-for-bit.  Returned schedules are
    validated with {!Swp_schedule.validate}; [`Infeasible] is
    {e heuristic} infeasibility — a larger II may work, or the exact
    solver may succeed where the heuristic fails. *)
