(** Instance expansion and multi-rate dependence analysis (Sec. III).

    The fundamental schedulable entity is one {e instance} — the [k]-th
    macro firing of a node in the steady state.  For every edge [(u,v)]
    this module computes, per consumer instance, the exact set of producer
    instances it depends on (eq. (5)), expressed as [(k', jlag)] pairs:
    the consumer of steady-state iteration [j] reads tokens the producer
    wrote in iteration [j + jlag] (the derivation leading to eq. (6)).
    [jlag] is negative when initial tokens shift the demand onto earlier
    iterations, zero for ordinary feed-forward edges, and positive when a
    peek margin reaches into the next iteration's production. *)

type instance = { node : int; k : int }

type dep = {
  src : instance;      (** producer instance *)
  dst : instance;      (** consumer instance *)
  jlag : int;          (** producer iteration offset relative to the consumer *)
  d_src : int;         (** producer delay, cycles *)
}

val instances : Select.config -> instance list
(** All [(v, k)] with [k < reps.(v)], node-major order. *)

val num_instances : Select.config -> int

val index : Select.config -> instance -> int
(** Dense index of an instance (for array-backed solvers). *)

val deps : Streamit.Graph.t -> Select.config -> dep list
(** Deduplicated dependence set over all edges.  Edges from the external
    host input have no producer and contribute nothing.  Stateful filters
    additionally contribute the serializing chain between their successive
    instances, including a loop-carried dependence from the last instance
    of one iteration to the first of the next (which is what makes RecMII
    non-zero for graphs with state). *)

val edge_macro_rates : Streamit.Graph.t -> Select.config -> Streamit.Graph.edge -> int * int * int
(** [(O', I', m')]: production per macro firing of the source, consumption
    per macro firing of the destination, and effective initial tokens
    (initial tokens minus the peek margin). *)
