let solve ?insts ?deps g (cfg : Select.config) ~num_sms ~ii =
  let insts =
    Array.of_list
      (match insts with Some l -> l | None -> Instances.instances cfg)
  in
  let n = Array.length insts in
  let deps = match deps with Some l -> l | None -> Instances.deps g cfg in
  (* O(1) instance -> dense index (Instances.index is linear per call). *)
  let itbl = Hashtbl.create (2 * n) in
  Array.iteri (fun i inst -> Hashtbl.replace itbl inst i) insts;
  let idx i = match Hashtbl.find_opt itbl i with Some x -> x | None -> -1 in
  let delay_of (i : Instances.instance) = cfg.delay.(i.node) in
  if Array.exists (fun i -> delay_of i >= ii) insts then `Infeasible
  else begin
    (* --- phase 1: first-fit assignment in instance order ---
       The paper's ILP is a pure feasibility problem with no balancing
       objective: the first integral solution CPLEX finds packs the
       assignment variables greedily, clustering the instances of one
       filter on the same SM.  First-fit in (node, k) order emulates
       that — any assignment whose per-SM profiled load fits within the
       II satisfies constraint (2). *)
    ignore deps;
    let load = Array.make num_sms 0 in
    let sm_of = Array.make n (-1) in
    let ok = ref true in
    (* First-fit decreasing: big instances placed first so the search
       succeeds near the II lower bound; the sort is stable, so equal-
       delay instances of one node stay adjacent and cluster onto the
       same SM exactly as plain first-fit would pack them. *)
    let order = Array.init n Fun.id in
    let sorted =
      List.stable_sort
        (fun a b -> compare (delay_of insts.(b)) (delay_of insts.(a)))
        (Array.to_list order)
    in
    List.iter
      (fun i ->
        let d = delay_of insts.(i) in
        let placed = ref false in
        let p = ref 0 in
        while (not !placed) && !p < num_sms do
          if load.(!p) + d <= ii then begin
            sm_of.(i) <- !p;
            load.(!p) <- load.(!p) + d;
            placed := true
          end;
          incr p
        done;
        if not !placed then ok := false)
      sorted;
    if not !ok then `Infeasible
    else begin
      (* --- phase 2: longest-path scheduling of A = T*f + o --- *)
      (* Difference constraints:
         same SM : A_dst >= A_src + T*jlag + d_src
         cross SM: A_dst >= A_src + T*jlag + T  (forces f separation) *)
      let edges =
        List.map
          (fun (d : Instances.dep) ->
            let s = idx d.src and t = idx d.dst in
            let w =
              if s < 0 || sm_of.(s) = sm_of.(t) then (ii * d.jlag) + d.d_src
              else (ii * d.jlag) + ii
            in
            (s, t, w))
          deps
      in
      let a = Array.make n 0 in
      let feasible = ref true in
      (* a self-dependence with positive weight can never be satisfied *)
      List.iter (fun (s, t, w) -> if s = t && w > 0 then feasible := false) edges;
      let changed = ref true in
      (* Longest-path relaxation combined with wrap-around repair.  Each
         repair only increases some A by < T, and A values are bounded by
         (n+2)*T in any sensible schedule; bail out beyond that. *)
      let bound = (n + 3) * ii in
      while !changed && !feasible do
        changed := false;
        List.iter
          (fun (s, t, w) ->
            if s <> t && a.(s) + w > a.(t) then begin
              a.(t) <- a.(s) + w;
              if a.(t) > bound then feasible := false else changed := true
            end)
          edges;
        if not !changed then
          (* wrap-around repair: o + d must stay within the II *)
          Array.iteri
            (fun i ai ->
              let o = ai mod ii in
              if o + delay_of insts.(i) >= ii then begin
                a.(i) <- ((ai / ii) + 1) * ii;
                if a.(i) > bound then feasible := false else changed := true
              end)
            a
      done;
      if not !feasible then `Infeasible
      else begin
        let entries =
          Array.to_list
            (Array.mapi
               (fun i (inst : Instances.instance) ->
                 {
                   Swp_schedule.inst;
                   sm = sm_of.(i);
                   o = a.(i) mod ii;
                   f = a.(i) / ii;
                 })
               insts)
        in
        let sched = { Swp_schedule.ii; entries; num_sms; config = cfg } in
        match Swp_schedule.validate g sched with
        | Ok () -> `Schedule sched
        | Error m ->
          failwith ("Heuristic.solve: produced invalid schedule: " ^ m)
      end
    end
  end
