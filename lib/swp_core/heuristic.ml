(* Packing strategies for phase 1.  [First_fit] reproduces the original
   solver bit-for-bit and remains the default; the other two are the
   extra heuristic arms of the portfolio II search — different packings
   fail at different IIs, so racing them closes part of the exact-vs-
   heuristic quality gap at near-zero cost. *)
type strategy = First_fit | Best_fit | Balanced

let strategy_name = function
  | First_fit -> "ffd"
  | Best_fit -> "bfd"
  | Balanced -> "bal"

let all_strategies = [ First_fit; Best_fit; Balanced ]

(* --- phase 1: packing assignment in decreasing-delay order ---
   The paper's ILP is a pure feasibility problem with no balancing
   objective: the first integral solution CPLEX finds packs the
   assignment variables greedily, clustering the instances of one
   filter on the same SM.  Decreasing-delay order places big instances
   first so the search succeeds near the II lower bound; the sort is
   stable, so equal-delay instances of one node stay adjacent and
   cluster onto the same SM exactly as plain first-fit would pack
   them.  Any assignment whose per-SM profiled load fits within the II
   satisfies constraint (2). *)
let pack ~strategy ~delays ~num_sms ~ii =
  let n = Array.length delays in
  let load = Array.make num_sms 0 in
  let sm_of = Array.make n (-1) in
  let ok = ref true in
  let sorted =
    List.stable_sort
      (fun a b -> compare delays.(b) delays.(a))
      (List.init n Fun.id)
  in
  List.iter
    (fun i ->
      let d = delays.(i) in
      let best = ref (-1) in
      (match strategy with
      | First_fit ->
        let p = ref 0 in
        while !best < 0 && !p < num_sms do
          if load.(!p) + d <= ii then best := !p;
          incr p
        done
      | Best_fit ->
        (* tightest feasible SM: maximum load that still fits, ties to
           the lowest SM index (deterministic) *)
        for p = 0 to num_sms - 1 do
          if load.(p) + d <= ii && (!best < 0 || load.(p) > load.(!best))
          then best := p
        done
      | Balanced ->
        (* longest-processing-time balance: always the least-loaded SM,
           ties to the lowest index; fails outright when even that SM
           cannot take the instance *)
        let m = ref 0 in
        for p = 1 to num_sms - 1 do
          if load.(p) < load.(!m) then m := p
        done;
        if load.(!m) + d <= ii then best := !m);
      if !best < 0 then ok := false
      else begin
        sm_of.(i) <- !best;
        load.(!best) <- load.(!best) + d
      end)
    sorted;
  if !ok then Some sm_of else None

(* --- phase 2: longest-path scheduling of A = T*f + o --- *)
(* Difference constraints:
   same SM : A_dst >= A_src + T*jlag + d_src
   cross SM: A_dst >= A_src + T*jlag + T  (forces f separation) *)
let place ~insts ~deps ~idx g (cfg : Select.config) ~num_sms ~ii ~sm_of =
  let n = Array.length insts in
  let delay_of (i : Instances.instance) = cfg.delay.(i.node) in
  let edges =
    List.map
      (fun (d : Instances.dep) ->
        let s = idx d.src and t = idx d.dst in
        let w =
          if s < 0 || sm_of.(s) = sm_of.(t) then (ii * d.jlag) + d.d_src
          else (ii * d.jlag) + ii
        in
        (s, t, w))
      deps
  in
  let a = Array.make n 0 in
  let feasible = ref true in
  (* a self-dependence with positive weight can never be satisfied *)
  List.iter (fun (s, t, w) -> if s = t && w > 0 then feasible := false) edges;
  let changed = ref true in
  (* Longest-path relaxation combined with wrap-around repair.  Each
     repair only increases some A by < T, and A values are bounded by
     (n+2)*T in any sensible schedule; bail out beyond that. *)
  let bound = (n + 3) * ii in
  while !changed && !feasible do
    changed := false;
    List.iter
      (fun (s, t, w) ->
        if s <> t && a.(s) + w > a.(t) then begin
          a.(t) <- a.(s) + w;
          if a.(t) > bound then feasible := false else changed := true
        end)
      edges;
    if not !changed then
      (* wrap-around repair: o + d must stay within the II *)
      Array.iteri
        (fun i ai ->
          let o = ai mod ii in
          if o + delay_of insts.(i) >= ii then begin
            a.(i) <- ((ai / ii) + 1) * ii;
            if a.(i) > bound then feasible := false else changed := true
          end)
        a
  done;
  if not !feasible then `Infeasible
  else begin
    let entries =
      Array.to_list
        (Array.mapi
           (fun i (inst : Instances.instance) ->
             {
               Swp_schedule.inst;
               sm = sm_of.(i);
               o = a.(i) mod ii;
               f = a.(i) / ii;
             })
           insts)
    in
    let sched = { Swp_schedule.ii; entries; num_sms; config = cfg } in
    match Swp_schedule.validate g sched with
    | Ok () -> `Schedule sched
    | Error m -> failwith ("Heuristic.solve: produced invalid schedule: " ^ m)
  end

let solve ?(strategy = First_fit) ?insts ?deps g (cfg : Select.config)
    ~num_sms ~ii =
  let insts =
    Array.of_list
      (match insts with Some l -> l | None -> Instances.instances cfg)
  in
  let n = Array.length insts in
  let deps = match deps with Some l -> l | None -> Instances.deps g cfg in
  (* O(1) instance -> dense index (Instances.index is linear per call). *)
  let itbl = Hashtbl.create (2 * n) in
  Array.iteri (fun i inst -> Hashtbl.replace itbl inst i) insts;
  let idx i = match Hashtbl.find_opt itbl i with Some x -> x | None -> -1 in
  let delays =
    Array.map (fun (i : Instances.instance) -> cfg.delay.(i.node)) insts
  in
  if Array.exists (fun d -> d >= ii) delays then `Infeasible
  else
    match pack ~strategy ~delays ~num_sms ~ii with
    | None -> `Infeasible
    | Some sm_of -> place ~insts ~deps ~idx g cfg ~num_sms ~ii ~sm_of
