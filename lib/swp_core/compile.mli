(** End-to-end compilation pipeline (Fig. 5 of the paper):

    profile every filter → select the execution configuration → generate
    the scheduling constraints → search for the smallest feasible II →
    lay out buffers.  The result carries everything code generation
    ({!Cudagen}) and the timing executor ({!Executor}) need.

    {2 Deadlines, budgets and degradation}

    Compilation is resilient by construction: given a [deadline] (wall
    clock) or [budget] (deterministic work units), the pipeline runs a
    three-rung ladder — exact ILP, heuristic modulo scheduler, and
    finally the guaranteed-feasible {!Fallback} scheduler — and returns
    [Ok] with the achieved {!quality} instead of failing, unless
    [on_budget] is [`Fail].  Work-unit budgets are deterministic: the
    same graph under the same [budget] compiles to the byte-identical
    artifact whatever [--jobs] is.  Wall-clock deadlines are inherently
    nondeterministic and opt-in. *)

type scheme =
  | Swp_coalesced       (** the paper's optimized scheme *)
  | Swp_non_coalesced   (** SWPNC baseline: no memory-access coalescing *)

(** How far down the degradation ladder the schedule came from. *)
type quality =
  | Exact      (** the exact ILP produced (or verified) the schedule *)
  | Refined
      (** LNS refinement pushed the schedule below the first feasible
          candidate II ({!Lns.refine}) — strictly better than the rung
          the search alone reached *)
  | Heuristic  (** the heuristic modulo scheduler at the searched II *)
  | Degraded
      (** the fallback serial schedule at a relaxed II — valid but slow;
          produced only when a budget/deadline ran out or a fault was
          injected in the search stage *)

type stage_spend = {
  stage : string;   (** ["profile"] | ["select"] | ["search"] | ["layout"] *)
  wall_s : float;   (** stage wall time (nondeterministic, excluded from
                        deterministic report serializations) *)
  work : int;       (** deterministic work units charged to the stage's
                        ledger sub-token *)
}

(** Why the compile landed on its quality rung. *)
type rationale =
  | Completed               (** the II search returned a schedule *)
  | Search_stopped of Ii_search.reason
      (** the search stopped (budget/deadline) and the fallback took over *)
  | Fault_at of string      (** injected fault site that tripped degradation *)
  | Budget_exhausted of string * Resil.Budget.reason
      (** a non-search stage's budget token ran dry (label, axis) *)

type prov = {
  stage_spends : stage_spend list;  (** pipeline order *)
  ledger_total : int;
      (** root-ledger work total; equals the sum of the stage [work]
          fields (every charge goes through a stage sub-token) *)
  rationale : rationale;
  fallback_seed_ii : int option;
      (** the II the {!Fallback} scheduler was seeded with, when it ran *)
  total_wall_s : float;
}
(** Compile provenance: the raw material of the flight-recorder report
    ({!Report}). *)

type compiled = {
  arch : Gpusim.Arch.t;
  scheme : scheme;
  graph : Streamit.Graph.t;
  rates : Streamit.Sdf.rates;
  profile : Profile.data;
  config : Select.config;
  schedule : Swp_schedule.t;
  search_stats : Ii_search.stats;
  sizing : Buffer_layout.sizing;
  coarsening : int;
  quality : quality;
  prov : prov;
}

val quality_name : quality -> string
val pp_quality : Format.formatter -> quality -> unit
val rationale_name : rationale -> string
val pp_rationale : Format.formatter -> rationale -> unit

val compile :
  ?arch:Gpusim.Arch.t ->
  ?num_sms:int ->
  ?coarsening:int ->
  ?solver:Ii_search.solver ->
  ?portfolio:bool ->
  ?lns_rounds:int ->
  ?scheme:scheme ->
  ?deadline:float ->
  ?budget:int ->
  ?on_budget:[ `Degrade | `Fail ] ->
  ?seed_ii:int ->
  Streamit.Graph.t ->
  (compiled, string) result
(** Defaults: the GeForce 8800 GTS 512 with all 16 SMs, coarsening 1,
    [Auto] solver, coalesced scheme, no deadline, no budget,
    [on_budget = `Degrade].  [portfolio] and [lns_rounds] pass through
    to {!Ii_search.search} (portfolio arm racing per candidate II, and
    the LNS refinement round cap).

    [deadline] bounds the whole pipeline in wall-clock seconds:
    profiling and selection check it cooperatively, and the II search
    gets whatever time remains.  [budget] bounds the II search in
    deterministic work units (simplex pivots + branch-and-bound nodes +
    one per attempt); [budget:0] skips the search entirely.  When either
    runs out, [`Degrade] (the default) falls back down the ladder to a
    validated serial schedule with [quality = Degraded], while [`Fail]
    returns a structured one-line [Error].

    [seed_ii] is a warm-start hint for the degradation ladder: when the
    search commits no attempts before exhaustion, the fallback ramp
    starts from [max seed_ii lower_bound] instead of the bound alone.
    The serve cache passes a previously achieved II here when
    recompiling a graph in which a single filter changed.  It never
    influences a compile that completes its search (the attempt log
    takes precedence), so non-degraded results are byte-identical with
    or without the hint.

    Invalid arguments ([coarsening]/[num_sms] < 1, negative [budget],
    non-positive [deadline]) are reported as [Error], not exceptions.
    Injected faults ({!Resil.Inject}) in any stage yield either a
    degraded-but-valid compile (search stage, under [`Degrade]) or a
    structured [Error] — never an escaped exception. *)

val recoarsen : compiled -> int -> compiled
(** Same schedule with a different coarsening factor (SWPn of Fig. 11);
    only the buffer sizing changes — coarsening multiplies every delay by
    the same factor and therefore preserves schedule optimality, as the
    paper argues.  Quality is preserved. *)

val layout_of_node : compiled -> Streamit.Graph.node -> Gpusim.Timing.layout
(** The buffer layout each node's channel accesses use under this
    compilation scheme. *)

val pp_summary : Format.formatter -> compiled -> unit
