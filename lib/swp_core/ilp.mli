(** ILP formulation of the scheduling-and-assignment problem (Sec. III).

    For a candidate initiation interval [T], generates exactly the
    constraint system of the paper:

    - 0-1 assignment variables [w(k,v,p)] with constraint (1);
    - resource constraint (2) per SM;
    - offset variables [o(k,v)] with the no-wrap constraint (4);
    - stage variables [f(k,v)];
    - cross-SM indicators [g] defined by the pairs of inequalities (7);
    - the two dependence systems (8).

    The problem is a pure feasibility ILP (constant objective), solved by
    {!Lp.Branch_bound} — our CPLEX stand-in — under a node budget that
    mirrors the paper's 20-second allotment. *)

type var_map = {
  w : (int * int * int, int) Hashtbl.t;  (** (node, k, sm) -> variable id *)
  o : (int * int, int) Hashtbl.t;        (** (node, k) -> variable id *)
  f : (int * int, int) Hashtbl.t;
  g : (int, int) Hashtbl.t;
      (** dependence index (position in the [deps] list) -> cross-SM
          indicator variable id; absent for self-dependences *)
}

val build :
  ?insts:Instances.instance list ->
  ?deps:Instances.dep list ->
  ?cuts:bool ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  ii:int ->
  (Lp.Problem.t * var_map, string) result
(** [Error] when the II is trivially infeasible (some delay exceeds it).
    [insts]/[deps] supply a precomputed instance expansion — the II search
    reuses one expansion across every candidate II instead of re-deriving
    it per attempt.  [cuts] (default [false]) additionally emits the
    a-priori big-instance clique inequalities (at most one instance
    longer than [ii/2] per SM) — valid for every integral solution, they
    tighten the LP relaxation for the cutting-plane lower bound and the
    exact portfolio arm without changing the paper's base system. *)

val cover_cuts :
  var_map ->
  Instances.instance list ->
  Select.config ->
  num_sms:int ->
  ii:int ->
  Lp.Solution.t ->
  (Lp.Linexpr.t * Lp.Problem.relation * Lp.Linexpr.t) list
(** Separation oracle for {!Lp.Branch_bound}'s root cut loop: given a
    fractional solution, returns the violated per-SM cover cuts of the
    knapsack rows (2) — for a set [C] of instances whose combined delay
    exceeds the II, [sum_{i in C} w(i,sm) <= |C|-1].  Deterministic
    (exact rational comparisons, fixed tie-breaks); returns [[]] when the
    point admits no violated cover. *)

val solve :
  ?node_budget:int ->
  ?time_budget_s:float ->
  ?budget:Resil.Budget.t ->
  ?insts:Instances.instance list ->
  ?deps:Instances.dep list ->
  ?warm_start:Swp_schedule.t ->
  ?stats:Lp.Branch_bound.stats option ref ->
  ?use_reference_lp:bool ->
  ?cuts:bool ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  ii:int ->
  [ `Schedule of Swp_schedule.t | `Infeasible | `Budget_exhausted ]
(** Builds, solves, decodes and {e validates} the schedule before
    returning it.

    [warm_start], when given a schedule for the same [ii] and [num_sms]
    (typically the heuristic scheduler's), is translated into an ILP
    assignment and handed to branch-and-bound as its incumbent — for this
    pure-feasibility problem the search then verifies it against every
    constraint and returns immediately instead of exploring.  SM labels
    are permuted to satisfy the symmetry-breaking constraint first.

    [budget], when given, is a {!Resil.Budget} token shared by
    branch-and-bound and every LP relaxation (one work unit per node and
    one per simplex pivot); an exhausted token yields
    [`Budget_exhausted], deterministically when the token has no
    wall-clock deadline.

    [stats] receives the branch-and-bound statistics of the solve (node
    and simplex-pivot counts) whatever the outcome.

    [use_reference_lp] routes every LP relaxation to the dense reference
    simplex — only meant for benchmarking against the pre-sparse
    baseline.

    [cuts] (default [false]) builds the problem with the clique
    inequalities and arms branch-and-bound's root cut loop with
    {!cover_cuts}, so near-bound candidate IIs are refuted from the
    strengthened relaxation instead of by enumeration. *)
