let m_schedules = Obs.Metrics.counter "resil.fallback.schedules"

let relaxed_ii (cfg : Select.config) =
  let total = ref 0 in
  Array.iteri (fun v reps -> total := !total + (reps * cfg.delay.(v))) cfg.reps;
  1 + !total

let schedule g (cfg : Select.config) ~num_sms =
  Obs.Trace.with_span "fallback" @@ fun () ->
  let insts = Instances.instances cfg in
  let deps = Instances.deps g cfg in
  let rec attempt ii tries last_err =
    if tries = 0 then
      Error
        (Printf.sprintf "fallback scheduler failed up to II=%d (%s)" ii
           last_err)
    else
      match Heuristic.solve ~insts ~deps g cfg ~num_sms:1 ~ii with
      | `Infeasible -> attempt (ii * 2) (tries - 1) "heuristic infeasible"
      | `Schedule s -> (
        (* All instances live on SM 0; widening [num_sms] leaves the
           constraint system satisfied (no new cross-SM separations) and
           lets downstream sizing/codegen see the real machine. *)
        let s = { s with Swp_schedule.num_sms } in
        match Swp_schedule.validate g s with
        | Ok () ->
          Obs.Metrics.inc m_schedules;
          Obs.Trace.add_attr "fallback_ii" (Obs.Trace.Int s.Swp_schedule.ii);
          Ok s
        | Error m -> attempt (ii * 2) (tries - 1) m)
  in
  attempt (relaxed_ii cfg) 6 "not attempted"
