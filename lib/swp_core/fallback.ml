let m_schedules = Obs.Metrics.counter "resil.fallback.schedules"
let m_seeded = Obs.Metrics.counter "resil.fallback.seeded"

let relaxed_ii (cfg : Select.config) =
  let total = ref 0 in
  Array.iteri (fun v reps -> total := !total + (reps * cfg.delay.(v))) cfg.reps;
  1 + !total

let schedule ?seed_ii g (cfg : Select.config) ~num_sms =
  Obs.Trace.with_span "fallback" @@ fun () ->
  let insts = Instances.instances cfg in
  let deps = Instances.deps g cfg in
  let serial_ii = relaxed_ii cfg in
  (* Seeded ramp: a budget-stopped search has already probed candidate
     IIs, so its last committed attempt is a far better starting point
     than the serial worst case.  Ramp the real multi-SM heuristic up
     from the seed (x5/4 per try); only if the whole ramp fails do we
     drop to the guaranteed serial rung. *)
  let seeded =
    match seed_ii with
    | Some seed when seed > 0 && seed < serial_ii ->
      let rec ramp ii tries =
        if tries = 0 || ii >= serial_ii then None
        else
          match Heuristic.solve ~insts ~deps g cfg ~num_sms ~ii with
          | `Schedule s ->
            Obs.Metrics.inc m_seeded;
            Obs.Trace.add_attr "fallback_seeded" (Obs.Trace.Bool true);
            Some s
          | `Infeasible -> ramp (max (ii + 1) (ii * 5 / 4)) (tries - 1)
      in
      ramp seed 16
    | _ -> None
  in
  match seeded with
  | Some s ->
    Obs.Metrics.inc m_schedules;
    Obs.Trace.add_attr "fallback_ii" (Obs.Trace.Int s.Swp_schedule.ii);
    Ok s
  | None ->
    let rec attempt ii tries last_err =
      if tries = 0 then
        Error
          (Printf.sprintf "fallback scheduler failed up to II=%d (%s)" ii
             last_err)
      else
        match Heuristic.solve ~insts ~deps g cfg ~num_sms:1 ~ii with
        | `Infeasible -> attempt (ii * 2) (tries - 1) "heuristic infeasible"
        | `Schedule s -> (
          (* All instances live on SM 0; widening [num_sms] leaves the
             constraint system satisfied (no new cross-SM separations) and
             lets downstream sizing/codegen see the real machine. *)
          let s = { s with Swp_schedule.num_sms } in
          match Swp_schedule.validate g s with
          | Ok () ->
            Obs.Metrics.inc m_schedules;
            Obs.Trace.add_attr "fallback_ii" (Obs.Trace.Int s.Swp_schedule.ii);
            Ok s
          | Error m -> attempt (ii * 2) (tries - 1) m)
    in
    attempt serial_ii 6 "not attempted"
