open Numeric

type cand = { cand_regs : int; cand_threads : int; cand_norm : float option }

type config = {
  regs : int;
  block_threads : int;
  threads : int array;
  delay : int array;
  reps : int array;
  scale : int;
  norm_ii : float;
  scoreboard : cand list;
}

(* Macro repetition vector: node v fires k'_v times where
   k'_v * threads.(v) is proportional to the original k_v.  The smallest
   integer solution is k'_v = k_v * L / threads.(v) with
   L = lcm_v (threads.(v) / gcd(k_v, threads.(v))). *)
let macro_reps g (rates : Streamit.Sdf.rates) ~threads =
  let n = Streamit.Graph.num_nodes g in
  if Array.length threads <> n then invalid_arg "Select.macro_reps";
  let l =
    ref 1
  in
  for v = 0 to n - 1 do
    let k = rates.Streamit.Sdf.reps.(v) and t = threads.(v) in
    if t <= 0 then invalid_arg "Select.macro_reps: non-positive threads";
    l := Intmath.lcm !l (t / Intmath.gcd k t)
  done;
  let reps =
    Array.init n (fun v -> rates.Streamit.Sdf.reps.(v) * !l / threads.(v))
  in
  (* One macro steady state performs k'_v × t_v = k_v × L single-thread
     firings of each node: L original steady states. *)
  (reps, !l)

(* Work metric (Fig. 7 line 14): tokens produced at the sink of the
   stream graph in one macro steady state. *)
let work_per_steady_state g (rates : Streamit.Sdf.rates) ~scale =
  let sink_tokens =
    match g.Streamit.Graph.exit_ with
    | Some _ -> Streamit.Sdf.output_tokens g rates
    | None ->
      (* no external output: count tokens into graph sinks instead *)
      List.fold_left
        (fun acc v ->
          acc
          + rates.Streamit.Sdf.reps.(v)
            * Streamit.Graph.pop_rate_of (Streamit.Graph.node g v))
        0 (Streamit.Graph.sinks g)
  in
  max 1 (sink_tokens * scale)

let m_selects = Obs.Metrics.counter "select.runs"
let m_select_failures = Obs.Metrics.counter "select.failures"

let rec select ?budget g rates (data : Profile.data) =
  Option.iter Resil.Budget.check budget;
  Obs.Trace.with_span "select" (fun () -> select_untraced ?budget g rates data)

and select_untraced ?budget g rates (data : Profile.data) =
  let n = Streamit.Graph.num_nodes g in
  let feasible_pair ri ti =
    (* feasible for ALL nodes: single compilation unit restriction *)
    let ok = ref true in
    for v = 0 to n - 1 do
      if data.Profile.runtimes.(v).(ri).(ti) = infinity then ok := false
    done;
    !ok
  in
  let nregs = List.length data.Profile.reg_options in
  let nthreads = List.length data.Profile.thread_options in
  let thread_opt ti = List.nth data.Profile.thread_options ti in
  let reg_opt ri = List.nth data.Profile.reg_options ri in
  (* Evaluate one (registers, block-threads) candidate pair — pure in
     (g, rates, data), so the 16 evaluations can run on any domain. *)
  let eval_pair (ri, ti) =
    if not (feasible_pair ri ti) then None
    else begin
      let num_threads = thread_opt ti in
      (* Per-node best thread count k <= numThreads (Fig. 7 line 4). *)
      let candidate = Array.make n 0 in
      let cand_time = Array.make n infinity in
      for v = 0 to n - 1 do
        for tj = 0 to nthreads - 1 do
          let k = thread_opt tj in
          if k <= num_threads then begin
            let t = data.Profile.runtimes.(v).(ri).(tj) in
            if t < cand_time.(v) then begin
              cand_time.(v) <- t;
              candidate.(v) <- k
            end
          end
        done
      done;
      if not (Array.for_all (fun t -> t < infinity) cand_time) then None
      else begin
        let reps, scale = macro_reps g rates ~threads:candidate in
        (* curII (Fig. 7 lines 9-13): per-node profile time scaled from
           numfirings firings down to one pass, times instance count. *)
        let cur_ii = ref 0.0 in
        for v = 0 to n - 1 do
          let per_pass =
            cand_time.(v) *. float_of_int candidate.(v)
            /. float_of_int data.Profile.numfirings
          in
          cur_ii := !cur_ii +. (per_pass *. float_of_int reps.(v))
        done;
        let w = work_per_steady_state g rates ~scale in
        let norm = !cur_ii /. float_of_int w in
        let delay =
          Array.init n (fun v ->
              let per_pass =
                cand_time.(v) *. float_of_int candidate.(v)
                /. float_of_int data.Profile.numfirings
              in
              max 1 (int_of_float (Float.round per_pass)))
        in
        Some
          ( norm,
            {
              regs = reg_opt ri;
              block_threads = num_threads;
              threads = candidate;
              delay;
              reps;
              scale;
              norm_ii = norm;
              scoreboard = [];
            } )
      end
    end
  in
  (* All candidate pairs in the serial iteration order (ri-major), fanned
     out across the pool; the winner is then folded out of the candidate
     list sequentially with the same strict-improvement test the serial
     loop used, so ties break identically whatever ran where. *)
  let pairs =
    List.concat_map
      (fun ri -> List.init nthreads (fun ti -> (ri, ti)))
      (List.init nregs Fun.id)
  in
  let evals = Par.Pool.map_auto eval_pair pairs in
  (* One work unit per candidate pair evaluated, charged once on the
     calling domain (tokens are not domain-safe to charge from workers).
     Pure accounting when the token has no work limit of its own. *)
  (match budget with
  | Some b -> Resil.Budget.charge b (List.length pairs)
  | None -> ());
  (* Every evaluated pair, in the serial iteration order, feasible or not
     — the provenance report renders this as the sweep scoreboard. *)
  let scoreboard =
    List.map2
      (fun (ri, ti) res ->
        {
          cand_regs = reg_opt ri;
          cand_threads = thread_opt ti;
          cand_norm =
            (match res with Some (norm, _) -> Some norm | None -> None);
        })
      pairs evals
  in
  let best =
    List.fold_left
      (fun best cand ->
        match (cand, best) with
        | None, best -> best
        | Some _, None -> cand
        | Some (norm, _), Some (b, _) -> if norm < b then cand else best)
      None evals
  in
  match best with
  | Some (_, cfg) ->
    let cfg = { cfg with scoreboard } in
    Obs.Metrics.inc m_selects;
    Obs.Trace.add_attr "regs" (Obs.Trace.Int cfg.regs);
    Obs.Trace.add_attr "block_threads" (Obs.Trace.Int cfg.block_threads);
    Obs.Trace.add_attr "scale" (Obs.Trace.Int cfg.scale);
    Obs.Log.event "select.config"
      ~attrs:
        [
          ("regs", Obs.Log.Int cfg.regs);
          ("block_threads", Obs.Log.Int cfg.block_threads);
          ("scale", Obs.Log.Int cfg.scale);
          ("norm_ii", Obs.Log.Float cfg.norm_ii);
          ("candidates", Obs.Log.Int (List.length scoreboard));
        ];
    Ok cfg
  | None ->
    Obs.Metrics.inc m_select_failures;
    Error "no feasible (registers, threads) configuration"

let pp_config g fmt c =
  Format.fprintf fmt
    "@[<v>config: regs=%d block_threads=%d scale=%d norm_ii=%.4f" c.regs
    c.block_threads c.scale c.norm_ii;
  Array.iteri
    (fun v t ->
      Format.fprintf fmt "@,  %-24s threads=%-4d reps=%-4d delay=%d"
        (Streamit.Graph.name g v) t c.reps.(v) c.delay.(v))
    c.threads;
  Format.fprintf fmt "@]"
