open Gpusim

type mode = Coalesced | Non_coalesced

type data = {
  reg_options : int list;
  thread_options : int list;
  numfirings : int;
  mode : mode;
  runtimes : float array array array;
}

let default_reg_options = [ 16; 20; 32; 64 ]
let default_thread_options = [ 128; 256; 384; 512 ]

let layout_for arch mode node ~threads =
  match mode with
  | Coalesced -> Timing.Shuffled
  | Non_coalesced ->
    if Timing.shared_fits arch node ~threads then Timing.Shared_staged
    else Timing.Natural

(* Profiling is deterministic in (arch, graph, mode, options), and the II
   search and benchmark drivers profile the same graph repeatedly — once
   per scheme, per SM count, per solver comparison.  The filter IR is pure
   data (no closures), so structural keys are sound; memoize.  The cache
   is reset past a small bound to keep long-running drivers from
   accumulating graphs.

   The cache is shared across domains (parallel compile fan-outs hit it
   concurrently), so every access goes through [cache_m].  Two domains
   missing on the same key may both profile it; the second insert wins —
   both computed identical data, so nothing observable changes. *)
let cache :
    ( Gpusim.Arch.t * Streamit.Graph.t * mode * int list * int list * int,
      data )
    Hashtbl.t =
  Hashtbl.create 16

let cache_m = Mutex.create ()

(* Per-node memo underneath the whole-graph cache: a node's sweep is a
   pure function of (arch, node kind, mode, options, numfirings) alone
   — no cross-node coupling — so a graph that differs from previously
   profiled ones in a single filter re-simulates only that filter.
   Keys hold the alpha-canonical node kind, making the memo
   name-irrelevant: renaming a filter or its locals still hits.  This
   is the incremental-recompile workhorse behind the serve cache. *)
let node_cache :
    ( Gpusim.Arch.t * Streamit.Graph.node_kind * mode * int list * int list
      * int,
      float array array )
    Hashtbl.t =
  Hashtbl.create 64

let node_cache_m = Mutex.create ()
let node_cache_bound = 1024

let canonical_kind (k : Streamit.Graph.node_kind) =
  match k with
  | Streamit.Graph.NFilter f ->
    Streamit.Graph.NFilter (Streamit.Kernel.alpha_canonical f)
  | Streamit.Graph.NSplitter _ | Streamit.Graph.NJoiner _ -> k

let clear_cache () =
  Mutex.lock cache_m;
  Hashtbl.reset cache;
  Mutex.unlock cache_m;
  Mutex.lock node_cache_m;
  Hashtbl.reset node_cache;
  Mutex.unlock node_cache_m

let cache_bound = 64
let m_cache_hits = Obs.Metrics.counter "profile.cache.hits"
let m_cache_misses = Obs.Metrics.counter "profile.cache.misses"
let m_cache_evictions = Obs.Metrics.counter "profile.cache.evictions"
let m_node_hits = Obs.Metrics.counter "profile.node_cache.hits"
let m_node_misses = Obs.Metrics.counter "profile.node_cache.misses"
let m_node_evictions = Obs.Metrics.counter "profile.node_cache.evictions"

type memo_stats = { node_hits : int; node_misses : int; node_entries : int }

let memo_stats () =
  Mutex.lock node_cache_m;
  let entries = Hashtbl.length node_cache in
  Mutex.unlock node_cache_m;
  {
    node_hits = Obs.Metrics.value m_node_hits;
    node_misses = Obs.Metrics.value m_node_misses;
    node_entries = entries;
  }

let rec run ?(reg_options = default_reg_options)
    ?(thread_options = default_thread_options) ?(numfirings = 0) ?budget arch
    graph ~mode =
  Option.iter Resil.Budget.check budget;
  (* numfirings must be a common multiple of every thread count and large
     enough to amortize the kernel launch (Sec. IV-A). *)
  let numfirings =
    if numfirings > 0 then numfirings
    else 16 * List.fold_left Numeric.Intmath.lcm 1 thread_options
  in
  let key = (arch, graph, mode, reg_options, thread_options, numfirings) in
  Obs.Trace.with_span "profile"
    ~attrs:[ ("nodes", Obs.Trace.Int (Streamit.Graph.num_nodes graph)) ]
    (fun () ->
      let cached =
        Mutex.lock cache_m;
        let c = Hashtbl.find_opt cache key in
        Mutex.unlock cache_m;
        c
      in
      match cached with
      | Some d ->
        Obs.Metrics.inc m_cache_hits;
        Obs.Trace.add_attr "cache" (Obs.Trace.Str "hit");
        (* Charge exactly what the sweep would have cost: work units
           account the *logical* work of the compile, so the budget
           ledger — and every report built from it — is byte-identical
           whether or not the cache was warm.  The serve cache's
           byte-identity guarantee depends on this. *)
        (match budget with
        | Some b ->
          Resil.Budget.charge b
            (Streamit.Graph.num_nodes graph
            * List.length reg_options
            * List.length thread_options)
        | None -> ());
        d
      | None ->
        Obs.Metrics.inc m_cache_misses;
        Obs.Trace.add_attr "cache" (Obs.Trace.Str "miss");
        let d =
          run_uncached ?budget arch graph ~mode ~reg_options ~thread_options
            ~numfirings
        in
        Mutex.lock cache_m;
        if Hashtbl.length cache >= cache_bound then begin
          Obs.Metrics.inc m_cache_evictions;
          Hashtbl.reset cache
        end;
        Hashtbl.replace cache key d;
        Mutex.unlock cache_m;
        d)

and run_uncached ?budget arch graph ~mode ~reg_options ~thread_options
    ~numfirings =
  let n = Streamit.Graph.num_nodes graph in
  (* The Fig. 6 sweep is embarrassingly parallel: each filter's 16
     (regs x threads) simulated timings are independent of every other
     filter's.  Fan the per-filter sweeps out across the global pool;
     results land in node order, so the profile is identical to the
     serial one. *)
  let profile_node v =
    (* Cooperative deadline check: a sweep past its wall-clock budget
       unwinds here (the pool join re-raises the exhaustion). *)
    Option.iter Resil.Budget.check budget;
    let node = Streamit.Graph.node graph v in
    let nkey =
      ( arch,
        canonical_kind node.Streamit.Graph.kind,
        mode,
        reg_options,
        thread_options,
        numfirings )
    in
    let memoized =
      Mutex.lock node_cache_m;
      let c = Hashtbl.find_opt node_cache nkey in
      Mutex.unlock node_cache_m;
      c
    in
    match memoized with
    | Some grid ->
      Obs.Metrics.inc m_node_hits;
      (* Return a copy: callers receive a fresh grid they may alias
         into [data.runtimes]; the memo keeps its own. *)
      Array.map Array.copy grid
    | None ->
      Obs.Metrics.inc m_node_misses;
      let grid =
        Array.map
          (fun regs ->
            Array.map
              (fun threads ->
                let layout = layout_for arch mode node ~threads in
                match
                  Timing.pass_of_node arch node ~threads ~regs_cap:regs
                    ~layout
                with
                | None -> infinity
                | Some pass ->
                  let iterations = numfirings / threads in
                  float_of_int
                    ((iterations * Timing.combine_solo pass)
                    + arch.Arch.kernel_launch_cycles))
              (Array.of_list thread_options))
          (Array.of_list reg_options)
      in
      Mutex.lock node_cache_m;
      if Hashtbl.length node_cache >= node_cache_bound then begin
        Obs.Metrics.inc m_node_evictions;
        Hashtbl.reset node_cache
      end;
      Hashtbl.replace node_cache nkey (Array.map Array.copy grid);
      Mutex.unlock node_cache_m;
      grid
  in
  let runtimes =
    Array.of_list (Par.Pool.map_auto profile_node (List.init n Fun.id))
  in
  (* Stage accounting: one work unit per simulated (node, regs, threads)
     cell, charged once from the calling domain after the fan-out joins
     (budget tokens must not be charged from workers).  A cache hit in
     [run] charges the same amount: work units count logical work, so
     the ledger is independent of cache warmth. *)
  (match budget with
  | Some b ->
    Resil.Budget.charge b
      (n * List.length reg_options * List.length thread_options)
  | None -> ());
  { reg_options; thread_options; numfirings; mode; runtimes }

let index_of l x =
  let rec go i = function
    | [] -> raise Not_found
    | y :: rest -> if y = x then i else go (i + 1) rest
  in
  go 0 l

let time_of d ~node ~regs ~threads =
  d.runtimes.(node).(index_of d.reg_options regs).(index_of d.thread_options threads)

let pass_cycles d ~node ~regs ~threads =
  let t = time_of d ~node ~regs ~threads in
  t *. float_of_int threads /. float_of_int d.numfirings
