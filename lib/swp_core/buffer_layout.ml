let cluster = 128

(* Eq. (10): the producer's coalesced write map.  Shared with the memory
   simulator's index shuffler so the two definitions cannot drift. *)
let push_index ~rate ~n ~tid = Gpusim.Coalesce.shuffled_index ~rate ~cluster ~n tid

(* Eq. (11): the consumer's read map.  Token [n] of consumer thread-firing
   [tid] is stream token [s = tid*pop_rate + n], which lives wherever the
   *producer's* layout (eq. 10) put it — so the address is computed from the
   producer's push rate, not the consumer's pop rate.  When [tid] spans more
   than one producer instance region the map extends region-periodically
   (threads are a multiple of [cluster], so whole clusters never straddle a
   region boundary). *)
let pop_index ~push_rate ~pop_rate ~n ~tid =
  let s = (tid * pop_rate) + n in
  push_index ~rate:push_rate ~n:(s mod push_rate) ~tid:(s / push_rate)

let addr_of_token ~push_rate ~threads s =
  if s < 0 || s >= push_rate * threads then
    invalid_arg "Buffer_layout.addr_of_token: token out of region";
  let tid = s / push_rate and n = s mod push_rate in
  push_index ~rate:push_rate ~n ~tid

let region_tokens g (cfg : Select.config) (e : Streamit.Graph.edge) =
  Streamit.Graph.production g e * cfg.threads.(e.src)

let steady_tokens g (cfg : Select.config) (e : Streamit.Graph.edge) =
  region_tokens g cfg e * cfg.reps.(e.src)

let shuffle ~steady_pop_rate i =
  if steady_pop_rate <= 0 then invalid_arg "Buffer_layout.shuffle";
  (i / cluster) + (i mod cluster * steady_pop_rate)

type sizing = {
  per_edge : (Streamit.Graph.edge * int) list;
  total_bytes : int;
  stages : int;
  coarsening : int;
}

let g_total_bytes = Obs.Metrics.gauge "buffer_layout.total_bytes"

let size_buffers g (sched : Swp_schedule.t) ~coarsening =
  Obs.Trace.with_span "buffer_layout" @@ fun () ->
  let stages = Swp_schedule.stages sched in
  let per_edge =
    List.map
      (fun e ->
        let tokens = steady_tokens g sched.config e in
        (* In-flight iterations: a producer at stage f feeds consumers up
           to [stages] iterations later, plus the initial tokens; one
           extra region keeps reads and writes of adjacent iterations
           disjoint.  Coarsening multiplies the tokens per kernel. *)
        let bytes =
          (tokens * coarsening * (stages + 1) * Streamit.Types.elem_size_bytes)
          + (e.Streamit.Graph.init_tokens * Streamit.Types.elem_size_bytes)
        in
        (e, bytes))
      g.Streamit.Graph.edges
  in
  (* the external input and output streams are staged in device memory
     too, one kernel's worth each *)
  let io_bytes =
    match Streamit.Sdf.steady_state g with
    | Error _ -> 0
    | Ok rates ->
      (Streamit.Sdf.input_tokens g rates + Streamit.Sdf.output_tokens g rates)
      * sched.config.Select.scale * coarsening * Streamit.Types.elem_size_bytes
  in
  let total_bytes =
    List.fold_left (fun acc (_, b) -> acc + b) io_bytes per_edge
  in
  Obs.Metrics.set g_total_bytes (float_of_int total_bytes);
  Obs.Trace.add_attr "total_bytes" (Obs.Trace.Int total_bytes);
  Obs.Trace.add_attr "stages" (Obs.Trace.Int stages);
  { per_edge; total_bytes; stages; coarsening }
