type entry = { inst : Instances.instance; sm : int; o : int; f : int }

type t = {
  ii : int;
  entries : entry list;
  num_sms : int;
  config : Select.config;
}

let find t inst =
  List.find
    (fun e -> e.inst.Instances.node = inst.Instances.node && e.inst.Instances.k = inst.Instances.k)
    t.entries

let stages t = 1 + List.fold_left (fun acc e -> max acc e.f) 0 t.entries

let sm_load t =
  let load = Array.make t.num_sms 0 in
  List.iter
    (fun e ->
      load.(e.sm) <- load.(e.sm) + t.config.Select.delay.(e.inst.Instances.node))
    t.entries;
  load

let validate g t =
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  let cfg = t.config in
  (* (1) every instance scheduled exactly once, on a valid SM *)
  let expected = Instances.num_instances cfg in
  if List.length t.entries <> expected then
    fail
      (Printf.sprintf "schedule has %d entries, expected %d instances"
         (List.length t.entries) expected);
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = (e.inst.Instances.node, e.inst.Instances.k) in
      if Hashtbl.mem tbl key then fail "instance scheduled twice";
      Hashtbl.replace tbl key e;
      if e.sm < 0 || e.sm >= t.num_sms then fail "SM out of range";
      if e.o < 0 then fail "negative offset";
      if e.f < 0 then fail "negative stage";
      (* (4) no wrap-around *)
      if e.o + cfg.Select.delay.(e.inst.Instances.node) >= t.ii then
        fail
          (Printf.sprintf "instance (%s,%d) wraps around the II"
             (Streamit.Graph.name g e.inst.Instances.node)
             e.inst.Instances.k))
    t.entries;
  (* (2) resource constraint *)
  Array.iteri
    (fun p load ->
      if load > t.ii then
        fail (Printf.sprintf "SM %d overloaded: %d > II %d" p load t.ii))
    (sm_load t);
  (* (8) dependence constraints *)
  if !err = None then
    List.iter
      (fun (dep : Instances.dep) ->
        let es = Hashtbl.find_opt tbl (dep.src.Instances.node, dep.src.Instances.k) in
        let ed = Hashtbl.find_opt tbl (dep.dst.Instances.node, dep.dst.Instances.k) in
        match (es, ed) with
        | Some es, Some ed ->
          let a_src = (t.ii * es.f) + es.o in
          let a_dst = (t.ii * ed.f) + ed.o in
          if a_dst < a_src + (t.ii * dep.jlag) + dep.d_src then
            fail
              (Printf.sprintf
                 "dependence (%s,%d) -> (%s,%d) violated: %d < %d + %d*%d + %d"
                 (Streamit.Graph.name g dep.src.Instances.node)
                 dep.src.Instances.k
                 (Streamit.Graph.name g dep.dst.Instances.node)
                 dep.dst.Instances.k a_dst a_src t.ii dep.jlag dep.d_src);
          (* (8b) cross-SM producers are only visible one iteration later:
             T*fv + ov >= T*(jlag + fu + 1).  The offset term matters at the
             boundary: the ILP admits fv = jlag + fu + 1 with ov = 0, and a
             stage-only test (fv < fu + jlag + 1) silently diverges from the
             ILP as soon as offsets enter the comparison. *)
          if es.sm <> ed.sm && (t.ii * ed.f) + ed.o < t.ii * (dep.jlag + es.f + 1)
          then
            fail
              (Printf.sprintf
                 "cross-SM dependence (%s,%d) -> (%s,%d) violates (8b): \
                  %d*%d + %d < %d*(%d + %d + 1)"
                 (Streamit.Graph.name g dep.src.Instances.node)
                 dep.src.Instances.k
                 (Streamit.Graph.name g dep.dst.Instances.node)
                 dep.dst.Instances.k t.ii ed.f ed.o t.ii dep.jlag es.f)
        | _ -> fail "dependence references unscheduled instance")
      (Instances.deps g cfg);
  match !err with None -> Ok () | Some m -> Error m

let pp g fmt t =
  Format.fprintf fmt "@[<v>SWP schedule: II=%d, %d instances, %d stages" t.ii
    (List.length t.entries) (stages t);
  let by_sm = Array.make t.num_sms [] in
  List.iter (fun e -> by_sm.(e.sm) <- e :: by_sm.(e.sm)) t.entries;
  Array.iteri
    (fun p es ->
      if es <> [] then begin
        Format.fprintf fmt "@,  SM%-2d:" p;
        List.iter
          (fun e ->
            Format.fprintf fmt " (%s,%d)@@o=%d,f=%d"
              (Streamit.Graph.name g e.inst.Instances.node)
              e.inst.Instances.k e.o e.f)
          (List.sort (fun a b -> compare a.o b.o) es)
      end)
    by_sm;
  Format.fprintf fmt "@]"
