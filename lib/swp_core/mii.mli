(** Lower bounds on the initiation interval.

    [ResMII] is the resource bound: total instance work divided by the
    number of SMs.  [RecMII] is the recurrence bound over dependence
    cycles (only feedback loops create them; it is 0 for the whole
    evaluated benchmark suite, footnote 1 of the paper).  The II search
    starts at [max(ResMII, RecMII)], as Sec. V-B describes. *)

val res_mii : Select.config -> num_sms:int -> int

exception Unschedulable of string
(** Raised by {!rec_mii} (and {!lower_bound}) when a dependence cycle is
    infeasible at {e every} T — its [jlag] terms sum to zero or more, so
    the [T*jlag] slack cancels around the cycle and the positive delays
    remain.  This happens when a feedback loop's initial tokens cannot
    cover one blocked iteration at the selected scaling; such a graph has
    no software-pipelined schedule at any II. *)

val rec_mii : ?deps:Instances.dep list -> Streamit.Graph.t -> Select.config -> int
(** Smallest T for which the dependence-difference system
    [A_dst - A_src >= d_src + T*jlag] admits a solution, found by binary
    search with Bellman-Ford positive-cycle detection.  0 when the
    instance dependence graph is acyclic.  @raise Unschedulable when no T
    is feasible. *)

val lower_bound :
  ?deps:Instances.dep list ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  int
(** [max(ResMII, RecMII, 1 + max delay)] — the last term because the
    no-wrap constraint (4) requires every instance to complete within one
    II.  [deps], here and in {!rec_mii}, supplies a precomputed dependence
    expansion so the II search derives it once. *)
