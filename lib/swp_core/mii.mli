(** Lower bounds on the initiation interval.

    [ResMII] is the resource bound: total instance work divided by the
    number of SMs.  [RecMII] is the recurrence bound over dependence
    cycles (only feedback loops create them; it is 0 for the whole
    evaluated benchmark suite, footnote 1 of the paper).  The II search
    starts at [max(ResMII, RecMII)], as Sec. V-B describes. *)

val res_mii : Select.config -> num_sms:int -> int

val res_mii_sharp : Select.config -> num_sms:int -> int
(** k-cardinality sharpening of {!res_mii}: for every k, among the
    [k*num_sms + 1] largest instance delays some SM hosts at least
    [k+1], so the II is at least the sum of the [k+1] smallest of that
    set.  Always [>= res_mii] (the plain average is the degenerate
    bound); strictly larger on skewed delay distributions. *)

exception Unschedulable of string
(** Raised by {!rec_mii} (and {!lower_bound}) when a dependence cycle is
    infeasible at {e every} T — its [jlag] terms sum to zero or more, so
    the [T*jlag] slack cancels around the cycle and the positive delays
    remain.  This happens when a feedback loop's initial tokens cannot
    cover one blocked iteration at the selected scaling; such a graph has
    no software-pipelined schedule at any II. *)

val rec_mii : ?deps:Instances.dep list -> Streamit.Graph.t -> Select.config -> int
(** Smallest T for which the dependence-difference system
    [A_dst - A_src >= d_src + T*jlag] admits a solution, found by binary
    search with Bellman-Ford positive-cycle detection.  0 when the
    instance dependence graph is acyclic.  @raise Unschedulable when no T
    is feasible. *)

type level =
  | Classic  (** the original [max(ResMII, RecMII, 1 + max delay)] *)
  | Sharp    (** [res_mii_sharp] in place of [ResMII] (the default) *)

val lower_bound :
  ?deps:Instances.dep list ->
  ?level:level ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  int
(** [max(ResMII, RecMII, 1 + max delay)] — the last term because the
    no-wrap constraint (4) requires every instance to complete within one
    II.  [deps], here and in {!rec_mii}, supplies a precomputed dependence
    expansion so the II search derives it once.  [level] (default
    [Sharp]) selects the resource bound; [Classic] preserves the
    historical value for monotone-tightening comparisons.  Note the
    recurrence side needs no sharpening: {!rec_mii} binary-searches exact
    Bellman-Ford feasibility of the {e whole} difference system, which
    already accounts for every composite cycle, not a per-simple-cycle
    ratio approximation. *)

(** {1 Bound breakdown}

    The provenance machinery wants to answer "which bound was binding?"
    — so alongside the scalar {!lower_bound} there is a record keeping
    every component and the name of the one that determined the final
    value. *)

type bounds = {
  res_classic : int;   (** classic {!res_mii} *)
  res_sharp : int;     (** {!res_mii_sharp} *)
  recurrence : int;    (** {!rec_mii} *)
  no_wrap : int;       (** [1 + max live delay] (constraint (4)) *)
  combinatorial : int; (** max of the above, floored at 1 — equals
                           [lower_bound ~level:Sharp] *)
  lp : int option;     (** cutting-plane refinement when attempted *)
  final : int;         (** the search's starting II *)
  binding : string;
      (** which component is binding: ["lp"] | ["rec_mii"] |
          ["res_mii"] | ["res_mii_sharp"] | ["no_wrap"] | ["floor"] |
          ["unknown"].  When several tie, the first in that order wins
          (a classic resource bound that already proves the value takes
          precedence over its sharpening). *)
}

val bounds :
  ?deps:Instances.dep list ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  bounds
(** All combinatorial components ([lp] is [None]; the II search grafts
    it with {!with_lp} when the problem passes the LP gate).
    @raise Unschedulable as {!rec_mii}. *)

val with_lp : bounds -> int -> bounds
(** Record an LP-bound result: sets [lp], raises [final] to it when it
    is stronger, and recomputes [binding]. *)

val unknown_bounds : bounds
(** All-zero placeholder ([binding = "unknown"]) for compiles that never
    reached the bounding step (e.g. a fault before the search). *)

val lp_bound :
  ?insts:Instances.instance list ->
  ?deps:Instances.dep list ->
  ?work:int ->
  ?cut_rounds:int ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  start:int ->
  int
(** Cutting-plane lower bound from the LP relaxation, [>= start] (pass
    the combinatorial {!lower_bound} as [start]).  Probes candidate IIs
    upward: a candidate [T] is {e refuted} when the LP relaxation of the
    full scheduling ILP at [T] — strengthened with the clique rows and
    up to [cut_rounds] (default 2) rounds of violated cover cuts
    ({!Ilp.cover_cuts}) — is proven infeasible; since every integral
    schedule satisfies the relaxation and ILP feasibility is monotone in
    [T], each refutation alone certifies [T+1] as a valid bound.
    Exponential climb plus bisection maximize the refuted prefix under a
    deterministic work allotment of [work] (default 2000) simplex pivots
    (kept small because exact-rational pivot cost grows with the II
    magnitude in the capacity coefficients, not just the tableau size);
    exhaustion simply returns the best bound proven so far, so the
    result is reproducible across runs and [--jobs] settings. *)
