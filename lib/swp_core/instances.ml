open Numeric

type instance = { node : int; k : int }

type dep = { src : instance; dst : instance; jlag : int; d_src : int }

let instances (cfg : Select.config) =
  let acc = ref [] in
  for v = Array.length cfg.reps - 1 downto 0 do
    for k = cfg.reps.(v) - 1 downto 0 do
      acc := { node = v; k } :: !acc
    done
  done;
  !acc

let num_instances (cfg : Select.config) = Array.fold_left ( + ) 0 cfg.reps

let index (cfg : Select.config) inst =
  let base = ref 0 in
  for v = 0 to inst.node - 1 do
    base := !base + cfg.reps.(v)
  done;
  !base + inst.k

let edge_macro_rates g (cfg : Select.config) (e : Streamit.Graph.edge) =
  let o = Streamit.Graph.production g e * cfg.threads.(e.src) in
  let i = Streamit.Graph.consumption g e * cfg.threads.(e.dst) in
  (* The peek margin shrinks the usable initial tokens: the consumer's
     firing rule needs [peek] tokens but only [pop] are consumed. *)
  let m = e.init_tokens - Streamit.Graph.peek_margin g e in
  (o, i, m)

let state_deps g (cfg : Select.config) =
  (* Stateful filters carry dependences between successive instances
     (Sec. II-B): instance k+1 reads the state instance k wrote, and the
     first instance of an iteration reads the last instance of the
     previous one (a loop-carried dependence that makes RecMII > 0). *)
  let out = ref [] in
  Array.iteri
    (fun v (nd : Streamit.Graph.node) ->
      match nd.Streamit.Graph.kind with
      | Streamit.Graph.NFilter f when Streamit.Kernel.is_stateful f ->
        let kv = cfg.reps.(v) in
        for k = 0 to kv - 2 do
          out :=
            {
              src = { node = v; k };
              dst = { node = v; k = k + 1 };
              jlag = 0;
              d_src = cfg.delay.(v);
            }
            :: !out
        done;
        out :=
          {
            src = { node = v; k = kv - 1 };
            dst = { node = v; k = 0 };
            jlag = -1;
            d_src = cfg.delay.(v);
          }
          :: !out
      | _ -> ())
    g.Streamit.Graph.nodes;
  !out

let deps g (cfg : Select.config) =
  let out = ref (state_deps g cfg) in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (e : Streamit.Graph.edge) ->
      let u = e.src and v = e.dst in
      let o', i', m' = edge_macro_rates g cfg e in
      let init = e.Streamit.Graph.init_tokens in
      let ku = cfg.reps.(u) in
      for k = 0 to cfg.reps.(v) - 1 do
        (* Producer firing indices covering the consumer instance's read
           window.  The window's lower end is its first pop, shifted back
           by the full initial-token count; only the upper end additionally
           extends by the peek margin (each thread reads [peek - pop]
           tokens past its pop window), which is what [m' = init - margin]
           encodes.  Both bounds are ceil((c - O') / O') for the boundary
           consumed coordinates — a contiguous integer interval. *)
        let lo = Intmath.cdiv ((k * i') + 1 - init - o') o' in
        let hi = Intmath.cdiv ((k * i') + i' - m' - o') o' in
        for idx = lo to hi do
          (* A negative idx is served by initial tokens in the first
             steady-state iteration only; from iteration |idx/ku| onwards
             it is a real token the producer wrote |jlag| iterations
             earlier, so it is emitted with that (negative) jlag rather
             than dropped. *)
          let k' = Intmath.emod idx ku in
          let jlag = Intmath.fdiv idx ku in
          let key = (u, k', v, k, jlag) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            out :=
              {
                src = { node = u; k = k' };
                dst = { node = v; k };
                jlag;
                d_src = cfg.delay.(u);
              }
              :: !out
          end
        done
      done)
    g.Streamit.Graph.edges;
  List.rev !out
