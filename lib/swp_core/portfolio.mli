(** Portfolio of schedulers raced per candidate II.

    Instead of the historical "heuristic, then maybe exact" ladder, each
    candidate II races several {e arms} in a fixed order — the three
    {!Heuristic.strategy} packings, then (when admitted) the exact ILP
    with clique cuts and root cover-cut separation — and the first
    feasible arm wins.  Different packings fail at different IIs, so the
    race lowers the achieved II at near-zero cost; the fixed order and
    work-unit accounting keep every probe a pure function of its
    candidate II, preserving the commit-prefix discipline that makes
    serial and [--jobs N] searches byte-identical.

    Budgets: [tok] (the per-attempt allotment) is consulted before each
    arm and threaded to the arms through per-arm {!Resil.Budget.sub}
    tokens — one work unit per heuristic arm, the full branch-and-bound
    charge stream for the exact arm — so a tight per-attempt budget cuts
    the race short at a deterministic point.

    Metrics ([portfolio.arm_won{arm}], [portfolio.no_arm_won],
    [portfolio.lns_improved], [portfolio.lns_improvement_pct]) are
    recorded only from {!record_arm}/{!record_lns}, which the II search
    calls at commit points — speculative probes never touch them. *)

type outcome = {
  schedule : Swp_schedule.t option;  (** the winning arm's schedule *)
  arm : string;
      (** winning arm: ["ffd"] | ["bfd"] | ["bal"] | ["exact"], or
          ["none"] when every arm failed *)
  tried_exact : bool;   (** the exact arm ran (win or lose) *)
  arms_run : int;       (** arms actually raced (the work-unit charge) *)
  bb : Lp.Branch_bound.stats option;  (** exact arm's stats when it ran *)
}

val try_ii :
  ?tok:Resil.Budget.t ->
  ?allow_exact:bool ->
  ?node_budget:int ->
  ?time_budget_s:float ->
  ?cuts:bool ->
  insts:Instances.instance list ->
  deps:Instances.dep list ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  ii:int ->
  outcome
(** Race the arms at one candidate II.  [allow_exact] (default [false])
    admits the exact ILP after every heuristic arm failed — the caller
    gates it on problem size and bound proximity.  [cuts] (default
    [true]) arms the exact solve with {!Ilp.cover_cuts}. *)

val record_arm : string -> feasible:bool -> unit
(** Record a committed attempt's arm outcome (win counter per arm, loss
    counter for ["none"]).  Call only at commit points. *)

val record_lns : from_ii:int -> to_ii:int -> unit
(** Record a committed LNS improvement (counter + magnitude histogram,
    in percent of the pre-refinement II). *)
