(* Per-candidate-II portfolio: the heuristic packing strategies and the
   (gated) exact ILP raced as budgeted arms.  The racing order is fixed
   — ffd, bfd, bal, then exact — and the first feasible arm wins, so
   the outcome is a pure function of the candidate II and the arms'
   work caps: speculative parallel probing commits exactly what the
   serial race would have. *)

type outcome = {
  schedule : Swp_schedule.t option;
  arm : string;
  tried_exact : bool;
  arms_run : int;
  bb : Lp.Branch_bound.stats option;
}

let arm_names = [ "ffd"; "bfd"; "bal"; "exact"; "lns" ]

let won =
  List.map
    (fun a -> (a, Obs.Metrics.counter ~labels:[ ("arm", a) ] "portfolio.arm_won"))
    arm_names

let m_lost = Obs.Metrics.counter "portfolio.no_arm_won"
let m_lns_improved = Obs.Metrics.counter "portfolio.lns_improved"
let h_lns_pct = Obs.Metrics.histogram "portfolio.lns_improvement_pct"

(* Called at *commit* time only (ii_search's commit point), never from a
   speculative probe, so metrics reflect the committed search. *)
let record_arm arm ~feasible =
  if feasible then
    match List.assoc_opt arm won with
    | Some c -> Obs.Metrics.inc c
    | None -> ()
  else if arm = "none" then Obs.Metrics.inc m_lost

let record_lns ~from_ii ~to_ii =
  Obs.Metrics.inc m_lns_improved;
  (match List.assoc_opt "lns" won with
  | Some c -> Obs.Metrics.inc c
  | None -> ());
  Obs.Metrics.observe h_lns_pct
    (100.0
    *. float_of_int (from_ii - to_ii)
    /. float_of_int (max 1 from_ii))

let try_ii ?tok ?(allow_exact = false) ?(node_budget = 2000) ?time_budget_s
    ?(cuts = true) ~insts ~deps g cfg ~num_sms ~ii =
  let arms_run = ref 0 in
  let over () =
    match tok with Some t -> Resil.Budget.over_work t | None -> false
  in
  (* Heuristic arms: one work unit each, charged through a per-arm
     sub-token so a tight per-attempt allotment cuts the race short
     deterministically. *)
  let rec heur = function
    | [] -> None
    | s :: tl ->
      if over () then None
      else begin
        incr arms_run;
        (match tok with
        | Some t ->
          Resil.Budget.charge
            (Resil.Budget.sub ~label:("arm." ^ Heuristic.strategy_name s) t)
            1
        | None -> ());
        match Heuristic.solve ~strategy:s ~insts ~deps g cfg ~num_sms ~ii with
        | `Schedule sched -> Some (sched, Heuristic.strategy_name s)
        | `Infeasible -> heur tl
      end
  in
  match heur Heuristic.all_strategies with
  | Some (s, arm) ->
    { schedule = Some s; arm; tried_exact = false; arms_run = !arms_run; bb = None }
  | None ->
    if (not allow_exact) || over () then
      {
        schedule = None;
        arm = "none";
        tried_exact = false;
        arms_run = !arms_run;
        bb = None;
      }
    else begin
      incr arms_run;
      let sub = Option.map (Resil.Budget.sub ~label:"arm.exact") tok in
      let bb = ref None in
      let res =
        Ilp.solve ~node_budget ?time_budget_s ?budget:sub ~insts ~deps
          ~stats:bb ~cuts g cfg ~num_sms ~ii
      in
      let schedule = match res with `Schedule s -> Some s | _ -> None in
      {
        schedule;
        arm = (if schedule <> None then "exact" else "none");
        tried_exact = true;
        arms_run = !arms_run;
        bb = !bb;
      }
    end
