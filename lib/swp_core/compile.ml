type scheme = Swp_coalesced | Swp_non_coalesced
type quality = Exact | Refined | Heuristic | Degraded

type stage_spend = { stage : string; wall_s : float; work : int }

type rationale =
  | Completed
  | Search_stopped of Ii_search.reason
  | Fault_at of string
  | Budget_exhausted of string * Resil.Budget.reason

type prov = {
  stage_spends : stage_spend list;
  ledger_total : int;
  rationale : rationale;
  fallback_seed_ii : int option;
  total_wall_s : float;
}

type compiled = {
  arch : Gpusim.Arch.t;
  scheme : scheme;
  graph : Streamit.Graph.t;
  rates : Streamit.Sdf.rates;
  profile : Profile.data;
  config : Select.config;
  schedule : Swp_schedule.t;
  search_stats : Ii_search.stats;
  sizing : Buffer_layout.sizing;
  coarsening : int;
  quality : quality;
  prov : prov;
}

let quality_name = function
  | Exact -> "exact"
  | Refined -> "refined"
  | Heuristic -> "heuristic"
  | Degraded -> "degraded"

let pp_quality fmt q = Format.pp_print_string fmt (quality_name q)

let rationale_name = function
  | Completed -> "completed"
  | Search_stopped r -> Format.asprintf "search stopped (%a)" Ii_search.pp_reason r
  | Fault_at site -> Printf.sprintf "fault injected at %s" site
  | Budget_exhausted (label, r) ->
    Format.asprintf "%s exhausted (%a)" label Resil.Budget.pp_reason r

let pp_rationale fmt r = Format.pp_print_string fmt (rationale_name r)

let m_exact = Obs.Metrics.counter "compile.quality.exact"
let m_refined = Obs.Metrics.counter "compile.quality.refined"
let m_heuristic = Obs.Metrics.counter "compile.quality.heuristic"
let m_degraded = Obs.Metrics.counter "compile.quality.degraded"

let ( let* ) = Result.bind

let inject site = if Resil.Inject.armed () then Resil.Inject.fire site

let compile ?(arch = Gpusim.Arch.geforce_8800_gts_512) ?num_sms
    ?(coarsening = 1) ?solver ?portfolio ?lns_rounds
    ?(scheme = Swp_coalesced) ?deadline ?budget ?(on_budget = `Degrade)
    ?seed_ii graph =
  let num_sms = Option.value num_sms ~default:arch.Gpusim.Arch.num_sms in
  Obs.Trace.with_span "compile"
    ~attrs:
      [
        ( "scheme",
          Obs.Trace.Str
            (match scheme with
            | Swp_coalesced -> "SWP"
            | Swp_non_coalesced -> "SWPNC") );
        ("num_sms", Obs.Trace.Int num_sms);
      ]
  @@ fun () ->
  if coarsening < 1 then
    Error (Printf.sprintf "invalid coarsening %d: must be >= 1" coarsening)
  else if num_sms < 1 then
    Error (Printf.sprintf "invalid num_sms %d: must be >= 1" num_sms)
  else if (match budget with Some b -> b < 0 | None -> false) then
    Error "invalid budget: must be >= 0 work units"
  else if (match deadline with Some d -> d <= 0.0 | None -> false) then
    Error "invalid deadline: must be > 0 seconds"
  else begin
    (* The compile ledger is the root of the budget-token tree: each
       stage charges a sub-token, so charges roll up and the per-stage
       spends sum exactly to the root's total.  A [deadline] arms the
       root's wall clock — profiling and selection check their sub-token
       cooperatively (the parent chain supplies the deadline), and
       whatever real time is left when the II search starts becomes its
       deadline.  Without a deadline the tokens are pure accounting and
       never raise. *)
    let t_start = Resil.Clock.now () in
    let ledger = Resil.Budget.create ~label:"compile" ?wall_s:deadline () in
    let spends = ref [] in
    (* Per-stage wall + work accounting.  [Fun.protect] so a fault or an
       exhausted deadline raised mid-stage still records the partial
       spend (the flight record of a failed compile must not dangle). *)
    let staged name tok f =
      let t0 = Resil.Clock.now () in
      Fun.protect f ~finally:(fun () ->
          spends :=
            {
              stage = name;
              wall_s = Resil.Clock.now () -. t0;
              work = Resil.Budget.consumed tok;
            }
            :: !spends)
    in
    let tok_profile = Resil.Budget.sub ~label:"compile/profile" ledger in
    let tok_select = Resil.Budget.sub ~label:"compile/select" ledger in
    let tok_search = Resil.Budget.sub ~label:"compile/search" ledger in
    let tok_layout = Resil.Budget.sub ~label:"compile/layout" ledger in
    let finish ~quality ~rationale ?fallback_seed_ii rates profile config
        schedule search_stats =
      Obs.Trace.add_attr "ii" (Obs.Trace.Int schedule.Swp_schedule.ii);
      Obs.Trace.add_attr "quality" (Obs.Trace.Str (quality_name quality));
      let sizing =
        staged "layout" tok_layout (fun () ->
            inject "stage.layout";
            let s = Buffer_layout.size_buffers graph schedule ~coarsening in
            Resil.Budget.charge tok_layout
              (List.length s.Buffer_layout.per_edge);
            s)
      in
      Obs.Metrics.inc
        (match quality with
        | Exact -> m_exact
        | Refined -> m_refined
        | Heuristic -> m_heuristic
        | Degraded -> m_degraded);
      let prov =
        {
          stage_spends = List.rev !spends;
          ledger_total = Resil.Budget.consumed ledger;
          rationale;
          fallback_seed_ii;
          total_wall_s = Resil.Clock.now () -. t_start;
        }
      in
      Obs.Log.event "compile.finish"
        ~attrs:
          [
            ("quality", Obs.Log.Str (quality_name quality));
            ("ii", Obs.Log.Int schedule.Swp_schedule.ii);
            ("rationale", Obs.Log.Str (rationale_name rationale));
            ("ledger_total", Obs.Log.Int prov.ledger_total);
          ];
      Ok
        {
          arch;
          scheme;
          graph;
          rates;
          profile;
          config;
          schedule;
          search_stats;
          sizing;
          coarsening;
          quality;
          prov;
        }
    in
    try
      let* () = Streamit.Graph.validate graph in
      let* rates = Streamit.Sdf.steady_state graph in
      let mode =
        match scheme with
        | Swp_coalesced -> Profile.Coalesced
        | Swp_non_coalesced -> Profile.Non_coalesced
      in
      let profile =
        staged "profile" tok_profile (fun () ->
            inject "stage.profile";
            Profile.run ~budget:tok_profile arch graph ~mode)
      in
      let* config =
        staged "select" tok_select (fun () ->
            inject "stage.select";
            Select.select ~budget:tok_select graph rates profile)
      in
      let search_budget =
        {
          Ii_search.default_budget with
          Ii_search.total_work = budget;
          wall_clock_s =
            Option.map
              (fun d -> Float.max 0.0 (d -. (Resil.Clock.now () -. t_start)))
              deadline;
        }
      in
      let search_result =
        staged "search" tok_search (fun () ->
            (* A fault or budget exhaustion inside the search stage is
               recoverable: the fallback scheduler below still has
               everything it needs (the profile and configuration). *)
            let r =
              try
                inject "stage.search";
                Result.map_error
                  (fun e -> `Search e)
                  (match solver with
                  | Some s ->
                    Ii_search.search ~solver:s ?portfolio ?lns_rounds
                      ~budget:search_budget graph config ~num_sms
                  | None ->
                    Ii_search.search ?portfolio ?lns_rounds
                      ~budget:search_budget graph config ~num_sms
                  )
              with
              | Resil.Inject.Injected site -> Error (`Fault site)
              | Resil.Budget.Exhausted { label; reason } ->
                Error (`Exhausted (label, reason))
            in
            (* The search runs its own enforcement ledger; the compile
               ledger is charged post-hoc with the committed spend so the
               stage accounting matches the attempt log exactly. *)
            let committed =
              match r with
              | Ok (_, (st : Ii_search.stats)) -> st.Ii_search.attempt_log
              | Error (`Search (e : Ii_search.error)) ->
                e.Ii_search.attempt_log
              | Error (`Fault _ | `Exhausted _) -> []
            in
            Resil.Budget.charge tok_search
              (List.fold_left
                 (fun acc (a : Ii_search.attempt) ->
                   acc + a.Ii_search.work_units)
                 0 committed);
            r)
      in
      match search_result with
      | Ok (schedule, search_stats) ->
        let quality =
          if search_stats.Ii_search.refined then Refined
          else if search_stats.Ii_search.used_exact then Exact
          else Heuristic
        in
        finish ~quality ~rationale:Completed rates profile config schedule
          search_stats
      | Error err -> (
        let message =
          match err with
          | `Search (e : Ii_search.error) ->
            Format.asprintf "II search failed (%a): %s" Ii_search.pp_reason
              e.Ii_search.reason e.Ii_search.message
          | `Fault site -> Printf.sprintf "fault injected at %s" site
          | `Exhausted (label, reason) ->
            Format.asprintf "%s budget exhausted (%a)" label
              Resil.Budget.pp_reason reason
        in
        let recoverable =
          match err with
          | `Fault _ | `Exhausted _ -> true
          | `Search e -> (
            match e.Ii_search.reason with
            | `Budget | `Deadline -> true
            | `Unschedulable | `Range -> false)
        in
        if on_budget = `Fail || not recoverable then Error message
        else
          (* Degradation ladder, last rung: a guaranteed-feasible serial
             schedule at a relaxed II.  The search's committed attempt
             log is preserved in the synthesized stats so the degraded
             compile stays auditable. *)
          let lower_bound, bounds, attempt_log =
            match err with
            | `Search e ->
              ( e.Ii_search.lower_bound,
                Option.value e.Ii_search.bounds ~default:Mii.unknown_bounds,
                e.Ii_search.attempt_log )
            | `Fault _ | `Exhausted _ -> (0, Mii.unknown_bounds, [])
          in
          (* Seed the fallback with the search's frontier: one past the
             last committed candidate (all committed candidates were
             infeasible or the search would have returned Ok); else the
             caller's [?seed_ii] hint (the serve cache warm-starts here
             from a previously achieved II when only one filter
             changed); else the bound itself.  Quality stays [Degraded]
             — the seed only shrinks the relaxation. *)
          let seed_ii =
            match List.rev attempt_log with
            | a :: _ -> Some (a.Ii_search.ii + 1)
            | [] -> (
              match seed_ii with
              | Some h -> Some (max h lower_bound)
              | None -> if lower_bound > 0 then Some lower_bound else None)
          in
          let rationale =
            match err with
            | `Search e -> Search_stopped e.Ii_search.reason
            | `Fault site -> Fault_at site
            | `Exhausted (label, reason) -> Budget_exhausted (label, reason)
          in
          Obs.Log.event "compile.degrade"
            ~attrs:
              [
                ("rationale", Obs.Log.Str (rationale_name rationale));
                ( "seed_ii",
                  match seed_ii with
                  | Some i -> Obs.Log.Int i
                  | None -> Obs.Log.Str "none" );
              ];
          let* schedule = Fallback.schedule ?seed_ii graph config ~num_sms in
          let achieved_ii = schedule.Swp_schedule.ii in
          let search_stats =
            {
              Ii_search.lower_bound;
              bounds;
              achieved_ii;
              attempts = List.length attempt_log;
              relaxation =
                (if lower_bound > 0 then
                   float_of_int (achieved_ii - lower_bound)
                   /. float_of_int lower_bound
                 else 0.0);
              used_exact = false;
              refined = false;
              attempt_log;
            }
          in
          finish ~quality:Degraded ~rationale ?fallback_seed_ii:seed_ii rates
            profile config schedule search_stats)
    with
    | Resil.Inject.Injected site ->
      Error (Printf.sprintf "fault injected at %s" site)
    | Resil.Budget.Exhausted { label; reason } ->
      Error
        (Format.asprintf "%s budget exhausted (%a)" label
           Resil.Budget.pp_reason reason)
  end

let recoarsen c n =
  if n <= 0 then invalid_arg "Compile.recoarsen: non-positive factor";
  {
    c with
    coarsening = n;
    sizing = Buffer_layout.size_buffers c.graph c.schedule ~coarsening:n;
  }

let layout_of_node c node =
  match c.scheme with
  | Swp_coalesced -> Gpusim.Timing.Shuffled
  | Swp_non_coalesced ->
    Profile.layout_for c.arch Profile.Non_coalesced node
      ~threads:c.config.Select.threads.(node.Streamit.Graph.id)

let pp_summary fmt c =
  Format.fprintf fmt
    "@[<v>compiled %s scheme=%s quality=%s@,\
     nodes=%d instances=%d@,\
     regs=%d block_threads=%d scale=%d@,\
     %a@,\
     stages=%d coarsening=%d buffers=%d bytes@]"
    c.arch.Gpusim.Arch.name
    (match c.scheme with
    | Swp_coalesced -> "SWP"
    | Swp_non_coalesced -> "SWPNC")
    (quality_name c.quality)
    (Streamit.Graph.num_nodes c.graph)
    (Instances.num_instances c.config)
    c.config.Select.regs c.config.Select.block_threads c.config.Select.scale
    Ii_search.pp_stats c.search_stats
    (Swp_schedule.stages c.schedule)
    c.coarsening c.sizing.Buffer_layout.total_bytes
