type scheme = Swp_coalesced | Swp_non_coalesced

type compiled = {
  arch : Gpusim.Arch.t;
  scheme : scheme;
  graph : Streamit.Graph.t;
  rates : Streamit.Sdf.rates;
  profile : Profile.data;
  config : Select.config;
  schedule : Swp_schedule.t;
  search_stats : Ii_search.stats;
  sizing : Buffer_layout.sizing;
  coarsening : int;
}

let ( let* ) = Result.bind

let compile ?(arch = Gpusim.Arch.geforce_8800_gts_512) ?num_sms
    ?(coarsening = 1) ?solver ?(scheme = Swp_coalesced) graph =
  let num_sms = Option.value num_sms ~default:arch.Gpusim.Arch.num_sms in
  Obs.Trace.with_span "compile"
    ~attrs:
      [
        ( "scheme",
          Obs.Trace.Str
            (match scheme with
            | Swp_coalesced -> "SWP"
            | Swp_non_coalesced -> "SWPNC") );
        ("num_sms", Obs.Trace.Int num_sms);
      ]
  @@ fun () ->
  let* () = Streamit.Graph.validate graph in
  let* rates = Streamit.Sdf.steady_state graph in
  let mode =
    match scheme with
    | Swp_coalesced -> Profile.Coalesced
    | Swp_non_coalesced -> Profile.Non_coalesced
  in
  let profile = Profile.run arch graph ~mode in
  let* config = Select.select graph rates profile in
  let* schedule, search_stats =
    match solver with
    | Some s -> Ii_search.search ~solver:s graph config ~num_sms
    | None -> Ii_search.search graph config ~num_sms
  in
  Obs.Trace.add_attr "ii" (Obs.Trace.Int schedule.Swp_schedule.ii);
  let sizing = Buffer_layout.size_buffers graph schedule ~coarsening in
  Ok
    {
      arch;
      scheme;
      graph;
      rates;
      profile;
      config;
      schedule;
      search_stats;
      sizing;
      coarsening;
    }

let recoarsen c n =
  if n <= 0 then invalid_arg "Compile.recoarsen: non-positive factor";
  {
    c with
    coarsening = n;
    sizing = Buffer_layout.size_buffers c.graph c.schedule ~coarsening:n;
  }

let layout_of_node c node =
  match c.scheme with
  | Swp_coalesced -> Gpusim.Timing.Shuffled
  | Swp_non_coalesced ->
    Profile.layout_for c.arch Profile.Non_coalesced node
      ~threads:c.config.Select.threads.(node.Streamit.Graph.id)

let pp_summary fmt c =
  Format.fprintf fmt
    "@[<v>compiled %s scheme=%s@,\
     nodes=%d instances=%d@,\
     regs=%d block_threads=%d scale=%d@,\
     %a@,\
     stages=%d coarsening=%d buffers=%d bytes@]"
    c.arch.Gpusim.Arch.name
    (match c.scheme with
    | Swp_coalesced -> "SWP"
    | Swp_non_coalesced -> "SWPNC")
    (Streamit.Graph.num_nodes c.graph)
    (Instances.num_instances c.config)
    c.config.Select.regs c.config.Select.block_threads c.config.Select.scale
    Ii_search.pp_stats c.search_stats
    (Swp_schedule.stages c.schedule)
    c.coarsening c.sizing.Buffer_layout.total_bytes
