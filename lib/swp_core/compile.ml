type scheme = Swp_coalesced | Swp_non_coalesced
type quality = Exact | Refined | Heuristic | Degraded

type compiled = {
  arch : Gpusim.Arch.t;
  scheme : scheme;
  graph : Streamit.Graph.t;
  rates : Streamit.Sdf.rates;
  profile : Profile.data;
  config : Select.config;
  schedule : Swp_schedule.t;
  search_stats : Ii_search.stats;
  sizing : Buffer_layout.sizing;
  coarsening : int;
  quality : quality;
}

let quality_name = function
  | Exact -> "exact"
  | Refined -> "refined"
  | Heuristic -> "heuristic"
  | Degraded -> "degraded"

let pp_quality fmt q = Format.pp_print_string fmt (quality_name q)

let m_exact = Obs.Metrics.counter "compile.quality.exact"
let m_refined = Obs.Metrics.counter "compile.quality.refined"
let m_heuristic = Obs.Metrics.counter "compile.quality.heuristic"
let m_degraded = Obs.Metrics.counter "compile.quality.degraded"

let ( let* ) = Result.bind

let inject site = if Resil.Inject.armed () then Resil.Inject.fire site

let compile ?(arch = Gpusim.Arch.geforce_8800_gts_512) ?num_sms
    ?(coarsening = 1) ?solver ?portfolio ?lns_rounds
    ?(scheme = Swp_coalesced) ?deadline ?budget ?(on_budget = `Degrade) graph
    =
  let num_sms = Option.value num_sms ~default:arch.Gpusim.Arch.num_sms in
  Obs.Trace.with_span "compile"
    ~attrs:
      [
        ( "scheme",
          Obs.Trace.Str
            (match scheme with
            | Swp_coalesced -> "SWP"
            | Swp_non_coalesced -> "SWPNC") );
        ("num_sms", Obs.Trace.Int num_sms);
      ]
  @@ fun () ->
  if coarsening < 1 then
    Error (Printf.sprintf "invalid coarsening %d: must be >= 1" coarsening)
  else if num_sms < 1 then
    Error (Printf.sprintf "invalid num_sms %d: must be >= 1" num_sms)
  else if (match budget with Some b -> b < 0 | None -> false) then
    Error "invalid budget: must be >= 0 work units"
  else if (match deadline with Some d -> d <= 0.0 | None -> false) then
    Error "invalid deadline: must be > 0 seconds"
  else begin
    (* The wall-clock deadline covers the whole pipeline: profiling and
       selection check this token cooperatively, and whatever real time
       is left when the II search starts becomes its deadline.  Absent a
       deadline no clock is ever read — budgeted compilation stays
       deterministic. *)
    let t_start = if deadline = None then 0.0 else Unix.gettimeofday () in
    let outer =
      Option.map
        (fun s -> Resil.Budget.create ~label:"compile" ~wall_s:s ())
        deadline
    in
    let finish ~quality rates profile config schedule search_stats =
      inject "stage.layout";
      Obs.Trace.add_attr "ii" (Obs.Trace.Int schedule.Swp_schedule.ii);
      Obs.Trace.add_attr "quality" (Obs.Trace.Str (quality_name quality));
      let sizing = Buffer_layout.size_buffers graph schedule ~coarsening in
      Obs.Metrics.inc
        (match quality with
        | Exact -> m_exact
        | Refined -> m_refined
        | Heuristic -> m_heuristic
        | Degraded -> m_degraded);
      Ok
        {
          arch;
          scheme;
          graph;
          rates;
          profile;
          config;
          schedule;
          search_stats;
          sizing;
          coarsening;
          quality;
        }
    in
    try
      let* () = Streamit.Graph.validate graph in
      let* rates = Streamit.Sdf.steady_state graph in
      let mode =
        match scheme with
        | Swp_coalesced -> Profile.Coalesced
        | Swp_non_coalesced -> Profile.Non_coalesced
      in
      inject "stage.profile";
      let profile = Profile.run ?budget:outer arch graph ~mode in
      inject "stage.select";
      let* config = Select.select ?budget:outer graph rates profile in
      let search_budget =
        {
          Ii_search.default_budget with
          Ii_search.total_work = budget;
          wall_clock_s =
            Option.map
              (fun d -> Float.max 0.0 (d -. (Unix.gettimeofday () -. t_start)))
              deadline;
        }
      in
      let search_result =
        (* A fault or budget exhaustion inside the search stage is
           recoverable: the fallback scheduler below still has
           everything it needs (the profile and configuration). *)
        try
          inject "stage.search";
          Result.map_error
            (fun e -> `Search e)
            (match solver with
            | Some s ->
              Ii_search.search ~solver:s ?portfolio ?lns_rounds
                ~budget:search_budget graph config ~num_sms
            | None ->
              Ii_search.search ?portfolio ?lns_rounds ~budget:search_budget
                graph config ~num_sms)
        with
        | Resil.Inject.Injected site -> Error (`Fault site)
        | Resil.Budget.Exhausted { label; reason } ->
          Error (`Exhausted (label, reason))
      in
      match search_result with
      | Ok (schedule, search_stats) ->
        let quality =
          if search_stats.Ii_search.refined then Refined
          else if search_stats.Ii_search.used_exact then Exact
          else Heuristic
        in
        finish ~quality rates profile config schedule search_stats
      | Error err -> (
        let message =
          match err with
          | `Search (e : Ii_search.error) ->
            Format.asprintf "II search failed (%a): %s" Ii_search.pp_reason
              e.Ii_search.reason e.Ii_search.message
          | `Fault site -> Printf.sprintf "fault injected at %s" site
          | `Exhausted (label, reason) ->
            Format.asprintf "%s budget exhausted (%a)" label
              Resil.Budget.pp_reason reason
        in
        let recoverable =
          match err with
          | `Fault _ | `Exhausted _ -> true
          | `Search e -> (
            match e.Ii_search.reason with
            | `Budget | `Deadline -> true
            | `Unschedulable | `Range -> false)
        in
        if on_budget = `Fail || not recoverable then Error message
        else
          (* Degradation ladder, last rung: a guaranteed-feasible serial
             schedule at a relaxed II.  The search's committed attempt
             log is preserved in the synthesized stats so the degraded
             compile stays auditable. *)
          let lower_bound, attempt_log =
            match err with
            | `Search e -> (e.Ii_search.lower_bound, e.Ii_search.attempt_log)
            | `Fault _ | `Exhausted _ -> (0, [])
          in
          (* Seed the fallback with the search's frontier: one past the
             last committed candidate (all committed candidates were
             infeasible or the search would have returned Ok), or the
             bound itself when nothing committed.  Quality stays
             [Degraded] — the seed only shrinks the relaxation. *)
          let seed_ii =
            match List.rev attempt_log with
            | a :: _ -> Some (a.Ii_search.ii + 1)
            | [] -> if lower_bound > 0 then Some lower_bound else None
          in
          let* schedule = Fallback.schedule ?seed_ii graph config ~num_sms in
          let achieved_ii = schedule.Swp_schedule.ii in
          let search_stats =
            {
              Ii_search.lower_bound;
              achieved_ii;
              attempts = List.length attempt_log;
              relaxation =
                (if lower_bound > 0 then
                   float_of_int (achieved_ii - lower_bound)
                   /. float_of_int lower_bound
                 else 0.0);
              used_exact = false;
              refined = false;
              attempt_log;
            }
          in
          finish ~quality:Degraded rates profile config schedule search_stats)
    with
    | Resil.Inject.Injected site ->
      Error (Printf.sprintf "fault injected at %s" site)
    | Resil.Budget.Exhausted { label; reason } ->
      Error
        (Format.asprintf "%s budget exhausted (%a)" label
           Resil.Budget.pp_reason reason)
  end

let recoarsen c n =
  if n <= 0 then invalid_arg "Compile.recoarsen: non-positive factor";
  {
    c with
    coarsening = n;
    sizing = Buffer_layout.size_buffers c.graph c.schedule ~coarsening:n;
  }

let layout_of_node c node =
  match c.scheme with
  | Swp_coalesced -> Gpusim.Timing.Shuffled
  | Swp_non_coalesced ->
    Profile.layout_for c.arch Profile.Non_coalesced node
      ~threads:c.config.Select.threads.(node.Streamit.Graph.id)

let pp_summary fmt c =
  Format.fprintf fmt
    "@[<v>compiled %s scheme=%s quality=%s@,\
     nodes=%d instances=%d@,\
     regs=%d block_threads=%d scale=%d@,\
     %a@,\
     stages=%d coarsening=%d buffers=%d bytes@]"
    c.arch.Gpusim.Arch.name
    (match c.scheme with
    | Swp_coalesced -> "SWP"
    | Swp_non_coalesced -> "SWPNC")
    (quality_name c.quality)
    (Streamit.Graph.num_nodes c.graph)
    (Instances.num_instances c.config)
    c.config.Select.regs c.config.Select.block_threads c.config.Select.scale
    Ii_search.pp_stats c.search_stats
    (Swp_schedule.stages c.schedule)
    c.coarsening c.sizing.Buffer_layout.total_bytes
