(** Large-neighborhood (LNS) refinement of a feasible schedule.

    The II search stops at the first feasible candidate; this pass then
    tries to push {e below} it.  Each probe freezes the best schedule's
    SM assignment, picks a target II between the lower bound and the
    current best (bisection, re-anchored on every improvement), and

    + {b repairs} the assignment greedily — relocations of instances off
      overloaded SMs to the least-loaded fitting SM, then swaps of a big
      overloaded-SM instance against a smaller one elsewhere (each move
      strictly decreases total overload, so repair terminates);
    + {b re-packs exactly} when greed leaves SMs overloaded and the
      window is small: the instances of the still-overloaded SMs form a
      bin-packing ILP against the frozen remainder's residual
      capacities, screened by the phase-1 LP feasibility oracle and
      solved by branch-and-bound under a work-unit budget;
    + {b re-places} phase 2 ({!Heuristic.place}) at the target II and
      validates.

    Probes run serially after the upward search has committed, use fixed
    iteration orders and work-unit budgets only, and are committed
    through the caller's [commit] callback in probe order — so a
    budgeted refinement cuts off at the same probe serially and under
    [--jobs N], preserving byte-identical attempt logs. *)

type probe = {
  target : int;         (** candidate II of this probe *)
  feasible : bool;      (** the repaired schedule validated at [target] *)
  moved : int;          (** greedy relocations + swaps applied *)
  exact_window : bool;  (** the exact window re-pack ILP was attempted *)
  lp_pivots : int;
  bb_nodes : int;
  work_units : int;     (** [1 + lp_pivots + bb_nodes], the ledger charge *)
  time_s : float;       (** CPU seconds (excluded from log signatures) *)
}

val refine :
  ?rounds:int ->
  ?node_budget:int ->
  ?window_work:int ->
  ?max_window_vars:int ->
  ledger_ok:(unit -> bool) ->
  commit:(probe -> unit) ->
  insts:Instances.instance list ->
  deps:Instances.dep list ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  lb:int ->
  Swp_schedule.t ->
  Swp_schedule.t
(** [refine ~ledger_ok ~commit ... ~lb s] returns the best schedule
    found (possibly [s] itself; never worse, and always validated).  At
    most [rounds] (default 12) probes run; [ledger_ok] is consulted
    before each probe so an exhausted search ledger stops refinement
    without failing the search, and [commit] is called exactly once per
    probe, in order, with its deterministic work accounting.
    [node_budget] (default 600) and [window_work] (default 1500 work
    units) bound each exact window re-pack; windows larger than
    [max_window_vars] (default 96) assignment variables skip the exact
    step entirely. *)
