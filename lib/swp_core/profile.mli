(** Profiling phase (Fig. 6 of the paper).

    For every node of the flattened graph, four kernel versions are
    "compiled" with register caps {16, 20, 32, 64} and each is "executed"
    with {128, 256, 384, 512} threads on the simulated GPU, performing
    [numfirings] single-threaded firings regardless of configuration so
    the measurements are comparable.  Infeasible launches (block does not
    fit the register file) record an infinite time, exactly as Fig. 6
    line 5 prescribes. *)

type mode =
  | Coalesced      (** optimized shuffled buffer layout *)
  | Non_coalesced
      (** SWPNC: natural layout, or shared-memory staging when the
          working set fits (Sec. V-B) *)

type data = {
  reg_options : int list;
  thread_options : int list;
  numfirings : int;
  mode : mode;
  runtimes : float array array array;
      (** [runtimes.(node).(ri).(ti)] = simulated GPU cycles to perform
          [numfirings] firings of [node] compiled with [reg_options.(ri)]
          registers and run with [thread_options.(ti)] threads;
          [infinity] when infeasible *)
}

val default_reg_options : int list
val default_thread_options : int list

val layout_for : Gpusim.Arch.t -> mode -> Streamit.Graph.node -> threads:int -> Gpusim.Timing.layout
(** The buffer layout a node uses under the given compilation mode. *)

val run :
  ?reg_options:int list ->
  ?thread_options:int list ->
  ?numfirings:int ->
  ?budget:Resil.Budget.t ->
  Gpusim.Arch.t ->
  Streamit.Graph.t ->
  mode:mode ->
  data
(** Memoized on [(arch, graph, mode, options)] — profiling is
    deterministic and the filter IR is pure data, so repeated compiles of
    the same graph (per scheme, per SM count) reuse one profile.  The
    cache is domain-safe, and an uncached sweep fans the per-filter
    timing grids out across {!Par.Pool.map_auto} (identical results in
    any width, node order preserved).  [budget] is checked cooperatively
    at entry and before each filter's sweep (an exhausted token raises
    {!Resil.Budget.Exhausted}) and, on a cache miss, charged one work
    unit per simulated [(node, regs, threads)] cell for stage
    accounting; a cache hit charges nothing. *)

val clear_cache : unit -> unit
(** Drop every memoized profile — the whole-graph cache and the
    per-node memo (benchmark drivers use this to time cold sweeps
    fairly). *)

type memo_stats = { node_hits : int; node_misses : int; node_entries : int }

val memo_stats : unit -> memo_stats
(** Counters and current size of the per-node memo that sits under the
    whole-graph cache.  Per-node sweeps are keyed on the
    alpha-canonical node kind (name-irrelevant), so recompiling a graph
    in which a single filter changed re-simulates only that filter —
    the incremental-recompile path reported by the serve daemon. *)

val time_of : data -> node:int -> regs:int -> threads:int -> float
(** Lookup by option values rather than indices.
    @raise Not_found for an unprofiled combination. *)

val pass_cycles : data -> node:int -> regs:int -> threads:int -> float
(** Time of a single pass ([threads] concurrent firings):
    [time_of * threads / numfirings]. *)
