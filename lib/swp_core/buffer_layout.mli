(** Optimized buffer layout (Sec. IV-D, eqs. (9)-(11)).

    Tokens crossing an edge during one steady state are stored shuffled:
    within each producer instance's region, the [n]-th pushes of all
    threads are grouped in clusters of 128 consecutive thread ids, so a
    warp's simultaneous accesses hit [WarpBaseAddress + tid] — fully
    coalesced, with no shared-memory staging and no bank conflicts.

    The module is the single source of truth for where a token lives:
    [addr_of_token] defines the layout (producer-form, eq. (11)), the
    [push_index]/[pop_index] helpers expose the per-thread index
    computations code generation emits, and the host-side [shuffle]
    permutation (eq. (9)) reorders the external input buffer once so the
    entry filter can pop coalesced. *)

val cluster : int
(** Thread-cluster size: 128, the gcd of the candidate block sizes. *)

val push_index : rate:int -> n:int -> tid:int -> int
(** Eq. (10): address (within the instance's region) of the [n]-th token
    pushed by thread [tid] of a filter with push rate [rate].  Delegates to
    {!Gpusim.Coalesce.shuffled_index} — the two definitions cannot drift. *)

val pop_index : push_rate:int -> pop_rate:int -> n:int -> tid:int -> int
(** Eq. (11), the pop side: address of the [n]-th token popped by consumer
    thread-firing [tid] when the consumer pops [pop_rate] tokens per firing
    from a producer that laid the stream out with [push_rate].  This is the
    producer's eq.-(10) layout addressed at stream token
    [s = tid*pop_rate + n]; when [pop_rate = push_rate] it coincides with
    [push_index].  [tid] may span several producer instance regions — the
    map extends region-periodically provided the producer's thread count is
    a multiple of {!cluster}. *)

val addr_of_token :
  push_rate:int -> threads:int -> int -> int
(** [addr_of_token ~push_rate ~threads s]: physical offset, within one
    producer instance's region, of the token with FIFO sequence number
    [s] inside that region ([0 <= s < push_rate * threads]). *)

val region_tokens : Streamit.Graph.t -> Select.config -> Streamit.Graph.edge -> int
(** Tokens one producer macro-firing writes to this edge ([O']). *)

val steady_tokens : Streamit.Graph.t -> Select.config -> Streamit.Graph.edge -> int
(** Tokens crossing the edge per macro steady state. *)

val shuffle : steady_pop_rate:int -> int -> int
(** Eq. (9): host-side permutation applied to the program's external
    input buffer; [shuffle ~steady_pop_rate i] is the position token [i]
    is moved to. *)

type sizing = {
  per_edge : (Streamit.Graph.edge * int) list;  (** bytes per channel *)
  total_bytes : int;
  stages : int;       (** pipeline depth of the schedule *)
  coarsening : int;
}

val size_buffers :
  Streamit.Graph.t -> Swp_schedule.t -> coarsening:int -> sizing
(** Buffer requirement of a software-pipelined schedule: each channel
    holds [(stages + 1)] iterations of in-flight tokens, scaled by the
    coarsening factor; no buffer sharing (Sec. V-A).  This regenerates
    Table II. *)
