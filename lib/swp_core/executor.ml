open Gpusim

type gpu_time = {
  ii_cycles : int;
  sm_cycles : int array;
  bus_cycles : int;
  kernel_cycles : int;
  cycles_per_steady : float;
}

let cdiv a b = (a + b - 1) / b

let g_ii_cycles = Obs.Metrics.gauge "executor.ii_cycles"
let g_bus_cycles = Obs.Metrics.gauge "executor.bus_cycles"
let g_busiest_sm = Obs.Metrics.gauge "executor.busiest_sm_cycles"

let time_swp (c : Compile.compiled) =
  Obs.Trace.with_span "execute" @@ fun () ->
  let arch = c.arch in
  let sched = c.schedule in
  let cfg = c.config in
  let num_sms = sched.Swp_schedule.num_sms in
  let sm_cycles = Array.make num_sms 0 in
  let bus_bytes = ref 0 in
  List.iter
    (fun (e : Swp_schedule.entry) ->
      let v = e.inst.Instances.node in
      let node = Streamit.Graph.node c.graph v in
      let layout = Compile.layout_of_node c node in
      (* actual execution pays for rate-mismatched edges the profile is
         blind to (the layout coalesces the producer side; mismatched
         consumers read strided) *)
      let in_rates = Timing.in_edge_rates c.graph v in
      match
        Timing.pass_of_node ~in_rates arch node
          ~threads:cfg.Select.threads.(v) ~regs_cap:cfg.Select.regs ~layout
      with
      | None ->
        (* the configuration was selected as feasible; cannot happen *)
        assert false
      | Some pass ->
        (* An instance cannot retire before its own bus transfers are
           served, so its SM's busy time includes them; because the
           profile underestimates scatter-heavy splitter/joiner
           instances, LPT packs several onto one SM and that SM's busy
           time then exceeds the scheduled II — the imbalance the paper
           reports for DCT and MatrixMult. *)
        let own_bus =
          cdiv pass.Timing.bus_bytes arch.Arch.dram_bytes_per_cycle
        in
        let busy =
          max (max pass.Timing.compute_cycles pass.Timing.latency_cycles)
            own_bus
          + 20
        in
        sm_cycles.(e.sm) <- sm_cycles.(e.sm) + busy;
        bus_bytes := !bus_bytes + pass.Timing.bus_bytes)
    sched.Swp_schedule.entries;
  let bus_cycles = cdiv !bus_bytes arch.Arch.dram_bytes_per_cycle in
  let busiest = Array.fold_left max 0 sm_cycles in
  let n = c.coarsening in
  (* Coarsening iterates every instance n times inside one II, which
     averages out the memory-arbitration jitter the paper describes
     (Sec. V-B): the makespan excess over the scheduled II shrinks with
     sqrt(n). *)
  let jitter = 1.0 +. (0.35 /. sqrt (float_of_int n)) in
  (* jitter stretches the makespan of the per-SM schedules; the
     aggregate bus bound is a throughput limit and does not jitter *)
  let ii_cycles =
    max (int_of_float (float_of_int busiest *. jitter)) bus_cycles
    + arch.Arch.sync_cycles
  in
  (* The staging predicates live in device memory (Sec. IV-C), so the
     software pipeline persists across kernel launches — a launch costs
     only its dispatch overhead, amortized over the iterations one
     kernel's buffers cover. *)
  let iters_per_kernel = 8 in
  let kernel_cycles =
    arch.Arch.kernel_launch_cycles + (iters_per_kernel * n * ii_cycles)
  in
  let cycles_per_macro_ss =
    float_of_int kernel_cycles /. float_of_int (iters_per_kernel * n)
  in
  let cycles_per_steady =
    cycles_per_macro_ss /. float_of_int cfg.Select.scale
  in
  Obs.Metrics.set g_ii_cycles (float_of_int ii_cycles);
  Obs.Metrics.set g_bus_cycles (float_of_int bus_cycles);
  Obs.Metrics.set g_busiest_sm (float_of_int busiest);
  Obs.Trace.add_attr "ii_cycles" (Obs.Trace.Int ii_cycles);
  Obs.Trace.add_attr "bus_cycles" (Obs.Trace.Int bus_cycles);
  Obs.Trace.add_attr "kernel_cycles" (Obs.Trace.Int kernel_cycles);
  { ii_cycles; sm_cycles; bus_cycles; kernel_cycles; cycles_per_steady }

type serial_time = {
  batch : int;
  launches : int;
  total_cycles : float;
  cycles_per_steady : float;
  buffer_bytes : int;
}

let time_serial ?(arch = Arch.geforce_8800_gts_512) ?batch graph ~budget_bytes
    =
  match Streamit.Sdf.steady_state graph with
  | Error m -> Error m
  | Ok rates ->
    let n = Streamit.Graph.num_nodes graph in
    (* SAS buffering: every edge holds its full per-batch production.
       The batch is the number of steady states resident on the device at
       once — the paper matches it to the SWP8 kernel's working set and
       additionally caps it by the SWP8 buffer budget. *)
    let bytes_per_ss =
      List.fold_left
        (fun acc (_, tokens) -> acc + (tokens * Streamit.Types.elem_size_bytes))
        0 rates.Streamit.Sdf.edge_tokens
    in
    let by_budget = max 1 (budget_bytes / max 1 bytes_per_ss) in
    let batch =
      match batch with Some b -> max 1 (min b by_budget) | None -> by_budget
    in
    let order = Streamit.Graph.topo_order graph in
    let total = ref 0.0 in
    let buffer_bytes = bytes_per_ss * batch in
    let feasible = ref (Ok ()) in
    List.iter
      (fun v ->
        let node = Streamit.Graph.node graph v in
        let firings = rates.Streamit.Sdf.reps.(v) * batch in
        (* 16 blocks; threads per block sized to the available data
           parallelism, in whole warps, within the block limit *)
        let threads =
          let want = cdiv firings arch.Arch.num_sms in
          let rounded = cdiv want arch.Arch.warp_size * arch.Arch.warp_size in
          max arch.Arch.warp_size (min arch.Arch.max_threads_per_block rounded)
        in
        (* the serial scheme is compiled without a register cap squeeze:
           use the smallest standard cap that avoids spilling *)
        let regs_cap =
          match node.Streamit.Graph.kind with
          | Streamit.Graph.NFilter f ->
            let d = Streamit.Kernel.estimate_registers f in
            let cap = List.find_opt (fun c -> c >= d) [ 16; 20; 32; 64 ] in
            Option.value cap ~default:64
          | _ -> 16
        in
        let regs_cap =
          (* still subject to launch feasibility *)
          if Arch.config_feasible arch ~regs_per_thread:regs_cap ~threads then
            regs_cap
          else 16
        in
        (* With the whole batch materialised before each phase, a serial
           kernel is free to choose its thread-to-firing assignment per
           launch and read in producer order — it does not pay the
           cross-pattern scatter the pipelined kernel is locked into. *)
        match
          Timing.pass_of_node arch node ~threads ~regs_cap
            ~layout:Timing.Shuffled
        with
        | None -> feasible := Error (Streamit.Graph.name graph v ^ ": infeasible launch")
        | Some pass ->
          let waves = cdiv firings (threads * arch.Arch.num_sms) in
          (* all SMs execute the same filter concurrently: the bus is
             shared by num_sms instances of this pass *)
          let wave_cycles =
            max
              (max pass.Timing.compute_cycles pass.Timing.latency_cycles)
              (cdiv
                 (pass.Timing.bus_bytes * arch.Arch.num_sms)
                 arch.Arch.dram_bytes_per_cycle)
            + 20
          in
          total :=
            !total
            +. float_of_int
                 (arch.Arch.kernel_launch_cycles + (waves * wave_cycles)))
      order;
    (match !feasible with
    | Error m -> Error m
    | Ok () ->
      ignore n;
      Ok
        {
          batch;
          launches = List.length order;
          total_cycles = !total;
          cycles_per_steady = !total /. float_of_int batch;
          buffer_bytes;
        })

let cpu_cycles_per_steady ?(model = Cpu_model.xeon_2_83ghz) graph =
  match Streamit.Sdf.steady_state graph with
  | Error m -> Error m
  | Ok rates -> Ok (Cpu_model.steady_state_cycles model graph rates)

let speedup ?(model = Cpu_model.xeon_2_83ghz) ~arch ~graph
    ~gpu_cycles_per_steady () =
  match cpu_cycles_per_steady ~model graph with
  | Error m -> Error m
  | Ok cpu_cycles ->
    let t_host = Cpu_model.seconds model cpu_cycles in
    let t_gpu = gpu_cycles_per_steady /. (arch.Arch.core_clock_ghz *. 1e9) in
    Ok (t_host /. t_gpu)
