(** Initiation-interval search loop (Sec. V-B).

    The paper's methodology: start at the lower bound
    [max(ResMII, RecMII)], allot the solver a fixed budget, and on
    failure relax the II by 0.5% (at least 1 cycle) and retry.  We keep
    the same loop; the budget is a branch-and-bound node budget instead
    of 20 wall-clock seconds, and a heuristic modulo scheduler can be
    tried at each candidate II before or instead of the exact ILP.

    The search derives the instance/dependence expansion {e once} and
    reuses it across every candidate II, and in [Exact] mode warm-starts
    branch-and-bound with the heuristic's feasible schedule so the ILP
    verifies rather than re-discovers it. *)

type solver =
  | Exact of int
      (** ILP with the given node budget per candidate II, warm-started
          from the heuristic schedule whenever one exists at that II *)
  | Heuristic
  | Auto of int
      (** heuristic first; when it fails at a candidate II and the
          problem is small enough for branch-and-bound (at most 96
          assignment variables), try the exact ILP with the given budget
          before relaxing *)

type attempt = {
  ii : int;                (** candidate II of this attempt *)
  tried_exact : bool;      (** the exact ILP ran (possibly warm-started) *)
  feasible : bool;
  solve_time_s : float;    (** CPU seconds spent on this candidate *)
  lp_pivots : int;         (** simplex pivots across the ILP's relaxations *)
  bb_nodes : int;          (** branch-and-bound nodes explored *)
}

type stats = {
  lower_bound : int;       (** the starting II *)
  achieved_ii : int;
  attempts : int;          (** candidate IIs tried *)
  relaxation : float;      (** (achieved - bound) / bound *)
  used_exact : bool;       (** whether the returned schedule came from the ILP *)
  attempt_log : attempt list;
      (** one entry per candidate II, in search order (the last entry is
          the successful one when the search succeeds) *)
}

val pp_attempt : Format.formatter -> attempt -> unit
(** One line per candidate II: solver, feasibility, time, pivots, nodes.
    Shared by the bench and CLI drivers so their attempt logs agree. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line search summary (achieved II, bound, relaxation, attempts). *)

val search :
  ?solver:solver ->
  ?relax_step:float ->
  ?max_relax:float ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  (Swp_schedule.t * stats, string) result
(** Defaults: [solver = Auto 2000], [relax_step = 0.005] (the paper's
    0.5%), [max_relax = 4.0] (give up beyond 5x the bound). *)
