(** Initiation-interval search loop (Sec. V-B).

    The paper's methodology: start at the lower bound
    [max(ResMII, RecMII)], allot the solver a fixed budget, and on
    failure relax the II by 0.5% (at least 1 cycle) and retry.  We keep
    the same loop; the budget is a branch-and-bound node budget instead
    of 20 wall-clock seconds, and a heuristic modulo scheduler can be
    tried at each candidate II before or instead of the exact ILP.

    The search derives the instance/dependence expansion {e once} and
    reuses it across every candidate II, and in [Exact] mode warm-starts
    branch-and-bound with the heuristic's feasible schedule so the ILP
    verifies rather than re-discovers it.

    {2 Budgets}

    A {!budget} bounds the search along two axes.  {e Per-attempt}
    limits ([attempt_work], and the paper-mirroring [exact_time_s] /
    [auto_time_s] CPU allotments) bound one candidate II's solve; the
    search then relaxes and retries, so they shape quality, not
    termination.  {e Search-wide} limits ([total_work],
    [wall_clock_s]) stop the whole search with a structured {!error}
    that the compiler turns into a degraded-but-valid schedule.

    Work-unit limits (simplex pivots + branch-and-bound nodes, one unit
    each, plus one per committed attempt) are deterministic: the ledger
    is charged only when an attempt {e commits}, in candidate order, so
    a budgeted parallel search cuts off at exactly the attempt the
    serial search would.  Wall-clock limits are nondeterministic and
    opt-in. *)

type solver =
  | Exact of int
      (** ILP with the given node budget per candidate II, warm-started
          from the heuristic schedule whenever one exists at that II *)
  | Heuristic
  | Auto of int
      (** heuristic first; when it fails at a candidate II and the
          problem is small enough for branch-and-bound (at most 96
          assignment variables), try the exact ILP with the given budget
          before relaxing *)

type budget = {
  attempt_work : int option;
      (** work-unit cap per candidate II's ILP solve (pivots + nodes);
          deterministic *)
  exact_time_s : float option;
      (** CPU-seconds cap per [Exact] ILP solve — the paper's 20 s
          CPLEX allotment *)
  auto_time_s : float option;
      (** CPU-seconds cap per [Auto] rescue ILP solve *)
  total_work : int option;
      (** work-unit ledger for the whole search; exhaustion stops it
          with reason [`Budget].  Deterministic *)
  wall_clock_s : float option;
      (** wall-clock deadline for the whole search; exceeding it stops
          with reason [`Deadline].  Nondeterministic, opt-in *)
}

val default_budget : budget
(** [{ attempt_work = None; exact_time_s = Some 20.0;
      auto_time_s = Some 1.0; total_work = None; wall_clock_s = None }]
    — exactly the paper-derived per-attempt CPU allotments the search
    always had, and no search-wide limit. *)

type attempt = {
  ii : int;                (** candidate II of this attempt *)
  arm : string;
      (** the arm that produced this attempt's outcome: a portfolio arm
          name (["ffd"] | ["bfd"] | ["bal"] | ["exact"]), ["lns"] for a
          refinement probe, or ["none"] when nothing was feasible *)
  tried_exact : bool;      (** the exact ILP ran (possibly warm-started) *)
  feasible : bool;
  solve_time_s : float;    (** CPU seconds spent on this candidate *)
  lp_pivots : int;         (** simplex pivots across the ILP's relaxations *)
  bb_nodes : int;          (** branch-and-bound nodes explored *)
  work_units : int;        (** [lp_pivots + bb_nodes + arms raced] (at
                               least one), the ledger charge *)
  budget_hit : bool;       (** the per-attempt budget cut this solve short
                               (or a fault was injected here) *)
}

type stats = {
  lower_bound : int;       (** the starting II ([= bounds.final]) *)
  bounds : Mii.bounds;     (** full lower-bound breakdown: which of
                               RecMII / ResMII / sharp / LP was binding *)
  achieved_ii : int;
  attempts : int;          (** candidate IIs tried *)
  relaxation : float;      (** (achieved - bound) / bound *)
  used_exact : bool;       (** whether the returned schedule came from the ILP *)
  refined : bool;          (** LNS refinement improved the schedule below
                               the first feasible candidate *)
  attempt_log : attempt list;
      (** one entry per candidate II, in search order (the last entry is
          the successful one when the search succeeds) *)
}

type reason = [ `Unschedulable | `Budget | `Deadline | `Range ]
(** Why a search stopped without a schedule: structurally unschedulable
    at any II; the [total_work] ledger ran dry; the [wall_clock_s]
    deadline passed; or every candidate up to the relaxation cap failed. *)

type error = {
  message : string;        (** one-line human-readable diagnostic *)
  reason : reason;
  lower_bound : int;       (** 0 when unschedulable before bounding *)
  bounds : Mii.bounds option;
      (** the bound breakdown when the search got that far ([None] only
          for [`Unschedulable]) *)
  attempt_log : attempt list;  (** committed attempts up to the stop *)
}

val pp_reason : Format.formatter -> reason -> unit

val pp_attempt : Format.formatter -> attempt -> unit
(** One line per candidate II: solver, feasibility, time, pivots, nodes.
    Shared by the bench and CLI drivers so their attempt logs agree. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line search summary (achieved II, bound, relaxation, attempts). *)

val log_signature : stats -> string
(** Canonical serialization of the committed search — every attempt
    field except wall times.  Two runs of the same budgeted search must
    produce equal signatures whatever [--jobs] was; the determinism
    suite asserts exactly that. *)

val search :
  ?solver:solver ->
  ?portfolio:bool ->
  ?lns_rounds:int ->
  ?budget:budget ->
  ?relax_step:float ->
  ?max_relax:float ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  (Swp_schedule.t * stats, error) result
(** Defaults: [solver = Auto 2000], [portfolio = true],
    [lns_rounds = 12], [budget = default_budget], [relax_step = 0.005]
    (the paper's 0.5%), [max_relax = 4.0] (give up beyond 5x the
    bound).

    [portfolio] races the {!Heuristic.all_strategies} packings (and, in
    [Auto] mode near the bound on small problems, the cut-armed exact
    ILP) per candidate II — see {!Portfolio.try_ii}; [false] restores
    the historical first-fit-then-maybe-exact ladder.  [lns_rounds]
    bounds the {!Lns.refine} probes run below the first feasible
    candidate ([0] disables refinement; [Exact] mode never refines).
    Both preserve byte-identical determinism: arms race in a fixed
    order under work-unit budgets, and refinement probes run serially
    at commit time. *)
