let res_mii (cfg : Select.config) ~num_sms =
  let total = ref 0 in
  Array.iteri (fun v k -> total := !total + (k * cfg.Select.delay.(v))) cfg.Select.reps;
  Numeric.Intmath.cdiv !total num_sms

(* Longest-path feasibility of the difference system at a candidate T:
   edge weight d_src + T*jlag; infeasible iff a positive cycle exists.
   Takes the dependence endpoints pre-resolved to dense indices so the
   binary search in [rec_mii] does the resolution once, not per probe. *)
let feasible_at cfg iedges t =
  let n = Instances.num_instances cfg in
  let dist = Array.make n 0 in
  let edges =
    List.map (fun (s, d, dsrc, jlag) -> (s, d, dsrc + (t * jlag))) iedges
  in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters <= n do
    changed := false;
    incr iters;
    List.iter
      (fun (s, d, w) ->
        if dist.(s) + w > dist.(d) then begin
          dist.(d) <- dist.(s) + w;
          changed := true
        end)
      edges
  done;
  not !changed

exception Unschedulable of string

let rec_mii ?deps g cfg =
  let deps = match deps with Some l -> l | None -> Instances.deps g cfg in
  let iedges =
    List.map
      (fun (d : Instances.dep) ->
        (Instances.index cfg d.src, Instances.index cfg d.dst, d.d_src, d.jlag))
      deps
  in
  (* Cycles require a loop-carried (jlag < 0) dependence; without one the
     dependence DAG is acyclic and RecMII is 0. *)
  if feasible_at cfg iedges 0 then 0
  else begin
    (* Feasibility is monotone in T: a cycle of weight sum(d) + T*sum(jlag)
       stays positive forever when sum(jlag) >= 0 and clears once
       T >= sum(d)/|sum(jlag)| otherwise.  So a satisfiable system needs at
       most T = sum of all positive delays (every cycle's delay sum divided
       by |sum(jlag)| >= 1 is below that).  Probe the cap before searching:
       a cycle whose jlag terms cancel — a feedback loop whose initial
       tokens cannot cover one blocked iteration — is infeasible at every
       T, and an unbounded doubling search would never terminate on it. *)
    let t_cap =
      List.fold_left (fun acc (_, _, d, _) -> acc + max 0 d) 1 iedges
    in
    if not (feasible_at cfg iedges t_cap) then
      raise
        (Unschedulable
           "dependence cycle with no loop-carried slack: a feedback loop's \
            initial tokens cannot cover one blocked iteration at the \
            selected scaling");
    let lo = ref 0 and hi = ref t_cap in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if feasible_at cfg iedges mid then hi := mid else lo := mid
    done;
    !hi
  end

let lower_bound ?deps g cfg ~num_sms =
  (* Constraint (4) — no wrap-around — needs T > d(v) for every scheduled
     node, on top of the resource and recurrence bounds. *)
  let max_delay =
    Array.fold_left
      (fun acc d -> max acc d)
      0
      (Array.mapi
         (fun v d -> if cfg.Select.reps.(v) > 0 then d else 0)
         cfg.Select.delay)
  in
  max (max_delay + 1)
    (max 1 (max (res_mii cfg ~num_sms) (rec_mii ?deps g cfg)))
