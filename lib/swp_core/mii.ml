let res_mii (cfg : Select.config) ~num_sms =
  let total = ref 0 in
  Array.iteri (fun v k -> total := !total + (k * cfg.Select.delay.(v))) cfg.Select.reps;
  Numeric.Intmath.cdiv !total num_sms

(* k-cardinality sharpening of ResMII.  Consider only the (k*m + 1)
   largest instance delays (m = num_sms): by pigeonhole some SM hosts at
   least k+1 of them, and that SM's load — a lower bound on the II by
   constraint (2) — is at least the sum of the k+1 smallest delays in
   that set.  Maximizing over k dominates the plain average bound on
   skewed delay distributions (a handful of heavyweight filters among
   many light ones), which is exactly where the heuristic-vs-bound gap
   was widest. *)
let res_mii_sharp (cfg : Select.config) ~num_sms =
  let base = res_mii cfg ~num_sms in
  let n = Instances.num_instances cfg in
  if n = 0 || num_sms < 1 then base
  else begin
    let ds = Array.make n 0 in
    let j = ref 0 in
    Array.iteri
      (fun v reps ->
        for _ = 1 to reps do
          ds.(!j) <- cfg.Select.delay.(v);
          incr j
        done)
      cfg.Select.reps;
    Array.sort (fun a b -> compare b a) ds;
    let best = ref base in
    let k = ref 1 in
    while (!k * num_sms) + 1 <= n do
      let s = ref 0 in
      for i = (!k * num_sms) - !k to !k * num_sms do
        s := !s + ds.(i)
      done;
      if !s > !best then best := !s;
      incr k
    done;
    !best
  end

(* Longest-path feasibility of the difference system at a candidate T:
   edge weight d_src + T*jlag; infeasible iff a positive cycle exists.
   Takes the dependence endpoints pre-resolved to dense indices so the
   binary search in [rec_mii] does the resolution once, not per probe. *)
let feasible_at cfg iedges t =
  let n = Instances.num_instances cfg in
  let dist = Array.make n 0 in
  let edges =
    List.map (fun (s, d, dsrc, jlag) -> (s, d, dsrc + (t * jlag))) iedges
  in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters <= n do
    changed := false;
    incr iters;
    List.iter
      (fun (s, d, w) ->
        if dist.(s) + w > dist.(d) then begin
          dist.(d) <- dist.(s) + w;
          changed := true
        end)
      edges
  done;
  not !changed

exception Unschedulable of string

let rec_mii ?deps g cfg =
  let deps = match deps with Some l -> l | None -> Instances.deps g cfg in
  let iedges =
    List.map
      (fun (d : Instances.dep) ->
        (Instances.index cfg d.src, Instances.index cfg d.dst, d.d_src, d.jlag))
      deps
  in
  (* Cycles require a loop-carried (jlag < 0) dependence; without one the
     dependence DAG is acyclic and RecMII is 0. *)
  if feasible_at cfg iedges 0 then 0
  else begin
    (* Feasibility is monotone in T: a cycle of weight sum(d) + T*sum(jlag)
       stays positive forever when sum(jlag) >= 0 and clears once
       T >= sum(d)/|sum(jlag)| otherwise.  So a satisfiable system needs at
       most T = sum of all positive delays (every cycle's delay sum divided
       by |sum(jlag)| >= 1 is below that).  Probe the cap before searching:
       a cycle whose jlag terms cancel — a feedback loop whose initial
       tokens cannot cover one blocked iteration — is infeasible at every
       T, and an unbounded doubling search would never terminate on it. *)
    let t_cap =
      List.fold_left (fun acc (_, _, d, _) -> acc + max 0 d) 1 iedges
    in
    if not (feasible_at cfg iedges t_cap) then
      raise
        (Unschedulable
           "dependence cycle with no loop-carried slack: a feedback loop's \
            initial tokens cannot cover one blocked iteration at the \
            selected scaling");
    let lo = ref 0 and hi = ref t_cap in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if feasible_at cfg iedges mid then hi := mid else lo := mid
    done;
    !hi
  end

type level = Classic | Sharp

(* Constraint (4) — no wrap-around — needs T > d(v) for every scheduled
   node, on top of the resource and recurrence bounds. *)
let no_wrap_bound (cfg : Select.config) =
  let max_delay =
    Array.fold_left
      (fun acc d -> max acc d)
      0
      (Array.mapi
         (fun v d -> if cfg.Select.reps.(v) > 0 then d else 0)
         cfg.Select.delay)
  in
  max_delay + 1

let lower_bound ?deps ?(level = Sharp) g cfg ~num_sms =
  let res =
    match level with
    | Classic -> res_mii cfg ~num_sms
    | Sharp -> res_mii_sharp cfg ~num_sms
  in
  max (no_wrap_bound cfg) (max 1 (max res (rec_mii ?deps g cfg)))

(* --- Bound breakdown (provenance) ------------------------------------- *)

type bounds = {
  res_classic : int;
  res_sharp : int;
  recurrence : int;
  no_wrap : int;
  combinatorial : int;
  lp : int option;
  final : int;
  binding : string;
}

let binding_name b =
  match b.lp with
  | Some v when v > b.combinatorial && v = b.final -> "lp"
  | _ ->
    if b.recurrence = b.final then "rec_mii"
    else if b.res_classic = b.final then "res_mii"
    else if b.res_sharp = b.final then "res_mii_sharp"
    else if b.no_wrap = b.final then "no_wrap"
    else "floor"

let rebind b = { b with binding = binding_name b }

let unknown_bounds =
  {
    res_classic = 0;
    res_sharp = 0;
    recurrence = 0;
    no_wrap = 0;
    combinatorial = 0;
    lp = None;
    final = 0;
    binding = "unknown";
  }

let bounds ?deps g cfg ~num_sms =
  let res_classic = res_mii cfg ~num_sms in
  let res_sharp = res_mii_sharp cfg ~num_sms in
  let recurrence = rec_mii ?deps g cfg in
  let no_wrap = no_wrap_bound cfg in
  let combinatorial = max no_wrap (max 1 (max res_sharp recurrence)) in
  rebind
    {
      res_classic;
      res_sharp;
      recurrence;
      no_wrap;
      combinatorial;
      lp = None;
      final = combinatorial;
      binding = "";
    }

let with_lp b v = rebind { b with lp = Some v; final = max b.final v }

(* --- LP-relaxation / cutting-plane bound ------------------------------ *)

(* A candidate T is refuted when the LP relaxation of the full scheduling
   ILP — strengthened with the a-priori clique rows and a bounded round
   of cover cuts separated from its own fractional optimum — is proven
   infeasible.  Soundness of each probe stands alone: the (cut-
   strengthened) relaxation's feasible region contains every integral
   schedule, and ILP feasibility is monotone in T (a schedule at T is a
   schedule at T+1: constraint (8b) only loosens), so LP-infeasibility
   at T proves no schedule exists at any T' <= T, i.e. T+1 is a valid
   lower bound.  The climb below therefore never depends on the
   {e provability} being monotone — a budget-truncated climb just
   returns the best bound proven so far. *)
let lp_bound ?insts ?deps ?(work = 2_000) ?(cut_rounds = 2) g cfg ~num_sms
    ~start =
  let insts =
    match insts with Some l -> l | None -> Instances.instances cfg
  in
  let deps = match deps with Some l -> l | None -> Instances.deps g cfg in
  (* A standalone deterministic allotment: the bound is computed once per
     search, before any attempt, and is a pure function of the problem —
     it is deliberately not charged to the search ledger, exactly like
     the combinatorial bounds above. *)
  let tok = Resil.Budget.create ~label:"mii.lp_bound" ~work () in
  let refuted t =
    if t < 1 then true
    else
      match Ilp.build ~insts ~deps ~cuts:true g cfg ~num_sms ~ii:t with
      | Error _ -> true (* some delay >= t: infeasible outright *)
      | Ok (p, vm) ->
        let rec go rounds =
          if Resil.Budget.over_work tok then false
          else begin
            let n = Lp.Problem.num_vars p in
            let lb = Array.init n (Lp.Problem.var_lb p)
            and ub = Array.init n (Lp.Problem.var_ub p) in
            match Lp.Simplex.solve_with_bounds ~budget:tok p ~lb ~ub with
            | Lp.Solution.Infeasible -> true
            | Lp.Solution.Budget_exhausted _ | Lp.Solution.Unbounded -> false
            | Lp.Solution.Optimal sol ->
              if rounds <= 0 then false
              else (
                match Ilp.cover_cuts vm insts cfg ~num_sms ~ii:t sol with
                | [] -> false
                | cuts ->
                  List.iter
                    (fun (lhs, rel, rhs) ->
                      Lp.Problem.add_constraint p lhs rel rhs)
                    cuts;
                  go (rounds - 1))
          end
        in
        go cut_rounds
  in
  if not (refuted start) then start
  else begin
    (* exponential climb over refuted candidates, then bisection *)
    let lo = ref start and hi = ref None and step = ref 1 in
    while !hi = None && not (Resil.Budget.over_work tok) do
      let t = !lo + !step in
      if refuted t then begin
        lo := t;
        step := 2 * !step
      end
      else hi := Some t
    done;
    (match !hi with
    | None -> ()
    | Some h ->
      let h = ref h in
      while !h - !lo > 1 && not (Resil.Budget.over_work tok) do
        let mid = (!lo + !h) / 2 in
        if refuted mid then lo := mid else h := mid
      done);
    !lo + 1
  end
