(** Guaranteed-feasible fallback scheduler — the last rung of the
    degradation ladder (exact ILP, then heuristic, then this).

    When the II search runs out of budget or deadline before finding a
    schedule, the compiler must still emit {e something} valid.  This
    module schedules every instance serially on SM 0 at a deliberately
    relaxed II — one cycle more than the total steady-state work — where
    the heuristic's longest-path relaxation always converges for
    admissible graphs: with a single SM there are no cross-SM (8b)
    separations, the per-SM load fits the II by construction, and every
    dependence cycle carries at least one iteration of lag.  The result
    is a dreadful-but-correct software pipeline: throughput degrades,
    validity does not. *)

val relaxed_ii : Select.config -> int
(** [1 + sum over instances of their delay]: an II at which a serial
    one-SM schedule trivially satisfies the resource constraint (2) and
    the no-wrap constraint (4). *)

val schedule :
  ?seed_ii:int ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  (Swp_schedule.t, string) result
(** Schedule on one SM at {!relaxed_ii}, re-label the schedule with the
    real [num_sms] (unused SMs stay idle) and validate it against the
    full constraint system.  On the (theoretically impossible for
    admissible graphs) chance of failure the II is doubled a few times
    before giving up with [Error].

    [seed_ii] — typically the last candidate a budget-stopped II search
    committed — first ramps the real multi-SM heuristic up from the
    seed (x5/4 per try, at most 16 tries, capped at {!relaxed_ii});
    any hit there beats the serial rung by orders of magnitude while
    staying deterministic.  The serial rung remains the guaranteed
    backstop. *)
