(* streamit_gpu: command-line driver for the StreamIt-to-GPU compiler.

   Subcommands:
     info     <bench|file.str>   graph structure, rates, schedules
     profile  <bench|file.str>   Fig. 6 profile table + selected configuration
     compile  <bench|file.str>   full pipeline; prints schedule and buffers
     emit     <bench|file.str>   generated CUDA source on stdout
     run      <bench|file.str>   interpret N steady states, print outputs
     speedup  <bench|file.str>   SWP/SWPNC/Serial speedups vs the CPU model
     trace    <bench|file.str>   full pipeline under span tracing; Chrome JSON
     sweep    <bench|file.str>   compile at several SM counts (--sms 2,4,6,8)
     report   <bench|file.str>   compile flight record: bounds, attempts, spend
     list                        available built-in benchmarks

   Every compiling subcommand (compile, emit, buffers, run, speedup,
   trace, sweep, fuzz, report) accepts --metrics to dump the metrics
   registry snapshot after the command; compile/speedup/trace/sweep/fuzz/
   report accept --jobs N to compile on an N-domain work pool
   (byte-identical results to the serial pipeline). *)

open Cmdliner
open Streamit

let arch = Gpusim.Arch.geforce_8800_gts_512

let load_stream spec =
  match Benchmarks.Registry.find spec with
  | Some e ->
    (* builtin construction plays the role of parsing; give it the same
       span name so traces show a uniform front end *)
    let stream =
      Obs.Trace.with_span "parse"
        ~attrs:[ ("builtin", Obs.Trace.Str e.Benchmarks.Registry.name) ]
        e.Benchmarks.Registry.stream
    in
    Ok (stream, Some e)
  | None ->
    if Sys.file_exists spec && Sys.is_directory spec then
      Error (Printf.sprintf "'%s' is a directory, not a .str file" spec)
    else if Sys.file_exists spec then begin
      try
        let ic = open_in_bin spec in
        let src = really_input_string ic (in_channel_length ic) in
        close_in ic;
        try Ok (Frontend.Parser.parse_program src, None) with
        | Frontend.Parser.Parse_error (m, l, c) ->
          Error (Printf.sprintf "%s:%d:%d: %s" spec l c m)
        | Frontend.Lexer.Lex_error (m, l, c) ->
          Error (Printf.sprintf "%s:%d:%d: %s" spec l c m)
      with Sys_error m ->
        (* unreadable path: a directory, bad permissions, ... *)
        Error m
    end
    else
      Error
        (Printf.sprintf
           "'%s' is neither a built-in benchmark (try 'list') nor a file" spec)

let with_graph spec f =
  match load_stream spec with
  | Error m ->
    Printf.eprintf "error: %s\n" m;
    1
  | Ok (stream, entry) -> (
    match Ast.validate stream with
    | Error m ->
      Printf.eprintf "invalid stream: %s\n" m;
      1
    | Ok () -> f (Flatten.flatten stream) entry)

let spec_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM" ~doc:"Built-in benchmark name or .str file.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the metrics registry snapshot after the command.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Compile with an $(docv)-domain work pool (profiling sweep, \
           configuration selection, speculative II probing).  Results are \
           guaranteed byte-identical to the serial (N=1) pipeline.")

let with_jobs jobs f =
  if jobs < 1 then begin
    Printf.eprintf "error: --jobs must be at least 1 (got %d)\n" jobs;
    1
  end
  else begin
    Par.Pool.set_jobs jobs;
    f ()
  end

let with_coarsening n f =
  if n < 1 then begin
    Printf.eprintf "error: --coarsening must be at least 1 (got %d)\n" n;
    1
  end
  else f ()

let check_lns_rounds r f =
  if r < 0 then begin
    Printf.eprintf "error: --lns-rounds must be >= 0 (got %d)\n" r;
    1
  end
  else f ()

(* Deadline/budget flags shared by compile, speedup and sweep. *)
let deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock deadline for the whole compilation pipeline.  When it \
           runs out, behavior follows $(b,--on-budget).  Nondeterministic; \
           not covered by the byte-identical --jobs guarantee.")

let budget_arg =
  Arg.(
    value & opt (some int) None
    & info [ "budget" ] ~docv:"WORK"
        ~doc:
          "Deterministic work-unit budget for the II search (simplex pivots \
           + branch-and-bound nodes + one per attempt).  0 skips the search \
           entirely.  Results stay byte-identical across --jobs widths.")

let on_budget_arg =
  Arg.(
    value
    & opt (enum [ ("degrade", `Degrade); ("fail", `Fail) ]) `Degrade
    & info [ "on-budget" ] ~docv:"POLICY"
        ~doc:
          "What to do when the deadline or budget runs out: $(b,degrade) \
           (default) falls back to a guaranteed-valid serial schedule at a \
           relaxed II; $(b,fail) exits with a structured diagnostic.")

let no_portfolio_arg =
  Arg.(
    value & flag
    & info [ "no-portfolio" ]
        ~doc:
          "Disable the per-candidate-II scheduler portfolio (first-fit, \
           best-fit and balanced packings raced, plus the cut-armed exact \
           ILP near the bound), restoring the historical \
           first-fit-then-maybe-exact ladder.  Determinism is unaffected \
           either way.")

let lns_rounds_arg =
  Arg.(
    value & opt int 12
    & info [ "lns-rounds" ] ~docv:"N"
        ~doc:
          "Large-neighborhood refinement probes run below the first feasible \
           II after the search succeeds (0 disables refinement).  Probes are \
           deterministic and charged to the same work-unit ledger as the \
           search.")

let check_limits ~deadline ~budget f =
  if (match budget with Some b -> b < 0 | None -> false) then begin
    Printf.eprintf "error: --budget must be >= 0 work units\n";
    1
  end
  else if (match deadline with Some d -> d <= 0.0 | None -> false) then begin
    Printf.eprintf "error: --deadline must be positive seconds\n";
    1
  end
  else f ()

let dump_metrics metrics code =
  if metrics then Format.printf "%a@?" Obs.Metrics.pp_text ();
  code

(* --- list --- *)

let list_cmd =
  let doc = "List the built-in benchmark programs (Table I)." in
  let run () =
    List.iter
      (fun (e : Benchmarks.Registry.entry) ->
        Printf.printf "%-12s %s\n" e.name e.description)
      Benchmarks.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- info --- *)

let info_cmd =
  let doc = "Show graph structure, steady-state rates and buffer bounds." in
  let run spec =
    with_graph spec (fun g entry ->
        Format.printf "%a@." Graph.pp g;
        (match Sdf.steady_state g with
        | Error m -> Format.printf "steady state: %s@." m
        | Ok r ->
          Format.printf "repetition vector:";
          Array.iteri
            (fun v k -> Format.printf " %s=%d" (Graph.name g v) k)
            r.Sdf.reps;
          Format.printf "@.input/steady state: %d tokens, output: %d tokens@."
            (Sdf.input_tokens g r) (Sdf.output_tokens g r);
          let sas = Schedule.sas g r in
          let ml = Schedule.min_latency g r in
          Format.printf "buffering: SAS %d bytes, min-latency %d bytes@."
            (Schedule.buffer_bytes g sas)
            (Schedule.buffer_bytes g ml));
        (match entry with
        | Some e ->
          Format.printf "Table I: %d filters (paper: %d), %d peeking (paper: %d)@."
            (Benchmarks.Registry.our_filters e)
            e.Benchmarks.Registry.paper_filters
            (Benchmarks.Registry.our_peeking e)
            e.Benchmarks.Registry.paper_peeking
        | None -> ());
        0)
  in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ spec_arg)

(* --- profile --- *)

let profile_cmd =
  let doc =
    "Run the profiling phase (Fig. 6) and configuration selection (Fig. 7)."
  in
  let run spec =
    with_graph spec (fun g _ ->
        match Sdf.steady_state g with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          1
        | Ok rates ->
          let data = Swp_core.Profile.run arch g ~mode:Swp_core.Profile.Coalesced in
          Printf.printf
            "profile grid: regs in {16,20,32,64} x threads in {128,256,384,512}\n";
          Printf.printf "%-24s" "node";
          List.iter
            (fun th -> Printf.printf "  t=%-10d" th)
            data.Swp_core.Profile.thread_options;
          print_newline ();
          for v = 0 to Graph.num_nodes g - 1 do
            Printf.printf "%-24s" (Graph.name g v);
            List.iter
              (fun th ->
                let t =
                  Swp_core.Profile.time_of data ~node:v ~regs:16 ~threads:th
                in
                if t = infinity then Printf.printf "  %-12s" "inf"
                else Printf.printf "  %-12.0f" t)
              data.Swp_core.Profile.thread_options;
            print_newline ()
          done;
          (match Swp_core.Select.select g rates data with
          | Ok cfg -> Format.printf "%a@." (Swp_core.Select.pp_config g) cfg
          | Error m -> Printf.printf "selection failed: %s\n" m);
          0)
  in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const run $ spec_arg)

(* --- compile --- *)

let coarsen_arg =
  Arg.(value & opt int 8 & info [ "coarsening"; "n" ] ~doc:"SWPn coarsening factor.")

let target_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("cuda", Kir.Ir.Cuda);
             ("wgsl", Kir.Ir.Wgsl);
             ("opencl", Kir.Ir.Opencl);
             ("metal", Kir.Ir.Metal);
           ])
        Kir.Ir.Cuda
    & info [ "target" ] ~docv:"BACKEND"
        ~doc:
          "Codegen backend: $(b,cuda) (default), $(b,wgsl), $(b,opencl) or \
           $(b,metal).  The schedule is backend-independent; only the \
           printed kernel changes.")

(* The CUDA path stays on [Kernel_gen.program] for its codegen
   metrics/trace span; bytes are pinned equal to the KIR printer by the
   golden fixtures. *)
let emit_target t c =
  match t with
  | Kir.Ir.Cuda -> Cudagen.Kernel_gen.program c
  | t -> Kir.Backend.emit_compiled t c

let compile_cmd =
  let doc = "Compile through the full pipeline of Fig. 5; print the schedule." in
  let run spec n target jobs deadline budget on_budget no_portfolio
      lns_rounds metrics =
    with_jobs jobs @@ fun () ->
    with_coarsening n @@ fun () ->
    check_limits ~deadline ~budget @@ fun () ->
    check_lns_rounds lns_rounds @@ fun () ->
    dump_metrics metrics
    @@ with_graph spec (fun g _ ->
           match
             Swp_core.Compile.compile ~coarsening:n ?deadline ?budget
               ~portfolio:(not no_portfolio) ~lns_rounds ~on_budget g
           with
           | Error m ->
             Printf.eprintf "error: compile: %s\n" m;
             1
           | Ok c ->
             Format.printf "%a@." Swp_core.Compile.pp_summary c;
             Format.printf "II search:@.";
             List.iter
               (fun a -> Format.printf "  %a@." Swp_core.Ii_search.pp_attempt a)
               c.Swp_core.Compile.search_stats.Swp_core.Ii_search.attempt_log;
             Format.printf "%a@."
               (Swp_core.Swp_schedule.pp g)
               c.Swp_core.Compile.schedule;
             let gt = Swp_core.Executor.time_swp c in
             Printf.printf
               "executor: II=%d cycles (bus bound %d), kernel=%d cycles, %.1f \
                cycles/steady state\n"
               gt.Swp_core.Executor.ii_cycles gt.Swp_core.Executor.bus_cycles
               gt.Swp_core.Executor.kernel_cycles
               gt.Swp_core.Executor.cycles_per_steady;
             (* codegen for the selected target, structurally linted; the
                kernel itself goes to `emit`, this is the health line *)
             (match
                Kir.Backend.emit_checked target (Kir.Lower.lower c)
              with
             | Ok src ->
               Printf.printf "codegen: %s ok, %d lines\n"
                 (Kir.Ir.target_name target)
                 (List.length (String.split_on_char '\n' src));
               0
             | Error e ->
               Printf.eprintf "error: codegen: %s\n" e;
               1))
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const run $ spec_arg $ coarsen_arg $ target_arg $ jobs_arg
      $ deadline_arg $ budget_arg $ on_budget_arg $ no_portfolio_arg
      $ lns_rounds_arg $ metrics_arg)

(* --- emit --- *)

let emit_cmd =
  let doc =
    "Emit the generated kernel program on stdout (Sec. IV-C); --target \
     selects the backend."
  in
  let run spec n target metrics =
    with_coarsening n @@ fun () ->
    dump_metrics metrics
    @@ with_graph spec (fun g _ ->
           match Swp_core.Compile.compile ~coarsening:n g with
           | Error m ->
             Printf.eprintf "error: compile: %s\n" m;
             1
           | Ok c ->
             print_string (emit_target target c);
             0)
  in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(const run $ spec_arg $ coarsen_arg $ target_arg $ metrics_arg)

(* --- run --- *)

let iters_arg =
  Arg.(value & opt int 1 & info [ "iters"; "i" ] ~doc:"Steady states to execute.")

let max_out_arg =
  Arg.(value & opt int 32 & info [ "max-output" ] ~doc:"Output tokens to print.")

let run_cmd =
  let doc = "Interpret the program on the reference interpreter." in
  let run spec iters max_out metrics =
    dump_metrics metrics
    @@ with_graph spec (fun g entry ->
           let input =
             match entry with
             | Some e -> e.Benchmarks.Registry.input
             | None -> fun i -> Types.VFloat (float_of_int (i mod 16))
           in
           let out = Interp.run_steady_states g ~input ~iters in
           Printf.printf "%d output tokens" (List.length out);
           List.iteri
             (fun i v ->
               if i < max_out then begin
                 if i mod 8 = 0 then Printf.printf "\n  ";
                 Printf.printf "%-10s" (Types.string_of_value v)
               end)
             out;
           if List.length out > max_out then Printf.printf "\n  ...";
           print_newline ();
           0)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ spec_arg $ iters_arg $ max_out_arg $ metrics_arg)

(* --- buffers --- *)

let buffers_cmd =
  let doc = "Per-channel buffer sizing of the SWPn schedule (Table II detail)." in
  let run spec n metrics =
    with_coarsening n @@ fun () ->
    dump_metrics metrics
    @@ with_graph spec (fun g _ ->
        match Swp_core.Compile.compile ~coarsening:n g with
        | Error m ->
          Printf.eprintf "error: compile: %s\n" m;
          1
        | Ok c ->
          let sz = c.Swp_core.Compile.sizing in
          Printf.printf "SWP%d buffers: %d bytes total, pipeline depth %d\n\n" n
            sz.Swp_core.Buffer_layout.total_bytes
            sz.Swp_core.Buffer_layout.stages;
          Printf.printf "%-28s %-28s %12s\n" "producer" "consumer" "bytes";
          List.iter
            (fun ((e : Graph.edge), bytes) ->
              Printf.printf "%-28s %-28s %12d\n"
                (Printf.sprintf "%s.%d" (Graph.name g e.Graph.src) e.Graph.src_port)
                (Printf.sprintf "%s.%d" (Graph.name g e.Graph.dst) e.Graph.dst_port)
                bytes)
            sz.Swp_core.Buffer_layout.per_edge;
          0)
  in
  Cmd.v (Cmd.info "buffers" ~doc)
    Term.(const run $ spec_arg $ coarsen_arg $ metrics_arg)

(* --- speedup --- *)

let speedup_cmd =
  let doc = "Report SWP / SWPNC / Serial speedups over the CPU model (Fig. 10)." in
  let run spec n jobs deadline budget on_budget no_portfolio lns_rounds
      metrics =
    with_jobs jobs @@ fun () ->
    with_coarsening n @@ fun () ->
    check_limits ~deadline ~budget @@ fun () ->
    check_lns_rounds lns_rounds @@ fun () ->
    let portfolio = not no_portfolio in
    dump_metrics metrics
    @@ with_graph spec (fun g _ ->
        match
          Swp_core.Compile.compile ~coarsening:n ?deadline ?budget ~portfolio
            ~lns_rounds ~on_budget g
        with
        | Error m ->
          Printf.eprintf "error: compile: %s\n" m;
          1
        | Ok c ->
          if c.Swp_core.Compile.quality = Swp_core.Compile.Degraded then
            Printf.printf "note: degraded schedule (budget/deadline hit)\n";
          let sp cycles =
            match
              Swp_core.Executor.speedup ~arch ~graph:g
                ~gpu_cycles_per_steady:cycles ()
            with
            | Ok s -> s
            | Error m -> failwith m
          in
          let gt = Swp_core.Executor.time_swp c in
          Printf.printf "SWP%-3d : %6.2fx\n" n
            (sp gt.Swp_core.Executor.cycles_per_steady);
          (match
             Swp_core.Compile.compile
               ~scheme:Swp_core.Compile.Swp_non_coalesced ~coarsening:n
               ?deadline ?budget ~portfolio ~lns_rounds ~on_budget g
           with
          | Ok cn ->
            let gtn = Swp_core.Executor.time_swp cn in
            Printf.printf "SWPNC  : %6.2fx\n"
              (sp gtn.Swp_core.Executor.cycles_per_steady)
          | Error m -> Printf.printf "SWPNC  : failed (%s)\n" m);
          (match
             Swp_core.Executor.time_serial
               ~batch:(64 * c.Swp_core.Compile.config.Swp_core.Select.scale)
               g
               ~budget_bytes:
                 c.Swp_core.Compile.sizing.Swp_core.Buffer_layout.total_bytes
           with
          | Ok st ->
            Printf.printf "Serial : %6.2fx (batch %d steady states)\n"
              (sp st.Swp_core.Executor.cycles_per_steady)
              st.Swp_core.Executor.batch
          | Error m -> Printf.printf "Serial : failed (%s)\n" m);
          0)
  in
  Cmd.v (Cmd.info "speedup" ~doc)
    Term.(
      const run $ spec_arg $ coarsen_arg $ jobs_arg $ deadline_arg
      $ budget_arg $ on_budget_arg $ no_portfolio_arg $ lns_rounds_arg
      $ metrics_arg)

(* --- trace --- *)

let out_arg =
  Arg.(
    value & opt string "trace.json"
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Chrome trace-event JSON output file.")

let trace_cmd =
  let doc =
    "Run the full pipeline (parse, flatten, profile, select, II search, \
     buffer layout, codegen, execute) with span tracing enabled; write \
     Chrome trace-event JSON (load at ui.perfetto.dev) and print the span \
     tree."
  in
  let run spec n jobs deadline budget on_budget out metrics =
    with_jobs jobs @@ fun () ->
    with_coarsening n @@ fun () ->
    check_limits ~deadline ~budget @@ fun () ->
    Obs.Trace.reset ();
    Obs.Metrics.reset ();
    Obs.Trace.enable ();
    let code =
      with_graph spec (fun g _ ->
          match
            Swp_core.Compile.compile ~coarsening:n ?deadline ?budget
              ~on_budget g
          with
          | Error m ->
            Printf.eprintf "error: compile: %s\n" m;
            1
          | Ok c ->
            ignore (Cudagen.Kernel_gen.program c);
            let gt = Swp_core.Executor.time_swp c in
            Printf.printf "II=%d cycles, %.1f cycles/steady state\n"
              gt.Swp_core.Executor.ii_cycles
              gt.Swp_core.Executor.cycles_per_steady;
            0)
    in
    Obs.Trace.disable ();
    (* The trace is written whatever the compile's outcome: a failed or
       degraded compile is exactly the one worth inspecting, and every
       span is closed on the exception path (Fun.protect), so the JSON
       is always well-formed. *)
    match
      let oc = open_out out in
      output_string oc (Obs.Trace.to_chrome_json ());
      close_out oc
    with
    | () ->
      Format.printf "%a@?" Obs.Trace.pp_tree ();
      Printf.printf "wrote %s\n" out;
      dump_metrics metrics code
    | exception Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      1
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ spec_arg $ coarsen_arg $ jobs_arg $ deadline_arg
      $ budget_arg $ on_budget_arg $ out_arg $ metrics_arg)

(* --- fuzz --- *)

let fuzz_cmd =
  let doc =
    "Differential fuzzing: generate random stream programs and cross-check \
     the reference interpreter, the device functional simulator and an \
     independent schedule replay token-for-token, plus the schedule, \
     buffer-layout and timing invariants.  Failing programs are shrunk and \
     pretty-printed; exits 1 if any seed fails."
  in
  let seeds_arg =
    Arg.(
      value & opt int 50
      & info [ "seeds"; "n" ] ~docv:"N" ~doc:"Number of random programs.")
  in
  let base_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "base-seed" ] ~docv:"SEED"
          ~doc:"First seed; seeds SEED .. SEED+N-1 are run.")
  in
  let iters_arg =
    Arg.(
      value & opt int 2
      & info [ "iters" ] ~docv:"ITERS"
          ~doc:"Macro steady-state iterations each oracle executes.")
  in
  let run seeds base_seed iters jobs faults deadline metrics =
    if seeds <= 0 then begin
      Printf.eprintf "error: --seeds must be positive (got %d)\n" seeds;
      1
    end
    else if jobs < 1 then begin
      Printf.eprintf "error: --jobs must be at least 1 (got %d)\n" jobs;
      1
    end
    else if (match deadline with Some d -> d <= 0.0 | None -> false) then begin
      Printf.eprintf "error: --deadline must be positive seconds\n";
      1
    end
    else if faults then begin
      if jobs > 1 then begin
        Printf.eprintf
          "error: fuzz --faults is serial (fault arming is process-global); \
           drop --jobs\n";
        1
      end
      else begin
        let stats, failures = Check.Fault_fuzz.run ~base_seed ~seeds () in
        List.iter
          (fun f -> Format.printf "FAIL %a@." Check.Fault_fuzz.pp_failure f)
          failures;
        Format.printf "%a@." Check.Fault_fuzz.pp_stats stats;
        dump_metrics metrics (if failures = [] then 0 else 1)
      end
    end
    else begin
      let stats, failures =
        Check.Fuzz.run ~iters ~base_seed ~seeds ~jobs ?deadline ()
      in
      List.iter
        (fun f -> Format.printf "FAIL %a@.@." Check.Fuzz.pp_failure f)
        failures;
      Format.printf "%a@." Check.Fuzz.pp_stats stats;
      dump_metrics metrics (if failures = [] then 0 else 1)
    end
  in
  let fuzz_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard the seed range across an $(docv)-domain pool.  Outcomes \
             are identical to the serial run: the same seeds, the same \
             failures, in the same order.")
  in
  let faults_arg =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Fault-injection mode: arm one deterministic fault per seed \
             (site and hit index derived from the seed) and assert every \
             compile ends in a validated — possibly degraded — schedule or \
             a structured diagnostic, never a crash.  Serial only.")
  in
  let fuzz_deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Stop starting new seeds after this many wall-clock seconds; \
             unstarted seeds are reported as cancelled, not dropped.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seeds_arg $ base_seed_arg $ iters_arg $ fuzz_jobs_arg
      $ faults_arg $ fuzz_deadline_arg $ metrics_arg)

(* --- report --- *)

let report_cmd =
  let doc =
    "Compile and print the flight-recorder report: which lower bound was \
     binding (RecMII / ResMII / sharp / LP), the full II-search attempt \
     timeline with the winning portfolio arm, per-stage work-unit spend, \
     the configuration-sweep scoreboard, the degradation-rung rationale \
     and the determinism signature."
  in
  let spec_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"Built-in benchmark name or .str file.")
  in
  let bench_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ] ~docv:"NAME"
          ~doc:
            "Built-in benchmark to report on (alternative to the positional \
             $(i,PROGRAM)).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the report as compact JSON instead of the human-readable \
             explanation.")
  in
  let report_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Also write the report as compact JSON to $(docv).")
  in
  let timings_arg =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:
            "Include wall-clock timings in the JSON report.  Timings are \
             nondeterministic and excluded by default so reports are \
             byte-identical across runs and --jobs widths.")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Record the structured decision-event log during the compile \
             and write it to $(docv) as JSON lines (without timestamps, so \
             the log is deterministic).")
  in
  let openmetrics_arg =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:
            "Print the metrics registry in OpenMetrics/Prometheus text \
             exposition format after the report.")
  in
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let run spec bench n jobs deadline budget on_budget no_portfolio lns_rounds
      json out timings events openmetrics metrics =
    match (spec, bench) with
    | None, None ->
      Printf.eprintf "error: give a PROGRAM argument or --bench NAME\n";
      1
    | Some _, Some _ ->
      Printf.eprintf "error: give either PROGRAM or --bench, not both\n";
      1
    | Some s, None | None, Some s -> (
      with_jobs jobs @@ fun () ->
      with_coarsening n @@ fun () ->
      check_limits ~deadline ~budget @@ fun () ->
      check_lns_rounds lns_rounds @@ fun () ->
      if events <> None then begin
        Obs.Log.reset ();
        Obs.Log.enable ()
      end;
      let code =
        try
          with_graph s (fun g _ ->
            match
              Swp_core.Compile.compile ~coarsening:n ?deadline ?budget
                ~portfolio:(not no_portfolio) ~lns_rounds ~on_budget g
            with
            | Error m ->
              Printf.eprintf "error: compile: %s\n" m;
              1
            | Ok c ->
              let r = Swp_core.Report.assemble ~program:s c in
              if json then
                print_string (Swp_core.Report.to_json ~timings r ^ "\n")
              else Format.printf "%a@." Swp_core.Report.pp_human r;
              (match out with
              | Some f ->
                write_file f (Swp_core.Report.to_json ~timings r ^ "\n")
              | None -> ());
              (match events with
              | Some f ->
                write_file f (Obs.Log.to_json_lines ~timestamps:false ())
              | None -> ());
              if openmetrics then print_string (Obs.Export.to_openmetrics ());
              0)
        with Sys_error m ->
          Printf.eprintf "error: %s\n" m;
          1
      in
      Obs.Log.disable ();
      dump_metrics metrics code)
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ spec_opt_arg $ bench_arg $ coarsen_arg $ jobs_arg
      $ deadline_arg $ budget_arg $ on_budget_arg $ no_portfolio_arg
      $ lns_rounds_arg $ json_arg $ report_out_arg $ timings_arg $ events_arg
      $ openmetrics_arg $ metrics_arg)

(* --- sweep --- *)

let sweep_cmd =
  let doc =
    "Compile at several SM counts (pipeline-scalability ablation): one full \
     compile per count, fanned out over the --jobs pool, reporting II, \
     buffer bytes and speedup per count."
  in
  let sms_arg =
    Arg.(
      value & opt (list int) [ 2; 4; 6; 8 ]
      & info [ "sms" ] ~docv:"N,..." ~doc:"Comma-separated SM counts.")
  in
  let run spec n sms jobs deadline budget on_budget no_portfolio lns_rounds
      metrics =
    with_jobs jobs @@ fun () ->
    with_coarsening n @@ fun () ->
    check_limits ~deadline ~budget @@ fun () ->
    check_lns_rounds lns_rounds @@ fun () ->
    if List.exists (fun s -> s < 1) sms then begin
      Printf.eprintf "error: --sms entries must be at least 1\n";
      1
    end
    else
      dump_metrics metrics
      @@ with_graph spec (fun g _ ->
             let results =
               Par.Pool.map_auto
                 (fun num_sms ->
                   ( num_sms,
                     Swp_core.Compile.compile ~num_sms ~coarsening:n ?deadline
                       ?budget ~portfolio:(not no_portfolio) ~lns_rounds
                       ~on_budget g ))
                 sms
             in
             Printf.printf "%-8s %10s %8s %14s %10s\n" "SMs" "II" "stages"
               "buffer bytes" "speedup";
             let code = ref 0 in
             List.iter
               (fun (num_sms, r) ->
                 match r with
                 | Error m ->
                   Printf.printf "%-8d error: compile: %s\n" num_sms m;
                   code := 1
                 | Ok c ->
                   let gt = Swp_core.Executor.time_swp c in
                   let sp =
                     match
                       Swp_core.Executor.speedup ~arch ~graph:g
                         ~gpu_cycles_per_steady:
                           gt.Swp_core.Executor.cycles_per_steady ()
                     with
                     | Ok s -> Printf.sprintf "%.2fx" s
                     | Error _ -> "-"
                   in
                   Printf.printf "%-8d %10d %8d %14d %10s\n" num_sms
                     c.Swp_core.Compile.schedule.Swp_core.Swp_schedule.ii
                     c.Swp_core.Compile.sizing.Swp_core.Buffer_layout.stages
                     c.Swp_core.Compile.sizing.Swp_core.Buffer_layout.total_bytes
                     sp)
               results;
             !code)
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ spec_arg $ coarsen_arg $ sms_arg $ jobs_arg $ deadline_arg
      $ budget_arg $ on_budget_arg $ no_portfolio_arg $ lns_rounds_arg
      $ metrics_arg)

(* --- serve --- *)

(* Long-lived compile daemon: newline-delimited JSON requests on stdin
   (or a Unix socket with --socket), one response line each, backed by
   the content-addressed schedule cache in lib/cache.  The request
   loop itself lives in Cache.Daemon (so the chaos campaign drives the
   production code); the binary supplies flags and the builtin-program
   lookup. *)

let serve_lookup_program p =
  match load_stream p with
  | Error m -> Error m
  | Ok (stream, _) -> (
    match Ast.validate stream with
    | Error m -> Error ("invalid stream: " ^ m)
    | Ok () -> Ok (Flatten.flatten stream))

let serve_cmd =
  let doc =
    "Run the compile daemon: newline-delimited JSON requests on stdin (or a \
     Unix socket), served from a content-addressed schedule cache with \
     admission control, load shedding and crash-safe cache recovery."
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket instead of stdin/stdout.  The \
             file is created (replacing any stale one) and removed on exit.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist cache entries to $(docv) (created if absent) and serve \
             from it across restarts.  Entries are content-addressed and \
             checksummed; a startup scrub quarantines (never deletes) torn \
             or corrupt files into $(docv)/quarantine, and disk errors \
             degrade the daemon to memory-only instead of killing it.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"In-memory cache entries kept before LRU eviction.")
  in
  let no_warm_arg =
    Arg.(
      value & flag
      & info [ "no-warm" ]
          ~doc:
            "Disable incremental recompilation (per-node profile memo reuse \
             and II-search warm starts on skeleton-equal graphs).")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 4
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Compile requests allowed to execute concurrently.")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Compile requests allowed to wait beyond --max-inflight before \
             the daemon sheds with a deterministic \"overloaded\" error and \
             a retry-after hint.")
  in
  let ledger_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ledger-cap" ] ~docv:"WORK"
          ~doc:
            "Cap the summed declared work units (request budgets) of \
             outstanding compiles; requests beyond it are shed.  Unlimited \
             when absent.")
  in
  let breaker_threshold_arg =
    Arg.(
      value & opt int 3
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive compile crashes after which a cache key is \
             poisoned: further requests for it are refused outright until a \
             compile of that key succeeds.")
  in
  let max_line_bytes_arg =
    Arg.(
      value
      & opt int Cache.Daemon.default_max_line_bytes
      & info [ "max-line-bytes" ] ~docv:"BYTES"
          ~doc:
            "Longest request line the daemon will buffer; an over-limit \
             line is answered with a single error response instead of \
             growing an unbounded buffer.")
  in
  let health_arg =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Print one health JSON object (compiler version, cache and \
             scrub state, admission-ledger occupancy, breaker state) and \
             exit instead of serving.")
  in
  let run socket cache_dir capacity no_warm max_inflight queue_cap ledger_cap
      breaker_threshold max_line_bytes health jobs metrics =
    with_jobs jobs @@ fun () ->
    if capacity < 1 then begin
      Printf.eprintf "error: --cache-capacity must be at least 1\n";
      1
    end
    else if max_inflight < 1 then begin
      Printf.eprintf "error: --max-inflight must be at least 1\n";
      1
    end
    else if queue_cap < 0 then begin
      Printf.eprintf "error: --queue-cap must be >= 0\n";
      1
    end
    else if (match ledger_cap with Some c -> c < 1 | None -> false) then begin
      Printf.eprintf "error: --ledger-cap must be at least 1\n";
      1
    end
    else if breaker_threshold < 1 then begin
      Printf.eprintf "error: --breaker-threshold must be at least 1\n";
      1
    end
    else if max_line_bytes < 1024 then begin
      Printf.eprintf "error: --max-line-bytes must be at least 1024\n";
      1
    end
    else
      let service =
        Cache.Service.create ?dir:cache_dir ~capacity ~warm:(not no_warm)
          ~breaker_threshold ()
      in
      let guard =
        Cache.Guard.create ~max_inflight ~queue_cap ?work_cap:ledger_cap ()
      in
      let daemon =
        Cache.Daemon.create ~guard ~max_line_bytes
          ~lookup_program:serve_lookup_program service
      in
      if health then begin
        print_endline
          (Obs.Report.to_string
             (Obs.Report.Obj
                (("status", Obs.Report.Str "ok")
                :: Cache.Daemon.health_json daemon)));
        dump_metrics metrics 0
      end
      else
        dump_metrics metrics
        @@
        match socket with
        | None ->
          ignore (Cache.Daemon.serve_channel daemon stdin stdout);
          0
        | Some path -> Cache.Daemon.serve_socket daemon path
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ cache_dir_arg $ capacity_arg $ no_warm_arg
      $ max_inflight_arg $ queue_cap_arg $ ledger_cap_arg
      $ breaker_threshold_arg $ max_line_bytes_arg $ health_arg $ jobs_arg
      $ metrics_arg)

(* --- chaos --- *)

let chaos_cmd =
  let doc =
    "Run the serve-daemon chaos campaign: per-seed fault injection \
     (store/protocol/admission/compile sites), disk corruption with scrub \
     recovery, overload bursts and a byte-identity audit of every surviving \
     cached artifact, all against the production daemon loop."
  in
  let seeds_arg =
    Arg.(
      value & opt int 50
      & info [ "seeds" ] ~docv:"N" ~doc:"Chaos seeds to run (>= 1).")
  in
  let base_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "base-seed" ] ~docv:"SEED" ~doc:"First seed of the range.")
  in
  let keep_arg =
    Arg.(
      value & flag
      & info [ "keep" ]
          ~doc:
            "Keep each seed's scratch directory (cache, quarantine, event \
             log) instead of deleting it on success.")
  in
  let run seeds base_seed keep metrics =
    if seeds < 1 then begin
      Printf.eprintf "error: --seeds must be at least 1\n";
      1
    end
    else begin
      let stats, failures = Check.Serve_chaos.run ~base_seed ~seeds ~keep () in
      List.iter
        (fun f -> Format.printf "FAIL %a@." Check.Serve_chaos.pp_failure f)
        failures;
      Format.printf "%a@." Check.Serve_chaos.pp_stats stats;
      dump_metrics metrics (if failures = [] then 0 else 1)
    end
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ seeds_arg $ base_seed_arg $ keep_arg $ metrics_arg)

let () =
  let doc = "StreamIt-to-GPU software-pipelining compiler (CGO 2009 reproduction)" in
  let info = Cmd.info "streamit_gpu" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            list_cmd; info_cmd; profile_cmd; compile_cmd; emit_cmd; run_cmd;
            buffers_cmd; speedup_cmd; trace_cmd; fuzz_cmd; sweep_cmd;
            report_cmd; serve_cmd; chaos_cmd;
          ]))
