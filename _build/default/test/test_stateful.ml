(* Stateful-filter extension (the paper's stated future work, Sec. VII):
   persistent state arrays, instance serialization via loop-carried
   dependences (which makes RecMII non-zero), and end-to-end agreement
   between the interpreter and the device functional simulator. *)

open Streamit
open Types

let t name f = Alcotest.test_case name `Quick f

(* Running-sum accumulator: out[i] = sum of inputs up to i. *)
let accumulator () =
  Kernel.Build.(
    Kernel.make_filter ~name:"Accum" ~pop:1 ~push:1
      ~state:[ ("acc", [| VFloat 0.0 |]) ]
      [
        seti "acc" (i 0) (geti "acc" (i 0) +: pop);
        push (geti "acc" (i 0));
      ])

(* First-order IIR: y = a*y_prev + x. *)
let iir a_coef =
  Kernel.Build.(
    Kernel.make_filter ~name:"IIR" ~pop:1 ~push:1
      ~state:[ ("y", [| VFloat 0.0 |]) ]
      [
        seti "y" (i 0) ((geti "y" (i 0) *: f a_coef) +: pop);
        push (geti "y" (i 0));
      ])

let stateful_pipeline () =
  Ast.pipeline "stateful"
    [ Ast.Filter (accumulator ()); Ast.Filter (iir 0.5) ]

let interp_tests =
  [
    t "is_stateful and validation" (fun () ->
        Alcotest.(check bool) "stateful" true (Kernel.is_stateful (accumulator ()));
        Alcotest.(check bool) "stateless" false (Kernel.is_stateful (Kernel.identity ()));
        Alcotest.(check (result unit string)) "checks" (Ok ())
          (Kernel.check_filter (accumulator ())));
    t "accumulator accumulates across firings" (fun () ->
        let g = Flatten.flatten (Ast.Filter (accumulator ())) in
        let out =
          Interp.run_steady_states g ~input:(fun _ -> VFloat 1.0) ~iters:5
        in
        Alcotest.(check bool) "running sums" true
          (List.for_all2 equal_value out
             [ VFloat 1.0; VFloat 2.0; VFloat 3.0; VFloat 4.0; VFloat 5.0 ]));
    t "reset restores initial state" (fun () ->
        let g = Flatten.flatten (Ast.Filter (accumulator ())) in
        let it = Interp.create g in
        Interp.fire it ~input:(fun _ -> VFloat 7.0) 0;
        Interp.reset it;
        Interp.fire it ~input:(fun _ -> VFloat 7.0) 0;
        match Interp.output it with
        | [ VFloat 7.0 ] -> ()
        | o ->
          Alcotest.failf "expected [7], got %s"
            (String.concat " " (List.map string_of_value o)));
    t "IIR matches direct recurrence" (fun () ->
        let g = Flatten.flatten (Ast.Filter (iir 0.5)) in
        let xs = [| 1.0; 2.0; -1.0; 0.5; 3.0 |] in
        let out =
          Interp.run_steady_states g ~input:(fun i -> VFloat xs.(i mod 5)) ~iters:5
          |> List.map to_float
        in
        let y = ref 0.0 in
        List.iteri
          (fun i o ->
            y := (0.5 *. !y) +. xs.(i);
            Alcotest.(check (float 1e-9)) (Printf.sprintf "y%d" i) !y o)
          out);
  ]

let scheduling_tests =
  [
    t "stateful nodes carry serialization deps" (fun () ->
        let g = Flatten.flatten (stateful_pipeline ()) in
        match Swp_core.Compile.compile g with
        | Error m -> Alcotest.fail m
        | Ok c ->
          let deps = Swp_core.Instances.deps g c.Swp_core.Compile.config in
          (* each stateful node contributes a loop-carried self chain *)
          let carried =
            List.filter
              (fun (d : Swp_core.Instances.dep) ->
                d.src.Swp_core.Instances.node = d.dst.Swp_core.Instances.node
                && d.jlag = -1)
              deps
          in
          Alcotest.(check int) "two loop-carried chains" 2 (List.length carried));
    t "RecMII is non-zero with state" (fun () ->
        let g = Flatten.flatten (stateful_pipeline ()) in
        let c = Result.get_ok (Swp_core.Compile.compile g) in
        Alcotest.(check bool) "recmii > 0" true
          (Swp_core.Mii.rec_mii g c.Swp_core.Compile.config > 0));
    t "schedule validates with state serialization" (fun () ->
        let g = Flatten.flatten (stateful_pipeline ()) in
        let c = Result.get_ok (Swp_core.Compile.compile g) in
        Alcotest.(check (result unit string)) "valid" (Ok ())
          (Swp_core.Swp_schedule.validate g c.Swp_core.Compile.schedule));
    t "stateful passes are serialized in the timing model" (fun () ->
        let arch = Gpusim.Arch.geforce_8800_gts_512 in
        let node f = { Graph.id = 0; name = "n"; kind = Graph.NFilter f } in
        let stateless =
          Kernel.Build.(
            Kernel.make_filter ~name:"sl" ~pop:1 ~push:1 [ push (pop *: f 2.0) ])
        in
        let c1 =
          (Option.get
             (Gpusim.Timing.pass_of_node arch (node stateless) ~threads:256
                ~regs_cap:16 ~layout:Gpusim.Timing.Shuffled)).Gpusim.Timing.compute_cycles
        in
        let c2 =
          (Option.get
             (Gpusim.Timing.pass_of_node arch (node (accumulator ()))
                ~threads:256 ~regs_cap:16 ~layout:Gpusim.Timing.Shuffled)).Gpusim.Timing.compute_cycles
        in
        Alcotest.(check bool) "serialized is slower" true (c2 > 4 * c1));
    t "device simulation matches interpreter with state" (fun () ->
        let g = Flatten.flatten (stateful_pipeline ()) in
        let c = Result.get_ok (Swp_core.Compile.compile g) in
        match
          Swp_core.Funcsim.matches_interpreter c
            ~input:(fun i -> VFloat (float_of_int (i mod 7) /. 2.0))
            ~iters:1
        with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
  ]

let frontend_tests =
  [
    t "state declarations parse and run" (fun () ->
        let src =
          {|
filter Counter pop 1 push 1 {
  state n = [0.0];
  n[0] = n[0] + 1.0;
  push(pop() * n[0]);
}
|}
        in
        let g = Flatten.flatten (Frontend.Parser.parse_program src) in
        let out =
          Interp.run_steady_states g ~input:(fun _ -> VFloat 1.0) ~iters:4
          |> List.map to_float
        in
        Alcotest.(check bool) "1 2 3 4" true
          (out = [ 1.0; 2.0; 3.0; 4.0 ]));
    t "state arrays emit as device globals" (fun () ->
        let c = Cudagen.Emit.c_of_filter (accumulator ()) in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "__device__ state" true
          (contains c "__device__ float Accum_acc[1]");
        Alcotest.(check bool) "prefixed access" true (contains c "Accum_acc[0]"));
  ]

let suite = interp_tests @ scheduling_tests @ frontend_tests
