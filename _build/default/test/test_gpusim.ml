(* Tests for the GPU simulator: architecture feasibility, coalescing
   analysis, register allocation, per-pass timing and the CPU model. *)

open Gpusim
open Streamit

let t name f = Alcotest.test_case name `Quick f
let arch = Arch.geforce_8800_gts_512

let arch_tests =
  [
    t "paper's register/thread feasibility map" (fun () ->
        (* Sec. IV-A: caps 16,20,32,64 allow 512,384,256,128 threads *)
        let feasible r th = Arch.config_feasible arch ~regs_per_thread:r ~threads:th in
        Alcotest.(check bool) "16/512" true (feasible 16 512);
        Alcotest.(check bool) "20/384" true (feasible 20 384);
        Alcotest.(check bool) "20/512" false (feasible 20 512);
        Alcotest.(check bool) "32/256" true (feasible 32 256);
        Alcotest.(check bool) "32/384" false (feasible 32 384);
        Alcotest.(check bool) "64/128" true (feasible 64 128);
        Alcotest.(check bool) "64/256" false (feasible 64 256));
    t "block-size cap" (fun () ->
        Alcotest.(check bool) "513" false
          (Arch.config_feasible arch ~regs_per_thread:4 ~threads:513));
    t "warps" (fun () ->
        Alcotest.(check int) "max" 24 (Arch.max_warps arch);
        Alcotest.(check int) "round" 5 (Arch.threads_to_warps arch 130));
  ]

let coalesce_tests =
  [
    t "unit-stride access coalesces" (fun () ->
        let s =
          Coalesce.analyze_warp arch ~elem_bytes:4 ~tid_to_index:(fun tid -> tid)
        in
        Alcotest.(check bool) "coalesced" true s.Coalesce.coalesced;
        Alcotest.(check int) "trans" 2 s.Coalesce.transactions);
    t "strided access serializes" (fun () ->
        let s =
          Coalesce.analyze_warp arch ~elem_bytes:4 ~tid_to_index:(fun tid ->
              tid * 4)
        in
        Alcotest.(check bool) "uncoalesced" false s.Coalesce.coalesced;
        Alcotest.(check int) "trans" 32 s.Coalesce.transactions;
        Alcotest.(check bool) "padding" true (s.Coalesce.bytes_moved > 32 * 4));
    t "misaligned base breaks coalescing" (fun () ->
        let s =
          Coalesce.analyze_warp arch ~elem_bytes:4 ~tid_to_index:(fun tid ->
              tid + 1)
        in
        Alcotest.(check bool) "uncoalesced" false s.Coalesce.coalesced);
    t "shuffled layout coalesces any rate (Fig. 9)" (fun () ->
        List.iter
          (fun rate ->
            for n = 0 to rate - 1 do
              let s =
                Coalesce.analyze_warp arch ~elem_bytes:4
                  ~tid_to_index:(Coalesce.shuffled_index ~rate ~cluster:128 ~n)
              in
              if not s.Coalesce.coalesced then
                Alcotest.failf "rate %d pos %d uncoalesced" rate n
            done)
          [ 1; 2; 3; 4; 8; 64 ]);
    t "natural layout uncoalesced beyond rate 1 (Fig. 8)" (fun () ->
        let tc rate =
          Coalesce.transactions_per_firing arch ~rate ~threads:128
            ~shuffled:false
        in
        Alcotest.(check int) "rate1" 8 (tc 1);
        Alcotest.(check bool) "rate4" true (tc 4 > 8 * 4));
    t "shuffled transactions scale linearly" (fun () ->
        let tc rate =
          Coalesce.transactions_per_firing arch ~rate ~threads:128 ~shuffled:true
        in
        Alcotest.(check int) "rate1" 8 (tc 1);
        Alcotest.(check int) "rate4" 32 (tc 4));
    t "bank conflicts" (fun () ->
        Alcotest.(check int) "stride1" 1
          (Coalesce.shared_bank_conflict_degree arch ~tid_to_index:(fun t -> t));
        Alcotest.(check int) "stride4" 4
          (Coalesce.shared_bank_conflict_degree arch ~tid_to_index:(fun t ->
               t * 4));
        Alcotest.(check int) "stride16" 16
          (Coalesce.shared_bank_conflict_degree arch ~tid_to_index:(fun t ->
               t * 16)));
    t "cross traffic matched rates equals coalesced" (fun () ->
        let tr, _ = Coalesce.cross_traffic arch ~prod_rate:4 ~cons_rate:4 ~threads:128 in
        (* 4 warps, each touching 4*32*4B = 512B = 16 segments of 32B *)
        Alcotest.(check int) "segments" (4 * 16) tr);
    t "cross traffic small stride is cache-friendly" (fun () ->
        let mismatched, _ =
          Coalesce.cross_traffic arch ~prod_rate:1 ~cons_rate:2 ~threads:128
        in
        let matched, _ =
          Coalesce.cross_traffic arch ~prod_rate:2 ~cons_rate:2 ~threads:128
        in
        Alcotest.(check int) "no extra" matched mismatched);
    t "cross traffic wide scatter pays per element" (fun () ->
        (* consumer rate 1 over producer rate 64: 128-strided addresses *)
        let scat, _ =
          Coalesce.cross_traffic ~cached:false arch ~prod_rate:64 ~cons_rate:1
            ~threads:128
        in
        let coal, _ =
          Coalesce.cross_traffic ~cached:false arch ~prod_rate:1 ~cons_rate:1
            ~threads:128
        in
        Alcotest.(check bool) "worse" true (scat >= 4 * coal));
  ]

let regalloc_tests =
  [
    t "no spill under generous cap" (fun () ->
        let f = Kernel.identity () in
        let a = Regalloc.allocate f ~cap:64 in
        Alcotest.(check int) "spill" 0 a.Regalloc.spilled);
    t "spill under tight cap" (fun () ->
        let f = List.hd (Ast.filters (Benchmarks.Des.stream ())) in
        let d = Kernel.estimate_registers f in
        if d > 5 then begin
          let a = Regalloc.allocate f ~cap:5 in
          Alcotest.(check int) "spilled" (d - 5) a.Regalloc.spilled;
          Alcotest.(check int) "accesses" (2 * (d - 5)) a.Regalloc.spill_accesses
        end);
    t "occupancy threads" (fun () ->
        Alcotest.(check int) "16 regs" 512 (Regalloc.occupancy_threads arch ~regs_per_thread:16);
        Alcotest.(check int) "64 regs" 128 (Regalloc.occupancy_threads arch ~regs_per_thread:64);
        Alcotest.(check int) "10 regs caps at SMT" 768
          (Regalloc.occupancy_threads arch ~regs_per_thread:10));
  ]

let node_of_filter f = { Graph.id = 0; name = f.Kernel.name; kind = Graph.NFilter f }

let timing_tests =
  [
    t "infeasible launch yields None" (fun () ->
        let n = node_of_filter (Kernel.identity ()) in
        Alcotest.(check bool) "none" true
          (Timing.pass_of_node arch n ~threads:512 ~regs_cap:20
             ~layout:Timing.Shuffled
          = None));
    t "more threads, more compute cycles" (fun () ->
        let f = List.hd (Ast.filters (Benchmarks.Dct.stream ())) in
        let n = node_of_filter f in
        let p t =
          match Timing.pass_of_node arch n ~threads:t ~regs_cap:16 ~layout:Timing.Shuffled with
          | Some p -> p.Timing.compute_cycles
          | None -> Alcotest.fail "feasible expected"
        in
        Alcotest.(check bool) "monotone" true (p 512 > p 128));
    t "more warps hide more latency" (fun () ->
        let f = Kernel.identity () in
        let n = node_of_filter f in
        let lat t =
          match Timing.pass_of_node arch n ~threads:t ~regs_cap:16 ~layout:Timing.Shuffled with
          | Some p -> p.Timing.latency_cycles
          | None -> Alcotest.fail "feasible expected"
        in
        Alcotest.(check bool) "hiding" true (lat 512 <= lat 32));
    t "natural layout costs more than shuffled" (fun () ->
        let f =
          Kernel.Build.(
            Kernel.make_filter ~name:"r4" ~pop:4 ~push:4
              [ for_ "j" (i 0) (i 4) [ push pop ] ])
        in
        let n = node_of_filter f in
        let bus l =
          match Timing.pass_of_node arch n ~threads:256 ~regs_cap:16 ~layout:l with
          | Some p -> p.Timing.bus_bytes
          | None -> Alcotest.fail "feasible"
        in
        Alcotest.(check bool) "worse" true
          (bus Timing.Natural > 4 * bus Timing.Shuffled));
    t "shared staging requires fit" (fun () ->
        let big =
          Kernel.Build.(
            Kernel.make_filter ~name:"big" ~pop:64 ~push:64
              [ for_ "j" (i 0) (i 64) [ push pop ] ])
        in
        let n = node_of_filter big in
        Alcotest.(check bool) "does not fit at 512" true
          (Timing.pass_of_node arch n ~threads:512 ~regs_cap:16
             ~layout:Timing.Shared_staged
          = None);
        Alcotest.(check bool) "fits at 32" true
          (Timing.pass_of_node arch n ~threads:32 ~regs_cap:16
             ~layout:Timing.Shared_staged
          <> None));
    t "spilling adds traffic" (fun () ->
        let f = List.hd (Ast.filters (Benchmarks.Des.stream ())) in
        let n = node_of_filter f in
        let d = Kernel.estimate_registers f in
        if d > 8 then begin
          let bus cap =
            match
              Timing.pass_of_node arch n ~threads:128 ~regs_cap:cap
                ~layout:Timing.Shuffled
            with
            | Some p -> p.Timing.bus_bytes
            | None -> Alcotest.fail "feasible"
          in
          Alcotest.(check bool) "spill traffic" true (bus 8 > bus 64)
        end);
    t "in_edge_rates reflects graph" (fun () ->
        let g = Flatten.flatten (Benchmarks.Dct.stream ()) in
        (* every node except entry has at least one in-edge pair *)
        Array.iter
          (fun (nd : Graph.node) ->
            let pairs = Timing.in_edge_rates g nd.Graph.id in
            List.iter
              (fun (c, p) ->
                if c <= 0 || p <= 0 then Alcotest.fail "non-positive rate")
              pairs)
          g.Graph.nodes);
  ]

let cpu_tests =
  [
    t "cost scales with work" (fun () ->
        let m = Cpu_model.xeon_2_83ghz in
        let small = Kernel.cost_of_filter (Kernel.identity ()) in
        let big =
          Kernel.cost_of_filter (List.hd (Ast.filters (Benchmarks.Des.stream ())))
        in
        Alcotest.(check bool) "ordered" true
          (Cpu_model.cycles_of_cost m big > Cpu_model.cycles_of_cost m small));
    t "steady state cycles positive for benchmarks" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            let g = Flatten.flatten (e.stream ()) in
            let r = Result.get_ok (Sdf.steady_state g) in
            let c = Cpu_model.steady_state_cycles Cpu_model.xeon_2_83ghz g r in
            if c <= 0.0 then Alcotest.failf "%s: non-positive cycles" e.name)
          Benchmarks.Registry.all);
    t "seconds conversion" (fun () ->
        let m = Cpu_model.xeon_2_83ghz in
        Alcotest.(check (float 1e-12)) "1 GHz-second"
          (1.0 /. 2.83) (Cpu_model.seconds m 1e9));
  ]

let suite = arch_tests @ coalesce_tests @ regalloc_tests @ timing_tests @ cpu_tests
