open Numeric

let t name f = Alcotest.test_case name `Quick f

let unit_tests =
  [
    t "gcd basics" (fun () ->
        Alcotest.(check int) "12 18" 6 (Intmath.gcd 12 18);
        Alcotest.(check int) "neg" 6 (Intmath.gcd (-12) 18);
        Alcotest.(check int) "zero" 5 (Intmath.gcd 0 5);
        Alcotest.(check int) "both zero" 0 (Intmath.gcd 0 0));
    t "lcm" (fun () ->
        Alcotest.(check int) "4 6" 12 (Intmath.lcm 4 6);
        Alcotest.(check int) "zero" 0 (Intmath.lcm 0 7));
    t "lcm overflow" (fun () ->
        Alcotest.check_raises "overflow" (Failure "Intmath.lcm: overflow")
          (fun () -> ignore (Intmath.lcm (max_int - 1) (max_int - 2))));
    t "gcd_list / lcm_list" (fun () ->
        Alcotest.(check int) "gcd" 4 (Intmath.gcd_list [ 8; 12; 20 ]);
        Alcotest.(check int) "lcm" 24 (Intmath.lcm_list [ 8; 12; 6 ]));
    t "cdiv / fdiv" (fun () ->
        Alcotest.(check int) "cdiv 7 2" 4 (Intmath.cdiv 7 2);
        Alcotest.(check int) "cdiv -7 2" (-3) (Intmath.cdiv (-7) 2);
        Alcotest.(check int) "fdiv 7 2" 3 (Intmath.fdiv 7 2);
        Alcotest.(check int) "fdiv -7 2" (-4) (Intmath.fdiv (-7) 2);
        Alcotest.(check int) "cdiv exact" 3 (Intmath.cdiv 6 2));
    t "emod" (fun () ->
        Alcotest.(check int) "pos" 1 (Intmath.emod 7 2);
        Alcotest.(check int) "neg" 1 (Intmath.emod (-7) 2);
        Alcotest.(check int) "zero" 0 (Intmath.emod (-8) 2));
    t "round_up" (fun () ->
        Alcotest.(check int) "130->4" 132 (Intmath.round_up 130 4);
        Alcotest.(check int) "exact" 128 (Intmath.round_up 128 4));
    t "pow2" (fun () ->
        Alcotest.(check bool) "128" true (Intmath.is_pow2 128);
        Alcotest.(check bool) "96" false (Intmath.is_pow2 96);
        Alcotest.(check int) "ceil 100" 128 (Intmath.pow2_ceil 100);
        Alcotest.(check int) "ceil 1" 1 (Intmath.pow2_ceil 1));
  ]

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let property_tests =
  [
    prop "cdiv/fdiv sandwich" 500
      QCheck.(pair (int_range (-10000) 10000) (int_range 1 100))
      (fun (a, b) ->
        let f = Numeric.Intmath.fdiv a b and c = Numeric.Intmath.cdiv a b in
        f * b <= a && a <= c * b && c - f <= 1);
    prop "emod range" 500
      QCheck.(pair (int_range (-10000) 10000) (int_range 1 100))
      (fun (a, b) ->
        let r = Numeric.Intmath.emod a b in
        0 <= r && r < b && (a - r) mod b = 0);
  ]

let suite = unit_tests @ property_tests
