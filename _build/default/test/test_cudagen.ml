(* Tests for CUDA source generation: structural properties of the
   emitted C (golden-style substring checks, balanced braces, index-map
   forms) rather than compiling with a real nvcc. *)

open Streamit

let t name f = Alcotest.test_case name `Quick f

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let balanced_braces s =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let sample_filter =
  Kernel.Build.(
    Kernel.make_filter ~name:"Scale" ~pop:2 ~push:2
      ~tables:[ ("coef", [| Types.VFloat 0.5; Types.VFloat 2.0 |]) ]
      [
        let_ "a" pop;
        let_ "b" pop;
        push ((v "a" *: tbl "coef" (i 0)) +: (v "b" *: tbl "coef" (i 1)));
        push (v "a" -: v "b");
      ])

let emit_tests =
  [
    t "identifier mangling" (fun () ->
        Alcotest.(check string) "spaces" "split_sj_1" (Cudagen.Emit.c_ident "split sj 1");
        Alcotest.(check string) "leading digit" "_1x" (Cudagen.Emit.c_ident "1x");
        Alcotest.(check string) "empty" "_anon" (Cudagen.Emit.c_ident ""));
    t "device function with coalesced indices (eq. 10/11)" (fun () ->
        let c = Cudagen.Emit.c_of_filter sample_filter in
        Alcotest.(check bool) "braces" true (balanced_braces c);
        Alcotest.(check bool) "device fn" true
          (contains c "static __device__ void work_Scale");
        Alcotest.(check bool) "constant table" true
          (contains c "__constant__ float Scale_coef[2]");
        (* coalesced read index: 128*n + (tid/128)*128*rate + tid%128 *)
        Alcotest.(check bool) "shuffled index" true
          (contains c "(128 * (_pop) + (tid / 128) * 128 * 2 + (tid % 128))"));
    t "natural indices for the non-coalesced baseline" (fun () ->
        let c =
          Cudagen.Emit.c_of_filter ~style:Cudagen.Emit.Natural_indices
            sample_filter
        in
        Alcotest.(check bool) "natural" true (contains c "(tid * 2 + (_pop))"));
    t "pops hoisted in evaluation order" (fun () ->
        let f =
          Kernel.Build.(
            Kernel.make_filter ~name:"Sum3" ~pop:3 ~push:1
              [ push (pop +: pop +: pop) ])
        in
        let c = Cudagen.Emit.c_of_filter f in
        (* three temporaries, each bumping _pop before the push *)
        Alcotest.(check bool) "t1" true (contains c "_t1");
        Alcotest.(check bool) "t3" true (contains c "_t3");
        Alcotest.(check bool) "push after" true
          (contains c "out[") );
    t "pop inside conditional arm rejected" (fun () ->
        let f =
          Kernel.make_filter ~name:"CondPop" ~pop:1 ~push:1
            [
              Kernel.Push
                (Kernel.Cond (Kernel.Const (Types.VInt 1), Kernel.Pop, Kernel.Pop));
            ]
        in
        (try
           ignore (Cudagen.Emit.c_of_filter f);
           Alcotest.fail "expected Unsupported"
         with Cudagen.Emit.Unsupported _ -> ()));
    t "loops and conditionals lower structurally" (fun () ->
        let f =
          Kernel.Build.(
            Kernel.make_filter ~name:"Loopy" ~pop:4 ~push:4
              [
                arr "w" 4;
                for_ "j" (i 0) (i 4) [ seti "w" (v "j") pop ];
                for_ "j" (i 0) (i 4)
                  [
                    if_ (geti "w" (v "j") >: f 0.0)
                      [ push (geti "w" (v "j")) ]
                      [ push (neg (geti "w" (v "j"))) ];
                  ];
              ])
        in
        let c = Cudagen.Emit.c_of_filter f in
        Alcotest.(check bool) "for" true (contains c "for (int j = 0; j < 4; j++)");
        Alcotest.(check bool) "if/else" true (contains c "} else {");
        Alcotest.(check bool) "array decl" true (contains c "float w[4]");
        Alcotest.(check bool) "braces" true (balanced_braces c));
    t "integer filters use int buffers" (fun () ->
        let f =
          Kernel.Build.(
            Kernel.make_filter ~name:"IntOp" ~pop:1 ~push:1 ~in_ty:Types.TInt
              ~out_ty:Types.TInt
              [ push ((pop <<: i 2) |: i 1) ])
        in
        let c = Cudagen.Emit.c_of_filter f in
        Alcotest.(check bool) "signature" true
          (contains c "(const int* in, int* out, int tid)"));
  ]

let kernel_tests =
  [
    t "splitter/joiner lowering rates check" (fun () ->
        let dup = Cudagen.Kernel_gen.splitter_filter Ast.Duplicate 3 in
        Alcotest.(check (result unit string)) "dup" (Ok ()) (Kernel.check_filter dup);
        Alcotest.(check int) "push" 3 dup.Kernel.push_rate;
        let rr = Cudagen.Kernel_gen.splitter_filter (Ast.Round_robin [ 2; 3 ]) 2 in
        Alcotest.(check int) "rr pop" 5 rr.Kernel.pop_rate;
        let j = Cudagen.Kernel_gen.joiner_filter [ 1; 4 ] in
        Alcotest.(check int) "join pop" 5 j.Kernel.pop_rate);
    t "whole-program generation for a benchmark" (fun () ->
        let g = Flatten.flatten (Benchmarks.Bitonic.stream ()) in
        let c = Result.get_ok (Swp_core.Compile.compile g) in
        let src = Cudagen.Kernel_gen.program c in
        Alcotest.(check bool) "braces" true (balanced_braces src);
        Alcotest.(check bool) "kernel" true
          (contains src "__global__ void swp_kernel");
        Alcotest.(check bool) "switch on SM (Sec. IV-C)" true
          (contains src "switch (sm)");
        Alcotest.(check bool) "staging predicates" true
          (contains src "stage_on");
        Alcotest.(check bool) "launch config" true (contains src "swp_kernel<<<"));
    t "profile driver generation (Fig. 6)" (fun () ->
        let f = sample_filter in
        let src = Cudagen.Kernel_gen.profile_driver f ~numfirings:26880 in
        Alcotest.(check bool) "events" true (contains src "cudaEventElapsedTime");
        Alcotest.(check bool) "iterates" true (contains src "26880 / blockDim.x");
        Alcotest.(check bool) "braces" true (balanced_braces src));
    t "every scheduled instance appears in the kernel" (fun () ->
        let g = Flatten.flatten (Benchmarks.Dct.stream ()) in
        let c = Result.get_ok (Swp_core.Compile.compile g) in
        let src = Cudagen.Kernel_gen.swp_kernel c in
        List.iter
          (fun (e : Swp_core.Swp_schedule.entry) ->
            let marker =
              Printf.sprintf "k=%d) o=%d f=%d" e.inst.Swp_core.Instances.k e.o e.f
            in
            if not (contains src marker) then
              Alcotest.failf "instance marker missing: %s" marker)
          (List.filteri (fun i _ -> i < 5)
             c.Swp_core.Compile.schedule.Swp_core.Swp_schedule.entries));
  ]

let suite = emit_tests @ kernel_tests
