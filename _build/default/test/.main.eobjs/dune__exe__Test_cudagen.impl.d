test/test_cudagen.ml: Alcotest Ast Benchmarks Cudagen Flatten Kernel List Printf Result Streamit String Swp_core Types
