test/test_stateful.ml: Alcotest Array Ast Cudagen Flatten Frontend Gpusim Graph Interp Kernel List Option Printf Result Streamit String Swp_core Types
