test/test_gpusim.ml: Alcotest Arch Array Ast Benchmarks Coalesce Cpu_model Flatten Gpusim Graph Kernel List Regalloc Result Sdf Streamit Timing
