test/test_frontend.ml: Alcotest Ast Flatten Frontend Interp List Streamit Swp_core Types
