test/test_benchmarks.ml: Alcotest Array Ast Benchmarks Flatten Float Graph Interp List Printf QCheck QCheck_alcotest Streamit Types
