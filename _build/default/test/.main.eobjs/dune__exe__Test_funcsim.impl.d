test/test_funcsim.ml: Alcotest Ast Benchmarks Flatten Format Graph Kernel List Option Printf QCheck QCheck_alcotest Result Schedule Sdf Streamit Swp_core Types
