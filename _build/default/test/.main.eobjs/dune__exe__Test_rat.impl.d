test/test_rat.ml: Alcotest Bigint Numeric QCheck QCheck_alcotest Rat
