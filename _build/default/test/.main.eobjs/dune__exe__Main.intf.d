test/main.mli:
