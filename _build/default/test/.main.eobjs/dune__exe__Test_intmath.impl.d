test/test_intmath.ml: Alcotest Intmath Numeric QCheck QCheck_alcotest
