test/test_streamit.ml: Alcotest Array Ast Benchmarks Fifo Flatten Graph Interp Kernel List Result Schedule Sdf Streamit Types
