test/test_bigint.ml: Alcotest Bigint List Numeric QCheck QCheck_alcotest String
