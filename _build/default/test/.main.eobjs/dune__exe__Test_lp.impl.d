test/test_lp.ml: Alcotest Array List Lp Numeric Printf QCheck QCheck_alcotest Rat
