(* Tests for the StreamIt language core: FIFOs, kernel IR analyses,
   flattening, SDF rates, schedules and the reference interpreter. *)

open Streamit
open Types

let t name f = Alcotest.test_case name `Quick f
let kb = Kernel.Build.i

(* --- Fifo --- *)

let fifo_tests =
  [
    t "push/pop order" (fun () ->
        let q = Fifo.create () in
        Fifo.push_many q [ 1; 2; 3 ];
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Fifo.pop_many q 3));
    t "peek does not consume" (fun () ->
        let q = Fifo.create () in
        Fifo.push_many q [ 10; 20; 30 ];
        Alcotest.(check int) "peek 1" 20 (Fifo.peek q 1);
        Alcotest.(check int) "len" 3 (Fifo.length q);
        Alcotest.(check int) "pop" 10 (Fifo.pop q));
    t "growth beyond initial capacity" (fun () ->
        let q = Fifo.create () in
        for i = 0 to 99 do Fifo.push q i done;
        Alcotest.(check int) "len" 100 (Fifo.length q);
        Alcotest.(check (list int)) "front" [ 0; 1; 2 ] (Fifo.pop_many q 3);
        Alcotest.(check int) "high" 100 (Fifo.max_occupancy q));
    t "wraparound correctness" (fun () ->
        let q = Fifo.create () in
        for round = 0 to 20 do
          Fifo.push_many q [ round; round + 1000 ];
          Alcotest.(check int) "fifo" round (Fifo.pop q);
          Alcotest.(check int) "fifo2" (round + 1000) (Fifo.pop q)
        done;
        Alcotest.(check bool) "empty" true (Fifo.is_empty q));
    t "errors" (fun () ->
        let q : int Fifo.t = Fifo.create () in
        Alcotest.check_raises "pop empty" (Invalid_argument "Fifo.pop: empty")
          (fun () -> ignore (Fifo.pop q));
        Fifo.push q 1;
        Alcotest.check_raises "peek range"
          (Invalid_argument "Fifo.peek: out of range") (fun () ->
            ignore (Fifo.peek q 1)));
    t "counters" (fun () ->
        let q = Fifo.create () in
        Fifo.push_many q [ 1; 2 ];
        ignore (Fifo.pop q);
        Alcotest.(check int) "pushed" 2 (Fifo.total_pushed q);
        Alcotest.(check int) "popped" 1 (Fifo.total_popped q));
  ]

(* --- Kernel static analyses --- *)

let kernel_tests =
  [
    t "rate inference simple" (fun () ->
        let body = Kernel.Build.[ push (pop +: pop) ] in
        Alcotest.(check (result (triple int int int) string))
          "rates" (Ok (2, 1, 2)) (Kernel.infer_rates body));
    t "rate inference loops multiply" (fun () ->
        let body =
          Kernel.Build.[ for_ "j" (kb 0) (kb 4) [ push pop ] ]
        in
        Alcotest.(check (result (triple int int int) string))
          "rates" (Ok (4, 4, 4)) (Kernel.infer_rates body));
    t "peek depth tracked" (fun () ->
        let body = Kernel.Build.[ push (peek (kb 5)); let_ "_x" pop ] in
        match Kernel.infer_rates body with
        | Ok (1, 1, 6) -> ()
        | Ok (p, u, k) -> Alcotest.failf "got (%d,%d,%d)" p u k
        | Error m -> Alcotest.fail m);
    t "peek depth grows with loop index" (fun () ->
        let body =
          Kernel.Build.
            [ for_ "j" (kb 0) (kb 3) [ push (peek (v "j")) ]; let_ "_x" pop ]
        in
        match Kernel.infer_rates body with
        | Ok (1, 3, 3) -> ()
        | Ok (p, u, k) -> Alcotest.failf "got (%d,%d,%d)" p u k
        | Error m -> Alcotest.fail m);
    t "unequal if branches rejected" (fun () ->
        let body =
          Kernel.Build.[ if_ (kb 1) [ push (kb 1) ] [] ]
        in
        match Kernel.infer_rates body with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rate error");
    t "data-dependent loop with traffic rejected" (fun () ->
        let body =
          Kernel.Build.[ let_ "n" pop; for_ "j" (kb 0) (v "n") [ push (kb 0) ] ]
        in
        match Kernel.infer_rates body with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected rate error");
    t "check_filter catches rate mismatch" (fun () ->
        let f =
          Kernel.make_filter ~name:"bad" ~pop:1 ~push:2 Kernel.Build.[ push pop ]
        in
        match Kernel.check_filter f with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected check failure");
    t "check_filter catches unbound variable" (fun () ->
        let f =
          Kernel.make_filter ~name:"unbound" ~push:1
            Kernel.Build.[ push (v "nope") ]
        in
        match Kernel.check_filter f with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected scope failure");
    t "check_filter catches unknown table" (fun () ->
        let f =
          Kernel.make_filter ~name:"notable" ~push:1
            Kernel.Build.[ push (tbl "ghost" (kb 0)) ]
        in
        match Kernel.check_filter f with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected table failure");
    t "identity filter checks" (fun () ->
        Alcotest.(check (result unit string)) "id" (Ok ())
          (Kernel.check_filter (Kernel.identity ())));
    t "make_filter validates peek >= pop" (fun () ->
        Alcotest.check_raises "peek"
          (Invalid_argument "Kernel.make_filter: peek < pop") (fun () ->
            ignore (Kernel.make_filter ~name:"x" ~pop:3 ~peek:2 [])));
    t "cost counts ops" (fun () ->
        let f =
          Kernel.make_filter ~name:"c" ~pop:2 ~push:1
            Kernel.Build.[ push (pop *: pop) ]
        in
        let c = Kernel.cost_of_filter f in
        Alcotest.(check int) "mul" 1 c.Kernel.mul;
        Alcotest.(check int) "channel" 3 c.Kernel.channel);
    t "cost multiplies loop bodies" (fun () ->
        let f =
          Kernel.make_filter ~name:"c" ~pop:8 ~push:8
            Kernel.Build.[ for_ "j" (kb 0) (kb 8) [ push pop ] ]
        in
        Alcotest.(check int) "channel" 16 (Kernel.cost_of_filter f).Kernel.channel);
    t "register estimate within clamp" (fun () ->
        List.iter
          (fun f ->
            let r = Kernel.estimate_registers f in
            Alcotest.(check bool) "range" true (r >= 4 && r <= 128))
          (Ast.filters (Benchmarks.Fft.stream ())));
    t "rename reaches tables and variables" (fun () ->
        let f =
          Kernel.make_filter ~name:"r" ~pop:1 ~push:1
            ~tables:[ ("tab", [| VInt 1 |]) ]
            Kernel.Build.[ let_ "x" pop; push (v "x" +: tbl "tab" (kb 0)) ]
        in
        let f' = Kernel.rename (fun s -> "p_" ^ s) f in
        Alcotest.(check (result unit string)) "renamed ok" (Ok ())
          (Kernel.check_filter f');
        Alcotest.(check string) "table" "p_tab" (fst (List.hd f'.Kernel.tables)));
  ]

(* --- Flatten / Graph --- *)

let ab_graph () =
  let a =
    Kernel.Build.(
      Kernel.make_filter ~name:"A" ~pop:1 ~push:2
        [ let_ "x" pop; push (v "x"); push (v "x" *: f 2.0) ])
  in
  let b =
    Kernel.Build.(
      Kernel.make_filter ~name:"B" ~pop:3 ~push:1 [ push (pop +: pop +: pop) ])
  in
  Flatten.flatten (Ast.pipeline "ab" [ Ast.Filter a; Ast.Filter b ])

let flatten_tests =
  [
    t "pipeline flattening" (fun () ->
        let g = ab_graph () in
        Alcotest.(check int) "nodes" 2 (Graph.num_nodes g);
        Alcotest.(check int) "edges" 1 (List.length g.Graph.edges);
        Alcotest.(check (option int)) "entry" (Some 0) g.Graph.entry;
        Alcotest.(check (option int)) "exit" (Some 1) g.Graph.exit_);
    t "splitjoin introduces splitter and joiner" (fun () ->
        let sj =
          Ast.duplicate_sj "sj"
            [ Ast.Filter (Kernel.identity ()); Ast.Filter (Kernel.identity ()) ]
            [ 1; 1 ]
        in
        let g = Flatten.flatten sj in
        Alcotest.(check int) "nodes" 4 (Graph.num_nodes g);
        let kinds =
          Array.to_list g.Graph.nodes
          |> List.map (fun n ->
                 match n.Graph.kind with
                 | Graph.NSplitter _ -> "s"
                 | Graph.NJoiner _ -> "j"
                 | Graph.NFilter _ -> "f")
        in
        Alcotest.(check (list string)) "kinds" [ "s"; "j"; "f"; "f" ] kinds);
    t "peeking filter receives zero history" (fun () ->
        let fir =
          Kernel.Build.(
            Kernel.make_filter ~name:"fir" ~pop:1 ~push:1 ~peek:4
              [ push (peek (kb 3)); let_ "_d" pop ])
        in
        let g =
          Flatten.flatten
            (Ast.pipeline "p" [ Ast.Filter (Kernel.identity ()); Ast.Filter fir ])
        in
        let e = List.hd g.Graph.edges in
        Alcotest.(check int) "init" 3 e.Graph.init_tokens;
        Alcotest.(check bool) "zeros" true
          (List.for_all (fun v -> v = VFloat 0.0) e.Graph.init_values));
    t "feedback loop structure" (fun () ->
        let loop =
          Ast.Feedback_loop
            {
              name = "fb";
              join_weights = (1, 1);
              body = Ast.Filter (Kernel.identity ());
              split_weights = (1, 1);
              delay = [ VFloat 0.0; VFloat 0.0 ];
            }
        in
        let g = Flatten.flatten loop in
        Alcotest.(check bool) "cyclic" true (not (Graph.is_acyclic g));
        (* topo order must still exist thanks to the delay tokens *)
        Alcotest.(check int) "topo covers all" (Graph.num_nodes g)
          (List.length (Graph.topo_order g)));
    t "mismatched pipeline rejected" (fun () ->
        let source = Kernel.make_filter ~name:"src" ~push:1 Kernel.Build.[ push (f 1.0) ] in
        let sink = Kernel.make_filter ~name:"snk" ~pop:1 Kernel.Build.[ let_ "_x" pop ] in
        (* sink produces nothing but a successor expects input *)
        Alcotest.check_raises "bad" (Failure "p: pipeline stage expects input but none produced")
          (fun () ->
            ignore
              (Flatten.flatten
                 (Ast.pipeline "p"
                    [ Ast.Filter source; Ast.Filter sink; Ast.Filter sink ]))));
    t "graph validation detects double wiring" (fun () ->
        let g = ab_graph () in
        let bad = { g with Graph.edges = g.Graph.edges @ g.Graph.edges } in
        match Graph.validate bad with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected validation failure");
  ]

(* --- Sdf --- *)

let sdf_tests =
  [
    t "multirate repetition vector (paper Fig. 4)" (fun () ->
        let g = ab_graph () in
        match Sdf.steady_state g with
        | Ok r ->
          Alcotest.(check (array int)) "reps" [| 3; 2 |] r.Sdf.reps;
          Alcotest.(check (result unit string)) "check" (Ok ()) (Sdf.check g r);
          Alcotest.(check int) "in" 3 (Sdf.input_tokens g r);
          Alcotest.(check int) "out" 2 (Sdf.output_tokens g r)
        | Error m -> Alcotest.fail m);
    t "benchmark repetition vectors validate" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            let g = Flatten.flatten (e.stream ()) in
            match Sdf.steady_state g with
            | Ok r ->
              Alcotest.(check (result unit string)) e.name (Ok ()) (Sdf.check g r)
            | Error m -> Alcotest.fail (e.name ^ ": " ^ m))
          Benchmarks.Registry.all);
    t "scaled reps" (fun () ->
        let g = ab_graph () in
        let r = Result.get_ok (Sdf.steady_state g) in
        Alcotest.(check (array int)) "x4" [| 12; 8 |] (Sdf.scaled_reps r 4));
    t "rate-inconsistent graph rejected" (fun () ->
        (* duplicate splitter into branches with unequal consumption,
           rejoined 1:1 -> inconsistent *)
        let f21 =
          Kernel.Build.(
            Kernel.make_filter ~name:"f21" ~pop:2 ~push:1 [ push (pop +: pop) ])
        in
        let sj =
          Ast.duplicate_sj "bad"
            [ Ast.Filter (Kernel.identity ()); Ast.Filter f21 ]
            [ 1; 1 ]
        in
        let g = Flatten.flatten sj in
        match Sdf.steady_state g with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected inconsistency");
  ]

(* --- Schedule --- *)

let schedule_tests =
  [
    t "SAS is admissible on every benchmark" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            let g = Flatten.flatten (e.stream ()) in
            let r = Result.get_ok (Sdf.steady_state g) in
            let s = Schedule.sas g r in
            Alcotest.(check (result unit string)) e.name (Ok ())
              (Schedule.is_admissible g r s))
          Benchmarks.Registry.all);
    t "min-latency is admissible on every benchmark" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            let g = Flatten.flatten (e.stream ()) in
            let r = Result.get_ok (Sdf.steady_state g) in
            let s = Schedule.min_latency g r in
            Alcotest.(check (result unit string)) e.name (Ok ())
              (Schedule.is_admissible g r s))
          Benchmarks.Registry.all);
    t "min-latency never buffers more than SAS" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            let g = Flatten.flatten (e.stream ()) in
            let r = Result.get_ok (Sdf.steady_state g) in
            let sas = Schedule.buffer_bytes g (Schedule.sas g r) in
            let ml = Schedule.buffer_bytes g (Schedule.min_latency g r) in
            if ml > sas then
              Alcotest.failf "%s: min-latency %d > SAS %d" e.name ml sas)
          Benchmarks.Registry.all);
    t "wrong firing counts rejected" (fun () ->
        let g = ab_graph () in
        let r = Result.get_ok (Sdf.steady_state g) in
        match Schedule.is_admissible g r [ 0; 1 ] with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected count mismatch");
    t "premature firing rejected" (fun () ->
        let g = ab_graph () in
        let r = Result.get_ok (Sdf.steady_state g) in
        match Schedule.is_admissible g r [ 1; 0; 0; 0; 1 ] with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected firing-rule violation");
  ]

(* --- Interp --- *)

let interp_tests =
  [
    t "multirate pipeline output" (fun () ->
        let g = ab_graph () in
        let out =
          Interp.run_steady_states g
            ~input:(fun i -> VFloat (float_of_int i))
            ~iters:2
        in
        Alcotest.(check int) "count" 4 (List.length out);
        Alcotest.(check bool) "values" true
          (List.for_all2 equal_value out
             [ VFloat 1.0; VFloat 8.0; VFloat 13.0; VFloat 23.0 ]));
    t "steady state restores channel occupancy" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            let g = Flatten.flatten (e.stream ()) in
            let r = Result.get_ok (Sdf.steady_state g) in
            let sched = Schedule.min_latency g r in
            let it = Interp.create g in
            let before = Interp.channel_occupancy it in
            Interp.run_schedule it ~input:e.input sched;
            let after = Interp.channel_occupancy it in
            List.iter2
              (fun (_, b) (_, a) ->
                if a <> b then Alcotest.failf "%s: occupancy changed" e.name)
              before after)
          Benchmarks.Registry.all);
    t "firing violation raised" (fun () ->
        let g = ab_graph () in
        let it = Interp.create g in
        (try
           Interp.fire it ~input:(fun _ -> VFloat 0.0) 1;
           Alcotest.fail "expected violation"
         with Interp.Firing_violation _ -> ()));
    t "schedule order does not change output" (fun () ->
        let g = Flatten.flatten (Benchmarks.Dct.stream ()) in
        let r = Result.get_ok (Sdf.steady_state g) in
        let input i = VFloat (float_of_int (i mod 17) /. 3.0) in
        let run sched =
          let it = Interp.create g in
          Interp.run_schedule it ~input sched;
          Interp.output it
        in
        let o1 = run (Schedule.sas g r) in
        let o2 = run (Schedule.min_latency g r) in
        Alcotest.(check bool) "same" true (List.for_all2 equal_value o1 o2));
    t "reset restores initial state" (fun () ->
        let g = ab_graph () in
        let r = Result.get_ok (Sdf.steady_state g) in
        let input i = VFloat (float_of_int i) in
        let it = Interp.create g in
        Interp.run_schedule it ~input (Schedule.sas g r);
        let first = Interp.output it in
        Interp.reset it;
        Interp.run_schedule it ~input (Schedule.sas g r);
        Alcotest.(check bool) "same" true
          (List.for_all2 equal_value first (Interp.output it)));
    t "division by zero surfaces" (fun () ->
        let f =
          Kernel.Build.(
            Kernel.make_filter ~name:"crash" ~pop:1 ~push:1 ~in_ty:TInt
              ~out_ty:TInt
              [ push (kb 1 /: (pop -: pop)) ])
        in
        (* pop -: pop is 2 pops; declared pop 1 -> fix rates *)
        ignore f;
        let g =
          Flatten.flatten
            (Ast.Filter
               (Kernel.Build.(
                  Kernel.make_filter ~name:"crash" ~pop:2 ~push:1 ~in_ty:TInt
                    ~out_ty:TInt
                    [ push (kb 1 /: (pop -: pop)) ])))
        in
        let it = Interp.create g in
        (try
           Interp.fire it ~input:(fun _ -> VInt 3) 0;
           Alcotest.fail "expected division failure"
         with Failure _ -> ()));
  ]

let suite =
  fifo_tests @ kernel_tests @ flatten_tests @ sdf_tests @ schedule_tests
  @ interp_tests
