open Numeric

let check_rat = Alcotest.testable Rat.pp Rat.equal
let t name f = Alcotest.test_case name `Quick f
let q = Rat.of_ints

let arb_rat =
  QCheck.make ~print:Rat.to_string
    QCheck.Gen.(
      map2
        (fun n d -> Rat.of_ints n (if d = 0 then 1 else d))
        (int_range (-10000) 10000)
        (int_range (-500) 500))

let unit_tests =
  [
    t "canonical form" (fun () ->
        Alcotest.(check string) "6/-4" "-3/2" (Rat.to_string (q 6 (-4)));
        Alcotest.(check string) "0/5" "0" (Rat.to_string (q 0 5));
        Alcotest.(check string) "4/2" "2" (Rat.to_string (q 4 2)));
    t "zero denominator raises" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (q 1 0)));
    t "of_string forms" (fun () ->
        Alcotest.check check_rat "int" (Rat.of_int 7) (Rat.of_string "7");
        Alcotest.check check_rat "frac" (q 1 3) (Rat.of_string "2/6");
        Alcotest.check check_rat "neg" (q (-1) 3) (Rat.of_string "-2/6"));
    t "floor and ceil" (fun () ->
        Alcotest.(check int) "floor 7/2" 3 (Bigint.to_int (Rat.floor (q 7 2)));
        Alcotest.(check int) "ceil 7/2" 4 (Bigint.to_int (Rat.ceil (q 7 2)));
        Alcotest.(check int) "floor -7/2" (-4) (Bigint.to_int (Rat.floor (q (-7) 2)));
        Alcotest.(check int) "ceil -7/2" (-3) (Bigint.to_int (Rat.ceil (q (-7) 2)));
        Alcotest.(check int) "floor int" 5 (Bigint.to_int (Rat.floor (Rat.of_int 5))));
    t "arithmetic" (fun () ->
        Alcotest.check check_rat "1/2+1/3" (q 5 6) (Rat.add (q 1 2) (q 1 3));
        Alcotest.check check_rat "1/2*2/3" (q 1 3) (Rat.mul (q 1 2) (q 2 3));
        Alcotest.check check_rat "div" (q 3 4) (Rat.div (q 1 2) (q 2 3)));
    t "inv of zero raises" (fun () ->
        Alcotest.check_raises "inv0" Division_by_zero (fun () ->
            ignore (Rat.inv Rat.zero)));
    t "to_float" (fun () ->
        Alcotest.(check (float 1e-12)) "3/4" 0.75 (Rat.to_float (q 3 4)));
    t "to_int on integers only" (fun () ->
        Alcotest.(check int) "5" 5 (Rat.to_int (Rat.of_int 5));
        Alcotest.check_raises "non-int" (Failure "Rat.to_int: not an integer")
          (fun () -> ignore (Rat.to_int (q 1 2))));
    t "is_integer" (fun () ->
        Alcotest.(check bool) "4/2" true (Rat.is_integer (q 4 2));
        Alcotest.(check bool) "1/2" false (Rat.is_integer (q 1 2)));
  ]

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let property_tests =
  [
    prop "add commutative" 300 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    prop "mul inverse" 300 arb_rat (fun a ->
        QCheck.assume (not (Rat.is_zero a));
        Rat.equal Rat.one (Rat.mul a (Rat.inv a)));
    prop "add then sub roundtrip" 300 (QCheck.pair arb_rat arb_rat)
      (fun (a, b) -> Rat.equal a (Rat.sub (Rat.add a b) b));
    prop "canonical: gcd(num,den)=1" 300 arb_rat (fun a ->
        Bigint.equal Bigint.one (Bigint.gcd (Rat.num a) (Rat.den a))
        || Rat.is_zero a);
    prop "den positive" 300 arb_rat (fun a -> Bigint.sign (Rat.den a) = 1);
    prop "floor <= x < floor+1" 300 arb_rat (fun a ->
        let f = Rat.of_bigint (Rat.floor a) in
        Rat.le f a && Rat.lt a (Rat.add f Rat.one));
    prop "compare consistent with sub sign" 300 (QCheck.pair arb_rat arb_rat)
      (fun (a, b) -> compare (Rat.compare a b) 0 = compare (Rat.sign (Rat.sub a b)) 0);
  ]

let suite = unit_tests @ property_tests
