(* Functional correctness of the eight benchmark programs: real outputs
   checked against independent references. *)

open Streamit
open Types

let t name f = Alcotest.test_case name `Quick f

let run_one g ~input ~iters = Interp.run_steady_states g ~input ~iters

let structural_tests =
  [
    t "all benchmarks validate structurally" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            Alcotest.(check (result unit string)) e.name (Ok ())
              (Ast.validate (e.stream ()));
            Alcotest.(check (result unit string)) (e.name ^ " graph") (Ok ())
              (Graph.validate (Flatten.flatten (e.stream ()))))
          Benchmarks.Registry.all);
    t "peeking filter counts match Table I" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            if e.name = "Filterbank" || e.name = "FMRadio" then
              Alcotest.(check int) e.name e.paper_peeking
                (Benchmarks.Registry.our_peeking e))
          Benchmarks.Registry.all);
    t "non-peeking benchmarks have no peeking filters" (fun () ->
        List.iter
          (fun (e : Benchmarks.Registry.entry) ->
            if e.paper_peeking = 0 then
              Alcotest.(check int) e.name 0 (Benchmarks.Registry.our_peeking e))
          Benchmarks.Registry.all);
    t "registry lookup" (fun () ->
        Alcotest.(check bool) "found" true (Benchmarks.Registry.find "des" <> None);
        Alcotest.(check bool) "case-insensitive" true
          (Benchmarks.Registry.find "FMRADIO" <> None);
        Alcotest.(check bool) "missing" true (Benchmarks.Registry.find "nope" = None));
  ]

let bitonic_tests =
  [
    t "bitonic sorts frames" (fun () ->
        let g = Flatten.flatten (Benchmarks.Bitonic.stream ()) in
        let frames =
          [
            [| 5; 2; 7; 1; 9; 3; 8; 0 |];
            [| 1; 1; 1; 1; 1; 1; 1; 1 |];
            [| 8; 7; 6; 5; 4; 3; 2; 1 |];
            [| 0; 1; 2; 3; 4; 5; 6; 7 |];
          ]
        in
        let input i = VInt (List.nth frames (i / 8)).(i mod 8) in
        let out = run_one g ~input ~iters:4 in
        let out = Array.of_list (List.map to_int out) in
        List.iteri
          (fun fi frame ->
            let sorted = Array.copy frame in
            Array.sort compare sorted;
            for j = 0 to 7 do
              Alcotest.(check int)
                (Printf.sprintf "frame %d pos %d" fi j)
                sorted.(j)
                out.((fi * 8) + j)
            done)
          frames);
    t "recursive bitonic agrees with iterative" (fun () ->
        let g1 = Flatten.flatten (Benchmarks.Bitonic.stream ()) in
        let g2 = Flatten.flatten (Benchmarks.Bitonic_rec.stream ()) in
        let input i = VInt ((i * 37) mod 101) in
        let o1 = run_one g1 ~input ~iters:6 in
        let o2 = run_one g2 ~input ~iters:6 in
        Alcotest.(check (list int)) "same" (List.map to_int o1) (List.map to_int o2));
  ]

(* QCheck: bitonic output is always the sorted multiset of its frame. *)
let bitonic_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bitonic sorts random frames" ~count:40
       QCheck.(list_of_size (QCheck.Gen.return 8) (int_range 0 1000))
       (fun frame ->
         let g = Flatten.flatten (Benchmarks.Bitonic.stream ()) in
         let arr = Array.of_list frame in
         let out =
           run_one g ~input:(fun i -> VInt arr.(i mod 8)) ~iters:1
           |> List.map to_int
         in
         let sorted = List.sort compare frame in
         out = sorted))

let des_tests =
  [
    t "DES FIPS walkthrough vector" (fun () ->
        (* key 133457799BBCDFF1, plaintext 0123456789ABCDEF ->
           ciphertext 85E813540F0AB405 *)
        let g = Flatten.flatten (Benchmarks.Des.stream ()) in
        let input i = VInt (if i mod 2 = 0 then 0x01234567 else 0x89ABCDEF) in
        (match run_one g ~input ~iters:1 with
        | [ VInt l; VInt r ] ->
          Alcotest.(check int) "L" 0x85E81354 l;
          Alcotest.(check int) "R" 0x0F0AB405 r
        | _ -> Alcotest.fail "unexpected output shape"));
    t "DES encrypt/decrypt round trip" (fun () ->
        let enc = Flatten.flatten (Benchmarks.Des.stream ()) in
        let blocks =
          [| (0x01234567, 0x89ABCDEF); (0xDEADBEEF, 0x01020304); (0, 0) |]
        in
        let input i =
          let l, r = blocks.(i / 2) in
          VInt (if i mod 2 = 0 then l else r)
        in
        let cipher = Array.of_list (List.map to_int (run_one enc ~input ~iters:3)) in
        let dec = Flatten.flatten (Benchmarks.Des.decrypt_stream ()) in
        let plain =
          run_one dec ~input:(fun i -> VInt cipher.(i)) ~iters:3
          |> List.map to_int |> Array.of_list
        in
        Array.iteri
          (fun i (l, r) ->
            Alcotest.(check int) "L" l plain.(2 * i);
            Alcotest.(check int) "R" r plain.((2 * i) + 1))
          blocks);
    t "different keys give different ciphertexts" (fun () ->
        let run key =
          let g = Flatten.flatten (Benchmarks.Des.stream ~key ()) in
          run_one g
            ~input:(fun i -> VInt (if i mod 2 = 0 then 0x01234567 else 0x89ABCDEF))
            ~iters:1
        in
        let a = run "133457799BBCDFF1" in
        let b = run "0000000000000001" in
        Alcotest.(check bool) "differ" false
          (List.for_all2 equal_value a b));
    t "key schedule structure" (fun () ->
        let keys = Benchmarks.Des.Tables.round_keys Benchmarks.Des.Tables.default_key in
        Alcotest.(check int) "16 rounds" 16 (Array.length keys);
        Array.iter
          (fun (k1, k2) ->
            Alcotest.(check bool) "24-bit halves" true
              (k1 >= 0 && k1 < 1 lsl 24 && k2 >= 0 && k2 < 1 lsl 24))
          keys;
        (* FIPS walkthrough K1 = 000110 110000 001011 101111 111111 000111 000001 110010 *)
        let k1a, k1b = keys.(0) in
        Alcotest.(check int) "K1 hi" 0b000110110000001011101111 k1a;
        Alcotest.(check int) "K1 lo" 0b111111000111000001110010 k1b);
  ]

let dct_tests =
  [
    t "2-D DCT matches separable reference" (fun () ->
        let g = Flatten.flatten (Benchmarks.Dct.stream ()) in
        let frame = Array.init 64 (fun i -> float_of_int ((i * 7 mod 13) - 6) /. 3.0) in
        let out =
          run_one g ~input:(fun i -> VFloat frame.(i mod 64)) ~iters:1
          |> List.map to_float |> Array.of_list
        in
        let tmp = Array.make 64 0.0 and ref2d = Array.make 64 0.0 in
        for r = 0 to 7 do
          let row = Benchmarks.Dct.dct_1d_reference (Array.sub frame (r * 8) 8) in
          Array.blit row 0 tmp (r * 8) 8
        done;
        for cidx = 0 to 7 do
          let col =
            Benchmarks.Dct.dct_1d_reference
              (Array.init 8 (fun r -> tmp.((r * 8) + cidx)))
          in
          for r = 0 to 7 do
            ref2d.((r * 8) + cidx) <- col.(r)
          done
        done;
        Array.iteri
          (fun i x ->
            if Float.abs (x -. ref2d.(i)) > 1e-4 then
              Alcotest.failf "mismatch at %d: %f vs %f" i x ref2d.(i))
          out);
    t "DCT of constant block concentrates in DC" (fun () ->
        let g = Flatten.flatten (Benchmarks.Dct.stream ()) in
        let out =
          run_one g ~input:(fun _ -> VFloat 1.0) ~iters:1
          |> List.map to_float |> Array.of_list
        in
        Alcotest.(check (float 1e-4)) "DC" 8.0 out.(0);
        Array.iteri
          (fun i x ->
            if i > 0 && Float.abs x > 1e-4 then
              Alcotest.failf "AC leak at %d: %f" i x)
          out);
  ]

let fft_tests =
  [
    t "FFT matches naive DFT" (fun () ->
        let g = Flatten.flatten (Benchmarks.Fft.stream ()) in
        let n = Benchmarks.Fft.points in
        let inp =
          Array.init n (fun i ->
              (sin (0.3 *. float_of_int i), cos (0.21 *. float_of_int i)))
        in
        let tape i =
          let c = i / 2 mod n in
          if i mod 2 = 0 then VFloat (fst inp.(c)) else VFloat (snd inp.(c))
        in
        let out = run_one g ~input:tape ~iters:1 |> List.map to_float |> Array.of_list in
        let rf = Benchmarks.Fft.dft_reference inp in
        Array.iteri
          (fun k (re, im) ->
            if
              Float.abs (re -. out.(2 * k)) > 1e-3
              || Float.abs (im -. out.((2 * k) + 1)) > 1e-3
            then Alcotest.failf "bin %d mismatch" k)
          rf);
    t "FFT of impulse is flat spectrum" (fun () ->
        let g = Flatten.flatten (Benchmarks.Fft.stream ()) in
        let tape i = if i = 0 then VFloat 1.0 else VFloat 0.0 in
        let out = run_one g ~input:tape ~iters:1 |> List.map to_float in
        List.iteri
          (fun i x ->
            let expected = if i mod 2 = 0 then 1.0 else 0.0 in
            if Float.abs (x -. expected) > 1e-4 then
              Alcotest.failf "flat spectrum violated at %d: %f" i x)
          out);
    t "FFT linearity" (fun () ->
        let g = Flatten.flatten (Benchmarks.Fft.stream ()) in
        let n = Benchmarks.Fft.points in
        let a = Array.init (2 * n) (fun i -> float_of_int ((i * 13 mod 7) - 3)) in
        let b = Array.init (2 * n) (fun i -> float_of_int ((i * 5 mod 11) - 5)) in
        let run arr =
          run_one g ~input:(fun i -> VFloat arr.(i mod (2 * n))) ~iters:1
          |> List.map to_float |> Array.of_list
        in
        let fa = run a and fb = run b in
        let sum = Array.init (2 * n) (fun i -> a.(i) +. b.(i)) in
        let fsum = run sum in
        Array.iteri
          (fun i x ->
            if Float.abs (x -. (fa.(i) +. fb.(i))) > 1e-3 then
              Alcotest.failf "linearity violated at %d" i)
          fsum);
  ]

let dsp_tests =
  [
    t "filterbank: zero in, zero out" (fun () ->
        let g = Flatten.flatten (Benchmarks.Filterbank.stream ()) in
        let out = run_one g ~input:(fun _ -> VFloat 0.0) ~iters:3 in
        List.iter
          (fun v ->
            if Float.abs (to_float v) > 1e-9 then Alcotest.fail "nonzero output")
          out);
    t "filterbank is linear and time-invariant-ish (scaling)" (fun () ->
        let g = Flatten.flatten (Benchmarks.Filterbank.stream ()) in
        let sig_ i = sin (0.1 *. float_of_int i) in
        let o1 =
          run_one g ~input:(fun i -> VFloat (sig_ i)) ~iters:4 |> List.map to_float
        in
        let o2 =
          run_one g ~input:(fun i -> VFloat (2.0 *. sig_ i)) ~iters:4
          |> List.map to_float
        in
        List.iter2
          (fun a b ->
            if Float.abs ((2.0 *. a) -. b) > 1e-5 then
              Alcotest.failf "scaling violated: %f vs %f" (2.0 *. a) b)
          o1 o2);
    t "fm radio produces finite output" (fun () ->
        let g = Flatten.flatten (Benchmarks.Fm_radio.stream ()) in
        let out =
          run_one g
            ~input:(fun i -> VFloat (sin (0.02 *. float_of_int i)))
            ~iters:2
        in
        Alcotest.(check bool) "nonempty" true (out <> []);
        List.iter
          (fun v ->
            if not (Float.is_finite (to_float v)) then
              Alcotest.fail "non-finite output")
          out);
    t "matrix multiply matches reference" (fun () ->
        let g = Flatten.flatten (Benchmarks.Matrix_mult.stream ()) in
        let n = Benchmarks.Matrix_mult.dim in
        let a = Array.init (n * n) (fun i -> float_of_int ((i mod 5) - 2)) in
        let b = Array.init (n * n) (fun i -> float_of_int ((i mod 7) - 3)) in
        let input i =
          let j = i mod (2 * n * n) in
          if j < n * n then VFloat a.(j) else VFloat b.(j - (n * n))
        in
        let out = run_one g ~input ~iters:1 |> List.map to_float |> Array.of_list in
        Alcotest.(check int) "size" (n * n) (Array.length out);
        for r = 0 to n - 1 do
          for c = 0 to n - 1 do
            let expect = ref 0.0 in
            for k = 0 to n - 1 do
              expect := !expect +. (a.((r * n) + k) *. b.((k * n) + c))
            done;
            if Float.abs (!expect -. out.((r * n) + c)) > 1e-3 then
              Alcotest.failf "C[%d,%d] = %f, expected %f" r c out.((r * n) + c)
                !expect
          done
        done);
  ]

let suite =
  structural_tests @ bitonic_tests @ [ bitonic_prop ] @ des_tests @ dct_tests
  @ fft_tests @ dsp_tests
