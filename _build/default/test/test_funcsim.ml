(* End-to-end functional validation of the software-pipelined execution:
   the token-level device simulator (physical buffers laid out by
   eqs. (9)-(11), instances run by staging predicates) must agree
   value-for-value with the FIFO reference interpreter — plus randomized
   stream graphs exercising the whole compile pipeline. *)

open Streamit
open Types

let t name f = Alcotest.test_case name `Quick f

let check_bench ?(iters = 1) name =
  let e = Option.get (Benchmarks.Registry.find name) in
  let g = Flatten.flatten (e.Benchmarks.Registry.stream ()) in
  match Swp_core.Compile.compile g with
  | Error m -> Alcotest.fail (name ^ ": " ^ m)
  | Ok c -> (
    match
      Swp_core.Funcsim.matches_interpreter c ~input:e.Benchmarks.Registry.input
        ~iters
    with
    | Ok () -> ()
    | Error m -> Alcotest.fail (name ^ ": " ^ m))

let device_tests =
  [
    t "device == interpreter: Bitonic" (fun () -> check_bench "Bitonic");
    t "device == interpreter: BitonicRec" (fun () -> check_bench "BitonicRec");
    t "device == interpreter: DCT" (fun () -> check_bench "DCT");
    t "device == interpreter: DES" (fun () -> check_bench "DES");
    t "device == interpreter: FFT" (fun () -> check_bench "FFT");
    t "device == interpreter: MatrixMult" (fun () -> check_bench "MatrixMult");
    t "device == interpreter: FMRadio (peeking)" (fun () -> check_bench "FMRadio");
    t "device == interpreter: Filterbank (peeking)" (fun () ->
        check_bench "Filterbank");
    t "multiple macro iterations" (fun () -> check_bench ~iters:2 "Bitonic");
    t "multirate pipeline through the device" (fun () ->
        let a =
          Kernel.Build.(
            Kernel.make_filter ~name:"A" ~pop:1 ~push:2
              [ let_ "x" pop; push (v "x"); push (v "x" *: f 2.0) ])
        in
        let b =
          Kernel.Build.(
            Kernel.make_filter ~name:"B" ~pop:3 ~push:1 [ push (pop +: pop +: pop) ])
        in
        let g = Flatten.flatten (Ast.pipeline "ab" [ Ast.Filter a; Ast.Filter b ]) in
        let c = Result.get_ok (Swp_core.Compile.compile g) in
        match
          Swp_core.Funcsim.matches_interpreter c
            ~input:(fun i -> VFloat (float_of_int (i mod 100)))
            ~iters:2
        with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
  ]

(* --- randomized stream programs through the whole pipeline --- *)

(* A random filter: pops [pop] tokens into an array and pushes [push]
   products of them — always rate-consistent by construction. *)
let random_filter idx pop_rate push_rate =
  let open Kernel.Build in
  let body =
    [ arr "w" pop_rate ]
    @ List.init pop_rate (fun j -> seti "w" (i j) pop)
    @ List.init push_rate (fun j ->
          push (geti "w" (i (j mod pop_rate)) *: f (1.0 +. float_of_int j)))
  in
  Ast.Filter
    (Kernel.make_filter
       ~name:(Printf.sprintf "F%d_%d_%d" idx pop_rate push_rate)
       ~pop:pop_rate ~push:push_rate body)

let gen_stream =
  QCheck.Gen.(
    let gen_stage idx =
      frequency
        [
          ( 3,
            map2 (fun p u -> random_filter idx p u) (int_range 1 4)
              (int_range 1 4) );
          ( 1,
            map
              (fun w ->
                let ws = [ w; w ] in
                Ast.round_robin_sj
                  (Printf.sprintf "sj%d" idx)
                  ws
                  [
                    Ast.Filter (Kernel.identity ());
                    Ast.Filter (Kernel.identity ());
                  ]
                  ws)
              (int_range 1 3) );
        ]
    in
    int_range 1 4 >>= fun n ->
    let rec go i acc =
      if i >= n then return (Ast.pipeline "random" (List.rev acc))
      else gen_stage i >>= fun s -> go (i + 1) (s :: acc)
    in
    go 0 [])

let arb_stream =
  QCheck.make ~print:(fun s -> Format.asprintf "%a" Ast.pp s) gen_stream

let swp_schedule_ok g (c : Swp_core.Compile.compiled) =
  Swp_core.Swp_schedule.validate g c.Swp_core.Compile.schedule = Ok ()

let pipeline_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random graphs: rates, schedules, validation"
         ~count:40 arb_stream (fun s ->
           Ast.validate s = Ok ()
           &&
           let g = Flatten.flatten s in
           Graph.validate g = Ok ()
           &&
           match Sdf.steady_state g with
           | Error _ -> false
           | Ok r ->
             Sdf.check g r = Ok ()
             && Schedule.is_admissible g r (Schedule.sas g r) = Ok ()
             && Schedule.is_admissible g r (Schedule.min_latency g r) = Ok ()));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"random graphs: compile + device matches interpreter" ~count:10
         arb_stream (fun s ->
           let g = Flatten.flatten s in
           match
             Swp_core.Compile.compile ~solver:Swp_core.Ii_search.Heuristic g
           with
           | Error _ -> false
           | Ok c ->
             swp_schedule_ok g c
             &&
             (match
                Swp_core.Funcsim.matches_interpreter c
                  ~input:(fun i -> VFloat (float_of_int (i mod 17) /. 4.0))
                  ~iters:1
              with
             | Ok () -> true
             | Error _ -> false)));
  ]

let suite = device_tests @ pipeline_props
