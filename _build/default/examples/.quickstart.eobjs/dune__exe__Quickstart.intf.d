examples/quickstart.mli:
