examples/custom_dsl.ml: Ast Cudagen Flatten Format Graph Interp Kernel List Printf Streamit String Swp_core Types
