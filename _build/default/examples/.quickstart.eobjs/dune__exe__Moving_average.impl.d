examples/moving_average.ml: Ast Flatten Format Frontend Graph Interp List Printf Streamit String Swp_core Types
