examples/fm_pipeline.ml: Benchmarks Flatten Format Gpusim Graph Interp List Option Streamit Swp_core Types
