examples/quickstart.ml: Array Ast Flatten Format Graph Interp Kernel List Result Sdf Streamit String Swp_core Types
