examples/fm_pipeline.mli:
