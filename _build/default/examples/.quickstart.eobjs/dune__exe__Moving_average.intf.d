examples/moving_average.mli:
