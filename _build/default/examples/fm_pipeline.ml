(* FM radio walk-through: the paper's flagship DSP benchmark, executed on
   the interpreter and compared across all three execution schemes
   (optimized SWP, non-coalesced SWPNC, serialized SAS).

   Run with:  dune exec examples/fm_pipeline.exe *)

open Streamit

let arch = Gpusim.Arch.geforce_8800_gts_512

let () =
  let entry = Option.get (Benchmarks.Registry.find "FMRadio") in
  let graph = Flatten.flatten (entry.Benchmarks.Registry.stream ()) in
  Format.printf "FMRadio: %d nodes, %d filters (%d peeking)@."
    (Graph.num_nodes graph)
    (Benchmarks.Registry.our_filters entry)
    (Benchmarks.Registry.our_peeking entry);
  (* Demodulate a synthetic carrier and show a few output samples. *)
  let signal i = sin (0.5 *. float_of_int i) *. cos (0.02 *. float_of_int i) in
  let out =
    Interp.run_steady_states graph
      ~input:(fun i -> Types.VFloat (signal i))
      ~iters:16
  in
  Format.printf "first audio samples:";
  List.iteri
    (fun i v -> if i < 8 then Format.printf " %.4f" (Types.to_float v))
    out;
  Format.printf "@.@.";
  (* Compile under both schemes and time the serial baseline. *)
  let compile scheme = Swp_core.Compile.compile ~scheme ~coarsening:8 graph in
  match
    (compile Swp_core.Compile.Swp_coalesced, compile Swp_core.Compile.Swp_non_coalesced)
  with
  | Ok swp, Ok swpnc ->
    let sp c =
      let gt = Swp_core.Executor.time_swp c in
      match
        Swp_core.Executor.speedup ~arch ~graph
          ~gpu_cycles_per_steady:gt.Swp_core.Executor.cycles_per_steady ()
      with
      | Ok s -> s
      | Error m -> failwith m
    in
    Format.printf "SWP8  speedup: %6.2fx (II = %d cycles, %d pipeline stages)@."
      (sp swp) swp.Swp_core.Compile.schedule.Swp_core.Swp_schedule.ii
      (Swp_core.Swp_schedule.stages swp.Swp_core.Compile.schedule);
    Format.printf "SWPNC speedup: %6.2fx (shared-memory staging where it fits)@."
      (sp swpnc);
    (match
       Swp_core.Executor.time_serial
         ~batch:(64 * swp.Swp_core.Compile.config.Swp_core.Select.scale)
         graph
         ~budget_bytes:swp.Swp_core.Compile.sizing.Swp_core.Buffer_layout.total_bytes
     with
    | Ok st ->
      (match
         Swp_core.Executor.speedup ~arch ~graph
           ~gpu_cycles_per_steady:st.Swp_core.Executor.cycles_per_steady ()
       with
      | Ok s -> Format.printf "Serial speedup: %5.2fx (%d kernel launches/batch)@." s
                  st.Swp_core.Executor.launches
      | Error m -> failwith m)
    | Error m -> Format.printf "serial failed: %s@." m);
    Format.printf "@.buffer requirement (SWP8): %d bytes across %d channels@."
      swp.Swp_core.Compile.sizing.Swp_core.Buffer_layout.total_bytes
      (List.length swp.Swp_core.Compile.sizing.Swp_core.Buffer_layout.per_edge)
  | Error m, _ | _, Error m -> Format.printf "compilation failed: %s@." m
