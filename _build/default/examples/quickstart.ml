(* Quickstart: build a small stream program with the embedded DSL, run it
   on the reference interpreter, compile it for the simulated GPU, and
   look at the resulting software-pipelined schedule.

   Run with:  dune exec examples/quickstart.exe *)

open Streamit

let () =
  (* 1. Define filters with the kernel-IR builder.  A filter declares its
     pop/push (and optionally peek) rates and a work function that may
     only touch its FIFOs through pop/push/peek — the StreamIt model. *)
  let scale =
    Kernel.Build.(
      Kernel.make_filter ~name:"Scale" ~pop:1 ~push:1 [ push (pop *: f 3.0) ])
  in
  let pairs_sum =
    Kernel.Build.(
      Kernel.make_filter ~name:"PairSum" ~pop:2 ~push:1
        [ let_ "a" pop; let_ "b" pop; push (v "a" +: v "b") ])
  in
  (* 2. Compose hierarchically: a pipeline of the two filters.  The
     multirate combination (1->1 feeding 2->1) is resolved by the SDF
     steady-state equations. *)
  let program = Ast.pipeline "quickstart" [ Ast.Filter scale; Ast.Filter pairs_sum ] in
  (* 3. Flatten and inspect. *)
  let graph = Flatten.flatten program in
  Format.printf "%a@.@." Graph.pp graph;
  let rates = Result.get_ok (Sdf.steady_state graph) in
  Format.printf "repetition vector:";
  Array.iteri (fun v k -> Format.printf " %s=%d" (Graph.name graph v) k) rates.Sdf.reps;
  Format.printf "@.@.";
  (* 4. Execute two steady states on the reference interpreter. *)
  let out =
    Interp.run_steady_states graph
      ~input:(fun i -> Types.VFloat (float_of_int i))
      ~iters:2
  in
  Format.printf "interpreter output: %s@.@."
    (String.concat " " (List.map Types.string_of_value out));
  (* 5. Compile for the simulated GeForce 8800: profile (Fig. 6), select
     the execution configuration (Fig. 7), search for the smallest
     feasible II, lay out buffers. *)
  match Swp_core.Compile.compile graph with
  | Error m -> Format.printf "compilation failed: %s@." m
  | Ok c ->
    Format.printf "%a@.@." Swp_core.Compile.pp_summary c;
    Format.printf "%a@.@." (Swp_core.Swp_schedule.pp graph) c.Swp_core.Compile.schedule;
    (* 6. Time it and compare against the single-threaded CPU model. *)
    let gt = Swp_core.Executor.time_swp (Swp_core.Compile.recoarsen c 8) in
    (match
       Swp_core.Executor.speedup ~arch:c.Swp_core.Compile.arch ~graph
         ~gpu_cycles_per_steady:gt.Swp_core.Executor.cycles_per_steady ()
     with
    | Ok s -> Format.printf "SWP8 speedup over single-threaded CPU: %.2fx@." s
    | Error m -> Format.printf "speedup failed: %s@." m)
