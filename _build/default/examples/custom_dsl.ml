(* Building a task-parallel program with splitters and joiners, then
   exploring how the scheduler maps it: a polyphase "vocoder-lite" with
   four parallel band processors, inspected at every compilation stage —
   including the generated CUDA source.

   Run with:  dune exec examples/custom_dsl.exe *)

open Streamit

let band b =
  (* each band applies a different gain and a 2-tap smoother *)
  let gain = 0.5 +. (0.25 *. float_of_int b) in
  Ast.pipeline
    (Printf.sprintf "band%d" b)
    [
      Ast.Filter
        Kernel.Build.(
          Kernel.make_filter
            ~name:(Printf.sprintf "Gain%d" b)
            ~pop:1 ~push:1
            [ push (pop *: f gain) ]);
      Ast.Filter
        Kernel.Build.(
          Kernel.make_filter
            ~name:(Printf.sprintf "Smooth%d" b)
            ~pop:1 ~push:1 ~peek:2
            [ push ((peek (i 0) +: peek (i 1)) *: f 0.5); let_ "_d" pop ]);
    ]

let program =
  Ast.pipeline "vocoder_lite"
    [
      (* deal one sample to each band in turn *)
      Ast.round_robin_sj "analysis"
        [ 1; 1; 1; 1 ]
        (List.init 4 band)
        [ 1; 1; 1; 1 ];
      (* recombine with a windowed sum *)
      Ast.Filter
        Kernel.Build.(
          Kernel.make_filter ~name:"Mix" ~pop:4 ~push:1
            [
              let_ "acc" (f 0.0);
              for_ "j" (i 0) (i 4) [ set "acc" (v "acc" +: pop) ];
              push (v "acc" /: f 4.0);
            ]);
    ]

let () =
  (match Ast.validate program with
  | Ok () -> ()
  | Error m -> failwith m);
  let graph = Flatten.flatten program in
  Format.printf "%a@.@." Graph.pp graph;
  (* run it *)
  let out =
    Interp.run_steady_states graph
      ~input:(fun i -> Types.VFloat (sin (0.2 *. float_of_int i)))
      ~iters:6
  in
  Format.printf "mixed output: %s@.@."
    (String.concat " "
       (List.map (fun v -> Printf.sprintf "%.3f" (Types.to_float v)) out));
  (* compile and show the scheduling internals *)
  match Swp_core.Compile.compile ~num_sms:4 graph with
  | Error m -> Format.printf "compile failed: %s@." m
  | Ok c ->
    let cfg = c.Swp_core.Compile.config in
    Format.printf "%a@.@." (Swp_core.Select.pp_config graph) cfg;
    Format.printf "dependences: %d, ResMII=%d RecMII=%d@."
      (List.length (Swp_core.Instances.deps graph cfg))
      (Swp_core.Mii.res_mii cfg ~num_sms:4)
      (Swp_core.Mii.rec_mii graph cfg);
    Format.printf "%a@.@." (Swp_core.Swp_schedule.pp graph) c.Swp_core.Compile.schedule;
    (* a peek at the generated CUDA *)
    let cuda = Cudagen.Kernel_gen.swp_kernel c in
    let preview =
      String.concat "\n"
        (List.filteri (fun i _ -> i < 25) (String.split_on_char '\n' cuda))
    in
    Format.printf "generated CUDA (first 25 lines):@.%s@.  ...@." preview
