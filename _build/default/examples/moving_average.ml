(* A peeking-filter example written in the *textual* front end: a 3-tap
   moving average followed by a decimator, parsed from StreamIt-like
   source, validated, interpreted, and compiled.

   Run with:  dune exec examples/moving_average.exe *)

open Streamit

let source =
  {|
// 3-tap moving average: peeks a sliding window, pops one sample.
filter Avg3 pop 1 push 1 peek 3 {
  push((peek(0) + peek(1) + peek(2)) / 3.0);
  let _d = pop();
}

// keep every second sample
filter Decimate pop 2 push 1 {
  push(pop());
  let _d = pop();
}

pipeline MovingAverage {
  add Avg3;
  add Decimate;
}
|}

let () =
  let program = Frontend.Parser.parse_program source in
  Format.printf "parsed: %a@.@." Ast.pp program;
  let graph = Flatten.flatten program in
  (* The peeking filter gets peek - pop = 2 zero-valued initial tokens on
     its input channel (zero history), so steady states are self-contained. *)
  List.iter
    (fun (e : Graph.edge) ->
      if e.init_tokens > 0 then
        Format.printf "edge %d -> %d carries %d initial tokens@." e.src e.dst
          e.init_tokens)
    graph.Graph.edges;
  let out =
    Interp.run_steady_states graph
      ~input:(fun i -> Types.VFloat (float_of_int (i * i)))
      ~iters:8
  in
  Format.printf "moving average of squares (every 2nd): %s@."
    (String.concat " "
       (List.map (fun v -> Printf.sprintf "%.2f" (Types.to_float v)) out));
  match Swp_core.Compile.compile graph with
  | Ok c ->
    Format.printf "@.%a@." Swp_core.Compile.pp_summary c
  | Error m -> Format.printf "compile failed: %s@." m
