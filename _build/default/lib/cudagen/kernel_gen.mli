(** Whole-program CUDA source generation (Sec. IV-C).

    Emits the single software-pipelined kernel: one [switch] over the
    block id separates the per-SM code, each SM executes its assigned
    instances in increasing [o(k,v)] order, and instances are guarded by
    the staging predicate of the predicated kernel-only schema (Rau et
    al.), implemented as an array indexed by the instance's stage [f] as
    in the CellBE scheme the paper cites. *)

val splitter_filter : Streamit.Ast.splitter -> int -> Streamit.Kernel.filter
(** The data-movement work function a splitter node lowers to. *)

val joiner_filter : int list -> Streamit.Kernel.filter

val swp_kernel : Swp_core.Compile.compiled -> string
(** The complete [__global__] kernel plus all device work functions. *)

val profile_driver : Streamit.Kernel.filter -> numfirings:int -> string
(** Stand-alone profiling executable source for one filter (phase 1 of
    Fig. 5): a kernel that fires the filter [numfirings/blockDim.x]
    times per thread, plus a [main] timing it with CUDA events. *)

val program : Swp_core.Compile.compiled -> string
(** Full compilation unit: headers, work functions, the SWP kernel and a
    host [main] that allocates the channel buffers (Table II sizes),
    shuffles the input buffer per eq. (9) and launches the kernel. *)
