lib/cudagen/emit.ml: Array Buffer Hashtbl Kernel List Printf Streamit String Types
