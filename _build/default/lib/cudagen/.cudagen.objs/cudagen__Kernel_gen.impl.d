lib/cudagen/kernel_gen.ml: Array Ast Buffer Emit Graph Kernel List Printf Streamit String Swp_core
