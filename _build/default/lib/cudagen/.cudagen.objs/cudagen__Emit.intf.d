lib/cudagen/emit.mli: Streamit
