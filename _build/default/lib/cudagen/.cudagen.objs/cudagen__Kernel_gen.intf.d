lib/cudagen/kernel_gen.mli: Streamit Swp_core
