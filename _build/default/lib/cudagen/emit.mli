(** CUDA C emission of kernel-IR work functions.

    Lowers {!Streamit.Kernel} work functions to the C-like CUDA source the
    paper's modified StreamIt compiler generates and hands to nvcc.  The
    channel primitives [pop()/push()/peek()] become indexed device-memory
    accesses through the buffer-layout index maps of Sec. IV-D (eqs. (10)
    and (11)), or plain sequential indices for the non-coalesced baseline.

    Pops are lowered by hoisting them, in evaluation order, into numbered
    temporaries ahead of each statement, which keeps C evaluation order
    irrelevant.  Pops inside conditional-expression arms are rejected
    (they would execute unconditionally after hoisting). *)

type buffer_style =
  | Coalesced_indices  (** eqs. (10) and (11) *)
  | Natural_indices

exception Unsupported of string

val c_ident : string -> string
(** Mangles an arbitrary filter/variable name into a valid C identifier. *)

val work_fn_name : Streamit.Kernel.filter -> string

val c_of_filter : ?style:buffer_style -> Streamit.Kernel.filter -> string
(** A [__device__] function implementing one firing of the filter:
    [static __device__ void work_<name>(const T* in, T* out, int tid)],
    with constant tables emitted as [__constant__] arrays.
    @raise Unsupported on IR the C lowering cannot express. *)
