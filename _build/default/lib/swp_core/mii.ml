let res_mii (cfg : Select.config) ~num_sms =
  let total = ref 0 in
  Array.iteri (fun v k -> total := !total + (k * cfg.Select.delay.(v))) cfg.Select.reps;
  Numeric.Intmath.cdiv !total num_sms

(* Longest-path feasibility of the difference system at a candidate T:
   edge weight d_src + T*jlag; infeasible iff a positive cycle exists. *)
let feasible_at g cfg deps t =
  let n = Instances.num_instances cfg in
  let dist = Array.make n 0 in
  let edges =
    List.map
      (fun (d : Instances.dep) ->
        ( Instances.index cfg d.src,
          Instances.index cfg d.dst,
          d.d_src + (t * d.jlag) ))
      deps
  in
  ignore g;
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters <= n do
    changed := false;
    incr iters;
    List.iter
      (fun (s, d, w) ->
        if dist.(s) + w > dist.(d) then begin
          dist.(d) <- dist.(s) + w;
          changed := true
        end)
      edges
  done;
  not !changed

let rec_mii g cfg =
  let deps = Instances.deps g cfg in
  (* Cycles require a loop-carried (jlag < 0) dependence; without one the
     dependence DAG is acyclic and RecMII is 0. *)
  if feasible_at g cfg deps 0 then 0
  else begin
    let hi = ref 1 in
    while not (feasible_at g cfg deps !hi) do
      hi := !hi * 2
    done;
    let lo = ref (!hi / 2) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if feasible_at g cfg deps mid then hi := mid else lo := mid
    done;
    !hi
  end

let lower_bound g cfg ~num_sms =
  (* Constraint (4) — no wrap-around — needs T > d(v) for every scheduled
     node, on top of the resource and recurrence bounds. *)
  let max_delay =
    Array.fold_left
      (fun acc d -> max acc d)
      0
      (Array.mapi
         (fun v d -> if cfg.Select.reps.(v) > 0 then d else 0)
         cfg.Select.delay)
  in
  max (max_delay + 1) (max 1 (max (res_mii cfg ~num_sms) (rec_mii g cfg)))
