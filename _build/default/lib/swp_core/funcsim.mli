(** Functional (token-level) simulation of a compiled software-pipelined
    schedule through physically laid-out device buffers.

    Where {!Executor} answers "how long does the schedule take", this
    module answers "does it compute the right thing through the actual
    memory layout":

    - every channel gets a device buffer of [stages + 2] steady-state
      regions, each region laid out by the producer's shuffled index map
      (eqs. (9)-(11) via {!Buffer_layout.addr_of_token});
    - instances execute in linear-schedule order ([T*(j+f) + o]), each
      macro firing running [threads(v)] thread firings whose pops, peeks
      and pushes resolve to physical buffer addresses exactly as the
      generated CUDA kernel's index expressions would;
    - the external input is read in FIFO order (the host-side shuffle of
      eq. (9) is a semantic identity) and the exit node's pushes are
      collected in FIFO order.

    Because the work-function evaluator is shared with the reference
    interpreter ({!Streamit.Interp.exec_filter_firing}), any output
    difference between the two backends isolates a buffer-layout or
    scheduling bug — this is the end-to-end validation of Sec. IV-D.

    Reads of tokens never produced (schedule bugs, ring-buffer overwrites)
    raise {!Uninitialized_read} rather than returning garbage. *)

exception Uninitialized_read of string

val run :
  Compile.compiled ->
  input:(int -> Streamit.Types.value) ->
  iters:int ->
  Streamit.Types.value list
(** Executes [iters] macro steady states and returns the output tape.
    Note one macro steady state covers [config.scale] original steady
    states. *)

val matches_interpreter :
  Compile.compiled ->
  input:(int -> Streamit.Types.value) ->
  iters:int ->
  (unit, string) result
(** Runs both backends over the same input and compares tapes
    value-by-value (exact for ints, small relative tolerance for
    floats). *)
