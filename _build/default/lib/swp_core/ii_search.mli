(** Initiation-interval search loop (Sec. V-B).

    The paper's methodology: start at the lower bound
    [max(ResMII, RecMII)], allot the solver a fixed budget, and on
    failure relax the II by 0.5% (at least 1 cycle) and retry.  We keep
    the same loop; the budget is a branch-and-bound node budget instead
    of 20 wall-clock seconds, and a heuristic modulo scheduler can be
    tried at each candidate II before or instead of the exact ILP. *)

type solver =
  | Exact of int     (** ILP with the given node budget per candidate II *)
  | Heuristic
  | Auto of int
      (** heuristic first; when it fails at a candidate II and the
          problem is small enough for branch-and-bound (at most 96
          assignment variables), try the exact ILP with the given budget
          before relaxing *)

type stats = {
  lower_bound : int;       (** the starting II *)
  achieved_ii : int;
  attempts : int;          (** candidate IIs tried *)
  relaxation : float;      (** (achieved - bound) / bound *)
  used_exact : bool;       (** whether the returned schedule came from the ILP *)
}

val search :
  ?solver:solver ->
  ?relax_step:float ->
  ?max_relax:float ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  (Swp_schedule.t * stats, string) result
(** Defaults: [solver = Auto 2000], [relax_step = 0.005] (the paper's
    0.5%), [max_relax = 4.0] (give up beyond 5x the bound). *)
