open Numeric

type var_map = {
  w : (int * int * int, int) Hashtbl.t;
  o : (int * int, int) Hashtbl.t;
  f : (int * int, int) Hashtbl.t;
}

let q = Rat.of_int

let build g (cfg : Select.config) ~num_sms ~ii =
  let insts = Instances.instances cfg in
  let deps = Instances.deps g cfg in
  (* Quick infeasibility: constraint (4) requires o >= 0 and o + d < T. *)
  let too_slow =
    List.find_opt
      (fun (i : Instances.instance) -> cfg.delay.(i.node) >= ii)
      insts
  in
  match too_slow with
  | Some i ->
    Error
      (Printf.sprintf "delay of %s (%d) exceeds II %d"
         (Streamit.Graph.name g i.node) cfg.delay.(i.node) ii)
  | None ->
    let p = Lp.Problem.create () in
    let vm = { w = Hashtbl.create 64; o = Hashtbl.create 64; f = Hashtbl.create 64 } in
    (* Stage variables are bounded by the pipeline depth, which cannot
       usefully exceed the instance count. *)
    let f_ub = Rat.of_int (Instances.num_instances cfg + 1) in
    List.iter
      (fun (i : Instances.instance) ->
        for sm = 0 to num_sms - 1 do
          let id =
            Lp.Problem.add_var p ~kind:Lp.Problem.Binary
              (Printf.sprintf "w_%d_%d_%d" i.node i.k sm)
          in
          Hashtbl.replace vm.w (i.node, i.k, sm) id
        done;
        let oid =
          Lp.Problem.add_var p ~kind:Lp.Problem.Integer
            ~ub:(Some (q (ii - 1 - cfg.delay.(i.node))))
            (Printf.sprintf "o_%d_%d" i.node i.k)
        in
        Hashtbl.replace vm.o (i.node, i.k) oid;
        let fid =
          Lp.Problem.add_var p ~kind:Lp.Problem.Integer ~ub:(Some f_ub)
            (Printf.sprintf "f_%d_%d" i.node i.k)
        in
        Hashtbl.replace vm.f (i.node, i.k) fid)
      insts;
    (* (1) each instance on exactly one SM *)
    List.iter
      (fun (i : Instances.instance) ->
        let e =
          Lp.Linexpr.of_terms
            (List.init num_sms (fun sm ->
                 (Rat.one, Hashtbl.find vm.w (i.node, i.k, sm))))
        in
        Lp.Problem.add_constraint p
          ~name:(Printf.sprintf "assign_%d_%d" i.node i.k)
          e Lp.Problem.Eq Lp.Linexpr.(of_int 1))
      insts;
    (* (2) per-SM load within the II *)
    for sm = 0 to num_sms - 1 do
      let e =
        Lp.Linexpr.of_terms
          (List.map
             (fun (i : Instances.instance) ->
               (q cfg.delay.(i.node), Hashtbl.find vm.w (i.node, i.k, sm)))
             insts)
      in
      Lp.Problem.add_constraint p
        ~name:(Printf.sprintf "resource_%d" sm)
        e Lp.Problem.Le
        (Lp.Linexpr.of_int ii)
    done;
    (* Symmetry breaking: pin the first instance to SM 0 (any solution
       can be permuted into this form). *)
    (match insts with
    | first :: _ ->
      Lp.Problem.add_constraint p ~name:"symmetry"
        (Lp.Linexpr.var (Hashtbl.find vm.w (first.node, first.k, 0)))
        Lp.Problem.Eq
        Lp.Linexpr.(of_int 1)
    | [] -> ());
    (* (7) + (8) per dependence *)
    List.iteri
      (fun di (dep : Instances.dep) ->
        let u = dep.src.Instances.node and ku = dep.src.Instances.k in
        let v = dep.dst.Instances.node and kv = dep.dst.Instances.k in
        let fu = Hashtbl.find vm.f (u, ku)
        and fv = Hashtbl.find vm.f (v, kv)
        and ou = Hashtbl.find vm.o (u, ku)
        and ov = Hashtbl.find vm.o (v, kv) in
        (* Self-dependences (an instance with itself, only possible via
           loop-carried edges) never cross SMs. *)
        if u = v && ku = kv then begin
          (* A >= A + T*jlag + d  =>  0 >= T*jlag + d *)
          if (ii * dep.jlag) + dep.d_src > 0 then
            Lp.Problem.add_constraint p
              ~name:(Printf.sprintf "dep%d_self_infeasible" di)
              (Lp.Linexpr.of_int 1) Lp.Problem.Le
              (Lp.Linexpr.of_int 0)
        end
        else begin
          let gid =
            Lp.Problem.add_var p ~kind:Lp.Problem.Binary
              (Printf.sprintf "g_%d" di)
          in
          for sm = 0 to num_sms - 1 do
            let wu = Hashtbl.find vm.w (u, ku, sm)
            and wv = Hashtbl.find vm.w (v, kv, sm) in
            (* g >= wv - wu ; g >= wu - wv *)
            Lp.Problem.add_constraint p
              ~name:(Printf.sprintf "dep%d_g_a_%d" di sm)
              (Lp.Linexpr.of_terms
                 [ (Rat.one, gid); (Rat.one, wu); (Rat.minus_one, wv) ])
              Lp.Problem.Ge (Lp.Linexpr.of_int 0);
            Lp.Problem.add_constraint p
              ~name:(Printf.sprintf "dep%d_g_b_%d" di sm)
              (Lp.Linexpr.of_terms
                 [ (Rat.one, gid); (Rat.one, wv); (Rat.minus_one, wu) ])
              Lp.Problem.Ge (Lp.Linexpr.of_int 0)
          done;
          (* (8a): T*fv + ov >= T*(jlag + fu) + ou + d(u) *)
          Lp.Problem.add_constraint p
            ~name:(Printf.sprintf "dep%d_time" di)
            (Lp.Linexpr.of_terms
               [
                 (q ii, fv);
                 (Rat.one, ov);
                 (q (-ii), fu);
                 (Rat.minus_one, ou);
               ])
            Lp.Problem.Ge
            (Lp.Linexpr.of_int ((ii * dep.jlag) + dep.d_src));
          (* (8b): T*fv + ov >= T*(jlag + fu + g) *)
          Lp.Problem.add_constraint p
            ~name:(Printf.sprintf "dep%d_cross" di)
            (Lp.Linexpr.of_terms
               [
                 (q ii, fv);
                 (Rat.one, ov);
                 (q (-ii), fu);
                 (q (-ii), gid);
               ])
            Lp.Problem.Ge
            (Lp.Linexpr.of_int (ii * dep.jlag))
        end)
      deps;
    Ok (p, vm)

let solve ?(node_budget = 4000) ?time_budget_s g cfg ~num_sms ~ii =
  match build g cfg ~num_sms ~ii with
  | Error _ -> `Infeasible
  | Ok (p, vm) -> (
    match Lp.Branch_bound.solve ~node_budget ?time_budget_s p with
    | Lp.Solution.Infeasible, _ -> `Infeasible
    | Lp.Solution.Unbounded, _ ->
      (* feasibility problem over bounded variables; cannot happen *)
      assert false
    | Lp.Solution.Budget_exhausted _, _ -> `Budget_exhausted
    | Lp.Solution.Optimal sol, _ ->
      let entries =
        List.map
          (fun (i : Instances.instance) ->
            let sm = ref (-1) in
            for s = 0 to num_sms - 1 do
              if
                Lp.Solution.value_int sol (Hashtbl.find vm.w (i.node, i.k, s))
                = 1
              then sm := s
            done;
            {
              Swp_schedule.inst = i;
              sm = !sm;
              o = Lp.Solution.value_int sol (Hashtbl.find vm.o (i.node, i.k));
              f = Lp.Solution.value_int sol (Hashtbl.find vm.f (i.node, i.k));
            })
          (Instances.instances cfg)
      in
      let sched = { Swp_schedule.ii; entries; num_sms; config = cfg } in
      (match Swp_schedule.validate g sched with
      | Ok () -> `Schedule sched
      | Error m -> failwith ("Ilp.solve: solver returned invalid schedule: " ^ m)))
