(** End-to-end compilation pipeline (Fig. 5 of the paper):

    profile every filter → select the execution configuration → generate
    the scheduling constraints → search for the smallest feasible II →
    lay out buffers.  The result carries everything code generation
    ({!Cudagen}) and the timing executor ({!Executor}) need. *)

type scheme =
  | Swp_coalesced       (** the paper's optimized scheme *)
  | Swp_non_coalesced   (** SWPNC baseline: no memory-access coalescing *)

type compiled = {
  arch : Gpusim.Arch.t;
  scheme : scheme;
  graph : Streamit.Graph.t;
  rates : Streamit.Sdf.rates;
  profile : Profile.data;
  config : Select.config;
  schedule : Swp_schedule.t;
  search_stats : Ii_search.stats;
  sizing : Buffer_layout.sizing;
  coarsening : int;
}

val compile :
  ?arch:Gpusim.Arch.t ->
  ?num_sms:int ->
  ?coarsening:int ->
  ?solver:Ii_search.solver ->
  ?scheme:scheme ->
  Streamit.Graph.t ->
  (compiled, string) result
(** Defaults: the GeForce 8800 GTS 512 with all 16 SMs, coarsening 1,
    [Auto] solver, coalesced scheme. *)

val recoarsen : compiled -> int -> compiled
(** Same schedule with a different coarsening factor (SWPn of Fig. 11);
    only the buffer sizing changes — coarsening multiplies every delay by
    the same factor and therefore preserves schedule optimality, as the
    paper argues. *)

val layout_of_node : compiled -> Streamit.Graph.node -> Gpusim.Timing.layout
(** The buffer layout each node's channel accesses use under this
    compilation scheme. *)

val pp_summary : Format.formatter -> compiled -> unit
