(** ILP formulation of the scheduling-and-assignment problem (Sec. III).

    For a candidate initiation interval [T], generates exactly the
    constraint system of the paper:

    - 0-1 assignment variables [w(k,v,p)] with constraint (1);
    - resource constraint (2) per SM;
    - offset variables [o(k,v)] with the no-wrap constraint (4);
    - stage variables [f(k,v)];
    - cross-SM indicators [g] defined by the pairs of inequalities (7);
    - the two dependence systems (8).

    The problem is a pure feasibility ILP (constant objective), solved by
    {!Lp.Branch_bound} — our CPLEX stand-in — under a node budget that
    mirrors the paper's 20-second allotment. *)

type var_map = {
  w : (int * int * int, int) Hashtbl.t;  (** (node, k, sm) -> variable id *)
  o : (int * int, int) Hashtbl.t;        (** (node, k) -> variable id *)
  f : (int * int, int) Hashtbl.t;
}

val build :
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  ii:int ->
  (Lp.Problem.t * var_map, string) result
(** [Error] when the II is trivially infeasible (some delay exceeds it). *)

val solve :
  ?node_budget:int ->
  ?time_budget_s:float ->
  Streamit.Graph.t ->
  Select.config ->
  num_sms:int ->
  ii:int ->
  [ `Schedule of Swp_schedule.t | `Infeasible | `Budget_exhausted ]
(** Builds, solves, decodes and {e validates} the schedule before
    returning it. *)
