(** Software-pipelined schedules: the solution of the scheduling problem
    of Sec. III, however it was obtained (exact ILP or heuristic).

    Every instance [(v, k)] carries its SM assignment [sm] (the [w]
    variables), its offset [o] within the kernel and its stage [f], so
    that the linear-form start time of iteration [j] is
    [T*(j + f) + o] (eq. (3)). *)

type entry = {
  inst : Instances.instance;
  sm : int;
  o : int;
  f : int;
}

type t = {
  ii : int;                (** initiation interval T *)
  entries : entry list;
  num_sms : int;
  config : Select.config;
}

val find : t -> Instances.instance -> entry
(** @raise Not_found if the instance is not scheduled. *)

val stages : t -> int
(** [1 + max f]: pipeline depth in steady-state iterations. *)

val sm_load : t -> int array
(** Total delay scheduled on each SM — the left side of constraint (2). *)

val validate : Streamit.Graph.t -> t -> (unit, string) result
(** Checks the full constraint system of Sec. III on the schedule:
    every instance on exactly one SM (1); per-SM load within II (2); no
    wrap-around, [o + d(v) < T] (4); and every dependence satisfied,
    including the extra iteration of separation when producer and
    consumer sit on different SMs (8).  This is the shared oracle the
    ILP and heuristic solvers are both tested against. *)

val pp : Streamit.Graph.t -> Format.formatter -> t -> unit
