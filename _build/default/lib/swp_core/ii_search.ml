type solver = Exact of int | Heuristic | Auto of int

type stats = {
  lower_bound : int;
  achieved_ii : int;
  attempts : int;
  relaxation : float;
  used_exact : bool;
}

let search ?(solver = Auto 2000) ?(relax_step = 0.005) ?(max_relax = 4.0) g cfg
    ~num_sms =
  let lb = Mii.lower_bound g cfg ~num_sms in
  (* the exact ILP is only worth its cost near the II lower bound, where
     the heuristic's packing granularity is the limiting factor *)
  let near_bound ii = ii <= lb + (lb / 50) + 2 in
  let try_at ii =
    match solver with
    | Heuristic -> (
      match Heuristic.solve g cfg ~num_sms ~ii with
      | `Schedule s -> Some (s, false)
      | `Infeasible -> None)
    | Exact budget -> (
      match Ilp.solve ~node_budget:budget ~time_budget_s:20.0 g cfg ~num_sms ~ii with
      | `Schedule s -> Some (s, true)
      | `Infeasible | `Budget_exhausted -> None)
    | Auto budget -> (
      match Heuristic.solve g cfg ~num_sms ~ii with
      | `Schedule s -> Some (s, false)
      | `Infeasible ->
        (* The exact ILP is only worth invoking on problems small enough
           for the branch-and-bound to stand a chance within its budget
           (the assignment variables alone number instances x SMs). *)
        if Instances.num_instances cfg * num_sms > 96 || not (near_bound ii)
        then None
        else (
          match
            Ilp.solve ~node_budget:budget ~time_budget_s:1.0 g cfg ~num_sms ~ii
          with
          | `Schedule s -> Some (s, true)
          | `Infeasible | `Budget_exhausted -> None))
  in
  let max_ii = int_of_float (float_of_int lb *. (1.0 +. max_relax)) + 1 in
  let rec loop ii attempts =
    if ii > max_ii then
      Error
        (Printf.sprintf "no feasible schedule up to II=%d (bound %d)" max_ii lb)
    else
      match try_at ii with
      | Some (s, used_exact) ->
        Ok
          ( s,
            {
              lower_bound = lb;
              achieved_ii = ii;
              attempts;
              relaxation = float_of_int (ii - lb) /. float_of_int (max 1 lb);
              used_exact;
            } )
      | None ->
        let next =
          max (ii + 1)
            (int_of_float (Float.round (float_of_int ii *. (1.0 +. relax_step))))
        in
        loop next (attempts + 1)
  in
  loop lb 1
