open Streamit
open Types

exception Uninitialized_read of string

(* Physical storage for one channel: a ring of [regions] steady-state
   regions, each laid out per the producer's shuffled pattern. *)
type chan = {
  edge : Graph.edge;
  prod_rate : int;     (* tokens per thread-firing of the producer *)
  prod_threads : int;
  region_tokens : int; (* O' x reps(src) = one steady state *)
  inst_tokens : int;   (* O' = prod_rate x prod_threads *)
  init : value array;
  regions : int;
  buf : value option array;
}

let addr_of_produced ch s =
  let iter = s / ch.region_tokens in
  let within = s mod ch.region_tokens in
  let inst = within / ch.inst_tokens in
  let off = within mod ch.inst_tokens in
  ((iter mod ch.regions) * ch.region_tokens)
  + (inst * ch.inst_tokens)
  + Buffer_layout.addr_of_token ~push_rate:ch.prod_rate
      ~threads:ch.prod_threads off

let write_chan ch s v = ch.buf.(addr_of_produced ch s) <- Some v

(* [c] is in *consumed* stream coordinates: initial tokens first, then the
   produced stream. *)
let read_chan ch c =
  if c < Array.length ch.init then ch.init.(c)
  else begin
    let s = c - Array.length ch.init in
    match ch.buf.(addr_of_produced ch s) with
    | Some v -> v
    | None ->
      raise
        (Uninitialized_read
           (Printf.sprintf "edge %d.%d -> %d.%d token %d" ch.edge.Graph.src
              ch.edge.Graph.src_port ch.edge.Graph.dst ch.edge.Graph.dst_port s))
  end

let run (c : Compile.compiled) ~input ~iters =
  let g = c.Compile.graph in
  let cfg = c.Compile.config in
  let sched = c.Compile.schedule in
  let stages = Swp_schedule.stages sched in
  let regions = stages + 2 in
  let chans =
    List.map
      (fun (e : Graph.edge) ->
        let prod_rate = Graph.production g e in
        let prod_threads = cfg.Select.threads.(e.Graph.src) in
        let inst_tokens = prod_rate * prod_threads in
        let region_tokens = inst_tokens * cfg.Select.reps.(e.Graph.src) in
        ( e,
          {
            edge = e;
            prod_rate;
            prod_threads;
            region_tokens;
            inst_tokens;
            init = Array.of_list e.Graph.init_values;
            regions;
            buf = Array.make (regions * region_tokens) None;
          } ))
      g.Graph.edges
  in
  let in_chan v port =
    List.find_map
      (fun ((e : Graph.edge), ch) ->
        if e.Graph.dst = v && e.Graph.dst_port = port then Some ch else None)
      chans
  in
  let out_chan v port =
    List.find_map
      (fun ((e : Graph.edge), ch) ->
        if e.Graph.src = v && e.Graph.src_port = port then Some ch else None)
      chans
  in
  (* output tape of the exit node, indexed in FIFO order *)
  let out_tokens_per_iter =
    match g.Graph.exit_ with
    | None -> 0
    | Some v ->
      Graph.push_rate_of (Graph.node g v)
      * cfg.Select.threads.(v) * cfg.Select.reps.(v)
  in
  let out_tape = Array.make (max 1 (out_tokens_per_iter * iters)) None in
  (* persistent state of stateful filters, one copy per node *)
  let node_state = Hashtbl.create 8 in
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.kind with
      | Graph.NFilter f when Kernel.is_stateful f ->
        Hashtbl.replace node_state nd.Graph.id
          (List.map (fun (n, a) -> (n, Array.copy a)) f.Kernel.state)
      | _ -> ())
    g.Graph.nodes;
  (* Execute one thread-firing of instance (v, k) in iteration j. *)
  let fire_thread v k j tid =
    let node = Graph.node g v in
    let threads = cfg.Select.threads.(v) in
    let is_entry = g.Graph.entry = Some v in
    let is_exit = g.Graph.exit_ = Some v in
    (* consumed-stream base for an input port of per-thread rate [r] *)
    let in_base r = ((j * cfg.Select.reps.(v)) + k) * (r * threads) + (tid * r) in
    let out_base r = in_base r (* same shape on the producer side *) in
    let read_port port r n =
      match in_chan v port with
      | Some ch -> read_chan ch (in_base r + n)
      | None ->
        if is_entry then input (in_base r + n)
        else failwith "Funcsim: unwired input port"
    in
    let write_port port r n value =
      match out_chan v port with
      | Some ch -> write_chan ch (out_base r + n) value
      | None ->
        if is_exit then begin
          let idx = out_base r + n in
          if idx < Array.length out_tape then out_tape.(idx) <- Some value
        end
        else failwith "Funcsim: unwired output port"
    in
    match node.Graph.kind with
    | Graph.NFilter f ->
      let pops = ref 0 in
      let pushes = ref 0 in
      let state =
        match Hashtbl.find_opt node_state v with Some s -> s | None -> []
      in
      Interp.exec_filter_firing ~state f
        ~pop:(fun () ->
          let v = read_port 0 f.Kernel.pop_rate !pops in
          incr pops;
          v)
        ~peek:(fun d -> read_port 0 f.Kernel.pop_rate (!pops + d))
        ~push:(fun v ->
          write_port 0 f.Kernel.push_rate !pushes v;
          incr pushes)
    | Graph.NSplitter (Ast.Duplicate, branches) ->
      let v0 = read_port 0 1 0 in
      for p = 0 to branches - 1 do
        write_port p 1 0 v0
      done
    | Graph.NSplitter (Ast.Round_robin ws, _) ->
      let sum = List.fold_left ( + ) 0 ws in
      let consumed = ref 0 in
      List.iteri
        (fun p w ->
          for n = 0 to w - 1 do
            write_port p w n (read_port 0 sum !consumed);
            incr consumed
          done)
        ws
    | Graph.NJoiner ws ->
      let sum = List.fold_left ( + ) 0 ws in
      let produced = ref 0 in
      List.iteri
        (fun p w ->
          for n = 0 to w - 1 do
            write_port 0 sum !produced (read_port p w n);
            incr produced
          done)
        ws
  in
  (* Entries in start-time order within a kernel iteration. *)
  let ordered =
    List.sort
      (fun (a : Swp_schedule.entry) b -> compare (a.o, a.f) (b.o, b.f))
      sched.Swp_schedule.entries
  in
  (* Kernel iteration w runs stage f's instances on steady state w - f,
     exactly as the staging predicates of the generated kernel do. *)
  for w = 0 to iters + stages - 1 do
    List.iter
      (fun (e : Swp_schedule.entry) ->
        let j = w - e.f in
        if j >= 0 && j < iters then
          for tid = 0 to cfg.Select.threads.(e.inst.Instances.node) - 1 do
            fire_thread e.inst.Instances.node e.inst.Instances.k j tid
          done)
      ordered
  done;
  if out_tokens_per_iter = 0 then []
  else
    List.init (out_tokens_per_iter * iters) (fun i ->
        match out_tape.(i) with
        | Some v -> v
        | None ->
          raise
            (Uninitialized_read (Printf.sprintf "output token %d never written" i)))

let matches_interpreter c ~input ~iters =
  try
    let dev = run c ~input ~iters in
    let scale = c.Compile.config.Select.scale in
    let reference =
      Interp.run_steady_states c.Compile.graph ~input ~iters:(iters * scale)
    in
    if List.length dev <> List.length reference then
      Error
        (Printf.sprintf "length mismatch: device %d vs interpreter %d"
           (List.length dev) (List.length reference))
    else begin
      let bad = ref None in
      List.iteri
        (fun i (d : value) ->
          let r = List.nth reference i in
          if !bad = None && not (value_close ~eps:1e-4 d r) then
            bad :=
              Some
                (Printf.sprintf "token %d: device %s vs interpreter %s" i
                   (string_of_value d) (string_of_value r)))
        dev;
      match !bad with None -> Ok () | Some m -> Error m
    end
  with Uninitialized_read m -> Error ("uninitialized read: " ^ m)
