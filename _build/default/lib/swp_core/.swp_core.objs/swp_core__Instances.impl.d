lib/swp_core/instances.ml: Array Hashtbl Intmath List Numeric Select Streamit
