lib/swp_core/buffer_layout.ml: Array List Select Streamit Swp_schedule
