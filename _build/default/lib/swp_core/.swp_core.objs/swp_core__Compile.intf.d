lib/swp_core/compile.mli: Buffer_layout Format Gpusim Ii_search Profile Select Streamit Swp_schedule
