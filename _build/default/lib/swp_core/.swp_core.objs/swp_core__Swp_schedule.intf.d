lib/swp_core/swp_schedule.mli: Format Instances Select Streamit
