lib/swp_core/select.ml: Array Float Format Intmath List Numeric Profile Streamit
