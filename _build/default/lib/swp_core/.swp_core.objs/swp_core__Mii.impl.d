lib/swp_core/mii.ml: Array Instances List Numeric Select
