lib/swp_core/profile.ml: Arch Array Gpusim List Numeric Streamit Timing
