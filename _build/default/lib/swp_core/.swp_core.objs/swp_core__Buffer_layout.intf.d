lib/swp_core/buffer_layout.mli: Select Streamit Swp_schedule
