lib/swp_core/instances.mli: Select Streamit
