lib/swp_core/swp_schedule.ml: Array Format Hashtbl Instances List Printf Select Streamit
