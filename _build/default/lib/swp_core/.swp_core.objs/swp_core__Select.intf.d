lib/swp_core/select.mli: Format Profile Streamit
