lib/swp_core/ii_search.mli: Select Streamit Swp_schedule
