lib/swp_core/mii.mli: Select Streamit
