lib/swp_core/ilp.ml: Array Hashtbl Instances List Lp Numeric Printf Rat Select Streamit Swp_schedule
