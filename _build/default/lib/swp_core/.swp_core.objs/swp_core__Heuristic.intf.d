lib/swp_core/heuristic.mli: Select Streamit Swp_schedule
