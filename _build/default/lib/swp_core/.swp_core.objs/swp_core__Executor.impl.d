lib/swp_core/executor.ml: Arch Array Compile Cpu_model Gpusim Instances List Option Select Streamit Swp_schedule Timing
