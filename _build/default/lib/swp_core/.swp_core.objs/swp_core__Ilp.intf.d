lib/swp_core/ilp.mli: Hashtbl Lp Select Streamit Swp_schedule
