lib/swp_core/compile.ml: Array Buffer_layout Format Gpusim Ii_search Instances Option Profile Result Select Streamit Swp_schedule
