lib/swp_core/funcsim.ml: Array Ast Buffer_layout Compile Graph Hashtbl Instances Interp Kernel List Printf Select Streamit Swp_schedule Types
