lib/swp_core/funcsim.mli: Compile Streamit
