lib/swp_core/profile.mli: Gpusim Streamit
