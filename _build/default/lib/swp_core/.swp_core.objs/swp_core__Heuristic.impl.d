lib/swp_core/heuristic.ml: Array Fun Instances List Select Swp_schedule
