lib/swp_core/executor.mli: Compile Gpusim Streamit
