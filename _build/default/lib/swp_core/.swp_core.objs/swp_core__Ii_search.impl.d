lib/swp_core/ii_search.ml: Float Heuristic Ilp Instances Mii Printf
