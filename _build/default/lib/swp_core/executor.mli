(** Timing execution of compiled schedules on the simulated GPU, and the
    speedup accounting of Sec. V.

    The executor serialises each SM's instances (in [o] order) using the
    per-pass timing model, then applies the two schedule-level effects the
    profile cannot see: cross-SM device-memory bandwidth contention within
    an II (every SM's traffic shares one bus — the paper's "second-order
    effect"), and per-kernel costs (launch overhead plus pipeline
    fill/drain of [stages] iterations), which coarsening amortises
    (Fig. 11). *)

type gpu_time = {
  ii_cycles : int;          (** achieved II including bus contention & sync *)
  sm_cycles : int array;    (** per-SM busy time within one II *)
  bus_cycles : int;         (** bus-bound lower limit of the II *)
  kernel_cycles : int;      (** one kernel launch: fill + n steady states *)
  cycles_per_steady : float;
      (** amortised cycles per {e original} (pre-scaling) steady state *)
}

val time_swp : Compile.compiled -> gpu_time

type serial_time = {
  batch : int;              (** steady states per pass under the buffer budget *)
  launches : int;           (** kernel launches per batch (one per node) *)
  total_cycles : float;     (** cycles for one batch *)
  cycles_per_steady : float;(** per original steady state *)
  buffer_bytes : int;
}

val time_serial :
  ?arch:Gpusim.Arch.t ->
  ?batch:int ->
  Streamit.Graph.t ->
  budget_bytes:int ->
  (serial_time, string) result
(** The paper's [Serial] baseline: each filter runs as its own fully
    data-parallel kernel over a Single Appearance Schedule, with memory
    coalescing and 16 blocks.  [batch] is the number of steady states
    resident on the device per SAS round — callers pass the SWP8
    kernel's working set (coarsening x scale) so both schemes process
    the same amount of data per launch cycle; it is additionally capped
    so SAS buffer usage stays within [budget_bytes] (Sec. V-A). *)

val cpu_cycles_per_steady :
  ?model:Gpusim.Cpu_model.t -> Streamit.Graph.t -> (float, string) result
(** Single-threaded CPU cycles for one original steady state. *)

val speedup :
  ?model:Gpusim.Cpu_model.t ->
  arch:Gpusim.Arch.t ->
  graph:Streamit.Graph.t ->
  gpu_cycles_per_steady:float ->
  unit ->
  (float, string) result
(** [t_host / t_gpu] with both sides converted to seconds at their
    respective clock rates — the paper's speedup definition. *)
