type t = {
  name : string;
  num_sms : int;
  sus_per_sm : int;
  warp_size : int;
  max_threads_per_sm : int;
  max_threads_per_block : int;
  max_blocks_per_sm : int;
  registers_per_sm : int;
  shared_mem_per_sm : int;
  shared_mem_banks : int;
  dram_latency : int;
  dram_bytes_per_cycle : int;
  min_transaction_bytes : int;
  segment_bytes : int;
  kernel_launch_cycles : int;
  sync_cycles : int;
  core_clock_ghz : float;
  cost_alu : int;
  cost_mul : int;
  cost_divmod : int;
  cost_special : int;
  cost_shared_mem : int;
}

let geforce_8800_gts_512 =
  {
    name = "GeForce 8800 GTS 512";
    num_sms = 16;
    sus_per_sm = 8;
    warp_size = 32;
    max_threads_per_sm = 768;
    max_threads_per_block = 512;
    max_blocks_per_sm = 8;
    registers_per_sm = 8192;
    shared_mem_per_sm = 16384;
    shared_mem_banks = 16;
    dram_latency = 450;
    (* ~62 GB/s at 1.625 GHz core clock ~= 38 B/cycle *)
    dram_bytes_per_cycle = 38;
    min_transaction_bytes = 32;
    segment_bytes = 64;
    (* ~16 us synchronous dispatch ~= 26k core cycles *)
    kernel_launch_cycles = 26000;
    sync_cycles = 800;
    core_clock_ghz = 1.625;
    cost_alu = 1;
    cost_mul = 1;
    cost_divmod = 8;
    cost_special = 4;
    cost_shared_mem = 2;
  }

let max_warps a = a.max_threads_per_sm / a.warp_size

let threads_to_warps a t = (t + a.warp_size - 1) / a.warp_size

let config_feasible a ~regs_per_thread ~threads =
  threads > 0 && regs_per_thread > 0
  && threads <= a.max_threads_per_block
  && threads <= a.max_threads_per_sm
  && regs_per_thread * threads <= a.registers_per_sm
