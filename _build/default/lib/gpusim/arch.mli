(** GPU architecture model.

    Parameters of the simulated device, defaulting to the NVIDIA GeForce
    8800 GTS 512 the paper evaluates on (Sec. II-A): 16 streaming
    multiprocessors of 8 scalar units each, 32-thread warps, a 8192-entry
    register file and 16 KB of shared memory per SM, and a wide but
    coalescing-sensitive device-memory interface.

    All times are in GPU core-clock cycles. *)

type t = {
  name : string;
  num_sms : int;
  sus_per_sm : int;             (** scalar units per SM *)
  warp_size : int;
  max_threads_per_sm : int;     (** hardware SMT limit (768) *)
  max_threads_per_block : int;  (** CUDA block limit (512) *)
  max_blocks_per_sm : int;
  registers_per_sm : int;       (** 32-bit registers (8192) *)
  shared_mem_per_sm : int;      (** bytes (16384) *)
  shared_mem_banks : int;
  dram_latency : int;           (** cycles to device memory (400-600) *)
  dram_bytes_per_cycle : int;
      (** aggregate device-memory bandwidth, bytes per core cycle *)
  min_transaction_bytes : int;  (** smallest device-memory transaction *)
  segment_bytes : int;          (** coalesced half-warp segment size *)
  kernel_launch_cycles : int;   (** host-side kernel dispatch overhead *)
  sync_cycles : int;            (** inter-SM barrier at an II boundary *)
  core_clock_ghz : float;
  (* per-thread instruction costs, in SU-issue slots *)
  cost_alu : int;
  cost_mul : int;
  cost_divmod : int;
  cost_special : int;
  cost_shared_mem : int;
}

val geforce_8800_gts_512 : t

val max_warps : t -> int
val threads_to_warps : t -> int -> int
(** Rounds up to whole warps. *)

val config_feasible : t -> regs_per_thread:int -> threads:int -> bool
(** CUDA launch feasibility: the block fits the register file, the block
    and SM thread limits (the failure mode of Fig. 6 line 5). *)
