(** Cycle-approximate timing of one {e pass} — all threads of one SM
    firing a stream-graph node once.

    The model captures the first-order effects the paper's methodology
    depends on:

    - SIMD issue: per-thread instructions are issued warp-wide over the
      SM's scalar units;
    - SMT latency hiding: exposed device-memory latency shrinks with the
      number of resident warps (the reason configuration selection,
      Fig. 7, trades registers against threads);
    - coalescing: device traffic is computed from the actual index maps of
      the chosen buffer layout (Sec. IV-D), so uncoalesced layouts pay
      both transaction count and bus-padding costs;
    - register caps: demand above the compile-time cap spills to device
      memory;
    - shared-memory staging (the SWPNC fallback): working sets that fit
      are staged through shared memory with bank-conflict serialization.

    Bus bandwidth is *not* folded into the single-SM time: the pass
    exposes its bus bytes so that schedule-level executors can model
    cross-SM bandwidth contention — precisely the second-order effect the
    paper identifies as hurting its splitter/joiner-heavy benchmarks. *)

type layout =
  | Shuffled  (** the paper's optimized coalesced layout, eqs. (9)-(11) *)
  | Natural   (** sequential FIFO layout (Fig. 8) *)
  | Shared_staged
      (** natural layout staged through shared memory with coalesced
          copies (the SWPNC fast path) *)

type pass = {
  compute_cycles : int;     (** SIMD issue time for the per-thread work *)
  latency_cycles : int;     (** exposed device-memory latency after SMT *)
  bus_bytes : int;          (** device-memory bus traffic of the pass *)
  dev_accesses : int;       (** per-thread device accesses *)
  solo_cycles : int;        (** pass time with the bus to itself *)
}

val pass_of_node :
  ?in_rates:(int * int) list ->
  Arch.t ->
  Streamit.Graph.node ->
  threads:int ->
  regs_cap:int ->
  layout:layout ->
  pass option
(** [None] when the launch is infeasible: the register file cannot hold
    the block, or [Shared_staged] is requested and the working set
    exceeds shared memory.

    [in_rates], when given, lists [(consumption, production)] per-firing
    rates of every in-edge; under [Shuffled] the read traffic is then
    computed through {!Coalesce.cross_traffic} so that rate-mismatched
    edges (buffer laid out for the producer, consumer reading a
    different grouping) pay their true strided cost — the second-order
    splitter/joiner effect of Sec. V-B.  Profiling omits it, mirroring
    the paper's stand-alone filter profiling. *)

val in_edge_rates : Streamit.Graph.t -> int -> (int * int) list
(** [(consumption, production)] of each in-edge of a node, for
    [pass_of_node]'s [in_rates]. *)

val shared_fits : Arch.t -> Streamit.Graph.node -> threads:int -> bool
(** Whether the node's per-pass working set (peek + push tokens of every
    thread) fits in one SM's shared memory — the criterion Sec. V-B uses
    for Filterbank / FMRadio under SWPNC. *)

val combine_solo : pass -> int
(** Single-SM pass time assuming full bus bandwidth (profiling runs). *)
