(** Device-memory coalescing and shared-memory bank-conflict analysis.

    On the simulated device (compute capability 1.x rules, Sec. II-A of
    the paper), a half-warp's simultaneous accesses collapse into a single
    memory transaction exactly when thread [N] accesses address
    [WarpBaseAddress + N] with the base aligned to a segment boundary;
    otherwise each thread issues its own transaction.

    The analysis takes an {e index map} — the function from thread id to
    the element index accessed — which is how both the natural FIFO layout
    and the paper's shuffled layout (eqs. (10) and (11)) are expressed. *)

type access_summary = {
  transactions : int;   (** memory transactions issued by one warp access *)
  bytes_moved : int;    (** bus bytes consumed, including transaction padding *)
  coalesced : bool;     (** true when fully coalesced *)
}

val analyze_warp :
  Arch.t -> elem_bytes:int -> tid_to_index:(int -> int) -> access_summary
(** Analyses one simultaneous access by a full warp, applying the
    half-warp coalescing rule. *)

val natural_index : pop_or_push_rate:int -> n:int -> int -> int
(** Element index of the [n]-th token accessed by a thread under the
    {e natural} (sequential FIFO) buffer layout: [tid * rate + n] — the
    layout of Fig. 8 that provokes bank conflicts. *)

val shuffled_index : rate:int -> cluster:int -> n:int -> int -> int
(** Element index under the paper's optimized layout, eq. (10)/(11):
    [cluster*n + (tid / cluster)*cluster*rate + (tid mod cluster)] with
    [cluster = 128]. *)

val transactions_per_firing :
  Arch.t -> rate:int -> threads:int -> shuffled:bool -> int
(** Total warp transactions for all [threads] threads each accessing
    [rate] tokens, under either layout. *)

val traffic_per_firing :
  Arch.t -> rate:int -> threads:int -> shuffled:bool -> int * int
(** [(transactions, bus_bytes)] for all [threads] threads each accessing
    [rate] tokens — the bus bytes include transaction padding, which is
    what makes uncoalesced access so expensive. *)

val shared_bank_conflict_degree :
  Arch.t -> tid_to_index:(int -> int) -> int
(** Maximum number of half-warp threads hitting the same shared-memory
    bank (1 = conflict-free). *)

val cross_traffic :
  ?cached:bool ->
  Arch.t ->
  prod_rate:int ->
  cons_rate:int ->
  threads:int ->
  int * int
(** [(transactions, bus_bytes)] for one pass of a consumer reading an
    edge whose buffer is laid out for a producer with a different
    per-firing rate: the consumer's [n]-th token [tid*cons_rate + n]
    lives at the producer-pattern address (eq. (11) with the producer's
    rate), so consecutive threads touch [prod_rate/cons_rate]-strided
    addresses.  With [cached] (default, filter reads through the
    texture cache) traffic is the distinct minimum-size segments the
    whole warp touches over its pass — small strides are nearly free,
    large scatters pay per element.  With [~cached:false]
    (splitter/joiner gathers through plain global memory) every
    simultaneous half-warp access pays its distinct segments with no
    reuse — the raw compute-1.x transaction rule. *)
