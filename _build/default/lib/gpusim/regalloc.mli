(** Register allocation stand-in for nvcc.

    The CUDA compiler lets the programmer cap registers per thread and
    spills the excess to (long-latency) local memory in device DRAM
    (Sec. II-A).  We estimate per-thread register demand from the kernel
    IR and derive the spill traffic a given cap induces. *)

type alloc = {
  demand : int;         (** estimated registers wanted by the filter *)
  allocated : int;      (** min(demand, cap) *)
  spilled : int;        (** registers that live in local memory *)
  spill_accesses : int; (** extra device accesses per firing (load+store) *)
}

val allocate : Streamit.Kernel.filter -> cap:int -> alloc

val occupancy_threads : Arch.t -> regs_per_thread:int -> int
(** Maximum resident threads per SM permitted by the register file
    (rounded down to a whole warp, clamped to the SMT limit). *)
