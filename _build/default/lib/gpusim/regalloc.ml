open Streamit
type alloc = {
  demand : int;
  allocated : int;
  spilled : int;
  spill_accesses : int;
}

let allocate f ~cap =
  if cap <= 0 then invalid_arg "Regalloc.allocate: non-positive cap";
  let demand = Kernel.estimate_registers f in
  let allocated = min demand cap in
  let spilled = max 0 (demand - cap) in
  (* each spilled value is stored once and reloaded once per firing *)
  { demand; allocated; spilled; spill_accesses = 2 * spilled }

let occupancy_threads (a : Arch.t) ~regs_per_thread =
  if regs_per_thread <= 0 then invalid_arg "Regalloc.occupancy_threads";
  let by_regs = a.registers_per_sm / regs_per_thread in
  let t = min by_regs a.max_threads_per_sm in
  t / a.warp_size * a.warp_size
