lib/gpusim/arch.ml:
