lib/gpusim/cpu_model.mli: Streamit
