lib/gpusim/regalloc.mli: Arch Streamit
