lib/gpusim/coalesce.mli: Arch
