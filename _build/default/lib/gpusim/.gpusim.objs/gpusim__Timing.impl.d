lib/gpusim/timing.ml: Arch Ast Coalesce Graph Kernel List Regalloc Streamit Types
