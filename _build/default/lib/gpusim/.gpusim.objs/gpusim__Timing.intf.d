lib/gpusim/timing.mli: Arch Streamit
