lib/gpusim/regalloc.ml: Arch Kernel Streamit
