lib/gpusim/cpu_model.ml: Array Graph Kernel Sdf Streamit
