lib/gpusim/coalesce.ml: Arch Array Hashtbl Streamit
