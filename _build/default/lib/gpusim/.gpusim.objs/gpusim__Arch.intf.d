lib/gpusim/arch.mli:
