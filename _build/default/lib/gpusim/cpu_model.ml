open Streamit

type t = {
  clock_ghz : float;
  cyc_alu : float;
  cyc_mul : float;
  cyc_divmod : float;
  cyc_special : float;
  cyc_mem : float;
  cyc_channel : float;
  firing_overhead : float;
}

let xeon_2_83ghz =
  {
    clock_ghz = 2.83;
    (* A 4-wide OoO core retires simple ops below 1 cycle each on
       average; division and libm transcendentals are serialising. *)
    cyc_alu = 0.4;
    cyc_mul = 0.5;
    cyc_divmod = 12.0;
    cyc_special = 35.0;
    cyc_mem = 0.6;
    cyc_channel = 1.2;
    firing_overhead = 6.0;
  }

let cycles_of_cost m (c : Kernel.op_cost) =
  (float_of_int c.Kernel.alu *. m.cyc_alu)
  +. (float_of_int c.Kernel.mul *. m.cyc_mul)
  +. (float_of_int c.Kernel.divmod *. m.cyc_divmod)
  +. (float_of_int c.Kernel.special *. m.cyc_special)
  +. (float_of_int c.Kernel.mem *. m.cyc_mem)
  +. (float_of_int c.Kernel.channel *. m.cyc_channel)
  +. m.firing_overhead

let node_firing_cost (g : Graph.t) v =
  let nd = Graph.node g v in
  match nd.Graph.kind with
  | Graph.NFilter f -> Kernel.cost_of_filter f
  | Graph.NSplitter _ | Graph.NJoiner _ ->
    let moved = Graph.push_rate_of nd + Graph.pop_rate_of nd in
    { Kernel.zero_cost with channel = moved; alu = moved }

let steady_state_cycles m g (rates : Sdf.rates) =
  let total = ref 0.0 in
  Array.iteri
    (fun v reps ->
      let c = node_firing_cost g v in
      total := !total +. (float_of_int reps *. cycles_of_cost m c))
    rates.Sdf.reps;
  !total

let seconds m cycles = cycles /. (m.clock_ghz *. 1e9)
