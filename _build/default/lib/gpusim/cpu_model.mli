(** Single-threaded CPU cost model — the denominator of the paper's
    speedup metric.

    Models the paper's baseline: the StreamIt uniprocessor backend
    compiled with [gcc -O3] on a 2.83 GHz Xeon.  Costs are per-operation
    cycle estimates for a superscalar out-of-order core (several ALU ops
    per cycle retired on average, expensive division and libm calls,
    channel traffic through L1-resident circular buffers). *)

type t = {
  clock_ghz : float;
  cyc_alu : float;
  cyc_mul : float;
  cyc_divmod : float;
  cyc_special : float;  (** sinf/cosf/sqrtf via libm *)
  cyc_mem : float;
  cyc_channel : float;  (** per push/pop/peek: buffer index + copy *)
  firing_overhead : float;  (** per-firing loop/dispatch overhead *)
}

val xeon_2_83ghz : t

val cycles_of_cost : t -> Streamit.Kernel.op_cost -> float
(** Cycles for one firing with the given operation counts. *)

val steady_state_cycles : t -> Streamit.Graph.t -> Streamit.Sdf.rates -> float
(** CPU cycles to execute one steady state sequentially (every node,
    including the token shuffling splitters/joiners perform). *)

val seconds : t -> float -> float
(** Convert cycles to seconds at the model's clock. *)
