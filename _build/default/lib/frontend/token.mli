(** Tokens of the textual StreamIt-subset surface syntax. *)

type t =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string       (** keywords: filter, pipeline, splitjoin, ... *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AMP | PIPE | CARET | SHL | SHR
  | QUESTION | COLON
  | EOF

val keywords : string list
val pp : Format.formatter -> t -> unit
val to_string : t -> string
