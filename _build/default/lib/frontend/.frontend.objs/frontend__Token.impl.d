lib/frontend/token.ml: Format
