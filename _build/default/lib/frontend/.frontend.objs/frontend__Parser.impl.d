lib/frontend/parser.ml: Array Ast Kernel Lexer List Printf Streamit Token Types
