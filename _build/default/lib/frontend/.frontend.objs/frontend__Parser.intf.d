lib/frontend/parser.mli: Streamit
