(** Hand-rolled lexer for the StreamIt-subset surface syntax.

    Supports [//] line comments and [/* ... */] block comments, decimal
    integer and float literals, identifiers and the operator set of
    {!Token}. *)

exception Lex_error of string * int * int
(** [(message, line, column)] *)

val tokenize : string -> (Token.t * int * int) list
(** Token stream with source positions, terminated by [EOF]. *)
