(** Recursive-descent parser and elaborator for the StreamIt-subset
    surface syntax, producing {!Streamit.Ast} streams directly.

    Grammar sketch:
    {v
    program   := decl+                     // the last decl is the program
    decl      := filter | pipeline | splitjoin
    filter    := "filter" NAME [ "int" | "float" ]
                 "pop" INT "push" INT [ "peek" INT ]
                 "{" (table | state)* stmt* "}"
    table     := "table" NAME "=" "[" literal ("," literal)* "]" ";"
    state     := "state" NAME "=" "[" literal ("," literal)* "]" ";"
    stmt      := "push" "(" expr ")" ";"
               | "let" NAME "=" expr ";"
               | NAME "=" expr ";"
               | NAME "[" expr "]" "=" expr ";"
               | "array" NAME "[" INT "]" ";"
               | "for" NAME "=" expr "to" expr "{" stmt* "}"
               | "if" "(" expr ")" "{" stmt* "}" [ "else" "{" stmt* "}" ]
    pipeline  := "pipeline" NAME "{" ("add" NAME ";")+ "}"
    splitjoin := "splitjoin" NAME "{" "split" spec ";" ("add" NAME ";")+
                 "join" "roundrobin" "(" INT,... ")" ";" "}"
    spec      := "duplicate" | "roundrobin" "(" INT,... ")"
    v}

    Expressions support arithmetic, comparison, bitwise and shift
    operators, the ternary conditional, [pop()], [peek(e)], table/array
    indexing, and the intrinsics [min max sin cos sqrt exp log abs
    int float]. *)

exception Parse_error of string * int * int

val parse_program : string -> Streamit.Ast.stream
(** Parses and elaborates; the last declaration is the program.
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors. *)

val parse_declarations : string -> (string * Streamit.Ast.stream) list
(** All top-level declarations, in source order. *)
