(** Token values and element types shared across the StreamIt compiler.

    StreamIt channels carry typed tokens; this reproduction supports the
    two primitive element types the evaluated benchmarks use ([int] and
    [float]).  Tokens are 4 bytes each, matching the paper's buffer-size
    accounting (Table II). *)

type elem_ty = TInt | TFloat

type value = VInt of int | VFloat of float

val elem_size_bytes : int
(** Size of one token in device memory: 4 bytes. *)

val ty_of_value : value -> elem_ty
val zero_of : elem_ty -> value

val to_float : value -> float
val to_int : value -> int
(** @raise Failure on a float token with no exact integer value. *)

val equal_value : value -> value -> bool
(** Exact equality ([VFloat nan] equals itself so tapes can be compared). *)

val value_close : ?eps:float -> value -> value -> bool
(** Approximate equality for cross-backend output comparison. *)

val pp_value : Format.formatter -> value -> unit
val pp_ty : Format.formatter -> elem_ty -> unit
val string_of_value : value -> string
