type splitter = Duplicate | Round_robin of int list
type joiner = int list

type stream =
  | Filter of Kernel.filter
  | Pipeline of string * stream list
  | Split_join of string * splitter * stream list * joiner
  | Feedback_loop of {
      name : string;
      join_weights : int * int;
      body : stream;
      split_weights : int * int;
      delay : Types.value list;
    }

let name_of = function
  | Filter f -> f.Kernel.name
  | Pipeline (n, _) | Split_join (n, _, _, _) -> n
  | Feedback_loop { name; _ } -> name

let rec filters = function
  | Filter f -> [ f ]
  | Pipeline (_, ss) -> List.concat_map filters ss
  | Split_join (_, _, ss, _) -> List.concat_map filters ss
  | Feedback_loop { body; _ } -> filters body

let num_filters s = List.length (filters s)

let validate stream =
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  let rec go s =
    match s with
    | Filter f -> (
      match Kernel.check_filter f with Ok () -> () | Error m -> fail m)
    | Pipeline (n, ss) ->
      if ss = [] then fail (n ^ ": empty pipeline");
      List.iter go ss
    | Split_join (n, sp, ss, jw) ->
      if ss = [] then fail (n ^ ": empty split-join");
      (match sp with
      | Duplicate -> ()
      | Round_robin ws ->
        if List.length ws <> List.length ss then
          fail (n ^ ": splitter weight count mismatch");
        if List.exists (fun w -> w <= 0) ws then
          fail (n ^ ": non-positive splitter weight"));
      if List.length jw <> List.length ss then
        fail (n ^ ": joiner weight count mismatch");
      if List.exists (fun w -> w <= 0) jw then
        fail (n ^ ": non-positive joiner weight");
      List.iter go ss
    | Feedback_loop { name; join_weights = j1, j2; split_weights = s1, s2; body; _ }
      ->
      if j1 <= 0 || j2 <= 0 || s1 <= 0 || s2 <= 0 then
        fail (name ^ ": non-positive feedback weights");
      go body
  in
  go stream;
  match !err with None -> Ok () | Some m -> Error m

let rec pp fmt = function
  | Filter f -> Format.fprintf fmt "filter %s" f.Kernel.name
  | Pipeline (n, ss) ->
    Format.fprintf fmt "@[<v 2>pipeline %s {" n;
    List.iter (fun s -> Format.fprintf fmt "@,%a" pp s) ss;
    Format.fprintf fmt "@]@,}"
  | Split_join (n, sp, ss, jw) ->
    let sp_str =
      match sp with
      | Duplicate -> "duplicate"
      | Round_robin ws ->
        "roundrobin(" ^ String.concat "," (List.map string_of_int ws) ^ ")"
    in
    Format.fprintf fmt "@[<v 2>splitjoin %s split %s {" n sp_str;
    List.iter (fun s -> Format.fprintf fmt "@,%a" pp s) ss;
    Format.fprintf fmt "@]@,} join roundrobin(%s)"
      (String.concat "," (List.map string_of_int jw))
  | Feedback_loop { name; body; delay; _ } ->
    Format.fprintf fmt "@[<v 2>feedbackloop %s (delay %d) {@,%a@]@,}" name
      (List.length delay) pp body

let pipeline n ss = Pipeline (n, ss)
let split_join n sp ss jw = Split_join (n, sp, ss, jw)
let duplicate_sj n ss jw = Split_join (n, Duplicate, ss, jw)
let round_robin_sj n sw ss jw = Split_join (n, Round_robin sw, ss, jw)
