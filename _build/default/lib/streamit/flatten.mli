(** Flattening of hierarchical stream programs (Thies et al., CC'02) into
    the flat filter / splitter / joiner graph used by the scheduler.

    Pipelines chain their children; split-joins introduce an explicit
    splitter and joiner node; feedback loops introduce a 2-way joiner and a
    2-way round-robin splitter with the delay tokens placed on the
    loop-back edge.

    Peeking filters receive [peek - pop] zero-valued initial tokens on
    their input edge — the zero-history initialization StreamIt performs
    with an init schedule — so that every steady state is self-contained
    and the graph never deadlocks under a single-appearance schedule. *)

val flatten : Ast.stream -> Graph.t
(** @raise Failure on structurally invalid streams (e.g. a pipeline child
    produces no output but its successor expects input). *)
