type elem_ty = TInt | TFloat
type value = VInt of int | VFloat of float

let elem_size_bytes = 4
let ty_of_value = function VInt _ -> TInt | VFloat _ -> TFloat
let zero_of = function TInt -> VInt 0 | TFloat -> VFloat 0.0
let to_float = function VInt n -> float_of_int n | VFloat f -> f

let to_int = function
  | VInt n -> n
  | VFloat f ->
    if Float.is_integer f then int_of_float f
    else failwith "Types.to_int: non-integral float token"

let equal_value a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y -> x = y || (Float.is_nan x && Float.is_nan y)
  | _ -> false

let value_close ?(eps = 1e-5) a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | _ ->
    let x = to_float a and y = to_float b in
    if Float.is_nan x || Float.is_nan y then Float.is_nan x && Float.is_nan y
    else begin
      let d = Float.abs (x -. y) in
      d <= eps || d <= eps *. Float.max (Float.abs x) (Float.abs y)
    end

let pp_value fmt = function
  | VInt n -> Format.fprintf fmt "%d" n
  | VFloat f -> Format.fprintf fmt "%g" f

let pp_ty fmt = function
  | TInt -> Format.fprintf fmt "int"
  | TFloat -> Format.fprintf fmt "float"

let string_of_value v = Format.asprintf "%a" pp_value v
