(** Growable FIFO channel with O(1) indexed peek.

    Models a StreamIt communication channel: tokens are pushed at the tail,
    popped from the head, and [peek n] inspects the token [n] positions deep
    without consuming it — exactly the three primitives StreamIt filters may
    use on their FIFOs. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** @raise Invalid_argument if empty. *)

val peek : 'a t -> int -> 'a
(** [peek q n] is the element [n] deep ([peek q 0] is the next pop).
    @raise Invalid_argument if fewer than [n+1] elements are present. *)

val pop_many : 'a t -> int -> 'a list
val push_many : 'a t -> 'a list -> unit
val to_list : 'a t -> 'a list
(** Head first. *)

val clear : 'a t -> unit

val total_pushed : 'a t -> int
(** Lifetime count of pushes — used for rate checking. *)

val total_popped : 'a t -> int

val max_occupancy : 'a t -> int
(** High-water mark of the queue length — used to measure the buffer
    requirement a firing schedule induces on this channel. *)
