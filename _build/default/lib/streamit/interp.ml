open Types

exception Firing_violation of string

(* Channels are keyed by (dst, dst_port) for pops and looked up per edge
   for pushes; each edge owns exactly one FIFO. *)
module EKey = struct
  type t = int * int * int * int

  let of_edge (e : Graph.edge) = (e.src, e.src_port, e.dst, e.dst_port)
end

type t = {
  graph : Graph.t;
  chans : (EKey.t, value Fifo.t) Hashtbl.t;
  node_state : (int, (string * value array) list) Hashtbl.t;
      (* persistent per-node copies of stateful filters' state arrays *)
  mutable out_tape : value list; (* reversed *)
  mutable out_count : int;
  mutable in_cursor : int;
}

let channel t e = Hashtbl.find t.chans (EKey.of_edge e)

let fresh_state g =
  let node_state = Hashtbl.create 8 in
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.kind with
      | Graph.NFilter f when Kernel.is_stateful f ->
        Hashtbl.replace node_state nd.Graph.id
          (List.map (fun (n, a) -> (n, Array.copy a)) f.Kernel.state)
      | _ -> ())
    g.Graph.nodes;
  node_state

let create g =
  let chans = Hashtbl.create 32 in
  List.iter
    (fun (e : Graph.edge) ->
      let q = Fifo.create () in
      Fifo.push_many q e.init_values;
      Hashtbl.replace chans (EKey.of_edge e) q)
    g.Graph.edges;
  {
    graph = g;
    chans;
    node_state = fresh_state g;
    out_tape = [];
    out_count = 0;
    in_cursor = 0;
  }

let reset t =
  List.iter
    (fun (e : Graph.edge) ->
      let q = channel t e in
      Fifo.clear q;
      Fifo.push_many q e.init_values)
    t.graph.Graph.edges;
  Hashtbl.reset t.node_state;
  Hashtbl.iter (Hashtbl.replace t.node_state) (fresh_state t.graph |> fun h -> h);
  t.out_tape <- [];
  t.out_count <- 0;
  t.in_cursor <- 0

(* --- value arithmetic --- *)

let as_int v = Types.to_int v
let truthy v = match v with VInt 0 -> false | VInt _ -> true | VFloat f -> f <> 0.0

let eval_unop op v =
  match (op, v) with
  | Kernel.Neg, VInt n -> VInt (-n)
  | Kernel.Neg, VFloat f -> VFloat (-.f)
  | Kernel.Not, v -> VInt (if truthy v then 0 else 1)
  | Kernel.BitNot, VInt n -> VInt (lnot n)
  | Kernel.BitNot, VFloat _ -> failwith "bitnot on float"
  | Kernel.Sin, v -> VFloat (sin (to_float v))
  | Kernel.Cos, v -> VFloat (cos (to_float v))
  | Kernel.Sqrt, v -> VFloat (sqrt (to_float v))
  | Kernel.Exp, v -> VFloat (exp (to_float v))
  | Kernel.Log, v -> VFloat (log (to_float v))
  | Kernel.Abs, VInt n -> VInt (abs n)
  | Kernel.Abs, VFloat f -> VFloat (Float.abs f)
  | Kernel.ToFloat, v -> VFloat (to_float v)
  | Kernel.ToInt, VInt n -> VInt n
  | Kernel.ToInt, VFloat f -> VInt (int_of_float f)

let eval_binop op a b =
  let bool_ c = VInt (if c then 1 else 0) in
  let float_op f =
    match (a, b) with
    | VInt _, VInt _ -> None
    | _ -> Some (f (to_float a) (to_float b))
  in
  match op with
  | Kernel.Add -> (
    match float_op ( +. ) with
    | Some f -> VFloat f
    | None -> VInt (as_int a + as_int b))
  | Kernel.Sub -> (
    match float_op ( -. ) with
    | Some f -> VFloat f
    | None -> VInt (as_int a - as_int b))
  | Kernel.Mul -> (
    match float_op ( *. ) with
    | Some f -> VFloat f
    | None -> VInt (as_int a * as_int b))
  | Kernel.Div -> (
    match float_op ( /. ) with
    | Some f -> VFloat f
    | None ->
      let d = as_int b in
      if d = 0 then failwith "integer division by zero" else VInt (as_int a / d))
  | Kernel.Mod ->
    let d = as_int b in
    if d = 0 then failwith "modulo by zero" else VInt (as_int a mod d)
  | Kernel.BitAnd -> VInt (as_int a land as_int b)
  | Kernel.BitOr -> VInt (as_int a lor as_int b)
  | Kernel.BitXor -> VInt (as_int a lxor as_int b)
  | Kernel.Shl -> VInt (as_int a lsl as_int b)
  | Kernel.Shr -> VInt (as_int a lsr as_int b)
  | Kernel.Eq -> bool_ (to_float a = to_float b)
  | Kernel.Ne -> bool_ (to_float a <> to_float b)
  | Kernel.Lt -> bool_ (to_float a < to_float b)
  | Kernel.Le -> bool_ (to_float a <= to_float b)
  | Kernel.Gt -> bool_ (to_float a > to_float b)
  | Kernel.Ge -> bool_ (to_float a >= to_float b)
  | Kernel.Min -> (
    match float_op Float.min with
    | Some f -> VFloat f
    | None -> VInt (min (as_int a) (as_int b)))
  | Kernel.Max -> (
    match float_op Float.max with
    | Some f -> VFloat f
    | None -> VInt (max (as_int a) (as_int b)))

(* --- work-function execution --- *)

type io = {
  pop : unit -> value;
  peek : int -> value;
  push : value -> unit;
}

let exec_work ?(state = []) (f : Kernel.filter) (io : io) =
  let scalars : (string, value) Hashtbl.t = Hashtbl.create 8 in
  let arrays : (string, value array) Hashtbl.t = Hashtbl.create 4 in
  (* persistent state arrays are pre-bound (by reference, so mutations
     survive the firing) *)
  List.iter (fun (n, a) -> Hashtbl.replace arrays n a) state;
  let tables = f.Kernel.tables in
  let rec eval e =
    match e with
    | Kernel.Const v -> v
    | Kernel.Var x -> (
      match Hashtbl.find_opt scalars x with
      | Some v -> v
      | None -> failwith ("unbound variable " ^ x))
    | Kernel.ArrayRef (a, i) -> (
      let idx = as_int (eval i) in
      match Hashtbl.find_opt arrays a with
      | Some arr ->
        if idx < 0 || idx >= Array.length arr then
          failwith (Printf.sprintf "array %s index %d out of bounds" a idx)
        else arr.(idx)
      | None -> failwith ("unbound array " ^ a))
    | Kernel.TableRef (tname, i) -> (
      let idx = as_int (eval i) in
      match List.assoc_opt tname tables with
      | Some arr ->
        if idx < 0 || idx >= Array.length arr then
          failwith (Printf.sprintf "table %s index %d out of bounds" tname idx)
        else arr.(idx)
      | None -> failwith ("unknown table " ^ tname))
    | Kernel.Pop -> io.pop ()
    | Kernel.Peek d -> io.peek (as_int (eval d))
    | Kernel.Unop (op, e) -> eval_unop op (eval e)
    | Kernel.Binop (op, a, b) ->
      let va = eval a in
      let vb = eval b in
      eval_binop op va vb
    | Kernel.Cond (c, a, b) -> if truthy (eval c) then eval a else eval b
  in
  let rec exec s =
    match s with
    | Kernel.Let (x, e) | Kernel.Assign (x, e) ->
      Hashtbl.replace scalars x (eval e)
    | Kernel.DeclArray (a, n) ->
      Hashtbl.replace arrays a (Array.make n (zero_of f.Kernel.out_ty))
    | Kernel.ArrayAssign (a, i, e) -> (
      let idx = as_int (eval i) in
      let v = eval e in
      match Hashtbl.find_opt arrays a with
      | Some arr ->
        if idx < 0 || idx >= Array.length arr then
          failwith (Printf.sprintf "array %s index %d out of bounds" a idx)
        else arr.(idx) <- v
      | None -> failwith ("unbound array " ^ a))
    | Kernel.Push e -> io.push (eval e)
    | Kernel.If (c, th, el) ->
      if truthy (eval c) then List.iter exec th else List.iter exec el
    | Kernel.For (x, lo, hi, body) ->
      let l = as_int (eval lo) and h = as_int (eval hi) in
      for i = l to h - 1 do
        Hashtbl.replace scalars x (VInt i);
        List.iter exec body
      done
  in
  List.iter exec f.Kernel.work

(* --- firing --- *)

let fire t ~input v =
  let g = t.graph in
  let nd = Graph.node g v in
  let ins = Graph.in_edges g v in
  let outs = Graph.out_edges g v in
  let is_entry = g.Graph.entry = Some v in
  let is_exit = g.Graph.exit_ = Some v in
  (* firing-rule check on internal channels *)
  List.iter
    (fun e ->
      let need = Graph.consumption g e + Graph.peek_margin g e in
      if Fifo.length (channel t e) < need then
        raise
          (Firing_violation
             (Printf.sprintf "node %s needs %d tokens, has %d" nd.name need
                (Fifo.length (channel t e)))))
    ins;
  let pop_external () =
    let v = input t.in_cursor in
    t.in_cursor <- t.in_cursor + 1;
    v
  in
  let push_external v =
    t.out_tape <- v :: t.out_tape;
    t.out_count <- t.out_count + 1
  in
  match nd.kind with
  | Graph.NFilter f ->
    let in_chan = match ins with [ e ] -> Some (channel t e) | _ -> None in
    let out_chan = match outs with [ e ] -> Some (channel t e) | _ -> None in
    let pop () =
      match in_chan with
      | Some q -> Fifo.pop q
      | None ->
        if is_entry then pop_external ()
        else raise (Firing_violation (nd.name ^ ": pop with no input channel"))
    in
    let peek n =
      match in_chan with
      | Some q -> Fifo.peek q n
      | None ->
        if is_entry then input (t.in_cursor + n)
        else raise (Firing_violation (nd.name ^ ": peek with no input channel"))
    in
    let push v =
      match out_chan with
      | Some q -> Fifo.push q v
      | None ->
        if is_exit then push_external v
        else raise (Firing_violation (nd.name ^ ": push with no output channel"))
    in
    let state =
      match Hashtbl.find_opt t.node_state v with Some s -> s | None -> []
    in
    exec_work ~state f { pop; peek; push }
  | Graph.NSplitter (sp, k) -> (
    let in_q =
      match ins with
      | [ e ] -> `Chan (channel t e)
      | [] when is_entry -> `External
      | _ -> raise (Firing_violation (nd.name ^ ": splitter input missing"))
    in
    let take () =
      match in_q with `Chan q -> Fifo.pop q | `External -> pop_external ()
    in
    let out_q p =
      match List.find_opt (fun (e : Graph.edge) -> e.src_port = p) outs with
      | Some e -> channel t e
      | None -> raise (Firing_violation (nd.name ^ ": splitter port unwired"))
    in
    match sp with
    | Ast.Duplicate ->
      let v = take () in
      for p = 0 to k - 1 do
        Fifo.push (out_q p) v
      done
    | Ast.Round_robin ws ->
      List.iteri
        (fun p w ->
          for _ = 1 to w do
            Fifo.push (out_q p) (take ())
          done)
        ws)
  | Graph.NJoiner ws ->
    let in_q p =
      match List.find_opt (fun (e : Graph.edge) -> e.dst_port = p) ins with
      | Some e -> channel t e
      | None -> raise (Firing_violation (nd.name ^ ": joiner port unwired"))
    in
    let out =
      match outs with
      | [ e ] -> `Chan (channel t e)
      | [] when is_exit -> `External
      | _ -> raise (Firing_violation (nd.name ^ ": joiner output missing"))
    in
    let put v =
      match out with `Chan q -> Fifo.push q v | `External -> push_external v
    in
    List.iteri
      (fun p w ->
        for _ = 1 to w do
          put (Fifo.pop (in_q p))
        done)
      ws

let run_schedule t ~input firings = List.iter (fire t ~input) firings

let output t = List.rev t.out_tape
let output_count t = t.out_count
let input_consumed t = t.in_cursor

let channel_occupancy t =
  List.map
    (fun (e : Graph.edge) -> (e, Fifo.length (channel t e)))
    t.graph.Graph.edges

let run_steady_states g ~input ~iters =
  match Sdf.steady_state g with
  | Error m -> failwith ("Interp.run_steady_states: " ^ m)
  | Ok rates ->
    let sched = Schedule.min_latency g rates in
    let t = create g in
    for _ = 1 to iters do
      run_schedule t ~input sched
    done;
    output t

let exec_filter_firing ?state f ~pop ~peek ~push =
  exec_work ?state f { pop; peek; push }

let work_of_firing t v =
  let nd = Graph.node t.graph v in
  match nd.kind with
  | Graph.NFilter f -> Kernel.cost_of_filter f
  | Graph.NSplitter _ | Graph.NJoiner _ ->
    let moved = Graph.push_rate_of nd + Graph.pop_rate_of nd in
    { Kernel.zero_cost with channel = moved; alu = moved }
