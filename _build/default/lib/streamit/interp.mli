(** Reference interpreter for flattened stream graphs.

    Executes work functions token-by-token over real FIFO channels.  This
    is the semantic ground truth of the whole reproduction: the GPU
    simulator's buffer-layout execution (Sec. IV-D index maps) is checked
    for bit-identical output against this interpreter, and it doubles as
    the "single-threaded CPU" side of the paper's speedup definition
    (timed through {!Gpusim.Cpu_model}'s cost accounting, not wall clock).

    External input is supplied as a function from token index to value (an
    infinite tape); program output is collected from the exit node. *)

open Types

type t

val create : Graph.t -> t
(** Initialises channel FIFOs with their [init_values]. *)

val reset : t -> unit

exception Firing_violation of string

val fire : t -> input:(int -> value) -> int -> unit
(** [fire t ~input v] executes one firing of node [v].
    @raise Firing_violation if the firing rule is not satisfied. *)

val run_schedule : t -> input:(int -> value) -> Schedule.firing list -> unit
(** Fires a full sequence (e.g. one steady state). *)

val run_steady_states :
  Graph.t -> input:(int -> value) -> iters:int -> value list
(** Convenience: create, run [iters] steady states with a demand-driven
    schedule, return the collected output tape (head first). *)

val output : t -> value list
(** Output tokens produced so far by the exit node (head first). *)

val output_count : t -> int
val input_consumed : t -> int

val channel_occupancy : t -> (Graph.edge * int) list
(** Current token count per edge — for invariant tests (steady state must
    restore the initial occupancy). *)

val work_of_firing : t -> int -> Kernel.op_cost
(** Static per-firing cost of a node (splitters/joiners count one channel
    op per token moved); used by the CPU cost model. *)

val exec_filter_firing :
  ?state:(string * value array) list ->
  Kernel.filter ->
  pop:(unit -> value) ->
  peek:(int -> value) ->
  push:(value -> unit) ->
  unit
(** Executes one firing of a filter's work function against caller-provided
    channel primitives.  This is the single evaluator shared by the FIFO
    interpreter and the device-buffer functional simulator
    ({!Swp_core.Funcsim}), which guarantees the two backends agree on
    work-function semantics by construction. *)
