lib/streamit/graph.mli: Ast Format Kernel Types
