lib/streamit/sdf.mli: Graph
