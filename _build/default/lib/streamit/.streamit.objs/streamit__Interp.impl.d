lib/streamit/interp.ml: Array Ast Fifo Float Graph Hashtbl Kernel List Printf Schedule Sdf Types
