lib/streamit/ast.mli: Format Kernel Types
