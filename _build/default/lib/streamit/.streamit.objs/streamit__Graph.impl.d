lib/streamit/graph.ml: Array Ast Format Fun Hashtbl Kernel List Printf Queue String Types
