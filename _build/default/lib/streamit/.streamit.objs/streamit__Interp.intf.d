lib/streamit/interp.mli: Graph Kernel Schedule Types
