lib/streamit/types.mli: Format
