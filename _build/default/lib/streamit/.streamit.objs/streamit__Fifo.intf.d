lib/streamit/fifo.mli:
