lib/streamit/schedule.ml: Array Graph Hashtbl List Printf Sdf Types
