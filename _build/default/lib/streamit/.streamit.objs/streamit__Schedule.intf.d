lib/streamit/schedule.mli: Graph Sdf
