lib/streamit/sdf.ml: Array Bigint Graph List Numeric Option Printf Queue Rat
