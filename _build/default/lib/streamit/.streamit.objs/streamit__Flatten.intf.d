lib/streamit/flatten.mli: Ast Graph
