lib/streamit/flatten.ml: Array Ast Graph Kernel List Option Types
