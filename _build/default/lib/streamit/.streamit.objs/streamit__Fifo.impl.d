lib/streamit/fifo.ml: Array List
