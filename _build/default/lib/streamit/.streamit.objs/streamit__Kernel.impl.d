lib/streamit/kernel.ml: Format Hashtbl List Option Printf Types
