lib/streamit/ast.ml: Format Kernel List String Types
