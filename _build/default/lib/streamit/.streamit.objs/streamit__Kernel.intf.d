lib/streamit/kernel.mli: Format Types
