lib/streamit/types.ml: Float Format
