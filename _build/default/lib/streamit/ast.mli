(** Hierarchical StreamIt stream constructs (Fig. 3 of the paper).

    A stream program is a hierarchical composition of {b pipelines},
    {b split-joins} and {b feedback loops} whose leaves are filters.
    {!Flatten} lowers this AST to the flat {!Graph} representation the
    scheduler works on. *)

type splitter =
  | Duplicate
      (** copies every input token to each branch (one pop, one push per
          branch, per firing) *)
  | Round_robin of int list
      (** weights; pops [sum weights] and distributes per-branch *)

type joiner = int list
(** Joiners are always round-robin (Sec. II-B); the list gives per-branch
    weights. *)

type stream =
  | Filter of Kernel.filter
  | Pipeline of string * stream list
  | Split_join of string * splitter * stream list * joiner
  | Feedback_loop of {
      name : string;
      join_weights : int * int;  (** (external input, loop-back) weights *)
      body : stream;
      split_weights : int * int; (** (external output, loop-back) weights *)
      delay : Types.value list;  (** initial tokens on the loop-back edge *)
    }

val name_of : stream -> string

val filters : stream -> Kernel.filter list
(** All leaf filters, in syntactic order. *)

val num_filters : stream -> int

val validate : stream -> (unit, string) result
(** Structural checks: non-empty pipelines/split-joins, matching branch and
    weight counts, positive weights, and {!Kernel.check_filter} on every
    leaf. *)

val pp : Format.formatter -> stream -> unit

(** {1 Convenience constructors} *)

val pipeline : string -> stream list -> stream
val split_join : string -> splitter -> stream list -> joiner -> stream

val duplicate_sj : string -> stream list -> joiner -> stream
(** Split-join with a duplicate splitter. *)

val round_robin_sj : string -> int list -> stream list -> int list -> stream
