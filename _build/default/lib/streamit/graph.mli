(** Flattened stream graph: filters plus explicit splitter / joiner nodes
    connected by FIFO edges.

    This is the representation the SDF rate solver, the schedulers and the
    code generator all consume.  Multi-output (splitter) and multi-input
    (joiner) nodes address their channels through ports; filters always use
    port 0.

    A graph may have a distinguished {e entry} node that consumes the
    program's external input stream (supplied by the host through device
    memory — the "very first input buffer" whose layout Sec. IV-D shuffles)
    and an {e exit} node whose pushes form the program output. *)

type node_kind =
  | NFilter of Kernel.filter
  | NSplitter of Ast.splitter * int  (** branch count *)
  | NJoiner of int list              (** per-branch weights *)

type node = { id : int; name : string; kind : node_kind }

type edge = {
  src : int;
  src_port : int;
  dst : int;
  dst_port : int;
  init_tokens : int;  (** tokens present before the first steady state *)
  init_values : Types.value list;
      (** the actual initial tokens (length = [init_tokens]): feedback-loop
          delay values, or zero history for peeking filters *)
}

type t = {
  nodes : node array;
  edges : edge list;
  entry : int option;  (** node reading the external input stream *)
  exit_ : int option;  (** node producing the external output stream *)
}

(** {1 Queries} *)

val num_nodes : t -> int
val node : t -> int -> node
val name : t -> int -> string
val in_edges : t -> int -> edge list
val out_edges : t -> int -> edge list

val production : t -> edge -> int
(** [O_uv]: tokens pushed onto this edge per firing of [src]. *)

val consumption : t -> edge -> int
(** [I_uv]: tokens popped from this edge per firing of [dst]. *)

val peek_margin : t -> edge -> int
(** [peek - pop] of the destination when it is a peeking filter reading
    this edge, else 0.  The dependence constraints treat this as a
    reduction of the initial tokens available on the edge. *)

val pop_rate_of : node -> int
(** Total tokens consumed per firing, summed over input ports. *)

val push_rate_of : node -> int
val in_arity : node -> int
val out_arity : node -> int

val entry_pop : t -> int
(** Tokens of external input consumed per firing of the entry node
    (0 when there is no entry). *)

val exit_push : t -> int

val sources : t -> int list
(** Nodes with no in-edges (excluding external input). *)

val sinks : t -> int list
val topo_order : t -> int list
(** Topological order ignoring edges that carry enough initial tokens to
    break the cycle (feedback-loop back edges).
    @raise Failure on a graph whose zero-token edges form a cycle. *)

val is_acyclic : t -> bool
(** True when the graph has no cycles at all (even through initialised
    edges). *)

val validate : t -> (unit, string) result
(** Port-consistency checks: every port connected at most once, splitter
    and joiner ports fully wired, edge endpoints and entry/exit in range,
    initial-token values matching their counts. *)

val pp : Format.formatter -> t -> unit
