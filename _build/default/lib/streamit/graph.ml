type node_kind =
  | NFilter of Kernel.filter
  | NSplitter of Ast.splitter * int
  | NJoiner of int list

type node = { id : int; name : string; kind : node_kind }

type edge = {
  src : int;
  src_port : int;
  dst : int;
  dst_port : int;
  init_tokens : int;
  init_values : Types.value list;
}

type t = {
  nodes : node array;
  edges : edge list;
  entry : int option;
  exit_ : int option;
}

let num_nodes g = Array.length g.nodes

let node g i =
  if i < 0 || i >= num_nodes g then invalid_arg "Graph.node: bad id";
  g.nodes.(i)

let name g i = (node g i).name
let in_edges g i = List.filter (fun e -> e.dst = i) g.edges
let out_edges g i = List.filter (fun e -> e.src = i) g.edges

let production g e =
  match (node g e.src).kind with
  | NFilter f -> f.Kernel.push_rate
  | NSplitter (Ast.Duplicate, _) -> 1
  | NSplitter (Ast.Round_robin ws, _) -> List.nth ws e.src_port
  | NJoiner ws -> List.fold_left ( + ) 0 ws

let consumption g e =
  match (node g e.dst).kind with
  | NFilter f -> f.Kernel.pop_rate
  | NSplitter (Ast.Duplicate, _) -> 1
  | NSplitter (Ast.Round_robin ws, _) -> List.fold_left ( + ) 0 ws
  | NJoiner ws -> List.nth ws e.dst_port

let peek_margin g e =
  match (node g e.dst).kind with
  | NFilter f -> f.Kernel.peek_rate - f.Kernel.pop_rate
  | _ -> 0

let pop_rate_of n =
  match n.kind with
  | NFilter f -> f.Kernel.pop_rate
  | NSplitter (Ast.Duplicate, _) -> 1
  | NSplitter (Ast.Round_robin ws, _) -> List.fold_left ( + ) 0 ws
  | NJoiner ws -> List.fold_left ( + ) 0 ws

let push_rate_of n =
  match n.kind with
  | NFilter f -> f.Kernel.push_rate
  | NSplitter (Ast.Duplicate, k) -> k
  | NSplitter (Ast.Round_robin ws, _) -> List.fold_left ( + ) 0 ws
  | NJoiner ws -> List.fold_left ( + ) 0 ws

let in_arity n =
  match n.kind with
  | NFilter _ | NSplitter _ -> 1
  | NJoiner ws -> List.length ws

let out_arity n =
  match n.kind with
  | NFilter _ | NJoiner _ -> 1
  | NSplitter (_, k) -> k

let entry_pop g =
  match g.entry with
  | None -> 0
  | Some i -> pop_rate_of (node g i)

let exit_push g =
  match g.exit_ with
  | None -> 0
  | Some i -> push_rate_of (node g i)

let sources g =
  List.filter (fun i -> in_edges g i = []) (List.init (num_nodes g) Fun.id)

let sinks g =
  List.filter (fun i -> out_edges g i = []) (List.init (num_nodes g) Fun.id)

(* Kahn's algorithm over "strict" edges: an edge only constrains the order
   when its initial tokens cannot cover one firing of the consumer
   (consumption plus peek margin).  Feedback-loop delay edges typically
   carry enough tokens and therefore break their cycle. *)
let topo_order g =
  let n = num_nodes g in
  let indeg = Array.make n 0 in
  let strict =
    List.filter
      (fun e -> e.init_tokens < consumption g e + peek_margin g e)
      g.edges
  in
  List.iter (fun e -> indeg.(e.dst) <- indeg.(e.dst) + 1) strict;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    List.iter
      (fun e ->
        if e.src = i then begin
          indeg.(e.dst) <- indeg.(e.dst) - 1;
          if indeg.(e.dst) = 0 then Queue.add e.dst queue
        end)
      strict
  done;
  let order = List.rev !order in
  if List.length order <> n then
    failwith "Graph.topo_order: zero-delay cycle (deadlocked graph)";
  order

let is_acyclic g =
  let n = num_nodes g in
  let indeg = Array.make n 0 in
  List.iter (fun e -> indeg.(e.dst) <- indeg.(e.dst) + 1) g.edges;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    List.iter
      (fun e ->
        if e.src = i then begin
          indeg.(e.dst) <- indeg.(e.dst) - 1;
          if indeg.(e.dst) = 0 then Queue.add e.dst queue
        end)
      g.edges
  done;
  !seen = n

let validate g =
  let n = num_nodes g in
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  Array.iteri
    (fun i nd -> if nd.id <> i then fail (nd.name ^ ": id/index mismatch"))
    g.nodes;
  List.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        fail "edge endpoint out of range"
      else begin
        if e.src_port < 0 || e.src_port >= out_arity (node g e.src) then
          fail (name g e.src ^ ": bad source port");
        if e.dst_port < 0 || e.dst_port >= in_arity (node g e.dst) then
          fail (name g e.dst ^ ": bad destination port");
        if e.init_tokens < 0 then fail "negative initial tokens";
        if List.length e.init_values <> e.init_tokens then
          fail "init_values length does not match init_tokens"
      end)
    g.edges;
  (* every port connected at most once; output ports of non-sink nodes
     connected exactly once *)
  let seen_out = Hashtbl.create 16 and seen_in = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let ko = (e.src, e.src_port) and ki = (e.dst, e.dst_port) in
      if Hashtbl.mem seen_out ko then
        fail (name g e.src ^ ": output port connected twice");
      if Hashtbl.mem seen_in ki then
        fail (name g e.dst ^ ": input port connected twice");
      Hashtbl.replace seen_out ko ();
      Hashtbl.replace seen_in ki ())
    g.edges;
  (* splitters and joiners must have all ports wired; the entry node's
     input port 0 reads the external host stream and the exit node's
     output port 0 writes it, so those are exempt *)
  Array.iter
    (fun nd ->
      match nd.kind with
      | NSplitter (_, k) ->
        for p = 0 to k - 1 do
          if
            (not (Hashtbl.mem seen_out (nd.id, p)))
            && not (g.exit_ = Some nd.id && p = 0)
          then fail (nd.name ^ ": splitter output port unconnected")
        done
      | NJoiner ws ->
        List.iteri
          (fun p _ ->
            if
              (not (Hashtbl.mem seen_in (nd.id, p)))
              && not (g.entry = Some nd.id && p = 0)
            then fail (nd.name ^ ": joiner input port unconnected"))
          ws
      | NFilter _ -> ())
    g.nodes;
  (match g.entry with
  | Some i when i < 0 || i >= n -> fail "entry out of range"
  | _ -> ());
  (match g.exit_ with
  | Some i when i < 0 || i >= n -> fail "exit out of range"
  | _ -> ());
  match !err with None -> Ok () | Some m -> Error m

let pp fmt g =
  Format.fprintf fmt "@[<v>graph (%d nodes, %d edges)" (num_nodes g)
    (List.length g.edges);
  Array.iter
    (fun nd ->
      let kind =
        match nd.kind with
        | NFilter f ->
          Printf.sprintf "filter pop=%d push=%d peek=%d" f.Kernel.pop_rate
            f.Kernel.push_rate f.Kernel.peek_rate
        | NSplitter (Ast.Duplicate, k) -> Printf.sprintf "duplicate(%d)" k
        | NSplitter (Ast.Round_robin ws, _) ->
          "split_rr(" ^ String.concat "," (List.map string_of_int ws) ^ ")"
        | NJoiner ws ->
          "join_rr(" ^ String.concat "," (List.map string_of_int ws) ^ ")"
      in
      Format.fprintf fmt "@,  [%d] %s : %s" nd.id nd.name kind)
    g.nodes;
  List.iter
    (fun e ->
      Format.fprintf fmt "@,  %d.%d -> %d.%d%s" e.src e.src_port e.dst
        e.dst_port
        (if e.init_tokens > 0 then Printf.sprintf " (init %d)" e.init_tokens
         else ""))
    g.edges;
  Format.fprintf fmt "@]"
