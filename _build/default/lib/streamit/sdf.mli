(** Synchronous-dataflow steady-state analysis (Lee & Messerschmitt '87).

    Solves the balance equations [I_uv * k_v = O_uv * k_u] over all edges
    to obtain the {e primitive repetition vector}: the smallest positive
    integer firing counts under which every channel's token population is
    unchanged across one steady state (Sec. II-B of the paper). *)

type rates = {
  reps : int array;
      (** [reps.(v)] = firings of node [v] per primitive steady state *)
  edge_tokens : (Graph.edge * int) list;
      (** tokens crossing each edge in one steady state *)
}

val steady_state : Graph.t -> (rates, string) result
(** [Error] when the graph is rate-inconsistent (no finite-buffer schedule
    exists) or not connected. *)

val scaled_reps : rates -> int -> int array
(** Repetition vector of a steady state coarsened by an integer factor. *)

val tokens_per_steady_state : Graph.t -> rates -> Graph.edge -> int

val input_tokens : Graph.t -> rates -> int
(** External input tokens consumed per steady state (0 without entry). *)

val output_tokens : Graph.t -> rates -> int

val check : Graph.t -> rates -> (unit, string) result
(** Re-verifies the balance equation on every edge — the solver's
    self-check, also used by property tests. *)
