(** Sequential steady-state schedules and their buffer requirements.

    Two classical schedule families from the SDF literature, both used by
    the paper: {e Single Appearance Schedules} (Bhattacharyya & Lee), which
    fire each node all its repetitions in a row and maximise buffering —
    the paper's [Serial] baseline runs one — and {e minimum-latency /
    demand-driven} schedules (Karczmarek et al.), which minimise it. *)

type firing = int
(** Node id; a schedule is one steady state's firing sequence. *)

val sas : Graph.t -> Sdf.rates -> firing list
(** Single-appearance schedule in topological order: node [v] appears as a
    block of [reps.(v)] consecutive firings. *)

val min_latency : Graph.t -> Sdf.rates -> firing list
(** Demand-driven schedule: repeatedly fires any node that is ready while
    retiring nodes that completed their repetitions, preferring nodes
    closest to the sinks — an O(V·E) approximation of the minimum-buffer
    schedule. *)

val is_admissible : Graph.t -> Sdf.rates -> firing list -> (unit, string) result
(** Checks the firing rule on every prefix: no channel underflow (including
    peek margins) and exact repetition counts over the whole sequence. *)

val buffer_occupancy : Graph.t -> firing list -> (Graph.edge * int) list
(** Maximum token occupancy reached on each edge when executing one steady
    state from the initial channel state (token-counting simulation). *)

val buffer_bytes : Graph.t -> firing list -> int
(** Total bytes across edges ([max occupancy × 4] per edge). *)
