(** Recursive bitonic sorting network (Table I, "BitonicRec").

    The same 8-key sorter expressed the way the StreamIt benchmark builds
    it: [sort n] recursively sorts two halves in opposite directions
    through a round-robin split-join and merges the resulting bitonic
    sequence with a recursive [merge n].  Structurally richer than the
    iterative network (more, smaller split-joins), which is why the paper
    reports a different filter count for it. *)

val n : int
val stream : unit -> Streamit.Ast.stream
val name : string
val description : string
