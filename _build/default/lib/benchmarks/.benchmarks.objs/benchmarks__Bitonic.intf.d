lib/benchmarks/bitonic.mli: Streamit
