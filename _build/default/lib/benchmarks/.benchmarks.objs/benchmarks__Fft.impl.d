lib/benchmarks/fft.ml: Array Ast Float Kernel List Printf Streamit Types
