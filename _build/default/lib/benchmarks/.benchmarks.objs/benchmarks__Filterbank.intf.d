lib/benchmarks/filterbank.mli: Streamit
