lib/benchmarks/matrix_mult.mli: Streamit
