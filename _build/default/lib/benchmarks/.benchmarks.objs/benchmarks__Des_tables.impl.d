lib/benchmarks/des_tables.ml: Array Char String
