lib/benchmarks/des.mli: Streamit
