lib/benchmarks/bitonic_rec.mli: Streamit
