lib/benchmarks/fir.ml: Array Float Kernel List Printf Streamit Types
