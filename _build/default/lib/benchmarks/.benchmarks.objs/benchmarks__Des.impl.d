lib/benchmarks/des.ml: Array Ast Des_tables Kernel List Printf Streamit Types
