lib/benchmarks/fm_radio.mli: Streamit
