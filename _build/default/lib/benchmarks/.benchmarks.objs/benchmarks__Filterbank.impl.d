lib/benchmarks/filterbank.ml: Array Ast Fir Kernel List Printf Streamit
