lib/benchmarks/fft.mli: Streamit
