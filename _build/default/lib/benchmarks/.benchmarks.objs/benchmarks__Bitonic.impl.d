lib/benchmarks/bitonic.ml: Ast Kernel List Printf Streamit Types
