lib/benchmarks/fm_radio.ml: Ast Fir Kernel List Printf Streamit
