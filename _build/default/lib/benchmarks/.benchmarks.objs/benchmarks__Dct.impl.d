lib/benchmarks/dct.ml: Array Ast Float Kernel List Printf Streamit Types
