lib/benchmarks/bitonic_rec.ml: Ast Kernel List Printf Streamit Types
