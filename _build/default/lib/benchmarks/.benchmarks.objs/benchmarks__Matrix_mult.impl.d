lib/benchmarks/matrix_mult.ml: Ast Kernel List Printf Streamit
