lib/benchmarks/registry.ml: Ast Bitonic Bitonic_rec Dct Des Fft Filterbank Fm_radio Kernel List Matrix_mult Streamit String Types
