lib/benchmarks/registry.mli: Streamit
