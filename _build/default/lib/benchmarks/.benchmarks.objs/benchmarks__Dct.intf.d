lib/benchmarks/dct.mli: Streamit
