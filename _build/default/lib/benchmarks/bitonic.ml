open Streamit

let n = 8
let name = "Bitonic"
let description = "Bitonic sorting network for sorting 8 integers."

(* Compare-exchange filter over a contiguous block of [2*d] keys:
   position j is compared with j+d; ascending puts the smaller first. *)
let compare_exchange ~d ~asc tag =
  let open Kernel.Build in
  let lo = if asc then Kernel.Min else Kernel.Max in
  let hi = if asc then Kernel.Max else Kernel.Min in
  Kernel.make_filter
    ~name:(Printf.sprintf "CE%s_d%d_%s" tag d (if asc then "asc" else "desc"))
    ~pop:(2 * d) ~push:(2 * d) ~in_ty:Types.TInt ~out_ty:Types.TInt
    [
      arr "w" (2 * d);
      for_ "j" (i 0) (i (2 * d)) [ seti "w" (v "j") pop ];
      for_ "j" (i 0) (i d)
        [
          let_ "a" (geti "w" (v "j"));
          let_ "b" (geti "w" (v "j" +: i d));
          seti "w" (v "j") (Kernel.Binop (lo, v "a", v "b"));
          seti "w" (v "j" +: i d) (Kernel.Binop (hi, v "a", v "b"));
        ];
      for_ "j" (i 0) (i (2 * d)) [ push (geti "w" (v "j")) ];
    ]

(* One network stage: comparisons at distance [d], sort direction decided
   per block of [blk] elements. *)
let stage ~phase ~d ~blk =
  let branches = n / (2 * d) in
  let tag = Printf.sprintf "p%d" phase in
  if branches = 1 then
    Ast.Filter (compare_exchange ~d ~asc:true tag)
  else begin
    let branch b =
      let start = 2 * d * b in
      let asc = start / blk mod 2 = 0 in
      Ast.Filter (compare_exchange ~d ~asc (Printf.sprintf "%s_b%d" tag b))
    in
    let weights = List.init branches (fun _ -> 2 * d) in
    Ast.round_robin_sj
      (Printf.sprintf "stage_p%d_d%d" phase d)
      weights
      (List.init branches branch)
      weights
  end

let stream () =
  let stages = ref [] in
  let phase_count = 3 (* log2 n *) in
  for p = 1 to phase_count do
    let blk = 1 lsl p in
    let d = ref (blk / 2) in
    while !d >= 1 do
      stages := stage ~phase:p ~d:!d ~blk :: !stages;
      d := !d / 2
    done
  done;
  Ast.pipeline name (List.rev !stages)
