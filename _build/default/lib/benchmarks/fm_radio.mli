(** Software FM radio with multi-band equalizer (Table I, "FMRadio";
    22 peeking filters).

    Front-end low-pass filter (peeking FIR), FM demodulator (peeks a pair
    of adjacent samples), then a 10-band equalizer: each band computes a
    band-pass response as the difference of two peeking low-pass FIRs and
    applies a per-band gain; the bands are summed.  1 + 1 + 2x10 = 22
    peeking filters, matching Table I. *)

val bands : int
val stream : unit -> Streamit.Ast.stream
val name : string
val description : string
