(* Shared FIR construction for the signal-processing benchmarks
   (Filterbank, FMRadio): peeking filters computing a sliding dot product
   against a windowed-sinc tap table. *)

open Streamit

let pi = Float.pi

(* Hamming-windowed sinc low-pass taps with cutoff [cutoff] (fraction of
   Nyquist, in (0, 1]). *)
let lowpass_taps ~taps ~cutoff =
  let m = taps - 1 in
  Array.init taps (fun i ->
      let w =
        0.54 -. (0.46 *. cos (2.0 *. pi *. float_of_int i /. float_of_int m))
      in
      let x = float_of_int i -. (float_of_int m /. 2.0) in
      let s =
        if Float.abs x < 1e-9 then cutoff
        else sin (pi *. cutoff *. x) /. (pi *. x)
      in
      w *. s)

(* FIR filter: pop [decim] tokens, push 1, peeking [taps] deep — the
   StreamIt idiom for combined filtering and decimation.  With
   [decim = 1] it is a plain sliding-window FIR. *)
let fir_filter ~fname ~taps ~decim coeffs =
  let open Kernel.Build in
  if Array.length coeffs <> taps then invalid_arg "Fir.fir_filter";
  Kernel.make_filter ~name:fname ~pop:decim ~push:1 ~peek:(max taps decim)
    ~tables:[ ("taps", Array.map (fun x -> Types.VFloat x) coeffs) ]
    ([
       let_ "acc" (f 0.0);
       for_ "j" (i 0) (i taps)
         [ set "acc" (v "acc" +: (peek (v "j") *: tbl "taps" (v "j"))) ];
       push (v "acc");
     ]
    @ List.init decim (fun d -> let_ (Printf.sprintf "_d%d" d) pop))

let lowpass ~fname ~taps ~cutoff ~decim =
  fir_filter ~fname ~taps ~decim (lowpass_taps ~taps ~cutoff)

(* Gain/amplifier stage. *)
let gain ~fname g =
  let open Kernel.Build in
  Kernel.make_filter ~name:fname ~pop:1 ~push:1 [ push (pop *: f g) ]

(* n-way adder: pops one token per input stream round-robin slot. *)
let adder ~fname n =
  let open Kernel.Build in
  Kernel.make_filter ~name:fname ~pop:n ~push:1
    [
      let_ "acc" (f 0.0);
      for_ "j" (i 0) (i n) [ set "acc" (v "acc" +: pop) ];
      push (v "acc");
    ]
