open Streamit

let branches = 8
let taps = 28
let name = "Filterbank"
let description = "Filter bank for multirate signal processing (8 bands)."

(* Decimator: keep one sample in [k]. *)
let downsample k fname =
  let open Kernel.Build in
  Kernel.make_filter ~name:fname ~pop:k ~push:1
    ([ push pop ] @ List.init (k - 1) (fun d -> let_ (Printf.sprintf "_d%d" d) pop))

(* Expander: one sample followed by k-1 zeros. *)
let upsample k fname =
  let open Kernel.Build in
  Kernel.make_filter ~name:fname ~pop:1 ~push:k
    ([ push pop ] @ List.init (k - 1) (fun _ -> push (f 0.0)))

let band b =
  let lo = float_of_int b /. float_of_int branches in
  let hi = float_of_int (b + 1) /. float_of_int branches in
  let analysis =
    (* band-pass as a frequency-shifted low-pass: taps of the band's
       upper cutoff minus taps of the lower cutoff *)
    let t_hi = Fir.lowpass_taps ~taps ~cutoff:(max 0.02 hi) in
    let t_lo = Fir.lowpass_taps ~taps ~cutoff:(max 0.01 lo) in
    Array.init taps (fun i -> t_hi.(i) -. t_lo.(i))
  in
  Ast.pipeline
    (Printf.sprintf "band%d" b)
    [
      Ast.Filter
        (Fir.fir_filter ~fname:(Printf.sprintf "Analysis%d" b) ~taps ~decim:1
           analysis);
      Ast.Filter (downsample branches (Printf.sprintf "Down%d" b));
      Ast.Filter (upsample branches (Printf.sprintf "Up%d" b));
      Ast.Filter
        (Fir.lowpass
           ~fname:(Printf.sprintf "Synthesis%d" b)
           ~taps ~cutoff:(1.2 /. float_of_int branches) ~decim:1);
      Ast.Filter (Fir.gain ~fname:(Printf.sprintf "Gain%d" b) 1.0);
    ]

let stream () =
  let ones = List.init branches (fun _ -> 1) in
  Ast.pipeline name
    [
      Ast.duplicate_sj "bank" (List.init branches band) ones;
      Ast.Filter (Fir.adder ~fname:"Combine" branches);
    ]
