open Streamit

let points = 64
let groups = 8 (* radix: 64 = 8 x 8 *)
let name = "FFT"
let description = "Fast Fourier Transform (64-point, radix-8 Cooley-Tukey)."

let dft_reference input =
  let n = Array.length input in
  Array.init n (fun k ->
      let re = ref 0.0 and im = ref 0.0 in
      for j = 0 to n - 1 do
        let xr, xi = input.(j) in
        let ang = -2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int n in
        re := !re +. (xr *. cos ang) -. (xi *. sin ang);
        im := !im +. (xr *. sin ang) +. (xi *. cos ang)
      done;
      (!re, !im))

let vfloat x = Types.VFloat x

(* Cooley-Tukey 64 = 8x8 decomposition:
     X[k1 + 8 k2] = sum_j1 (W64^(j1 k1) * G[j1][k1]) W8^(j1 k2)
     G[j1][k1]    = sum_j2 x[8 j2 + j1] W8^(j2 k1)
   Rank 1: branch j1 receives the samples {x[8 j2 + j1]} (round-robin
   splitter with complex weight 2), computes an 8-point DFT over j2 and
   applies the twiddles W64^(j1 k1); the joiner (weight 16) concatenates
   the branch outputs j1-major.
   Rank 2: branch k1 receives {T[j1][k1]} (round-robin splitter again),
   computes the DFT over j1; the joiner with weight 2 interleaves one
   complex value per branch, which is exactly the order X[k1 + 8 k2]. *)

let dft8_tables =
  let n = groups in
  let cos_t =
    Array.init (n * n) (fun idx ->
        vfloat
          (cos
             (-2.0 *. Float.pi
             *. float_of_int (idx / n * (idx mod n))
             /. float_of_int n)))
  in
  let sin_t =
    Array.init (n * n) (fun idx ->
        vfloat
          (sin
             (-2.0 *. Float.pi
             *. float_of_int (idx / n * (idx mod n))
             /. float_of_int n)))
  in
  (cos_t, sin_t)

(* 8-point DFT; optionally post-multiplied by the rank-1 twiddles
   W64^(j1 k) for a fixed branch index j1. *)
let dft8_filter ~fname ~twiddle_j1 =
  let open Kernel.Build in
  let n = groups in
  let cos_t, sin_t = dft8_tables in
  let tw_tables =
    match twiddle_j1 with
    | None -> []
    | Some j1 ->
      let twc =
        Array.init n (fun k ->
            vfloat
              (cos
                 (-2.0 *. Float.pi *. float_of_int (j1 * k)
                 /. float_of_int points)))
      in
      let tws =
        Array.init n (fun k ->
            vfloat
              (sin
                 (-2.0 *. Float.pi *. float_of_int (j1 * k)
                 /. float_of_int points)))
      in
      [ ("twc", twc); ("tws", tws) ]
  in
  let post =
    match twiddle_j1 with
    | None -> [ push (v "sr"); push (v "si") ]
    | Some _ ->
      [
        let_ "pr" ((v "sr" *: tbl "twc" (v "k")) -: (v "si" *: tbl "tws" (v "k")));
        let_ "pi" ((v "sr" *: tbl "tws" (v "k")) +: (v "si" *: tbl "twc" (v "k")));
        push (v "pr");
        push (v "pi");
      ]
  in
  Kernel.make_filter ~name:fname ~pop:(2 * n) ~push:(2 * n)
    ~tables:([ ("cosT", cos_t); ("sinT", sin_t) ] @ tw_tables)
    [
      arr "re" n;
      arr "im" n;
      for_ "j" (i 0) (i n) [ seti "re" (v "j") pop; seti "im" (v "j") pop ];
      for_ "k" (i 0) (i n)
        ([
           let_ "sr" (f 0.0);
           let_ "si" (f 0.0);
           for_ "j" (i 0) (i n)
             [
               let_ "c" (tbl "cosT" ((v "k" *: i n) +: v "j"));
               let_ "s" (tbl "sinT" ((v "k" *: i n) +: v "j"));
               set "sr"
                 ((v "sr" +: (geti "re" (v "j") *: v "c"))
                 -: (geti "im" (v "j") *: v "s"));
               set "si"
                 ((v "si" +: (geti "re" (v "j") *: v "s"))
                 +: (geti "im" (v "j") *: v "c"));
             ];
         ]
        @ post);
    ]

let rank1 =
  let twos = List.init groups (fun _ -> 2) in
  let sixteens = List.init groups (fun _ -> 2 * groups) in
  Ast.round_robin_sj "fft_rank1" twos
    (List.init groups (fun j1 ->
         Ast.Filter
           (dft8_filter ~fname:(Printf.sprintf "DFT8Tw_j%d" j1)
              ~twiddle_j1:(Some j1))))
    sixteens

let rank2 =
  let twos = List.init groups (fun _ -> 2) in
  Ast.round_robin_sj "fft_rank2" twos
    (List.init groups (fun k1 ->
         Ast.Filter
           (dft8_filter ~fname:(Printf.sprintf "DFT8_k%d" k1) ~twiddle_j1:None)))
    twos

let stream () = Ast.pipeline name [ rank1; rank2 ]
