open Streamit

let name = "DES"
let description = "DES encryption (16 rounds, bit-exact FIPS 46-3)."

module Tables = struct
  let round_keys = Des_tables.round_keys
  let default_key = Des_tables.default_key
end

let vi n = Types.VInt n
let itable arr = Array.map vi arr

(* 64-bit permutation filter: pop (L, R), push permuted (L', R').
   Bit 1 is the MSB of L; bit 33 is the MSB of R. *)
let perm64_filter fname table =
  let open Kernel.Build in
  let gather dst range_lo =
    [
      let_ dst (i 0);
      for_ "j" (i range_lo) (i (range_lo + 32))
        [
          let_ "src" (tbl "T" (v "j"));
          let_ "bit"
            (Kernel.Cond
               ( v "src" <=: i 32,
                 (v "l" >>: (i 32 -: v "src")) &: i 1,
                 (v "r" >>: (i 64 -: v "src")) &: i 1 ));
          set dst ((v dst <<: i 1) |: v "bit");
        ];
    ]
  in
  Kernel.make_filter ~name:fname ~pop:2 ~push:2 ~in_ty:Types.TInt
    ~out_ty:Types.TInt
    ~tables:[ ("T", itable table) ]
    ([ let_ "l" pop; let_ "r" pop ]
    @ gather "outl" 0 @ gather "outr" 32
    @ [ push (v "outl"); push (v "outr") ])

(* Round filter 1: expansion + key mixing.
   pop (L, R) -> push (L, R, X1, X2) where X1X2 = E(R) xor K_r. *)
let expand_filter r (k1, k2) =
  let open Kernel.Build in
  let gather dst lo =
    [
      let_ dst (i 0);
      for_ "j" (i lo) (i (lo + 24))
        [
          let_ "src" (tbl "E" (v "j"));
          set dst ((v dst <<: i 1) |: ((v "r" >>: (i 32 -: v "src")) &: i 1));
        ];
    ]
  in
  Kernel.make_filter
    ~name:(Printf.sprintf "Expand_r%d" r)
    ~pop:2 ~push:4 ~in_ty:Types.TInt ~out_ty:Types.TInt
    ~tables:[ ("E", itable Des_tables.e) ]
    ([ let_ "l" pop; let_ "r" pop ]
    @ gather "x1" 0 @ gather "x2" 24
    @ [
        push (v "l");
        push (v "r");
        push (v "x1" ^: i k1);
        push (v "x2" ^: i k2);
      ])

(* Round filter 2: S-box substitution.
   pop (L, R, X1, X2) -> push (L, R, S) with S the 32-bit sbox output. *)
let sbox_filter r =
  let open Kernel.Build in
  let flat =
    Array.concat (List.init 8 (fun i -> Des_tables.sbox_flat i))
  in
  Kernel.make_filter
    ~name:(Printf.sprintf "Sbox_r%d" r)
    ~pop:4 ~push:3 ~in_ty:Types.TInt ~out_ty:Types.TInt
    ~tables:[ ("S", itable flat) ]
    [
      let_ "l" pop;
      let_ "r" pop;
      let_ "x1" pop;
      let_ "x2" pop;
      let_ "s" (i 0);
      for_ "b" (i 0) (i 4)
        [
          let_ "chunk" ((v "x1" >>: (i 18 -: (i 6 *: v "b"))) &: i 63);
          set "s" ((v "s" <<: i 4) |: tbl "S" ((v "b" *: i 64) +: v "chunk"));
        ];
      for_ "b" (i 0) (i 4)
        [
          let_ "chunk" ((v "x2" >>: (i 18 -: (i 6 *: v "b"))) &: i 63);
          set "s"
            ((v "s" <<: i 4) |: tbl "S" (((v "b" +: i 4) *: i 64) +: v "chunk"));
        ];
      push (v "l");
      push (v "r");
      push (v "s");
    ]

(* Round filter 3: P permutation + Feistel swap.
   pop (L, R, S) -> push (R, L xor P(S)); the last round omits the swap. *)
let perm_filter r ~last =
  let open Kernel.Build in
  Kernel.make_filter
    ~name:(Printf.sprintf "PermXor_r%d" r)
    ~pop:3 ~push:2 ~in_ty:Types.TInt ~out_ty:Types.TInt
    ~tables:[ ("P", itable Des_tables.p) ]
    ([
       let_ "l" pop;
       let_ "r" pop;
       let_ "s" pop;
       let_ "f" (i 0);
       for_ "j" (i 0) (i 32)
         [
           let_ "src" (tbl "P" (v "j"));
           set "f" ((v "f" <<: i 1) |: ((v "s" >>: (i 32 -: v "src")) &: i 1));
         ];
     ]
    @
    if last then [ push (v "l" ^: v "f"); push (v "r") ]
    else [ push (v "r"); push (v "l" ^: v "f") ])

let network keys =
  let rounds =
    List.concat
      (List.init 16 (fun r ->
           let k1, k2 = keys.(r) in
           [
             Ast.Filter (expand_filter (r + 1) (k1, k2));
             Ast.Filter (sbox_filter (r + 1));
             Ast.Filter (perm_filter (r + 1) ~last:(r = 15));
           ]))
  in
  [ Ast.Filter (perm64_filter "IP" Des_tables.ip) ]
  @ rounds
  @ [ Ast.Filter (perm64_filter "FP" Des_tables.fp) ]

let stream ?(key = Des_tables.default_key) () =
  Ast.pipeline name (network (Des_tables.round_keys key))

let decrypt_stream ?(key = Des_tables.default_key) () =
  let keys = Des_tables.round_keys key in
  let rev = Array.init 16 (fun r -> keys.(15 - r)) in
  Ast.pipeline "DES_decrypt" (network rev)
