open Streamit

let bands = 10
let taps = 28
let name = "FMRadio"
let description = "Software FM radio with equalizer (10 bands)."

(* FM demodulation: the phase difference of adjacent samples, through a
   rational arctangent approximation (atan x ~ x / (1 + 0.28 x^2)). *)
let demodulator =
  let open Kernel.Build in
  let gain = 0.5 in
  Kernel.make_filter ~name:"FMDemod" ~pop:1 ~push:1 ~peek:2
    [
      let_ "x" (peek (i 0) *: peek (i 1));
      let_ "y" (v "x" /: (f 1.0 +: (f 0.28 *: v "x" *: v "x")));
      push (f gain *: v "y");
      let_ "_d" pop;
    ]

let subtracter fname =
  let open Kernel.Build in
  Kernel.make_filter ~name:fname ~pop:2 ~push:1
    [ let_ "a" pop; let_ "b" pop; push (v "a" -: v "b") ]

let band b =
  let lo = 0.05 +. (0.9 *. float_of_int b /. float_of_int bands) in
  let hi = 0.05 +. (0.9 *. float_of_int (b + 1) /. float_of_int bands) in
  let lpf cutoff tag =
    Ast.Filter
      (Fir.lowpass ~fname:(Printf.sprintf "EqLPF%d_%s" b tag) ~taps
         ~cutoff ~decim:1)
  in
  Ast.pipeline
    (Printf.sprintf "eqband%d" b)
    [
      Ast.duplicate_sj
        (Printf.sprintf "bpf%d" b)
        [ lpf hi "hi"; lpf lo "lo" ]
        [ 1; 1 ];
      Ast.Filter (subtracter (Printf.sprintf "Subtract%d" b));
      Ast.Filter
        (Fir.gain
           ~fname:(Printf.sprintf "EqGain%d" b)
           (1.0 +. (0.1 *. float_of_int b)));
    ]

let stream () =
  let ones = List.init bands (fun _ -> 1) in
  Ast.pipeline name
    [
      Ast.Filter (Fir.lowpass ~fname:"FrontLPF" ~taps ~cutoff:0.5 ~decim:1);
      Ast.Filter demodulator;
      Ast.duplicate_sj "equalizer" (List.init bands band) ones;
      Ast.Filter (Fir.adder ~fname:"EqCombine" bands);
    ]
