open Streamit

let dim = 8
let name = "MatrixMult"
let description = "Blocked matrix multiply (8x8 frames)."

(* Replicate a whole [n]-token group [times] times. *)
let replicate ~fname n times =
  let open Kernel.Build in
  Kernel.make_filter ~name:fname ~pop:n ~push:(n * times)
    [
      arr "g" n;
      for_ "j" (i 0) (i n) [ seti "g" (v "j") pop ];
      for_ "t" (i 0) (i times)
        [ for_ "j" (i 0) (i n) [ push (geti "g" (v "j")) ] ];
    ]

(* Replicate each [n]-token group [times] times, interleaved at the
   row level: used to pair every A row with every B column. *)
let repeat_rows ~fname rows cols times =
  let open Kernel.Build in
  let nn = rows * cols in
  Kernel.make_filter ~name:fname ~pop:nn ~push:(nn * times)
    [
      arr "m" nn;
      for_ "j" (i 0) (i nn) [ seti "m" (v "j") pop ];
      for_ "r" (i 0) (i rows)
        [
          for_ "t" (i 0) (i times)
            [ for_ "c" (i 0) (i cols) [ push (geti "m" ((v "r" *: i cols) +: v "c")) ] ];
        ];
    ]

(* Transpose by routing: split one token per branch, rejoin a column at a
   time. *)
let transpose tag n =
  let ones = List.init n (fun _ -> 1) in
  let cols = List.init n (fun _ -> n) in
  Ast.round_robin_sj
    (Printf.sprintf "transpose_%s" tag)
    ones
    (List.init n (fun b ->
         Ast.Filter
           { (Kernel.identity ()) with Kernel.name = Printf.sprintf "T%s%d" tag b }))
    cols

let dot_product ~fname n =
  let open Kernel.Build in
  Kernel.make_filter ~name:fname ~pop:(2 * n) ~push:1
    [
      arr "a" n;
      for_ "j" (i 0) (i n) [ seti "a" (v "j") pop ];
      let_ "acc" (f 0.0);
      for_ "j" (i 0) (i n) [ set "acc" (v "acc" +: (geti "a" (v "j") *: pop)) ];
      push (v "acc");
    ]

let stream () =
  let n = dim in
  let nn = n * n in
  (* A-side: each row repeated n times (once per B column).
     B-side: transpose, then the whole matrix repeated n times. *)
  let a_side =
    Ast.pipeline "a_side"
      [ Ast.Filter (repeat_rows ~fname:"RepeatRowsA" n n n) ]
  in
  let b_side =
    Ast.pipeline "b_side"
      [ transpose "B" n; Ast.Filter (replicate ~fname:"RepeatB" nn n) ]
  in
  Ast.pipeline name
    [
      (* separate the A frame from the B frame *)
      Ast.round_robin_sj "opsplit" [ nn; nn ] [ a_side; b_side ] [ n; n ];
      Ast.Filter (dot_product ~fname:"DotProduct" n);
    ]
