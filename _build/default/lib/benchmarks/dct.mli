(** 8x8 two-dimensional Discrete Cosine Transform (Table I, "DCT").

    The stream is a sequence of 64-float frames (row-major 8x8 blocks).
    Rows and columns are transformed by separate ranks of eight 1-D
    DCT-II filters; the round-robin joiner between the ranks performs the
    transpose for free.  This is the splitter/joiner-heavy, phased
    structure the paper identifies as the reason the Serial baseline
    edges out SWP on this benchmark. *)

val size : int
(** 8: transform dimension. *)

val stream : unit -> Streamit.Ast.stream

val dct_1d_reference : float array -> float array
(** Host-side orthonormal DCT-II of one length-8 vector, for output
    validation in the test suite. *)

val name : string
val description : string
