(** DES encryption (Table I, "DES").

    A full 16-round FIPS 46-3 DES encoder over a stream of 64-bit blocks
    carried as pairs of 32-bit integer tokens (L, R).  Each round is
    three pipeline filters — expansion + key mixing, S-box substitution,
    and permutation + Feistel swap — bracketed by the initial and final
    permutations, mirroring the fine-grained structure of the StreamIt
    benchmark.  Round keys are derived at compile time from a fixed key
    (the classic FIPS walkthrough key by default). *)

val stream : ?key:string -> unit -> Streamit.Ast.stream
(** [key] is 16 hex digits; default ["133457799BBCDFF1"]. *)

val decrypt_stream : ?key:string -> unit -> Streamit.Ast.stream
(** The same network with the round keys reversed — DES decryption; used
    by round-trip tests. *)

val name : string
val description : string

module Tables : sig
  val round_keys : string -> (int * int) array
  val default_key : string
end
