(** Fast Fourier Transform (Table I, "FFT").

    Radix-2 decimation-in-time FFT of 64-point complex frames, streamed
    as interleaved (re, im) float pairs.  Built the coarse-grained way
    the StreamIt FFT benchmark is: a bit-reversal reorder filter followed
    by log2(n) whole-frame butterfly-stage filters with twiddle tables —
    compute-dense kernels rather than deep split-join routing. *)

val points : int
(** 64 complex points per frame. *)

val stream : unit -> Streamit.Ast.stream

val dft_reference : (float * float) array -> (float * float) array
(** Naive O(n^2) DFT for validation. *)

val name : string
val description : string
