(** Benchmark registry: the eight evaluated programs of Table I with
    their paper-reported metadata, plus input generators for functional
    validation. *)

type entry = {
  name : string;
  description : string;
  stream : unit -> Streamit.Ast.stream;
  paper_filters : int;        (** filter count reported in Table I *)
  paper_peeking : int;        (** peeking-filter count from Table I *)
  paper_buffer_bytes : int;   (** SWP8 buffer requirement from Table II *)
  input_ty : Streamit.Types.elem_ty;
  input : int -> Streamit.Types.value;
      (** deterministic pseudo-random input tape for validation *)
}

val all : entry list
val find : string -> entry option
val names : string list

val our_filters : entry -> int
(** Leaf-filter count of our re-implementation (printed next to
    [paper_filters] when regenerating Table I). *)

val our_peeking : entry -> int
