(** Multirate filter bank (Table I, "Filterbank"; 16 peeking filters).

    Eight-channel analysis/synthesis bank: the input is duplicated to
    eight branches, each of which band-filters (peeking FIR), decimates
    by 8, re-expands, interpolation-filters (second peeking FIR) and
    applies a per-band gain; the branches are summed back into one
    signal.  Two peeking FIRs per branch gives the paper's 16 peeking
    filters. *)

val branches : int
val stream : unit -> Streamit.Ast.stream
val name : string
val description : string
