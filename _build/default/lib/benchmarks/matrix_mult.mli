(** Matrix multiplication (Table I, "MatrixMult").

    Frames of two 8x8 row-major matrices (A then B) arrive on one
    stream.  B is transposed by pure split-join routing, both operands
    are replicated so that every (row, column) pair meets, and a rank of
    dot-product filters produces the row-major product.  Like the
    StreamIt benchmark, almost all the traffic is data movement through
    splitters and joiners — the bandwidth-hungry "phased" shape on which
    the paper's Serial baseline slightly wins. *)

val dim : int
val stream : unit -> Streamit.Ast.stream
val name : string
val description : string
