open Streamit

let size = 8
let name = "DCT"
let description = "8x8 Discrete Cosine Transform."

(* Orthonormal DCT-II basis: out[k] = c_k * sum_j in[j] cos((2j+1)k pi/16),
   c_0 = sqrt(1/8), c_k = sqrt(2/8). *)
let basis =
  Array.init (size * size) (fun idx ->
      let k = idx / size and j = idx mod size in
      let ck =
        if k = 0 then sqrt (1.0 /. float_of_int size)
        else sqrt (2.0 /. float_of_int size)
      in
      ck
      *. cos
           (Float.pi
           *. float_of_int ((2 * j) + 1)
           *. float_of_int k
           /. (2.0 *. float_of_int size)))

let dct_1d_reference input =
  Array.init size (fun k ->
      let acc = ref 0.0 in
      for j = 0 to size - 1 do
        acc := !acc +. (input.(j) *. basis.((k * size) + j))
      done;
      !acc)

(* 1-D DCT-II over one 8-float row via the coefficient table. *)
let dct_1d tag =
  let open Kernel.Build in
  let table =
    ("coeff", Array.map (fun x -> Types.VFloat x) basis)
  in
  Kernel.make_filter
    ~name:(Printf.sprintf "DCT1D_%s" tag)
    ~pop:size ~push:size ~tables:[ table ]
    [
      arr "row" size;
      for_ "j" (i 0) (i size) [ seti "row" (v "j") pop ];
      for_ "k" (i 0) (i size)
        [
          let_ "acc" (f 0.0);
          for_ "j" (i 0) (i size)
            [
              set "acc"
                (v "acc"
                +: (geti "row" (v "j") *: tbl "coeff" ((v "k" *: i size) +: v "j")));
            ];
          push (v "acc");
        ];
    ]

(* A rank of eight parallel 1-D DCTs.  The input split deals one row to
   each branch; the joiner with weight 1 interleaves one output value per
   branch — i.e. it emits the transpose of the transformed block, so two
   ranks in sequence implement the full 2-D transform. *)
let rank tag =
  let rows = List.init size (fun _ -> size) in
  let ones = List.init size (fun _ -> 1) in
  Ast.round_robin_sj
    (Printf.sprintf "dct_rank_%s" tag)
    rows
    (List.init size (fun b -> Ast.Filter (dct_1d (Printf.sprintf "%s%d" tag b))))
    ones

let stream () =
  Ast.pipeline name [ rank "rows"; rank "cols" ]
