(** Bitonic sorting network for 8 integers (Table I, "Bitonic").

    Iterative construction: the classic 6-stage network of 2-input
    compare-exchange filters, each stage expressed as a round-robin
    split-join routing element pairs at the stage's comparison distance.
    The stream is a sequence of 8-integer frames; each frame leaves the
    network sorted ascending. *)

val n : int
(** Frame size: 8 keys. *)

val stream : unit -> Streamit.Ast.stream

val name : string
val description : string
