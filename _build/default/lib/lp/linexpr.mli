(** Sparse linear expressions over integer-indexed variables, with exact
    rational coefficients and an additive constant.

    An expression denotes [c0 + sum_i (a_i * x_i)].  Variables are
    identified by the integer ids handed out by {!Problem.add_var}. *)

open Numeric

type t

val zero : t
val const : Rat.t -> t
val of_int : int -> t

val var : ?coef:Rat.t -> int -> t
(** [var v] is the expression [1 * x_v]; [var ~coef v] scales it. *)

val of_terms : ?const:Rat.t -> (Rat.t * int) list -> t
(** [of_terms [(a1, v1); ...]] builds [a1*x_v1 + ...], merging duplicate
    variables. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val add_term : t -> Rat.t -> int -> t
val add_const : t -> Rat.t -> t

val coef : t -> int -> Rat.t
(** Coefficient of a variable (zero when absent). *)

val constant : t -> Rat.t
val terms : t -> (int * Rat.t) list
(** Nonzero terms in increasing variable order. *)

val vars : t -> int list
val is_constant : t -> bool

val eval : (int -> Rat.t) -> t -> Rat.t
(** Evaluate under an assignment. *)

val map_vars : (int -> int) -> t -> t
(** Renames variables; merged if the mapping collides. *)

val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** [pp pp_var] prints e.g. ["3x0 - 1/2 x3 + 7"]. *)

val to_string : t -> string
(** Prints with default variable names [x<i>]. *)
