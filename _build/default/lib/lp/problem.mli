(** Mixed-integer linear programming problem container.

    A problem is a set of typed variables (continuous / integer / binary,
    each with optional bounds), a set of linear constraints, and an optional
    linear objective.  This is the interface the paper's scheduling ILP
    (Sec. III) is generated against; {!Simplex} solves the LP relaxation and
    {!Branch_bound} solves the MILP. *)

open Numeric

type relation = Le | Ge | Eq

type var_kind = Continuous | Integer | Binary

type cstr = private {
  name : string;
  lhs : Linexpr.t;  (** constant part always zero *)
  rel : relation;
  rhs : Rat.t;
}

type t

val create : unit -> t

val add_var :
  t -> ?lb:Rat.t option -> ?ub:Rat.t option -> kind:var_kind -> string -> int
(** [add_var p ~kind name] registers a fresh variable and returns its id.
    Default bounds: [lb = Some 0], [ub = None]; binaries are forced to
    [0, 1].  Ids are dense, starting at 0. *)

val add_constraint : t -> ?name:string -> Linexpr.t -> relation -> Linexpr.t -> unit
(** [add_constraint p lhs rel rhs]; both sides may carry constants and
    variables — they are normalised to [expr rel const] form. *)

val set_objective : t -> [ `Minimize | `Maximize ] -> Linexpr.t -> unit
(** Default objective is [`Minimize 0] (pure feasibility). *)

val num_vars : t -> int
val num_constraints : t -> int
val var_name : t -> int -> string
val var_kind : t -> int -> var_kind
val var_lb : t -> int -> Rat.t option
val var_ub : t -> int -> Rat.t option
val constraints : t -> cstr list
val objective : t -> [ `Minimize | `Maximize ] * Linexpr.t

val integer_vars : t -> int list
(** Ids of all [Integer] and [Binary] variables. *)

val check_assignment : t -> (int -> Rat.t) -> (unit, string) result
(** Verifies that an assignment satisfies every bound, every constraint and
    every integrality restriction; on failure the [Error] names the first
    violated item.  Used by tests and by the solver's own self-check. *)

val pp : Format.formatter -> t -> unit
(** Human-readable LP-format-style dump. *)
