lib/lp/branch_bound.ml: Array Linexpr List Numeric Option Problem Rat Simplex Solution Sys
