lib/lp/linexpr.ml: Format Int List Map Numeric Rat
