lib/lp/simplex.ml: Array Hashtbl Linexpr List Numeric Problem Rat Solution Sys
