lib/lp/linexpr.mli: Format Numeric Rat
