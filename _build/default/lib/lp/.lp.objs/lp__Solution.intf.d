lib/lp/solution.mli: Format Numeric Rat
