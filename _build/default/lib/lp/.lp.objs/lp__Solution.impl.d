lib/lp/solution.ml: Array Format Numeric Rat
