lib/lp/problem.mli: Format Linexpr Numeric Rat
