lib/lp/simplex.mli: Numeric Problem Rat Solution
