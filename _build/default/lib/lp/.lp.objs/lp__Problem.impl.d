lib/lp/problem.ml: Array Format Linexpr List Numeric Printf Rat Stdlib
