(** Exact-rational two-phase primal simplex.

    Solves the LP relaxation of a {!Problem} (integrality restrictions are
    ignored here; {!Branch_bound} layers them on top).  All pivoting is done
    in exact rational arithmetic with Bland's anti-cycling rule, so the
    solver terminates and never reports a spurious optimum due to rounding —
    essential when the ILP is used as a feasibility oracle for candidate
    initiation intervals.

    Pricing uses Dantzig's rule with a permanent switch to Bland's rule
    after a degeneracy budget; a hard pivot cap makes pathological
    instances return [Budget_exhausted None] instead of spinning. *)

open Numeric

val solve : Problem.t -> Solution.outcome
(** Solve the LP relaxation with the problem's own variable bounds. *)

val solve_with_bounds :
  ?deadline:float ->
  Problem.t ->
  lb:Rat.t option array ->
  ub:Rat.t option array ->
  Solution.outcome
(** Like {!solve} but with per-variable bound overrides (used by
    branch-and-bound to impose branching decisions without mutating the
    problem).  Arrays are indexed by variable id and must cover every
    variable.  [deadline] is an absolute [Sys.time ()] value past which
    pivoting aborts with [Budget_exhausted None]. *)
