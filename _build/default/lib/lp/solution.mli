(** Solver results shared by {!Simplex} and {!Branch_bound}. *)

open Numeric

type t = {
  values : Rat.t array;  (** indexed by {!Problem} variable id *)
  objective : Rat.t;     (** objective value under the problem's direction *)
}

val value : t -> int -> Rat.t
val value_int : t -> int -> int
(** @raise Failure if the value is not an integer. *)

val pp : Format.formatter -> t -> unit

type outcome =
  | Optimal of t
  | Infeasible
  | Unbounded
  | Budget_exhausted of t option
      (** Branch-and-bound ran out of its node budget; carries the best
          incumbent found, if any.  Mirrors the paper's 20-second CPLEX
          allotment per candidate II. *)

val pp_outcome : Format.formatter -> outcome -> unit
