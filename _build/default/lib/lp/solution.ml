open Numeric

type t = { values : Rat.t array; objective : Rat.t }

let value s v = s.values.(v)
let value_int s v = Rat.to_int s.values.(v)

let pp fmt s =
  Format.fprintf fmt "obj=%s;" (Rat.to_string s.objective);
  Array.iteri
    (fun i v ->
      if not (Rat.is_zero v) then
        Format.fprintf fmt " x%d=%s" i (Rat.to_string v))
    s.values

type outcome =
  | Optimal of t
  | Infeasible
  | Unbounded
  | Budget_exhausted of t option

let pp_outcome fmt = function
  | Optimal s -> Format.fprintf fmt "optimal: %a" pp s
  | Infeasible -> Format.fprintf fmt "infeasible"
  | Unbounded -> Format.fprintf fmt "unbounded"
  | Budget_exhausted None -> Format.fprintf fmt "budget exhausted (no incumbent)"
  | Budget_exhausted (Some s) ->
    Format.fprintf fmt "budget exhausted, incumbent: %a" pp s
