open Numeric
module IMap = Map.Make (Int)

type t = { c : Rat.t; a : Rat.t IMap.t }

let norm a = IMap.filter (fun _ q -> not (Rat.is_zero q)) a
let zero = { c = Rat.zero; a = IMap.empty }
let const c = { c; a = IMap.empty }
let of_int n = const (Rat.of_int n)

let var ?(coef = Rat.one) v =
  if Rat.is_zero coef then zero else { c = Rat.zero; a = IMap.singleton v coef }

let add_term e q v =
  if Rat.is_zero q then e
  else begin
    let a =
      IMap.update v
        (function
          | None -> Some q
          | Some q0 ->
            let s = Rat.add q0 q in
            if Rat.is_zero s then None else Some s)
        e.a
    in
    { e with a }
  end

let of_terms ?(const = Rat.zero) l =
  List.fold_left (fun e (q, v) -> add_term e q v) { c = const; a = IMap.empty } l

let add e1 e2 =
  let a =
    IMap.union (fun _ q1 q2 ->
        let s = Rat.add q1 q2 in
        if Rat.is_zero s then None else Some s)
      e1.a e2.a
  in
  { c = Rat.add e1.c e2.c; a }

let neg e = { c = Rat.neg e.c; a = IMap.map Rat.neg e.a }
let sub e1 e2 = add e1 (neg e2)

let scale q e =
  if Rat.is_zero q then zero
  else { c = Rat.mul q e.c; a = IMap.map (Rat.mul q) e.a }

let add_const e q = { e with c = Rat.add e.c q }
let coef e v = match IMap.find_opt v e.a with Some q -> q | None -> Rat.zero
let constant e = e.c
let terms e = IMap.bindings (norm e.a)
let vars e = List.map fst (terms e)
let is_constant e = IMap.is_empty (norm e.a)

let eval f e =
  IMap.fold (fun v q acc -> Rat.add acc (Rat.mul q (f v))) e.a e.c

let map_vars f e =
  IMap.fold (fun v q acc -> add_term acc q (f v)) e.a { c = e.c; a = IMap.empty }

let pp pp_var fmt e =
  let ts = terms e in
  let first = ref true in
  let sep q =
    if !first then begin
      first := false;
      if Rat.sign q < 0 then Format.fprintf fmt "-"
    end
    else if Rat.sign q < 0 then Format.fprintf fmt " - "
    else Format.fprintf fmt " + "
  in
  List.iter
    (fun (v, q) ->
      sep q;
      let aq = Rat.abs q in
      if not (Rat.equal aq Rat.one) then Format.fprintf fmt "%s " (Rat.to_string aq);
      pp_var fmt v)
    ts;
  if not (Rat.is_zero e.c) || ts = [] then begin
    sep e.c;
    Format.fprintf fmt "%s" (Rat.to_string (Rat.abs e.c))
  end

let to_string e =
  Format.asprintf "%a" (pp (fun fmt v -> Format.fprintf fmt "x%d" v)) e
