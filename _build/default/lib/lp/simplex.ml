(* Two-phase primal simplex on a dense tableau of exact rationals.

   Conversion to standard form:
   - a variable with finite lower bound [l] is substituted [x = l + x'],
     [x' >= 0];
   - a free variable is split [x = x+ - x-];
   - a finite upper bound becomes an extra [<=] row (after substitution);
   - every row is flipped so its right-hand side is non-negative, then gets
     a slack ([<=]), a surplus plus artificial ([>=]) or an artificial ([=]).

   Phase 1 minimises the sum of artificials from the all-slack/artificial
   basis; phase 2 re-prices the user objective.  Bland's rule (smallest
   entering index, smallest-basic-variable tie-break on the ratio test)
   guarantees termination. *)

open Numeric

(* How an original problem variable maps into standard-form columns. *)
type var_map =
  | Shifted of int * Rat.t (* column, lower-bound offset: x = off + col *)
  | Split of int * int (* x = pos - neg *)

type tableau = {
  rows : Rat.t array array; (* m rows, each of length ncols+1 (rhs last) *)
  obj : Rat.t array; (* reduced-cost row, length ncols+1; last = -z *)
  basis : int array; (* basic column of each row *)
  ncols : int;
  art_start : int; (* columns >= art_start are artificials *)
}

let q0 = Rat.zero
let q1 = Rat.one

(* Gaussian elimination step: make column [c] a unit column with a 1 in row
   [r], updating the objective row too. *)
let pivot t r c =
  let prow = t.rows.(r) in
  let piv = prow.(c) in
  if Rat.is_zero piv then invalid_arg "Simplex.pivot: zero pivot";
  let inv = Rat.inv piv in
  for j = 0 to t.ncols do
    prow.(j) <- Rat.mul prow.(j) inv
  done;
  let eliminate row =
    let f = row.(c) in
    if not (Rat.is_zero f) then
      for j = 0 to t.ncols do
        row.(j) <- Rat.sub row.(j) (Rat.mul f prow.(j))
      done
  in
  Array.iteri (fun i row -> if i <> r then eliminate row) t.rows;
  eliminate t.obj;
  t.basis.(r) <- c

exception Pivot_limit

(* One simplex phase: minimise the objective encoded in [t.obj], entering
   candidates restricted to columns < [max_col].  Returns [`Optimal] or
   [`Unbounded].

   Pricing: Dantzig's rule (most negative reduced cost) for speed, then a
   permanent switch to Bland's rule (smallest index) after a degeneracy
   budget to guarantee termination.  A hard pivot cap bounds the cost of
   pathological instances; it raises {!Pivot_limit}, which the MILP
   driver reports as budget exhaustion.
   @raise Pivot_limit *)
let run_phase ?deadline t ~max_col =
  let m = Array.length t.rows in
  let bland_after = 10 * (m + t.ncols) in
  let max_pivots = 60 * (m + t.ncols) in
  let pivots = ref 0 in
  let rec loop () =
    if !pivots > max_pivots then raise Pivot_limit;
    (match deadline with
    | Some d when !pivots land 15 = 0 && Sys.time () > d -> raise Pivot_limit
    | _ -> ());
    let use_bland = !pivots > bland_after in
    let entering = ref (-1) in
    if use_bland then (
      try
        for j = 0 to max_col - 1 do
          if Rat.sign t.obj.(j) < 0 then begin
            entering := j;
            raise Exit
          end
        done
      with Exit -> ())
    else begin
      let best = ref q0 in
      for j = 0 to max_col - 1 do
        if Rat.lt t.obj.(j) !best then begin
          best := t.obj.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let c = !entering in
      (* Ratio test with Bland tie-break on smallest basic variable. *)
      let best_row = ref (-1) in
      let best_ratio = ref q0 in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(c) in
        if Rat.sign a > 0 then begin
          let ratio = Rat.div t.rows.(i).(t.ncols) a in
          if
            !best_row < 0
            || Rat.lt ratio !best_ratio
            || (Rat.equal ratio !best_ratio && t.basis.(i) < t.basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t !best_row c;
        incr pivots;
        loop ()
      end
    end
  in
  loop ()

let solve_with_bounds_exn ?deadline problem ~lb ~ub =
  let n = Problem.num_vars problem in
  if Array.length lb <> n || Array.length ub <> n then
    invalid_arg "Simplex.solve_with_bounds: bound arrays wrong length";
  (* Quick bound sanity: lb > ub is immediately infeasible. *)
  let bounds_ok = ref true in
  for v = 0 to n - 1 do
    match (lb.(v), ub.(v)) with
    | Some l, Some u when Rat.gt l u -> bounds_ok := false
    | _ -> ()
  done;
  if not !bounds_ok then Solution.Infeasible
  else begin
    (* --- assign standard-form columns --- *)
    let next_col = ref 0 in
    let fresh () =
      let c = !next_col in
      incr next_col;
      c
    in
    let vmap =
      Array.init n (fun v ->
          match lb.(v) with
          | Some l -> Shifted (fresh (), l)
          | None -> Split (fresh (), fresh ()))
    in
    let nstruct = !next_col in
    (* Translate an original-variable linear expression into (std coeffs,
       constant). *)
    let translate e =
      let coeffs = Hashtbl.create 16 in
      let addc c q =
        let cur = try Hashtbl.find coeffs c with Not_found -> q0 in
        Hashtbl.replace coeffs c (Rat.add cur q)
      in
      let const = ref (Linexpr.constant e) in
      List.iter
        (fun (v, q) ->
          match vmap.(v) with
          | Shifted (c, off) ->
            addc c q;
            const := Rat.add !const (Rat.mul q off)
          | Split (cp, cn) ->
            addc cp q;
            addc cn (Rat.neg q))
        (Linexpr.terms e);
      (coeffs, !const)
    in
    (* --- collect rows: user constraints plus upper-bound rows --- *)
    (* Each row: (dense coeffs over struct cols as assoc, rel, rhs). *)
    let rows = ref [] in
    List.iter
      (fun (c : Problem.cstr) ->
        let coeffs, const = translate c.lhs in
        rows := (coeffs, c.rel, Rat.sub c.rhs const) :: !rows)
      (Problem.constraints problem);
    for v = 0 to n - 1 do
      match (ub.(v), vmap.(v)) with
      | Some u, Shifted (c, off) ->
        let coeffs = Hashtbl.create 1 in
        Hashtbl.replace coeffs c q1;
        rows := (coeffs, Problem.Le, Rat.sub u off) :: !rows
      | Some u, Split (cp, cn) ->
        let coeffs = Hashtbl.create 2 in
        Hashtbl.replace coeffs cp q1;
        Hashtbl.replace coeffs cn (Rat.neg q1);
        rows := (coeffs, Problem.Le, u) :: !rows
      | None, _ -> ()
    done;
    let row_list = List.rev !rows in
    let m = List.length row_list in
    (* --- count auxiliary columns --- *)
    let n_slack = ref 0 and n_art = ref 0 in
    List.iter
      (fun (_, rel, rhs) ->
        let flipped = Rat.sign rhs < 0 in
        let rel =
          if not flipped then rel
          else match rel with Problem.Le -> Problem.Ge | Ge -> Le | Eq -> Eq
        in
        match rel with
        | Problem.Le -> incr n_slack
        | Problem.Ge ->
          incr n_slack;
          incr n_art
        | Problem.Eq -> incr n_art)
      row_list;
    let slack_start = nstruct in
    let art_start = nstruct + !n_slack in
    let ncols = nstruct + !n_slack + !n_art in
    let t =
      {
        rows = Array.init m (fun _ -> Array.make (ncols + 1) q0);
        obj = Array.make (ncols + 1) q0;
        basis = Array.make m (-1);
        ncols;
        art_start;
      }
    in
    (* --- fill the tableau --- *)
    let slack_next = ref slack_start and art_next = ref art_start in
    List.iteri
      (fun i (coeffs, rel, rhs) ->
        let row = t.rows.(i) in
        let flipped = Rat.sign rhs < 0 in
        let put c q = row.(c) <- Rat.add row.(c) (if flipped then Rat.neg q else q) in
        Hashtbl.iter put coeffs;
        row.(ncols) <- (if flipped then Rat.neg rhs else rhs);
        let rel =
          if not flipped then rel
          else match rel with Problem.Le -> Problem.Ge | Ge -> Le | Eq -> Eq
        in
        match rel with
        | Problem.Le ->
          let s = !slack_next in
          incr slack_next;
          row.(s) <- q1;
          t.basis.(i) <- s
        | Problem.Ge ->
          let s = !slack_next in
          incr slack_next;
          row.(s) <- Rat.neg q1;
          let a = !art_next in
          incr art_next;
          row.(a) <- q1;
          t.basis.(i) <- a
        | Problem.Eq ->
          let a = !art_next in
          incr art_next;
          row.(a) <- q1;
          t.basis.(i) <- a)
      row_list;
    (* --- phase 1 --- *)
    let has_artificials = !n_art > 0 in
    let phase1_result =
      if not has_artificials then `Optimal
      else begin
        (* Reduced costs for min (sum of artificials) with the initial
           basis: subtract each artificial-basic row from the cost row. *)
        Array.fill t.obj 0 (ncols + 1) q0;
        for j = art_start to ncols - 1 do
          t.obj.(j) <- q1
        done;
        for i = 0 to m - 1 do
          if t.basis.(i) >= art_start then
            for j = 0 to ncols do
              t.obj.(j) <- Rat.sub t.obj.(j) (t.rows.(i).(j))
            done
        done;
        run_phase ?deadline t ~max_col:art_start
      end
    in
    match phase1_result with
    | `Unbounded ->
      (* Phase-1 objective is bounded below by zero; cannot happen. *)
      assert false
    | `Optimal ->
      let phase1_obj = Rat.neg t.obj.(ncols) in
      if has_artificials && Rat.sign phase1_obj > 0 then Solution.Infeasible
      else begin
        (* Drive lingering artificials out of the basis. *)
        for i = 0 to m - 1 do
          if t.basis.(i) >= art_start then begin
            let found = ref (-1) in
            (try
               for j = 0 to art_start - 1 do
                 if not (Rat.is_zero t.rows.(i).(j)) then begin
                   found := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !found >= 0 then pivot t i !found
            (* else: the row is all-zero over real columns (redundant);
               the artificial stays basic at value 0, which is harmless
               because artificials are barred from entering and the row's
               rhs is 0. *)
          end
        done;
        (* --- phase 2: re-price the user objective --- *)
        let dir, obj_expr = Problem.objective problem in
        let obj_expr =
          match dir with
          | `Minimize -> obj_expr
          | `Maximize -> Linexpr.neg obj_expr
        in
        let ocoeffs, oconst = translate obj_expr in
        Array.fill t.obj 0 (ncols + 1) q0;
        Hashtbl.iter (fun c q -> t.obj.(c) <- Rat.add t.obj.(c) q) ocoeffs;
        (* c̄ = c - c_B B⁻¹A: subtract c_b(i) × row_i for each basic var
           with a nonzero cost coefficient. *)
        for i = 0 to m - 1 do
          let cb = t.obj.(t.basis.(i)) in
          if not (Rat.is_zero cb) then
            for j = 0 to ncols do
              t.obj.(j) <- Rat.sub t.obj.(j) (Rat.mul cb t.rows.(i).(j))
            done
        done;
        (match run_phase ?deadline t ~max_col:art_start with
        | `Unbounded -> Solution.Unbounded
        | `Optimal ->
          (* Extract: std column values, then map back. *)
          let colval = Array.make ncols q0 in
          for i = 0 to m - 1 do
            if t.basis.(i) < ncols then
              colval.(t.basis.(i)) <- t.rows.(i).(ncols)
          done;
          let values =
            Array.init n (fun v ->
                match vmap.(v) with
                | Shifted (c, off) -> Rat.add off colval.(c)
                | Split (cp, cn) -> Rat.sub colval.(cp) colval.(cn))
          in
          let z_std = Rat.add (Rat.neg t.obj.(ncols)) oconst in
          let objective =
            match dir with `Minimize -> z_std | `Maximize -> Rat.neg z_std
          in
          Solution.Optimal { values; objective })
      end
  end

let solve_with_bounds ?deadline problem ~lb ~ub =
  try solve_with_bounds_exn ?deadline problem ~lb ~ub
  with Pivot_limit -> Solution.Budget_exhausted None

let solve problem =
  let n = Problem.num_vars problem in
  let lb = Array.init n (Problem.var_lb problem) in
  let ub = Array.init n (Problem.var_ub problem) in
  solve_with_bounds problem ~lb ~ub
