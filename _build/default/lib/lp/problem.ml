open Numeric

type relation = Le | Ge | Eq
type var_kind = Continuous | Integer | Binary

type cstr = { name : string; lhs : Linexpr.t; rel : relation; rhs : Rat.t }

type var_info = {
  v_name : string;
  v_kind : var_kind;
  v_lb : Rat.t option;
  v_ub : Rat.t option;
}

type t = {
  mutable vars : var_info array;
  mutable nvars : int;
  mutable cstrs : cstr list; (* reversed *)
  mutable ncstrs : int;
  mutable obj : [ `Minimize | `Maximize ] * Linexpr.t;
}

let create () =
  { vars = [||]; nvars = 0; cstrs = []; ncstrs = 0; obj = (`Minimize, Linexpr.zero) }

let grow p =
  let cap = Array.length p.vars in
  if p.nvars >= cap then begin
    let ncap = Stdlib.max 8 (cap * 2) in
    let nv =
      Array.make ncap { v_name = ""; v_kind = Continuous; v_lb = None; v_ub = None }
    in
    Array.blit p.vars 0 nv 0 p.nvars;
    p.vars <- nv
  end

let add_var p ?(lb = Some Rat.zero) ?(ub = None) ~kind name =
  grow p;
  let lb, ub =
    match kind with
    | Binary -> (Some Rat.zero, Some Rat.one)
    | _ -> (lb, ub)
  in
  p.vars.(p.nvars) <- { v_name = name; v_kind = kind; v_lb = lb; v_ub = ub };
  p.nvars <- p.nvars + 1;
  p.nvars - 1

let add_constraint p ?name lhs rel rhs =
  let e = Linexpr.sub lhs rhs in
  let lhs' = Linexpr.add_const e (Rat.neg (Linexpr.constant e)) in
  let rhs' = Rat.neg (Linexpr.constant e) in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "c%d" p.ncstrs
  in
  p.cstrs <- { name; lhs = lhs'; rel; rhs = rhs' } :: p.cstrs;
  p.ncstrs <- p.ncstrs + 1

let set_objective p dir e = p.obj <- (dir, e)
let num_vars p = p.nvars
let num_constraints p = p.ncstrs

let var_check p v =
  if v < 0 || v >= p.nvars then invalid_arg "Problem: bad variable id"

let var_name p v = var_check p v; p.vars.(v).v_name
let var_kind p v = var_check p v; p.vars.(v).v_kind
let var_lb p v = var_check p v; p.vars.(v).v_lb
let var_ub p v = var_check p v; p.vars.(v).v_ub
let constraints p = List.rev p.cstrs
let objective p = p.obj

let integer_vars p =
  let acc = ref [] in
  for v = p.nvars - 1 downto 0 do
    match p.vars.(v).v_kind with
    | Integer | Binary -> acc := v :: !acc
    | Continuous -> ()
  done;
  !acc

let check_assignment p assign =
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  for v = 0 to p.nvars - 1 do
    let info = p.vars.(v) in
    let x = assign v in
    (match info.v_lb with
    | Some lb when Rat.lt x lb ->
      fail (Printf.sprintf "variable %s below lower bound" info.v_name)
    | _ -> ());
    (match info.v_ub with
    | Some ub when Rat.gt x ub ->
      fail (Printf.sprintf "variable %s above upper bound" info.v_name)
    | _ -> ());
    match info.v_kind with
    | Integer | Binary ->
      if not (Rat.is_integer x) then
        fail (Printf.sprintf "variable %s not integral" info.v_name)
    | Continuous -> ()
  done;
  List.iter
    (fun c ->
      let v = Linexpr.eval assign c.lhs in
      let ok =
        match c.rel with
        | Le -> Rat.le v c.rhs
        | Ge -> Rat.ge v c.rhs
        | Eq -> Rat.equal v c.rhs
      in
      if not ok then fail (Printf.sprintf "constraint %s violated" c.name))
    (constraints p);
  match !err with None -> Ok () | Some m -> Error m

let pp_rel fmt = function
  | Le -> Format.fprintf fmt "<="
  | Ge -> Format.fprintf fmt ">="
  | Eq -> Format.fprintf fmt "="

let pp fmt p =
  let pp_var fmt v = Format.fprintf fmt "%s" (var_name p v) in
  let dir, obj = p.obj in
  Format.fprintf fmt "%s %a@\nsubject to@\n"
    (match dir with `Minimize -> "minimize" | `Maximize -> "maximize")
    (Linexpr.pp pp_var) obj;
  List.iter
    (fun c ->
      Format.fprintf fmt "  %s: %a %a %s@\n" c.name (Linexpr.pp pp_var) c.lhs
        pp_rel c.rel (Rat.to_string c.rhs))
    (constraints p);
  Format.fprintf fmt "bounds@\n";
  for v = 0 to p.nvars - 1 do
    let info = p.vars.(v) in
    Format.fprintf fmt "  %s%s in [%s, %s]@\n" info.v_name
      (match info.v_kind with
      | Binary -> " (bin)"
      | Integer -> " (int)"
      | Continuous -> "")
      (match info.v_lb with Some l -> Rat.to_string l | None -> "-inf")
      (match info.v_ub with Some u -> Rat.to_string u | None -> "+inf")
  done
