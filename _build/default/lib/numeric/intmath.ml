let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let lcm a b =
  if a = 0 || b = 0 then 0
  else begin
    let g = gcd a b in
    let q = abs a / g in
    if q > max_int / abs b then failwith "Intmath.lcm: overflow";
    q * abs b
  end

let gcd_list = List.fold_left gcd 0
let lcm_list = List.fold_left lcm 1

let fdiv a b =
  if b <= 0 then invalid_arg "Intmath.fdiv: non-positive divisor";
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let cdiv a b =
  if b <= 0 then invalid_arg "Intmath.cdiv: non-positive divisor";
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

let emod a b =
  if b <= 0 then invalid_arg "Intmath.emod: non-positive divisor";
  let r = a mod b in
  if r < 0 then r + b else r

let round_up x m =
  if m <= 0 then invalid_arg "Intmath.round_up: non-positive modulus";
  cdiv x m * m

let is_pow2 x = x > 0 && x land (x - 1) = 0

let pow2_ceil x =
  if x < 1 then invalid_arg "Intmath.pow2_ceil";
  let rec go p = if p >= x then p else go (p * 2) in
  go 1
