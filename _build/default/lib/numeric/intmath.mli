(** Small native-integer math helpers used across the compiler: gcd/lcm for
    steady-state rate computation, ceiling division for the multi-rate
    dependence constraints (eq. (5) of the paper), and rounding utilities. *)

val gcd : int -> int -> int
(** Non-negative gcd; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** @raise Failure on native overflow. *)

val gcd_list : int list -> int
val lcm_list : int list -> int

val cdiv : int -> int -> int
(** [cdiv a b] is [ceil(a / b)] for [b > 0], correct for negative [a]. *)

val fdiv : int -> int -> int
(** [fdiv a b] is [floor(a / b)] for [b > 0], correct for negative [a]. *)

val emod : int -> int -> int
(** Euclidean remainder: [emod a b] is in [[0, b)] for [b > 0]. *)

val round_up : int -> int -> int
(** [round_up x m] is the least multiple of [m] that is [>= x]. *)

val pow2_ceil : int -> int
(** Least power of two [>= x] (for [x >= 1]). *)

val is_pow2 : int -> bool
