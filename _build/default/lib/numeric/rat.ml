(* Canonical rationals: den > 0, gcd(num, den) = 1. *)

module B = Bigint

type t = { n : B.t; d : B.t }

let mk_canon n d =
  if B.is_zero d then raise Division_by_zero;
  if B.is_zero n then { n = B.zero; d = B.one }
  else begin
    let s = B.sign n * B.sign d in
    let n = B.abs n and d = B.abs d in
    let g = B.gcd n d in
    let n = B.div n g and d = B.div d g in
    { n = (if s < 0 then B.neg n else n); d }
  end

let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let minus_one = { n = B.minus_one; d = B.one }
let make n d = mk_canon n d
let of_bigint n = { n; d = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints n d = mk_canon (B.of_int n) (B.of_int d)

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (B.of_string s)
  | Some i ->
    mk_canon
      (B.of_string (String.sub s 0 i))
      (B.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let num x = x.n
let den x = x.d
let sign x = B.sign x.n
let is_zero x = B.is_zero x.n
let is_integer x = B.equal x.d B.one
let to_bigint x = B.div x.n x.d
let floor x = B.ediv x.n x.d
let ceil x = B.neg (B.ediv (B.neg x.n) x.d)

let to_float x =
  (* Good enough for reporting: go through strings only when the parts are
     small; otherwise scale down. *)
  match (B.to_int_opt x.n, B.to_int_opt x.d) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ ->
    (* Divide out with 60 bits of fractional precision. *)
    let shift = B.pow (B.of_int 2) 60 in
    let scaled = B.div (B.mul x.n shift) x.d in
    (match B.to_int_opt scaled with
    | Some v -> float_of_int v /. 1.1529215046068469e18 (* 2^60 *)
    | None -> float_of_string (B.to_string (to_bigint x)))

let to_int x =
  if not (is_integer x) then failwith "Rat.to_int: not an integer"
  else B.to_int x.n

let neg x = { x with n = B.neg x.n }
let abs x = { x with n = B.abs x.n }
let inv x = mk_canon x.d x.n
let add a b = mk_canon (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)
let sub a b = add a (neg b)
let mul a b = mk_canon (B.mul a.n b.n) (B.mul a.d b.d)
let div a b = mul a (inv b)
let compare a b = B.compare (B.mul a.n b.d) (B.mul b.n a.d)
let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b

let to_string x =
  if is_integer x then B.to_string x.n
  else B.to_string x.n ^ "/" ^ B.to_string x.d

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = le
  let ( > ) = gt
  let ( >= ) = ge
end
