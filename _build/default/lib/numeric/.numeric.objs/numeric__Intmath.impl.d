lib/numeric/intmath.ml: List
