lib/numeric/intmath.mli:
